/**
 * @file
 * Command-line benchmark runner — the "controller" a DARCO user would
 * drive by hand: run any of the 48 workloads (or list them), set the
 * budget and thresholds, toggle TOL features, enable co-simulation,
 * and dump full statistics or the disassembly of the hottest
 * translated region.
 *
 *   $ ./run_benchmark --list
 *   $ ./run_benchmark 462.libquantum --budget=1000000 --cosim
 *   $ ./run_benchmark 400.perlbench --no-ibtc --dump-hottest
 *   $ ./run_benchmark 429.mcf --capture=mcf.dtrc
 *   $ ./run_benchmark source://trace/mcf.dtrc
 *   $ ./run_benchmark 429.mcf 462.libquantum 473.astar --jobs=4
 *
 * With several workloads, the runs execute on a BatchRunner worker
 * pool (--jobs workers) and print one summary line each; the
 * detailed single-workload report is unchanged.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "host/disasm.hh"
#include "runner/batch_runner.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

using namespace darco;

namespace {

void
usage()
{
    std::printf(
        "usage: run_benchmark <name-or-uri> [more workloads...] "
        "[options]\n"
        "       run_benchmark --list\n"
        "workload: a synthetic benchmark name, or a source URI\n"
        "  (source://synthetic/<name>, source://trace/<file>);\n"
        "  trace workloads replay their capture-time recipe unless\n"
        "  --budget/--sb-threshold override it\n"
        "options:\n"
        "  --budget=N        guest instructions (default 2000000)\n"
        "  --sb-threshold=N  BB->SB threshold (default: budget-scaled)\n"
        "  --jobs=N          worker threads for multiple workloads\n"
        "                    (0 = hardware threads, 1 = serial;\n"
        "                    results are identical either way)\n"
        "  --timeout=MS      per-workload wall-clock watchdog: a run\n"
        "                    past the deadline is cancelled and fails\n"
        "                    as Timeout with partial metrics\n"
        "  --retries=N       re-run transiently failed workloads up\n"
        "                    to N times (bounded exponential backoff)\n"
        "  --journal=PATH    crash-resumable campaign journal: rerun\n"
        "                    the same command after a crash and\n"
        "                    completed workloads replay from PATH\n"
        "  --cache-dir=DIR   content-addressed result cache: completed\n"
        "                    (workload, config) runs are stored and a\n"
        "                    warm re-run simulates nothing\n"
        "                    (docs/campaigns.md)\n"
        "  --shard=K/N       execute only workloads at index i with\n"
        "                    i %% N == K — N runners sharing a cache\n"
        "                    dir cover the campaign exactly once\n"
        "  --verify-hits=F   re-simulate fraction F of cache hits and\n"
        "                    fail unless bit-identical to the cache\n"
        "  --require-hits    fail unless every executed workload was\n"
        "                    a cache hit (warm-rerun assertion)\n"
        "  --capture=PATH    snapshot the run to a replayable trace\n"
        "  --cosim           verify against the authoritative emulator\n"
        "  --no-chaining --no-ibtc --no-bbm-opts --no-sbm-opts\n"
        "  --no-scheduling --ibtc-2way --sb-partition --no-prefetcher\n"
        "  --no-burst        disable the event core's burst dispatcher\n"
        "  --isolation       also run TOL-only/APP-only instances\n"
        "  --dump-hottest    disassemble the most-executed region\n"
        "with several workloads (or --timeout/--retries/--journal,\n"
        "which run through the same batch machinery), --capture/\n"
        "--cosim/--isolation/--dump-hottest are single-run features\n"
        "and are rejected\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    sim::SimConfig cfg;
    cfg.guestBudget = 2'000'000;
    bool dump_hottest = false;
    bool threshold_set = false;
    bool budget_set = false;
    unsigned jobs = 0;
    uint64_t timeout_ms = 0;
    unsigned retries = 0;
    std::string journal_path;
    std::string cache_dir;
    runner::ShardSpec shard;
    double verify_hits = 0.0;
    bool require_hits = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const std::string &uri : workloads::listWorkloadUris())
                std::printf("%s\n", uri.c_str());
            return 0;
        } else if (arg.rfind("--budget=", 0) == 0) {
            cfg.guestBudget = std::strtoull(arg.c_str() + 9, nullptr, 10);
            budget_set = true;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
        } else if (arg.rfind("--timeout=", 0) == 0) {
            timeout_ms = std::strtoull(arg.c_str() + 10, nullptr, 10);
        } else if (arg.rfind("--retries=", 0) == 0) {
            retries = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        } else if (arg.rfind("--journal=", 0) == 0) {
            journal_path = arg.substr(10);
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = arg.substr(12);
        } else if (arg.rfind("--shard=", 0) == 0) {
            char *end = nullptr;
            shard.index = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 8, &end, 10));
            if (!end || *end != '/') {
                std::fprintf(stderr,
                             "--shard expects K/N (e.g. --shard=0/3)\n");
                return 1;
            }
            shard.count = static_cast<unsigned>(
                std::strtoul(end + 1, nullptr, 10));
            if (shard.count == 0 || shard.index >= shard.count) {
                std::fprintf(stderr,
                             "--shard=%s: index must be < count\n",
                             arg.c_str() + 8);
                return 1;
            }
        } else if (arg.rfind("--verify-hits=", 0) == 0) {
            verify_hits = std::strtod(arg.c_str() + 14, nullptr);
        } else if (arg == "--require-hits") {
            require_hits = true;
        } else if (arg.rfind("--capture=", 0) == 0) {
            cfg.captureTracePath = arg.substr(10);
        } else if (arg.rfind("--sb-threshold=", 0) == 0) {
            cfg.tol.bbToSbThreshold = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 15, nullptr, 10));
            threshold_set = true;
        } else if (arg == "--cosim") {
            cfg.cosim = true;
        } else if (arg == "--no-chaining") {
            cfg.tol.enableChaining = false;
        } else if (arg == "--no-ibtc") {
            cfg.tol.enableIbtc = false;
        } else if (arg == "--no-bbm-opts") {
            cfg.tol.enableBbmOpts = false;
        } else if (arg == "--no-sbm-opts") {
            cfg.tol.enableSbmOpts = false;
        } else if (arg == "--no-scheduling") {
            cfg.tol.enableScheduling = false;
        } else if (arg == "--ibtc-2way") {
            cfg.tol.ibtcWays = 2;
        } else if (arg == "--sb-partition") {
            cfg.tol.sbPartitionPercent = 50;
        } else if (arg == "--no-prefetcher") {
            cfg.timing.prefetcherEnabled = false;
        } else if (arg == "--no-burst") {
            cfg.timing.burst = false;
        } else if (arg == "--isolation") {
            cfg.tolOnlyPipe = true;
            cfg.appOnlyPipe = true;
            cfg.tolModulePipe = true;
        } else if (arg == "--dump-hottest") {
            dump_hottest = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] != '-') {
            names.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

    if (names.empty()) {
        usage();
        return 1;
    }
    for (const std::string &n : names) {
        if (!workloads::isSourceUri(n) && !workloads::findBenchmark(n)) {
            std::fprintf(stderr,
                         "unknown benchmark '%s' (see --list)\n",
                         n.c_str());
            return 1;
        }
    }

    // Fault-tolerant execution (watchdog, retry, journal) and the
    // campaign scale-out features (result cache, sharding) live in
    // the BatchRunner, so those flags route even a single workload
    // through the batch path (summary line instead of the detailed
    // report).
    const bool fault_tolerant =
        timeout_ms > 0 || retries > 0 || !journal_path.empty();
    const bool campaign = !cache_dir.empty() || shard.count > 1;
    if (require_hits && cache_dir.empty()) {
        std::fprintf(stderr,
                     "--require-hits needs --cache-dir=\n");
        return 1;
    }
    if (names.size() > 1 || fault_tolerant || campaign) {
        // Batch mode: independent Systems on a worker pool, one
        // summary line per workload in request order. The detailed
        // single-run reports (capture confirmation, cosim verdict,
        // isolation stats, hottest-region dump) have no column in
        // the summary, so the flags that exist only to feed them
        // are rejected rather than silently burning work.
        if (!cfg.captureTracePath.empty() || cfg.cosim ||
            dump_hottest || cfg.tolOnlyPipe) {
            std::fprintf(stderr,
                         "--capture/--cosim/--isolation/"
                         "--dump-hottest are single-workload "
                         "features\n");
            return 1;
        }
        sim::MetricsOptions options = sim::optionsFromConfig(cfg);
        if (!threshold_set) {
            options.tolConfig.bbToSbThreshold =
                sim::scaledSbThreshold(cfg.guestBudget);
        }
        std::vector<runner::BatchJob> batch;
        for (const std::string &n : names) {
            runner::BatchJob job;
            job.workload = n;
            job.options = options;
            // Same precedence as the single-workload path: a trace's
            // capture recipe supplies the defaults, an explicit
            // --budget/--sb-threshold wins. A budget override
            // changes the functional execution, so the in-file pins
            // no longer apply.
            if (budget_set) {
                job.guestBudgetOverride = cfg.guestBudget;
                job.checkCapturedPins = false;
            }
            if (threshold_set) {
                job.sbThresholdOverride = cfg.tol.bbToSbThreshold;
                job.checkCapturedPins = false;
            }
            batch.push_back(std::move(job));
        }
        runner::BatchConfig config;
        config.workers = jobs;
        config.timeoutMs = timeout_ms;
        config.retries = retries;
        config.journalPath = journal_path;
        config.cacheDir = cache_dir;
        config.shard = shard;
        config.verifyHitFraction = verify_hits;
        const runner::BatchRunner pool(config);
        std::fprintf(stderr, "running %zu workloads on %u workers\n",
                     batch.size(),
                     pool.effectiveWorkers(batch.size()));

        bool all_ok = true;
        size_t hits = 0, misses = 0, bypasses = 0, executed = 0;
        std::printf("%-24s %-10s %12s %12s %7s %6s %7s\n", "workload",
                    "suite", "guest insts", "cycles", "IPC", "halt",
                    "cache");
        for (const runner::JobResult &r : pool.run(batch)) {
            // Out-of-shard slots belong to another runner of the
            // same campaign: no line, no exit-code influence.
            if (r.skipped)
                continue;
            ++executed;
            const char *cache_col = "-";
            switch (r.cacheStatus) {
              case runner::CacheStatus::Hit:
                ++hits;
                cache_col = r.verifiedHit ? "hit+v" : "hit";
                break;
              case runner::CacheStatus::Miss:
                ++misses;
                cache_col = "miss";
                break;
              case runner::CacheStatus::Bypass:
                ++bypasses;
                cache_col = "bypass";
                break;
              case runner::CacheStatus::None:
                if (r.deduped)
                    cache_col = "dedup";
                else if (r.fromJournal)
                    cache_col = "journal";
                break;
            }
            if (!r.ok) {
                // One classified line per failure: class, whether a
                // retry could help, attempts spent, and the detail —
                // and a non-zero exit below, so a campaign script
                // cannot mistake a half-failed sweep for a clean one.
                all_ok = false;
                std::printf("%-24s FAILED %s (%s, %u attempt%s): %s\n",
                            r.name.empty() ? r.uri.c_str()
                                           : r.name.c_str(),
                            r.runError.name(),
                            r.runError.transient() ? "transient"
                                                   : "permanent",
                            r.attempts, r.attempts == 1 ? "" : "s",
                            r.runError.context.c_str());
                continue;
            }
            const double cycles = std::max(
                1.0, static_cast<double>(r.snapshot.result.cycles));
            std::printf("%-24s %-10s %12llu %12llu %7.3f %6s %7s\n",
                        r.name.c_str(), r.suite.c_str(),
                        static_cast<unsigned long long>(
                            r.snapshot.result.guestRetired),
                        static_cast<unsigned long long>(
                            r.snapshot.result.cycles),
                        static_cast<double>(
                            r.snapshot.result.guestRetired) / cycles,
                        r.snapshot.result.halted ? "yes" : "no",
                        cache_col);
        }
        if (!cache_dir.empty()) {
            const size_t looked_up = hits + misses;
            std::printf("cache: %zu hit%s, %zu miss%s, %zu bypass "
                        "(hit rate %.1f%%)\n",
                        hits, hits == 1 ? "" : "s", misses,
                        misses == 1 ? "" : "es", bypasses,
                        looked_up
                            ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(looked_up)
                            : 0.0);
            if (require_hits && hits != executed) {
                std::fprintf(stderr,
                             "--require-hits: %zu of %zu executed "
                             "workload(s) were not cache hits\n",
                             executed - hits, executed);
                all_ok = false;
            }
        }
        return all_ok ? 0 : 1;
    }

    const std::string &name = names.front();
    const workloads::Workload workload =
        workloads::resolveWorkload(name);
    if (workload.capturedMeta) {
        // Trace replay: the capture-time recipe applies unless the
        // command line explicitly overrides a field.
        const uint64_t user_budget = cfg.guestBudget;
        const uint32_t user_threshold = cfg.tol.bbToSbThreshold;
        sim::applyCaptureRecipe(cfg, workload);
        if (budget_set)
            cfg.guestBudget = user_budget;
        if (threshold_set)
            cfg.tol.bbToSbThreshold = user_threshold;
        else
            threshold_set = true;  // the recipe supplied it
    }
    if (!threshold_set) {
        cfg.tol.bbToSbThreshold =
            sim::scaledSbThreshold(cfg.guestBudget);
    }

    sim::System sys(cfg);
    sys.load(workload);
    const sim::SystemResult res = sys.run();

    const tol::TolStats &ts = sys.tolStats();
    const timing::PipeStats &ps = sys.combinedStats();
    const double cycles = std::max(1.0, static_cast<double>(ps.cycles));

    std::printf("== %s (%s) ==\n", workload.name.c_str(),
                workload.suite.c_str());
    if (!cfg.captureTracePath.empty()) {
        std::printf("captured     %s (replay with "
                    "source://trace/%s)\n",
                    cfg.captureTracePath.c_str(),
                    cfg.captureTracePath.c_str());
    }
    std::printf("guest insts  %-12llu halted %-5s cycles %llu "
                "(guest IPC %.3f)\n",
                static_cast<unsigned long long>(res.guestRetired),
                res.halted ? "yes" : "no",
                static_cast<unsigned long long>(res.cycles),
                static_cast<double>(res.guestRetired) / cycles);
    std::printf("modes        IM %llu / BBM %llu / SBM %llu dynamic; "
                "static %zu insts\n",
                static_cast<unsigned long long>(ts.dynIm),
                static_cast<unsigned long long>(ts.dynBbm),
                static_cast<unsigned long long>(ts.dynSbm),
                ts.staticMode.size());
    std::printf("translation  %llu BBs, %llu SBs, %llu chains, "
                "%llu flushes\n",
                static_cast<unsigned long long>(ts.bbsTranslated),
                static_cast<unsigned long long>(ts.sbsCreated),
                static_cast<unsigned long long>(ts.chainsPatched),
                static_cast<unsigned long long>(ts.codeCacheFlushes));
    std::printf("indirects    %llu executed, %llu IBTC misses, "
                "%llu map lookups\n",
                static_cast<unsigned long long>(ts.guestIndirectBranches),
                static_cast<unsigned long long>(ts.ibtcMisses),
                static_cast<unsigned long long>(ts.mapLookups));
    std::printf("time split   app %.1f%% / TOL %.1f%%\n",
                100.0 * ps.appCycles() / cycles,
                100.0 * ps.tolCycles() / cycles);
    std::printf("caches       L1D miss %.2f%%  L1I miss %.2f%%  "
                "L2 miss %.2f%%  BP mispredict %.2f%%\n",
                100.0 * ps.l1d.missRate(), 100.0 * ps.l1i.missRate(),
                100.0 * ps.l2.missRate(), 100.0 * ps.bp.mispredictRate());
    std::printf("bubbles      D$ %.1f%%  I$ %.1f%%  branch %.1f%%  "
                "sched %.1f%%\n",
                100.0 * ps.bucketTotal(timing::Bucket::DcacheBubble) /
                    cycles,
                100.0 * ps.bucketTotal(timing::Bucket::IcacheBubble) /
                    cycles,
                100.0 * ps.bucketTotal(timing::Bucket::BranchBubble) /
                    cycles,
                100.0 * ps.bucketTotal(timing::Bucket::SchedBubble) /
                    cycles);
    if (cfg.cosim) {
        std::printf("cosim        %llu commits checked: %s\n",
                    static_cast<unsigned long long>(
                        sys.checker()->commits()),
                    res.memoryDiff.empty() && sys.checker()->failures()
                                                  .empty()
                        ? "OK"
                        : "MISMATCH");
    }
    if (sys.tolModuleStats()) {
        const timing::PipeStats *tp = sys.tolModuleStats();
        std::printf("TOL isolated IPC %.2f  D$ %.2f%%  I$ %.2f%%  "
                    "BP %.2f%%\n",
                    tp->ipc(), 100.0 * tp->l1d.missRate(),
                    100.0 * tp->l1i.missRate(),
                    100.0 * tp->bp.mispredictRate());
    }

    if (dump_hottest) {
        // Walk the code cache for the most-executed region.
        host::CodeRegion *hottest = nullptr;
        for (uint32_t pc = host::amap::kCodeCacheBase;
             pc < host::amap::kCodeCacheLimit;) {
            host::CodeRegion *region =
                sys.tolRuntime().codeStore().find(pc);
            if (!region)
                break;
            if (!hottest || region->execCount > hottest->execCount)
                hottest = region;
            pc = region->hostLimit() + 16;
        }
        if (hottest) {
            std::printf("\nhottest region (executed %u times):\n%s",
                        hottest->execCount,
                        host::disassembleRegion(*hottest).c_str());
        }
    }
    return 0;
}
