/**
 * @file
 * BatchRunner quickstart: run a configuration sweep on a worker
 * pool, then prove the parallel results equal the serial ones.
 *
 * A "batch" is a vector of independent jobs — workload URI plus a
 * per-job MetricsOptions — and the runner executes them on a fixed
 * pool (one sim::System per job, one job per worker at a time),
 * returning results in job order regardless of which worker finished
 * when. Because the engine is deterministic and jobs share nothing,
 * the pool size changes only wall clock, never a metric; this
 * example A/Bs a 1-worker and an N-worker run of the same batch to
 * demonstrate exactly that (the real enforcement lives in
 * tests/test_batch_runner.cc).
 *
 *   $ ./example_batch_sweep [workers]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "runner/batch_runner.hh"
#include "timing/pipeline.hh"
#include "tol/stats.hh"
#include "workloads/source.hh"

using namespace darco;

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

runner::BatchConfig
withWorkers(unsigned workers)
{
    runner::BatchConfig cfg;
    cfg.workers = workers;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned workers =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 0;

    // The batch: four benchmarks, each at two promotion thresholds —
    // the shape of every figure sweep (workloads x configurations).
    const char *benchmarks[] = {"429.mcf", "462.libquantum",
                                "464.h264ref", "473.astar"};
    std::vector<runner::BatchJob> batch;
    for (const char *name : benchmarks) {
        for (uint32_t threshold : {300u, 2000u}) {
            runner::BatchJob job;
            job.workload = workloads::syntheticUri(name);
            job.options.guestBudget = 500'000;
            job.options.tolConfig.bbToSbThreshold = threshold;
            batch.push_back(std::move(job));
        }
    }

    // Serial reference (1 worker), then the pool.
    std::vector<runner::JobResult> serial, parallel;
    const double serial_s = wallSeconds([&] {
        serial = runner::BatchRunner(withWorkers(1)).run(batch);
    });
    runner::BatchConfig config;
    config.workers = workers;
    const runner::BatchRunner pool(config);
    const unsigned used = pool.effectiveWorkers(batch.size());
    const double parallel_s =
        wallSeconds([&] { parallel = pool.run(batch); });

    std::printf("%-18s %9s %12s %12s %8s\n", "workload", "SBth",
                "guest insts", "cycles", "IPC");
    for (size_t i = 0; i < batch.size(); ++i) {
        const runner::JobResult &r = parallel[i];
        if (!r.ok) {
            std::printf("%-18s FAILED: %s\n", r.uri.c_str(),
                        r.error.c_str());
            continue;
        }
        std::printf("%-18s %9u %12llu %12llu %8.3f\n", r.name.c_str(),
                    batch[i].options.tolConfig.bbToSbThreshold,
                    static_cast<unsigned long long>(
                        r.snapshot.result.guestRetired),
                    static_cast<unsigned long long>(
                        r.snapshot.result.cycles),
                    r.snapshot.stats.ipc());
    }

    // Slot-by-slot bit-identity of the two runs.
    unsigned mismatches = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
        if (!serial[i].ok || !parallel[i].ok ||
            !timing::diffStats(serial[i].snapshot.stats,
                               parallel[i].snapshot.stats).empty() ||
            !tol::diffTolStats(serial[i].snapshot.tolStats,
                               parallel[i].snapshot.tolStats).empty())
            ++mismatches;
    }
    std::printf("\n%zu jobs: serial %.2fs, %u workers %.2fs "
                "(%.2fx); %s\n",
                batch.size(), serial_s, used, parallel_s,
                parallel_s > 0 ? serial_s / parallel_s : 0.0,
                mismatches == 0
                    ? "parallel metrics bit-identical to serial"
                    : "METRIC MISMATCH (should be impossible)");
    return mismatches == 0 ? 0 : 1;
}
