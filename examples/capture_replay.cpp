/**
 * @file
 * Capture -> replay quickstart: snapshot any workload to a binary
 * trace (docs/traces.md), then replay the trace through the source
 * registry and verify the replay reproduces the capture run's
 * determinism fields bit-identically.
 *
 *   $ ./capture_replay                       # 462.libquantum
 *   $ ./capture_replay 429.mcf               # any synthetic name
 *   $ ./capture_replay 429.mcf 2000000       # ... with a budget
 *
 * The trace lands next to the binary as <name>.dtrc and can be fed
 * to any harness, e.g.:
 *
 *   $ ./fig6_time_breakdown --benchmark=source://trace/429.mcf.dtrc
 */

#include <cstdio>
#include <cstdlib>

#include "sim/metrics.hh"
#include "sim/system.hh"
#include "workloads/source.hh"

using namespace darco;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "462.libquantum";
    const uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;
    const std::string trace_path = name + ".dtrc";

    // 1. Resolve the workload through the source registry. A bare
    //    name is shorthand for source://synthetic/<name>.
    const workloads::Workload workload =
        workloads::resolveWorkload(workloads::syntheticUri(name));
    std::printf("resolved  %s (%s, %zu code bytes)\n",
                workload.uri.c_str(), workload.suite.c_str(),
                workload.program.code.size());

    // 2. Run it live with capture enabled: the System snapshots the
    //    program image, the run recipe, and — after the run — the
    //    determinism pins into the trace file.
    sim::MetricsOptions options;
    options.guestBudget = budget;
    options.tolConfig.bbToSbThreshold =
        sim::scaledSbThreshold(budget);
    options.captureTracePath = trace_path;
    const sim::BenchMetrics live = sim::runWorkload(workload, options);
    std::printf("captured  %s (budget %llu, BB/SBth %u)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(budget),
                options.tolConfig.bbToSbThreshold);

    // 3. Replay: resolve the trace and re-apply its capture recipe.
    const workloads::Workload replayed = workloads::resolveWorkload(
        workloads::traceUri(trace_path));
    sim::MetricsOptions replay_options;
    sim::applyCaptureRecipe(replay_options, replayed);
    const sim::BenchMetrics replay =
        sim::runWorkload(replayed, replay_options);

    // 4. The engine is deterministic, so the replay must reproduce
    //    the live run exactly — the same contract the round-trip CI
    //    gate (bench/trace_roundtrip) enforces for every suite.
    struct Row
    {
        const char *field;
        uint64_t live, replay;
    } rows[] = {
        {"guest_retired", live.guestRetired, replay.guestRetired},
        {"sim_cycles", live.cycles, replay.cycles},
        {"dyn IM insts", live.dynIm, replay.dynIm},
        {"dyn BBM insts", live.dynBbm, replay.dynBbm},
        {"dyn SBM insts", live.dynSbm, replay.dynSbm},
        {"SBs created", live.sbInvocations, replay.sbInvocations},
        {"indirect branches", live.guestIndirect,
         replay.guestIndirect},
    };
    std::printf("\n%-18s %14s %14s\n", "field", "live", "replay");
    bool identical = true;
    for (const Row &row : rows) {
        std::printf("%-18s %14llu %14llu%s\n", row.field,
                    static_cast<unsigned long long>(row.live),
                    static_cast<unsigned long long>(row.replay),
                    row.live == row.replay ? "" : "  <-- MISMATCH");
        identical = identical && row.live == row.replay;
    }
    std::printf("\nreplay is %s\n",
                identical ? "bit-identical to the captured run"
                          : "DIVERGENT (simulator bug!)");
    return identical ? 0 : 1;
}
