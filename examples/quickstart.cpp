/**
 * @file
 * Quickstart: build a small guest program with the GX86 assembler,
 * run it through the whole co-designed stack (interpreter -> BB
 * translation -> chaining -> superblock optimization) under
 * co-simulation, and print where the cycles went.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "guest/assembler.hh"
#include "sim/system.hh"

using namespace darco;
namespace g = darco::guest;

int
main()
{
    // 1. Write a guest program: sum of i*i for i in [1, 50000].
    g::Assembler as;
    as.mov(g::EAX, 0);          // accumulator
    as.mov(g::ECX, 50000);      // induction variable
    auto loop = as.newLabel();
    as.bind(loop);
    as.mov(g::EDX, g::ECX);
    as.imul(g::EDX, g::ECX);
    as.add(g::EAX, g::EDX);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();

    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    // 2. Configure the system: co-simulation on (every architectural
    //    commit is checked against the authoritative x86 component).
    sim::SimConfig cfg;
    cfg.cosim = true;
    cfg.guestBudget = 1'000'000;
    cfg.tol.bbToSbThreshold = 1000;  // small program: promote earlier

    // 3. Run.
    sim::System sys(cfg);
    sys.load(prog);
    const sim::SystemResult res = sys.run();

    // 4. Inspect.
    std::printf("guest result       EAX = %u (expect %u)\n",
                sys.guestState().gpr[g::EAX],
                []() {
                    uint32_t s = 0;
                    for (uint32_t i = 1; i <= 50000; ++i)
                        s += i * i;
                    return s;
                }());
    std::printf("guest instructions %llu (halted: %s)\n",
                static_cast<unsigned long long>(res.guestRetired),
                res.halted ? "yes" : "no");
    std::printf("host cycles        %llu\n",
                static_cast<unsigned long long>(res.cycles));

    const tol::TolStats &ts = sys.tolStats();
    std::printf("\nexecution modes (dynamic guest instructions)\n");
    std::printf("  interpreter (IM)  %llu\n",
                static_cast<unsigned long long>(ts.dynIm));
    std::printf("  basic blocks (BBM) %llu\n",
                static_cast<unsigned long long>(ts.dynBbm));
    std::printf("  superblocks (SBM)  %llu\n",
                static_cast<unsigned long long>(ts.dynSbm));
    std::printf("  superblocks built  %llu, chains patched %llu\n",
                static_cast<unsigned long long>(ts.sbsCreated),
                static_cast<unsigned long long>(ts.chainsPatched));

    const timing::PipeStats &ps = sys.combinedStats();
    std::printf("\ntime split\n");
    std::printf("  application  %5.1f%%\n",
                100.0 * ps.appCycles() / static_cast<double>(ps.cycles));
    std::printf("  TOL overhead %5.1f%%\n",
                100.0 * ps.tolCycles() / static_cast<double>(ps.cycles));
    std::printf("\nco-simulation: %s\n",
                res.memoryDiff.empty() ? "state + memory verified OK"
                                       : res.memoryDiff.c_str());
    return 0;
}
