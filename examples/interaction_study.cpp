/**
 * @file
 * Interaction study on one benchmark: runs the three timing
 * instances (combined, TOL-only, APP-only) from a single functional
 * execution and prints the §III-D decomposition — how much of the
 * execution time the TOL<->application resource sharing costs, and
 * which microarchitectural component would benefit most if the
 * interaction were eliminated.
 *
 *   $ ./interaction_study [benchmark-name]
 */

#include <cstdio>
#include <cstring>

#include "common/table.hh"
#include "sim/metrics.hh"

using namespace darco;
using timing::Bucket;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "400.perlbench";
    const workloads::BenchParams *params =
        workloads::findBenchmark(name);
    if (!params) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", name);
        return 1;
    }

    sim::MetricsOptions options;
    options.guestBudget = 2'000'000;
    options.tolConfig.bbToSbThreshold =
        sim::scaledSbThreshold(options.guestBudget);
    options.tolOnlyPipe = true;
    options.appOnlyPipe = true;

    std::printf("running %s with three timing instances...\n\n",
                name);
    const sim::BenchMetrics m = sim::runBenchmark(*params, options);

    std::printf("combined execution: %llu cycles "
                "(application stream %.0f, TOL software %.0f)\n",
                static_cast<unsigned long long>(m.cycles),
                m.appSrcCycles(), m.tolSrcCycles());
    std::printf("isolated:           application %llu cycles, "
                "TOL %llu cycles\n\n",
                static_cast<unsigned long long>(m.appOnlyCycles),
                static_cast<unsigned long long>(m.tolOnlyCycles));

    std::printf("relative cycles without interaction (w/o / w/):\n");
    std::printf("  application %.3f    TOL %.3f\n",
                m.relAppWithout(), m.relTolWithout());
    std::printf("interaction degradation: %.1f%% of execution time "
                "(application %.1f%%, TOL %.1f%%)\n\n",
                100.0 * (m.appDegradation() + m.tolDegradation()),
                100.0 * m.appDegradation(), 100.0 * m.tolDegradation());

    Table table({"category", "TOL potential %", "APP potential %"});
    struct Row
    {
        const char *label;
        Bucket bucket;
    };
    static const Row rows[] = {
        {"D$ miss bubbles", Bucket::DcacheBubble},
        {"I$ miss bubbles", Bucket::IcacheBubble},
        {"instruction scheduling", Bucket::SchedBubble},
        {"branch bubbles", Bucket::BranchBubble},
    };
    for (const Row &row : rows) {
        table.beginRow();
        table.add(row.label);
        table.addf("%.2f", 100.0 * m.potentialTol(row.bucket));
        table.addf("%.2f", 100.0 * m.potentialApp(row.bucket));
    }
    table.render();

    std::printf("\n(The paper's conclusion: the data cache is the "
                "component with the largest potential gain — TOL's "
                "code-cache lookup tables and the application's data "
                "ping-pong in the shared D$.)\n");
    return 0;
}
