/**
 * @file
 * Promotion-threshold sweep — the analysis the paper mentions but
 * does not show ("We assume the following promotion thresholds
 * (analysis not shown due to space limitations): IM/BBth = 5;
 * BB/SBth = 10K", §III-A).
 *
 * Sweeps both thresholds on a mixed workload and reports the
 * overhead/steady-state trade-off: a low BB/SBth optimizes cold code
 * whose optimization never pays for itself; a high one leaves hot
 * code running in instrumented BBM translations.
 *
 *   $ ./threshold_sweep
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/metrics.hh"

using namespace darco;

namespace {

sim::BenchMetrics
runWith(uint32_t im_bb, uint32_t bb_sb)
{
    const workloads::BenchParams *params =
        workloads::findBenchmark("464.h264ref");
    sim::MetricsOptions options;
    options.guestBudget = 1'500'000;
    options.tolConfig.imToBbThreshold = im_bb;
    options.tolConfig.bbToSbThreshold = bb_sb;
    return sim::runBenchmark(*params, options);
}

} // namespace

int
main()
{
    std::printf("BB/SB promotion threshold sweep on 464.h264ref "
                "(IM/BBth = 5)\n\n");
    Table sb_table({"BB/SBth", "overhead %", "SBM dyn %", "BBM dyn %",
                    "superblocks", "cycles"});
    for (uint32_t threshold :
         {25u, 100u, 300u, 1000u, 3000u, 10000u, 50000u}) {
        const sim::BenchMetrics m = runWith(5, threshold);
        const double dyn =
            std::max<double>(1.0, static_cast<double>(m.dynTotal()));
        sb_table.beginRow();
        sb_table.addf("%u", threshold);
        sb_table.addf("%.1f", 100.0 * m.tolOverheadFrac());
        sb_table.addf("%.1f", 100.0 * static_cast<double>(m.dynSbm) / dyn);
        sb_table.addf("%.1f", 100.0 * static_cast<double>(m.dynBbm) / dyn);
        sb_table.addf("%llu",
                      static_cast<unsigned long long>(m.sbInvocations));
        sb_table.addf("%llu", static_cast<unsigned long long>(m.cycles));
    }
    sb_table.render();

    std::printf("\nIM/BB promotion threshold sweep (BB/SBth = 300)\n\n");
    Table im_table({"IM/BBth", "overhead %", "IM dyn %", "BBs built",
                    "cycles"});
    for (uint32_t threshold : {1u, 3u, 5u, 10u, 50u, 200u}) {
        const sim::BenchMetrics m = runWith(threshold, 300);
        const double dyn =
            std::max<double>(1.0, static_cast<double>(m.dynTotal()));
        im_table.beginRow();
        im_table.addf("%u", threshold);
        im_table.addf("%.1f", 100.0 * m.tolOverheadFrac());
        im_table.addf("%.2f", 100.0 * static_cast<double>(m.dynIm) / dyn);
        im_table.addf("%llu", static_cast<unsigned long long>(
                                  m.staticBbm + m.staticSbm));
        im_table.addf("%llu", static_cast<unsigned long long>(m.cycles));
    }
    im_table.render();

    std::printf("\nThe sweet spot balances translation investment "
                "against time stuck in slower modes — the reason the "
                "paper uses a two-stage staged-compilation design.\n");
    return 0;
}
