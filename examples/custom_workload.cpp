/**
 * @file
 * Custom-workload example: define a new synthetic benchmark with the
 * workload parameter API and sweep one characteristic — indirect-
 * branch density — to watch TOL overhead react (the §III-B effect:
 * indirect branches force code-cache lookups and transitions).
 *
 *   $ ./custom_workload
 */

#include <cstdio>

#include "common/table.hh"
#include "sim/metrics.hh"

using namespace darco;

int
main()
{
    Table table({"dispatch iters/cycle", "indirect branches",
                 "TOL overhead %", "Code$ lookup % of TOL",
                 "IPC-relevant cycles"});

    for (uint32_t dispatch : {0u, 1000u, 4000u, 12000u, 24000u}) {
        workloads::BenchParams params;
        params.name = "custom.dispatch-sweep";
        params.suite = "custom";
        params.seed = 99;
        params.coldBlobInsts = 1000;
        params.warmLoops = 6;
        params.warmIters = 100;
        params.hotLoops = 2;
        params.hotIters = 8000;
        params.dispatchIters = dispatch;
        params.dispatchTargets = 512;  // many targets: IBTC pressure
        params.dataKb = 256;

        sim::MetricsOptions options;
        options.guestBudget = 1'500'000;
        options.tolConfig.bbToSbThreshold =
            sim::scaledSbThreshold(options.guestBudget);

        const sim::BenchMetrics m =
            sim::runBenchmark(params, options);

        double tol_total = 0;
        for (unsigned mod = 1; mod < timing::kNumModules; ++mod)
            tol_total += m.moduleCycles[mod];
        const double lookup_share = tol_total > 0
            ? 100.0 * m.moduleCycles[static_cast<unsigned>(
                  timing::Module::Lookup)] / tol_total
            : 0;

        table.beginRow();
        table.addf("%u", dispatch);
        table.addf("%llu",
                   static_cast<unsigned long long>(m.guestIndirect));
        table.addf("%.1f", 100.0 * m.tolOverheadFrac());
        table.addf("%.1f", lookup_share);
        table.addf("%llu", static_cast<unsigned long long>(m.cycles));
    }

    std::printf("Indirect-branch density sweep (custom workload)\n");
    std::printf("More indirect dispatch -> more IBTC misses -> more "
                "code-cache lookups and TOL transitions (paper "
                "SIII-B).\n\n");
    table.render();
    return 0;
}
