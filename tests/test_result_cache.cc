/**
 * @file
 * Campaign scale-out gates (docs/campaigns.md): the snapshot codec
 * round-trips bit-exactly, a warm re-run of an identical campaign
 * performs zero simulations with every slot bit-identical to the
 * cold run, shards partition a batch exactly once and share a cache,
 * every component of the cache key invalidates, damaged entries are
 * rejected structurally and re-simulated, intra-batch dedup fans a
 * single simulation out bit-identically, verify-hits blesses honest
 * entries and hard-fails forged ones, and capture/isolation jobs
 * always bypass the cache.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runner/batch_runner.hh"
#include "runner/journal.hh"
#include "runner/result_cache.hh"
#include "runner/snapshot_codec.hh"
#include "sim/metrics.hh"
#include "timing/pipeline.hh"
#include "tol/stats.hh"
#include "workloads/params.hh"
#include "workloads/source.hh"

using namespace darco;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/**
 * A per-test cache directory, emptied of any entries a previous run
 * of the suite left behind — a stale entry would turn an expected
 * cold miss into a hit.
 */
std::string
freshCacheDir(const std::string &name)
{
    const std::string dir = tempPath(name);
    ::mkdir(dir.c_str(), 0777);
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            const std::string file = e->d_name;
            if (file != "." && file != "..")
                ::unlink((dir + "/" + file).c_str());
        }
        ::closedir(d);
    }
    return dir;
}

size_t
countEntries(const std::string &dir)
{
    size_t n = 0;
    if (DIR *d = ::opendir(dir.c_str())) {
        while (const dirent *e = ::readdir(d)) {
            const std::string file = e->d_name;
            if (file.size() > 7 &&
                file.compare(file.size() - 7, 7, ".dcache") == 0) {
                ++n;
            }
        }
        ::closedir(d);
    }
    return n;
}

std::string
readFile(const std::string &path)
{
    std::string data;
    FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return data;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        data.append(buf, got);
    std::fclose(f);
    return data;
}

void
writeFile(const std::string &path, const std::string &data)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
}

sim::MetricsOptions
smallOptions(uint64_t budget)
{
    sim::MetricsOptions options;
    options.guestBudget = budget;
    options.tolConfig.bbToSbThreshold = sim::scaledSbThreshold(budget);
    return options;
}

runner::BatchJob
makeJob(std::string uri, sim::MetricsOptions options)
{
    runner::BatchJob job;
    job.workload = std::move(uri);
    job.options = std::move(options);
    return job;
}

/** A small campaign over the first @p count synthetic benchmarks. */
std::vector<runner::BatchJob>
smallCampaign(size_t count, uint64_t budget = 40'000)
{
    const auto &all = workloads::allBenchmarks();
    std::vector<runner::BatchJob> jobs;
    for (size_t i = 0; i < count && i < all.size(); ++i) {
        jobs.push_back(makeJob(workloads::syntheticUri(all[i].name),
                               smallOptions(budget)));
    }
    return jobs;
}

std::vector<runner::JobResult>
runBatch(const std::vector<runner::BatchJob> &jobs,
         runner::BatchConfig config = {})
{
    return runner::BatchRunner(std::move(config)).run(jobs);
}

/** Per-slot bit-identity: the cache acceptance currency. */
void
expectIdenticalSlots(const std::vector<runner::JobResult> &got,
                     const std::vector<runner::JobResult> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(want[i].uri + strprintf(" (job %zu)", i));
        EXPECT_TRUE(got[i].ok);
        EXPECT_TRUE(want[i].ok);
        EXPECT_EQ(got[i].name, want[i].name);
        EXPECT_EQ(got[i].suite, want[i].suite);
        EXPECT_EQ(got[i].snapshot.result.guestRetired,
                  want[i].snapshot.result.guestRetired);
        EXPECT_EQ(got[i].snapshot.result.cycles,
                  want[i].snapshot.result.cycles);
        EXPECT_EQ(got[i].snapshot.result.halted,
                  want[i].snapshot.result.halted);
        EXPECT_EQ(got[i].snapshot.timingCore,
                  want[i].snapshot.timingCore);
        EXPECT_EQ(timing::diffStats(got[i].snapshot.stats,
                                    want[i].snapshot.stats), "");
        EXPECT_EQ(tol::diffTolStats(got[i].snapshot.tolStats,
                                    want[i].snapshot.tolStats), "");
        // Figure metrics are pure functions of the snapshot
        // (sim::collectMetrics); spot-check the headline fields.
        EXPECT_EQ(got[i].metrics.dynSbm, want[i].metrics.dynSbm);
        EXPECT_EQ(got[i].metrics.cycles, want[i].metrics.cycles);
        EXPECT_DOUBLE_EQ(got[i].metrics.tolCycles,
                         want[i].metrics.tolCycles);
    }
}

/** The cache key a batch job resolves to (mirrors the runner). */
runner::CacheKey
keyFor(const runner::JobResult &r)
{
    return {r.uri, r.fingerprint,
            std::string(runner::kJournalEngineVersion)};
}

} // namespace

// ---------------------------------------------------------------------
// Snapshot codec: round-trip and envelope authentication.
// ---------------------------------------------------------------------

namespace {

/** A synthetic snapshot exercising every serialized component. */
sim::RunSnapshot
denseSnapshot()
{
    sim::RunSnapshot snap;
    snap.result.guestRetired = 123'456;
    snap.result.cycles = 987'654;
    snap.result.halted = true;
    snap.timingCore = "event";
    snap.stats.records = 42;
    snap.stats.cycles = 987'654;
    timing::PipeStats tol_only;
    tol_only.records = 7;
    snap.tolOnly = tol_only;
    snap.tolStats.dynIm = 11;
    snap.tolStats.dynBbm = 22;
    snap.tolStats.dynSbm = 33;
    snap.tolStats.guestIndirectBranches = 44;
    snap.tolStats.staticMode[0x1000] = 1;
    snap.tolStats.staticMode[0x2000] = 2;
    profile::RunProfile prof;
    prof.lineBytes = 64;
    prof.dataReuse.coldAccesses = 5;
    prof.dataReuse.counts[3] = 9;
    prof.branches.dynBranches = 17;
    profile::BranchSite site;
    site.taken = 4;
    site.notTaken = 2;
    site.isCond = true;
    prof.branches.sites[0x1234] = site;
    snap.profile = prof;
    return snap;
}

} // namespace

TEST(SnapshotCodec, RoundTripsBitExactly)
{
    const sim::RunSnapshot snap = denseSnapshot();
    std::string body = "{\"probe\":1";
    runner::codec::appendSnapshotFields(body, snap);
    const std::string line = runner::codec::sealLine(body);

    ASSERT_TRUE(runner::codec::checksummedBody(line).has_value());
    sim::RunSnapshot back;
    ASSERT_TRUE(runner::codec::parseSnapshotFields(line, back));

    EXPECT_EQ(back.result.guestRetired, snap.result.guestRetired);
    EXPECT_EQ(back.result.cycles, snap.result.cycles);
    EXPECT_EQ(back.result.halted, snap.result.halted);
    EXPECT_EQ(back.timingCore, snap.timingCore);
    EXPECT_EQ(timing::diffStats(back.stats, snap.stats), "");
    ASSERT_TRUE(back.tolOnly.has_value());
    EXPECT_EQ(timing::diffStats(*back.tolOnly, *snap.tolOnly), "");
    EXPECT_FALSE(back.appOnly.has_value());
    EXPECT_FALSE(back.tolModule.has_value());
    EXPECT_EQ(tol::diffTolStats(back.tolStats, snap.tolStats), "");
    ASSERT_TRUE(back.profile.has_value());
    EXPECT_EQ(profile::diffProfiles(*back.profile, *snap.profile), "");
}

TEST(SnapshotCodec, TamperedEnvelopeFailsAuthentication)
{
    std::string body = "{\"probe\":1";
    runner::codec::appendSnapshotFields(body, denseSnapshot());
    const std::string line = runner::codec::sealLine(body);

    // Flip one body character: authentication must fail.
    std::string tampered = line;
    tampered[line.find("guest_retired") + 20] ^= 1;
    EXPECT_FALSE(runner::codec::checksummedBody(tampered).has_value());
    // Truncation (torn write) must fail too.
    EXPECT_FALSE(runner::codec::checksummedBody(
                     line.substr(0, line.size() / 2)).has_value());
    // The intact line still authenticates.
    EXPECT_TRUE(runner::codec::checksummedBody(line).has_value());
}

// ---------------------------------------------------------------------
// The headline contract: a warm re-run simulates nothing and is
// bit-identical to the cold run.
// ---------------------------------------------------------------------

TEST(ResultCache, WarmRerunHitsEverythingBitIdentically)
{
    const std::string dir =
        freshCacheDir("result_cache_warm_rerun");
    const std::vector<runner::BatchJob> jobs = smallCampaign(6);

    runner::BatchConfig config;
    config.cacheDir = dir;
    const std::vector<runner::JobResult> cold = runBatch(jobs, config);
    for (const runner::JobResult &r : cold) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.cacheStatus, runner::CacheStatus::Miss);
        EXPECT_GE(r.attempts, 1u);
    }
    EXPECT_EQ(countEntries(dir), jobs.size());

    const std::vector<runner::JobResult> warm = runBatch(jobs, config);
    for (const runner::JobResult &r : warm) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.cacheStatus, runner::CacheStatus::Hit);
        // Zero simulations: a hit never executes.
        EXPECT_EQ(r.attempts, 0u);
    }
    expectIdenticalSlots(warm, cold);

    // The cache is also bit-identical to a run that never saw a
    // cache at all.
    expectIdenticalSlots(warm, runBatch(jobs));
}

// ---------------------------------------------------------------------
// Sharding: a stable job-index partition sharing one cache.
// ---------------------------------------------------------------------

TEST(Sharding, ShardsPartitionExactlyOnceAndShareTheCache)
{
    const std::string dir = freshCacheDir("result_cache_shards");
    const std::vector<runner::BatchJob> jobs = smallCampaign(5);

    for (unsigned k = 0; k < 2; ++k) {
        runner::BatchConfig config;
        config.cacheDir = dir;
        config.shard = {k, 2};
        const std::vector<runner::JobResult> part =
            runBatch(jobs, config);
        for (size_t i = 0; i < part.size(); ++i) {
            SCOPED_TRACE(strprintf("shard %u job %zu", k, i));
            if (i % 2 == k) {
                EXPECT_FALSE(part[i].skipped);
                EXPECT_TRUE(part[i].ok) << part[i].error;
                EXPECT_EQ(part[i].cacheStatus,
                          runner::CacheStatus::Miss);
            } else {
                // Out-of-shard: untouched slot, not a failure.
                EXPECT_TRUE(part[i].skipped);
                EXPECT_FALSE(part[i].ok);
                EXPECT_TRUE(part[i].error.empty());
                EXPECT_EQ(part[i].attempts, 0u);
            }
        }
    }

    // The two shards covered the campaign exactly once; an unsharded
    // warm run over the shared cache simulates nothing and matches a
    // cache-free reference bit for bit.
    EXPECT_EQ(countEntries(dir), jobs.size());
    runner::BatchConfig warm_config;
    warm_config.cacheDir = dir;
    const std::vector<runner::JobResult> warm =
        runBatch(jobs, warm_config);
    for (const runner::JobResult &r : warm) {
        EXPECT_EQ(r.cacheStatus, runner::CacheStatus::Hit);
        EXPECT_EQ(r.attempts, 0u);
    }
    expectIdenticalSlots(warm, runBatch(jobs));
}

// ---------------------------------------------------------------------
// Invalidation: every component of the key misses on change.
// ---------------------------------------------------------------------

TEST(Invalidation, EngineVersionBumpMisses)
{
    const std::string dir = freshCacheDir("result_cache_engine");
    runner::ResultCache cache(dir);

    const sim::RunSnapshot snap = denseSnapshot();
    runner::CacheKey old_key{"source://synthetic/x", 0x1234,
                             "darco-engine-0"};
    ASSERT_TRUE(cache.store(old_key, snap));

    // Same workload, same fingerprint, current engine: miss.
    runner::CacheKey key = old_key;
    key.engine = runner::kJournalEngineVersion;
    EXPECT_FALSE(cache.lookup(key).has_value());
    // The old engine's entry is still addressable under its own key.
    EXPECT_TRUE(cache.lookup(old_key).has_value());
}

TEST(Invalidation, AnyOptionsChangeMisses)
{
    const std::string dir = freshCacheDir("result_cache_options");
    const std::vector<runner::BatchJob> jobs = smallCampaign(1);

    runner::BatchConfig config;
    config.cacheDir = dir;
    ASSERT_TRUE(runBatch(jobs, config)[0].ok);

    // The fingerprint folds in every effective MetricsOptions field:
    // spot-check several very different knobs.
    const std::string &wl = jobs[0].workload;
    const sim::MetricsOptions base = smallOptions(40'000);
    const uint64_t fp =
        runner::configFingerprint(base, wl, false);
    {
        sim::MetricsOptions o = base;
        o.guestBudget = 50'000;
        EXPECT_NE(runner::configFingerprint(o, wl, false), fp);
    }
    {
        sim::MetricsOptions o = base;
        o.profile = true;
        EXPECT_NE(runner::configFingerprint(o, wl, false), fp);
    }
    {
        sim::MetricsOptions o = base;
        o.timingConfig.issueWidth += 1;
        EXPECT_NE(runner::configFingerprint(o, wl, false), fp);
    }
    {
        sim::MetricsOptions o = base;
        o.tolConfig.enableIbtc = !o.tolConfig.enableIbtc;
        EXPECT_NE(runner::configFingerprint(o, wl, false), fp);
    }
    // requireHalt is part of the experiment definition too.
    EXPECT_NE(runner::configFingerprint(base, wl, true), fp);

    // End to end: the changed-budget campaign misses.
    std::vector<runner::BatchJob> changed = jobs;
    changed[0].options.guestBudget = 50'000;
    const std::vector<runner::JobResult> rerun =
        runBatch(changed, config);
    EXPECT_EQ(rerun[0].cacheStatus, runner::CacheStatus::Miss);
}

TEST(Invalidation, WorkloadIdentityChangeMisses)
{
    const std::string dir = freshCacheDir("result_cache_workload");
    runner::BatchConfig config;
    config.cacheDir = dir;
    const std::vector<runner::JobResult> first =
        runBatch(smallCampaign(1), config);
    ASSERT_TRUE(first[0].ok);

    // A different benchmark under the same options: its own key,
    // never the first benchmark's entry.
    const auto &all = workloads::allBenchmarks();
    ASSERT_GE(all.size(), 2u);
    std::vector<runner::BatchJob> other;
    other.push_back(makeJob(workloads::syntheticUri(all[1].name),
                            smallOptions(40'000)));
    const std::vector<runner::JobResult> second =
        runBatch(other, config);
    EXPECT_EQ(second[0].cacheStatus, runner::CacheStatus::Miss);
    EXPECT_NE(second[0].fingerprint, first[0].fingerprint);
}

// ---------------------------------------------------------------------
// Damaged entries: rejected structurally, re-simulated, replaced.
// ---------------------------------------------------------------------

namespace {

enum class Damage { Truncate, BitFlip, Torn };

void
damageAndRerun(Damage damage, const char *dir_name)
{
    const std::string dir = freshCacheDir(dir_name);
    const std::vector<runner::BatchJob> jobs = smallCampaign(1);
    runner::BatchConfig config;
    config.cacheDir = dir;
    const std::vector<runner::JobResult> cold = runBatch(jobs, config);
    ASSERT_TRUE(cold[0].ok);

    runner::ResultCache cache(dir);
    const std::string path = cache.entryPath(keyFor(cold[0]));
    std::string data = readFile(path);
    ASSERT_FALSE(data.empty());
    switch (damage) {
      case Damage::Truncate:
        data.resize(data.size() / 3);
        break;
      case Damage::BitFlip:
        data[data.size() / 2] ^= 0x10;
        break;
      case Damage::Torn:
        // A torn concurrent write never happens through the atomic
        // rename path, but a crashed copy or a failing disk can
        // still produce one: half an entry, no newline.
        data = data.substr(0, data.size() / 2) + "\n";
        break;
    }
    writeFile(path, data);

    // The damaged entry is never returned: the job re-simulates
    // (miss), produces the same numbers, and replaces the entry.
    const std::vector<runner::JobResult> rerun =
        runBatch(jobs, config);
    EXPECT_TRUE(rerun[0].ok) << rerun[0].error;
    EXPECT_EQ(rerun[0].cacheStatus, runner::CacheStatus::Miss);
    EXPECT_GE(rerun[0].attempts, 1u);
    expectIdenticalSlots(rerun, cold);

    // The replacement entry is valid again.
    EXPECT_TRUE(cache.lookup(keyFor(cold[0])).has_value());
}

} // namespace

TEST(DamagedEntries, TruncatedEntryIsRejectedAndResimulated)
{
    damageAndRerun(Damage::Truncate, "result_cache_truncate");
}

TEST(DamagedEntries, BitFlippedEntryIsRejectedAndResimulated)
{
    damageAndRerun(Damage::BitFlip, "result_cache_bitflip");
}

TEST(DamagedEntries, TornEntryIsRejectedAndResimulated)
{
    damageAndRerun(Damage::Torn, "result_cache_torn");
}

// ---------------------------------------------------------------------
// Intra-batch dedup: duplicate-fingerprint jobs simulate once.
// ---------------------------------------------------------------------

TEST(Dedup, DuplicateJobsSimulateOnceAndFanOutBitIdentically)
{
    const auto &all = workloads::allBenchmarks();
    const std::string uri_a = workloads::syntheticUri(all[0].name);
    const std::string uri_b = workloads::syntheticUri(all[1].name);

    // Three copies of A, one B, then another A copy — leaders must
    // be the lowest index of each fingerprint group.
    std::vector<runner::BatchJob> jobs;
    jobs.push_back(makeJob(uri_a, smallOptions(40'000)));
    jobs.push_back(makeJob(uri_a, smallOptions(40'000)));
    jobs.push_back(makeJob(uri_b, smallOptions(40'000)));
    jobs.push_back(makeJob(uri_a, smallOptions(40'000)));
    // Same workload, different budget: a different fingerprint, so
    // NOT part of the dedup group.
    jobs.push_back(makeJob(uri_a, smallOptions(60'000)));

    for (const unsigned workers : {1u, 4u}) {
        SCOPED_TRACE(strprintf("%u worker(s)", workers));
        runner::BatchConfig config;
        config.workers = workers;
        const std::vector<runner::JobResult> got =
            runBatch(jobs, config);

        ASSERT_EQ(got.size(), jobs.size());
        EXPECT_FALSE(got[0].deduped);  // leader simulated
        EXPECT_GE(got[0].attempts, 1u);
        EXPECT_TRUE(got[1].deduped);
        EXPECT_EQ(got[1].attempts, 0u);
        EXPECT_FALSE(got[2].deduped);  // only B in its group
        EXPECT_TRUE(got[3].deduped);
        EXPECT_EQ(got[3].attempts, 0u);
        EXPECT_FALSE(got[4].deduped);  // different fingerprint
        EXPECT_GE(got[4].attempts, 1u);

        // Bit-identical to running every slot independently.
        std::vector<runner::JobResult> independent;
        for (const runner::BatchJob &job : jobs) {
            independent.push_back(
                runBatch(std::vector<runner::BatchJob>{job})[0]);
        }
        expectIdenticalSlots(got, independent);
    }
}

// ---------------------------------------------------------------------
// Verify-hits: honest hits are blessed, forged hits hard-fail.
// ---------------------------------------------------------------------

TEST(VerifyHits, HonestHitsVerifyCleanly)
{
    const std::string dir = freshCacheDir("result_cache_verify_ok");
    const std::vector<runner::BatchJob> jobs = smallCampaign(3);
    runner::BatchConfig config;
    config.cacheDir = dir;
    const std::vector<runner::JobResult> cold = runBatch(jobs, config);

    config.verifyHitFraction = 1.0;
    const std::vector<runner::JobResult> warm = runBatch(jobs, config);
    for (const runner::JobResult &r : warm) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.cacheStatus, runner::CacheStatus::Hit);
        EXPECT_TRUE(r.verifiedHit);
        // Verification re-simulates: attempts counts the audit run.
        EXPECT_GE(r.attempts, 1u);
    }
    expectIdenticalSlots(warm, cold);
}

TEST(VerifyHits, ForgedEntryHardFailsUnderVerification)
{
    const std::string dir =
        freshCacheDir("result_cache_verify_forged");
    const std::vector<runner::BatchJob> jobs = smallCampaign(1);
    runner::BatchConfig config;
    config.cacheDir = dir;
    const std::vector<runner::JobResult> cold = runBatch(jobs, config);
    ASSERT_TRUE(cold[0].ok);

    // Forge a checksummed, structurally valid entry whose cycles
    // differ by one — undetectable without re-simulation.
    runner::ResultCache cache(dir);
    sim::RunSnapshot forged = cold[0].snapshot;
    forged.result.cycles += 1;
    ASSERT_TRUE(cache.store(keyFor(cold[0]), forged));

    // Without verification the forged entry is returned: the cache
    // is trusted by design, which is exactly why verify-hits exists.
    const std::vector<runner::JobResult> trusting =
        runBatch(jobs, config);
    EXPECT_EQ(trusting[0].cacheStatus, runner::CacheStatus::Hit);
    EXPECT_EQ(trusting[0].snapshot.result.cycles,
              forged.result.cycles);

    // With verification the divergence hard-fails the job.
    config.verifyHitFraction = 1.0;
    const std::vector<runner::JobResult> audited =
        runBatch(jobs, config);
    EXPECT_FALSE(audited[0].ok);
    EXPECT_EQ(audited[0].cacheStatus, runner::CacheStatus::Hit);
    EXPECT_FALSE(audited[0].verifiedHit);
    EXPECT_EQ(audited[0].runError.cls, sim::RunErrorClass::Internal);
    EXPECT_NE(audited[0].error.find("verify-hits"), std::string::npos);
}

// ---------------------------------------------------------------------
// Bypass: capture and isolation jobs never touch the cache.
// ---------------------------------------------------------------------

TEST(Bypass, CaptureAndIsolationJobsNeverUseTheCache)
{
    const std::string dir = freshCacheDir("result_cache_bypass");
    const auto &all = workloads::allBenchmarks();

    std::vector<runner::BatchJob> jobs;
    runner::BatchJob capture =
        makeJob(workloads::syntheticUri(all[0].name),
                smallOptions(40'000));
    capture.options.captureTracePath =
        tempPath("result_cache_bypass.dtrc");
    jobs.push_back(capture);
    runner::BatchJob isolation =
        makeJob(workloads::syntheticUri(all[1].name),
                smallOptions(40'000));
    isolation.options.tolOnlyPipe = true;
    isolation.options.appOnlyPipe = true;
    isolation.options.tolModulePipe = true;
    jobs.push_back(isolation);

    runner::BatchConfig config;
    config.cacheDir = dir;
    for (int pass = 0; pass < 2; ++pass) {
        SCOPED_TRACE(strprintf("pass %d", pass));
        const std::vector<runner::JobResult> results =
            runBatch(jobs, config);
        for (const runner::JobResult &r : results) {
            EXPECT_TRUE(r.ok) << r.error;
            // Always executed, never a hit — even on the warm pass.
            EXPECT_EQ(r.cacheStatus, runner::CacheStatus::Bypass);
            EXPECT_GE(r.attempts, 1u);
        }
        // And never stored.
        EXPECT_EQ(countEntries(dir), 0u);
    }
}
