/**
 * @file
 * Timing-model unit tests: cache geometry and tree-PLRU exactness,
 * write-back behaviour, two-level TLB, Gshare/BTB learning, stride
 * prefetcher, and pipeline timing invariants (dual-issue IPC,
 * dependence chains, load-use latency, the 6-cycle misprediction
 * penalty, cycle-accounting closure).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "timing/branch_predictor.hh"
#include "timing/cache.hh"
#include "timing/pipeline.hh"
#include "timing/prefetcher.hh"
#include "timing/tlb.hh"

using namespace darco;
using namespace darco::timing;

// ----- caches -----------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    TimingConfig cfg;
    Cache l2(cfg.l2, nullptr, cfg.memLatency);
    Cache l1(cfg.l1d, &l2, cfg.memLatency);

    bool miss = false;
    const uint32_t lat1 = l1.access(0x1000, false, miss);
    EXPECT_TRUE(miss);
    EXPECT_EQ(lat1, cfg.l1d.hitLatency + cfg.l2.hitLatency +
                    cfg.memLatency);

    const uint32_t lat2 = l1.access(0x1000, false, miss);
    EXPECT_FALSE(miss);
    EXPECT_EQ(lat2, cfg.l1d.hitLatency);

    // Same line, different offset: still a hit.
    l1.access(0x103C, false, miss);
    EXPECT_FALSE(miss);
    // Next line: miss, but L2 holds it? No - L2 fills by line too.
    l1.access(0x1040, false, miss);
    EXPECT_TRUE(miss);
}

TEST(Cache, L2HitPathLatency)
{
    TimingConfig cfg;
    Cache l2(cfg.l2, nullptr, cfg.memLatency);
    Cache l1(cfg.l1d, &l2, cfg.memLatency);

    bool miss = false;
    l1.access(0x2000, false, miss);           // fills both levels
    // Evict from L1 by filling its set (L1D: 32KB/64B/4w -> 128 sets;
    // set stride = 128 * 64 = 8KB).
    for (uint32_t w = 1; w <= 4; ++w)
        l1.access(0x2000 + w * 8192, false, miss);
    // 0x2000 evicted from L1 but still in L2 (512KB/128B/8w).
    const uint32_t lat = l1.access(0x2000, false, miss);
    EXPECT_TRUE(miss);
    EXPECT_EQ(lat, cfg.l1d.hitLatency + cfg.l2.hitLatency);
}

TEST(Cache, TreePlruExactSequence)
{
    // 4-way set: fill ways A,B,C,D then touch A: PLRU victim must be
    // B (the least recently used after the touch pattern).
    CacheGeometry geom{4 * 64 * 4, 64, 4, 1};  // 4 sets exactly
    Cache cache(geom, nullptr, 10);

    bool miss;
    const uint32_t set_stride = 4 * 64;  // 4 sets * 64B
    auto addr = [&](uint32_t tag) { return tag * set_stride; };

    cache.access(addr(1), false, miss);  // A
    cache.access(addr(2), false, miss);  // B
    cache.access(addr(3), false, miss);  // C
    cache.access(addr(4), false, miss);  // D
    cache.access(addr(1), false, miss);  // touch A
    EXPECT_FALSE(miss);

    // Insert E: evicts tree-PLRU victim. A was just touched, so A must
    // survive.
    cache.access(addr(5), false, miss);
    EXPECT_TRUE(miss);
    cache.access(addr(1), false, miss);
    EXPECT_FALSE(miss) << "PLRU evicted the most recently used way";
}

TEST(Cache, WritebackOnDirtyEviction)
{
    CacheGeometry small{2 * 64 * 2, 64, 2, 1};  // 2 sets, 2 ways
    Cache l2(CacheGeometry{64 * 1024, 128, 8, 16}, nullptr, 100);
    Cache l1(small, &l2, 100);

    bool miss;
    const uint32_t stride = 2 * 64;
    l1.access(0 * stride, true, miss);   // dirty A
    l1.access(1 * stride, false, miss);  // B
    l1.access(2 * stride, false, miss);  // evicts A -> writeback
    EXPECT_EQ(l1.stats().writebacks, 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    TimingConfig cfg;
    Cache l1(cfg.l1d, nullptr, 100);
    EXPECT_FALSE(l1.probe(0x5000));
    bool miss;
    l1.access(0x5000, false, miss);
    EXPECT_TRUE(l1.probe(0x5000));
    EXPECT_EQ(l1.stats().accesses, 1u);  // probes don't count
}

TEST(Cache, PrefetchFillsWithoutAccessCount)
{
    TimingConfig cfg;
    Cache l1(cfg.l1d, nullptr, 100);
    l1.prefetch(0x9000);
    EXPECT_TRUE(l1.probe(0x9000));
    EXPECT_EQ(l1.stats().accesses, 0u);
    EXPECT_EQ(l1.stats().prefetchFills, 1u);
}

// ----- TLB -------------------------------------------------------------

TEST(Tlb, TwoLevelLatencies)
{
    TimingConfig cfg;
    Tlb tlb(cfg);

    // Cold: L1 and L2 miss -> walk.
    EXPECT_EQ(tlb.access(0x1000), cfg.tlbL2Latency + cfg.tlbWalkLatency);
    // Warm: L1 hit.
    EXPECT_EQ(tlb.access(0x1234), 0u);
    EXPECT_EQ(tlb.stats().l2Misses, 1u);

    // Blow out L1 (64 entries) but stay within L2 (256): pages 1..80.
    for (uint32_t p = 1; p <= 80; ++p)
        tlb.access(p << 12);
    // Page 1 should now be an L1 miss but L2 hit.
    const uint32_t lat = tlb.access(0x1000 + (0u << 12));
    EXPECT_TRUE(lat == 0 || lat == cfg.tlbL2Latency);
}

TEST(Tlb, SamePageSingleEntry)
{
    TimingConfig cfg;
    Tlb tlb(cfg);
    tlb.access(0x7000);
    EXPECT_EQ(tlb.access(0x7FFF), 0u);  // same 4K page
    EXPECT_EQ(tlb.stats().l1Misses, 1u);
}

// ----- branch predictor --------------------------------------------------

TEST(BranchPredictor, LearnsAlwaysTakenLoop)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    unsigned wrong = 0;
    for (int i = 0; i < 100; ++i) {
        if (!bp.predict(0x4000, true, 0x3000, true, false))
            ++wrong;
    }
    EXPECT_LT(wrong, 20u);  // warms up within the history depth
}

TEST(BranchPredictor, LearnsAlternatingWithHistory)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    // Alternating T/N/T/N is perfectly predictable with global
    // history once warmed.
    unsigned wrong_late = 0;
    for (int i = 0; i < 400; ++i) {
        const bool taken = (i & 1) != 0;
        const bool ok = bp.predict(0x4000, taken, 0x3000, true, false);
        if (i >= 200 && !ok)
            ++wrong_late;
    }
    EXPECT_LT(wrong_late, 10u);
}

TEST(BranchPredictor, IndirectTargetChangesMispredict)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    // Stable target: learns.
    for (int i = 0; i < 10; ++i)
        bp.predict(0x5000, true, 0x8000, false, true);
    EXPECT_TRUE(bp.predict(0x5000, true, 0x8000, false, true));
    // Changing target: always wrong on the change.
    EXPECT_FALSE(bp.predict(0x5000, true, 0x9000, false, true));
    EXPECT_FALSE(bp.predict(0x5000, true, 0x8000, false, true));
    EXPECT_GT(bp.stats().indirectMispredicts, 0u);
}

TEST(BranchPredictor, BtbColdMissMispredictsTakenBranch)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    // First sight of an unconditional jump: no BTB target -> wrong.
    EXPECT_FALSE(bp.predict(0x6000, true, 0xA000, false, false));
    EXPECT_TRUE(bp.predict(0x6000, true, 0xA000, false, false));
}

// ----- prefetcher ---------------------------------------------------------

TEST(Prefetcher, DetectsStrideAfterConfirmations)
{
    TimingConfig cfg;
    Cache l2(cfg.l2, nullptr, cfg.memLatency);
    StridePrefetcher pf(cfg.prefetcherEntries, l2);

    // Stride of one line: 64B; distance-4 prefetch lands at +0x100.
    pf.train(0x100, 0x10000);
    pf.train(0x100, 0x10040);
    pf.train(0x100, 0x10080);  // 2nd confirmation -> prefetch 0x10180
    EXPECT_GE(pf.stats().prefetches, 1u);
    EXPECT_TRUE(l2.probe(0x10180));
}

TEST(Prefetcher, IgnoresIrregularPattern)
{
    TimingConfig cfg;
    Cache l2(cfg.l2, nullptr, cfg.memLatency);
    StridePrefetcher pf(cfg.prefetcherEntries, l2);
    Prng rng(9);
    for (int i = 0; i < 50; ++i)
        pf.train(0x200, static_cast<uint32_t>(rng.below(1u << 20)));
    EXPECT_LT(pf.stats().prefetches, 5u);
}

// ----- pipeline ------------------------------------------------------------

namespace {

Record
aluRec(uint32_t pc, uint8_t rd, uint8_t rs1, uint8_t rs2,
       Module mod = Module::App)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::ADD;
    rec.rd = rd;
    rec.rs1 = rs1;
    rec.rs2 = rs2;
    rec.module = mod;
    rec.fromRegion = mod == Module::App;
    return rec;
}

Record
loadRec(uint32_t pc, uint8_t rd, uint32_t addr)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::LD;
    rec.rd = rd;
    rec.rs1 = 40;
    rec.isLoad = true;
    rec.memAddr = addr;
    rec.size = 4;
    rec.fromRegion = true;
    return rec;
}

Record
branchRec(uint32_t pc, bool taken, uint32_t target)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::BNE;
    rec.rs1 = 33;
    rec.rs2 = 0;
    rec.isBranch = true;
    rec.isCondBranch = true;
    rec.taken = taken;
    rec.branchTarget = taken ? target : 0;
    rec.fromRegion = true;
    return rec;
}

} // namespace

TEST(Pipeline, DualIssueIndependentStreamReachesIpc2)
{
    TimingConfig cfg;
    Pipeline pipe(cfg, Pipeline::Filter::All);
    // 4000 independent ALU ops: rd rotates so no dependences.
    for (uint32_t i = 0; i < 4000; ++i)
        pipe.consume(aluRec(0x1000 + 4 * (i % 16), 33 + (i % 8), 32, 32));
    pipe.finish();
    EXPECT_GT(pipe.stats().ipc(), 1.8);
}

TEST(Pipeline, DependenceChainLimitsIpcTo1)
{
    TimingConfig cfg;
    Pipeline pipe(cfg, Pipeline::Filter::All);
    // Serial chain: each reads the previous result.
    for (uint32_t i = 0; i < 4000; ++i)
        pipe.consume(aluRec(0x1000 + 4 * (i % 16), 33, 33, 33));
    pipe.finish();
    EXPECT_LT(pipe.stats().ipc(), 1.05);
    EXPECT_GT(pipe.stats().ipc(), 0.90);
}

TEST(Pipeline, MispredictPenaltyMatchesConfig)
{
    TimingConfig cfg;

    // Baseline: same stream with an always-correctly-predicted branch
    // vs one where every branch target alternates (mispredicted).
    auto run = [&cfg](bool random_dir) {
        Pipeline pipe(cfg, Pipeline::Filter::All);
        Prng rng(17);
        const unsigned n = 2000;
        for (unsigned i = 0; i < n; ++i) {
            for (unsigned k = 0; k < 4; ++k)
                pipe.consume(aluRec(0x1000 + 16 * k,
                                    static_cast<uint8_t>(33 + k), 32,
                                    32));
            // Conditional branch: stable direction+target vs random
            // direction (irreducibly mispredicted ~50% of the time).
            const bool taken = random_dir ? rng.chance(0.5) : true;
            pipe.consume(branchRec(0x1100, taken, 0x1000));
        }
        pipe.finish();
        return pipe.stats();
    };

    const PipeStats stable = run(false);
    const PipeStats alt = run(true);
    ASSERT_GT(alt.bp.mispredicts, 500u);  // random directions mispredict

    const double extra_cycles =
        static_cast<double>(alt.cycles) - static_cast<double>(stable.cycles);
    const double extra_mispredicts =
        static_cast<double>(alt.bp.mispredicts) -
        static_cast<double>(stable.bp.mispredicts);
    const double penalty = extra_cycles / extra_mispredicts;
    EXPECT_NEAR(penalty, static_cast<double>(cfg.mispredictPenalty), 1.5);
}

TEST(Pipeline, LoadMissCreatesDcacheBubbles)
{
    TimingConfig cfg;
    cfg.prefetcherEnabled = false;
    Pipeline pipe(cfg, Pipeline::Filter::All);
    // Loads striding far apart (always missing), each immediately
    // consumed.
    for (uint32_t i = 0; i < 500; ++i) {
        pipe.consume(loadRec(0x1000, 34, 0x100000 + i * 4096));
        pipe.consume(aluRec(0x1004, 35, 34, 34));
    }
    pipe.finish();
    const double dbubbles =
        pipe.stats().bucketTotal(Bucket::DcacheBubble);
    EXPECT_GT(dbubbles, 0.3 * static_cast<double>(pipe.stats().cycles));
}

TEST(Pipeline, AccountingClosesExactly)
{
    TimingConfig cfg;
    Pipeline pipe(cfg, Pipeline::Filter::All);
    Prng rng(5);
    for (uint32_t i = 0; i < 5000; ++i) {
        if (rng.chance(0.2)) {
            pipe.consume(loadRec(0x1000 + 4 * (i % 64), 34,
                                 static_cast<uint32_t>(rng.below(1u << 22))));
        } else if (rng.chance(0.15)) {
            pipe.consume(branchRec(0x2000 + 4 * (i % 8), rng.chance(0.5),
                                   0x1000));
        } else {
            pipe.consume(aluRec(0x1000 + 4 * (i % 64),
                                static_cast<uint8_t>(33 + i % 6), 32, 32));
        }
    }
    pipe.finish();

    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += pipe.stats().bucketTotal(static_cast<Bucket>(b));
    EXPECT_NEAR(total, static_cast<double>(pipe.stats().cycles), 0.5);

    // Source-split accounting closes too.
    const double src_total = pipe.stats().sourceCycles(false) +
                             pipe.stats().sourceCycles(true);
    EXPECT_NEAR(src_total, static_cast<double>(pipe.stats().cycles), 0.5);
}

TEST(Pipeline, FilterDropsOtherSide)
{
    TimingConfig cfg;
    Pipeline tol_pipe(cfg, Pipeline::Filter::TolOnly);
    Pipeline app_pipe(cfg, Pipeline::Filter::AppOnly);
    for (uint32_t i = 0; i < 100; ++i) {
        Record app = aluRec(0x1000, 33, 32, 32, Module::App);
        Record tol = aluRec(0x2000, 2, 1, 1, Module::IM);
        tol.fromRegion = false;
        tol_pipe.consume(app);
        tol_pipe.consume(tol);
        app_pipe.consume(app);
        app_pipe.consume(tol);
    }
    tol_pipe.finish();
    app_pipe.finish();
    EXPECT_EQ(tol_pipe.stats().records, 100u);
    EXPECT_EQ(app_pipe.stats().records, 100u);
}

TEST(Pipeline, ComplexOpsUseLongerLatency)
{
    TimingConfig cfg;
    // Serial FDIV chain: latency 5 per op.
    Pipeline pipe(cfg, Pipeline::Filter::All);
    for (uint32_t i = 0; i < 1000; ++i) {
        Record rec;
        rec.pc = 0x1000 + 4 * (i % 8);
        rec.op = host::HOp::FDIV;
        rec.rd = timing::fpRegId(16);
        rec.rs1 = timing::fpRegId(16);
        rec.rs2 = timing::fpRegId(17);
        rec.fromRegion = true;
        pipe.consume(rec);
    }
    pipe.finish();
    // ~5 cycles per instruction.
    EXPECT_GT(pipe.stats().cycles, 4500u);
}
