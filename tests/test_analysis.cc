/**
 * @file
 * Static-analysis layer tests (src/analysis/).
 *
 * Two halves:
 *
 *  1. Mutation tests — each class of miscompile the verifier exists
 *     to catch is injected deliberately (into a hand-built trace, a
 *     tampered allocation, or a tampered CFG) and must be reported
 *     with the right diagnostic: use-before-def, SSA double
 *     assignment, width mismatch, reordered dependent memory
 *     operations, scheduler dependence-edge violation, double-assigned
 *     host register, dropped/shared spill slot, resurrected dead code,
 *     orphaned branch target, and a broken dominator edge.
 *
 *  2. Cross-validation — the static CFG analyzer against real runs'
 *     guest-level dynamic branch profiles: clean programs and all 48
 *     paper workloads must produce zero findings (branch-site
 *     agreement and exact per-block flow conservation), and tampered
 *     profiles must be rejected.
 */

#include <gtest/gtest.h>

#include "analysis/cfg.hh"
#include "analysis/verify.hh"
#include "guest/assembler.hh"
#include "ir/regalloc.hh"
#include "sim/system.hh"
#include "workloads/params.hh"

namespace an = darco::analysis;
namespace dg = darco::guest;
namespace ir = darco::ir;
namespace wl = darco::workloads;
using darco::sim::SimConfig;
using darco::sim::System;
using darco::sim::SystemResult;
using dg::Assembler;

namespace {

bool
hasFinding(const an::Findings &findings, const std::string &needle)
{
    for (const std::string &f : findings)
        if (f.find(needle) != std::string::npos)
            return true;
    return false;
}

std::string
joined(const an::Findings &findings)
{
    std::string out;
    for (const std::string &f : findings)
        out += f + "\n";
    return out;
}

ir::IrInst
mk(ir::IrOp op, uint16_t guest_index = 0)
{
    ir::IrInst inst;
    inst.op = op;
    inst.guestIndex = guest_index;
    return inst;
}

/** A clean little trace: t0 = [v0]; [v1] = t0; jexit. */
ir::Trace
loadStoreTrace()
{
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips = {0x1000, 0x1003, 0x1006};

    const ir::Vreg tmp = t.newTemp(ir::RegClass::Int);
    ir::IrInst ld = mk(ir::IrOp::LD, 0);
    ld.dst = tmp;
    ld.src1 = ir::vGpr(0);
    ld.size = 4;
    t.append(ld);

    ir::IrInst st = mk(ir::IrOp::ST, 1);
    st.src1 = ir::vGpr(1);
    st.src2 = tmp;
    st.size = 4;
    t.append(st);

    ir::IrInst exit = mk(ir::IrOp::JEXIT, 2);
    exit.exitId = 0;
    t.append(exit);

    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 3;
    t.exits.push_back(ex);
    return t;
}

dg::Program
finish(Assembler &as)
{
    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    return prog;
}

SimConfig
profiledConfig(uint64_t budget)
{
    SimConfig cfg;
    cfg.cosim = true;
    cfg.cosimStrict = true;
    cfg.profile = true;
    cfg.guestBudget = budget;
    cfg.tol.imToBbThreshold = 3;
    cfg.tol.bbToSbThreshold = 50;
    return cfg;
}

} // namespace

// ===================================================================
// IR verifier mutation classes
// ===================================================================

TEST(VerifyTrace, CleanTraceHasNoFindings)
{
    const an::Findings f = an::verifyTrace(loadStoreTrace());
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(VerifyTrace, CatchesUseBeforeDef)
{
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips = {0x1000, 0x1002};
    const ir::Vreg tmp = t.newTemp(ir::RegClass::Int);

    ir::IrInst use = mk(ir::IrOp::MOV, 0);   // v1 = tmp, tmp undefined
    use.dst = ir::vGpr(1);
    use.src1 = tmp;
    t.append(use);

    ir::IrInst def = mk(ir::IrOp::LDI, 1);   // too late
    def.dst = tmp;
    def.imm = 5;
    t.append(def);

    ir::IrInst exit = mk(ir::IrOp::JEXIT, 1);
    t.append(exit);
    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 2;
    t.exits.push_back(ex);

    const an::Findings f = an::verifyTrace(t);
    EXPECT_TRUE(hasFinding(f, "used before def")) << joined(f);
}

TEST(VerifyTrace, CatchesDoubleAssignmentSsaViolation)
{
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips = {0x1000};
    const ir::Vreg tmp = t.newTemp(ir::RegClass::Int);
    for (int i = 0; i < 2; ++i) {
        ir::IrInst def = mk(ir::IrOp::LDI, 0);
        def.dst = tmp;
        def.imm = i;
        t.append(def);
    }
    ir::IrInst use = mk(ir::IrOp::MOV, 0);
    use.dst = ir::vGpr(1);
    use.src1 = tmp;
    t.append(use);
    ir::IrInst exit = mk(ir::IrOp::JEXIT, 0);
    t.append(exit);
    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 1;
    t.exits.push_back(ex);

    const an::Findings f = an::verifyTrace(t);
    EXPECT_TRUE(hasFinding(f, "SSA violation")) << joined(f);
}

TEST(VerifyTrace, CatchesWidthMismatch)
{
    ir::Trace t = loadStoreTrace();
    t.insts[0].size = 2;   // GX86 integer accesses are 1 or 4 bytes
    const an::Findings f = an::verifyTrace(t);
    EXPECT_TRUE(hasFinding(f, "width mismatch")) << joined(f);
}

TEST(VerifyTrace, CatchesReorderedDependentMemoryOps)
{
    // Store of guest inst 1 placed before the load of guest inst 0:
    // an unscheduled trace must keep side effects in guest order.
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips = {0x1000, 0x1003};

    ir::IrInst st = mk(ir::IrOp::ST, 1);
    st.src1 = ir::vGpr(1);
    st.src2 = ir::vGpr(0);
    st.size = 4;
    t.append(st);

    const ir::Vreg tmp = t.newTemp(ir::RegClass::Int);
    ir::IrInst ld = mk(ir::IrOp::LD, 0);
    ld.dst = tmp;
    ld.src1 = ir::vGpr(0);
    ld.size = 4;
    t.append(ld);

    ir::IrInst mov = mk(ir::IrOp::MOV, 1);
    mov.dst = ir::vGpr(2);
    mov.src1 = tmp;
    t.append(mov);

    ir::IrInst exit = mk(ir::IrOp::JEXIT, 1);
    t.append(exit);
    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 2;
    t.exits.push_back(ex);

    const an::Findings f = an::verifyTrace(t, /*scheduled=*/false);
    EXPECT_TRUE(hasFinding(f, "reordered dependent memory operations"))
        << joined(f);
}

TEST(VerifyTrace, CatchesResurrectedDeadCode)
{
    ir::Trace t = loadStoreTrace();
    // Append code after the terminal exit — "resurrected" dead code
    // a broken DCE might leave behind.
    ir::IrInst dead = mk(ir::IrOp::LDI, 2);
    dead.dst = ir::vGpr(3);
    dead.imm = 7;
    t.append(dead);
    const an::Findings f = an::verifyTrace(t);
    EXPECT_TRUE(hasFinding(f, "resurrected dead code")) << joined(f);
}

TEST(VerifySchedule, CleanPermutationAccepted)
{
    const ir::Trace before = loadStoreTrace();
    const an::Findings f = an::verifySchedule(before, before);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(VerifySchedule, CatchesReorderedDependentLoads)
{
    // before: ST [v1]; LD t0=[v0]; MOV v2=t0; JEXIT
    // after:  the load hoisted above the store — violates the
    //         conservative store->load dependence edge.
    ir::Trace before;
    before.guestEntry = 0x1000;
    before.guestEips = {0x1000, 0x1003, 0x1006};

    ir::IrInst st = mk(ir::IrOp::ST, 0);
    st.src1 = ir::vGpr(1);
    st.src2 = ir::vGpr(0);
    st.size = 4;
    before.append(st);

    const ir::Vreg tmp = before.newTemp(ir::RegClass::Int);
    ir::IrInst ld = mk(ir::IrOp::LD, 1);
    ld.dst = tmp;
    ld.src1 = ir::vGpr(0);
    ld.size = 4;
    before.append(ld);

    ir::IrInst mov = mk(ir::IrOp::MOV, 2);
    mov.dst = ir::vGpr(2);
    mov.src1 = tmp;
    before.append(mov);

    ir::IrInst exit = mk(ir::IrOp::JEXIT, 2);
    before.append(exit);
    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 3;
    before.exits.push_back(ex);

    ir::Trace after = before;
    std::swap(after.insts[0], after.insts[1]);

    const an::Findings f = an::verifySchedule(before, after);
    EXPECT_TRUE(hasFinding(f, "dependence edge violated")) << joined(f);
}

namespace {

/** Ten int temps alive at once: two must spill past the 8-register
 *  pool, giving both register and spill-slot conflicts to tamper. */
ir::Trace
highPressureTrace(std::vector<ir::Vreg> &temps)
{
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips = {0x1000};
    for (int i = 0; i < 10; ++i) {
        const ir::Vreg tmp = t.newTemp(ir::RegClass::Int);
        temps.push_back(tmp);
        ir::IrInst def = mk(ir::IrOp::LDI, 0);
        def.dst = tmp;
        def.imm = i;
        t.append(def);
    }
    for (int i = 0; i < 10; ++i) {
        ir::IrInst st = mk(ir::IrOp::ST, 0);
        st.src1 = ir::vGpr(0);
        st.src2 = temps[i];
        st.size = 4;
        st.imm = 4 * i;
        t.append(st);
    }
    ir::IrInst exit = mk(ir::IrOp::JEXIT, 0);
    t.append(exit);
    ir::IrExit ex;
    ex.guestTarget = 0x2000;
    ex.guestInstsRetired = 1;
    t.exits.push_back(ex);
    return t;
}

} // namespace

TEST(VerifyAllocation, CleanAllocationAccepted)
{
    std::vector<ir::Vreg> temps;
    const ir::Trace t = highPressureTrace(temps);
    const ir::Allocation alloc = ir::allocateRegisters(t);
    EXPECT_GT(alloc.numSpillSlots, 0u) << "test needs register pressure";
    const an::Findings f = an::verifyAllocation(t, alloc);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(VerifyAllocation, CatchesDoubleAssignedHostRegister)
{
    std::vector<ir::Vreg> temps;
    const ir::Trace t = highPressureTrace(temps);
    ir::Allocation alloc = ir::allocateRegisters(t);

    // All ten intervals pairwise overlap; force two unspilled ones
    // onto the same host register.
    std::vector<ir::Vreg> inRegs;
    for (ir::Vreg v : temps)
        if (!alloc.of(v).spilled)
            inRegs.push_back(v);
    ASSERT_GE(inRegs.size(), 2u);
    alloc.locs[inRegs[1]].reg = alloc.locs[inRegs[0]].reg;

    const an::Findings f = an::verifyAllocation(t, alloc);
    EXPECT_TRUE(hasFinding(f, "double-assigned")) << joined(f);
}

TEST(VerifyAllocation, CatchesDroppedSpill)
{
    std::vector<ir::Vreg> temps;
    const ir::Trace t = highPressureTrace(temps);
    ir::Allocation alloc = ir::allocateRegisters(t);

    std::vector<ir::Vreg> spilled;
    for (ir::Vreg v : temps)
        if (alloc.of(v).spilled)
            spilled.push_back(v);
    ASSERT_GE(spilled.size(), 2u);

    // A spill slot that was never reserved: the store would land in
    // unowned TOL work memory.
    ir::Allocation out_of_range = alloc;
    out_of_range.locs[spilled[0]].slot =
        static_cast<uint16_t>(alloc.numSpillSlots + 3);
    an::Findings f = an::verifyAllocation(t, out_of_range);
    EXPECT_TRUE(hasFinding(f, "dropped spill")) << joined(f);

    // Two overlapping spilled temps sharing one slot.
    ir::Allocation shared = alloc;
    shared.locs[spilled[1]].slot = shared.locs[spilled[0]].slot;
    f = an::verifyAllocation(t, shared);
    EXPECT_TRUE(hasFinding(f, "double-assigned")) << joined(f);
    EXPECT_TRUE(hasFinding(f, "dropped spill")) << joined(f);
}

// ===================================================================
// Static CFG analyzer
// ===================================================================

namespace {

/** if (eax == 0) ebx = 2; else ebx = 1; ecx = 3; halt */
dg::Program
diamondProgram(uint32_t *join_addr = nullptr)
{
    Assembler as;
    auto els = as.newLabel();
    auto join = as.newLabel();
    as.cmp(dg::EAX, 0);
    as.jcc(dg::Cond::E, els);
    as.mov(dg::EBX, 1);
    as.jmp(join);
    as.bind(els);
    as.mov(dg::EBX, 2);
    as.bind(join);
    as.mov(dg::ECX, 3);
    as.halt();
    dg::Program prog = finish(as);
    if (join_addr)
        *join_addr = as.labelAddr(join);
    return prog;
}

} // namespace

TEST(Cfg, DiamondBlocksDominatorsAndMix)
{
    uint32_t join_addr = 0;
    const dg::Program prog = diamondProgram(&join_addr);
    const an::Cfg cfg = an::buildCfg(prog);

    // cmp+jcc | mov+jmp | mov (else) | mov+halt (join)
    ASSERT_EQ(cfg.blocks.size(), 4u);
    EXPECT_EQ(cfg.entryIndex, 0u);
    EXPECT_TRUE(cfg.blocks[0].isCond);
    EXPECT_TRUE(cfg.blocks[0].hasTarget);
    EXPECT_TRUE(cfg.blocks[0].hasFallthrough);
    EXPECT_TRUE(cfg.blocks[3].isHalt);
    EXPECT_EQ(cfg.blockAt.at(join_addr), 3u);

    // The branch dominates both arms and the join; the arms dominate
    // nothing but themselves.
    EXPECT_EQ(cfg.idom[1], 0u);
    EXPECT_EQ(cfg.idom[2], 0u);
    EXPECT_EQ(cfg.idom[3], 0u);
    EXPECT_TRUE(cfg.dominates(0, 3));
    EXPECT_FALSE(cfg.dominates(1, 3));
    EXPECT_TRUE(cfg.loops.empty());

    EXPECT_EQ(cfg.mix.total, 7u);
    EXPECT_EQ(cfg.mix.branches, 2u);
    EXPECT_EQ(cfg.mix.condBranches, 1u);
    EXPECT_EQ(cfg.mix.moves, 3u);
    EXPECT_EQ(cfg.mix.alu, 1u);

    const an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(Cfg, FindsNaturalLoop)
{
    Assembler as;
    as.mov(dg::ECX, 10);
    auto loop = as.newLabel();
    as.bind(loop);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();
    const an::Cfg cfg = an::buildCfg(finish(as));

    ASSERT_EQ(cfg.blocks.size(), 3u);
    ASSERT_EQ(cfg.loops.size(), 1u);
    const an::NaturalLoop &l = cfg.loops[0];
    EXPECT_EQ(cfg.blocks[l.header].start, cfg.blocks[1].start);
    EXPECT_EQ(l.body, std::vector<size_t>{1});
    EXPECT_EQ(l.latches, std::vector<size_t>{1});

    const an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(Cfg, CatchesOrphanedBranchTarget)
{
    an::Cfg cfg = an::buildCfg(diamondProgram());
    // Point the conditional branch one byte into its target
    // instruction — no longer a block leader.
    ASSERT_TRUE(cfg.blocks[0].hasTarget);
    cfg.blocks[0].target += 1;
    const an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(hasFinding(f, "orphaned branch target")) << joined(f);
}

TEST(Cfg, CatchesBrokenDominatorEdge)
{
    an::Cfg cfg = an::buildCfg(diamondProgram());
    // Claim the join block is dominated by the then-arm: the edge
    // from the else-arm into the join refutes it.
    cfg.idom[3] = 1;
    const an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(hasFinding(f, "broken dominator edge")) << joined(f);
}

// ===================================================================
// Dynamic cross-validation
// ===================================================================

TEST(CrossCheck, CleanRunToHalt)
{
    Assembler as;
    auto fn = as.newLabel();
    auto loop = as.newLabel();
    auto skip = as.newLabel();
    as.mov(dg::EAX, 0);
    as.mov(dg::ECX, 800);
    as.bind(loop);
    as.call(fn);
    as.test(dg::ECX, 1);
    as.jcc(dg::Cond::E, skip);
    as.add(dg::EAX, 3);
    as.bind(skip);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();
    as.bind(fn);
    as.add(dg::EAX, dg::ECX);
    as.ret();

    const dg::Program prog = finish(as);
    System sys(profiledConfig(1'000'000));
    sys.load(prog);
    const SystemResult res = sys.run();
    ASSERT_TRUE(res.halted);

    const an::Cfg cfg = an::buildCfg(prog);
    an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(f.empty()) << joined(f);

    const darco::profile::GuestBranchProfile *prof =
        sys.guestBranchProfile();
    ASSERT_NE(prof, nullptr);
    EXPECT_GT(prof->dynBranches, 0u);
    EXPECT_GT(prof->dynCondBranches, 0u);

    f = an::crossCheckBranchSites(cfg, *prof);
    EXPECT_TRUE(f.empty()) << joined(f);
    f = an::crossCheckFlowConservation(cfg, *prof,
                                       sys.guestState().eip);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(CrossCheck, CleanBudgetStop)
{
    // Never halts: the run stops on budget, mid-flight. Flow
    // conservation must still balance, with the single unmatched
    // entry allowed at the stop block.
    Assembler as;
    as.mov(dg::ECX, 0);
    auto loop = as.newLabel();
    as.bind(loop);
    as.inc(dg::ECX);
    as.cmp(dg::ECX, 0);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    const dg::Program prog = finish(as);
    System sys(profiledConfig(20000));
    sys.load(prog);
    const SystemResult res = sys.run();
    ASSERT_FALSE(res.halted);

    const an::Cfg cfg = an::buildCfg(prog);
    const darco::profile::GuestBranchProfile *prof =
        sys.guestBranchProfile();
    ASSERT_NE(prof, nullptr);

    an::Findings f = an::crossCheckBranchSites(cfg, *prof);
    EXPECT_TRUE(f.empty()) << joined(f);
    f = an::crossCheckFlowConservation(cfg, *prof,
                                       sys.guestState().eip);
    EXPECT_TRUE(f.empty()) << joined(f);
}

TEST(CrossCheck, RejectsBranchSiteAtNonBranchPc)
{
    const dg::Program prog = diamondProgram();
    const an::Cfg cfg = an::buildCfg(prog);

    darco::profile::GuestBranchProfile prof;
    // The entry instruction (cmp) is not a branch.
    darco::profile::GuestBranchSite &site = prof.sites[prog.entry];
    site.taken = 1;
    site.targets[prog.entry + 2] = 1;
    prof.dynBranches = 1;

    const an::Findings f = an::crossCheckBranchSites(cfg, prof);
    EXPECT_TRUE(hasFinding(f, "not a branch")) << joined(f);
}

TEST(CrossCheck, RejectsTamperedBranchCounts)
{
    Assembler as;
    as.mov(dg::ECX, 100);
    auto loop = as.newLabel();
    as.bind(loop);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    const dg::Program prog = finish(as);
    System sys(profiledConfig(1'000'000));
    sys.load(prog);
    ASSERT_TRUE(sys.run().halted);

    const an::Cfg cfg = an::buildCfg(prog);
    darco::profile::GuestBranchProfile prof = *sys.guestBranchProfile();

    an::Findings f = an::crossCheckFlowConservation(
        cfg, prof, sys.guestState().eip);
    ASSERT_TRUE(f.empty()) << joined(f);

    // Inflate the site's execution count without a matching landing:
    // its block now exits more often than it is entered. (Bumping
    // taken AND the target count together on a self-loop edge would
    // stay balanced — Kirchhoff catches inconsistent counts, not a
    // consistently shifted execution.)
    ASSERT_FALSE(prof.sites.empty());
    auto &site = prof.sites.begin()->second;
    site.taken += 1;

    f = an::crossCheckFlowConservation(cfg, prof, sys.guestState().eip);
    EXPECT_TRUE(hasFinding(f, "flow conservation violated"))
        << joined(f);
}

// ===================================================================
// Zero findings across every paper workload
// ===================================================================

class AnalysisWorkloadSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(AnalysisWorkloadSweep, VerifiedRunCrossChecksClean)
{
    const wl::BenchParams &params = wl::allBenchmarks()[GetParam()];
    const dg::Program prog = wl::buildBenchmark(params);

    // The static side must be self-consistent...
    const an::Cfg cfg = an::buildCfg(prog);
    an::Findings f = an::verifyCfg(cfg);
    EXPECT_TRUE(f.empty()) << params.name << "\n" << joined(f);

    // ...and a verified run (TolConfig::verifyIr defaults on, so the
    // IR/regalloc verifier gates every translation of this run) must
    // agree with it exactly.
    SimConfig cfg_sim = profiledConfig(60000);
    ASSERT_TRUE(cfg_sim.tol.verifyIr);
    System sys(cfg_sim);
    sys.load(prog);
    const SystemResult res = sys.run();
    EXPECT_GE(res.guestRetired, 50000u) << params.name;

    const darco::profile::GuestBranchProfile *prof =
        sys.guestBranchProfile();
    ASSERT_NE(prof, nullptr);
    f = an::crossCheckBranchSites(cfg, *prof);
    EXPECT_TRUE(f.empty()) << params.name << "\n" << joined(f);
    f = an::crossCheckFlowConservation(cfg, *prof,
                                       sys.guestState().eip);
    EXPECT_TRUE(f.empty()) << params.name << "\n" << joined(f);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, AnalysisWorkloadSweep,
    ::testing::Range<size_t>(0, wl::allBenchmarks().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = wl::allBenchmarks()[info.param].name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });
