/**
 * @file
 * Workload-suite tests: every synthetic benchmark must build, run
 * under strict co-simulation without architectural divergence, and
 * exhibit the characteristics its paper counterpart is parameterized
 * for (indirect-branch density ordering, dynamic/static ratio
 * ordering, mode distribution shape).
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/params.hh"

using darco::sim::SimConfig;
using darco::sim::System;
using darco::sim::SystemResult;
namespace wl = darco::workloads;

namespace {

SimConfig
quickConfig(uint64_t budget)
{
    SimConfig cfg;
    cfg.cosim = true;
    cfg.cosimStrict = true;
    cfg.guestBudget = budget;
    return cfg;
}

struct RunOutcome
{
    SystemResult result;
    uint64_t indirect;
    uint64_t staticInsts;
    uint64_t dynIm, dynBbm, dynSbm;
    uint64_t sbs;
};

RunOutcome
runBenchmark(const wl::BenchParams &params, uint64_t budget)
{
    System sys(quickConfig(budget));
    sys.load(wl::buildBenchmark(params));
    RunOutcome out;
    out.result = sys.run();
    const auto &ts = sys.tolStats();
    out.indirect = ts.guestIndirectBranches;
    out.staticInsts = ts.staticMode.size();
    out.dynIm = ts.dynIm;
    out.dynBbm = ts.dynBbm;
    out.dynSbm = ts.dynSbm;
    out.sbs = ts.sbsCreated;
    return out;
}

} // namespace

class WorkloadSuite : public ::testing::TestWithParam<size_t>
{};

TEST_P(WorkloadSuite, RunsUnderStrictCosim)
{
    const wl::BenchParams &params = wl::allBenchmarks()[GetParam()];
    const RunOutcome out = runBenchmark(params, 60000);
    // Strict cosim would have panicked on mismatch; check progress.
    EXPECT_GE(out.result.guestRetired, 50000u) << params.name;
    EXPECT_GT(out.staticInsts, 50u) << params.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSuite,
    ::testing::Range<size_t>(0, wl::allBenchmarks().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = wl::allBenchmarks()[info.param].name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(WorkloadCharacteristics, TableHas48Benchmarks)
{
    EXPECT_EQ(wl::allBenchmarks().size(), 48u);
    EXPECT_EQ(wl::suiteBenchmarks("SPEC INT").size(), 12u);
    EXPECT_EQ(wl::suiteBenchmarks("SPEC FP").size(), 16u);
    EXPECT_EQ(wl::suiteBenchmarks("Physics").size(), 8u);
    EXPECT_EQ(wl::suiteBenchmarks("Media").size(), 12u);
}

TEST(WorkloadCharacteristics, PerlbenchIndirectHeavyVsBzip2)
{
    // Paper §III-B: 400.perlbench has ~4 orders of magnitude more
    // indirect branches than 401.bzip2.
    const auto perl = runBenchmark(*wl::findBenchmark("400.perlbench"),
                                   300000);
    const auto bzip = runBenchmark(*wl::findBenchmark("401.bzip2"),
                                   300000);
    EXPECT_GT(perl.indirect, 20 * std::max<uint64_t>(1, bzip.indirect));
}

TEST(WorkloadCharacteristics, LibquantumHighRepetition)
{
    const auto libq = runBenchmark(
        *wl::findBenchmark("462.libquantum"), 400000);
    const auto cjpeg = runBenchmark(*wl::findBenchmark("000.cjpeg"),
                                    400000);
    const double libq_ratio =
        static_cast<double>(libq.result.guestRetired) /
        static_cast<double>(libq.staticInsts);
    const double cjpeg_ratio =
        static_cast<double>(cjpeg.result.guestRetired) /
        static_cast<double>(cjpeg.staticInsts);
    // libquantum's dynamic/static ratio dwarfs cjpeg's (paper Fig 6).
    EXPECT_GT(libq_ratio, 20 * cjpeg_ratio);
}

TEST(WorkloadCharacteristics, SimilarStaticFootprints)
{
    // Paper §III-B: cjpeg, djpeg and milc have similar static
    // footprints (~15K), but milc has far more dynamic instructions.
    const auto cjpeg = runBenchmark(*wl::findBenchmark("000.cjpeg"),
                                    500000);
    const auto milc = runBenchmark(*wl::findBenchmark("433.milc"),
                                   500000);
    EXPECT_LT(static_cast<double>(cjpeg.staticInsts) * 0.4,
              static_cast<double>(milc.staticInsts));
    EXPECT_LT(static_cast<double>(milc.staticInsts) * 0.4,
              static_cast<double>(cjpeg.staticInsts));
}

TEST(WorkloadCharacteristics, Jpg2000EncMoreSuperblocksThanDec)
{
    // Paper §III-B: 007.jpg2000enc creates ~4.7x the superblocks of
    // 006.jpg2000dec (450 vs 96).
    darco::sim::SimConfig cfg = quickConfig(1'500'000);
    cfg.tol.bbToSbThreshold = 2000;  // scaled threshold for the budget
    System dec(cfg);
    dec.load(wl::buildBenchmark(*wl::findBenchmark("006.jpg2000dec")));
    dec.run();
    System enc(cfg);
    enc.load(wl::buildBenchmark(*wl::findBenchmark("007.jpg2000enc")));
    enc.run();
    EXPECT_GT(enc.tolStats().sbsCreated,
              2 * dec.tolStats().sbsCreated);
}

TEST(WorkloadCharacteristics, SpecrandRunsToCompletion)
{
    const auto rnd = runBenchmark(*wl::findBenchmark("998.specrand"),
                                  10'000'000);
    EXPECT_TRUE(rnd.result.halted);
}
