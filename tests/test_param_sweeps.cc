/**
 * @file
 * Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
 *  - cache invariants over a grid of geometries (hit-after-fill,
 *    conflict-eviction correctness, PLRU retention, stats closure),
 *  - TLB invariants over entry/way grids,
 *  - IR evaluator semantics for every integer ALU opcode against a
 *    reference computed independently,
 *  - pipeline accounting closure across configuration variants.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "ir/evaluator.hh"
#include "timing/cache.hh"
#include "timing/pipeline.hh"
#include "timing/tlb.hh"

using namespace darco;
using namespace darco::timing;

// ----- cache geometry sweep ----------------------------------------------

struct CacheCase
{
    uint32_t sizeKb;
    uint32_t lineBytes;
    uint32_t ways;
};

class CacheSweep : public ::testing::TestWithParam<CacheCase>
{};

TEST_P(CacheSweep, HitAfterFillAndConflictEviction)
{
    const CacheCase c = GetParam();
    CacheGeometry geom{c.sizeKb * 1024, c.lineBytes, c.ways, 1};
    Cache cache(geom, nullptr, 100);

    const uint32_t sets = geom.sizeBytes / (geom.lineBytes * geom.ways);
    const uint32_t set_stride = sets * geom.lineBytes;

    bool miss;
    // Fill one set completely: all ways must then hit.
    for (uint32_t w = 0; w < c.ways; ++w)
        cache.access(w * set_stride, false, miss);
    for (uint32_t w = 0; w < c.ways; ++w) {
        cache.access(w * set_stride, false, miss);
        ASSERT_FALSE(miss) << "way " << w;
    }
    // One more conflicting line evicts exactly one way.
    cache.access(c.ways * set_stride, false, miss);
    ASSERT_TRUE(miss);
    unsigned resident = 0;
    for (uint32_t w = 0; w <= c.ways; ++w)
        resident += cache.probe(w * set_stride) ? 1 : 0;
    EXPECT_EQ(resident, c.ways);

    // Stats closure.
    EXPECT_EQ(cache.stats().accesses, 2u * c.ways + 1u);
    EXPECT_EQ(cache.stats().misses, static_cast<uint64_t>(c.ways) + 1u);
}

TEST_P(CacheSweep, RandomStreamStatsAreConsistent)
{
    const CacheCase c = GetParam();
    CacheGeometry geom{c.sizeKb * 1024, c.lineBytes, c.ways, 1};
    Cache l2(CacheGeometry{512 * 1024, 128, 8, 16}, nullptr, 100);
    Cache l1(geom, &l2, 100);

    Prng rng(c.sizeKb * 131 + c.lineBytes + c.ways);
    bool miss;
    for (int i = 0; i < 20000; ++i)
        l1.access(static_cast<uint32_t>(rng.below(1u << 21)),
                  rng.chance(0.3), miss);

    EXPECT_EQ(l1.stats().accesses, 20000u);
    EXPECT_LE(l1.stats().misses, l1.stats().accesses);
    // Everything that missed in L1 accessed L2 (plus writebacks).
    EXPECT_GE(l2.stats().accesses, l1.stats().misses);
    EXPECT_LE(l2.stats().accesses,
              l1.stats().misses + l1.stats().writebacks);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(CacheCase{32, 64, 4}, CacheCase{32, 64, 8},
                      CacheCase{16, 32, 2}, CacheCase{64, 128, 8},
                      CacheCase{8, 64, 2}, CacheCase{512, 128, 8},
                      CacheCase{4, 32, 4}),
    [](const ::testing::TestParamInfo<CacheCase> &info) {
        return std::to_string(info.param.sizeKb) + "kB_" +
               std::to_string(info.param.lineBytes) + "B_" +
               std::to_string(info.param.ways) + "w";
    });

// ----- TLB sweep -----------------------------------------------------------

class TlbSweep : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(TlbSweep, CapacityBehaviour)
{
    TimingConfig cfg;
    cfg.tlbL1Entries = static_cast<uint32_t>(GetParam().first);
    cfg.tlbL1Ways = static_cast<uint32_t>(GetParam().second);
    Tlb tlb(cfg);

    // Touch exactly L1-capacity distinct pages: all should then hit.
    for (uint32_t p = 0; p < cfg.tlbL1Entries; ++p)
        tlb.access(p << 12);
    uint64_t misses_before = tlb.stats().l1Misses;
    for (uint32_t p = 0; p < cfg.tlbL1Entries; ++p)
        tlb.access(p << 12);
    EXPECT_EQ(tlb.stats().l1Misses, misses_before)
        << "within-capacity pages must all hit L1";
}

INSTANTIATE_TEST_SUITE_P(
    Entries, TlbSweep,
    ::testing::Values(std::make_pair(16, 4), std::make_pair(32, 8),
                      std::make_pair(64, 8), std::make_pair(128, 8)),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &info) {
        return std::to_string(info.param.first) + "e_" +
               std::to_string(info.param.second) + "w";
    });

// ----- IR ALU semantics sweep ------------------------------------------

class IrAluOp : public ::testing::TestWithParam<ir::IrOp>
{};

namespace {

uint32_t
reference(ir::IrOp op, uint32_t a, uint32_t b)
{
    const int32_t sa = static_cast<int32_t>(a);
    const int32_t sb = static_cast<int32_t>(b);
    const int64_t wa = sa, wb = sb;
    switch (op) {
      case ir::IrOp::ADD:  return a + b;
      case ir::IrOp::SUB:  return a - b;
      case ir::IrOp::AND:  return a & b;
      case ir::IrOp::OR:   return a | b;
      case ir::IrOp::XOR:  return a ^ b;
      case ir::IrOp::SLL:  return a << (b % 32);
      case ir::IrOp::SRL:  return a >> (b % 32);
      case ir::IrOp::SRA:
        return static_cast<uint32_t>(sa >> (b % 32));
      case ir::IrOp::SLT:  return sa < sb ? 1 : 0;
      case ir::IrOp::SLTU: return a < b ? 1 : 0;
      case ir::IrOp::MUL:  return static_cast<uint32_t>(wa * wb);
      case ir::IrOp::MULH:
        return static_cast<uint32_t>((wa * wb) >> 32);
      case ir::IrOp::DIV:
        if (sb == 0 || (sa == INT32_MIN && sb == -1))
            return 0;
        return static_cast<uint32_t>(sa / sb);
      case ir::IrOp::REM:
        if (sb == 0 || (sa == INT32_MIN && sb == -1))
            return a;
        return static_cast<uint32_t>(sa % sb);
      default:
        ADD_FAILURE() << "unexpected op";
        return 0;
    }
}

} // namespace

TEST_P(IrAluOp, MatchesReferenceOnEdgeAndRandomInputs)
{
    const ir::IrOp op = GetParam();
    static const uint32_t edges[] = {
        0, 1, 2, 31, 32, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
        0xFFFFFFFE, 0x55555555, 0xAAAAAAAA,
    };
    for (uint32_t a : edges) {
        for (uint32_t b : edges)
            ASSERT_EQ(ir::evalIntOp(op, a, b), reference(op, a, b))
                << ir::irOpName(op) << "(" << a << ", " << b << ")";
    }
    Prng rng(static_cast<uint64_t>(op) + 99);
    for (int i = 0; i < 2000; ++i) {
        const uint32_t a = static_cast<uint32_t>(rng.next());
        const uint32_t b = static_cast<uint32_t>(rng.next());
        ASSERT_EQ(ir::evalIntOp(op, a, b), reference(op, a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IrAluOp,
    ::testing::Values(ir::IrOp::ADD, ir::IrOp::SUB, ir::IrOp::AND,
                      ir::IrOp::OR, ir::IrOp::XOR, ir::IrOp::SLL,
                      ir::IrOp::SRL, ir::IrOp::SRA, ir::IrOp::SLT,
                      ir::IrOp::SLTU, ir::IrOp::MUL, ir::IrOp::MULH,
                      ir::IrOp::DIV, ir::IrOp::REM),
    [](const ::testing::TestParamInfo<ir::IrOp> &info) {
        return std::string(ir::irOpName(info.param));
    });

// ----- pipeline configuration sweep --------------------------------------

class PipelineConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{};

TEST_P(PipelineConfigSweep, AccountingClosesForAllConfigs)
{
    TimingConfig cfg;
    cfg.issueWidth = static_cast<uint32_t>(std::get<0>(GetParam()));
    cfg.iqSize = static_cast<uint32_t>(std::get<1>(GetParam()));
    cfg.prefetcherEnabled = std::get<2>(GetParam());

    Pipeline pipe(cfg, Pipeline::Filter::All);
    Prng rng(7);
    for (int i = 0; i < 8000; ++i) {
        Record rec;
        rec.pc = 0x1000 + 4 * (i % 256);
        rec.fromRegion = true;
        if (rng.chance(0.25)) {
            rec.op = host::HOp::LD;
            rec.isLoad = true;
            rec.rd = static_cast<uint8_t>(33 + rng.below(8));
            rec.rs1 = 32;
            rec.memAddr = static_cast<uint32_t>(rng.below(1u << 18));
            rec.size = 4;
        } else if (rng.chance(0.15)) {
            rec.op = host::HOp::BNE;
            rec.isBranch = true;
            rec.isCondBranch = true;
            rec.rs1 = 33;
            rec.rs2 = 0;
            rec.taken = rng.chance(0.6);
            rec.branchTarget = rec.taken ? 0x1000 : 0;
        } else {
            rec.op = host::HOp::ADD;
            rec.rd = static_cast<uint8_t>(33 + rng.below(8));
            rec.rs1 = static_cast<uint8_t>(33 + rng.below(8));
            rec.rs2 = 32;
        }
        pipe.consume(rec);
    }
    pipe.finish();

    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += pipe.stats().bucketTotal(static_cast<Bucket>(b));
    EXPECT_NEAR(total, static_cast<double>(pipe.stats().cycles),
                1e-6 * static_cast<double>(pipe.stats().cycles) + 1.0);
    EXPECT_GT(pipe.stats().ipc(), 0.05);
    EXPECT_LE(pipe.stats().ipc(),
              static_cast<double>(cfg.issueWidth) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineConfigSweep,
    ::testing::Values(std::make_tuple(1, 8, true),
                      std::make_tuple(2, 16, true),
                      std::make_tuple(2, 16, false),
                      std::make_tuple(4, 32, true),
                      std::make_tuple(2, 4, true)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>> &i) {
        return "w" + std::to_string(std::get<0>(i.param)) + "_iq" +
               std::to_string(std::get<1>(i.param)) +
               (std::get<2>(i.param) ? "_pf" : "_nopf");
    });
