/**
 * @file
 * A/B determinism tests for the event-driven timing core: the
 * event-driven core must be bit-identical to the cycle-stepped
 * reference core — every cycle total, every accounting cell, every
 * cache/TLB/predictor counter, and the co-simulation state-checker
 * fingerprint — across the paper's four workload suites, randomized
 * record streams, an issue-width sweep (1, 2, 3, 4, 8, 16: the 1/W
 * fixed-point accounting must stay exact at every width), and the
 * pipeline edge events (zero-latency back-to-back issues,
 * simultaneous miss-completion + branch-resolve, flush mid-stall).
 * See docs/timing-model.md for the equivalence argument these tests
 * enforce.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "timing/pipeline.hh"
#include "workloads/params.hh"

using namespace darco;
using namespace darco::timing;

namespace {

/**
 * Exact equality of everything a pipeline instance measures, via
 * the shared timing::diffStats comparator (the same one the
 * engine_speed harness gate uses, so the covered field set cannot
 * drift between the two).
 */
void
expectStatsIdentical(const PipeStats &a, const PipeStats &b,
                     const char *label)
{
    const std::string diff = diffStats(a, b);
    EXPECT_TRUE(diff.empty()) << label << " diverged:\n" << diff;
}

/** Bucket totals must sum exactly to the cycle count (closure). */
void
expectAccountingCloses(const PipeStats &stats)
{
    // Exact closure at every issue width: every cycle contributes
    // exactly unitDenom integer units (split 1/k per issued
    // instruction, k | unitDenom by construction), so the unit sums
    // — associative, no rounding — must equal cycles * unitDenom.
    uint64_t units = 0, src_units = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        for (unsigned m = 0; m < kNumModules; ++m)
            units += stats.bucketUnits[b][m];
        for (unsigned s = 0; s < 2; ++s)
            src_units += stats.bucketSrcUnits[b][s];
    }
    EXPECT_EQ(units, stats.cycles * stats.unitDenom);
    EXPECT_EQ(src_units, stats.cycles * stats.unitDenom);

    // The derived double totals close exactly when unitDenom is a
    // power of two (every cell is a dyadic rational; the paper's
    // W<=2 configs), and to rounding noise otherwise (1/3-style
    // shares have no finite binary representation in any scheme).
    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += stats.bucketTotal(static_cast<Bucket>(b));
    const double src_total =
        stats.sourceCycles(false) + stats.sourceCycles(true);
    const double cycles = static_cast<double>(stats.cycles);
    if ((stats.unitDenom & (stats.unitDenom - 1)) == 0) {
        EXPECT_EQ(total, cycles);
        EXPECT_EQ(src_total, cycles);
    } else {
        EXPECT_NEAR(total, cycles, 1e-9 * cycles + 1e-9);
        EXPECT_NEAR(src_total, cycles, 1e-9 * cycles + 1e-9);
    }
}

// ----- record constructors (mirroring test_timing.cc) -------------------

Record
aluRec(uint32_t pc, uint8_t rd, uint8_t rs1, uint8_t rs2,
       Module mod = Module::App)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::ADD;
    rec.rd = rd;
    rec.rs1 = rs1;
    rec.rs2 = rs2;
    rec.module = mod;
    rec.fromRegion = mod == Module::App;
    return rec;
}

Record
loadRec(uint32_t pc, uint8_t rd, uint32_t addr)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::LD;
    rec.rd = rd;
    rec.rs1 = 40;
    rec.isLoad = true;
    rec.memAddr = addr;
    rec.size = 4;
    rec.fromRegion = true;
    return rec;
}

Record
branchRec(uint32_t pc, bool taken, uint32_t target, uint8_t rs1 = 33)
{
    Record rec;
    rec.pc = pc;
    rec.op = host::HOp::BNE;
    rec.rs1 = rs1;
    rec.rs2 = 0;
    rec.isBranch = true;
    rec.isCondBranch = true;
    rec.taken = taken;
    rec.branchTarget = taken ? target : 0;
    rec.fromRegion = true;
    return rec;
}

/**
 * Feed one stream to all three cores (cycle-stepped reference,
 * plain event core, event core with the burst dispatcher) and
 * return the three finished stats. Every A/B in this file is a
 * three-way: stepped vs event proves the event horizon logic, event
 * vs event+burst proves the burst predicate is a pure accelerator.
 */
struct AbTriple
{
    PipeStats stepped;
    PipeStats event;
    PipeStats burst;
};

AbTriple
runAb(const std::vector<Record> &stream, bool batched,
      Pipeline::Filter filter = Pipeline::Filter::All,
      uint32_t issue_width = 2)
{
    TimingConfig stepped_cfg;
    stepped_cfg.eventCore = false;
    stepped_cfg.issueWidth = issue_width;
    TimingConfig event_cfg;
    event_cfg.eventCore = true;
    event_cfg.burst = false;
    event_cfg.issueWidth = issue_width;
    TimingConfig burst_cfg = event_cfg;
    burst_cfg.burst = true;

    Pipeline stepped(stepped_cfg, filter);
    Pipeline event(event_cfg, filter);
    Pipeline burst(burst_cfg, filter);
    EXPECT_EQ(stepped.engine(), Pipeline::Engine::CycleStepped);
    EXPECT_EQ(event.engine(), Pipeline::Engine::EventDriven);
    EXPECT_FALSE(event.burstDispatchEnabled());
    EXPECT_TRUE(burst.burstDispatchEnabled());

    if (batched) {
        // Uneven chunks so batch boundaries land mid-stall, mid-run
        // and mid-fetch; this also exercises the event core's
        // borrowed-batch (zero-copy) backlog path.
        size_t i = 0;
        size_t chunk = 1;
        while (i < stream.size()) {
            const size_t n = std::min(chunk, stream.size() - i);
            stepped.consumeBatch(stream.data() + i, n);
            event.consumeBatch(stream.data() + i, n);
            burst.consumeBatch(stream.data() + i, n);
            i += n;
            chunk = chunk * 3 % 509 + 1;
        }
    } else {
        for (const Record &rec : stream) {
            stepped.consume(rec);
            event.consume(rec);
            burst.consume(rec);
        }
    }
    stepped.finish();
    event.finish();
    burst.finish();
    expectStatsIdentical(stepped.stats(), event.stats(),
                         batched ? "batched" : "per-record");
    expectStatsIdentical(stepped.stats(), burst.stats(),
                         batched ? "batched+burst" : "per-record+burst");
    expectAccountingCloses(event.stats());
    expectAccountingCloses(burst.stats());
    return {stepped.stats(), event.stats(), burst.stats()};
}

/** Mixed fuzz stream: loads, stores, branches, FP chains, ALU ops. */
std::vector<Record>
makeFuzzStream(uint64_t seed, uint32_t count)
{
    Prng rng(seed);
    std::vector<Record> stream;
    for (uint32_t i = 0; i < count; ++i) {
        const double roll = rng.uniform();
        if (roll < 0.18) {
            stream.push_back(loadRec(
                0x1000 + 4 * (i % 64),
                static_cast<uint8_t>(34 + i % 4),
                static_cast<uint32_t>(rng.below(1u << 22))));
        } else if (roll < 0.30) {
            Record rec = loadRec(0x1200 + 4 * (i % 16), 38,
                                 static_cast<uint32_t>(
                                     rng.below(1u << 14)));
            rec.isLoad = false;
            rec.isStore = true;
            rec.op = host::HOp::ST;
            rec.rd = host::kNoReg;
            stream.push_back(rec);
        } else if (roll < 0.45) {
            stream.push_back(branchRec(0x2000 + 4 * (i % 8),
                                       rng.chance(0.5), 0x1000));
        } else if (roll < 0.55) {
            // Long-latency FP chain ops from a TOL module.
            Record rec;
            rec.pc = 0x3000 + 4 * (i % 32);
            rec.op = host::HOp::FDIV;
            rec.rd = fpRegId(16 + i % 4);
            rec.rs1 = fpRegId(16 + (i + 1) % 4);
            rec.rs2 = fpRegId(17);
            rec.module = Module::SBM;
            rec.fromRegion = false;
            stream.push_back(rec);
        } else {
            stream.push_back(aluRec(
                0x1000 + 4 * (i % 64),
                static_cast<uint8_t>(33 + i % 6), 32, 32,
                rng.chance(0.3) ? Module::IM : Module::App));
        }
    }
    return stream;
}

} // namespace

// ----- randomized stream fuzz -------------------------------------------

TEST(EventCoreAb, RandomStreamsBitIdentical)
{
    for (uint64_t seed : {3u, 11u, 42u}) {
        const std::vector<Record> stream = makeFuzzStream(seed, 30000);
        runAb(stream, false);
        runAb(stream, true);
        // Isolation filters take the staged (non-borrowed) path.
        runAb(stream, true, Pipeline::Filter::TolOnly);
        runAb(stream, true, Pipeline::Filter::AppOnly);
    }
}

TEST(EventCoreAb, WidthSweepBitIdentical)
{
    // The 1/W fixed-point accounting must keep the event core exact
    // at every width — including width 3, whose denominator
    // lcm(1..3) = 6 is not a power of two, and widths at or past the
    // 8-entry front-end buffer, which can retire more than the
    // front-end fetches per cycle. 16 is kMaxIssueWidth (the largest
    // denominator, lcm(1..16) = 720720).
    for (uint32_t width : {1u, 2u, 3u, 4u, 8u, 16u}) {
        const std::vector<Record> stream =
            makeFuzzStream(101 + width, 20000);
        runAb(stream, false, Pipeline::Filter::All, width);
        runAb(stream, true, Pipeline::Filter::All, width);
        runAb(stream, true, Pipeline::Filter::TolOnly, width);
    }
}

// ----- edge events -------------------------------------------------------

TEST(EventCoreAb, ZeroLatencyBackToBackIssues)
{
    // Dependent single-cycle chain: each ADD consumes the previous
    // result with no bubble (issue at t, ready at t+1, issue at t+1).
    std::vector<Record> chain;
    for (uint32_t i = 0; i < 6000; ++i)
        chain.push_back(aluRec(0x1000 + 4 * (i % 16), 33, 33, 33));
    const AbTriple dep = runAb(chain, true);
    EXPECT_GT(dep.event.ipc(), 0.90);
    EXPECT_LT(dep.event.ipc(), 1.05);

    // Independent stream: back-to-back dual issue every cycle.
    std::vector<Record> indep;
    for (uint32_t i = 0; i < 6000; ++i)
        indep.push_back(aluRec(0x1000 + 4 * (i % 16),
                               static_cast<uint8_t>(33 + i % 8), 32,
                               32));
    const AbTriple par = runAb(indep, true);
    EXPECT_GT(par.event.ipc(), 1.8);
}

TEST(EventCoreAb, SimultaneousMissCompletionAndBranchResolve)
{
    // Each round: a far-striding load (D-miss) feeding a conditional
    // branch with a random direction. The branch waits in the IQ on
    // the load's writeback and — when mispredicted — resolves in the
    // same cycle the miss completes, exercising the coincident
    // writeback + branch-resolve + redirect event path.
    Prng rng(7);
    std::vector<Record> stream;
    for (uint32_t i = 0; i < 4000; ++i) {
        stream.push_back(
            loadRec(0x1000, 34, 0x100000 + i * 4096));
        stream.push_back(
            branchRec(0x1004, rng.chance(0.5), 0x1000, 34));
        stream.push_back(aluRec(0x1008, 35, 32, 32));
    }
    const AbTriple ab = runAb(stream, true);
    // The scenario must actually produce both event kinds.
    EXPECT_GT(ab.event.bp.mispredicts, 500u);
    EXPECT_GT(ab.event.bucketTotal(Bucket::DcacheBubble), 0.0);
    EXPECT_GT(ab.event.bucketTotal(Bucket::BranchBubble), 0.0);
}

TEST(EventCoreAb, FlushMidStall)
{
    // finish() arrives while the pipe is deep in a load-miss stall:
    // the drain must fast-forward through the tail stall identically
    // on both cores and close the accounting exactly.
    std::vector<Record> stream;
    for (uint32_t i = 0; i < 40; ++i)
        stream.push_back(aluRec(0x1000 + 4 * i, 33, 32, 32));
    stream.push_back(loadRec(0x1100, 34, 0x400000));  // cold miss
    stream.push_back(aluRec(0x1104, 35, 34, 34));     // stalls on it
    const AbTriple ab = runAb(stream, false);
    EXPECT_GT(ab.event.bucketTotal(Bucket::DcacheBubble), 0.0);

    // Idempotence: a second finish() must not move anything.
    TimingConfig cfg;
    Pipeline pipe(cfg, Pipeline::Filter::All);
    for (const Record &rec : stream)
        pipe.consume(rec);
    pipe.finish();
    const uint64_t cycles = pipe.stats().cycles;
    pipe.finish();
    EXPECT_EQ(pipe.stats().cycles, cycles);
}

TEST(EventCoreAb, OversizedIqStillBitIdentical)
{
    // Regression: the borrowed-batch staging slot sits one past
    // IQ + FE, so the ring must be sized for large-IQ sweeps too. A
    // long FDIV chain keeps the IQ full while batches keep arriving.
    TimingConfig stepped_cfg;
    stepped_cfg.eventCore = false;
    stepped_cfg.iqSize = 128;
    TimingConfig event_cfg = stepped_cfg;
    event_cfg.eventCore = true;

    Pipeline stepped(stepped_cfg, Pipeline::Filter::All);
    Pipeline event(event_cfg, Pipeline::Filter::All);
    ASSERT_EQ(event.engine(), Pipeline::Engine::EventDriven);

    std::vector<Record> stream;
    for (uint32_t i = 0; i < 8000; ++i) {
        Record rec;
        rec.pc = 0x1000 + 4 * (i % 32);
        rec.op = host::HOp::FDIV;
        rec.rd = fpRegId(16);
        rec.rs1 = fpRegId(16);
        rec.rs2 = fpRegId(17);
        rec.fromRegion = true;
        stream.push_back(rec);
    }
    for (size_t i = 0; i < stream.size(); i += 256) {
        const size_t n = std::min<size_t>(256, stream.size() - i);
        stepped.consumeBatch(stream.data() + i, n);
        event.consumeBatch(stream.data() + i, n);
    }
    stepped.finish();
    event.finish();
    expectStatsIdentical(stepped.stats(), event.stats(),
                         "oversized IQ");
    expectAccountingCloses(event.stats());
}

TEST(EventCoreAb, EventCoreRunsAtEveryWidth)
{
    // Regression for the silent wide-issue fallback: with eventCore
    // requested, every supported width must actually run the event
    // core — no quiet switch to the reference core.
    for (uint32_t width = 1; width <= kMaxIssueWidth; ++width) {
        TimingConfig cfg;
        cfg.issueWidth = width;
        cfg.eventCore = true;
        Pipeline pipe(cfg, Pipeline::Filter::All);
        EXPECT_EQ(pipe.engine(), Pipeline::Engine::EventDriven)
            << "width " << width;
    }
}

// ----- burst-boundary edge cases -----------------------------------------

TEST(BurstBoundary, MispredictedBranchCutsGroup)
{
    // Independent ALU flow with conditional branches of random
    // direction sprinkled in: bursts form between branches, and a
    // mispredicted branch reaching the window head must cut the
    // group (the scan rejects it; the general body then redirects).
    // Swept across widths, including width 8, where the front-end
    // buffer (8 entries) cannot hold the 2W-record shape and the
    // dispatcher must stay silent.
    for (uint32_t width : {1u, 2u, 3u, 4u, 8u}) {
        Prng rng(900 + width);
        std::vector<Record> stream;
        for (uint32_t i = 0; i < 20000; ++i) {
            if (rng.chance(1.0 / 30.0)) {
                stream.push_back(branchRec(0x2000 + 4 * (i % 8),
                                           rng.chance(0.5), 0x1000));
            } else {
                stream.push_back(aluRec(
                    0x1000 + 4 * (i % 16),
                    static_cast<uint8_t>(33 + i % 8), 32, 32));
            }
        }
        const AbTriple ab =
            runAb(stream, true, Pipeline::Filter::All, width);
        EXPECT_GT(ab.burst.bp.mispredicts, 100u) << "width " << width;
        if (width <= 4) {
            // The dispatcher must actually engage between branches —
            // a silent predicate regression would leave this A/B
            // vacuous.
            EXPECT_GT(ab.burst.burstCycles, 0u) << "width " << width;
        } else {
            EXPECT_EQ(ab.burst.burstCycles, 0u) << "width " << width;
        }
        EXPECT_EQ(ab.event.burstCycles, 0u);
    }
}

TEST(BurstBoundary, IMissCompletionMidWindow)
{
    // Monotonically advancing fetch PC: every 16th record starts a
    // cold I-line, so an I-miss lands mid-flow while the backlog is
    // otherwise fully burstable. The fetch scan must reject the new
    // line (cold lines are not fast-path hits), hand the cycle to
    // the general body's miss machinery, and re-engage after the
    // completion.
    for (uint32_t width : {1u, 2u, 3u, 4u, 8u}) {
        std::vector<Record> stream;
        for (uint32_t i = 0; i < 20000; ++i) {
            // 2-byte PC stride: 32 records per 64B line, so even at
            // width 4 each line sustains eight full-width cycles —
            // enough for the dispatcher to re-engage between misses.
            stream.push_back(aluRec(
                0x10000 + 2 * i,
                static_cast<uint8_t>(33 + i % 8), 32, 32));
        }
        const AbTriple ab =
            runAb(stream, true, Pipeline::Filter::All, width);
        EXPECT_GT(ab.burst.l1i.misses, 500u) << "width " << width;
        if (width <= 4)
            EXPECT_GT(ab.burst.burstCycles, 0u) << "width " << width;
    }
}

TEST(BurstBoundary, FlushAtGroupHead)
{
    // finish() arrives with the dispatcher mid-stream: the drain's
    // to-empty backlog rule must stop bursts exactly at the point
    // where a full group can no longer be proven, and the general
    // body must retire the tail identically on all three cores.
    // Stream lengths straddle group multiples so the tail is empty,
    // partial, and exactly one group across the sweep.
    for (uint32_t width : {1u, 2u, 3u, 4u, 8u}) {
        for (uint32_t tail = 0; tail < 3; ++tail) {
            std::vector<Record> stream;
            const uint32_t count = 4096 * width + tail;
            for (uint32_t i = 0; i < count; ++i) {
                stream.push_back(aluRec(
                    0x1000 + 4 * (i % 16),
                    static_cast<uint8_t>(33 + i % 8), 32, 32));
            }
            const AbTriple ab =
                runAb(stream, false, Pipeline::Filter::All, width);
            EXPECT_EQ(ab.burst.records, count);
        }
    }
}

TEST(BurstBoundary, ZeroLatencyChainsAtFullWidth)
{
    // W interleaved single-cycle dependence chains: every slot of
    // every cycle consumes a value written the previous cycle
    // (zero-bubble back-to-back), so the whole stream is one long
    // proven window — the dispatcher's steady state. The scan's
    // ready check (producer ready at t+1, consumer issues at t+1)
    // must accept these chains; rejecting them would silently drop
    // coverage to zero, which the floor below catches.
    for (uint32_t width : {1u, 2u, 3u, 4u, 8u}) {
        std::vector<Record> stream;
        for (uint32_t i = 0; i < 20000; ++i) {
            const uint8_t reg = static_cast<uint8_t>(33 + i % width);
            stream.push_back(
                aluRec(0x1000 + 4 * (i % 16), reg, reg, reg));
        }
        const AbTriple ab =
            runAb(stream, true, Pipeline::Filter::All, width);
        if (width <= 4) {
            EXPECT_GT(ab.burst.burstCycles, ab.burst.cycles / 2)
                << "width " << width;
        } else {
            EXPECT_EQ(ab.burst.burstCycles, 0u) << "width " << width;
        }
    }
}

// ----- system-level A/B over the paper's four suites ---------------------

namespace {

struct SystemOutcome
{
    sim::SystemResult result;
    PipeStats combined;
    PipeStats tolOnly;
    PipeStats appOnly;
    PipeStats tolModule;
    uint64_t checkerCommits = 0;
    uint64_t checkerInsts = 0;
    size_t checkerFailures = 0;
};

SystemOutcome
runSystem(const workloads::BenchParams &params, bool event_core,
          uint32_t issue_width = 2, bool burst = false)
{
    sim::SimConfig cfg;
    cfg.guestBudget = 250'000;
    cfg.cosim = true;
    cfg.cosimStrict = false;
    cfg.tolOnlyPipe = true;
    cfg.appOnlyPipe = true;
    cfg.tolModulePipe = true;
    cfg.timing.eventCore = event_core;
    cfg.timing.burst = burst;
    cfg.timing.issueWidth = issue_width;

    sim::System sys(cfg);
    sys.load(workloads::buildBenchmark(params));
    SystemOutcome out;
    out.result = sys.run();
    out.combined = sys.combinedStats();
    out.tolOnly = *sys.tolOnlyStats();
    out.appOnly = *sys.appOnlyStats();
    out.tolModule = *sys.tolModuleStats();
    out.checkerCommits = sys.checker()->commits();
    out.checkerInsts = sys.checker()->instructionsChecked();
    out.checkerFailures = sys.checker()->failures().size();
    return out;
}

class SuiteAb : public ::testing::TestWithParam<const char *>
{};

} // namespace

TEST_P(SuiteAb, BitIdenticalAcrossCores)
{
    const auto members = workloads::suiteBenchmarks(GetParam());
    ASSERT_FALSE(members.empty());
    // The suite's first benchmark, end to end with co-simulation and
    // all three isolation pipelines live.
    const workloads::BenchParams &params = *members.front();

    const SystemOutcome stepped = runSystem(params, false);
    const SystemOutcome event = runSystem(params, true);
    const SystemOutcome burst = runSystem(params, true, 2, true);

    // Functional outcome.
    EXPECT_EQ(stepped.result.guestRetired, event.result.guestRetired);
    EXPECT_EQ(stepped.result.halted, event.result.halted);
    EXPECT_EQ(stepped.result.cycles, event.result.cycles);
    EXPECT_EQ(stepped.result.memoryDiff, event.result.memoryDiff);
    EXPECT_TRUE(event.result.memoryDiff.empty())
        << event.result.memoryDiff;
    EXPECT_EQ(stepped.result.guestRetired, burst.result.guestRetired);
    EXPECT_EQ(stepped.result.cycles, burst.result.cycles);

    // State-checker fingerprint.
    EXPECT_EQ(stepped.checkerCommits, event.checkerCommits);
    EXPECT_EQ(stepped.checkerInsts, event.checkerInsts);
    EXPECT_EQ(stepped.checkerFailures, event.checkerFailures);
    EXPECT_EQ(event.checkerFailures, 0u);
    EXPECT_EQ(stepped.checkerCommits, burst.checkerCommits);
    EXPECT_EQ(burst.checkerFailures, 0u);

    // Every pipeline instance, every metric, all three cores.
    expectStatsIdentical(stepped.combined, event.combined, "combined");
    expectStatsIdentical(stepped.tolOnly, event.tolOnly, "tol-only");
    expectStatsIdentical(stepped.appOnly, event.appOnly, "app-only");
    expectStatsIdentical(stepped.tolModule, event.tolModule,
                         "tol-module");
    expectStatsIdentical(stepped.combined, burst.combined,
                         "combined+burst");
    expectStatsIdentical(stepped.tolOnly, burst.tolOnly,
                         "tol-only+burst");
    expectStatsIdentical(stepped.appOnly, burst.appOnly,
                         "app-only+burst");
    expectStatsIdentical(stepped.tolModule, burst.tolModule,
                         "tol-module+burst");
    expectAccountingCloses(event.combined);
    expectAccountingCloses(burst.combined);
}

INSTANTIATE_TEST_SUITE_P(FourSuites, SuiteAb,
                         ::testing::Values("SPEC INT", "SPEC FP",
                                           "Physics", "Media"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == ' ')
                                     c = '_';
                             return name;
                         });

// ----- system-level issue-width sweep ------------------------------------

class WidthSweepAb : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(WidthSweepAb, BitIdenticalAcrossCores)
{
    // End-to-end A/B at a non-default issue width: co-simulation and
    // all isolation pipelines live, every metric compared with the
    // bit-identical contract. Covers the configs the paper's
    // microarchitectural sweeps visit (the old event core silently
    // fell back to the reference core above width 2).
    const uint32_t width = GetParam();
    const auto members = workloads::suiteBenchmarks("SPEC INT");
    ASSERT_FALSE(members.empty());
    const workloads::BenchParams &params = *members.front();

    const SystemOutcome stepped = runSystem(params, false, width);
    const SystemOutcome event = runSystem(params, true, width);
    const SystemOutcome burst = runSystem(params, true, width, true);

    EXPECT_EQ(stepped.result.guestRetired, event.result.guestRetired);
    EXPECT_EQ(stepped.result.cycles, event.result.cycles);
    EXPECT_EQ(stepped.checkerCommits, event.checkerCommits);
    EXPECT_EQ(event.checkerFailures, 0u);
    EXPECT_EQ(stepped.result.cycles, burst.result.cycles);
    EXPECT_EQ(burst.checkerFailures, 0u);

    expectStatsIdentical(stepped.combined, event.combined, "combined");
    expectStatsIdentical(stepped.tolOnly, event.tolOnly, "tol-only");
    expectStatsIdentical(stepped.appOnly, event.appOnly, "app-only");
    expectStatsIdentical(stepped.tolModule, event.tolModule,
                         "tol-module");
    expectStatsIdentical(stepped.combined, burst.combined,
                         "combined+burst");
    expectStatsIdentical(stepped.tolOnly, burst.tolOnly,
                         "tol-only+burst");
    expectAccountingCloses(event.combined);
    expectAccountingCloses(event.tolOnly);
    expectAccountingCloses(burst.combined);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweepAb,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

// ----- three-way sweep over all 48 paper workloads -----------------------

TEST(ThreeWayAb, AllWorkloadsBitIdentical)
{
    // Every paper benchmark, end to end, on all three cores
    // (cycle-stepped / event / event+burst). Lighter per-run config
    // than SuiteAb (no co-simulation, no isolation pipelines,
    // smaller budget) so the full 48x3 sweep stays test-suite fast;
    // the budget-scaled promotion threshold keeps the runs inside
    // the IM -> BBM -> SBM staging where the record mix is richest.
    const uint64_t budget = 100'000;
    for (const workloads::BenchParams &params :
         workloads::allBenchmarks()) {
        sim::SystemResult results[3];
        PipeStats stats[3];
        for (int mode = 0; mode < 3; ++mode) {
            sim::SimConfig cfg;
            cfg.guestBudget = budget;
            cfg.tol.bbToSbThreshold = sim::scaledSbThreshold(budget);
            cfg.timing.eventCore = mode != 0;
            cfg.timing.burst = mode == 2;
            sim::System sys(cfg);
            sys.load(workloads::buildBenchmark(params));
            results[mode] = sys.run();
            stats[mode] = sys.combinedStats();
        }
        EXPECT_EQ(results[0].guestRetired, results[1].guestRetired)
            << params.name;
        EXPECT_EQ(results[0].guestRetired, results[2].guestRetired)
            << params.name;
        EXPECT_EQ(results[0].cycles, results[1].cycles)
            << params.name;
        EXPECT_EQ(results[0].cycles, results[2].cycles)
            << params.name;
        expectStatsIdentical(stats[0], stats[1],
                             (params.name + " event").c_str());
        expectStatsIdentical(stats[0], stats[2],
                             (params.name + " burst").c_str());
        expectAccountingCloses(stats[2]);
    }
}
