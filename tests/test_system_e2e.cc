/**
 * @file
 * End-to-end system tests under co-simulation: small guest programs
 * run through the full TOL stack (interpret -> BB translate -> chain
 * -> superblock optimize) with every architectural commit checked
 * against the authoritative x86 component.
 */

#include <gtest/gtest.h>

#include "guest/assembler.hh"
#include "sim/system.hh"

namespace dg = darco::guest;
using darco::sim::SimConfig;
using darco::sim::System;
using darco::sim::SystemResult;
using dg::Assembler;
using dg::mem;

namespace {

SimConfig
testConfig()
{
    SimConfig cfg;
    cfg.cosim = true;
    cfg.cosimStrict = true;
    cfg.guestBudget = 5'000'000;
    // Small thresholds so tiny tests exercise all three modes.
    cfg.tol.imToBbThreshold = 3;
    cfg.tol.bbToSbThreshold = 50;
    return cfg;
}

dg::Program
finish(Assembler &as,
       std::vector<dg::Program::DataSegment> data = {})
{
    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    prog.data = std::move(data);
    return prog;
}

} // namespace

TEST(SystemE2E, StraightLineHalts)
{
    Assembler as;
    as.mov(dg::EAX, 7);
    as.add(dg::EAX, 35);
    as.halt();

    System sys(testConfig());
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(sys.guestState().gpr[dg::EAX], 42u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(SystemE2E, HotLoopReachesSuperblockMode)
{
    // A loop hot enough to cross both promotion thresholds.
    Assembler as;
    as.mov(dg::EAX, 0);
    as.mov(dg::ECX, 2000);
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(dg::EAX, dg::ECX);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    System sys(testConfig());
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(sys.guestState().gpr[dg::EAX], 2000u * 2001u / 2u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;

    const auto &ts = sys.tolStats();
    EXPECT_GT(ts.dynIm, 0u);
    EXPECT_GT(ts.dynBbm, 0u);
    EXPECT_GT(ts.dynSbm, 0u) << "loop never reached SBM";
    EXPECT_GE(ts.sbsCreated, 1u);
    // The vast majority of dynamic instructions must come from the
    // superblock (the paper's Figure 5b shape).
    EXPECT_GT(static_cast<double>(ts.dynSbm) /
              static_cast<double>(ts.dynTotal()), 0.8);
}

TEST(SystemE2E, MemoryLoopMatchesAuthoritativeMemory)
{
    const uint32_t base = dg::layout::kDataBase;
    Assembler as;
    as.mov(dg::EDI, static_cast<int32_t>(base));
    as.mov(dg::ECX, 0);
    auto loop = as.newLabel();
    as.bind(loop);
    as.mov(mem(dg::EDI, dg::ECX, 2), dg::ECX);  // a[i] = i
    as.inc(dg::ECX);
    as.cmp(dg::ECX, 500);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    System sys(testConfig());
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
    EXPECT_EQ(sys.hostMemory().load32(base + 4 * 123), 123u);
}

TEST(SystemE2E, CallsAndReturnsThroughIbtc)
{
    Assembler as;
    auto fn = as.newLabel();
    auto loop = as.newLabel();
    as.mov(dg::EAX, 0);
    as.mov(dg::ECX, 300);
    as.bind(loop);
    as.call(fn);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();
    as.bind(fn);
    as.add(dg::EAX, 2);
    as.ret();

    System sys(testConfig());
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(sys.guestState().gpr[dg::EAX], 600u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
    EXPECT_GT(sys.tolStats().guestIndirectBranches, 0u);
}

TEST(SystemE2E, IndirectJumpTable)
{
    Assembler as;
    auto loop = as.newLabel();
    auto case0 = as.newLabel();
    auto case1 = as.newLabel();
    auto join = as.newLabel();

    as.mov(dg::EAX, 0);
    as.mov(dg::ECX, 400);
    as.mov(dg::EBX, static_cast<int32_t>(dg::layout::kDataBase));
    as.bind(loop);
    as.mov(dg::EDX, dg::ECX);
    as.and_(dg::EDX, 1);
    as.jmpi(mem(dg::EBX, dg::EDX, 2));
    as.bind(case0);
    as.add(dg::EAX, 3);
    as.jmp(join);
    as.bind(case1);
    as.add(dg::EAX, 5);
    as.bind(join);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    std::vector<uint8_t> table(8);
    const uint32_t targets[2] = {as.labelAddr(case0),
                                 as.labelAddr(case1)};
    memcpy(table.data(), targets, 8);
    prog.data.push_back({dg::layout::kDataBase, table});

    System sys(testConfig());
    sys.load(prog);
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    // 200 even iterations (+3), 200 odd iterations (+5).
    EXPECT_EQ(sys.guestState().gpr[dg::EAX], 200u * 3 + 200u * 5);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(SystemE2E, BudgetStopsWithoutHalt)
{
    Assembler as;
    auto loop = as.newLabel();
    as.mov(dg::ECX, 0);
    as.bind(loop);
    as.inc(dg::ECX);
    as.jmp(loop);  // infinite

    SimConfig cfg = testConfig();
    cfg.guestBudget = 10000;
    System sys(cfg);
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_FALSE(res.halted);
    EXPECT_GE(res.guestRetired, cfg.guestBudget);
    // Budget overshoot is bounded by one region's worth of work.
    EXPECT_LT(res.guestRetired, cfg.guestBudget + 200);
}

TEST(SystemE2E, FpKernelMatches)
{
    // Numerically integrate sqrt over [0, 400) with unit steps.
    Assembler as;
    as.mov(dg::EAX, 0);
    as.cvtif(dg::F2, dg::EAX);  // accumulator
    as.mov(dg::ECX, 400);
    auto loop = as.newLabel();
    as.bind(loop);
    as.cvtif(dg::F0, dg::ECX);
    as.fsqrt(dg::F1, dg::F0);
    as.fadd(dg::F2, dg::F1);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.cvtfi(dg::EBX, dg::F2);
    as.halt();

    System sys(testConfig());
    sys.load(finish(as));
    const SystemResult res = sys.run();
    EXPECT_TRUE(res.halted);
    double expect = 0;
    for (int i = 400; i >= 1; --i)
        expect += std::sqrt(static_cast<double>(i));
    EXPECT_EQ(sys.guestState().gpr[dg::EBX],
              static_cast<uint32_t>(static_cast<int32_t>(expect)));
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(SystemE2E, AccountingClosesToTotalCycles)
{
    Assembler as;
    as.mov(dg::EAX, 0);
    as.mov(dg::ECX, 1000);
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(dg::EAX, 7);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    System sys(testConfig());
    sys.load(finish(as));
    sys.run();

    const auto &ps = sys.combinedStats();
    double total = 0;
    for (unsigned b = 0; b < darco::timing::kNumBuckets; ++b) {
        total += ps.bucketTotal(static_cast<darco::timing::Bucket>(b));
    }
    EXPECT_NEAR(total, static_cast<double>(ps.cycles),
                1e-6 * static_cast<double>(ps.cycles) + 1.0);
}

TEST(SystemE2E, DeterministicAcrossRuns)
{
    auto build = [] {
        Assembler as;
        as.mov(dg::EAX, 0);
        as.mov(dg::ECX, 800);
        auto loop = as.newLabel();
        as.bind(loop);
        as.add(dg::EAX, dg::ECX);
        as.xor_(dg::EAX, 0x5A5A);
        as.dec(dg::ECX);
        as.jcc(dg::Cond::NE, loop);
        as.halt();
        dg::Program prog;
        prog.code = as.finalize(prog.codeBase);
        prog.entry = prog.codeBase;
        return prog;
    };

    System a(testConfig());
    a.load(build());
    a.run();
    System b(testConfig());
    b.load(build());
    b.run();

    EXPECT_EQ(a.combinedStats().cycles, b.combinedStats().cycles);
    EXPECT_EQ(a.combinedStats().l1d.misses, b.combinedStats().l1d.misses);
    EXPECT_EQ(a.tolStats().dynSbm, b.tolStats().dynSbm);
}
