/**
 * @file
 * Guest ISA encoding tests: encode/decode round trips over every
 * opcode/form combination, length properties, error handling.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "guest/encoding.hh"

namespace dg = darco::guest;
using darco::Prng;

namespace {

std::vector<dg::Form>
validForms(dg::Op op)
{
    std::vector<dg::Form> forms;
    for (unsigned f = 0; f < static_cast<unsigned>(dg::Form::NumForms);
         ++f) {
        if (dg::formValid(op, static_cast<dg::Form>(f)))
            forms.push_back(static_cast<dg::Form>(f));
    }
    return forms;
}

dg::Inst
randomInst(Prng &rng, dg::Op op, dg::Form form)
{
    dg::Inst inst;
    inst.op = op;
    inst.form = form;
    inst.reg1 = static_cast<uint8_t>(rng.below(8));
    inst.reg2 = static_cast<uint8_t>(rng.below(8));
    if (op == dg::Op::JCC) {
        inst.cond = static_cast<dg::Cond>(
            rng.below(static_cast<uint64_t>(dg::Cond::NumConds)));
    }
    if (form == dg::Form::RM || form == dg::Form::MR ||
        form == dg::Form::M) {
        inst.mem.base = static_cast<uint8_t>(rng.below(8));
        if (rng.chance(0.5)) {
            inst.mem.hasIndex = true;
            inst.mem.index = static_cast<uint8_t>(rng.below(8));
            inst.mem.scaleLog2 = static_cast<uint8_t>(rng.below(4));
        }
        inst.mem.disp = static_cast<int32_t>(rng.next());
        if (rng.chance(0.5))
            inst.mem.disp = static_cast<int8_t>(rng.next());
    }
    if (form == dg::Form::RI || form == dg::Form::I) {
        inst.imm = static_cast<int32_t>(rng.next());
        if (rng.chance(0.5))
            inst.imm = static_cast<int8_t>(rng.next());
    }
    return inst;
}

} // namespace

TEST(GuestEncoding, RoundTripAllOpsAllForms)
{
    Prng rng(42);
    for (unsigned o = 0; o < static_cast<unsigned>(dg::Op::NumOps); ++o) {
        const dg::Op op = static_cast<dg::Op>(o);
        for (dg::Form form : validForms(op)) {
            for (int iter = 0; iter < 50; ++iter) {
                dg::Inst inst = randomInst(rng, op, form);
                std::vector<uint8_t> bytes;
                const unsigned len = dg::encode(inst, bytes);
                ASSERT_GE(len, 2u);
                ASSERT_LE(len, dg::kMaxInstLength);

                dg::Inst decoded;
                const auto status =
                    dg::decode(bytes.data(), bytes.size(), decoded);
                ASSERT_EQ(status, dg::DecodeStatus::Ok)
                    << dg::opName(op) << " form "
                    << static_cast<int>(form);
                EXPECT_EQ(decoded.length, len);

                // Compare semantic fields.
                EXPECT_EQ(decoded.op, inst.op);
                EXPECT_EQ(decoded.form, inst.form);
                if (op == dg::Op::JCC)
                    EXPECT_EQ(decoded.cond, inst.cond);
                if (form == dg::Form::RM || form == dg::Form::MR ||
                    form == dg::Form::M) {
                    EXPECT_EQ(decoded.mem.base, inst.mem.base);
                    EXPECT_EQ(decoded.mem.hasIndex, inst.mem.hasIndex);
                    if (inst.mem.hasIndex) {
                        EXPECT_EQ(decoded.mem.index, inst.mem.index);
                        EXPECT_EQ(decoded.mem.scaleLog2,
                                  inst.mem.scaleLog2);
                    }
                    EXPECT_EQ(decoded.mem.disp, inst.mem.disp);
                }
                if (form == dg::Form::RI || form == dg::Form::I)
                    EXPECT_EQ(decoded.imm, inst.imm);
                if (op != dg::Op::JCC && form != dg::Form::NONE &&
                    form != dg::Form::I && form != dg::Form::M) {
                    EXPECT_EQ(decoded.reg1, inst.reg1);
                }
            }
        }
    }
}

TEST(GuestEncoding, ShortImmediateSelectsShortEncoding)
{
    dg::Inst inst;
    inst.op = dg::Op::MOV;
    inst.form = dg::Form::RI;
    inst.reg1 = dg::EAX;
    inst.imm = 5;
    std::vector<uint8_t> bytes;
    const unsigned short_len = dg::encode(inst, bytes);

    bytes.clear();
    inst.imm = 100000;
    const unsigned long_len = dg::encode(inst, bytes);
    EXPECT_EQ(long_len, short_len + 3);
}

TEST(GuestEncoding, ForcedWideEncoding)
{
    dg::Inst inst;
    inst.op = dg::Op::JMP;
    inst.form = dg::Form::I;
    inst.imm = 5;
    inst.length = 1;  // force wide
    std::vector<uint8_t> bytes;
    const unsigned len = dg::encode(inst, bytes);
    EXPECT_EQ(len, 7u);  // opcode + form + regs + imm32
}

TEST(GuestEncoding, DecodeRejectsBadOpcode)
{
    const uint8_t bytes[] = {0xFF, 0x00, 0x00, 0x00};
    dg::Inst inst;
    EXPECT_EQ(dg::decode(bytes, sizeof(bytes), inst),
              dg::DecodeStatus::BadOpcode);
}

TEST(GuestEncoding, DecodeRejectsBadForm)
{
    // RET only supports Form::NONE.
    const uint8_t bytes[] = {
        static_cast<uint8_t>(dg::Op::RET), 0x01, 0x00, 0x00};
    dg::Inst inst;
    EXPECT_EQ(dg::decode(bytes, sizeof(bytes), inst),
              dg::DecodeStatus::BadForm);
}

TEST(GuestEncoding, DecodeRejectsTruncated)
{
    dg::Inst inst;
    inst.op = dg::Op::MOV;
    inst.form = dg::Form::RI;
    inst.imm = 100000;
    std::vector<uint8_t> bytes;
    dg::encode(inst, bytes);
    dg::Inst out;
    EXPECT_EQ(dg::decode(bytes.data(), bytes.size() - 1, out),
              dg::DecodeStatus::Truncated);
    EXPECT_EQ(dg::decode(bytes.data(), 1, out),
              dg::DecodeStatus::Truncated);
}

TEST(GuestEncoding, DisassemblerProducesText)
{
    dg::Inst inst;
    inst.op = dg::Op::ADD;
    inst.form = dg::Form::RM;
    inst.reg1 = dg::EAX;
    inst.mem.base = dg::EBX;
    inst.mem.hasIndex = true;
    inst.mem.index = dg::ESI;
    inst.mem.scaleLog2 = 2;
    inst.mem.disp = 16;
    EXPECT_EQ(dg::disassemble(inst), "add eax, [ebx+esi*4+16]");
}
