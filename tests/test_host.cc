/**
 * @file
 * Host-layer tests: HRISC executor semantics per opcode, service-stop
 * behaviour, retirement accounting on exit transfers, and the
 * disassembler.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "host/disasm.hh"
#include "host/executor.hh"

using namespace darco;
using namespace darco::host;

namespace {

class NullSink : public timing::RecordSink
{
  public:
    void consume(const timing::Record &) override {}
};

/** Build a region from instructions + a trailing halt-service JAL. */
struct ExecFixture
{
    CodeStore store{amap::kCodeCacheBase, amap::kCodeCacheBase + 65536};
    Memory mem;
    NullSink sink;
    Executor exec{store, mem, sink};

    HostInst
    mk(HOp op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm = 0)
    {
        HostInst inst;
        inst.op = op;
        inst.rd = rd;
        inst.rs1 = rs1;
        inst.rs2 = rs2;
        inst.imm = imm;
        return inst;
    }

    /** Install insts + final JAL to the halt service; run from entry. */
    Executor::Stop
    run(std::vector<HostInst> insts)
    {
        HostInst end = mk(HOp::JAL, 0, kNoReg, kNoReg,
                          static_cast<int64_t>(amap::kSvcHalt));
        insts.push_back(end);
        auto region = std::make_unique<CodeRegion>();
        region->insts = std::move(insts);
        CodeRegion *installed = store.install(std::move(region));
        EXPECT_NE(installed, nullptr);
        return exec.run(installed->hostBase, 1u << 20);
    }
};

} // namespace

TEST(HostExecutor, AluSemantics)
{
    ExecFixture f;
    f.exec.x[10] = 7;
    f.exec.x[11] = 3;
    f.run({
        f.mk(HOp::ADD, 12, 10, 11),       // 10
        f.mk(HOp::SUB, 13, 10, 11),       // 4
        f.mk(HOp::SLL, 14, 10, 11),       // 56
        f.mk(HOp::SLT, 15, 11, 10),       // 1
        f.mk(HOp::SLTU, 16, 10, 11),      // 0
        f.mk(HOp::MUL, 17, 10, 11),       // 21
        f.mk(HOp::DIV, 18, 10, 11),       // 2
        f.mk(HOp::REM, 19, 10, 11),       // 1
        f.mk(HOp::XORI, 20, 10, kNoReg, 1),  // 6
        f.mk(HOp::LUI, 21, kNoReg, kNoReg, 0x12345000),
    });
    EXPECT_EQ(f.exec.x[12], 10u);
    EXPECT_EQ(f.exec.x[13], 4u);
    EXPECT_EQ(f.exec.x[14], 56u);
    EXPECT_EQ(f.exec.x[15], 1u);
    EXPECT_EQ(f.exec.x[16], 0u);
    EXPECT_EQ(f.exec.x[17], 21u);
    EXPECT_EQ(f.exec.x[18], 2u);
    EXPECT_EQ(f.exec.x[19], 1u);
    EXPECT_EQ(f.exec.x[20], 6u);
    EXPECT_EQ(f.exec.x[21], 0x12345000u);
}

TEST(HostExecutor, X0IsHardwiredZero)
{
    ExecFixture f;
    f.run({
        f.mk(HOp::ADDI, 0, 0, kNoReg, 123),   // write to x0 discarded
        f.mk(HOp::ADDI, 10, 0, kNoReg, 5),    // x0 reads as 0
    });
    EXPECT_EQ(f.exec.x[0], 0u);
    EXPECT_EQ(f.exec.x[10], 5u);
}

TEST(HostExecutor, MulhAndSignedDivEdge)
{
    ExecFixture f;
    f.exec.x[10] = 0x80000000;  // INT_MIN
    f.exec.x[11] = static_cast<uint32_t>(-1);
    f.run({
        f.mk(HOp::MULH, 12, 10, 10),   // INT_MIN^2 >> 32 = 0x40000000
        f.mk(HOp::DIV, 13, 10, 11),    // total semantics: 0
        f.mk(HOp::REM, 14, 10, 11),    // total semantics: dividend
        f.mk(HOp::DIV, 15, 10, 0),     // /0 -> 0
    });
    EXPECT_EQ(f.exec.x[12], 0x40000000u);
    EXPECT_EQ(f.exec.x[13], 0u);
    EXPECT_EQ(f.exec.x[14], 0x80000000u);
    EXPECT_EQ(f.exec.x[15], 0u);
}

TEST(HostExecutor, LoadStoreSizes)
{
    ExecFixture f;
    f.exec.x[10] = 0x20000;
    f.exec.x[11] = 0xAABBCCDD;
    HostInst st4 = f.mk(HOp::ST, kNoReg, 10, 11, 0);
    st4.size = 4;
    HostInst ld1 = f.mk(HOp::LD, 12, 10, kNoReg, 1);
    ld1.size = 1;
    HostInst ld4 = f.mk(HOp::LD, 13, 10, kNoReg, 0);
    ld4.size = 4;
    f.run({st4, ld1, ld4});
    EXPECT_EQ(f.exec.x[12], 0xCCu);  // little-endian byte 1
    EXPECT_EQ(f.exec.x[13], 0xAABBCCDDu);
    EXPECT_EQ(f.mem.load32(0x20000), 0xAABBCCDDu);
}

TEST(HostExecutor, FpOps)
{
    ExecFixture f;
    f.exec.f[20] = 2.0;
    f.exec.f[21] = 8.0;
    f.run({
        f.mk(HOp::FADD, 22, 20, 21),
        f.mk(HOp::FMUL, 23, 20, 21),
        f.mk(HOp::FSQRT, 24, 21, kNoReg),
        f.mk(HOp::FLT, 10, 20, 21),
        f.mk(HOp::FEQ, 11, 20, 20),
    });
    EXPECT_DOUBLE_EQ(f.exec.f[22], 10.0);
    EXPECT_DOUBLE_EQ(f.exec.f[23], 16.0);
    EXPECT_DOUBLE_EQ(f.exec.f[24], std::sqrt(8.0));
    EXPECT_EQ(f.exec.x[10], 1u);
    EXPECT_EQ(f.exec.x[11], 1u);
}

TEST(HostExecutor, BranchesWithinRegion)
{
    ExecFixture f;
    f.exec.x[10] = 1;
    // beq x10, x0 -> skip (not taken); addi x11 = 7; then a taken
    // branch over an addi that must not execute.
    std::vector<HostInst> insts = {
        f.mk(HOp::BEQ, kNoReg, 10, 0, 0),     // patched below
        f.mk(HOp::ADDI, 11, 0, kNoReg, 7),
        f.mk(HOp::BNE, kNoReg, 10, 0, 0),     // patched below
        f.mk(HOp::ADDI, 11, 0, kNoReg, 99),   // skipped
        f.mk(HOp::ADDI, 12, 11, kNoReg, 1),   // x12 = 8
    };
    insts[0].imm = 4;  // index of the last ADDI
    insts[0].targetIsIndex = true;
    insts[2].imm = 4;
    insts[2].targetIsIndex = true;
    f.run(std::move(insts));
    EXPECT_EQ(f.exec.x[11], 7u);
    EXPECT_EQ(f.exec.x[12], 8u);
}

TEST(HostExecutor, RetirementCountingOnExitTransfers)
{
    ExecFixture f;
    HostInst jal = f.mk(HOp::JAL, 0, kNoReg, kNoReg,
                        static_cast<int64_t>(amap::kSvcDispatch));
    jal.guestBoundary = true;
    jal.guestIndex = 13;  // retires 13 guest instructions
    auto region = std::make_unique<CodeRegion>();
    region->insts = {f.mk(HOp::ADDI, 10, 0, kNoReg, 1), jal};
    CodeRegion *installed = f.store.install(std::move(region));
    const Executor::Stop stop = f.exec.run(installed->hostBase, 1000);
    EXPECT_EQ(stop.reason, Executor::StopReason::Dispatch);
    EXPECT_EQ(f.exec.lastGuestRetired(), 13u);
}

TEST(HostExecutor, BudgetStopsAtRegionEntry)
{
    ExecFixture f;
    // A region that chains to itself, retiring 2 per trip.
    HostInst jal = f.mk(HOp::JAL, 0, kNoReg, kNoReg, 0);
    jal.guestBoundary = true;
    jal.guestIndex = 2;
    jal.targetIsIndex = true;  // back to instruction 0
    auto region = std::make_unique<CodeRegion>();
    region->guestEntry = 0x8048000;
    region->insts = {f.mk(HOp::ADDI, 10, 10, kNoReg, 1), jal};
    CodeRegion *installed = f.store.install(std::move(region));

    const Executor::Stop stop = f.exec.run(installed->hostBase, 9);
    EXPECT_EQ(stop.reason, Executor::StopReason::Budget);
    EXPECT_EQ(stop.guestEip, 0x8048000u);
    // 5 trips x 2 = 10 >= 9: stops having retired 10.
    EXPECT_EQ(f.exec.lastGuestRetired(), 10u);
    EXPECT_EQ(f.exec.x[10], 5u);
}

TEST(HostExecutor, ServicePayloadRegisters)
{
    ExecFixture f;
    std::vector<HostInst> insts = {
        f.mk(HOp::ADDI, hreg::ExitTarget, 0, kNoReg, 0x1234),
        f.mk(HOp::ADDI, hreg::ExitId, 0, kNoReg, 3),
    };
    const Executor::Stop stop = f.run(std::move(insts));
    EXPECT_EQ(stop.reason, Executor::StopReason::Halt);
    EXPECT_EQ(stop.exitId, 3u);
    EXPECT_EQ(f.exec.x[hreg::ExitTarget], 0x1234u);
}

// ----- disassembler -----------------------------------------------------

TEST(HostDisasm, RendersConventionalRegisters)
{
    HostInst inst;
    inst.op = HOp::ADD;
    inst.rd = hreg::guestGpr(0);  // gEAX
    inst.rs1 = hreg::guestGpr(3); // gEBX
    inst.rs2 = hreg::Zero;
    EXPECT_EQ(disassemble(inst), "add gEAX, gEBX, x0");
}

TEST(HostDisasm, RendersMemoryAndServiceTargets)
{
    HostInst ld;
    ld.op = HOp::LD;
    ld.rd = 45;
    ld.rs1 = hreg::guestGpr(6);
    ld.imm = -8;
    ld.size = 4;
    EXPECT_EQ(disassemble(ld), "ld x45, [gESI-8]:4");

    HostInst jal;
    jal.op = HOp::JAL;
    jal.rd = hreg::Zero;
    jal.imm = static_cast<int64_t>(amap::kSvcDispatch);
    jal.guestBoundary = true;
    jal.guestIndex = 5;
    EXPECT_EQ(disassemble(jal), "jal x0 -> svc:dispatch   ; retire 5");
}

TEST(HostDisasm, RegionDumpContainsExits)
{
    CodeRegion region;
    region.kind = RegionKind::Superblock;
    region.hostBase = 0xC8000100;
    region.guestEntry = 0x8048000;
    HostInst nop;
    region.insts = {nop};
    ExitInfo exit;
    exit.guestTarget = 0x8048020;
    exit.guestInstsRetired = 4;
    exit.flagMask = 0x3;
    region.exits.push_back(exit);

    const std::string dump = disassembleRegion(region);
    EXPECT_NE(dump.find("superblock region"), std::string::npos);
    EXPECT_NE(dump.find("guest 0x08048000"), std::string::npos);
    EXPECT_NE(dump.find("target 0x08048020"), std::string::npos);
    EXPECT_NE(dump.find("retires 4"), std::string::npos);
}

TEST(CodeStore, LookupCacheInvalidatedOnFlush)
{
    CodeStore store{amap::kCodeCacheBase, amap::kCodeCacheBase + 65536};

    auto make_region = [](size_t n) {
        auto region = std::make_unique<CodeRegion>();
        HostInst nop;
        region->insts.assign(n, nop);
        return region;
    };

    CodeRegion *first = store.install(make_region(8));
    ASSERT_NE(first, nullptr);
    const uint32_t first_base = first->hostBase;
    const uint32_t pc = first_base + 3 * kHostInstBytes;

    // Populate the direct-mapped lookup cache, then hit it.
    EXPECT_EQ(store.find(pc), first);
    EXPECT_EQ(store.find(pc), first);

    store.flush();  // destroys `first`
    // The cached mapping must not survive the flush.
    EXPECT_EQ(store.find(pc), nullptr);
    EXPECT_EQ(store.numRegions(), 0u);

    // The bump allocator restarts, so a new region reuses the same
    // addresses; lookups must resolve to the new region object.
    CodeRegion *second = store.install(make_region(8));
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->hostBase, first_base);
    EXPECT_EQ(store.find(pc), second);
    EXPECT_EQ(store.find(pc), second);
}
