/**
 * @file
 * Translator + emitter differential tests: random guest basic blocks
 * are translated (BBM-grade and full SBM-grade pipelines), emitted as
 * host regions, executed by the functional host executor, and the
 * resulting guest state is compared against the authoritative
 * emulator — including lazily-materialized flags per the exit's
 * liveness mask. Also covers the flag-liveness scanner.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "guest/assembler.hh"
#include "guest/emulator.hh"
#include "host/executor.hh"
#include "ir/passes.hh"
#include "ir/regalloc.hh"
#include "ir/scheduler.hh"
#include "sim/system.hh"
#include "tol/emitter.hh"
#include "tol/flag_scan.hh"
#include "tol/translator.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

/** Null sink for functional-only execution. */
class NullSink : public timing::RecordSink
{
  public:
    void consume(const timing::Record &) override {}
};

/**
 * Harness: translate one guest path, run it as a host region, and
 * compare against the emulator executing the same instructions.
 */
struct RegionHarness
{
    tol::TolConfig cfg;
    host::Memory hostMem;
    host::CodeStore store{host::amap::kCodeCacheBase,
                          host::amap::kCodeCacheBase + (1u << 20)};
    NullSink sink;
    host::Executor exec{store, hostMem, sink};

    guest::Memory authMem;
    guest::Emulator emu{authMem};

    /** Build a path from assembled code starting at the code base. */
    std::vector<tol::PathInst>
    pathFromCode(const std::vector<uint8_t> &code)
    {
        hostMem.writeBytes(g::layout::kCodeBase, code.data(),
                           code.size());
        authMem.writeBytes(g::layout::kCodeBase, code.data(),
                           code.size());
        tol::GuestCodeReader reader(hostMem);
        std::vector<tol::PathInst> path;
        uint32_t eip = g::layout::kCodeBase;
        for (;;) {
            const g::Inst &inst = reader.at(eip);
            path.push_back(tol::PathInst{inst, eip, false});
            if (g::opInfo(inst.op).isBranch || inst.op == g::Op::HALT)
                break;
            eip += inst.length;
        }
        return path;
    }

    /**
     * Translate with the given optimization level, execute, compare.
     * Returns the exit taken.
     */
    void
    runAndCompare(const std::vector<tol::PathInst> &path, bool optimize,
                  const g::State &input, uint64_t tag)
    {
        ir::Trace trace = tol::Translator(cfg).translate(path);
        // Conservative exit flag masks (everything live).
        ir::PassStats ps;
        if (optimize) {
            ir::copyPropagation(trace, &ps);
            ir::constantPropagation(trace, &ps);
            ir::commonSubexpressionElimination(trace, &ps);
            ir::copyPropagation(trace, &ps);
            ir::deadCodeElimination(trace, &ps);
            ir::scheduleTrace(trace);
        }
        const ir::Allocation alloc = ir::allocateRegisters(trace);

        tol::EmitOptions opts;
        opts.kind = host::RegionKind::Superblock;
        opts.enableIbtc = false;  // miss path exits to runtime: simplest
        auto region = tol::emitRegion(trace, alloc, opts);
        host::CodeRegion *installed = store.install(std::move(region));
        ASSERT_NE(installed, nullptr);

        // Load guest state into the application register partition.
        for (unsigned r = 0; r < g::NumGprs; ++r)
            exec.x[host::hreg::guestGpr(r)] = input.gpr[r];
        exec.x[host::hreg::FlagZ] = (input.eflags & g::flag::ZF) ? 1 : 0;
        exec.x[host::hreg::FlagS] = (input.eflags & g::flag::SF) ? 1 : 0;
        exec.x[host::hreg::FlagC] = (input.eflags & g::flag::CF) ? 1 : 0;
        exec.x[host::hreg::FlagO] = (input.eflags & g::flag::OF) ? 1 : 0;
        for (unsigned r = 0; r < g::NumFprs; ++r)
            exec.f[host::hreg::guestFpr(r)] = input.fpr[r];

        const host::Executor::Stop stop =
            exec.run(installed->hostBase, 1u << 30);

        // Reference: emulator runs the same dynamic instruction count.
        emu.resetState(input);
        const uint32_t retired = stop.reason ==
                host::Executor::StopReason::Halt
            ? installed->exits[exec.x[host::hreg::ExitId]]
                  .guestInstsRetired
            : installed->exits[stop.exitId].guestInstsRetired;
        emu.run(retired);
        const g::State &ref = emu.state();

        for (unsigned r = 0; r < g::NumGprs; ++r) {
            ASSERT_EQ(ref.gpr[r], exec.x[host::hreg::guestGpr(r)])
                << "GPR " << r << " tag " << tag;
        }
        for (unsigned r = 0; r < g::NumFprs; ++r) {
            uint64_t a, b;
            const double da = ref.fpr[r];
            const double db = exec.f[host::hreg::guestFpr(r)];
            memcpy(&a, &da, 8);
            memcpy(&b, &db, 8);
            ASSERT_EQ(a, b) << "FPR " << r << " tag " << tag;
        }

        // Exit target check (direct exits).
        const host::ExitInfo &exit = installed->exits[stop.exitId];
        if (!exit.indirect &&
            stop.reason == host::Executor::StopReason::Dispatch) {
            ASSERT_EQ(ref.eip, exec.x[host::hreg::ExitTarget])
                << "exit target, tag " << tag;
        }
        if (exit.indirect) {
            ASSERT_EQ(ref.eip, exec.x[host::hreg::ExitTarget])
                << "indirect target, tag " << tag;
        }

        // Flags per exit liveness (we used conservative All here).
        const uint8_t mask = exit.flagMask;
        auto check_flag = [&](uint8_t bit, uint8_t host_reg,
                              uint32_t eflag, const char *name) {
            if (!(mask & bit))
                return;
            ASSERT_EQ((ref.eflags & eflag) != 0,
                      exec.x[host_reg] != 0)
                << name << " tag " << tag;
        };
        check_flag(ir::fmask::Z, host::hreg::FlagZ, g::flag::ZF, "ZF");
        check_flag(ir::fmask::S, host::hreg::FlagS, g::flag::SF, "SF");
        check_flag(ir::fmask::C, host::hreg::FlagC, g::flag::CF, "CF");
        check_flag(ir::fmask::O, host::hreg::FlagO, g::flag::OF, "OF");

        // Guest memory must match (dirty pages).
        const std::string diff =
            sim::compareGuestMemory(authMem, hostMem);
        ASSERT_EQ(diff, "") << "tag " << tag;
    }
};

/** Random straight-line guest block ending in a conditional branch. */
std::vector<uint8_t>
randomGuestBlock(Prng &rng, unsigned insts)
{
    g::Assembler as;
    auto reg = [&rng]() {
        // Avoid ESP to keep the stack usable for push/pop tests.
        static const g::Reg regs[] = {g::EAX, g::ECX, g::EDX, g::EBX,
                                      g::EBP, g::ESI, g::EDI};
        return regs[rng.below(7)];
    };
    for (unsigned i = 0; i < insts; ++i) {
        switch (rng.below(16)) {
          case 0: as.mov(reg(), static_cast<int32_t>(rng.next())); break;
          case 1: as.mov(reg(), reg()); break;
          case 2: as.add(reg(), reg()); break;
          case 3: as.sub(reg(), static_cast<int32_t>(rng.below(1000)));
                  break;
          case 4: as.and_(reg(), reg()); break;
          case 5: as.or_(reg(), static_cast<int32_t>(rng.next())); break;
          case 6: as.xor_(reg(), reg()); break;
          case 7: as.cmp(reg(), reg()); break;
          case 8: as.test(reg(), static_cast<int32_t>(rng.next())); break;
          case 9: as.shl(reg(), static_cast<int32_t>(rng.below(32)));
                  break;
          case 10: as.sar(reg(), reg()); break;
          case 11: as.imul(reg(), reg()); break;
          case 12: as.inc(reg()); break;
          case 13: as.dec(reg()); break;
          case 14: as.neg(reg()); break;
          default: as.not_(reg()); break;
        }
    }
    // Conditional terminator over the final flags.
    const g::Cond cond = static_cast<g::Cond>(
        rng.below(static_cast<uint64_t>(g::Cond::NumConds)));
    auto target = as.newLabel();
    as.jcc(cond, target);
    as.nop();           // fallthrough landing pad
    as.bind(target);
    as.nop();           // taken landing pad
    return as.finalize(g::layout::kCodeBase);
}

g::State
randomState(Prng &rng)
{
    g::State state;
    for (unsigned r = 0; r < g::NumGprs; ++r)
        state.gpr[r] = static_cast<uint32_t>(rng.next());
    state.gpr[g::ESP] = g::layout::kStackTop;
    state.eflags = static_cast<uint32_t>(rng.next()) & g::flag::All;
    for (unsigned r = 0; r < g::NumFprs; ++r)
        state.fpr[r] = static_cast<double>(rng.range(-5000, 5000)) / 3.0;
    state.eip = g::layout::kCodeBase;
    return state;
}

} // namespace

TEST(Translator, RandomAluBlocksBbmGrade)
{
    Prng rng(2024);
    for (unsigned iter = 0; iter < 120; ++iter) {
        RegionHarness harness;
        const auto code = randomGuestBlock(rng, 3 + iter % 12);
        const auto path = harness.pathFromCode(code);
        harness.runAndCompare(path, false, randomState(rng), iter);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(Translator, RandomAluBlocksSbmGrade)
{
    Prng rng(4048);
    for (unsigned iter = 0; iter < 120; ++iter) {
        RegionHarness harness;
        const auto code = randomGuestBlock(rng, 3 + iter % 12);
        const auto path = harness.pathFromCode(code);
        harness.runAndCompare(path, true, randomState(rng), iter);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(Translator, MemoryAndStackBlock)
{
    Prng rng(9);
    for (unsigned iter = 0; iter < 60; ++iter) {
        RegionHarness harness;
        g::Assembler as;
        as.mov(g::ESI, static_cast<int32_t>(g::layout::kDataBase));
        as.mov(g::EAX, static_cast<int32_t>(rng.next()));
        as.mov(g::mem(g::ESI, 8), g::EAX);
        as.mov(g::EBX, g::mem(g::ESI, 8));
        as.movb(g::ECX, g::mem(g::ESI, 9));
        as.push(g::EBX);
        as.push(123456);
        as.pop(g::EDX);
        as.pop(g::EDI);
        as.add(g::EDI, g::mem(g::ESI, 8));
        as.lea(g::EBP, g::mem(g::ESI, g::ECX, 2, -4));
        auto end = as.newLabel();
        as.jmp(end);
        as.bind(end);
        as.nop();
        const auto code = as.finalize(g::layout::kCodeBase);
        const auto path = harness.pathFromCode(code);
        harness.runAndCompare(path, iter % 2 == 1, randomState(rng),
                              iter);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(Translator, FpBlock)
{
    Prng rng(31);
    for (unsigned iter = 0; iter < 60; ++iter) {
        RegionHarness harness;
        g::Assembler as;
        as.cvtif(g::F0, g::EAX);
        as.cvtif(g::F1, g::EBX);
        as.fadd(g::F0, g::F1);
        as.fmul(g::F1, g::F0);
        as.fsub(g::F2, g::F1);
        as.fdiv(g::F2, g::F0);
        as.fsqrt(g::F3, g::F2);
        as.fabs_(g::F4, g::F2);
        as.fneg(g::F5, g::F4);
        as.fcmp(g::F0, g::F1);
        as.cvtfi(g::ECX, g::F3);
        auto t = as.newLabel();
        as.jcc(g::Cond::B, t);
        as.nop();
        as.bind(t);
        as.nop();
        const auto code = as.finalize(g::layout::kCodeBase);
        const auto path = harness.pathFromCode(code);
        harness.runAndCompare(path, iter % 2 == 1, randomState(rng),
                              iter);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

TEST(Translator, IdivBlock)
{
    Prng rng(77);
    for (unsigned iter = 0; iter < 40; ++iter) {
        RegionHarness harness;
        g::Assembler as;
        if (iter % 4 == 0)
            as.mov(g::ECX, 0);  // exercise the div-by-zero path
        as.idiv(g::ECX);
        as.idiv(g::EBX);
        auto end = as.newLabel();
        as.jmp(end);
        as.bind(end);
        as.nop();
        const auto code = as.finalize(g::layout::kCodeBase);
        const auto path = harness.pathFromCode(code);
        harness.runAndCompare(path, iter % 2 == 1, randomState(rng),
                              iter);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

// ----- flag scanner ---------------------------------------------------------

TEST(FlagScanner, DeadWhenOverwrittenImmediately)
{
    host::Memory mem;
    g::Assembler as;
    as.add(g::EAX, g::EBX);   // overwrites all of Z,S,C,O
    as.halt();
    const auto code = as.finalize(g::layout::kCodeBase);
    mem.writeBytes(g::layout::kCodeBase, code.data(), code.size());

    tol::GuestCodeReader reader(mem);
    tol::FlagScanner scanner(reader);
    EXPECT_EQ(scanner.liveFlagsAt(g::layout::kCodeBase), 0);
}

TEST(FlagScanner, LiveWhenConsumedByJcc)
{
    host::Memory mem;
    g::Assembler as;
    auto t = as.newLabel();
    as.jcc(g::Cond::B, t);    // consumes CF
    as.bind(t);
    as.add(g::EAX, g::EBX);   // then everything overwritten
    as.halt();
    const auto code = as.finalize(g::layout::kCodeBase);
    mem.writeBytes(g::layout::kCodeBase, code.data(), code.size());

    tol::GuestCodeReader reader(mem);
    tol::FlagScanner scanner(reader);
    const uint8_t live = scanner.liveFlagsAt(g::layout::kCodeBase);
    EXPECT_TRUE(live & ir::fmask::C);
    EXPECT_FALSE(live & ir::fmask::Z);
}

TEST(FlagScanner, IncPreservesCarryLiveness)
{
    host::Memory mem;
    g::Assembler as;
    as.inc(g::EAX);           // writes Z,S,O but keeps C
    auto t = as.newLabel();
    as.jcc(g::Cond::B, t);    // consumes the ORIGINAL CF
    as.bind(t);
    as.halt();
    const auto code = as.finalize(g::layout::kCodeBase);
    mem.writeBytes(g::layout::kCodeBase, code.data(), code.size());

    tol::GuestCodeReader reader(mem);
    tol::FlagScanner scanner(reader);
    const uint8_t live = scanner.liveFlagsAt(g::layout::kCodeBase);
    EXPECT_TRUE(live & ir::fmask::C);
    EXPECT_FALSE(live & ir::fmask::Z);
}

TEST(FlagScanner, ConservativeAtIndirect)
{
    host::Memory mem;
    g::Assembler as;
    as.ret();                 // unknown continuation
    const auto code = as.finalize(g::layout::kCodeBase);
    mem.writeBytes(g::layout::kCodeBase, code.data(), code.size());

    tol::GuestCodeReader reader(mem);
    tol::FlagScanner scanner(reader);
    EXPECT_EQ(scanner.liveFlagsAt(g::layout::kCodeBase), ir::fmask::All);
}

TEST(FlagScanner, UnionOverBothJccPaths)
{
    host::Memory mem;
    g::Assembler as;
    auto t = as.newLabel();
    as.jcc(g::Cond::E, t);    // consumes ZF
    // Fallthrough: consumes CF before overwrite.
    auto t2 = as.newLabel();
    as.jcc(g::Cond::B, t2);
    as.bind(t2);
    as.add(g::EAX, g::EBX);
    as.halt();
    as.bind(t);
    as.add(g::ECX, g::EDX);   // taken path overwrites
    as.halt();
    const auto code = as.finalize(g::layout::kCodeBase);
    mem.writeBytes(g::layout::kCodeBase, code.data(), code.size());

    tol::GuestCodeReader reader(mem);
    tol::FlagScanner scanner(reader);
    const uint8_t live = scanner.liveFlagsAt(g::layout::kCodeBase);
    EXPECT_TRUE(live & ir::fmask::Z);
    EXPECT_TRUE(live & ir::fmask::C);
    EXPECT_FALSE(live & ir::fmask::S);
}

// ----- register allocator invariants ------------------------------------

TEST(RegAlloc, NoOverlappingLiveRangesShareARegister)
{
    Prng rng(55);
    for (unsigned iter = 0; iter < 60; ++iter) {
        RegionHarness harness;
        const auto code = randomGuestBlock(rng, 20);
        const auto path = harness.pathFromCode(code);
        ir::Trace trace =
            tol::Translator(harness.cfg).translate(path);

        const ir::Allocation alloc = ir::allocateRegisters(trace);

        // Recompute intervals; assert no two same-register temps
        // overlap.
        struct Interval
        {
            ir::Vreg v;
            size_t start, end;
            uint8_t reg;
        };
        std::vector<int64_t> def(trace.numVregs(), -1);
        std::vector<int64_t> last(trace.numVregs(), -1);
        for (size_t i = 0; i < trace.insts.size(); ++i) {
            const ir::IrInst &inst = trace.insts[i];
            auto use = [&](ir::Vreg v) {
                if (v != ir::kNoVreg && !ir::isBoundVreg(v))
                    last[v] = static_cast<int64_t>(i);
            };
            use(inst.src1);
            if (!inst.useImm)
                use(inst.src2);
            if (ir::irOpInfo(inst.op).hasDst &&
                !ir::isBoundVreg(inst.dst) && def[inst.dst] < 0)
                def[inst.dst] = static_cast<int64_t>(i);
        }
        std::vector<Interval> ivals;
        for (ir::Vreg v = ir::kFirstTemp; v < trace.numVregs(); ++v) {
            if (def[v] < 0 || alloc.of(v).spilled)
                continue;
            ivals.push_back(Interval{
                v, static_cast<size_t>(def[v]),
                static_cast<size_t>(std::max(last[v], def[v])),
                alloc.of(v).reg});
        }
        for (size_t a = 0; a < ivals.size(); ++a) {
            for (size_t b = a + 1; b < ivals.size(); ++b) {
                if (ivals[a].reg != ivals[b].reg)
                    continue;
                const bool disjoint = ivals[a].end < ivals[b].start ||
                                      ivals[b].end < ivals[a].start;
                ASSERT_TRUE(disjoint)
                    << "v" << ivals[a].v << " and v" << ivals[b].v
                    << " overlap in x" << int(ivals[a].reg);
            }
        }
    }
}

TEST(RegAlloc, SpillsWhenPressureExceedsPool)
{
    // A trace with more simultaneously-live temps than the pool (8).
    ir::Trace t;
    t.guestEntry = 0x1000;
    t.guestEips.push_back(0x1000);
    ir::IrExit exit;
    exit.guestTarget = 0x2000;
    exit.guestInstsRetired = 1;
    t.exits.push_back(exit);

    std::vector<ir::Vreg> temps;
    for (unsigned i = 0; i < 14; ++i) {
        const ir::Vreg v = t.newTemp(ir::RegClass::Int);
        temps.push_back(v);
        ir::IrInst inst;
        inst.op = ir::IrOp::ADD;
        inst.dst = v;
        inst.src1 = ir::vGpr(i % 8);
        inst.useImm = true;
        inst.imm = i;
        t.insts.push_back(inst);
    }
    // Use all temps at the end (they are simultaneously live).
    for (unsigned i = 0; i + 1 < temps.size(); i += 2) {
        ir::IrInst inst;
        inst.op = ir::IrOp::ADD;
        inst.dst = ir::vGpr(i % 8);
        inst.src1 = temps[i];
        inst.src2 = temps[i + 1];
        t.insts.push_back(inst);
    }
    ir::IrInst je;
    je.op = ir::IrOp::JEXIT;
    t.insts.push_back(je);
    ASSERT_EQ(ir::validate(t), "");

    const ir::Allocation alloc = ir::allocateRegisters(t);
    EXPECT_GT(alloc.spilledVregs, 0u);
    EXPECT_GT(alloc.numSpillSlots, 0u);
}
