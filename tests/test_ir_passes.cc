/**
 * @file
 * Optimizer-pass tests: targeted unit tests per pass plus
 * property-based differential testing — every pass (and the full SBM
 * pipeline) must preserve the semantics of randomly generated traces
 * under the IR evaluator: same exit, same bound-register values, same
 * memory effects.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "ir/evaluator.hh"
#include "ir/ir.hh"
#include "ir/passes.hh"
#include "ir/scheduler.hh"

using namespace darco;
using namespace darco::ir;

namespace {

/** Structured random trace generator (always valid; terminates). */
Trace
randomTrace(Prng &rng, unsigned length)
{
    Trace trace;
    trace.guestEntry = 0x1000;
    trace.guestEips.push_back(0x1000);

    std::vector<Vreg> int_temps;
    std::vector<Vreg> fp_temps;

    auto int_src = [&]() -> Vreg {
        // Bound GPRs/flags or a defined temp.
        if (!int_temps.empty() && rng.chance(0.5))
            return int_temps[rng.below(int_temps.size())];
        if (rng.chance(0.2))
            return flagVreg(static_cast<unsigned>(rng.below(4)));
        return vGpr(static_cast<unsigned>(rng.below(8)));
    };
    auto fp_src = [&]() -> Vreg {
        if (!fp_temps.empty() && rng.chance(0.5))
            return fp_temps[rng.below(fp_temps.size())];
        return vFpr(static_cast<unsigned>(rng.below(8)));
    };
    auto int_dst = [&]() -> Vreg {
        if (rng.chance(0.35)) {
            if (rng.chance(0.2))
                return flagVreg(static_cast<unsigned>(rng.below(4)));
            return vGpr(static_cast<unsigned>(rng.below(8)));
        }
        const Vreg t = trace.newTemp(RegClass::Int);
        int_temps.push_back(t);
        return t;
    };
    auto fp_dst = [&]() -> Vreg {
        if (rng.chance(0.4))
            return vFpr(static_cast<unsigned>(rng.below(8)));
        const Vreg t = trace.newTemp(RegClass::Fp);
        fp_temps.push_back(t);
        return t;
    };
    auto add_exit = [&](bool indirect) -> uint16_t {
        IrExit exit;
        exit.guestTarget = indirect
            ? 0 : 0x2000 + static_cast<uint32_t>(rng.below(64)) * 8;
        exit.guestInstsRetired = 1;
        exit.indirect = indirect;
        exit.flagMask = static_cast<uint8_t>(rng.below(16));
        trace.exits.push_back(exit);
        return static_cast<uint16_t>(trace.exits.size() - 1);
    };

    for (unsigned i = 0; i < length; ++i) {
        IrInst inst;
        const unsigned kind = static_cast<unsigned>(rng.below(100));
        if (kind < 10) {
            inst.op = IrOp::LDI;
            inst.dst = int_dst();
            inst.imm = static_cast<int32_t>(rng.next());
        } else if (kind < 18) {
            inst.op = IrOp::MOV;
            inst.src1 = int_src();
            inst.dst = int_dst();
        } else if (kind < 55) {
            static const IrOp ops[] = {
                IrOp::ADD, IrOp::SUB, IrOp::AND, IrOp::OR, IrOp::XOR,
                IrOp::SLL, IrOp::SRL, IrOp::SRA, IrOp::SLT, IrOp::SLTU,
                IrOp::MUL, IrOp::MULH, IrOp::DIV, IrOp::REM,
            };
            inst.op = ops[rng.below(sizeof(ops) / sizeof(ops[0]))];
            inst.src1 = int_src();
            if (rng.chance(0.4)) {
                inst.useImm = true;
                inst.imm = static_cast<int32_t>(
                    rng.chance(0.5) ? rng.below(64) : rng.next());
            } else {
                inst.src2 = int_src();
            }
            inst.dst = int_dst();
        } else if (kind < 65) {
            // Memory: confined to an aligned window so loads can hit
            // earlier stores.
            const bool is_store = rng.chance(0.5);
            inst.op = is_store ? IrOp::ST : IrOp::LD;
            inst.src1 = int_src();
            inst.imm = static_cast<int32_t>(rng.below(16)) * 4;
            inst.size = rng.chance(0.8) ? 4 : 1;
            if (is_store) {
                inst.src2 = int_src();
            } else {
                inst.dst = int_dst();
            }
        } else if (kind < 78) {
            static const IrOp ops[] = {
                IrOp::FADD, IrOp::FSUB, IrOp::FMUL, IrOp::FDIV,
            };
            inst.op = ops[rng.below(4)];
            inst.src1 = fp_src();
            inst.src2 = fp_src();
            inst.dst = fp_dst();
        } else if (kind < 84) {
            inst.op = rng.chance(0.5) ? IrOp::FCVT_IF : IrOp::FMOV;
            if (inst.op == IrOp::FCVT_IF) {
                inst.src1 = int_src();
                inst.dst = fp_dst();
            } else {
                inst.src1 = fp_src();
                inst.dst = fp_dst();
            }
        } else if (kind < 90) {
            static const IrOp ops[] = {IrOp::FLT, IrOp::FLE, IrOp::FEQ,
                                       IrOp::FUNORD};
            inst.op = ops[rng.below(4)];
            inst.src1 = fp_src();
            inst.src2 = fp_src();
            inst.dst = int_dst();
        } else {
            inst.op = IrOp::BR;
            inst.cc = static_cast<BrCc>(rng.below(6));
            inst.src1 = int_src();
            if (rng.chance(0.5)) {
                inst.useImm = true;
                inst.imm = static_cast<int32_t>(rng.below(8));
            } else {
                inst.src2 = int_src();
            }
            inst.exitId = add_exit(false);
        }
        trace.insts.push_back(inst);
    }

    // Terminator.
    IrInst last;
    if (rng.chance(0.2)) {
        last.op = IrOp::JINDIRECT;
        last.src1 = int_src();
        last.exitId = add_exit(true);
    } else {
        last.op = IrOp::JEXIT;
        last.exitId = add_exit(false);
    }
    trace.insts.push_back(last);
    return trace;
}

/** Evaluation snapshot for differential comparison. */
struct Snapshot
{
    EvalResult result;
    std::vector<uint32_t> boundInts;
    std::vector<uint64_t> boundFps;  ///< bit patterns
    std::vector<std::pair<uint32_t, uint32_t>> memWords;
};

Snapshot
snapshot(const Trace &trace, uint64_t input_seed)
{
    Prng rng(input_seed);
    EvalState state = makeEvalState(trace);
    for (unsigned v = 0; v < kNumBoundVregs; ++v) {
        state.ints[v] = static_cast<uint32_t>(rng.next());
        // Flags hold 0/1 values.
        if (isFlagVreg(static_cast<Vreg>(v)))
            state.ints[v] &= 1;
        state.fps[v] = static_cast<double>(rng.range(-1000, 1000)) / 7.0;
    }
    PagedMemory<uint32_t> memory;
    // Pre-fill the window the generator's memory ops use.
    for (unsigned v = 0; v < kNumBoundVregs; ++v)
        state.ints[v] &= 0x000FFFFC;  // keep addresses low and aligned

    Snapshot snap;
    snap.result = evaluate(trace, state, memory);
    for (unsigned v = 0; v < kNumBoundVregs; ++v) {
        if (v >= 12) {
            uint64_t bits;
            memcpy(&bits, &state.fps[v], 8);
            snap.boundFps.push_back(bits);
        } else {
            snap.boundInts.push_back(state.ints[v]);
        }
    }
    for (uint32_t page : memory.dirtyPages()) {
        for (uint32_t off = 0; off < 4096; off += 4) {
            const uint32_t word = memory.load32(page + off);
            if (word)
                snap.memWords.push_back({page + off, word});
        }
    }
    std::sort(snap.memWords.begin(), snap.memWords.end());
    return snap;
}

void
expectEquivalent(const Trace &before, const Trace &after,
                 uint64_t input_seed, const char *what)
{
    const Snapshot a = snapshot(before, input_seed);
    const Snapshot b = snapshot(after, input_seed);

    ASSERT_EQ(a.result.exitId, b.result.exitId) << what;
    ASSERT_EQ(a.result.indirectTarget, b.result.indirectTarget) << what;

    // GPR vregs always; flag vregs only per the taken exit's mask.
    const uint8_t mask = before.exits[a.result.exitId].flagMask;
    for (unsigned v = 0; v < 12; ++v) {
        if (isFlagVreg(static_cast<Vreg>(v)) &&
            !(mask & (1u << (v - vFlagZ))))
            continue;
        EXPECT_EQ(a.boundInts[v], b.boundInts[v])
            << what << ": bound int vreg v" << v;
    }
    for (unsigned i = 0; i < a.boundFps.size(); ++i)
        EXPECT_EQ(a.boundFps[i], b.boundFps[i]) << what << ": fp " << i;
    EXPECT_EQ(a.memWords, b.memWords) << what << ": memory";
}

using PassFn = void (*)(Trace &, PassStats *);

void
checkPass(PassFn pass, const char *what, unsigned iterations)
{
    Prng rng(1234);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        Trace trace = randomTrace(rng, 10 + iter % 50);
        ASSERT_EQ(validate(trace), "") << what << " iter " << iter;
        Trace optimized = trace;
        PassStats stats;
        pass(optimized, &stats);
        ASSERT_EQ(validate(optimized), "")
            << what << " produced invalid trace, iter " << iter;
        for (uint64_t seed = 1; seed <= 3; ++seed)
            expectEquivalent(trace, optimized, seed, what);
    }
}

} // namespace

TEST(IrPasses, CopyPropagationPreservesSemantics)
{
    checkPass(&copyPropagation, "copyProp", 150);
}

TEST(IrPasses, ConstantPropagationPreservesSemantics)
{
    checkPass(&constantPropagation, "constProp", 150);
}

TEST(IrPasses, CsePreservesSemantics)
{
    checkPass(&commonSubexpressionElimination, "cse", 150);
}

TEST(IrPasses, DcePreservesSemantics)
{
    checkPass(&deadCodeElimination, "dce", 150);
}

TEST(IrPasses, SchedulerPreservesSemantics)
{
    checkPass(+[](Trace &t, PassStats *) { scheduleTrace(t); },
              "scheduler", 150);
}

TEST(IrPasses, FullPipelinePreservesSemantics)
{
    checkPass(+[](Trace &t, PassStats *stats) {
                  copyPropagation(t, stats);
                  constantPropagation(t, stats);
                  commonSubexpressionElimination(t, stats);
                  copyPropagation(t, stats);
                  deadCodeElimination(t, stats);
                  scheduleTrace(t);
              },
              "full pipeline", 200);
}

// ----- targeted unit tests -----------------------------------------------

namespace {

Trace
miniTrace()
{
    Trace trace;
    trace.guestEntry = 0x1000;
    trace.guestEips.push_back(0x1000);
    IrExit exit;
    exit.guestTarget = 0x2000;
    exit.guestInstsRetired = 1;
    exit.flagMask = 0;
    trace.exits.push_back(exit);
    return trace;
}

IrInst
mk(IrOp op, Vreg dst, Vreg s1, Vreg s2)
{
    IrInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = s1;
    inst.src2 = s2;
    return inst;
}

IrInst
mkImm(IrOp op, Vreg dst, Vreg s1, int64_t imm)
{
    IrInst inst;
    inst.op = op;
    inst.dst = dst;
    inst.src1 = s1;
    inst.useImm = true;
    inst.imm = imm;
    return inst;
}

IrInst
mkExit(uint16_t exit_id)
{
    IrInst inst;
    inst.op = IrOp::JEXIT;
    inst.exitId = exit_id;
    return inst;
}

} // namespace

TEST(IrPasses, CopyPropRewritesThroughChain)
{
    Trace t = miniTrace();
    const Vreg t1 = t.newTemp(RegClass::Int);
    const Vreg t2 = t.newTemp(RegClass::Int);
    t.insts.push_back(mk(IrOp::MOV, t1, vGpr(0), kNoVreg));
    t.insts.push_back(mk(IrOp::MOV, t2, t1, kNoVreg));
    t.insts.push_back(mk(IrOp::ADD, vGpr(1), t2, t2));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    copyPropagation(t, &stats);
    EXPECT_GE(stats.copiesPropagated, 2u);
    EXPECT_EQ(t.insts[2].src1, vGpr(0));
    EXPECT_EQ(t.insts[2].src2, vGpr(0));
}

TEST(IrPasses, CopyPropInvalidatesOnRedefinition)
{
    Trace t = miniTrace();
    const Vreg t1 = t.newTemp(RegClass::Int);
    t.insts.push_back(mk(IrOp::MOV, t1, vGpr(0), kNoVreg));
    t.insts.push_back(mkImm(IrOp::ADD, vGpr(0), vGpr(0), 1));
    t.insts.push_back(mk(IrOp::ADD, vGpr(1), t1, t1));
    t.insts.push_back(mkExit(0));

    copyPropagation(t, nullptr);
    // t1 must NOT have been replaced by the redefined EAX.
    EXPECT_EQ(t.insts[2].src1, t1);
}

TEST(IrPasses, ConstantFoldingProducesLdi)
{
    Trace t = miniTrace();
    const Vreg a = t.newTemp(RegClass::Int);
    const Vreg b = t.newTemp(RegClass::Int);
    const Vreg c = t.newTemp(RegClass::Int);
    t.insts.push_back(mkImm(IrOp::ADD, a, vGpr(0), 0));  // not const
    IrInst ldi1;
    ldi1.op = IrOp::LDI;
    ldi1.dst = b;
    ldi1.imm = 6;
    t.insts.push_back(ldi1);
    t.insts.push_back(mkImm(IrOp::MUL, c, b, 0));
    t.insts.back().useImm = false;
    t.insts.back().src2 = b;              // 6 * 6 = 36
    t.insts.push_back(mk(IrOp::ADD, vGpr(2), c, a));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    constantPropagation(t, &stats);
    EXPECT_GE(stats.constsFolded, 1u);
    // c = LDI 36 now.
    bool found = false;
    for (const IrInst &inst : t.insts) {
        if (inst.op == IrOp::LDI && inst.dst == c && inst.imm == 36)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(IrPasses, ConstantPropagationResolvesBranches)
{
    Trace t = miniTrace();
    t.exits.push_back(t.exits[0]);  // exit 1
    const Vreg a = t.newTemp(RegClass::Int);
    IrInst ldi;
    ldi.op = IrOp::LDI;
    ldi.dst = a;
    ldi.imm = 5;
    t.insts.push_back(ldi);
    IrInst br;  // if (5 != 5) exit 1  -> never taken
    br.op = IrOp::BR;
    br.cc = BrCc::NE;
    br.src1 = a;
    br.useImm = true;
    br.imm = 5;
    br.exitId = 1;
    t.insts.push_back(br);
    t.insts.push_back(mkExit(0));

    PassStats stats;
    constantPropagation(t, &stats);
    EXPECT_EQ(stats.branchesResolved, 1u);
    for (const IrInst &inst : t.insts)
        EXPECT_NE(inst.op, IrOp::BR);
}

TEST(IrPasses, CseEliminatesRedundantExpression)
{
    Trace t = miniTrace();
    const Vreg a = t.newTemp(RegClass::Int);
    const Vreg b = t.newTemp(RegClass::Int);
    t.insts.push_back(mk(IrOp::ADD, a, vGpr(0), vGpr(1)));
    t.insts.push_back(mk(IrOp::ADD, b, vGpr(0), vGpr(1)));
    t.insts.push_back(mk(IrOp::XOR, vGpr(2), a, b));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    commonSubexpressionElimination(t, &stats);
    EXPECT_EQ(stats.cseHits, 1u);
    EXPECT_EQ(t.insts[1].op, IrOp::MOV);
    EXPECT_EQ(t.insts[1].src1, a);
}

TEST(IrPasses, CseCommutativeCanonicalization)
{
    Trace t = miniTrace();
    const Vreg a = t.newTemp(RegClass::Int);
    const Vreg b = t.newTemp(RegClass::Int);
    t.insts.push_back(mk(IrOp::ADD, a, vGpr(0), vGpr(1)));
    t.insts.push_back(mk(IrOp::ADD, b, vGpr(1), vGpr(0)));  // swapped
    t.insts.push_back(mk(IrOp::XOR, vGpr(2), a, b));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    commonSubexpressionElimination(t, &stats);
    EXPECT_EQ(stats.cseHits, 1u);
}

TEST(IrPasses, CseStoreToLoadForwarding)
{
    Trace t = miniTrace();
    const Vreg addr = t.newTemp(RegClass::Int);
    const Vreg val = t.newTemp(RegClass::Int);
    const Vreg loaded = t.newTemp(RegClass::Int);
    IrInst ldi;
    ldi.op = IrOp::LDI;
    ldi.dst = addr;
    ldi.imm = 0x4000;
    t.insts.push_back(ldi);
    t.insts.push_back(mkImm(IrOp::ADD, val, vGpr(0), 7));
    IrInst st;
    st.op = IrOp::ST;
    st.src1 = addr;
    st.src2 = val;
    st.size = 4;
    t.insts.push_back(st);
    IrInst ld;
    ld.op = IrOp::LD;
    ld.dst = loaded;
    ld.src1 = addr;
    ld.size = 4;
    t.insts.push_back(ld);
    t.insts.push_back(mk(IrOp::MOV, vGpr(1), loaded, kNoVreg));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    commonSubexpressionElimination(t, &stats);
    EXPECT_EQ(stats.loadsForwarded, 1u);
}

TEST(IrPasses, CseStoresInvalidateLoads)
{
    Trace t = miniTrace();
    const Vreg l1 = t.newTemp(RegClass::Int);
    const Vreg l2 = t.newTemp(RegClass::Int);
    IrInst ld1;
    ld1.op = IrOp::LD;
    ld1.dst = l1;
    ld1.src1 = vGpr(0);
    ld1.size = 4;
    t.insts.push_back(ld1);
    IrInst st;  // store to a *different* (unknown) address
    st.op = IrOp::ST;
    st.src1 = vGpr(1);
    st.src2 = l1;
    st.size = 4;
    t.insts.push_back(st);
    IrInst ld2 = ld1;
    ld2.dst = l2;
    t.insts.push_back(ld2);
    t.insts.push_back(mk(IrOp::ADD, vGpr(2), l1, l2));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    commonSubexpressionElimination(t, &stats);
    EXPECT_EQ(stats.cseHits, 0u);       // the reload must survive
    EXPECT_EQ(stats.loadsForwarded, 0u);
    EXPECT_EQ(t.insts[2].op, IrOp::LD);
}

TEST(IrPasses, DceRemovesDeadFlagDefs)
{
    Trace t = miniTrace();   // exit flagMask = 0: all flags dead
    t.insts.push_back(mkImm(IrOp::SLTU, vFlagZ, vGpr(0), 1));
    t.insts.push_back(mkImm(IrOp::SRL, vFlagS, vGpr(0), 31));
    t.insts.push_back(mk(IrOp::ADD, vGpr(0), vGpr(1), vGpr(2)));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    deadCodeElimination(t, &stats);
    EXPECT_EQ(stats.instsRemoved, 2u);
    EXPECT_EQ(t.insts.size(), 2u);  // the ADD + exit survive
}

TEST(IrPasses, DceKeepsLiveFlagDefsPerExitMask)
{
    Trace t = miniTrace();
    t.exits[0].flagMask = fmask::Z;  // only ZF live
    t.insts.push_back(mkImm(IrOp::SLTU, vFlagZ, vGpr(0), 1));
    t.insts.push_back(mkImm(IrOp::SRL, vFlagS, vGpr(0), 31));
    t.insts.push_back(mkExit(0));

    PassStats stats;
    deadCodeElimination(t, &stats);
    EXPECT_EQ(stats.instsRemoved, 1u);  // only the SF def dies
    EXPECT_EQ(t.insts[0].dst, vFlagZ);
}

TEST(IrPasses, DceKeepsStores)
{
    Trace t = miniTrace();
    const Vreg dead = t.newTemp(RegClass::Int);
    t.insts.push_back(mk(IrOp::ADD, dead, vGpr(0), vGpr(1)));
    IrInst st;
    st.op = IrOp::ST;
    st.src1 = vGpr(0);
    st.src2 = vGpr(1);
    st.size = 4;
    t.insts.push_back(st);
    t.insts.push_back(mkExit(0));

    PassStats stats;
    deadCodeElimination(t, &stats);
    EXPECT_EQ(stats.instsRemoved, 1u);
    EXPECT_EQ(t.insts[0].op, IrOp::ST);
}

TEST(IrScheduler, NeverReordersAcrossExits)
{
    Prng rng(777);
    for (unsigned iter = 0; iter < 100; ++iter) {
        Trace t = randomTrace(rng, 40);
        // Positions of control instructions must be identical after
        // scheduling (only straight-line segments reorder).
        std::vector<size_t> exits_before;
        for (size_t i = 0; i < t.insts.size(); ++i) {
            if (t.insts[i].isExit())
                exits_before.push_back(i);
        }
        scheduleTrace(t);
        std::vector<size_t> exits_after;
        for (size_t i = 0; i < t.insts.size(); ++i) {
            if (t.insts[i].isExit())
                exits_after.push_back(i);
        }
        ASSERT_EQ(exits_before, exits_after);
    }
}

TEST(IrScheduler, SeparatesDependentPair)
{
    // load -> use -> independent ops: the scheduler should hoist
    // independents between the load and its consumer.
    Trace t = miniTrace();
    const Vreg l = t.newTemp(RegClass::Int);
    const Vreg u = t.newTemp(RegClass::Int);
    const Vreg i1 = t.newTemp(RegClass::Int);
    const Vreg i2 = t.newTemp(RegClass::Int);
    IrInst ld;
    ld.op = IrOp::LD;
    ld.dst = l;
    ld.src1 = vGpr(0);
    ld.size = 4;
    t.insts.push_back(ld);
    t.insts.push_back(mkImm(IrOp::ADD, u, l, 1));        // dependent
    t.insts.push_back(mkImm(IrOp::ADD, i1, vGpr(1), 1)); // independent
    t.insts.push_back(mkImm(IrOp::ADD, i2, vGpr(2), 1)); // independent
    t.insts.push_back(mk(IrOp::ADD, vGpr(3), u, i1));
    t.insts.push_back(mk(IrOp::ADD, vGpr(4), i2, i2));
    t.insts.push_back(mkExit(0));

    scheduleTrace(t);
    // The load stays first (longest path), and its consumer is no
    // longer immediately after it.
    size_t load_pos = 99, use_pos = 99;
    for (size_t i = 0; i < t.insts.size(); ++i) {
        if (t.insts[i].op == IrOp::LD)
            load_pos = i;
        if (t.insts[i].dst == u)
            use_pos = i;
    }
    ASSERT_NE(load_pos, 99u);
    ASSERT_NE(use_pos, 99u);
    EXPECT_GT(use_pos, load_pos + 1);
}
