/**
 * @file
 * Trace capture/replay tests: the binary format (serialization
 * round-trip, corruption detection, version/compat rules, unknown-
 * section skipping), the workload-source registry, and the
 * bit-identical capture -> replay guarantee across all four paper
 * suites (guest_retired, sim_cycles, host_records, every TOL
 * counter, every pipeline counter).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "guest/assembler.hh"
#include "profile/profile.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "trace/trace.hh"
#include "workloads/source.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** A tiny two-segment program with a loop (decodable, runnable). */
g::Program
tinyProgram()
{
    g::Assembler as;
    as.mov(g::EAX, 0);
    as.mov(g::ECX, 500);
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(g::EAX, g::ECX);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    g::Program::DataSegment seg;
    seg.addr = 0x20000000;
    seg.bytes = {1, 2, 3, 4, 5};
    prog.data.push_back(seg);
    return prog;
}

trace::TraceFile
sampleFile()
{
    trace::TraceFile file;
    file.meta.name = "sample";
    file.meta.suite = "SPEC INT";
    file.meta.seed = 42;
    file.meta.guestBudget = 123456;
    file.meta.imToBbThreshold = 5;
    file.meta.bbToSbThreshold = 777;
    file.meta.tags = {"unit", "round-trip"};
    file.program = tinyProgram();
    file.hasPins = true;
    file.pins.guestRetired = 11;
    file.pins.simCycles = 22;
    file.pins.hostRecords = 33;
    file.pins.timingCore = "event";
    file.pins.dynIm = 1;
    file.pins.dynBbm = 2;
    file.pins.dynSbm = 3;
    file.pins.bbsTranslated = 4;
    file.pins.sbsCreated = 5;
    file.pins.guestIndirectBranches = 6;
    return file;
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    FILE *fp = std::fopen(path.c_str(), "rb");
    EXPECT_NE(fp, nullptr);
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(fp);
    return bytes;
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    FILE *fp = std::fopen(path.c_str(), "wb");
    ASSERT_NE(fp, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), fp),
              bytes.size());
    std::fclose(fp);
}

void
putU32(std::vector<uint8_t> &bytes, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes.push_back(uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &bytes, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes.push_back(uint8_t(v >> (8 * i)));
}

TEST(TraceFormat, WriteReadRoundTrip)
{
    const std::string path = tempPath("roundtrip.dtrc");
    const trace::TraceFile file = sampleFile();
    trace::writeTrace(path, file);

    const trace::ReadResult result = trace::readTrace(path);
    ASSERT_TRUE(result.ok()) << result.error;
    const trace::TraceFile &back = result.file;
    EXPECT_EQ(back.meta.name, "sample");
    EXPECT_EQ(back.meta.suite, "SPEC INT");
    EXPECT_EQ(back.meta.seed, 42u);
    EXPECT_EQ(back.meta.guestBudget, 123456u);
    EXPECT_EQ(back.meta.imToBbThreshold, 5u);
    EXPECT_EQ(back.meta.bbToSbThreshold, 777u);
    EXPECT_EQ(back.meta.tags,
              (std::vector<std::string>{"unit", "round-trip"}));
    EXPECT_EQ(back.program.codeBase, file.program.codeBase);
    EXPECT_EQ(back.program.entry, file.program.entry);
    EXPECT_EQ(back.program.stackTop, file.program.stackTop);
    EXPECT_EQ(back.program.code, file.program.code);
    ASSERT_EQ(back.program.data.size(), 1u);
    EXPECT_EQ(back.program.data[0].addr, 0x20000000u);
    EXPECT_EQ(back.program.data[0].bytes, file.program.data[0].bytes);
    ASSERT_TRUE(back.hasPins);
    EXPECT_EQ(back.pins.guestRetired, 11u);
    EXPECT_EQ(back.pins.simCycles, 22u);
    EXPECT_EQ(back.pins.hostRecords, 33u);
    EXPECT_EQ(back.pins.timingCore, "event");
    EXPECT_EQ(back.pins.sbsCreated, 5u);
    EXPECT_EQ(back.pins.guestIndirectBranches, 6u);
}

TEST(TraceFormat, PinsAreOptional)
{
    const std::string path = tempPath("nopins.dtrc");
    trace::TraceFile file = sampleFile();
    file.hasPins = false;
    trace::writeTrace(path, file);
    const trace::ReadResult result = trace::readTrace(path);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_FALSE(result.file.hasPins);
}

TEST(TraceFormat, RejectsBadMagic)
{
    const std::string path = tempPath("badmagic.dtrc");
    trace::writeTrace(path, sampleFile());
    std::vector<uint8_t> bytes = readAll(path);
    bytes[0] ^= 0xFF;
    writeAll(path, bytes);
    const trace::ReadResult result = trace::readTrace(path);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("magic"), std::string::npos)
        << result.error;
}

TEST(TraceFormat, RejectsMajorVersionBump)
{
    const std::string path = tempPath("major.dtrc");
    trace::writeTrace(path, sampleFile());
    std::vector<uint8_t> bytes = readAll(path);
    bytes[4] += 1;  // header: magic u32, then major u16
    writeAll(path, bytes);
    const trace::ReadResult result = trace::readTrace(path);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("major"), std::string::npos)
        << result.error;
}

TEST(TraceFormat, DetectsCorruption)
{
    const std::string path = tempPath("corrupt.dtrc");
    trace::writeTrace(path, sampleFile());
    std::vector<uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x01;  // flip a payload bit
    writeAll(path, bytes);
    const trace::ReadResult result = trace::readTrace(path);
    // Either the checksum catches it or a section fails to parse;
    // silently succeeding would defeat the format's purpose.
    EXPECT_FALSE(result.ok());
}

TEST(TraceFormat, DetectsTruncation)
{
    const std::string path = tempPath("short.dtrc");
    trace::writeTrace(path, sampleFile());
    std::vector<uint8_t> bytes = readAll(path);
    bytes.resize(bytes.size() - 9);  // cut into the CSUM section
    writeAll(path, bytes);
    EXPECT_FALSE(trace::readTrace(path).ok());

    bytes.resize(20);  // cut into the first section
    writeAll(path, bytes);
    EXPECT_FALSE(trace::readTrace(path).ok());
}

TEST(TraceFormat, RequiresVerifiedChecksum)
{
    // The likeliest real-world damage is a truncated copy that drops
    // the trailing CSUM section; a reader must reject that, not fall
    // back to unchecked parsing.
    const std::string path = tempPath("nocsum.dtrc");
    trace::writeTrace(path, sampleFile());
    const std::vector<uint8_t> bytes = readAll(path);
    std::vector<uint8_t> stripped(bytes.begin(), bytes.end() - 20);
    writeAll(path, stripped);
    const trace::ReadResult result = trace::readTrace(path);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("CSUM"), std::string::npos)
        << result.error;

    // Retagging the checksum section (making it parse as an unknown
    // section) must not slip through the forward-compat skip either.
    std::vector<uint8_t> retagged = bytes;
    retagged[bytes.size() - 20] ^= 0xFF;
    writeAll(path, retagged);
    EXPECT_FALSE(trace::readTrace(path).ok());

    // Nor may unverified sections ride after a valid CSUM (the
    // checksum only covers what precedes it): a concatenated
    // fragment must be rejected, not parsed.
    std::vector<uint8_t> appended = bytes;
    putU32(appended, trace::kSectionPins);
    putU64(appended, 0);
    writeAll(path, appended);
    const trace::ReadResult result2 = trace::readTrace(path);
    EXPECT_FALSE(result2.ok());
    EXPECT_NE(result2.error.find("trailing"), std::string::npos)
        << result2.error;
}

TEST(TraceFormat, EverySingleByteFlipIsRejected)
{
    // Exhaustive corruption sweep: XOR-0xFF every byte position in a
    // real capture, one at a time, and require a clean structured
    // failure from every variant. The checksum section covers every
    // byte that precedes it, so a flip anywhere in header/META/PROG/
    // PINS mismatches the CSUM even when it still parses; flips
    // inside the CSUM section either break the stored hash, resize
    // the section into a truncation error, or retag it into a
    // missing-CSUM error. No position may crash or slip through.
    const std::string path = tempPath("flip_sweep.dtrc");
    trace::writeTrace(path, sampleFile());
    const std::vector<uint8_t> good = readAll(path);
    ASSERT_FALSE(good.empty());

    for (size_t i = 0; i < good.size(); ++i) {
        std::vector<uint8_t> bytes = good;
        bytes[i] ^= 0xFF;
        writeAll(path, bytes);
        const trace::ReadResult result = trace::readTrace(path);
        EXPECT_FALSE(result.ok())
            << "byte flip at offset " << i << " parsed successfully";
        EXPECT_FALSE(result.error.empty())
            << "byte flip at offset " << i << " failed without detail";
        EXPECT_EQ(result.failKind, trace::ReadFail::Corrupt)
            << "byte flip at offset " << i << ": " << result.error;
    }

    // Sanity: the unmodified bytes still parse (the sweep above
    // proved rejection, this proves it rejected *because* of the
    // flips).
    writeAll(path, good);
    EXPECT_TRUE(trace::readTrace(path).ok());
    std::remove(path.c_str());
}

TEST(TraceFormat, RandomTearsAreRejected)
{
    // A torn copy (interrupted scp, filled disk) can end at any
    // offset. Deterministic LCG sampling of tear points across the
    // file; every prefix must fail cleanly — the trailing CSUM
    // section is mandatory, so no prefix is a valid trace.
    const std::string path = tempPath("tear_sweep.dtrc");
    trace::writeTrace(path, sampleFile());
    const std::vector<uint8_t> good = readAll(path);
    ASSERT_GT(good.size(), 1u);

    uint64_t state = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 64; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const size_t cut = (state >> 16) % good.size();
        writeAll(path, {good.begin(), good.begin() +
                                          static_cast<long>(cut)});
        const trace::ReadResult result = trace::readTrace(path);
        EXPECT_FALSE(result.ok())
            << "tear to " << cut << " bytes parsed successfully";
        EXPECT_EQ(result.failKind, trace::ReadFail::Corrupt)
            << "tear to " << cut << ": " << result.error;
    }
    std::remove(path.c_str());
}

TEST(TraceFormat, MissingMandatorySectionsReported)
{
    // A file with only a header parses structurally but must be
    // rejected for lacking META/PROG.
    const std::string path = tempPath("empty.dtrc");
    std::vector<uint8_t> bytes;
    putU32(bytes, trace::kMagic);
    bytes.push_back(trace::kVersionMajor);
    bytes.push_back(0);
    bytes.push_back(trace::kVersionMinor);
    bytes.push_back(0);
    putU32(bytes, 0);  // header flags
    writeAll(path, bytes);
    const trace::ReadResult result = trace::readTrace(path);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("META"), std::string::npos)
        << result.error;
}

TEST(TraceFormat, SkipsUnknownSectionsAndTrailingFields)
{
    // Forward-compat: splice an unknown section plus trailing bytes
    // inside META (both things a newer minor version may add), fix
    // up the checksum, and expect a clean parse. Craft the file
    // manually so the test does not depend on writer internals
    // beyond the documented layout.
    const std::string path = tempPath("future.dtrc");
    trace::TraceFile file = sampleFile();
    file.hasPins = false;
    trace::writeTrace(path, file);
    std::vector<uint8_t> bytes = readAll(path);

    // Strip the trailing CSUM section (12-byte header + 8 payload).
    bytes.resize(bytes.size() - 20);

    // Append a trailing field a newer minor version added to META.
    // META is the first section: tag at offset 12, size (u64) at 16,
    // payload at 24.
    uint64_t meta_size = 0;
    std::memcpy(&meta_size, bytes.data() + 16, 8);
    const uint8_t extra_field[4] = {0xEE, 0xEE, 0xEE, 0xEE};
    bytes.insert(bytes.begin() + 24 + meta_size, extra_field,
                 extra_field + 4);
    meta_size += 4;
    std::memcpy(bytes.data() + 16, &meta_size, 8);

    // Append an unknown section a hypothetical 1.1 writer emitted.
    putU32(bytes, trace::fourcc('F', 'U', 'T', 'R'));
    putU64(bytes, 4);
    putU32(bytes, 0xDEADBEEF);

    // Re-append a correct checksum over everything so far.
    const uint64_t sum = trace::fnv1a64(bytes.data(), bytes.size());
    putU32(bytes, trace::kSectionChecksum);
    putU64(bytes, 8);
    putU64(bytes, sum);
    writeAll(path, bytes);

    const trace::ReadResult result = trace::readTrace(path);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.file.meta.name, "sample");
    EXPECT_EQ(result.file.program.code, file.program.code);
}

TEST(WorkloadSource, UriHelpersAndBareNames)
{
    EXPECT_TRUE(workloads::isSourceUri("source://trace/x.dtrc"));
    EXPECT_FALSE(workloads::isSourceUri("429.mcf"));
    EXPECT_EQ(workloads::syntheticUri("429.mcf"),
              "source://synthetic/429.mcf");
    EXPECT_EQ(workloads::traceUri("/tmp/x.dtrc"),
              "source://trace//tmp/x.dtrc");

    const workloads::Workload by_uri = workloads::resolveWorkload(
        workloads::syntheticUri("462.libquantum"));
    const workloads::Workload by_name =
        workloads::resolveWorkload("462.libquantum");
    EXPECT_EQ(by_uri.name, "462.libquantum");
    EXPECT_EQ(by_uri.suite, "SPEC INT");
    EXPECT_FALSE(by_uri.capturedMeta.has_value());
    EXPECT_EQ(by_uri.program.code, by_name.program.code);
}

TEST(WorkloadSource, SyntheticListingCoversAllBenchmarks)
{
    const std::vector<std::string> uris =
        workloads::listWorkloadUris();
    EXPECT_GE(uris.size(), workloads::allBenchmarks().size());
    unsigned synthetic = 0;
    for (const std::string &uri : uris)
        synthetic += workloads::isSourceUri(uri) &&
                     uri.find("synthetic") != std::string::npos;
    EXPECT_EQ(synthetic, workloads::allBenchmarks().size());
}

// ---------------------------------------------------------------------
// Capture -> replay bit-identity across the four paper suites.
// ---------------------------------------------------------------------

class TraceRoundTrip : public testing::TestWithParam<const char *>
{};

TEST_P(TraceRoundTrip, ReplayIsBitIdentical)
{
    constexpr uint64_t kBudget = 150'000;
    const uint32_t sb_threshold = sim::scaledSbThreshold(kBudget);
    const std::string path =
        tempPath(std::string("rt_") + GetParam() + ".dtrc");

    const workloads::Workload live_workload =
        workloads::resolveWorkload(workloads::syntheticUri(GetParam()));
    sim::MetricsOptions live_options;
    live_options.guestBudget = kBudget;
    live_options.tolConfig.bbToSbThreshold = sb_threshold;
    live_options.captureTracePath = path;
    const sim::RunSnapshot live =
        sim::snapshotRun(live_workload, live_options);

    const workloads::Workload replayed =
        workloads::resolveWorkload(workloads::traceUri(path));
    ASSERT_TRUE(replayed.capturedMeta.has_value());
    ASSERT_TRUE(replayed.capturedPins.has_value());
    EXPECT_EQ(replayed.name, live_workload.name);
    EXPECT_EQ(replayed.suite, live_workload.suite);
    EXPECT_EQ(replayed.capturedMeta->guestBudget, kBudget);
    EXPECT_EQ(replayed.capturedMeta->bbToSbThreshold, sb_threshold);
    EXPECT_EQ(replayed.program.code, live_workload.program.code);

    // snapshotRun re-applies the trace's capture recipe itself.
    const sim::RunSnapshot replay =
        sim::snapshotRun(replayed, sim::MetricsOptions{});

    // The acceptance contract: every determinism field identical.
    EXPECT_EQ(live.result.guestRetired, replay.result.guestRetired);
    EXPECT_EQ(live.result.cycles, replay.result.cycles);
    EXPECT_EQ(live.result.halted, replay.result.halted);
    EXPECT_EQ(live.stats.records, replay.stats.records);
    EXPECT_EQ(timing::diffStats(live.stats, replay.stats), "");
    EXPECT_EQ(tol::diffTolStats(live.tolStats, replay.tolStats), "");

    // And the pins inside the file describe both runs.
    const trace::TracePins &pins = *replayed.capturedPins;
    EXPECT_EQ(pins.guestRetired, replay.result.guestRetired);
    EXPECT_EQ(pins.simCycles, replay.result.cycles);
    EXPECT_EQ(pins.hostRecords, replay.stats.records);
    EXPECT_EQ(pins.dynIm, replay.tolStats.dynIm);
    EXPECT_EQ(pins.dynBbm, replay.tolStats.dynBbm);
    EXPECT_EQ(pins.dynSbm, replay.tolStats.dynSbm);
    EXPECT_EQ(pins.bbsTranslated, replay.tolStats.bbsTranslated);
    EXPECT_EQ(pins.sbsCreated, replay.tolStats.sbsCreated);
    EXPECT_EQ(pins.guestIndirectBranches,
              replay.tolStats.guestIndirectBranches);
    EXPECT_EQ(pins.timingCore, "event");

    std::remove(path.c_str());
}

// One representative per paper suite (SPEC INT, SPEC FP, Physics,
// Media) — the same set the threshold ablation uses.
INSTANTIATE_TEST_SUITE_P(
    FourSuites, TraceRoundTrip,
    testing::Values("464.h264ref", "436.cactusADM",
                    "104.novis_explosions", "005.h264enc"),
    [](const testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

TEST_P(TraceRoundTrip, ReplayProfilesAreBitIdentical)
{
    // Characterization profiles ride the same determinism contract:
    // capture a profiled run, replay the trace with profiling on, and
    // require the reuse histogram and branch profile to match
    // bit-for-bit (profile::diffProfiles empty).
    constexpr uint64_t kBudget = 100'000;
    const std::string path =
        tempPath(std::string("rtp_") + GetParam() + ".dtrc");

    const workloads::Workload live_workload =
        workloads::resolveWorkload(workloads::syntheticUri(GetParam()));
    sim::MetricsOptions options;
    options.guestBudget = kBudget;
    options.profile = true;
    options.captureTracePath = path;
    const sim::RunSnapshot live =
        sim::snapshotRun(live_workload, options);
    ASSERT_TRUE(live.profile.has_value());

    const workloads::Workload replayed =
        workloads::resolveWorkload(workloads::traceUri(path));
    sim::MetricsOptions replay_options;
    replay_options.profile = true;
    const sim::RunSnapshot replay =
        sim::snapshotRun(replayed, replay_options);
    ASSERT_TRUE(replay.profile.has_value());

    EXPECT_EQ(profile::diffProfiles(*live.profile, *replay.profile),
              "");
    EXPECT_TRUE(*live.profile == *replay.profile);
    // Profiling must not perturb the replay determinism fields.
    EXPECT_EQ(live.result.cycles, replay.result.cycles);
    EXPECT_EQ(timing::diffStats(live.stats, replay.stats), "");
    std::remove(path.c_str());
}

TEST(TraceCapture, MetricsOptionsPassthrough)
{
    // The MetricsOptions capture path reaches System and produces a
    // replayable trace whose metrics equal the capturing run's.
    const std::string path = tempPath("metrics_capture.dtrc");
    sim::MetricsOptions options;
    options.guestBudget = 120'000;
    options.tolConfig.bbToSbThreshold = 300;
    options.captureTracePath = path;
    const sim::BenchMetrics live = sim::runBenchmark(
        *workloads::findBenchmark("401.bzip2"), options);

    const workloads::Workload replayed =
        workloads::resolveWorkload(workloads::traceUri(path));
    ASSERT_TRUE(replayed.capturedPins.has_value());
    EXPECT_EQ(replayed.capturedPins->guestRetired, live.guestRetired);
    EXPECT_EQ(replayed.capturedPins->simCycles, live.cycles);

    options.captureTracePath.clear();
    const sim::BenchMetrics replay =
        sim::runWorkload(replayed, options);
    EXPECT_EQ(replay.name, "401.bzip2");
    EXPECT_EQ(replay.suite, "SPEC INT");
    EXPECT_EQ(replay.guestRetired, live.guestRetired);
    EXPECT_EQ(replay.cycles, live.cycles);
    EXPECT_EQ(replay.dynIm, live.dynIm);
    EXPECT_EQ(replay.dynBbm, live.dynBbm);
    EXPECT_EQ(replay.dynSbm, live.dynSbm);
    std::remove(path.c_str());
}

} // namespace
