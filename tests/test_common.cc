/**
 * @file
 * Common-library tests: PRNG determinism and distribution sanity,
 * bit utilities, paged memory (cross-page accesses, dirty tracking),
 * table rendering, printf-style formatting, and the assembler's label
 * fixup machinery.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"
#include "common/fpu.hh"
#include "common/logging.hh"
#include "common/paged_memory.hh"
#include "common/prng.hh"
#include "common/table.hh"
#include "guest/assembler.hh"
#include "guest/emulator.hh"

using namespace darco;

TEST(Prng, DeterministicAcrossInstances)
{
    Prng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0u);
}

TEST(Prng, BelowStaysInRange)
{
    Prng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(13), 13u);
}

TEST(Prng, BelowIsUnbiasedForNonPowerOfTwoBounds)
{
    // The unbiased bounded draw must hit every residue of a
    // non-power-of-two bound at ~uniform frequency. (The old
    // `next() % bound` construction is also near-uniform for tiny
    // bounds; the sharp check is the huge-bound one below, where
    // modulo reduction would concentrate mass on [0, 2^64 mod b).)
    Prng rng(19);
    constexpr uint64_t kBound = 13;
    constexpr int kDraws = 130000;
    unsigned counts[kBound] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBound)];
    for (uint64_t v = 0; v < kBound; ++v) {
        EXPECT_GT(counts[v], kDraws / kBound * 85 / 100) << v;
        EXPECT_LT(counts[v], kDraws / kBound * 115 / 100) << v;
    }

    // Bound just above 2^63: a modulo draw would land in
    // [0, 2^63 + 2) twice as often as in the upper half. The
    // unbiased draw splits evenly around the bound's midpoint.
    const uint64_t huge = (1ull << 63) + 2;
    unsigned upper_half = 0;
    constexpr int kHugeDraws = 10000;
    for (int i = 0; i < kHugeDraws; ++i) {
        const uint64_t v = rng.below(huge);
        ASSERT_LT(v, huge);
        if (v >= huge / 2)
            ++upper_half;
    }
    EXPECT_GT(upper_half, kHugeDraws * 45 / 100);
    EXPECT_LT(upper_half, kHugeDraws * 55 / 100);
}

TEST(Prng, RangeHandlesExtremeBounds)
{
    // range(INT64_MIN, INT64_MAX) used to compute hi - lo + 1 in
    // signed arithmetic (UB); the unsigned span wraps to 0 and must
    // mean "full 64-bit range".
    Prng rng(23);
    bool negative = false, positive = false;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.range(INT64_MIN, INT64_MAX);
        negative = negative || v < 0;
        positive = positive || v > 0;
    }
    EXPECT_TRUE(negative);
    EXPECT_TRUE(positive);

    // Near-full spans exercise the wrap-around add.
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.range(INT64_MIN + 1, INT64_MAX - 1);
        EXPECT_GT(v, INT64_MIN);
        EXPECT_LT(v, INT64_MAX);
    }
    // Degenerate single-point range.
    EXPECT_EQ(rng.range(-7, -7), -7);
}

TEST(Prng, UniformCoversRange)
{
    Prng rng(11);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(BitUtils, SextAndBits)
{
    EXPECT_EQ(sext(0xFF, 8), -1);
    EXPECT_EQ(sext(0x7F, 8), 127);
    EXPECT_EQ(sext32(0x800, 12), -2048);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(96));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(alignUp(13, 8), 16u);
    EXPECT_EQ(alignUp(16, 8), 16u);
    EXPECT_EQ(alignDown(13, 8), 8u);
    EXPECT_EQ(popCount(0xF0F0), 8u);
}

TEST(Fpu, CanonicalizesOnlyNans)
{
    EXPECT_EQ(canonFp(1.5), 1.5);
    EXPECT_EQ(canonFp(-0.0), -0.0);
    const double nan1 = canonFp(0.0 / 0.0);
    uint64_t bits1;
    memcpy(&bits1, &nan1, 8);
    EXPECT_EQ(bits1, 0x7FF8000000000000ull);
}

TEST(PagedMemory, ReadBeforeWriteIsZero)
{
    PagedMemory<uint32_t> mem;
    EXPECT_EQ(mem.load32(0x12345678), 0u);
    EXPECT_EQ(mem.numPages(), 0u);  // reads don't allocate
}

TEST(PagedMemory, CrossPageAccess)
{
    PagedMemory<uint32_t> mem;
    const uint32_t addr = 0x1FFE;  // crosses the 0x1000/0x2000 boundary
    mem.store32(addr, 0xA1B2C3D4);
    EXPECT_EQ(mem.load32(addr), 0xA1B2C3D4u);
    EXPECT_EQ(mem.load8(0x1FFE), 0xD4u);
    EXPECT_EQ(mem.load8(0x2000), 0xB2u);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMemory, DirtyTracking)
{
    PagedMemory<uint32_t> mem;
    mem.store8(0x5000, 1);
    mem.store8(0x9000, 2);
    (void)mem.load32(0xF000);
    EXPECT_EQ(mem.dirtyPages().size(), 2u);
    EXPECT_TRUE(mem.dirtyPages().count(0x5000));
    EXPECT_TRUE(mem.dirtyPages().count(0x9000));
    mem.clearDirty();
    EXPECT_TRUE(mem.dirtyPages().empty());
    EXPECT_EQ(mem.load8(0x5000), 1u);  // data survives
}

TEST(PagedMemory, DoubleRoundTrip)
{
    PagedMemory<uint32_t> mem;
    mem.storeDouble(0x4000, 3.141592653589793);
    EXPECT_DOUBLE_EQ(mem.loadDouble(0x4000), 3.141592653589793);
}

TEST(PagedMemory, LastPageCacheAliasing)
{
    // Addresses 4 MiB apart share a second-level table slot only if
    // the directory indexing is wrong; addresses one table apart and
    // one page apart must never alias through the last-page caches.
    PagedMemory<uint32_t> mem;
    const uint32_t a = 0x00400123;           // table 1, page 0x400
    const uint32_t b = a + (1u << 22);       // next table, same index
    const uint32_t c = a + (1u << 12);       // next page, same table
    mem.store32(a, 0xAAAAAAAA);
    mem.store32(b, 0xBBBBBBBB);
    mem.store32(c, 0xCCCCCCCC);
    // Interleave loads so the one-entry load cache keeps switching.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(mem.load32(a), 0xAAAAAAAAu);
        EXPECT_EQ(mem.load32(b), 0xBBBBBBBBu);
        EXPECT_EQ(mem.load32(c), 0xCCCCCCCCu);
    }
    // Interleaved stores through the one-entry store cache.
    for (int i = 0; i < 4; ++i) {
        mem.store8(a, static_cast<uint8_t>(i));
        mem.store8(b, static_cast<uint8_t>(i + 64));
    }
    EXPECT_EQ(mem.load8(a), 3u);
    EXPECT_EQ(mem.load8(b), 67u);
    EXPECT_EQ(mem.numPages(), 3u);
}

TEST(PagedMemory, PageBoundaryStraddleThroughCaches)
{
    // A straddling store after a same-page store must hit both pages,
    // not be swallowed by the cached last page.
    PagedMemory<uint32_t> mem;
    mem.store32(0x7000, 0x11111111);         // prime store cache
    mem.store32(0x7FFE, 0xA1B2C3D4);         // straddles 0x7000/0x8000
    EXPECT_EQ(mem.load8(0x7FFE), 0xD4u);
    EXPECT_EQ(mem.load8(0x7FFF), 0xC3u);
    EXPECT_EQ(mem.load8(0x8000), 0xB2u);
    EXPECT_EQ(mem.load8(0x8001), 0xA1u);
    EXPECT_EQ(mem.numPages(), 2u);
    EXPECT_TRUE(mem.dirtyPages().count(0x7000));
    EXPECT_TRUE(mem.dirtyPages().count(0x8000));
}

TEST(PagedMemory, DirtyTrackingSurvivesCachedStores)
{
    // clearDirty() must also reset the per-page dirty flags so later
    // stores (including ones through the store cache) re-dirty.
    PagedMemory<uint32_t> mem;
    mem.store32(0x5000, 1);
    mem.store32(0x5004, 2);                  // cached-page store
    EXPECT_EQ(mem.dirtyPages().size(), 1u);
    mem.clearDirty();
    EXPECT_TRUE(mem.dirtyPages().empty());
    mem.store32(0x5008, 3);                  // same page, via cache
    EXPECT_EQ(mem.dirtyPages().size(), 1u);
    EXPECT_TRUE(mem.dirtyPages().count(0x5000));
    mem.clear();
    EXPECT_EQ(mem.numPages(), 0u);
    EXPECT_EQ(mem.load32(0x5000), 0u);
    mem.store32(0x5000, 7);                  // caches were invalidated
    EXPECT_EQ(mem.load32(0x5000), 7u);
}

TEST(PagedMemory, BulkReadWrite)
{
    PagedMemory<uint32_t> mem;
    std::vector<uint8_t> data(10000);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7);
    mem.writeBytes(0x3F80, data.data(), data.size());  // spans pages
    std::vector<uint8_t> back(data.size());
    mem.readBytes(0x3F80, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(PagedMemory, StraddleEveryOffsetAndSizeMatchesByteModel)
{
    // Exhaustive page-boundary sweep: every access size at every
    // offset that straddles (or just touches) the boundary must agree
    // with a flat byte-array reference, for both stores and loads.
    PagedMemory<uint32_t> mem;
    constexpr uint32_t kBoundary = 0x9000;
    uint8_t model[32] = {};
    const uint32_t model_base = kBoundary - 16;

    uint64_t pattern = 0x0123456789ABCDEFull;
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        for (uint32_t off = 16 - size - 1; off <= 16 + 1; ++off) {
            pattern = pattern * 0x9E3779B97F4A7C15ull + size;
            mem.store(model_base + off, pattern, size);
            for (unsigned b = 0; b < size; ++b)
                model[off + b] = uint8_t(pattern >> (8 * b));
        }
    }
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        for (uint32_t off = 0; off + size <= 32; ++off) {
            uint64_t expect = 0;
            for (unsigned b = 0; b < size; ++b)
                expect |= uint64_t(model[off + b]) << (8 * b);
            ASSERT_EQ(mem.load(model_base + off, size), expect)
                << "size " << size << " offset " << off;
        }
    }
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMemory, StraddleIntoUnmappedPageReadsZero)
{
    // A straddling load whose tail page is unmapped zero-extends the
    // missing bytes and must not allocate the unmapped page.
    PagedMemory<uint32_t> mem;
    mem.store32(0x1FFC, 0xAABBCCDD);  // last word of page 0x1000
    EXPECT_EQ(mem.numPages(), 1u);
    EXPECT_EQ(mem.load64(0x1FFC), 0x00000000AABBCCDDull);
    EXPECT_EQ(mem.load(0x1FFE, 4), 0x0000AABBull);
    EXPECT_EQ(mem.numPages(), 1u);

    // The mirror case: head page unmapped, tail mapped.
    PagedMemory<uint32_t> mem2;
    mem2.store32(0x3000, 0x11223344);
    EXPECT_EQ(mem2.load64(0x2FFC), 0x1122334400000000ull);
    EXPECT_EQ(mem2.numPages(), 1u);
}

TEST(PagedMemory, BulkReadSpansUnmappedGap)
{
    // readBytes across mapped-unmapped-mapped pages: the hole reads
    // as zeroes without allocating.
    PagedMemory<uint32_t> mem;
    mem.store8(0x4FFF, 0xAA);  // page 0x4000
    mem.store8(0x6000, 0xBB);  // page 0x6000; 0x5000 stays unmapped
    std::vector<uint8_t> back(0x6001 - 0x4FFF);
    mem.readBytes(0x4FFF, back.data(), back.size());
    EXPECT_EQ(back.front(), 0xAAu);
    EXPECT_EQ(back.back(), 0xBBu);
    for (size_t i = 1; i + 1 < back.size(); ++i)
        ASSERT_EQ(back[i], 0u) << "offset " << i;
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(PagedMemory, WideAddressSpaceStraddles)
{
    // The 64-bit instantiation uses the hashed top-level directory:
    // straddles across a second-level-table boundary (4 MiB) and
    // across top-level buckets beyond 4 GiB must behave exactly like
    // the flat-directory case, including dirty tracking.
    PagedMemory<uint64_t> mem;
    const uint64_t table_edge = (1ull << 22) - 4;  // 4 MiB boundary
    mem.store64(table_edge, 0x1122334455667788ull);
    EXPECT_EQ(mem.load64(table_edge), 0x1122334455667788ull);
    EXPECT_EQ(mem.load32(1ull << 22), 0x11223344u);

    const uint64_t high = (5ull << 32) + 0xFFFFFFFEull;  // > 4 GiB
    mem.store(high, 0xBEEF, 4);  // straddles a top-level bucket
    EXPECT_EQ(mem.load(high, 4), 0xBEEFull);
    EXPECT_EQ(mem.load8(high + 1), 0xBEu);
    EXPECT_EQ(mem.numPages(), 4u);
    EXPECT_TRUE(mem.dirtyPages().count(table_edge & ~0xFFFull));
    EXPECT_TRUE(mem.dirtyPages().count(1ull << 22));
    EXPECT_TRUE(mem.dirtyPages().count(high & ~0xFFFull));
    EXPECT_TRUE(mem.dirtyPages().count((high + 4) & ~0xFFFull));
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
    EXPECT_EQ(strprintf("%08x", 0xBEEF), "0000beef");
    // Long outputs are not truncated.
    const std::string big = strprintf("%0500d", 7);
    EXPECT_EQ(big.size(), 500u);
}

TEST(Table, RendersAlignedAndCsv)
{
    Table t({"name", "value"});
    t.beginRow();
    t.add("alpha");
    t.addf("%d", 1);
    t.beginRow();
    t.add("long-name-here");
    t.addf("%.2f", 2.5);
    EXPECT_EQ(t.numRows(), 2u);

    // Render into a pipe-backed FILE to check content.
    char buf[4096] = {};
    FILE *f = tmpfile();
    ASSERT_NE(f, nullptr);
    t.renderCsv(f);
    rewind(f);
    const size_t n = fread(buf, 1, sizeof(buf) - 1, f);
    fclose(f);
    const std::string csv(buf, n);
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("long-name-here,2.50"), std::string::npos);
}

// ----- assembler fixups -------------------------------------------------

namespace dg = darco::guest;

TEST(Assembler, BackwardBranchUsesShortForm)
{
    dg::Assembler as;
    auto loop = as.newLabel();
    as.bind(loop);
    as.nop();
    const uint32_t before = as.offset();
    as.jmp(loop);
    const uint32_t len = as.offset() - before;
    EXPECT_EQ(len, 4u);  // short form: op + form + regs + rel8
}

TEST(Assembler, ForwardBranchReservesWideForm)
{
    dg::Assembler as;
    auto fwd = as.newLabel();
    const uint32_t before = as.offset();
    as.jmp(fwd);
    const uint32_t len = as.offset() - before;
    EXPECT_EQ(len, 7u);  // wide: op + form + regs + rel32
    as.bind(fwd);
    as.halt();
    const auto code = as.finalize(0x1000);

    // Decode and verify the displacement points at the HALT.
    dg::Inst inst;
    ASSERT_EQ(dg::decode(code.data(), code.size(), inst),
              dg::DecodeStatus::Ok);
    EXPECT_EQ(inst.op, dg::Op::JMP);
    EXPECT_EQ(static_cast<uint32_t>(0x1000 + inst.length + inst.imm),
              as.labelAddr(fwd));
}

TEST(Assembler, FarBackwardBranchFallsBackToWide)
{
    dg::Assembler as;
    auto far = as.newLabel();
    as.bind(far);
    for (int i = 0; i < 100; ++i)
        as.nop();  // 200 bytes: rel8 cannot reach
    const uint32_t before = as.offset();
    as.jmp(far);
    EXPECT_EQ(as.offset() - before, 7u);

    // And it must still execute correctly.
    as.halt();  // unreachable
    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase + 200;  // start at the jump
    dg::Memory mem;
    dg::Emulator emu(mem);
    emu.reset(prog);
    emu.run(2);  // the jump plus the first nop
    EXPECT_EQ(emu.state().eip, prog.codeBase + 2);
}

TEST(Assembler, MovLabelResolvesAbsoluteAddress)
{
    dg::Assembler as;
    auto fn = as.newLabel();
    as.movLabel(dg::EAX, fn);
    as.halt();
    as.bind(fn);
    as.nop();
    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    dg::Memory mem;
    dg::Emulator emu(mem);
    emu.reset(prog);
    emu.run(10);
    EXPECT_EQ(emu.state().gpr[dg::EAX], as.labelAddr(fn));
}

TEST(Assembler, CountStaticInstsMatchesEmitted)
{
    dg::Assembler as;
    for (int i = 0; i < 25; ++i)
        as.add(dg::EAX, i);
    as.halt();
    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    EXPECT_EQ(prog.countStaticInsts(), 26u);
    EXPECT_EQ(as.numInsts(), 26u);
}
