/**
 * @file
 * System-level property tests: randomized workload parameterizations
 * (the same generator space users configure) run under strict
 * co-simulation — any divergence between the DBT stack and the
 * authoritative emulator panics. Also checks cross-cutting
 * invariants: retirement accounting vs the authoritative instruction
 * count, mode counts summing to total, accounting closure with all
 * pipelines live, and feature-toggle equivalence of architectural
 * results.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "sim/system.hh"
#include "workloads/params.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

workloads::BenchParams
randomParams(uint64_t seed)
{
    Prng rng(seed);
    workloads::BenchParams p;
    p.name = "random." + std::to_string(seed);
    p.suite = "random";
    p.seed = seed * 31 + 7;
    p.initBlobInsts = static_cast<uint32_t>(rng.below(800));
    p.coldBlobInsts = static_cast<uint32_t>(rng.below(1500));
    p.warmLoops = static_cast<uint32_t>(rng.below(12));
    p.warmIters = static_cast<uint32_t>(5 + rng.below(120));
    p.warmBody = static_cast<uint32_t>(3 + rng.below(10));
    p.hotLoops = static_cast<uint32_t>(rng.below(3));
    p.hotIters = static_cast<uint32_t>(500 + rng.below(5000));
    p.fpShare = rng.uniform();
    p.dispatchIters = rng.chance(0.5)
        ? static_cast<uint32_t>(rng.below(800)) : 0;
    p.dispatchTargets = 1u << (2 + rng.below(6));  // 4..128
    p.callPairs = rng.chance(0.5)
        ? static_cast<uint32_t>(rng.below(400)) : 0;
    p.dataKb = static_cast<uint32_t>(16 + rng.below(256));
    p.strideBytes = 1u << rng.below(7);
    p.chaseIters = rng.chance(0.3)
        ? static_cast<uint32_t>(rng.below(2000)) : 0;
    p.chaseNodes = 1024;
    return p;
}

} // namespace

class RandomWorkload : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomWorkload, StrictCosimAndInvariants)
{
    sim::SimConfig cfg;
    cfg.cosim = true;
    cfg.cosimStrict = true;
    cfg.guestBudget = 120'000;
    cfg.tol.imToBbThreshold = 3;
    cfg.tol.bbToSbThreshold = 100;
    cfg.tolOnlyPipe = true;
    cfg.appOnlyPipe = true;
    cfg.tolModulePipe = true;

    sim::System sys(cfg);
    sys.load(workloads::buildBenchmark(randomParams(GetParam())));
    const sim::SystemResult res = sys.run();

    // Cosim was strict: reaching here means no divergence. Cross-check
    // the aggregate invariants.
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;

    const tol::TolStats &ts = sys.tolStats();
    EXPECT_EQ(ts.dynTotal(), res.guestRetired)
        << "mode counts must sum to retired instructions";
    EXPECT_EQ(sys.checker()->instructionsChecked(), res.guestRetired)
        << "every retired instruction must have been checked";

    // Accounting closure on every pipeline instance.
    auto check_closure = [](const timing::PipeStats *ps) {
        if (!ps)
            return;
        double total = 0;
        for (unsigned b = 0; b < timing::kNumBuckets; ++b)
            total += ps->bucketTotal(static_cast<timing::Bucket>(b));
        EXPECT_NEAR(total, static_cast<double>(ps->cycles),
                    1e-6 * static_cast<double>(ps->cycles) + 1.0);
    };
    check_closure(&sys.combinedStats());
    check_closure(sys.tolOnlyStats());
    check_closure(sys.appOnlyStats());
    check_closure(sys.tolModuleStats());

    // Source-split streams partition the record population.
    const uint64_t records = sys.combinedStats().records;
    EXPECT_EQ(sys.tolOnlyStats()->records +
                  sys.appOnlyStats()->records,
              records);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Range<uint64_t>(1, 25));

TEST(SystemEquivalence, FeatureTogglesPreserveArchitecture)
{
    // All feature combinations must compute the same guest result.
    // The comparison is only meaningful at program completion: a
    // budget cutoff lands mid-program at config-dependent points
    // (regions retire in bursts), so every run must reach HALT.
    workloads::BenchParams params = randomParams(777);
    params.outerRepeats = 3;  // run to HALT within the budget

    auto final_eax = [&params](auto mutate) {
        sim::SimConfig cfg;
        cfg.cosim = true;
        cfg.cosimStrict = true;
        cfg.guestBudget = 5'000'000;
        cfg.tol.imToBbThreshold = 3;
        cfg.tol.bbToSbThreshold = 100;
        mutate(cfg.tol);
        sim::System sys(cfg);
        sys.load(workloads::buildBenchmark(params));
        const sim::SystemResult res = sys.run();
        EXPECT_TRUE(res.halted) << "workload must finish in budget";
        return sys.guestState().gpr[g::EAX];
    };

    const uint32_t base = final_eax([](tol::TolConfig &) {});
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.enableChaining = false;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.enableIbtc = false;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.enableBbmOpts = false;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.enableSbmOpts = false;
                  c.enableScheduling = false;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.ibtcWays = 2;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.bbToSbThreshold = 10;
              }));
    EXPECT_EQ(base, final_eax([](tol::TolConfig &c) {
                  c.codeCacheBytes = 16 * 1024;  // force flushes
              }));
}

TEST(SystemEquivalence, InterpreterOnlyMatchesFullStack)
{
    // With an unreachable IM/BB threshold everything stays in the
    // interpreter; the architectural result at program completion
    // must be identical to the fully-optimizing configuration's.
    workloads::BenchParams params = randomParams(4242);
    params.outerRepeats = 3;  // run to HALT within the budget

    auto run_with = [&params](uint32_t im_threshold) {
        sim::SimConfig cfg;
        cfg.cosim = true;
        cfg.cosimStrict = true;
        cfg.guestBudget = 5'000'000;
        cfg.tol.imToBbThreshold = im_threshold;
        cfg.tol.bbToSbThreshold = 100;
        sim::System sys(cfg);
        sys.load(workloads::buildBenchmark(params));
        const sim::SystemResult res = sys.run();
        EXPECT_TRUE(res.halted);
        return sys.guestState();
    };

    const g::State full = run_with(3);
    const g::State interp = run_with(0x7FFFFFFF);
    for (unsigned r = 0; r < g::NumGprs; ++r)
        EXPECT_EQ(full.gpr[r], interp.gpr[r]) << "GPR " << r;
    EXPECT_EQ(full.eip, interp.eip);
}
