/**
 * @file
 * TOL component unit tests: translation map (memory-resident open
 * addressing), IBTC, profiler, cost-model streams, code store, and
 * runtime-level behaviours (chaining, promotion forwarding, code
 * cache flush, context transitions).
 */

#include <gtest/gtest.h>

#include "guest/assembler.hh"
#include "sim/system.hh"
#include "tol/cost_model.hh"
#include "tol/guest_reader.hh"
#include "tol/ibtc.hh"
#include "tol/profile.hh"
#include "tol/trans_map.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

class CountingSink : public timing::RecordSink
{
  public:
    void
    consume(const timing::Record &rec) override
    {
        ++records;
        if (rec.isLoad)
            ++loads;
        if (rec.isStore)
            ++stores;
        if (rec.isBranch)
            ++branches;
        if (rec.isLoad || rec.isStore)
            lastAddr = rec.memAddr;
    }

    uint64_t records = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint32_t lastAddr = 0;
};

struct TolFixture
{
    tol::TolConfig cfg;
    host::Memory mem;
    CountingSink sink;
    tol::CostModel cost{sink};
};

} // namespace

TEST(TransMap, InsertLookupRoundTrip)
{
    TolFixture f;
    tol::TransMap map(f.cfg, f.mem);

    EXPECT_EQ(map.lookup(0x8048000, f.cost.lookup), 0u);
    map.insert(0x8048000, 0xC8000010, f.cost.lookup);
    EXPECT_EQ(map.lookup(0x8048000, f.cost.lookup), 0xC8000010u);
    EXPECT_EQ(map.numEntries(), 1u);

    // Replacement (BB -> SB) keeps one entry.
    map.insert(0x8048000, 0xC8000400, f.cost.lookup);
    EXPECT_EQ(map.lookup(0x8048000, f.cost.lookup), 0xC8000400u);
    EXPECT_EQ(map.numEntries(), 1u);
}

TEST(TransMap, HandlesCollisionsByProbing)
{
    TolFixture f;
    tol::TransMap map(f.cfg, f.mem);
    // Insert many entries; all must remain findable.
    for (uint32_t i = 0; i < 2000; ++i)
        map.insert(0x8048000 + i * 12, 0xC8000000 + i * 16,
                   f.cost.lookup);
    for (uint32_t i = 0; i < 2000; ++i) {
        ASSERT_EQ(map.lookup(0x8048000 + i * 12, f.cost.lookup),
                  0xC8000000 + i * 16);
    }
}

TEST(TransMap, ClearDropsEverything)
{
    TolFixture f;
    tol::TransMap map(f.cfg, f.mem);
    for (uint32_t i = 0; i < 100; ++i)
        map.insert(0x8048000 + i * 8, 0xC8000000 + i * 16,
                   f.cost.lookup);
    map.clear(f.cost.other);
    EXPECT_EQ(map.numEntries(), 0u);
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(map.lookup(0x8048000 + i * 8, f.cost.lookup), 0u);
}

TEST(TransMap, EmitsProbeLoadsAtBucketAddresses)
{
    TolFixture f;
    tol::TransMap map(f.cfg, f.mem);
    const uint64_t loads_before = f.sink.loads;
    map.lookup(0x8048000, f.cost.lookup);
    EXPECT_GT(f.sink.loads, loads_before);
    EXPECT_GE(f.sink.lastAddr, host::amap::kTransMapBase);
}

TEST(Ibtc, FillMakesInlineProbeDataVisible)
{
    TolFixture f;
    tol::Ibtc ibtc(f.cfg, f.mem);
    const uint32_t target = 0x8049123;
    ibtc.fill(target, 0xC8001000, f.cost.lookup);

    // The inline probe reads these exact simulated words.
    const uint32_t entry = ibtc.setAddr(target);
    EXPECT_EQ(f.mem.load32(entry), target);
    EXPECT_EQ(f.mem.load32(entry + 4), 0xC8001000u);
}

TEST(Ibtc, DirectMappedConflictOverwrites)
{
    TolFixture f;
    tol::Ibtc ibtc(f.cfg, f.mem);
    const uint32_t a = 0x8048000;
    const uint32_t b = a + f.cfg.ibtcEntries * 8;  // same index
    ASSERT_EQ(ibtc.indexOf(a), ibtc.indexOf(b));
    ibtc.fill(a, 0xC8000100, f.cost.lookup);
    ibtc.fill(b, 0xC8000200, f.cost.lookup);
    EXPECT_EQ(f.mem.load32(ibtc.setAddr(a)), b);
}

TEST(Ibtc, ClearInvalidatesTags)
{
    TolFixture f;
    tol::Ibtc ibtc(f.cfg, f.mem);
    ibtc.fill(0x8048000, 0xC8000100, f.cost.lookup);
    ibtc.clear(f.cost.other);
    EXPECT_EQ(f.mem.load32(ibtc.setAddr(0x8048000)), 0u);
}

TEST(Ibtc, TwoWayKeepsBothConflictingTargets)
{
    TolFixture f;
    f.cfg.ibtcWays = 2;
    tol::Ibtc ibtc(f.cfg, f.mem);
    const uint32_t a = 0x8048000;
    const uint32_t b = a + ibtc.numSets() * 4;  // same set index
    ASSERT_EQ(ibtc.indexOf(a), ibtc.indexOf(b));

    ibtc.fill(a, 0xC8000100, f.cost.lookup);
    ibtc.fill(b, 0xC8000200, f.cost.lookup);

    // MRU insertion: b in way 0, a demoted to way 1 — both present.
    const uint32_t set = ibtc.setAddr(a);
    EXPECT_EQ(f.mem.load32(set + 0), b);
    EXPECT_EQ(f.mem.load32(set + 4), 0xC8000200u);
    EXPECT_EQ(f.mem.load32(set + 8), a);
    EXPECT_EQ(f.mem.load32(set + 12), 0xC8000100u);
}

TEST(Ibtc, TwoWayRefillPromotesWithoutDuplicates)
{
    TolFixture f;
    f.cfg.ibtcWays = 2;
    tol::Ibtc ibtc(f.cfg, f.mem);
    const uint32_t a = 0x8048000;
    const uint32_t b = a + ibtc.numSets() * 4;
    ibtc.fill(a, 0xC8000100, f.cost.lookup);
    ibtc.fill(b, 0xC8000200, f.cost.lookup);
    ibtc.fill(a, 0xC8000100, f.cost.lookup);  // promote a again
    const uint32_t set = ibtc.setAddr(a);
    EXPECT_EQ(f.mem.load32(set + 0), a);
    // No duplicate of `a` may remain in way 1.
    EXPECT_NE(f.mem.load32(set + 8), a);
}

TEST(Profiler, ImCountersArePrecise)
{
    TolFixture f;
    tol::Profiler prof(f.cfg, f.mem);
    for (int i = 0; i < 7; ++i)
        prof.bumpImTarget(0x8048000, f.cost.im);
    prof.bumpImTarget(0x8049000, f.cost.im);
    EXPECT_EQ(prof.imCount(0x8048000), 7u);
    EXPECT_EQ(prof.imCount(0x8049000), 1u);
    EXPECT_EQ(prof.imCount(0x804A000), 0u);
    prof.clearImCounters();
    EXPECT_EQ(prof.imCount(0x8048000), 0u);
}

TEST(Profiler, BbBlocksAreDistinctAndZeroed)
{
    TolFixture f;
    tol::Profiler prof(f.cfg, f.mem);
    const uint32_t a = prof.allocBbBlock();
    const uint32_t b = prof.allocBbBlock();
    EXPECT_NE(a, b);
    EXPECT_EQ(b - a, tol::BbProfileBlock::kSize);
    EXPECT_EQ(f.mem.load32(a), 0u);

    // Executor-style update is visible through readWord.
    f.mem.store32(a + tol::BbProfileBlock::kTakenOffset, 42);
    EXPECT_EQ(prof.readWord(a + tol::BbProfileBlock::kTakenOffset,
                            f.cost.sbm), 42u);
}

TEST(CostModel, StreamsEmitTaggedRecords)
{
    TolFixture f;
    f.cost.im.alu(3);
    f.cost.bbm.load(0x1000);
    f.cost.sbm.store(0x2000);
    f.cost.lookup.branch(true);
    f.cost.other.dispatch(5);
    EXPECT_EQ(f.sink.records, 7u);
    EXPECT_EQ(f.sink.loads, 1u);
    EXPECT_EQ(f.sink.stores, 1u);
    EXPECT_EQ(f.sink.branches, 2u);  // branch + dispatch
    EXPECT_EQ(f.cost.totalEmitted(), 7u);
}

TEST(CostModel, RoutineEntryGivesStablePcs)
{
    TolFixture f;

    class PcSink : public timing::RecordSink
    {
      public:
        void
        consume(const timing::Record &rec) override
        {
            pcs.push_back(rec.pc);
        }
        std::vector<uint32_t> pcs;
    };

    PcSink pc_sink;
    tol::CostModel cm(pc_sink);
    cm.lookup.routine(0);
    cm.lookup.alu(4);
    const auto first = pc_sink.pcs;
    pc_sink.pcs.clear();
    cm.lookup.routine(0);
    cm.lookup.alu(4);
    EXPECT_EQ(first, pc_sink.pcs);  // loop-like: identical PCs
}

// ----- code store -----------------------------------------------------------

TEST(CodeStore, InstallAssignsDisjointRanges)
{
    host::CodeStore store(0xC8000000, 0xC8010000);
    auto mk_region = [](unsigned n) {
        auto region = std::make_unique<host::CodeRegion>();
        region->insts.resize(n);
        return region;
    };
    host::CodeRegion *a = store.install(mk_region(10));
    host::CodeRegion *b = store.install(mk_region(20));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_GE(b->hostBase, a->hostLimit());
    EXPECT_EQ(store.find(a->hostBase + 4), a);
    EXPECT_EQ(store.find(b->hostBase), b);
    EXPECT_EQ(store.find(0xC9000000), nullptr);
}

TEST(CodeStore, InstallRebasesIndexTargets)
{
    host::CodeStore store(0xC8000000, 0xC8010000);
    auto region = std::make_unique<host::CodeRegion>();
    region->insts.resize(4);
    region->insts[0].op = host::HOp::JAL;
    region->insts[0].imm = 3;  // index of inst 3
    region->insts[0].targetIsIndex = true;
    host::CodeRegion *installed = store.install(std::move(region));
    ASSERT_NE(installed, nullptr);
    EXPECT_FALSE(installed->insts[0].targetIsIndex);
    EXPECT_EQ(installed->insts[0].imm,
              static_cast<int64_t>(installed->hostBase + 12));
}

TEST(CodeStore, RejectsWhenFullAndFlushRecovers)
{
    host::CodeStore store(0xC8000000, 0xC8000100);  // 256 bytes
    auto big = std::make_unique<host::CodeRegion>();
    big->insts.resize(32);  // 128 bytes
    ASSERT_NE(store.install(std::move(big)), nullptr);
    auto big2 = std::make_unique<host::CodeRegion>();
    big2->insts.resize(40);  // 160 bytes: doesn't fit
    EXPECT_EQ(store.install(std::move(big2)), nullptr);
    store.flush();
    EXPECT_EQ(store.numRegions(), 0u);
    auto big3 = std::make_unique<host::CodeRegion>();
    big3->insts.resize(40);
    EXPECT_NE(store.install(std::move(big3)), nullptr);
    EXPECT_EQ(store.generation(), 1u);
}

// ----- runtime-level behaviours -------------------------------------------

namespace {

sim::SimConfig
smallConfig()
{
    sim::SimConfig cfg;
    cfg.cosim = true;
    cfg.cosimStrict = true;
    cfg.guestBudget = 3'000'000;
    cfg.tol.imToBbThreshold = 3;
    cfg.tol.bbToSbThreshold = 40;
    return cfg;
}

g::Program
hotLoopProgram(uint32_t iters)
{
    g::Assembler as;
    as.mov(g::EAX, 0);
    as.mov(g::ECX, static_cast<int32_t>(iters));
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(g::EAX, g::ECX);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    return prog;
}

} // namespace

TEST(TolRuntime, ChainingEliminatesDispatchLoops)
{
    sim::SimConfig with = smallConfig();
    sim::SimConfig without = smallConfig();
    without.tol.enableChaining = false;

    sim::System a(with);
    a.load(hotLoopProgram(3000));
    a.run();
    sim::System b(without);
    b.load(hotLoopProgram(3000));
    b.run();

    // Without chaining, every loop iteration round-trips the runtime.
    EXPECT_GT(b.tolStats().dispatchLoops,
              10 * a.tolStats().dispatchLoops);
    EXPECT_GT(a.tolStats().chainsPatched, 0u);
    EXPECT_EQ(b.tolStats().chainsPatched, 0u);
    // Both still compute the same thing (cosim was strict).
    EXPECT_EQ(a.guestState().gpr[g::EAX], b.guestState().gpr[g::EAX]);
}

TEST(TolRuntime, PromotionForwardsOldBbEntry)
{
    sim::System sys(smallConfig());
    sys.load(hotLoopProgram(5000));
    sys.run();
    const auto &ts = sys.tolStats();
    EXPECT_GE(ts.promotions, 1u);
    EXPECT_GE(ts.entryForwards, 1u);
    EXPECT_GE(ts.sbsCreated, 1u);
}

TEST(TolRuntime, CodeCacheFlushRecovery)
{
    // A tiny code cache forces flushes; execution must stay correct
    // (strict cosim) and count the flushes.
    sim::SimConfig cfg = smallConfig();
    cfg.tol.codeCacheBytes = 8 * 1024;
    cfg.guestBudget = 400'000;

    // Program with many distinct blocks (forces cache pressure).
    g::Assembler as;
    as.mov(g::EBP, 40);
    auto outer = as.newLabel();
    as.bind(outer);
    for (int blk = 0; blk < 100; ++blk) {
        as.mov(g::EAX, blk);
        as.add(g::EAX, g::EBX);
        as.xor_(g::EBX, g::EAX);
        auto skip = as.newLabel();
        as.cmp(g::EAX, -1);
        as.jcc(g::Cond::E, skip);
        as.bind(skip);
    }
    as.dec(g::EBP);
    as.jcc(g::Cond::NE, outer);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    sim::System sys(cfg);
    sys.load(prog);
    const auto res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_GT(sys.tolStats().codeCacheFlushes, 0u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(TolRuntime, ContextTransitionsCounted)
{
    sim::System sys(smallConfig());
    sys.load(hotLoopProgram(2000));
    sys.run();
    // IM ran first (fills ctx), then translated execution (fills
    // registers): at least one of each transition.
    EXPECT_GE(sys.tolStats().contextFills, 1u);
    EXPECT_GE(sys.tolStats().contextSpills, 1u);
}

TEST(TolRuntime, TwoWayIbtcCorrectUnderCosim)
{
    // The emitted two-way probe is functionally executed; strict
    // cosim verifies it end to end on an indirect-heavy program.
    sim::SimConfig cfg = smallConfig();
    cfg.tol.ibtcWays = 2;

    g::Assembler as;
    auto fn1 = as.newLabel();
    auto fn2 = as.newLabel();
    auto loop = as.newLabel();
    as.mov(g::EAX, 0);
    as.mov(g::ECX, 400);
    as.bind(loop);
    as.mov(g::EDX, g::ECX);
    as.and_(g::EDX, 1);
    auto use2 = as.newLabel();
    auto cont = as.newLabel();
    as.jcc(g::Cond::NE, use2);
    as.call(fn1);
    as.jmp(cont);
    as.bind(use2);
    as.call(fn2);
    as.bind(cont);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();
    as.bind(fn1);
    as.add(g::EAX, 1);
    as.ret();
    as.bind(fn2);
    as.add(g::EAX, 100);
    as.ret();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    sim::System sys(cfg);
    sys.load(prog);
    const auto res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(sys.guestState().gpr[g::EAX], 200u * 1 + 200u * 100);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(CodeStore, SuperblockPartitionSeparatesKinds)
{
    host::CodeStore store(0xC8000000, 0xC8010000);
    store.partitionForSuperblocks(50);
    auto mk_region = [](host::RegionKind kind) {
        auto region = std::make_unique<host::CodeRegion>();
        region->kind = kind;
        region->insts.resize(8);
        return region;
    };
    host::CodeRegion *bb =
        store.install(mk_region(host::RegionKind::BasicBlock));
    host::CodeRegion *sb =
        store.install(mk_region(host::RegionKind::Superblock));
    ASSERT_NE(bb, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_LT(bb->hostBase, 0xC8008000u);   // cold half
    EXPECT_GE(sb->hostBase, 0xC8008000u);   // hot half
    EXPECT_EQ(store.find(bb->hostBase), bb);
    EXPECT_EQ(store.find(sb->hostBase), sb);
    store.flush();
    host::CodeRegion *sb2 =
        store.install(mk_region(host::RegionKind::Superblock));
    EXPECT_GE(sb2->hostBase, 0xC8008000u);  // partition survives flush
}

TEST(TolRuntime, SbPartitionCorrectUnderCosim)
{
    sim::SimConfig cfg = smallConfig();
    cfg.tol.sbPartitionPercent = 50;
    sim::System sys(cfg);
    sys.load(hotLoopProgram(4000));
    const auto res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_GE(sys.tolStats().sbsCreated, 1u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}

TEST(TolRuntime, IbtcDisabledStillCorrect)
{
    sim::SimConfig cfg = smallConfig();
    cfg.tol.enableIbtc = false;

    g::Assembler as;
    auto fn = as.newLabel();
    auto loop = as.newLabel();
    as.mov(g::EAX, 0);
    as.mov(g::ECX, 500);
    as.bind(loop);
    as.call(fn);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();
    as.bind(fn);
    as.add(g::EAX, 3);
    as.ret();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    sim::System sys(cfg);
    sys.load(prog);
    const auto res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(sys.guestState().gpr[g::EAX], 1500u);
    EXPECT_EQ(sys.tolStats().ibtcFills, 0u);
}

// ---------------------------------------------------------------------
// GuestCodeReader: the decode cache in front of the stable backing
// map (fast-slot collisions, invalidation, reference stability).
// ---------------------------------------------------------------------

namespace {

/** Write one assembled instruction sequence at @p addr. */
uint32_t
emitAt(host::Memory &mem, uint32_t addr,
       void (*build)(g::Assembler &))
{
    g::Assembler as;
    build(as);
    const std::vector<uint8_t> bytes = as.finalize(addr);
    mem.writeBytes(addr, bytes.data(), bytes.size());
    return addr;
}

} // namespace

TEST(GuestCodeReader, DirectMappedCollisionsStayCorrect)
{
    // Two eips 1<<12 apart share a fast-cache slot (the front cache
    // indexes with the low 12 bits); alternating queries must keep
    // returning the right decode, served from the stable backing map.
    host::Memory mem;
    const uint32_t base = g::Program::layoutCodeBase();
    const uint32_t a =
        emitAt(mem, base, [](g::Assembler &as) { as.add(g::EAX, 1); });
    const uint32_t b = emitAt(mem, base + (1u << 12),
                              [](g::Assembler &as) { as.halt(); });

    tol::GuestCodeReader reader(mem);
    const tol::DecodedInst &first = reader.decoded(a);
    EXPECT_EQ(first.inst.op, g::Op::ADD);
    ASSERT_NE(first.info, nullptr);
    for (int round = 0; round < 4; ++round) {
        const tol::DecodedInst &da = reader.decoded(a);
        const tol::DecodedInst &db = reader.decoded(b);
        EXPECT_EQ(da.inst.op, g::Op::ADD);
        EXPECT_EQ(db.inst.op, g::Op::HALT);
        // Backing entries are address-stable for the reader's
        // lifetime, collisions or not.
        EXPECT_EQ(&da, &first);
    }
}

TEST(GuestCodeReader, InvalidateKeepsBackingEntriesStable)
{
    // invalidateCache() drops only the direct-mapped front cache;
    // previously returned references (held by translated paths)
    // must survive, and re-decoding must find the same entries.
    host::Memory mem;
    const uint32_t base = g::Program::layoutCodeBase();
    const uint32_t a =
        emitAt(mem, base, [](g::Assembler &as) { as.dec(g::ECX); });
    const uint32_t b = emitAt(mem, base + 64, [](g::Assembler &as) {
        as.mov(g::EBX, g::mem(g::ESI, 8));
    });

    tol::GuestCodeReader reader(mem);
    const tol::DecodedInst &da = reader.decoded(a);
    const tol::DecodedInst &db = reader.decoded(b);
    const g::Inst &ia = reader.at(a);

    reader.invalidateCache();
    EXPECT_EQ(&reader.decoded(a), &da);
    EXPECT_EQ(&reader.decoded(b), &db);
    EXPECT_EQ(&reader.at(a), &ia);
    EXPECT_EQ(reader.decoded(a).inst.op, g::Op::DEC);
    EXPECT_EQ(reader.decoded(b).inst.op, g::Op::MOV);

    // Repeated invalidation (every code-cache flush) is harmless.
    reader.invalidateCache();
    reader.invalidateCache();
    EXPECT_EQ(&reader.decoded(a), &da);
}

TEST(GuestCodeReader, FlushDrivenInvalidationEndToEnd)
{
    // Force repeated code-cache flushes (each one invalidates the
    // decode cache inside the runtime) under strict co-simulation:
    // post-flush re-decode + re-translation must stay architecturally
    // identical to the authoritative emulator.
    sim::SimConfig cfg;
    cfg.cosim = true;
    cfg.guestBudget = 600'000;
    cfg.tol.imToBbThreshold = 2;
    cfg.tol.bbToSbThreshold = 40;
    cfg.tol.codeCacheBytes = 4 * 1024;

    g::Assembler as;
    as.mov(g::EBP, 60);
    as.mov(g::EDI, 0);
    auto outer = as.newLabel();
    as.bind(outer);
    for (int blk = 0; blk < 120; ++blk) {
        as.add(g::EDI, blk + 1);
        as.xor_(g::EDI, 0x3C);
        auto skip = as.newLabel();
        as.cmp(g::EDI, -1);
        as.jcc(g::Cond::E, skip);
        as.bind(skip);
    }
    as.dec(g::EBP);
    as.jcc(g::Cond::NE, outer);
    as.halt();
    g::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    sim::System sys(cfg);
    sys.load(prog);
    const auto res = sys.run();
    EXPECT_TRUE(res.halted);
    EXPECT_GE(sys.tolStats().codeCacheFlushes, 2u);
    EXPECT_TRUE(res.memoryDiff.empty()) << res.memoryDiff;
}
