/**
 * @file
 * Batch-execution gates (docs/concurrency.md): parallel sweeps must
 * be bit-identical to serial ones, results must land in job-index
 * order under any scheduling, a failing job must never take the
 * batch down, and the process-global services jobs share (workload
 * registry, trace capture) must be thread-safe. This suite is also
 * what the CI ThreadSanitizer job runs.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <iterator>
#include <thread>

#include "common/logging.hh"
#include "profile/profile.hh"
#include "runner/batch_runner.hh"
#include "runner/journal.hh"
#include "sim/metrics.hh"
#include "timing/pipeline.hh"
#include "tol/stats.hh"
#include "trace/trace.hh"
#include "workloads/source.hh"

using namespace darco;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    FILE *fp = std::fopen(path.c_str(), "rb");
    EXPECT_NE(fp, nullptr) << path;
    std::vector<uint8_t> bytes;
    if (!fp)
        return bytes;
    uint8_t buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    std::fclose(fp);
    return bytes;
}

/** The representative synthetic set: one per paper suite. */
const char *kSuiteReps[] = {"464.h264ref", "436.cactusADM",
                            "104.novis_explosions", "005.h264enc"};

runner::BatchConfig
withWorkers(unsigned workers)
{
    runner::BatchConfig cfg;
    cfg.workers = workers;
    return cfg;
}

sim::MetricsOptions
smallOptions(uint64_t budget = 120'000)
{
    sim::MetricsOptions options;
    options.guestBudget = budget;
    options.tolConfig.bbToSbThreshold = sim::scaledSbThreshold(budget);
    return options;
}

runner::BatchJob
makeJob(std::string uri, sim::MetricsOptions options)
{
    runner::BatchJob job;
    job.workload = std::move(uri);
    job.options = std::move(options);
    return job;
}

/** Slot-by-slot bit-identity between two runs of the same batch. */
void
expectIdenticalResults(const std::vector<runner::JobResult> &a,
                       const std::vector<runner::JobResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].uri);
        EXPECT_EQ(a[i].ok, b[i].ok);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].snapshot.result.guestRetired,
                  b[i].snapshot.result.guestRetired);
        EXPECT_EQ(a[i].snapshot.result.cycles,
                  b[i].snapshot.result.cycles);
        EXPECT_EQ(a[i].snapshot.result.halted,
                  b[i].snapshot.result.halted);
        EXPECT_EQ(timing::diffStats(a[i].snapshot.stats,
                                    b[i].snapshot.stats), "");
        EXPECT_EQ(tol::diffTolStats(a[i].snapshot.tolStats,
                                    b[i].snapshot.tolStats), "");
        // Derived figure metrics are pure functions of the stats,
        // but spot-check the headline fields anyway.
        EXPECT_EQ(a[i].metrics.dynSbm, b[i].metrics.dynSbm);
        EXPECT_DOUBLE_EQ(a[i].metrics.tolCycles, b[i].metrics.tolCycles);
        // Characterization profiles ride the same contract: both
        // absent, or both present and bit-identical.
        ASSERT_EQ(a[i].snapshot.profile.has_value(),
                  b[i].snapshot.profile.has_value());
        if (a[i].snapshot.profile) {
            EXPECT_EQ(profile::diffProfiles(*a[i].snapshot.profile,
                                            *b[i].snapshot.profile),
                      "");
        }
    }
}

// ---------------------------------------------------------------------
// Parallel-vs-serial bit-identity (the acceptance contract).
// ---------------------------------------------------------------------

TEST(BatchAB, ParallelMatchesSerialOnSyntheticWorkloads)
{
    // Mixed batch: four suites x two configs, so jobs differ in both
    // workload and options.
    std::vector<runner::BatchJob> batch;
    for (const char *name : kSuiteReps) {
        batch.push_back(makeJob(workloads::syntheticUri(name),
                                smallOptions(120'000)));
        runner::BatchJob tweaked;
        tweaked.workload = workloads::syntheticUri(name);
        tweaked.options = smallOptions(90'000);
        tweaked.options.tolConfig.bbToSbThreshold = 2000;
        batch.push_back(std::move(tweaked));
    }

    const auto serial = runner::BatchRunner(withWorkers(1)).run(batch);
    const auto parallel = runner::BatchRunner(withWorkers(4)).run(batch);

    for (const runner::JobResult &r : serial)
        EXPECT_TRUE(r.ok) << r.error;
    expectIdenticalResults(serial, parallel);

    // And the serial path itself equals the pre-runner reference
    // (sim::snapshotRun), so the runner changed nothing end to end.
    for (size_t i = 0; i < batch.size(); ++i) {
        const sim::RunSnapshot ref = sim::snapshotRun(
            workloads::resolveWorkload(batch[i].workload),
            batch[i].options);
        EXPECT_EQ(ref.result.guestRetired,
                  serial[i].snapshot.result.guestRetired);
        EXPECT_EQ(ref.result.cycles, serial[i].snapshot.result.cycles);
        EXPECT_EQ(timing::diffStats(ref.stats,
                                    serial[i].snapshot.stats), "");
        EXPECT_EQ(tol::diffTolStats(ref.tolStats,
                                    serial[i].snapshot.tolStats), "");
    }
}

TEST(BatchAB, ParallelMatchesSerialProfiles)
{
    // Profiled sweeps (MetricsOptions::profile) must keep the
    // bit-identity contract: every worker count yields the same
    // reuse histograms and branch profiles in every slot.
    std::vector<runner::BatchJob> batch;
    for (const char *name : kSuiteReps) {
        sim::MetricsOptions options = smallOptions(90'000);
        options.profile = true;
        batch.push_back(makeJob(workloads::syntheticUri(name),
                                options));
    }

    const auto serial = runner::BatchRunner(withWorkers(1)).run(batch);
    const auto parallel = runner::BatchRunner(withWorkers(4)).run(batch);

    for (const runner::JobResult &r : serial) {
        EXPECT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(r.snapshot.profile.has_value()) << r.uri;
        EXPECT_GT(r.snapshot.profile->dataReuse.totalAccesses(), 0u)
            << r.uri;
        EXPECT_TRUE(r.metrics.haveProfile);
    }
    expectIdenticalResults(serial, parallel);
}

TEST(BatchAB, ParallelMatchesSerialOnTraceWorkloads)
{
    // Capture two workloads, then replay them through the batch
    // runner serially and in parallel: every slot bit-identical and
    // every in-file determinism pin reproduced (a pin mismatch would
    // fail the job, so r.ok doubles as the pin check).
    std::vector<runner::BatchJob> batch;
    std::vector<std::string> paths;
    for (const char *name : {"464.h264ref", "429.mcf"}) {
        const std::string path =
            tempPath(std::string("batch_") + name + ".dtrc");
        sim::MetricsOptions capture = smallOptions(100'000);
        capture.captureTracePath = path;
        sim::snapshotRun(
            workloads::resolveWorkload(workloads::syntheticUri(name)),
            capture);
        paths.push_back(path);
        batch.push_back(makeJob(workloads::traceUri(path),
                                sim::MetricsOptions{}));
    }

    const auto serial = runner::BatchRunner(withWorkers(1)).run(batch);
    const auto parallel = runner::BatchRunner(withWorkers(4)).run(batch);
    for (const runner::JobResult &r : parallel)
        EXPECT_TRUE(r.ok) << r.error;  // includes the pin check
    expectIdenticalResults(serial, parallel);

    for (const std::string &path : paths)
        std::remove(path.c_str());
}

TEST(BatchRunner, ExpectedPinsEnforced)
{
    // A correct expectedPins passes; a perturbed one fails the job
    // with a structured report naming the field.
    const runner::BatchJob probe = makeJob(
        workloads::syntheticUri("462.libquantum"), smallOptions());
    const auto probed = runner::BatchRunner(withWorkers(1)).run({probe});
    ASSERT_TRUE(probed[0].ok) << probed[0].error;

    trace::TracePins pins;
    pins.guestRetired = probed[0].snapshot.result.guestRetired;
    pins.simCycles = probed[0].snapshot.result.cycles;
    pins.hostRecords = probed[0].snapshot.stats.records;
    const tol::TolStats &ts = probed[0].snapshot.tolStats;
    pins.dynIm = ts.dynIm;
    pins.dynBbm = ts.dynBbm;
    pins.dynSbm = ts.dynSbm;
    pins.bbsTranslated = ts.bbsTranslated;
    pins.sbsCreated = ts.sbsCreated;
    pins.guestIndirectBranches = ts.guestIndirectBranches;

    runner::BatchJob pinned = probe;
    pinned.expectedPins = pins;
    runner::BatchJob broken = probe;
    broken.expectedPins = pins;
    broken.expectedPins->simCycles += 1;

    const auto results =
        runner::BatchRunner(withWorkers(2)).run({pinned, broken});
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("sim_cycles"), std::string::npos)
        << results[1].error;
}

TEST(BatchRunner, OverridesWinOverCaptureRecipe)
{
    // A budget override must beat a trace's capture recipe (the
    // command-line precedence run_benchmark documents). The override
    // changes the functional execution, so in-file pins are off.
    const std::string path = tempPath("override.dtrc");
    sim::MetricsOptions capture = smallOptions(100'000);
    capture.captureTracePath = path;
    sim::snapshotRun(workloads::resolveWorkload(
                         workloads::syntheticUri("429.mcf")),
                     capture);

    runner::BatchJob shortened =
        makeJob(workloads::traceUri(path), sim::MetricsOptions{});
    shortened.checkCapturedPins = false;
    shortened.guestBudgetOverride = 40'000;
    const auto results =
        runner::BatchRunner(withWorkers(1)).run({shortened});
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_LT(results[0].snapshot.result.guestRetired, 50'000u);

    // And with pin checking left on, the same override fails the
    // job with a structured pin report instead of bad numbers.
    runner::BatchJob conflicted = shortened;
    conflicted.checkCapturedPins = true;
    const auto conflicted_results =
        runner::BatchRunner(withWorkers(1)).run({conflicted});
    EXPECT_FALSE(conflicted_results[0].ok);
    EXPECT_NE(conflicted_results[0].error.find("pin mismatch"),
              std::string::npos) << conflicted_results[0].error;

    // A replay on the other timing core reproduces every counter
    // (the cores are bit-identical) but is a different experiment
    // than the capture pinned: only the timing_core pin catches it.
    runner::BatchJob refcore =
        makeJob(workloads::traceUri(path), sim::MetricsOptions{});
    refcore.options.timingConfig.eventCore = false;
    const auto refcore_results =
        runner::BatchRunner(withWorkers(1)).run({refcore});
    EXPECT_FALSE(refcore_results[0].ok);
    EXPECT_NE(refcore_results[0].error.find("timing_core"),
              std::string::npos) << refcore_results[0].error;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Scheduling properties: order, failure isolation, oversubscription.
// ---------------------------------------------------------------------

TEST(BatchRunner, ResultsLandInJobIndexOrder)
{
    // Jobs with very different runtimes (budgets 20k..400k) so
    // completion order differs from submission order; slots must
    // still follow submission order.
    std::vector<runner::BatchJob> batch;
    std::vector<std::string> expect_names;
    const uint64_t budgets[] = {400'000, 20'000, 250'000, 40'000,
                                150'000, 30'000};
    for (size_t i = 0; i < std::size(budgets); ++i) {
        const char *name = kSuiteReps[i % std::size(kSuiteReps)];
        batch.push_back(makeJob(workloads::syntheticUri(name),
                                smallOptions(budgets[i])));
        expect_names.push_back(name);
    }
    const auto results = runner::BatchRunner(withWorkers(3)).run(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].name, expect_names[i]);
        EXPECT_EQ(results[i].uri, batch[i].workload);
    }
}

TEST(BatchRunner, FailingJobsReportWithoutAbortingTheBatch)
{
    // Three failure shapes between healthy jobs: unknown synthetic
    // benchmark, unknown scheme, unreadable trace file. Each fails
    // structurally (fatal() converted to a JobResult error); the
    // healthy jobs still produce correct metrics.
    std::vector<runner::BatchJob> batch;
    batch.push_back(makeJob(workloads::syntheticUri("462.libquantum"),
                            smallOptions()));
    batch.push_back(makeJob("source://synthetic/no.such.benchmark",
                            smallOptions()));
    batch.push_back(makeJob("source://nosuchscheme/x", smallOptions()));
    batch.push_back(makeJob("source://trace/" + tempPath("missing.dtrc"),
                            smallOptions()));
    batch.push_back(makeJob(workloads::syntheticUri("429.mcf"),
                            smallOptions()));

    const auto results = runner::BatchRunner(withWorkers(4)).run(batch);
    ASSERT_EQ(results.size(), 5u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("unknown synthetic benchmark"),
              std::string::npos) << results[1].error;
    EXPECT_FALSE(results[2].ok);
    EXPECT_NE(results[2].error.find("unknown scheme"),
              std::string::npos) << results[2].error;
    EXPECT_FALSE(results[3].ok);
    EXPECT_TRUE(results[4].ok) << results[4].error;

    // The healthy slots equal a clean serial run of the same jobs.
    const auto clean = runner::BatchRunner(withWorkers(1))
                           .run({batch[0], batch[4]});
    EXPECT_EQ(timing::diffStats(results[0].snapshot.stats,
                                clean[0].snapshot.stats), "");
    EXPECT_EQ(timing::diffStats(results[4].snapshot.stats,
                                clean[1].snapshot.stats), "");
}

TEST(BatchRunner, OversubscriptionJobsFarExceedWorkers)
{
    // 24 jobs on 3 workers: the FIFO cursor must hand out every job
    // exactly once and the batch must complete with ordered slots.
    std::vector<runner::BatchJob> batch;
    for (int rep = 0; rep < 6; ++rep) {
        for (const char *name : kSuiteReps) {
            batch.push_back(makeJob(workloads::syntheticUri(name),
                                    smallOptions(25'000)));
        }
    }
    ASSERT_EQ(batch.size(), 24u);
    const auto parallel = runner::BatchRunner(withWorkers(3)).run(batch);
    const auto serial = runner::BatchRunner(withWorkers(1)).run(batch);
    expectIdenticalResults(serial, parallel);
    // Repeats of one workload are the same deterministic simulation.
    EXPECT_EQ(timing::diffStats(parallel[0].snapshot.stats,
                                parallel[20].snapshot.stats), "");
}

TEST(BatchRunner, DuplicateCapturePathsRejected)
{
    std::vector<runner::BatchJob> batch;
    for (int i = 0; i < 2; ++i) {
        runner::BatchJob job = makeJob(
            workloads::syntheticUri("429.mcf"), smallOptions());
        job.options.captureTracePath = tempPath("dup.dtrc");
        batch.push_back(std::move(job));
    }
    ScopedFatalThrow fatal_throws;
    EXPECT_THROW(runner::BatchRunner(withWorkers(2)).run(batch),
                 FatalError);
}

// ---------------------------------------------------------------------
// Journal durability: I/O failures must be loud and classified.
// ---------------------------------------------------------------------

// Regression (found by the lint gate's unused-return-value class):
// Journal::append and the header write ignored the fwrite/fflush
// results, so on a full disk the runner would report a job done on
// the strength of an entry that never became durable — the exact
// contract docs/robustness.md §4 promises. Both paths must fail as
// a classified Io fatal, never silently.

TEST(JournalDurability, HeaderWriteFailureIsLoudAndClassifiedIo)
{
    // /dev/full accepts the open and fails every write with ENOSPC.
    ScopedFatalThrow seam;
    try {
        runner::Journal journal("/dev/full");
        FAIL() << "journal header write to /dev/full succeeded";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.kind(), ErrKind::Io) << e.what();
        EXPECT_NE(std::string(e.what()).find("journal"),
                  std::string::npos);
    }
}

TEST(JournalDurability, AppendFailureIsLoudAndClassifiedIo)
{
    const std::string path = tempPath("journal_full_disk.jsonl");
    std::remove(path.c_str());

    // Open the journal (header fits), then cap the file size below
    // one entry: the append's write/flush fails with EFBIG, which
    // must surface as an error return, not the default SIGXFSZ kill.
    struct rlimit old_limit{};
    ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
    std::signal(SIGXFSZ, SIG_IGN);
    {
        runner::Journal journal(path);
        struct rlimit capped = old_limit;
        capped.rlim_cur = 64;
        ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &capped), 0);

        runner::JournalEntry entry;
        entry.jobIndex = 3;
        entry.workload = "source://synthetic/429.mcf";
        ScopedFatalThrow seam;
        try {
            journal.append(entry);
            ADD_FAILURE() << "append past the size cap succeeded";
        } catch (const FatalError &e) {
            EXPECT_EQ(e.kind(), ErrKind::Io) << e.what();
            EXPECT_NE(std::string(e.what()).find("not durable"),
                      std::string::npos);
        }
    }
    ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
    std::signal(SIGXFSZ, SIG_DFL);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Shared-service audits: logging seam, registry, trace capture.
// ---------------------------------------------------------------------

TEST(FatalThrowSeam, ScopedAndThreadLocal)
{
    // Inside the scope fatal() throws a FatalError carrying message
    // and site; the scope is per-thread, so another thread entering
    // its own scope observes its own fatal, not ours.
    try {
        ScopedFatalThrow fatal_throws;
        fatal("seam check %d", 7);
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("seam check 7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_batch_runner"),
                  std::string::npos);
    }

    std::string other_thread_error;
    std::thread([&] {
        ScopedFatalThrow fatal_throws;
        try {
            fatal_if(true, "worker fatal");
        } catch (const FatalError &e) {
            other_thread_error = e.what();
        }
    }).join();
    EXPECT_NE(other_thread_error.find("worker fatal"),
              std::string::npos);
}

namespace {

/** Minimal source for registry-race tests: echoes the builtin
 *  synthetic resolution under a private scheme name. */
class StubSource : public workloads::WorkloadSource
{
  public:
    explicit StubSource(std::string scheme_name)
        : name(std::move(scheme_name))
    {}

    std::string scheme() const override { return name; }

    workloads::Workload
    resolve(const std::string &spec) const override
    {
        return workloads::resolveWorkload(
            workloads::syntheticUri(spec));
    }

  private:
    std::string name;
};

} // namespace

TEST(RegistryRace, ConcurrentRegistrationAndResolution)
{
    // Regression for the lazy-init data race (source.cc registry):
    // two threads register distinct schemes while four more hammer
    // resolution through the builtins. Under TSan this is the probe
    // that used to light up; functionally, both registrations must
    // land and every resolution must succeed.
    std::thread reg_a([] {
        workloads::registerSource(
            std::make_unique<StubSource>("race-a"));
    });
    std::thread reg_b([] {
        workloads::registerSource(
            std::make_unique<StubSource>("race-b"));
    });
    std::vector<std::thread> resolvers;
    std::atomic<unsigned> resolved{0};
    for (int t = 0; t < 4; ++t) {
        resolvers.emplace_back([&resolved] {
            for (int i = 0; i < 50; ++i) {
                const workloads::Workload w =
                    workloads::resolveWorkload("462.libquantum");
                if (w.name == "462.libquantum")
                    resolved.fetch_add(1);
            }
        });
    }
    reg_a.join();
    reg_b.join();
    for (std::thread &t : resolvers)
        t.join();
    EXPECT_EQ(resolved.load(), 200u);

    EXPECT_EQ(workloads::resolveWorkload("source://race-a/429.mcf")
                  .name, "429.mcf");
    EXPECT_EQ(workloads::resolveWorkload("source://race-b/473.astar")
                  .name, "473.astar");
}

TEST(RegistryRace, OneWinnerWhenTwoThreadsClaimOneScheme)
{
    std::atomic<unsigned> winners{0}, losers{0};
    std::vector<std::thread> claimants;
    for (int t = 0; t < 2; ++t) {
        claimants.emplace_back([&] {
            ScopedFatalThrow fatal_throws;
            try {
                workloads::registerSource(
                    std::make_unique<StubSource>("race-dup"));
                winners.fetch_add(1);
            } catch (const FatalError &) {
                losers.fetch_add(1);
            }
        });
    }
    for (std::thread &t : claimants)
        t.join();
    EXPECT_EQ(winners.load(), 1u);
    EXPECT_EQ(losers.load(), 1u);
}

TEST(ConcurrentCapture, TwoSystemsCapturingAreByteIdentical)
{
    // Two Systems capturing different workloads to different paths
    // on different threads must write byte-identical files to their
    // serial captures: capture is System-local state except for the
    // final file write, and the paths are distinct.
    const char *names[] = {"464.h264ref", "429.mcf"};
    std::vector<uint8_t> serial_bytes[2];
    for (int i = 0; i < 2; ++i) {
        const std::string path =
            tempPath(std::string("cap_serial_") + names[i] + ".dtrc");
        sim::MetricsOptions options = smallOptions(80'000);
        options.captureTracePath = path;
        sim::snapshotRun(workloads::resolveWorkload(
                             workloads::syntheticUri(names[i])),
                         options);
        serial_bytes[i] = readAll(path);
        std::remove(path.c_str());
        ASSERT_FALSE(serial_bytes[i].empty());
    }

    std::vector<uint8_t> threaded_bytes[2];
    std::vector<std::thread> capturers;
    for (int i = 0; i < 2; ++i) {
        capturers.emplace_back([i, &names, &threaded_bytes] {
            const std::string path = tempPath(
                std::string("cap_threaded_") + names[i] + ".dtrc");
            sim::MetricsOptions options = smallOptions(80'000);
            options.captureTracePath = path;
            sim::snapshotRun(workloads::resolveWorkload(
                                 workloads::syntheticUri(names[i])),
                             options);
            threaded_bytes[i] = readAll(path);
            std::remove(path.c_str());
        });
    }
    for (std::thread &t : capturers)
        t.join();

    EXPECT_EQ(threaded_bytes[0], serial_bytes[0]);
    EXPECT_EQ(threaded_bytes[1], serial_bytes[1]);
}

} // namespace
