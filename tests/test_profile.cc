/**
 * @file
 * Characterization-layer tests (src/profile/): the exact Mattson
 * stack-distance engine against a brute-force reference on random and
 * adversarial streams, closed-form histogram / branch-entropy values
 * with pencil-and-paper answers, the analytic-LRU oracle against the
 * simulated fully-associative true-LRU cache across the four paper
 * suites, mispredict-attribution parity with the pipeline's own
 * predictor, and journal round-tripping of profiles.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <vector>

#include "profile/analytic.hh"
#include "profile/profile.hh"
#include "runner/journal.hh"
#include "sim/metrics.hh"
#include "workloads/source.hh"

using namespace darco;

namespace {

/**
 * Brute-force O(N^2) stack-distance reference: an explicit LRU stack
 * (front = most recent). The distance of a re-access is its stack
 * index — the number of distinct other lines touched since.
 */
class NaiveStack
{
  public:
    void
    access(uint64_t line)
    {
        for (size_t i = 0; i < stack.size(); ++i) {
            if (stack[i] == line) {
                ++hist.counts[i];
                stack.erase(stack.begin() + static_cast<long>(i));
                stack.insert(stack.begin(), line);
                return;
            }
        }
        ++hist.coldAccesses;
        stack.insert(stack.begin(), line);
    }

    const profile::ReuseHistogram &histogram() const { return hist; }

  private:
    std::vector<uint64_t> stack;
    profile::ReuseHistogram hist;
};

/** Deterministic 64-bit LCG (tests must not use ambient RNG). */
class Lcg
{
  public:
    explicit Lcg(uint64_t seed) : state(seed) {}

    uint64_t
    next()
    {
        state = state * 6364136223846793005ull +
                1442695040888963407ull;
        return state >> 16;
    }

  private:
    uint64_t state;
};

void
expectMatchesNaive(const std::vector<uint64_t> &lines,
                   const char *what)
{
    profile::ReuseStack fast;
    NaiveStack naive;
    for (const uint64_t line : lines) {
        fast.access(line);
        naive.access(line);
    }
    EXPECT_EQ(fast.histogram(), naive.histogram()) << what;
    EXPECT_EQ(fast.distinctLines(),
              naive.histogram().coldAccesses) << what;
}

timing::Record
memRecord(uint32_t addr, bool store = false)
{
    timing::Record rec;
    rec.memAddr = addr;
    rec.isLoad = !store;
    rec.isStore = store;
    return rec;
}

timing::Record
condBranch(uint32_t pc, bool taken)
{
    timing::Record rec;
    rec.pc = pc;
    rec.isBranch = true;
    rec.isCondBranch = true;
    rec.taken = taken;
    rec.branchTarget = taken ? pc + 64 : pc + 4;
    return rec;
}

// ---------------------------------------------------------------------
// Stack-distance engine vs brute force.
// ---------------------------------------------------------------------

TEST(ReuseStack, MatchesNaiveOnRandomStreams)
{
    // Several (footprint, length) shapes: dense reuse, sparse reuse,
    // and a footprint big enough to force Fenwick doubling.
    const struct { uint64_t space; size_t n; uint64_t seed; } shapes[] =
        {{8, 2000, 1}, {64, 5000, 2}, {1000, 4000, 3}, {3000, 6000, 4}};
    for (const auto &s : shapes) {
        Lcg rng(s.seed);
        std::vector<uint64_t> lines;
        lines.reserve(s.n);
        for (size_t i = 0; i < s.n; ++i)
            lines.push_back(rng.next() % s.space);
        expectMatchesNaive(lines, "random stream");
    }
}

TEST(ReuseStack, MatchesNaiveAcrossCompaction)
{
    // A small working set re-accessed far beyond the initial slot
    // capacity (1024): the clock crosses the capacity boundary many
    // times with mostly-dead marks, so compaction runs repeatedly.
    Lcg rng(99);
    std::vector<uint64_t> lines;
    for (size_t i = 0; i < 20000; ++i)
        lines.push_back(rng.next() % 16);
    expectMatchesNaive(lines, "compaction-crossing stream");
}

TEST(ReuseStack, MatchesNaiveAfterDoublingThenCompaction)
{
    // Phase 1 doubles the slot capacity (more than 512 live lines
    // when the clock first hits 1024); phase 2 hammers a tiny set so
    // the next boundary crossing finds mostly-dead marks and takes
    // the compaction path at the doubled capacity.
    std::vector<uint64_t> lines;
    for (uint64_t i = 0; i < 900; ++i)
        lines.push_back(i);
    Lcg rng(7);
    for (size_t i = 0; i < 6000; ++i)
        lines.push_back(rng.next() % 8);
    expectMatchesNaive(lines, "grow-then-shrink stream");
}

TEST(ReuseStack, MatchesNaiveOnAdversarialPatterns)
{
    // Cold: every access distinct.
    std::vector<uint64_t> cold;
    for (uint64_t i = 0; i < 3000; ++i)
        cold.push_back(i);
    expectMatchesNaive(cold, "all-cold stream");

    // Capacity: cyclic sweep larger than any fixed window.
    std::vector<uint64_t> cyclic;
    for (int round = 0; round < 5; ++round) {
        for (uint64_t i = 0; i < 700; ++i)
            cyclic.push_back(i);
    }
    expectMatchesNaive(cyclic, "cyclic sweep");

    // Conflict-style: two interleaved strides hammering alternately,
    // then a phase change to sawtooth (distance spectrum shifts).
    std::vector<uint64_t> conflict;
    for (uint64_t i = 0; i < 2000; ++i)
        conflict.push_back((i % 2) ? 0x1000 + (i % 37)
                                   : 0x9000 + (i % 53));
    for (uint64_t i = 0; i < 600; ++i) {
        conflict.push_back(i % 29);
        if (i % 7 == 0)
            conflict.push_back(0x1000 + (i % 37));
    }
    expectMatchesNaive(conflict, "conflict stream");
}

TEST(ReuseStack, FullWidthLineKeysProfileExactly)
{
    // Keys above 2^32 (external traces with wide addresses): the
    // engine hashes opaque u64 identifiers, so high bits must not
    // alias. Pairs differing only in bit 63 are distinct lines.
    std::vector<uint64_t> lines;
    for (int round = 0; round < 3; ++round) {
        for (uint64_t i = 0; i < 500; ++i) {
            lines.push_back(0xFFFFFFFF00000000ull + i);
            lines.push_back(i);
            lines.push_back((1ull << 63) | i);
        }
    }
    expectMatchesNaive(lines, "64-bit keys");
}

// ---------------------------------------------------------------------
// Closed-form histogram values (pencil and paper).
// ---------------------------------------------------------------------

TEST(ReuseStack, ClosedFormSequential)
{
    // Sequential: N distinct lines, never reused -> N cold, no
    // finite distances.
    profile::ReuseStack stack;
    for (uint64_t i = 0; i < 1000; ++i)
        stack.access(i);
    EXPECT_EQ(stack.histogram().coldAccesses, 1000u);
    EXPECT_TRUE(stack.histogram().counts.empty());
    EXPECT_EQ(stack.histogram().totalAccesses(), 1000u);
}

TEST(ReuseStack, ClosedFormCyclic)
{
    // Cyclic over k lines, r rounds: k cold accesses, then every
    // re-access has seen exactly the k-1 other lines since its last
    // use -> counts[k-1] == k*(r-1), nothing else.
    constexpr uint64_t k = 7, r = 40;
    profile::ReuseStack stack;
    for (uint64_t round = 0; round < r; ++round) {
        for (uint64_t i = 0; i < k; ++i)
            stack.access(i);
    }
    const profile::ReuseHistogram &hist = stack.histogram();
    EXPECT_EQ(hist.coldAccesses, k);
    ASSERT_EQ(hist.counts.size(), 1u);
    EXPECT_EQ(hist.counts.at(k - 1), k * (r - 1));
}

TEST(ReuseStack, ClosedFormStrided)
{
    // Strided repeated pass: stride-s touches over k distinct lines,
    // repeated. In line space this is cyclic over k lines, so the
    // histogram is the same single spike at k-1 — the line mapping,
    // not the byte stride, decides the distance.
    constexpr uint64_t k = 11, stride = 3, r = 20;
    profile::ReuseStack stack;
    for (uint64_t round = 0; round < r; ++round) {
        for (uint64_t i = 0; i < k; ++i)
            stack.access(0x4000 + i * stride);
    }
    const profile::ReuseHistogram &hist = stack.histogram();
    EXPECT_EQ(hist.coldAccesses, k);
    ASSERT_EQ(hist.counts.size(), 1u);
    EXPECT_EQ(hist.counts.at(k - 1), k * (r - 1));
}

TEST(ReuseStack, ClosedFormRepeatedLine)
{
    profile::ReuseStack stack;
    for (int i = 0; i < 500; ++i)
        stack.access(42);
    EXPECT_EQ(stack.histogram().coldAccesses, 1u);
    EXPECT_EQ(stack.histogram().counts.at(0), 499u);
}

TEST(Collector, LineAliasingAtLineGranularity)
{
    // Addresses inside one 64B line are the same line: interleaving
    // byte offsets within two lines yields distance 0/1 patterns,
    // never cold after the first touch of each line.
    timing::TimingConfig cfg;
    profile::Collector collector(cfg);
    // a and b are distinct lines; all offsets alias within each.
    const uint32_t a = 0x10000, b = 0x10040;
    collector.consume(memRecord(a));
    collector.consume(memRecord(a + 63));        // same line: d=0
    collector.consume(memRecord(b, true));       // cold
    collector.consume(memRecord(b + 32));        // same line: d=0
    collector.consume(memRecord(a + 17, true));  // one line between: d=1
    const profile::RunProfile prof = collector.profile();
    EXPECT_EQ(prof.lineBytes, 64u);
    EXPECT_EQ(prof.dataReuse.coldAccesses, 2u);
    EXPECT_EQ(prof.dataReuse.counts.at(0), 2u);
    EXPECT_EQ(prof.dataReuse.counts.at(1), 1u);
    // Non-memory records must not touch the data histogram.
    collector.consume(condBranch(0x100, true));
    EXPECT_EQ(collector.profile().dataReuse.totalAccesses(), 5u);
}

// ---------------------------------------------------------------------
// Closed-form branch profiles.
// ---------------------------------------------------------------------

TEST(BranchProfile, ClosedFormEntropyAndTransitions)
{
    timing::TimingConfig cfg;
    profile::BranchCollector collector(cfg);

    // Site A: always taken, 100 execs -> entropy exactly 0, no
    // transitions. Site B: perfectly alternating, 100 execs -> taken
    // rate exactly 1/2, entropy exactly 1 bit, transition rate
    // exactly 1 (99 transitions / 99 adjacent pairs).
    for (int i = 0; i < 100; ++i)
        collector.branch(condBranch(0x100, true));
    for (int i = 0; i < 100; ++i)
        collector.branch(condBranch(0x200, i % 2 == 0));

    const profile::BranchProfile &prof = collector.profile();
    ASSERT_EQ(prof.sites.size(), 2u);
    const profile::BranchSite &a = prof.sites.at(0x100);
    const profile::BranchSite &b = prof.sites.at(0x200);

    EXPECT_EQ(a.taken, 100u);
    EXPECT_EQ(a.notTaken, 0u);
    EXPECT_EQ(a.transitions, 0u);
    EXPECT_EQ(a.entropy(), 0.0);        // exact: p == 1
    EXPECT_EQ(a.transitionRate(), 0.0);

    EXPECT_EQ(b.taken, 50u);
    EXPECT_EQ(b.notTaken, 50u);
    EXPECT_EQ(b.transitions, 99u);
    EXPECT_EQ(b.takenRate(), 0.5);      // exact: 50/100
    EXPECT_EQ(b.entropy(), 1.0);        // exact: H(1/2) = 1 bit
    EXPECT_EQ(b.transitionRate(), 1.0); // exact: 99/99

    EXPECT_EQ(prof.dynBranches, 200u);
    EXPECT_EQ(prof.dynCondBranches, 200u);
    EXPECT_EQ(prof.staticCondSites(), 2u);
    // Weighted aggregates: equal weights -> (0 + 1)/2 exactly.
    EXPECT_EQ(prof.weightedEntropy(), 0.5);
    // Aggregate transition rate: (0 + 99) / (99 + 99) = 1/2 exactly.
    EXPECT_EQ(prof.transitionRate(), 0.5);
}

TEST(BranchProfile, EntropyIsExactlyOneBitOnlyWhenUnbiased)
{
    profile::BranchSite site;
    site.isCond = true;
    site.taken = 3;
    site.notTaken = 1;
    const double h = site.entropy();   // H(3/4) = 2 - (3/4)log2(3)
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
    EXPECT_NEAR(h, 0.8112781244591328, 1e-15);
}

// ---------------------------------------------------------------------
// Analytic LRU model.
// ---------------------------------------------------------------------

TEST(Analytic, ExpectedMissesFromHandHistogram)
{
    // cold=10, counts {0:5, 3:7, 8:2}. An L-line LRU hits d < L.
    profile::ReuseHistogram hist;
    hist.coldAccesses = 10;
    hist.counts[0] = 5;
    hist.counts[3] = 7;
    hist.counts[8] = 2;
    EXPECT_EQ(hist.totalAccesses(), 24u);
    // L=1: only d=0 hits -> misses 10+7+2.
    EXPECT_EQ(profile::analytic::expectedLruMisses(hist, 1), 19u);
    // L=4: d=0,3 hit -> misses 10+2.
    EXPECT_EQ(profile::analytic::expectedLruMisses(hist, 4), 12u);
    // L=9: everything finite hits -> cold only.
    EXPECT_EQ(profile::analytic::expectedLruMisses(hist, 9), 10u);
    EXPECT_EQ(profile::analytic::expectedLruHits(hist, 4), 12u);

    const auto curve = profile::analytic::missRatioCurve(hist);
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.front().lines, 1u);
    EXPECT_EQ(curve.front().misses, 19u);
    EXPECT_EQ(curve.back().misses, hist.coldAccesses);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i].misses, curve[i - 1].misses);
}

// ---------------------------------------------------------------------
// End-to-end: analytic oracle == simulated cache, per paper suite.
// ---------------------------------------------------------------------

class ProfileOracle : public testing::TestWithParam<const char *>
{};

TEST_P(ProfileOracle, AnalyticLruEqualsSimulatedMisses)
{
    // Fully-associative true-LRU L1-D (one set, 512 ways): Mattson's
    // inclusion property says its misses are exactly the histogram's
    // cold + (distance >= 512) accesses. The profile collector and
    // the pipeline consume the same record stream in the same order,
    // so the counts must be equal — not approximately, exactly.
    constexpr uint32_t kLines = 512;
    sim::MetricsOptions options;
    options.guestBudget = 150'000;
    options.profile = true;
    options.timingConfig.l1d = {kLines * 64, 64, kLines, 1, true};

    const workloads::Workload workload = workloads::resolveWorkload(
        workloads::syntheticUri(GetParam()));
    const sim::RunSnapshot snap = sim::snapshotRun(workload, options);
    ASSERT_TRUE(snap.profile.has_value());
    const profile::RunProfile &prof = *snap.profile;

    // Same stream: every L1-D demand access is one profiled access.
    EXPECT_EQ(prof.dataReuse.totalAccesses(), snap.stats.l1d.accesses);
    // The oracle: exact equality of expected and simulated misses.
    EXPECT_EQ(
        profile::analytic::expectedLruMisses(prof.dataReuse, kLines),
        snap.stats.l1d.misses);

    // Mispredict attribution parity: the replica predictor saw the
    // same branch stream as the pipeline's, so every counter agrees.
    EXPECT_EQ(prof.branches.dynBranches, snap.stats.bp.branches);
    EXPECT_EQ(prof.branches.dynCondBranches,
              snap.stats.bp.condBranches);
    EXPECT_EQ(prof.branches.mispredicts, snap.stats.bp.mispredicts);

    // The profile is a real characterization: a workload touches
    // memory and branches.
    EXPECT_GT(prof.dataReuse.totalAccesses(), 0u);
    EXPECT_GT(prof.branches.dynBranches, 0u);
}

TEST_P(ProfileOracle, AnalyticLruEqualsSimulatedAtTinyCapacity)
{
    // Same oracle at a capacity small enough (8 lines) that capacity
    // misses dominate — exercises the d >= L tail, not just cold
    // misses.
    constexpr uint32_t kLines = 8;
    sim::MetricsOptions options;
    options.guestBudget = 60'000;
    options.profile = true;
    options.timingConfig.l1d = {kLines * 64, 64, kLines, 1, true};

    const workloads::Workload workload = workloads::resolveWorkload(
        workloads::syntheticUri(GetParam()));
    const sim::RunSnapshot snap = sim::snapshotRun(workload, options);
    ASSERT_TRUE(snap.profile.has_value());
    const profile::RunProfile &prof = *snap.profile;
    EXPECT_EQ(prof.dataReuse.totalAccesses(), snap.stats.l1d.accesses);
    EXPECT_EQ(
        profile::analytic::expectedLruMisses(prof.dataReuse, kLines),
        snap.stats.l1d.misses);
    // Tiny capacity on a real workload must actually miss beyond
    // cold (otherwise this test proves nothing).
    EXPECT_GT(snap.stats.l1d.misses, prof.dataReuse.coldAccesses);
}

INSTANTIATE_TEST_SUITE_P(
    FourSuites, ProfileOracle,
    testing::Values("464.h264ref", "436.cactusADM",
                    "104.novis_explosions", "005.h264enc"),
    [](const testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Determinism and plumbing.
// ---------------------------------------------------------------------

TEST(ProfilePlumbing, OffByDefaultAndIdenticalWhenRepeated)
{
    const workloads::Workload workload =
        workloads::resolveWorkload("429.mcf");
    sim::MetricsOptions options;
    options.guestBudget = 60'000;
    const sim::RunSnapshot off = sim::snapshotRun(workload, options);
    EXPECT_FALSE(off.profile.has_value());
    const sim::BenchMetrics moff =
        sim::collectMetrics(off, workload.name, workload.suite);
    EXPECT_FALSE(moff.haveProfile);

    options.profile = true;
    const sim::RunSnapshot a = sim::snapshotRun(workload, options);
    const sim::RunSnapshot b = sim::snapshotRun(workload, options);
    ASSERT_TRUE(a.profile.has_value());
    ASSERT_TRUE(b.profile.has_value());
    EXPECT_EQ(profile::diffProfiles(*a.profile, *b.profile), "");
    EXPECT_TRUE(*a.profile == *b.profile);

    // Profiling is observation only: it must not change any measured
    // quantity of the run itself.
    EXPECT_EQ(off.result.cycles, a.result.cycles);
    EXPECT_EQ(off.result.guestRetired, a.result.guestRetired);
    EXPECT_EQ(timing::diffStats(off.stats, a.stats), "");

    // Metrics summarize the profile.
    const sim::BenchMetrics m =
        sim::collectMetrics(a, workload.name, workload.suite);
    EXPECT_TRUE(m.haveProfile);
    EXPECT_EQ(m.profDataAccesses, a.profile->dataReuse.totalAccesses());
    EXPECT_EQ(m.profDistinctLines, a.profile->dataReuse.coldAccesses);
    EXPECT_GT(m.profBranchEntropy, 0.0);
    EXPECT_LE(m.profBranchEntropy, 1.0);
}

TEST(ProfilePlumbing, DiffProfilesLocalizesMismatches)
{
    profile::RunProfile a, b;
    EXPECT_EQ(profile::diffProfiles(a, b), "");
    b.dataReuse.counts[5] = 1;
    a.dataReuse.counts[5] = 2;
    const std::string diff = profile::diffProfiles(a, b);
    EXPECT_NE(diff.find("distance 5"), std::string::npos) << diff;
    a = profile::RunProfile();
    b = profile::RunProfile();
    a.branches.sites[0x40].taken = 1;
    b.branches.sites[0x40].taken = 2;
    b.branches.dynBranches = 1;
    const std::string diff2 = profile::diffProfiles(a, b);
    EXPECT_NE(diff2.find("dynBranches"), std::string::npos) << diff2;
    EXPECT_NE(diff2.find("0x40"), std::string::npos) << diff2;

    // The localization must skip a shared equal prefix: identical
    // entries at distances 1/2 and site 0x10, first divergence at
    // distance 9 / site 0x80.
    a = profile::RunProfile();
    b = profile::RunProfile();
    a.dataReuse.counts[1] = 4;
    b.dataReuse.counts[1] = 4;
    a.dataReuse.counts[2] = 7;
    b.dataReuse.counts[2] = 7;
    a.dataReuse.counts[9] = 1;
    b.dataReuse.counts[9] = 2;
    a.branches.sites[0x10].taken = 3;
    b.branches.sites[0x10].taken = 3;
    a.branches.sites[0x80].notTaken = 1;
    b.branches.sites[0x80].notTaken = 2;
    const std::string diff3 = profile::diffProfiles(a, b);
    EXPECT_NE(diff3.find("distance 9"), std::string::npos) << diff3;
    EXPECT_NE(diff3.find("0x80"), std::string::npos) << diff3;

    // One histogram a strict prefix of the other: the divergence is
    // the extra entry only the longer side has.
    a = profile::RunProfile();
    b = profile::RunProfile();
    a.dataReuse.counts[3] = 5;
    b.dataReuse.counts[3] = 5;
    b.dataReuse.counts[42] = 1;
    const std::string diff4 = profile::diffProfiles(a, b);
    EXPECT_NE(diff4.find("distance 42"), std::string::npos) << diff4;
}

TEST(ProfilePlumbing, JournalRoundTripsProfiles)
{
    // The campaign journal must carry profiles: serialize an entry
    // with a non-trivial profile, load it back, require bit-identity.
    const std::string path =
        testing::TempDir() + "profile_journal.jsonl";
    std::remove(path.c_str());

    runner::JournalEntry e;
    e.jobIndex = 3;
    e.workload = "429.mcf";
    e.fingerprint = 0xDEADBEEFCAFEF00Dull;
    e.name = "429.mcf";
    e.suite = "SPEC INT";
    e.uri = "source://synthetic/429.mcf";
    profile::RunProfile prof;
    prof.lineBytes = 64;
    prof.dataReuse.coldAccesses = 17;
    prof.dataReuse.counts[0] = 3;
    prof.dataReuse.counts[1000000007ull] = 9;
    prof.branches.dynBranches = 21;
    prof.branches.dynCondBranches = 13;
    prof.branches.mispredicts = 4;
    profile::BranchSite site;
    site.taken = 8;
    site.notTaken = 5;
    site.transitions = 6;
    site.mispredicts = 4;
    site.isCond = true;
    prof.branches.sites[0x1234] = site;
    site.isCond = false;
    site.isIndirect = true;
    prof.branches.sites[0xFFFFFFFC] = site;
    e.snapshot.profile = prof;

    {
        runner::Journal journal(path);
        journal.append(e);
    }
    const runner::JournalLoad load = runner::loadJournal(path);
    EXPECT_EQ(load.skippedLines, 0u);
    ASSERT_EQ(load.entries.size(), 1u);
    ASSERT_TRUE(load.entries[0].snapshot.profile.has_value());
    EXPECT_EQ(profile::diffProfiles(*load.entries[0].snapshot.profile,
                                    prof), "");
    EXPECT_TRUE(*load.entries[0].snapshot.profile == prof);
    std::remove(path.c_str());
}

TEST(ProfilePlumbing, OptionsConfigRoundTripCarriesProfile)
{
    sim::MetricsOptions options;
    options.profile = true;
    const sim::SimConfig cfg = sim::configFromOptions(options);
    EXPECT_TRUE(cfg.profile);
    EXPECT_TRUE(sim::optionsFromConfig(cfg).profile);
    // And the fingerprint distinguishes profiled from unprofiled
    // experiments (a journal entry from one must not satisfy the
    // other).
    sim::MetricsOptions off;
    EXPECT_NE(runner::configFingerprint(options, "w", true),
              runner::configFingerprint(off, "w", true));
}

// ---------------------------------------------------------------------
// True-LRU cache mode.
// ---------------------------------------------------------------------

TEST(TrueLru, DiffersFromPlruExactlyWhereItShould)
{
    // 4-way, 1 set, true LRU: access A B C D, touch A, then fill E.
    // LRU evicts B; a subsequent B access must miss and A must hit.
    timing::CacheGeometry geom{4 * 64, 64, 4, 1, true};
    timing::Cache cache(geom, nullptr, 10);
    bool miss = false;
    const uint32_t A = 0, B = 64, C = 128, D = 192, E = 256;
    for (uint32_t addr : {A, B, C, D})
        cache.access(addr, false, miss);
    cache.access(A, false, miss);
    EXPECT_FALSE(miss);
    cache.access(E, false, miss);
    EXPECT_TRUE(miss);
    EXPECT_TRUE(cache.probe(A));
    EXPECT_FALSE(cache.probe(B));   // true LRU victim
    cache.access(B, false, miss);
    EXPECT_TRUE(miss);
}

} // namespace
