/**
 * @file
 * Semantic tests of the authoritative emulator: per-instruction flag
 * behaviour against hand-computed x86 results, and small programs
 * (factorial, memcpy, fibonacci, call trees) built with the
 * assembler.
 */

#include <gtest/gtest.h>

#include "guest/assembler.hh"
#include "guest/emulator.hh"

namespace dg = darco::guest;
using dg::Assembler;
using dg::mem;

namespace {

/** Assemble, load and run up to @p max instructions; return emulator. */
struct Runner
{
    dg::Memory memory;
    dg::Emulator emu{memory};

    explicit Runner(Assembler &as,
                    std::vector<dg::Program::DataSegment> data = {})
    {
        dg::Program prog;
        prog.code = as.finalize(prog.codeBase);
        prog.entry = prog.codeBase;
        prog.data = std::move(data);
        emu.reset(prog);
    }

    void
    run(uint64_t max = 100000)
    {
        emu.run(max);
        ASSERT_TRUE(emu.isHalted()) << "program did not halt";
    }

    uint32_t reg(dg::Reg r) const { return emu.state().gpr[r]; }
    uint32_t flags() const { return emu.state().eflags; }
};

} // namespace

TEST(GuestEmulator, MovAndArithmetic)
{
    Assembler as;
    as.mov(dg::EAX, 10);
    as.mov(dg::EBX, 32);
    as.add(dg::EAX, dg::EBX);   // 42
    as.mov(dg::ECX, dg::EAX);
    as.sub(dg::ECX, 2);         // 40
    as.imul(dg::ECX, 3);        // 120
    as.halt();

    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 42u);
    EXPECT_EQ(r.reg(dg::ECX), 120u);
}

TEST(GuestEmulator, AddFlagsCarryOverflow)
{
    // 0x7FFFFFFF + 1: OF set, CF clear, SF set.
    Assembler as;
    as.mov(dg::EAX, 0x7FFFFFFF);
    as.add(dg::EAX, 1);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_TRUE(r.flags() & dg::flag::OF);
    EXPECT_FALSE(r.flags() & dg::flag::CF);
    EXPECT_TRUE(r.flags() & dg::flag::SF);
    EXPECT_FALSE(r.flags() & dg::flag::ZF);
}

TEST(GuestEmulator, AddFlagsCarryWrap)
{
    // 0xFFFFFFFF + 1 = 0: CF set, ZF set, OF clear.
    Assembler as;
    as.mov(dg::EAX, -1);
    as.add(dg::EAX, 1);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_TRUE(r.flags() & dg::flag::CF);
    EXPECT_TRUE(r.flags() & dg::flag::ZF);
    EXPECT_FALSE(r.flags() & dg::flag::OF);
    EXPECT_TRUE(r.flags() & dg::flag::PF);  // 0x00 has even parity
}

TEST(GuestEmulator, SubCmpFlags)
{
    // 5 - 7: CF set (borrow), SF set.
    Assembler as;
    as.mov(dg::EAX, 5);
    as.cmp(dg::EAX, 7);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_TRUE(r.flags() & dg::flag::CF);
    EXPECT_TRUE(r.flags() & dg::flag::SF);
    EXPECT_EQ(r.reg(dg::EAX), 5u);  // CMP does not write back
}

TEST(GuestEmulator, IncPreservesCarry)
{
    Assembler as;
    as.mov(dg::EAX, -1);
    as.add(dg::EAX, 1);     // sets CF
    as.mov(dg::EBX, 1);
    as.inc(dg::EBX);        // must keep CF
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_TRUE(r.flags() & dg::flag::CF);
    EXPECT_EQ(r.reg(dg::EBX), 2u);
}

TEST(GuestEmulator, ShiftFlags)
{
    Assembler as;
    as.mov(dg::EAX, 0x80000001);
    as.shl(dg::EAX, 1);     // CF = old bit 31 = 1
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 2u);
    EXPECT_TRUE(r.flags() & dg::flag::CF);
}

TEST(GuestEmulator, ShiftByZeroClearsCarrySetsZSP)
{
    // Documented GX86 deviation: count==0 still sets Z/S/P, CF=0.
    Assembler as;
    as.mov(dg::EAX, -1);
    as.add(dg::EAX, 1);      // CF=1
    as.mov(dg::EBX, 5);
    as.mov(dg::ECX, 0);
    as.shl(dg::EBX, dg::ECX);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_FALSE(r.flags() & dg::flag::CF);
    EXPECT_FALSE(r.flags() & dg::flag::ZF);
    EXPECT_EQ(r.reg(dg::EBX), 5u);
}

TEST(GuestEmulator, IdivQuotientRemainder)
{
    Assembler as;
    as.mov(dg::EAX, 47);
    as.mov(dg::ECX, 5);
    as.idiv(dg::ECX);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 9u);
    EXPECT_EQ(r.reg(dg::EDX), 2u);
}

TEST(GuestEmulator, IdivByZeroIsTotal)
{
    Assembler as;
    as.mov(dg::EAX, 47);
    as.mov(dg::ECX, 0);
    as.idiv(dg::ECX);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 0u);
    EXPECT_EQ(r.reg(dg::EDX), 47u);
}

TEST(GuestEmulator, Negatives)
{
    Assembler as;
    as.mov(dg::EAX, 17);
    as.neg(dg::EAX);
    as.mov(dg::EBX, 0);
    as.not_(dg::EBX);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), static_cast<uint32_t>(-17));
    EXPECT_EQ(r.reg(dg::EBX), 0xFFFFFFFFu);
    EXPECT_TRUE(r.flags() & dg::flag::CF);  // NEG of non-zero
}

TEST(GuestEmulator, StackPushPop)
{
    Assembler as;
    as.mov(dg::EAX, 111);
    as.mov(dg::EBX, 222);
    as.push(dg::EAX);
    as.push(dg::EBX);
    as.pop(dg::ECX);   // 222
    as.pop(dg::EDX);   // 111
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::ECX), 222u);
    EXPECT_EQ(r.reg(dg::EDX), 111u);
    EXPECT_EQ(r.reg(dg::ESP), dg::layout::kStackTop);
}

TEST(GuestEmulator, PushEspPushesOriginalValue)
{
    Assembler as;
    as.push(dg::ESP);
    as.pop(dg::EAX);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), dg::layout::kStackTop);
}

TEST(GuestEmulator, LoopFactorial)
{
    // EAX = 7!
    Assembler as;
    as.mov(dg::EAX, 1);
    as.mov(dg::ECX, 7);
    auto loop = as.newLabel();
    as.bind(loop);
    as.imul(dg::EAX, dg::ECX);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 5040u);
}

TEST(GuestEmulator, MemcpyBytes)
{
    const uint32_t src = dg::layout::kDataBase;
    const uint32_t dst = dg::layout::kDataBase + 0x1000;
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

    Assembler as;
    as.mov(dg::ESI, static_cast<int32_t>(src));
    as.mov(dg::EDI, static_cast<int32_t>(dst));
    as.mov(dg::ECX, static_cast<int32_t>(payload.size()));
    auto loop = as.newLabel();
    as.bind(loop);
    as.movb(dg::EAX, mem(dg::ESI));
    as.movb(mem(dg::EDI), dg::EAX);
    as.inc(dg::ESI);
    as.inc(dg::EDI);
    as.dec(dg::ECX);
    as.jcc(dg::Cond::NE, loop);
    as.halt();

    Runner r(as, {{src, payload}});
    r.run();
    for (size_t i = 0; i < payload.size(); ++i) {
        EXPECT_EQ(r.memory.load8(dst + static_cast<uint32_t>(i)),
                  payload[i]);
    }
}

TEST(GuestEmulator, CallRet)
{
    Assembler as;
    auto fn = as.newLabel();
    as.mov(dg::EAX, 5);
    as.call(fn);
    as.add(dg::EAX, 100);  // after return: 10 + 100
    as.halt();
    as.bind(fn);
    as.add(dg::EAX, dg::EAX);  // double it
    as.ret();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 110u);
}

TEST(GuestEmulator, IndirectCallViaRegister)
{
    Assembler as;
    auto fn = as.newLabel();
    as.movLabel(dg::EBX, fn);
    as.mov(dg::EAX, 1);
    as.calli(dg::EBX);
    as.add(dg::EAX, 10);
    as.halt();
    as.bind(fn);
    as.add(dg::EAX, 100);
    as.ret();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EAX), 111u);
}

TEST(GuestEmulator, JumpTableDispatch)
{
    // Jump table with 3 targets in a data segment; select case 2.
    Assembler as;
    auto case0 = as.newLabel();
    auto case1 = as.newLabel();
    auto case2 = as.newLabel();
    auto end = as.newLabel();
    as.mov(dg::EBX, static_cast<int32_t>(dg::layout::kDataBase));
    as.mov(dg::ECX, 2);  // selector
    as.jmpi(mem(dg::EBX, dg::ECX, 2));
    as.bind(case0);
    as.mov(dg::EAX, 100);
    as.jmp(end);
    as.bind(case1);
    as.mov(dg::EAX, 200);
    as.jmp(end);
    as.bind(case2);
    as.mov(dg::EAX, 300);
    as.jmp(end);
    as.bind(end);
    as.halt();

    dg::Program prog;
    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;
    std::vector<uint8_t> table(12);
    const uint32_t targets[3] = {as.labelAddr(case0),
                                 as.labelAddr(case1),
                                 as.labelAddr(case2)};
    memcpy(table.data(), targets, 12);
    prog.data.push_back({dg::layout::kDataBase, table});

    dg::Memory memory;
    dg::Emulator emu(memory);
    emu.reset(prog);
    emu.run(1000);
    ASSERT_TRUE(emu.isHalted());
    EXPECT_EQ(emu.state().gpr[dg::EAX], 300u);
}

TEST(GuestEmulator, FloatingPoint)
{
    Assembler as;
    as.mov(dg::EAX, 9);
    as.cvtif(dg::F0, dg::EAX);
    as.fsqrt(dg::F1, dg::F0);      // 3.0
    as.fadd(dg::F1, dg::F1);       // 6.0
    as.fmul(dg::F1, dg::F0);       // 54.0
    as.cvtfi(dg::EBX, dg::F1);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EBX), 54u);
    EXPECT_DOUBLE_EQ(r.emu.state().fpr[dg::F1], 54.0);
}

TEST(GuestEmulator, FcmpBranches)
{
    Assembler as;
    auto less = as.newLabel();
    as.mov(dg::EAX, 1);
    as.cvtif(dg::F0, dg::EAX);
    as.mov(dg::EAX, 2);
    as.cvtif(dg::F1, dg::EAX);
    as.fcmp(dg::F0, dg::F1);       // 1.0 < 2.0 -> CF
    as.jcc(dg::Cond::B, less);
    as.mov(dg::EBX, 0);
    as.halt();
    as.bind(less);
    as.mov(dg::EBX, 1);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EBX), 1u);
}

TEST(GuestEmulator, CvtfiClampSemantics)
{
    Assembler as;
    as.mov(dg::EAX, 0x7FFFFFFF);
    as.cvtif(dg::F0, dg::EAX);
    as.fmul(dg::F0, dg::F0);       // way out of range
    as.cvtfi(dg::EBX, dg::F0);
    as.halt();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.reg(dg::EBX), 0x80000000u);
}

TEST(GuestEmulator, StatsCountsBranchKinds)
{
    Assembler as;
    auto fn = as.newLabel();
    as.call(fn);
    as.halt();
    as.bind(fn);
    as.ret();
    Runner r(as);
    r.run();
    EXPECT_EQ(r.emu.emuStats().calls, 1u);
    EXPECT_EQ(r.emu.emuStats().returns, 1u);
    EXPECT_EQ(r.emu.emuStats().indirectBranches, 1u);  // the RET
}
