/**
 * @file
 * Fault-tolerance gates (docs/robustness.md): every RunError class
 * must be producible and classified without message matching, the
 * retry policy must re-run exactly the transient classes with the
 * deterministic backoff schedule, a watchdog-cancelled job must
 * report Timeout with partial metrics while its batch completes, and
 * a SIGKILLed campaign must resume from its journal bit-identically
 * to an uninterrupted run.
 *
 * This binary has a custom main: it arms fault-injection points from
 * DARCO_FAULTINJECT (so child processes can be armed through the
 * environment) and, when DARCO_FT_CAMPAIGN_CHILD is set, runs the
 * kill-and-resume campaign instead of the test suite. The parent
 * test re-execs itself (/proc/self/exe) in that mode with
 * journal-kill armed, so the process really dies mid-campaign with
 * SIGKILL — no in-process simulation of a crash.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/faultinject.hh"
#include "common/logging.hh"
#include "guest/assembler.hh"
#include "runner/batch_runner.hh"
#include "runner/journal.hh"
#include "sim/metrics.hh"
#include "sim/run_error.hh"
#include "timing/pipeline.hh"
#include "tol/stats.hh"
#include "trace/trace.hh"
#include "workloads/params.hh"
#include "workloads/source.hh"

using namespace darco;
namespace g = darco::guest;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Disarm every injection point on entry and exit, so a failing
 *  EXPECT cannot leak an armed point into the next test. */
struct FaultClear
{
    FaultClear() { faultinject::disarmAll(); }
    ~FaultClear() { faultinject::disarmAll(); }
};

sim::MetricsOptions
smallOptions(uint64_t budget)
{
    sim::MetricsOptions options;
    options.guestBudget = budget;
    options.tolConfig.bbToSbThreshold = sim::scaledSbThreshold(budget);
    return options;
}

runner::BatchJob
makeJob(std::string uri, sim::MetricsOptions options)
{
    runner::BatchJob job;
    job.workload = std::move(uri);
    job.options = std::move(options);
    return job;
}

/** A small guest that reaches HALT well inside its budget. */
trace::TraceFile
haltingTraceFile()
{
    g::Assembler as;
    as.mov(g::EAX, 0);
    as.mov(g::ECX, 400);
    auto loop = as.newLabel();
    as.bind(loop);
    as.add(g::EAX, g::ECX);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
    as.halt();

    trace::TraceFile file;
    file.meta.name = "ft-halting";
    file.meta.suite = "FT";
    file.meta.guestBudget = 20'000;
    file.meta.imToBbThreshold = 5;
    file.meta.bbToSbThreshold = 300;
    file.program.code = as.finalize(file.program.codeBase);
    file.program.entry = file.program.codeBase;
    return file;
}

/** A structurally valid trace whose code bytes are not decodable
 *  guest instructions (every opcode byte past Op::NumOps). */
trace::TraceFile
badOpcodeTraceFile()
{
    trace::TraceFile file;
    file.meta.name = "ft-badop";
    file.meta.suite = "FT";
    file.meta.guestBudget = 1000;
    file.meta.imToBbThreshold = 5;
    file.meta.bbToSbThreshold = 300;
    file.program.code.assign(64, 0xFF);
    file.program.entry = file.program.codeBase;
    return file;
}

std::string
writeTempTrace(const std::string &name, const trace::TraceFile &file)
{
    const std::string path = tempPath(name);
    trace::writeTrace(path, file);
    return path;
}

/**
 * The kill-and-resume campaign: 8 benchmarks x 3 budgets = 24 jobs.
 * Parent, child and the serial reference all build the batch through
 * this one function, so the fingerprints line up by construction.
 */
std::vector<runner::BatchJob>
campaignJobs()
{
    const auto &all = workloads::allBenchmarks();
    std::vector<runner::BatchJob> jobs;
    for (size_t i = 0; i < 8 && i < all.size(); ++i) {
        for (const uint64_t budget : {40'000u, 60'000u, 80'000u}) {
            jobs.push_back(makeJob(workloads::syntheticUri(all[i].name),
                                   smallOptions(budget)));
        }
    }
    return jobs;
}

/** Per-slot bit-identity: the journal/replay acceptance currency. */
void
expectIdenticalSlots(const std::vector<runner::JobResult> &got,
                     const std::vector<runner::JobResult> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE(want[i].uri + strprintf(" (job %zu)", i));
        EXPECT_TRUE(got[i].ok);
        EXPECT_TRUE(want[i].ok);
        EXPECT_EQ(got[i].name, want[i].name);
        EXPECT_EQ(got[i].suite, want[i].suite);
        EXPECT_EQ(got[i].snapshot.result.guestRetired,
                  want[i].snapshot.result.guestRetired);
        EXPECT_EQ(got[i].snapshot.result.cycles,
                  want[i].snapshot.result.cycles);
        EXPECT_EQ(got[i].snapshot.result.halted,
                  want[i].snapshot.result.halted);
        EXPECT_EQ(got[i].snapshot.timingCore,
                  want[i].snapshot.timingCore);
        EXPECT_EQ(timing::diffStats(got[i].snapshot.stats,
                                    want[i].snapshot.stats), "");
        EXPECT_EQ(tol::diffTolStats(got[i].snapshot.tolStats,
                                    want[i].snapshot.tolStats), "");
        // Figure metrics are pure functions of the snapshot
        // (sim::collectMetrics); spot-check the headline fields.
        EXPECT_EQ(got[i].metrics.dynSbm, want[i].metrics.dynSbm);
        EXPECT_EQ(got[i].metrics.cycles, want[i].metrics.cycles);
        EXPECT_DOUBLE_EQ(got[i].metrics.tolCycles,
                         want[i].metrics.tolCycles);
    }
}

// ---------------------------------------------------------------------
// Taxonomy basics.
// ---------------------------------------------------------------------

TEST(RunErrorTaxonomy, ClassNamesRoundTrip)
{
    using sim::RunErrorClass;
    for (const RunErrorClass cls : {
             RunErrorClass::None, RunErrorClass::BadWorkload,
             RunErrorClass::TraceCorrupt, RunErrorClass::GuestFault,
             RunErrorClass::BudgetExhausted, RunErrorClass::Timeout,
             RunErrorClass::IoTransient, RunErrorClass::Internal}) {
        EXPECT_EQ(sim::runErrorClassFromName(
                      sim::runErrorClassName(cls)), cls);
    }
    EXPECT_EQ(sim::runErrorClassFromName("NoSuchClass"),
              RunErrorClass::None);
}

TEST(RunErrorTaxonomy, TransiencePolicy)
{
    using sim::RunErrorClass;
    const auto transient = [](RunErrorClass cls) {
        return sim::RunError{cls, "u", "c"}.transient();
    };
    EXPECT_TRUE(transient(RunErrorClass::Timeout));
    EXPECT_TRUE(transient(RunErrorClass::IoTransient));
    EXPECT_FALSE(transient(RunErrorClass::BadWorkload));
    EXPECT_FALSE(transient(RunErrorClass::TraceCorrupt));
    EXPECT_FALSE(transient(RunErrorClass::GuestFault));
    EXPECT_FALSE(transient(RunErrorClass::BudgetExhausted));
    EXPECT_FALSE(transient(RunErrorClass::Internal));

    const sim::RunError e{RunErrorClass::TraceCorrupt, "source://x",
                          "CSUM mismatch"};
    EXPECT_EQ(e.describe(), "TraceCorrupt (permanent): CSUM mismatch");
    const sim::RunError t{RunErrorClass::Timeout, "source://x",
                          "deadline"};
    EXPECT_EQ(t.describe(), "Timeout (transient): deadline");
}

TEST(RunErrorTaxonomy, BackoffIsDeterministicAndBounded)
{
    EXPECT_EQ(runner::backoffDelayMs(100, 0), 100u);
    EXPECT_EQ(runner::backoffDelayMs(100, 1), 200u);
    EXPECT_EQ(runner::backoffDelayMs(100, 5), 3200u);
    EXPECT_EQ(runner::backoffDelayMs(100, 6), 6400u);
    // Saturates: attempt 7, 20, ... all cap at base * 64.
    EXPECT_EQ(runner::backoffDelayMs(100, 7), 6400u);
    EXPECT_EQ(runner::backoffDelayMs(100, 20), 6400u);
}

TEST(FaultInject, ArmedCountSemantics)
{
    FaultClear clear;
    EXPECT_FALSE(faultinject::anyArmed());
    EXPECT_FALSE(faultinject::fire(faultinject::Point::TraceIoFail));

    faultinject::arm(faultinject::Point::TraceIoFail, 2, 7);
    EXPECT_TRUE(faultinject::anyArmed());
    EXPECT_EQ(faultinject::pending(faultinject::Point::TraceIoFail), 2u);
    EXPECT_EQ(faultinject::param(faultinject::Point::TraceIoFail), 7u);
    EXPECT_TRUE(faultinject::fire(faultinject::Point::TraceIoFail));
    EXPECT_TRUE(faultinject::fire(faultinject::Point::TraceIoFail));
    // Exhausted after `count` firings; other points never armed.
    EXPECT_FALSE(faultinject::fire(faultinject::Point::TraceIoFail));
    EXPECT_FALSE(faultinject::fire(faultinject::Point::MidRunThrow));
    EXPECT_FALSE(faultinject::anyArmed());
}

// ---------------------------------------------------------------------
// Classification: every class producible, correct retry behaviour.
// ---------------------------------------------------------------------

TEST(Classify, UnknownWorkloadIsBadWorkloadNeverRetried)
{
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 3;      // permanent => must not be used
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::syntheticUri("no-such-benchmark"),
                 smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    const runner::JobResult &r = results[0];
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.runError.cls, sim::RunErrorClass::BadWorkload);
    EXPECT_FALSE(r.runError.transient());
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.backoffMsApplied, 0u);
}

TEST(Classify, CorruptTraceIsTraceCorruptNeverRetried)
{
    const std::string path =
        writeTempTrace("ft_corrupt.dtrc", haltingTraceFile());
    // Flip one byte in the middle: CSUM catches it, and the reader
    // reports Corrupt — re-reading the same bytes cannot help.
    FILE *fp = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 0, SEEK_END);
    const long size = std::ftell(fp);
    std::fseek(fp, size / 2, SEEK_SET);
    const int byte = std::fgetc(fp);
    std::fseek(fp, size / 2, SEEK_SET);
    std::fputc(byte ^ 0xFF, fp);
    std::fclose(fp);

    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 2;
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::traceUri(path), smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].runError.cls,
              sim::RunErrorClass::TraceCorrupt);
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(Classify, UndecodableGuestProgramIsGuestFault)
{
    const std::string path =
        writeTempTrace("ft_badop.dtrc", badOpcodeTraceFile());
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 2;
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::traceUri(path), smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].runError.cls, sim::RunErrorClass::GuestFault);
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(Classify, BudgetExhaustedWhenHaltRequired)
{
    // The paper benchmarks are budget-bound at 60k instructions, so
    // requiring HALT fails — permanently: a bigger budget would be a
    // different experiment, not a retry.
    runner::BatchJob job = makeJob(workloads::syntheticUri("464.h264ref"),
                                   smallOptions(60'000));
    job.requireHalt = true;
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 2;
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].runError.cls,
              sim::RunErrorClass::BudgetExhausted);
    EXPECT_FALSE(results[0].runError.transient());
    EXPECT_EQ(results[0].attempts, 1u);
    // The run itself completed: partial metrics are real.
    EXPECT_GT(results[0].snapshot.result.guestRetired, 0u);

    // A guest that does halt satisfies the same requirement.
    const std::string path =
        writeTempTrace("ft_halting.dtrc", haltingTraceFile());
    runner::BatchJob halting =
        makeJob(workloads::traceUri(path), smallOptions(50'000));
    halting.requireHalt = true;
    const auto ok = runner::BatchRunner(cfg).run({halting});
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_TRUE(ok[0].ok) << ok[0].error;
    EXPECT_TRUE(ok[0].snapshot.result.halted);
}

TEST(Classify, MidRunFatalIsInternalNeverRetried)
{
    FaultClear clear;
    faultinject::arm(faultinject::Point::MidRunThrow, 1);
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 3;      // Internal is permanent => unused
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::syntheticUri("464.h264ref"),
                 smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].runError.cls, sim::RunErrorClass::Internal);
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(Classify, FailingJobNeverTakesTheBatchDown)
{
    // One of each failure mixed with successes: every slot reports
    // independently, the good jobs finish untouched.
    const std::string corrupt =
        writeTempTrace("ft_mixed_corrupt.dtrc", haltingTraceFile());
    FILE *fp = std::fopen(corrupt.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, 16, SEEK_SET);
    std::fputc(0xEE, fp);
    std::fclose(fp);

    std::vector<runner::BatchJob> jobs;
    jobs.push_back(makeJob(workloads::syntheticUri("464.h264ref"),
                           smallOptions(50'000)));
    jobs.push_back(makeJob(workloads::syntheticUri("no-such"),
                           smallOptions(50'000)));
    jobs.push_back(makeJob(workloads::traceUri(corrupt),
                           smallOptions(50'000)));
    jobs.push_back(makeJob(workloads::syntheticUri("436.cactusADM"),
                           smallOptions(50'000)));

    runner::BatchConfig cfg;
    cfg.workers = 4;
    const auto results = runner::BatchRunner(cfg).run(jobs);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[1].runError.cls,
              sim::RunErrorClass::BadWorkload);
    EXPECT_EQ(results[2].runError.cls,
              sim::RunErrorClass::TraceCorrupt);
    EXPECT_TRUE(results[3].ok) << results[3].error;
}

// ---------------------------------------------------------------------
// Retry: transient failures re-run from scratch with backoff.
// ---------------------------------------------------------------------

TEST(Retry, TransientIoFailureSucceedsOnSecondAttempt)
{
    FaultClear clear;
    const std::string path =
        writeTempTrace("ft_transient.dtrc", haltingTraceFile());
    faultinject::arm(faultinject::Point::TraceIoFail, 1);

    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.retries = 2;
    cfg.backoffBaseMs = 1;
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::traceUri(path), smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    const runner::JobResult &r = results[0];
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.runError.cls, sim::RunErrorClass::None);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.backoffMsApplied, runner::backoffDelayMs(1, 0));
    EXPECT_TRUE(r.snapshot.result.halted);
}

TEST(Retry, TransientFailureWithoutRetryBudgetFails)
{
    FaultClear clear;
    const std::string path =
        writeTempTrace("ft_transient_noretry.dtrc", haltingTraceFile());
    faultinject::arm(faultinject::Point::TraceIoFail, 1);

    runner::BatchConfig cfg;
    cfg.workers = 1;      // retries defaults to 0
    const auto results = runner::BatchRunner(cfg).run(
        {makeJob(workloads::traceUri(path), smallOptions(50'000))});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].runError.cls,
              sim::RunErrorClass::IoTransient);
    EXPECT_TRUE(results[0].runError.transient());
    EXPECT_EQ(results[0].attempts, 1u);
}

TEST(Retry, RetriedSuccessIsBitIdenticalToFirstTrySuccess)
{
    FaultClear clear;
    const std::string path =
        writeTempTrace("ft_retry_identity.dtrc", haltingTraceFile());
    const auto job = makeJob(workloads::traceUri(path),
                             smallOptions(50'000));

    runner::BatchConfig plain;
    plain.workers = 1;
    const auto first = runner::BatchRunner(plain).run({job});

    faultinject::arm(faultinject::Point::TraceIoFail, 1);
    runner::BatchConfig retrying;
    retrying.workers = 1;
    retrying.retries = 2;
    retrying.backoffBaseMs = 1;
    const auto retried = runner::BatchRunner(retrying).run({job});

    ASSERT_EQ(retried.size(), 1u);
    EXPECT_EQ(retried[0].attempts, 2u);
    expectIdenticalSlots(retried, first);
}

// ---------------------------------------------------------------------
// Watchdog: a stalled job is cancelled; the rest of the batch lives.
// ---------------------------------------------------------------------

TEST(Watchdog, StalledJobTimesOutWhileOthersComplete)
{
    FaultClear clear;
    // Exactly one job consumes the stall injection (atomic count 1)
    // and livelocks; which one is scheduling-dependent, so assert on
    // the count, not the index.
    faultinject::arm(faultinject::Point::GuestStall, 1);

    constexpr uint64_t kTimeoutMs = 600;
    runner::BatchConfig cfg;
    cfg.workers = 4;
    cfg.timeoutMs = kTimeoutMs;
    std::vector<runner::BatchJob> jobs;
    for (int i = 0; i < 4; ++i) {
        jobs.push_back(makeJob(workloads::syntheticUri("464.h264ref"),
                               smallOptions(60'000)));
    }
    const auto results = runner::BatchRunner(cfg).run(jobs);
    ASSERT_EQ(results.size(), 4u);

    unsigned timeouts = 0;
    for (const runner::JobResult &r : results) {
        if (r.runError.cls == sim::RunErrorClass::Timeout) {
            ++timeouts;
            EXPECT_FALSE(r.ok);
            EXPECT_TRUE(r.runError.transient());
            EXPECT_TRUE(r.snapshot.result.cancelled);
            // Partial metrics: the work done before cancellation is
            // exactly accounted.
            EXPECT_GT(r.snapshot.result.guestRetired, 0u);
            EXPECT_GT(r.metrics.cycles, 0u);
            // The acceptance bound: cancellation is cooperative but
            // must land within 2x the configured deadline.
            EXPECT_LT(r.durationMs, 2 * kTimeoutMs);
        } else {
            EXPECT_TRUE(r.ok) << r.error;
            EXPECT_FALSE(r.snapshot.result.cancelled);
        }
    }
    EXPECT_EQ(timeouts, 1u);
}

TEST(Watchdog, NormalJobsUnaffectedByEnabledWatchdog)
{
    // Same batch with and without a (generous) watchdog: the numbers
    // must be bit-identical — the deadline is wiring, not physics.
    const auto job = makeJob(workloads::syntheticUri("436.cactusADM"),
                             smallOptions(60'000));
    runner::BatchConfig plain;
    plain.workers = 1;
    runner::BatchConfig watched;
    watched.workers = 1;
    watched.timeoutMs = 60'000;
    const auto a = runner::BatchRunner(plain).run({job});
    const auto b = runner::BatchRunner(watched).run({job});
    expectIdenticalSlots(b, a);
}

// ---------------------------------------------------------------------
// Journal: fingerprints, replay, damage tolerance, resume.
// ---------------------------------------------------------------------

TEST(Journal, FingerprintKeysTheEffectiveExperiment)
{
    const sim::MetricsOptions base = smallOptions(50'000);
    const uint64_t fp = runner::configFingerprint(base, "w", false);
    EXPECT_EQ(runner::configFingerprint(base, "w", false), fp);

    sim::MetricsOptions budget = base;
    budget.guestBudget = 50'001;
    EXPECT_NE(runner::configFingerprint(budget, "w", false), fp);

    sim::MetricsOptions geometry = base;
    geometry.timingConfig.l1d.sizeBytes *= 2;
    EXPECT_NE(runner::configFingerprint(geometry, "w", false), fp);

    EXPECT_NE(runner::configFingerprint(base, "w2", false), fp);
    EXPECT_NE(runner::configFingerprint(base, "w", true), fp);

    // The cancel token is runtime wiring, not experiment identity.
    common::CancelToken token;
    sim::MetricsOptions wired = base;
    wired.cancel = &token;
    EXPECT_EQ(runner::configFingerprint(wired, "w", false), fp);
}

TEST(Journal, MissingFileIsAnEmptyLoad)
{
    const auto load =
        runner::loadJournal(tempPath("ft_never_written.journal"));
    EXPECT_TRUE(load.entries.empty());
    EXPECT_EQ(load.skippedLines, 0u);
    EXPECT_EQ(load.engine, "");
}

TEST(Journal, ReplayIsBitIdenticalAndSkipsExecution)
{
    const std::string journal = tempPath("ft_replay.journal");
    std::remove(journal.c_str());

    std::vector<runner::BatchJob> jobs;
    for (const char *name : {"464.h264ref", "436.cactusADM"}) {
        jobs.push_back(makeJob(workloads::syntheticUri(name),
                               smallOptions(50'000)));
        jobs.push_back(makeJob(workloads::syntheticUri(name),
                               smallOptions(70'000)));
    }

    runner::BatchConfig serial;
    serial.workers = 1;
    const auto reference = runner::BatchRunner(serial).run(jobs);

    runner::BatchConfig journaled;
    journaled.workers = 2;
    journaled.journalPath = journal;
    const auto first = runner::BatchRunner(journaled).run(jobs);
    for (const runner::JobResult &r : first) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_FALSE(r.fromJournal);
        EXPECT_EQ(r.attempts, 1u);
    }
    expectIdenticalSlots(first, reference);

    const auto second = runner::BatchRunner(journaled).run(jobs);
    for (const runner::JobResult &r : second) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_TRUE(r.fromJournal);
        EXPECT_EQ(r.attempts, 0u);
    }
    expectIdenticalSlots(second, reference);
}

TEST(Journal, DamagedLinesAreSkippedNotFatal)
{
    const std::string journal = tempPath("ft_damaged.journal");
    std::remove(journal.c_str());
    const std::vector<runner::BatchJob> jobs = {
        makeJob(workloads::syntheticUri("464.h264ref"),
                smallOptions(50'000)),
        makeJob(workloads::syntheticUri("436.cactusADM"),
                smallOptions(50'000)),
    };
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.journalPath = journal;
    const auto first = runner::BatchRunner(cfg).run(jobs);
    ASSERT_TRUE(first[0].ok && first[1].ok);

    // Damage the file the way a crash or a stray writer would: a
    // garbage line, a bit-flipped copy of a valid entry, and a torn
    // (truncated, no-newline) tail.
    const auto intact = runner::loadJournal(journal);
    ASSERT_EQ(intact.entries.size(), 2u);
    FILE *fp = std::fopen(journal.c_str(), "ab");
    ASSERT_NE(fp, nullptr);
    std::fputs("this is not json\n", fp);
    std::fputs("{\"job\":0,\"workload\":\"x\",\"csum\":"
               "\"0000000000000000\"}\n", fp);
    std::fputs("{\"job\":1,\"workload\":\"tor", fp);  // torn tail
    std::fclose(fp);

    const auto load = runner::loadJournal(journal);
    EXPECT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.skippedLines, 3u);

    // Resume over the damaged journal still replays the intact work.
    const auto resumed = runner::BatchRunner(cfg).run(jobs);
    EXPECT_TRUE(resumed[0].fromJournal);
    EXPECT_TRUE(resumed[1].fromJournal);
}

TEST(Journal, ConfigChangeInvalidatesEntries)
{
    const std::string journal = tempPath("ft_fpchange.journal");
    std::remove(journal.c_str());
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.journalPath = journal;

    const auto first = runner::BatchRunner(cfg).run(
        {makeJob(workloads::syntheticUri("464.h264ref"),
                 smallOptions(50'000))});
    ASSERT_TRUE(first[0].ok);

    // Same job index + workload, different budget: the fingerprint
    // mismatch must force a re-run, not a stale replay.
    const auto changed = runner::BatchRunner(cfg).run(
        {makeJob(workloads::syntheticUri("464.h264ref"),
                 smallOptions(55'000))});
    ASSERT_TRUE(changed[0].ok) << changed[0].error;
    EXPECT_FALSE(changed[0].fromJournal);
    EXPECT_EQ(changed[0].attempts, 1u);
}

TEST(Journal, CaptureJobsAlwaysReRun)
{
    const std::string journal = tempPath("ft_capture.journal");
    const std::string capture = tempPath("ft_capture.dtrc");
    std::remove(journal.c_str());

    runner::BatchJob job = makeJob(workloads::syntheticUri("464.h264ref"),
                                   smallOptions(50'000));
    job.options.captureTracePath = capture;
    runner::BatchConfig cfg;
    cfg.workers = 1;
    cfg.journalPath = journal;
    const auto first = runner::BatchRunner(cfg).run({job});
    ASSERT_TRUE(first[0].ok) << first[0].error;

    // The journal must not have recorded the capture job: its product
    // is the capture file, which only a re-run can regenerate.
    std::remove(capture.c_str());
    const auto second = runner::BatchRunner(cfg).run({job});
    ASSERT_TRUE(second[0].ok) << second[0].error;
    EXPECT_FALSE(second[0].fromJournal);
    EXPECT_TRUE(trace::readTrace(capture).ok());
}

// ---------------------------------------------------------------------
// Kill-and-resume e2e: the process really dies, the campaign lives.
// ---------------------------------------------------------------------

TEST(KillAndResume, SigkilledCampaignResumesBitIdentically)
{
    const std::string journal = tempPath("ft_kill_resume.journal");
    std::remove(journal.c_str());

    // Re-exec this binary in campaign-child mode with journal-kill
    // armed through the environment: the 8th journal append raises
    // SIGKILL, so the child dies for real, mid-campaign, with workers
    // in flight. The link must be resolved HERE: inside system()'s
    // shell, /proc/self/exe names the shell, not this binary.
    char self[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    ASSERT_GT(len, 0);
    self[len] = '\0';
    const std::string cmd =
        "DARCO_FT_CAMPAIGN_CHILD='" + journal +
        "' DARCO_FAULTINJECT=journal-kill:8 "
        "exec '" + std::string(self) + "' >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_NE(rc, -1);
    // With `exec` the shell IS the child and dies by signal; some
    // shells fork anyway and report 128+SIGKILL as an exit status.
    const bool killed =
        (WIFSIGNALED(rc) && WTERMSIG(rc) == SIGKILL) ||
        (WIFEXITED(rc) && WEXITSTATUS(rc) == 128 + SIGKILL);
    ASSERT_TRUE(killed) << "child status " << rc;

    // Exactly the appends that were flushed before the kill survive.
    const auto load = runner::loadJournal(journal);
    EXPECT_EQ(load.engine, runner::kJournalEngineVersion);
    ASSERT_EQ(load.entries.size(), 8u);
    EXPECT_EQ(load.skippedLines, 0u);

    // Resume the identical campaign over the journal: the 8 completed
    // jobs replay, the rest run, and every slot is bit-identical to
    // an uninterrupted serial execution.
    const std::vector<runner::BatchJob> jobs = campaignJobs();
    runner::BatchConfig resume;
    resume.workers = 3;
    resume.journalPath = journal;
    const auto resumed = runner::BatchRunner(resume).run(jobs);
    unsigned replayed = 0;
    for (const runner::JobResult &r : resumed) {
        EXPECT_TRUE(r.ok) << r.uri << ": " << r.error;
        replayed += r.fromJournal ? 1 : 0;
    }
    EXPECT_EQ(replayed, 8u);

    runner::BatchConfig serial;
    serial.workers = 1;
    const auto reference = runner::BatchRunner(serial).run(jobs);
    expectIdenticalSlots(resumed, reference);
}

/** Campaign-child body (DARCO_FT_CAMPAIGN_CHILD): run the standard
 *  campaign against the given journal and report plain pass/fail —
 *  the parent expects this process to die by SIGKILL instead. */
int
runCampaignChild(const char *journal_path)
{
    runner::BatchConfig cfg;
    cfg.workers = 2;
    cfg.journalPath = journal_path;
    const auto results = runner::BatchRunner(cfg).run(campaignJobs());
    for (const runner::JobResult &r : results) {
        if (!r.ok)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Environment-driven arming first: child processes (and manual
    // fault drills) configure injection before any code can run.
    darco::faultinject::armFromEnv();
    if (const char *journal = std::getenv("DARCO_FT_CAMPAIGN_CHILD"))
        return runCampaignChild(journal);
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
