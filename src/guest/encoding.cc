#include "guest/encoding.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::guest {

namespace {

bool
hasMemOperand(Form form)
{
    return form == Form::RM || form == Form::MR || form == Form::M;
}

bool
hasImmOperand(Form form)
{
    return form == Form::RI || form == Form::I;
}

bool
fitsI8(int32_t value)
{
    return value >= -128 && value <= 127;
}

} // namespace

unsigned
encode(const Inst &inst, std::vector<uint8_t> &out)
{
    panic_if(inst.op >= Op::NumOps, "encode: bad opcode");
    panic_if(!formValid(inst.op, inst.form),
             "encode: form %d invalid for %s",
             static_cast<int>(inst.form), opName(inst.op));

    const bool has_mem = hasMemOperand(inst.form);
    const bool has_imm = hasImmOperand(inst.form);

    // A caller-provided length forces the wide immediate encoding;
    // the assembler uses this for forward branches.
    const bool force_wide_imm = inst.length != 0;

    const bool imm8 = has_imm && !force_wide_imm && fitsI8(inst.imm);
    const bool disp8 = has_mem && fitsI8(inst.mem.disp);

    uint8_t form_byte = static_cast<uint8_t>(inst.form) & 0x7;
    if (imm8)
        form_byte |= 1u << 3;
    if (disp8)
        form_byte |= 1u << 4;
    if (has_mem && inst.mem.hasIndex) {
        form_byte |= 1u << 5;
        form_byte |= (inst.mem.scaleLog2 & 0x3) << 6;
    }

    const size_t start = out.size();
    out.push_back(static_cast<uint8_t>(inst.op));
    out.push_back(form_byte);

    if (inst.form != Form::NONE) {
        uint8_t regs_byte;
        if (inst.op == Op::JCC) {
            regs_byte = static_cast<uint8_t>(inst.cond) & 0xF;
        } else {
            const uint8_t r2 = has_mem ? inst.mem.base : inst.reg2;
            regs_byte = (inst.reg1 & 0x7) |
                        (static_cast<uint8_t>(r2 & 0x7) << 3);
        }
        out.push_back(regs_byte);
    }

    if (has_mem && inst.mem.hasIndex)
        out.push_back(inst.mem.index & 0x7);

    auto push_value = [&out](int32_t value, bool narrow) {
        if (narrow) {
            out.push_back(static_cast<uint8_t>(value));
        } else {
            const uint32_t v = static_cast<uint32_t>(value);
            out.push_back(v & 0xFF);
            out.push_back((v >> 8) & 0xFF);
            out.push_back((v >> 16) & 0xFF);
            out.push_back((v >> 24) & 0xFF);
        }
    };

    if (has_mem)
        push_value(inst.mem.disp, disp8);
    if (has_imm)
        push_value(inst.imm, imm8);

    const unsigned length = static_cast<unsigned>(out.size() - start);
    panic_if(length > kMaxInstLength, "encode: instruction too long");
    return length;
}

DecodeStatus
decode(const uint8_t *buf, size_t size, Inst &inst)
{
    if (size < 2)
        return DecodeStatus::Truncated;

    const uint8_t opc = buf[0];
    if (opc >= static_cast<uint8_t>(Op::NumOps))
        return DecodeStatus::BadOpcode;

    inst = Inst();
    inst.op = static_cast<Op>(opc);

    const uint8_t form_byte = buf[1];
    const uint8_t form_bits = form_byte & 0x7;
    if (form_bits >= static_cast<uint8_t>(Form::NumForms))
        return DecodeStatus::BadForm;
    inst.form = static_cast<Form>(form_bits);
    if (!formValid(inst.op, inst.form))
        return DecodeStatus::BadForm;

    const bool imm8 = form_byte & (1u << 3);
    const bool disp8 = form_byte & (1u << 4);
    const bool has_index = form_byte & (1u << 5);
    const uint8_t scale = (form_byte >> 6) & 0x3;

    const bool has_mem = hasMemOperand(inst.form);
    const bool has_imm = hasImmOperand(inst.form);

    size_t pos = 2;

    if (inst.form != Form::NONE) {
        if (pos >= size)
            return DecodeStatus::Truncated;
        const uint8_t regs_byte = buf[pos++];
        if (inst.op == Op::JCC) {
            const uint8_t cc = regs_byte & 0xF;
            if (cc >= static_cast<uint8_t>(Cond::NumConds))
                return DecodeStatus::BadForm;
            inst.cond = static_cast<Cond>(cc);
        } else {
            inst.reg1 = regs_byte & 0x7;
            const uint8_t r2 = (regs_byte >> 3) & 0x7;
            if (has_mem)
                inst.mem.base = r2;
            else
                inst.reg2 = r2;
        }
    }

    if (has_mem && has_index) {
        if (pos >= size)
            return DecodeStatus::Truncated;
        inst.mem.hasIndex = true;
        inst.mem.index = buf[pos++] & 0x7;
        inst.mem.scaleLog2 = scale;
    }

    auto read_value = [&](bool narrow, int32_t &value) -> bool {
        if (narrow) {
            if (pos + 1 > size)
                return false;
            value = static_cast<int8_t>(buf[pos]);
            pos += 1;
        } else {
            if (pos + 4 > size)
                return false;
            value = static_cast<int32_t>(
                static_cast<uint32_t>(buf[pos]) |
                (static_cast<uint32_t>(buf[pos + 1]) << 8) |
                (static_cast<uint32_t>(buf[pos + 2]) << 16) |
                (static_cast<uint32_t>(buf[pos + 3]) << 24));
            pos += 4;
        }
        return true;
    };

    if (has_mem) {
        if (!read_value(disp8, inst.mem.disp))
            return DecodeStatus::Truncated;
    }
    if (has_imm) {
        if (!read_value(imm8, inst.imm))
            return DecodeStatus::Truncated;
    }

    inst.length = static_cast<uint8_t>(pos);
    return DecodeStatus::Ok;
}

namespace {

const char *gprNames[] = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
};

std::string
memString(const MemOperand &mem)
{
    std::string s = "[";
    s += gprNames[mem.base & 0x7];
    if (mem.hasIndex) {
        s += "+";
        s += gprNames[mem.index & 0x7];
        if (mem.scaleLog2)
            s += strprintf("*%d", 1 << mem.scaleLog2);
    }
    if (mem.disp)
        s += strprintf("%+d", mem.disp);
    s += "]";
    return s;
}

std::string
regString(const Inst &inst, uint8_t reg)
{
    if (opInfo(inst.op).isFp && inst.op != Op::CVTIF && inst.op != Op::CVTFI)
        return strprintf("f%d", reg);
    return gprNames[reg & 0x7];
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    return disassemble(inst, 0);
}

std::string
disassemble(const Inst &inst, uint32_t eip)
{
    std::string s = opName(inst.op);
    if (inst.op == Op::JCC) {
        s = std::string("j") + condName(inst.cond);
    }

    auto reg1_str = [&]() {
        // CVTIF: dst is FP, src is GPR; CVTFI: dst is GPR, src FP.
        if (inst.op == Op::CVTIF)
            return strprintf("f%d", inst.reg1);
        if (inst.op == Op::CVTFI)
            return std::string(gprNames[inst.reg1 & 0x7]);
        return regString(inst, inst.reg1);
    };
    auto reg2_str = [&]() {
        if (inst.op == Op::CVTIF)
            return std::string(gprNames[inst.reg2 & 0x7]);
        if (inst.op == Op::CVTFI)
            return strprintf("f%d", inst.reg2);
        return regString(inst, inst.reg2);
    };

    switch (inst.form) {
      case Form::NONE:
        break;
      case Form::RR:
        s += " " + reg1_str() + ", " + reg2_str();
        break;
      case Form::RI:
        s += " " + reg1_str() + strprintf(", %d", inst.imm);
        break;
      case Form::RM:
        s += " " + reg1_str() + ", " + memString(inst.mem);
        break;
      case Form::MR:
        s += " " + memString(inst.mem) + ", " + reg1_str();
        break;
      case Form::R:
        s += " " + reg1_str();
        break;
      case Form::M:
        s += " " + memString(inst.mem);
        break;
      case Form::I:
        if (opInfo(inst.op).isBranch) {
            s += strprintf(" 0x%x",
                           eip + inst.length + static_cast<uint32_t>(inst.imm));
        } else {
            s += strprintf(" %d", inst.imm);
        }
        break;
      default:
        break;
    }
    return s;
}

} // namespace darco::guest
