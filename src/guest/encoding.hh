/**
 * @file
 * GX86 variable-length binary encoding.
 *
 * Layout (2 to 12 bytes):
 *
 *   byte 0        opcode
 *   byte 1        FORM byte:
 *                   bits [2:0]  operand form (guest::Form)
 *                   bit  [3]    imm8  (immediate is 1 byte, else 4)
 *                   bit  [4]    disp8 (displacement is 1 byte, else 4)
 *                   bit  [5]    hasIndex
 *                   bits [7:6]  scale log2 (1/2/4/8)
 *   byte 2        REGS byte (present iff form != NONE):
 *                   bits [2:0]  reg1  (dst / single operand)
 *                   bits [5:3]  reg2 / mem base
 *                   For JCC the REGS byte instead carries the
 *                   condition code in bits [3:0].
 *   byte 3        INDEX byte (present iff hasIndex): index reg in [2:0]
 *   next 1/4      disp (present for RM/MR/M forms), little-endian,
 *                 signed
 *   next 1/4      imm (present for RI/I forms), little-endian, signed
 *
 * Branch displacements (JMP/JCC/CALL imm) are relative to the EIP of
 * the *next* instruction, as on x86.
 */

#ifndef DARCO_GUEST_ENCODING_HH
#define DARCO_GUEST_ENCODING_HH

#include <cstdint>
#include <vector>

#include "guest/isa.hh"

namespace darco::guest {

/** Maximum encoded instruction length in bytes. */
constexpr unsigned kMaxInstLength = 12;

/** Result of a decode attempt. */
enum class DecodeStatus {
    Ok = 0,
    BadOpcode,      ///< opcode byte out of range
    BadForm,        ///< form invalid for the opcode
    Truncated,      ///< ran past the end of the buffer
};

/**
 * Append the encoding of @p inst to @p out.
 *
 * The encoder selects short (1-byte) immediate/displacement encodings
 * automatically when the value fits, unless inst.length is already
 * set to a valid longer encoding (the assembler uses that for
 * forward-label branches that must reserve 4 bytes).
 *
 * @return encoded length in bytes.
 */
unsigned encode(const Inst &inst, std::vector<uint8_t> &out);

/**
 * Decode one instruction from @p buf (at most @p size valid bytes).
 * On success fills @p inst (including inst.length).
 */
DecodeStatus decode(const uint8_t *buf, size_t size, Inst &inst);

/** Decoded-operand pretty printer (disassembler). */
std::string disassemble(const Inst &inst);

/** Disassemble with the instruction's own EIP (branch targets shown). */
std::string disassemble(const Inst &inst, uint32_t eip);

} // namespace darco::guest

#endif // DARCO_GUEST_ENCODING_HH
