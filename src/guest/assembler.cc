#include "guest/assembler.hh"

#include "common/logging.hh"
#include "guest/memory.hh"

namespace darco::guest {

Assembler::Label
Assembler::newLabel()
{
    labelOffsets.push_back(-1);
    return Label{static_cast<int>(labelOffsets.size()) - 1};
}

void
Assembler::bind(Label label)
{
    panic_if(label.id < 0 ||
             label.id >= static_cast<int>(labelOffsets.size()),
             "bind: bad label");
    panic_if(labelOffsets[label.id] >= 0, "bind: label bound twice");
    labelOffsets[label.id] = static_cast<int64_t>(code.size());
}

bool
Assembler::isBound(Label label) const
{
    return label.id >= 0 &&
           label.id < static_cast<int>(labelOffsets.size()) &&
           labelOffsets[label.id] >= 0;
}

void
Assembler::emit(Inst inst)
{
    panic_if(finalized, "emit after finalize");
    encode(inst, code);
    ++instCount;
}

void
Assembler::emitRR(Op op, uint8_t r1, uint8_t r2)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::RR;
    inst.reg1 = r1;
    inst.reg2 = r2;
    emit(inst);
}

void
Assembler::emitRI(Op op, uint8_t r1, int32_t imm)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::RI;
    inst.reg1 = r1;
    inst.imm = imm;
    emit(inst);
}

void
Assembler::emitRM(Op op, uint8_t r1, const MemOperand &m)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::RM;
    inst.reg1 = r1;
    inst.mem = m;
    emit(inst);
}

void
Assembler::emitMR(Op op, uint8_t r1, const MemOperand &m)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::MR;
    inst.reg1 = r1;
    inst.mem = m;
    emit(inst);
}

void
Assembler::emitR(Op op, uint8_t r1)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::R;
    inst.reg1 = r1;
    emit(inst);
}

void
Assembler::emitM(Op op, const MemOperand &m)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::M;
    inst.mem = m;
    emit(inst);
}

void
Assembler::emitI(Op op, int32_t imm)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::I;
    inst.imm = imm;
    emit(inst);
}

void
Assembler::emitNone(Op op)
{
    Inst inst;
    inst.op = op;
    inst.form = Form::NONE;
    emit(inst);
}

void
Assembler::cvtif(FReg d, Reg s)
{
    emitRR(Op::CVTIF, d, s);
}

void
Assembler::cvtfi(Reg d, FReg s)
{
    emitRR(Op::CVTFI, d, s);
}

void
Assembler::movLabel(Reg dst, Label label)
{
    panic_if(finalized, "emit after finalize");
    Inst inst;
    inst.op = Op::MOV;
    inst.form = Form::RI;
    inst.reg1 = dst;
    inst.imm = 0;
    inst.length = 1;  // force wide immediate so the fixup has 4 bytes
    const size_t start = code.size();
    encode(inst, code);
    ++instCount;
    // imm is the last 4 bytes of the encoding
    fixups.push_back(Fixup{code.size() - 4, code.size(), label.id, true});
    (void)start;
}

void
Assembler::emitBranch(Op op, Cond cond, Label target)
{
    panic_if(finalized, "emit after finalize");
    panic_if(target.id < 0 ||
             target.id >= static_cast<int>(labelOffsets.size()),
             "branch to bad label");

    Inst inst;
    inst.op = op;
    inst.form = Form::I;
    inst.cond = cond;

    const int64_t bound = labelOffsets[target.id];
    if (bound >= 0) {
        // Backward branch: try the short encoding first. The
        // displacement depends on the chosen length, so compute both.
        // Short JMP/JCC/CALL (form I, imm8): 2 + 1 (regs) + 1 = 4 bytes.
        const int64_t start = static_cast<int64_t>(code.size());
        const int64_t rel_short = bound - (start + 4);
        if (rel_short >= -128 && rel_short <= 127) {
            inst.imm = static_cast<int32_t>(rel_short);
            emit(inst);
            return;
        }
        const int64_t rel_wide = bound - (start + 7);
        inst.imm = static_cast<int32_t>(rel_wide);
        inst.length = 1;  // force wide
        emit(inst);
        return;
    }

    // Forward branch: reserve the wide form, patch at finalize().
    inst.imm = 0;
    inst.length = 1;  // force wide
    encode(inst, code);
    ++instCount;
    fixups.push_back(Fixup{code.size() - 4, code.size(), target.id, false});
}

std::vector<uint8_t>
Assembler::finalize(uint32_t base_addr)
{
    panic_if(finalized, "finalize called twice");
    finalized = true;
    finalBase = base_addr;

    for (const Fixup &fixup : fixups) {
        const int64_t bound = labelOffsets[fixup.labelId];
        panic_if(bound < 0, "finalize: unbound label %d referenced",
                 fixup.labelId);
        int32_t value;
        if (fixup.absolute) {
            value = static_cast<int32_t>(base_addr +
                                         static_cast<uint32_t>(bound));
        } else {
            value = static_cast<int32_t>(bound -
                static_cast<int64_t>(fixup.instEnd));
        }
        const uint32_t v = static_cast<uint32_t>(value);
        code[fixup.immOffset] = v & 0xFF;
        code[fixup.immOffset + 1] = (v >> 8) & 0xFF;
        code[fixup.immOffset + 2] = (v >> 16) & 0xFF;
        code[fixup.immOffset + 3] = (v >> 24) & 0xFF;
    }
    return code;
}

uint32_t
Assembler::labelAddr(Label label) const
{
    panic_if(!finalized, "labelAddr before finalize");
    panic_if(label.id < 0 ||
             label.id >= static_cast<int>(labelOffsets.size()) ||
             labelOffsets[label.id] < 0,
             "labelAddr: unbound label");
    return finalBase + static_cast<uint32_t>(labelOffsets[label.id]);
}

uint32_t
Program::layoutCodeBase()
{
    return layout::kCodeBase;
}

uint32_t
Program::layoutStackTop()
{
    return layout::kStackTop;
}

State
Program::initialState() const
{
    State state;
    state.eip = entry ? entry : codeBase;
    state.gpr[ESP] = stackTop;
    return state;
}

uint32_t
Program::countStaticInsts() const
{
    uint32_t count = 0;
    size_t pos = 0;
    while (pos < code.size()) {
        Inst inst;
        const DecodeStatus st = decode(code.data() + pos,
                                       code.size() - pos, inst);
        if (st != DecodeStatus::Ok)
            break;
        pos += inst.length;
        ++count;
    }
    return count;
}

} // namespace darco::guest
