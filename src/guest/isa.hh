/**
 * @file
 * GX86: the guest instruction-set architecture.
 *
 * GX86 is a compact x86-like CISC ISA. It deliberately reproduces the
 * properties of x86 that matter for a co-designed dynamic binary
 * translator (and that the characterization paper's analysis hinges
 * on):
 *
 *  - variable-length encoding (2 to 12 bytes per instruction),
 *  - eight 32-bit GPRs including a stack pointer with push/pop/call/
 *    ret semantics,
 *  - condition flags (EFLAGS, at x86 bit positions) written by most
 *    ALU instructions and consumed by conditional branches,
 *  - memory operands of the form [base + index*scale + disp],
 *  - direct and *indirect* jumps and calls, and returns,
 *  - scalar floating point with memory operands.
 *
 * Documented deviations from real x86 (both simulator sides — the
 * authoritative emulator and the translator — implement the same
 * semantics, so co-simulation is exact):
 *  - IMUL defines SF/ZF/PF from the low 32-bit result (x86 leaves
 *    them undefined); CF=OF=1 iff the full product does not fit.
 *  - Shift-by-zero leaves flags untouched (as x86); OF after shifts
 *    is always cleared (x86 defines it only for 1-bit shifts).
 *  - IDIV is total: division by zero or INT_MIN/-1 yields quotient 0
 *    and remainder = dividend instead of faulting.
 *  - FP registers are a flat file F0..F7 of doubles (no x87 stack).
 */

#ifndef DARCO_GUEST_ISA_HH
#define DARCO_GUEST_ISA_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

namespace darco::guest {

/** Guest general-purpose registers (x86 order). */
enum Reg : uint8_t {
    EAX = 0, ECX = 1, EDX = 2, EBX = 3,
    ESP = 4, EBP = 5, ESI = 6, EDI = 7,
    NumGprs = 8,
};

/** Guest floating-point registers (flat double-precision file). */
enum FReg : uint8_t {
    F0 = 0, F1, F2, F3, F4, F5, F6, F7,
    NumFprs = 8,
};

/** EFLAGS bit positions (matching x86). */
namespace flag {
constexpr uint32_t CF = 1u << 0;
constexpr uint32_t PF = 1u << 2;
constexpr uint32_t ZF = 1u << 6;
constexpr uint32_t SF = 1u << 7;
constexpr uint32_t OF = 1u << 11;
constexpr uint32_t All = CF | PF | ZF | SF | OF;
} // namespace flag

/** Condition codes for JCC (subset of x86 cc's). */
enum class Cond : uint8_t {
    E = 0,   ///< ZF
    NE,      ///< !ZF
    L,       ///< SF != OF
    GE,      ///< SF == OF
    LE,      ///< ZF || SF != OF
    G,       ///< !ZF && SF == OF
    B,       ///< CF
    AE,      ///< !CF
    S,       ///< SF
    NS,      ///< !SF
    NumConds,
};

/** Evaluate a condition against an EFLAGS value. */
bool evalCond(Cond cond, uint32_t eflags);

/** Flags a condition reads (for liveness analysis). */
uint32_t condFlagsRead(Cond cond);

/** Printable name ("e", "ne", ...). */
const char *condName(Cond cond);

/** Guest opcodes. */
enum class Op : uint8_t {
    // Data movement
    MOV = 0,   ///< 32-bit move (RR/RI/RM/MR)
    MOVB,      ///< 8-bit move, zero-extending on load (RM/MR)
    LEA,       ///< address computation (RM only)
    // Integer ALU (flag-setting per x86 rules)
    ADD, SUB, AND, OR, XOR, CMP, TEST,
    SHL, SHR, SAR,
    IMUL,      ///< 32x32 -> low 32
    IDIV,      ///< EAX / src -> EAX, remainder -> EDX
    INC, DEC, NEG, NOT,
    // Stack
    PUSH, POP,
    // Control flow
    JMP,       ///< direct jump (I form, relative)
    JMPI,      ///< indirect jump (R/M form)
    JCC,       ///< conditional direct jump (I form + cond)
    CALL,      ///< direct call
    CALLI,     ///< indirect call
    RET,       ///< return (indirect by nature)
    // Floating point (doubles)
    FMOV, FLD, FST,
    FADD, FSUB, FMUL, FDIV,
    FCMP,      ///< sets ZF/CF/PF like x86 FUCOMI
    FSQRT, FABS, FNEG,
    CVTIF,     ///< int32 -> double
    CVTFI,     ///< double -> int32 (truncating, x86 clamp semantics)
    // Misc
    NOP,
    HALT,      ///< stops the guest program
    NumOps,
};

/** Operand forms. Encoded in the FORM byte of every instruction. */
enum class Form : uint8_t {
    NONE = 0,  ///< no operands (RET, NOP, HALT)
    RR,        ///< reg, reg
    RI,        ///< reg, imm
    RM,        ///< reg <- mem
    MR,        ///< mem <- reg
    R,         ///< single register (PUSH/POP/JMPI/CALLI/INC/...)
    M,         ///< single memory operand (JMPI/CALLI/PUSH mem)
    I,         ///< immediate only (JMP/JCC/CALL relative, PUSH imm)
    NumForms,
};

/** A memory operand: [base + index * scale + disp]. */
struct MemOperand
{
    uint8_t base = 0;       ///< base register (always present)
    uint8_t index = 0;      ///< index register (valid iff hasIndex)
    uint8_t scaleLog2 = 0;  ///< 0..3 -> scale 1/2/4/8
    bool hasIndex = false;
    int32_t disp = 0;

    bool operator==(const MemOperand &) const = default;
};

/** A decoded guest instruction. */
struct Inst
{
    Op op = Op::NOP;
    Form form = Form::NONE;
    Cond cond = Cond::E;    ///< valid only for JCC
    uint8_t reg1 = 0;       ///< dst (or only) register
    uint8_t reg2 = 0;       ///< src register
    MemOperand mem;         ///< valid for RM/MR/M forms
    int32_t imm = 0;        ///< immediate / branch displacement
    uint8_t length = 0;     ///< encoded length in bytes

    bool operator==(const Inst &) const = default;
};

/** Static per-opcode properties. */
struct OpInfo
{
    const char *name;        ///< mnemonic
    uint32_t flagsWritten;   ///< EFLAGS mask this op defines
    bool keepsCf;            ///< INC/DEC: CF preserved though others set
    bool isFp;               ///< operates on F registers
    bool isBranch;           ///< any control transfer
    bool isCondBranch;       ///< JCC
    bool isIndirect;         ///< JMPI/CALLI/RET
    bool isCall;             ///< CALL/CALLI
    bool isRet;              ///< RET
    uint8_t memSize;         ///< bytes moved when a mem form is used
    bool complexAlu;         ///< IMUL/IDIV/FSQRT-class work
};

/** Look up static properties of @p op. */
namespace detail {
/** Per-opcode property table (defined in isa.cc; indexed by Op). */
extern const OpInfo kOpTable[];
} // namespace detail

/**
 * Properties of @p op. Inline table access: this sits on the
 * per-interpreted-instruction hot path, so the bounds check is
 * debug-only.
 */
inline const OpInfo &
opInfo(Op op)
{
    assert(op < Op::NumOps && "bad guest opcode");
    return detail::kOpTable[static_cast<unsigned>(op)];
}

/** Mnemonic for @p op. */
inline const char *opName(Op op) { return opInfo(op).name; }

/** True if (op, form) is an encodable combination. */
bool formValid(Op op, Form form);

/** Architectural guest state. */
struct State
{
    std::array<uint32_t, NumGprs> gpr{};
    std::array<double, NumFprs> fpr{};
    uint32_t eflags = 0;
    uint32_t eip = 0;

    bool operator==(const State &) const = default;
};

/**
 * Flag-computation helpers. These define GX86 semantics and are the
 * single source of truth used by the authoritative emulator; the
 * translator's lowering is differentially tested against them.
 */
namespace flags {

/** Parity flag: set iff the low byte of @p result has even parity. */
uint32_t parity(uint32_t result);

/** SF/ZF/PF from a result. */
uint32_t szp(uint32_t result);

/** Full flag set after ADD. */
uint32_t afterAdd(uint32_t a, uint32_t b, uint32_t result);

/** Full flag set after SUB/CMP (result = a - b). */
uint32_t afterSub(uint32_t a, uint32_t b, uint32_t result);

/** Flags after logical ops (AND/OR/XOR/TEST): CF=OF=0. */
uint32_t afterLogic(uint32_t result);

/** Flags after SHL by non-zero count. */
uint32_t afterShl(uint32_t a, uint32_t count, uint32_t result);

/** Flags after SHR by non-zero count. */
uint32_t afterShr(uint32_t a, uint32_t count, uint32_t result);

/** Flags after SAR by non-zero count. */
uint32_t afterSar(uint32_t a, uint32_t count, uint32_t result);

/** Flags after IMUL (see deviation note). */
uint32_t afterImul(int64_t full, uint32_t result);

/** Flags after FCMP (x86 FUCOMI semantics). */
uint32_t afterFcmp(double a, double b);

} // namespace flags

} // namespace darco::guest

#endif // DARCO_GUEST_ISA_HH
