#include "guest/emulator.hh"

#include "common/logging.hh"

namespace darco::guest {

const Inst &
Emulator::decodeAt(uint32_t addr)
{
    auto it = decodeCache.find(addr);
    if (it != decodeCache.end())
        return it->second;

    uint8_t buf[kMaxInstLength];
    mem.readBytes(addr, buf, sizeof(buf));
    Inst inst;
    const DecodeStatus status = decode(buf, sizeof(buf), inst);
    panic_if(status != DecodeStatus::Ok,
             "x86 component: undecodable guest instruction at 0x%08x "
             "(status %d)", addr, static_cast<int>(status));
    return decodeCache.emplace(addr, inst).first->second;
}

bool
Emulator::step()
{
    if (halted)
        return false;

    const Inst &inst = decodeAt(archState.eip);
    const OpInfo &info = opInfo(inst.op);

    // HALT does not retire (EIP stays put); keep counts aligned with
    // the co-design side's retirement accounting.
    if (inst.op == Op::HALT) {
        halted = true;
        return false;
    }

    ++stats.instructions;
    if (info.isBranch) {
        ++stats.branches;
        if (info.isCondBranch)
            ++stats.condBranches;
        if (info.isIndirect)
            ++stats.indirectBranches;
        if (info.isCall)
            ++stats.calls;
        if (info.isRet)
            ++stats.returns;
    }
    if (info.isFp)
        ++stats.fpOps;
    // Memory-traffic classification by form (approximate but cheap:
    // push/pop/call/ret always touch the stack).
    switch (inst.form) {
      case Form::RM:
        if (inst.op != Op::LEA)
            ++stats.memReads;
        break;
      case Form::MR: ++stats.memWrites; break;
      case Form::M:  ++stats.memReads; break;
      default: break;
    }
    if (inst.op == Op::PUSH || (inst.op == Op::CALL) ||
        inst.op == Op::CALLI)
        ++stats.memWrites;
    if (inst.op == Op::POP || inst.op == Op::RET)
        ++stats.memReads;

    const uint32_t pc = archState.eip;
    const ExecResult result = execInst(archState, mem, inst);
    if (result.taken)
        ++stats.takenBranches;
    if (branchObs && info.isBranch)
        branchObs->onBranch(pc, archState.eip, result.taken, info);
    if (result.halted) {
        halted = true;
        return false;
    }
    return true;
}

uint64_t
Emulator::run(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (executed < max_insts && step())
        ++executed;
    return executed;
}

} // namespace darco::guest
