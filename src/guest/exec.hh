/**
 * @file
 * GX86 single-instruction execution semantics.
 *
 * execInst() is the single source of truth for guest semantics. It is
 * templated on the memory interface so the same code drives both the
 * authoritative x86 component (32-bit guest memory) and the TOL
 * interpreter inside the co-design component (guest space embedded in
 * the 64-bit host memory, wrapped in an access-recording adapter).
 *
 * The memory type must provide:
 *   uint64_t load(uint32_t addr, unsigned size);
 *   void store(uint32_t addr, uint64_t value, unsigned size);
 */

#ifndef DARCO_GUEST_EXEC_HH
#define DARCO_GUEST_EXEC_HH

#include <cmath>
#include <cstring>

#include "common/fpu.hh"
#include "common/logging.hh"
#include "guest/isa.hh"

namespace darco::guest {

/** Control-flow outcome of one executed instruction. */
struct ExecResult
{
    bool halted = false;
    bool taken = false;   ///< a control transfer changed EIP
};

/** Effective address of a memory operand. */
inline uint32_t
effectiveAddr(const State &state, const MemOperand &mem)
{
    uint32_t addr = state.gpr[mem.base & 0x7] +
                    static_cast<uint32_t>(mem.disp);
    if (mem.hasIndex)
        addr += state.gpr[mem.index & 0x7] << mem.scaleLog2;
    return addr;
}

namespace detail {

inline double
bitsToDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

inline uint64_t
doubleToBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

/** x86 CVTTSD2SI-style truncation with clamp-to-indefinite. */
inline uint32_t
truncToInt32(double d)
{
    if (std::isnan(d) || d >= 2147483648.0 || d < -2147483648.0)
        return 0x80000000u;
    return static_cast<uint32_t>(static_cast<int32_t>(d));
}

} // namespace detail

template <typename Mem>
ExecResult
execInst(State &state, Mem &memory, const Inst &inst)
{
    using detail::bitsToDouble;
    using detail::doubleToBits;

    ExecResult result;
    const uint32_t next_eip = state.eip + inst.length;
    state.eip = next_eip;

    // Integer source value for RR/RI/RM forms.
    auto int_src = [&]() -> uint32_t {
        switch (inst.form) {
          case Form::RR: return state.gpr[inst.reg2];
          case Form::RI: return static_cast<uint32_t>(inst.imm);
          case Form::RM:
            return static_cast<uint32_t>(
                memory.load(effectiveAddr(state, inst.mem), 4));
          default:
            panic("int_src: bad form for %s", opName(inst.op));
        }
    };

    // FP source value for RR/RM forms.
    auto fp_src = [&]() -> double {
        if (inst.form == Form::RR)
            return state.fpr[inst.reg2];
        return bitsToDouble(
            memory.load(effectiveAddr(state, inst.mem), 8));
    };

    // Value of an R or M single operand.
    auto rm_value = [&]() -> uint32_t {
        if (inst.form == Form::R)
            return state.gpr[inst.reg1];
        return static_cast<uint32_t>(
            memory.load(effectiveAddr(state, inst.mem), 4));
    };

    auto set_flags = [&](uint32_t computed) {
        const OpInfo &info = opInfo(inst.op);
        uint32_t mask = info.flagsWritten;
        if (info.keepsCf)
            mask &= ~flag::CF;
        state.eflags = (state.eflags & ~mask) | (computed & mask);
    };

    auto push32 = [&](uint32_t value) {
        state.gpr[ESP] -= 4;
        memory.store(state.gpr[ESP], value, 4);
    };

    auto pop32 = [&]() -> uint32_t {
        const uint32_t value =
            static_cast<uint32_t>(memory.load(state.gpr[ESP], 4));
        state.gpr[ESP] += 4;
        return value;
    };

    switch (inst.op) {
      case Op::MOV:
        switch (inst.form) {
          case Form::RR: state.gpr[inst.reg1] = state.gpr[inst.reg2]; break;
          case Form::RI:
            state.gpr[inst.reg1] = static_cast<uint32_t>(inst.imm);
            break;
          case Form::RM:
            state.gpr[inst.reg1] = static_cast<uint32_t>(
                memory.load(effectiveAddr(state, inst.mem), 4));
            break;
          case Form::MR:
            memory.store(effectiveAddr(state, inst.mem),
                         state.gpr[inst.reg1], 4);
            break;
          default: panic("mov: bad form");
        }
        break;

      case Op::MOVB:
        if (inst.form == Form::RM) {
            state.gpr[inst.reg1] = static_cast<uint32_t>(
                memory.load(effectiveAddr(state, inst.mem), 1));
        } else {
            memory.store(effectiveAddr(state, inst.mem),
                         state.gpr[inst.reg1] & 0xFF, 1);
        }
        break;

      case Op::LEA:
        state.gpr[inst.reg1] = effectiveAddr(state, inst.mem);
        break;

      case Op::ADD: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t b = int_src();
        const uint32_t res = a + b;
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterAdd(a, b, res));
        break;
      }
      case Op::SUB: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t b = int_src();
        const uint32_t res = a - b;
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterSub(a, b, res));
        break;
      }
      case Op::CMP: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t b = int_src();
        set_flags(flags::afterSub(a, b, a - b));
        break;
      }
      case Op::AND: {
        const uint32_t res = state.gpr[inst.reg1] & int_src();
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterLogic(res));
        break;
      }
      case Op::OR: {
        const uint32_t res = state.gpr[inst.reg1] | int_src();
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterLogic(res));
        break;
      }
      case Op::XOR: {
        const uint32_t res = state.gpr[inst.reg1] ^ int_src();
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterLogic(res));
        break;
      }
      case Op::TEST: {
        const uint32_t res = state.gpr[inst.reg1] & int_src();
        set_flags(flags::afterLogic(res));
        break;
      }
      // GX86 deviation (documented in isa.hh): shifts always set
      // Z/S/P from the (possibly unchanged) result; CF is 0 when the
      // masked count is zero. This keeps the DBT lowering branchless.
      case Op::SHL: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t count = int_src() & 31;
        const uint32_t res = a << count;
        state.gpr[inst.reg1] = res;
        set_flags(count ? flags::afterShl(a, count, res)
                        : flags::afterLogic(res));
        break;
      }
      case Op::SHR: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t count = int_src() & 31;
        const uint32_t res = a >> count;
        state.gpr[inst.reg1] = res;
        set_flags(count ? flags::afterShr(a, count, res)
                        : flags::afterLogic(res));
        break;
      }
      case Op::SAR: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t count = int_src() & 31;
        const uint32_t res = static_cast<uint32_t>(
            static_cast<int32_t>(a) >> count);
        state.gpr[inst.reg1] = res;
        set_flags(count ? flags::afterSar(a, count, res)
                        : flags::afterLogic(res));
        break;
      }
      case Op::IMUL: {
        const int64_t full =
            static_cast<int64_t>(
                static_cast<int32_t>(state.gpr[inst.reg1])) *
            static_cast<int64_t>(static_cast<int32_t>(int_src()));
        const uint32_t res = static_cast<uint32_t>(full);
        state.gpr[inst.reg1] = res;
        set_flags(flags::afterImul(full, res));
        break;
      }
      case Op::IDIV: {
        const int32_t divisor = static_cast<int32_t>(rm_value());
        const int32_t dividend = static_cast<int32_t>(state.gpr[EAX]);
        if (divisor == 0 ||
            (dividend == INT32_MIN && divisor == -1)) {
            // Total-function deviation: no fault.
            state.gpr[EDX] = static_cast<uint32_t>(dividend);
            state.gpr[EAX] = 0;
        } else {
            state.gpr[EAX] = static_cast<uint32_t>(dividend / divisor);
            state.gpr[EDX] = static_cast<uint32_t>(dividend % divisor);
        }
        break;
      }
      case Op::INC: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t res = a + 1;
        state.gpr[inst.reg1] = res;
        uint32_t f = flags::szp(res);
        if (a == 0x7FFFFFFFu)
            f |= flag::OF;
        set_flags(f);
        break;
      }
      case Op::DEC: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t res = a - 1;
        state.gpr[inst.reg1] = res;
        uint32_t f = flags::szp(res);
        if (a == 0x80000000u)
            f |= flag::OF;
        set_flags(f);
        break;
      }
      case Op::NEG: {
        const uint32_t a = state.gpr[inst.reg1];
        const uint32_t res = 0u - a;
        state.gpr[inst.reg1] = res;
        uint32_t f = flags::szp(res);
        if (a != 0)
            f |= flag::CF;
        if (a == 0x80000000u)
            f |= flag::OF;
        set_flags(f);
        break;
      }
      case Op::NOT:
        state.gpr[inst.reg1] = ~state.gpr[inst.reg1];
        break;

      case Op::PUSH:
        switch (inst.form) {
          case Form::R: push32(state.gpr[inst.reg1]); break;
          case Form::I: push32(static_cast<uint32_t>(inst.imm)); break;
          case Form::M:
            push32(static_cast<uint32_t>(
                memory.load(effectiveAddr(state, inst.mem), 4)));
            break;
          default: panic("push: bad form");
        }
        break;
      case Op::POP:
        state.gpr[inst.reg1] = pop32();
        break;

      case Op::JMP:
        state.eip = next_eip + static_cast<uint32_t>(inst.imm);
        result.taken = true;
        break;
      case Op::JCC:
        if (evalCond(inst.cond, state.eflags)) {
            state.eip = next_eip + static_cast<uint32_t>(inst.imm);
            result.taken = true;
        }
        break;
      case Op::JMPI:
        state.eip = rm_value();
        result.taken = true;
        break;
      case Op::CALL:
        push32(next_eip);
        state.eip = next_eip + static_cast<uint32_t>(inst.imm);
        result.taken = true;
        break;
      case Op::CALLI: {
        const uint32_t target = rm_value();
        push32(next_eip);
        state.eip = target;
        result.taken = true;
        break;
      }
      case Op::RET:
        state.eip = pop32();
        result.taken = true;
        break;

      case Op::FMOV:
        state.fpr[inst.reg1] = state.fpr[inst.reg2];
        break;
      case Op::FLD:
        state.fpr[inst.reg1] = bitsToDouble(
            memory.load(effectiveAddr(state, inst.mem), 8));
        break;
      case Op::FST:
        memory.store(effectiveAddr(state, inst.mem),
                     doubleToBits(state.fpr[inst.reg1]), 8);
        break;
      case Op::FADD:
        state.fpr[inst.reg1] = canonFp(state.fpr[inst.reg1] + fp_src());
        break;
      case Op::FSUB:
        state.fpr[inst.reg1] = canonFp(state.fpr[inst.reg1] - fp_src());
        break;
      case Op::FMUL:
        state.fpr[inst.reg1] = canonFp(state.fpr[inst.reg1] * fp_src());
        break;
      case Op::FDIV:
        state.fpr[inst.reg1] = canonFp(state.fpr[inst.reg1] / fp_src());
        break;
      case Op::FCMP:
        set_flags(flags::afterFcmp(state.fpr[inst.reg1], fp_src()));
        break;
      case Op::FSQRT:
        state.fpr[inst.reg1] = canonFp(std::sqrt(state.fpr[inst.reg2]));
        break;
      case Op::FABS:
        state.fpr[inst.reg1] = std::fabs(state.fpr[inst.reg2]);
        break;
      case Op::FNEG:
        state.fpr[inst.reg1] = -state.fpr[inst.reg2];
        break;
      case Op::CVTIF:
        state.fpr[inst.reg1] = static_cast<double>(
            static_cast<int32_t>(state.gpr[inst.reg2]));
        break;
      case Op::CVTFI:
        state.gpr[inst.reg1] = detail::truncToInt32(state.fpr[inst.reg2]);
        break;

      case Op::NOP:
        break;
      case Op::HALT:
        result.halted = true;
        state.eip -= inst.length;  // HALT does not advance
        break;

      default:
        panic("execInst: unhandled opcode %s", opName(inst.op));
    }

    return result;
}

} // namespace darco::guest

#endif // DARCO_GUEST_EXEC_HH
