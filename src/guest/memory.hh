/**
 * @file
 * Guest memory space: the authoritative x86-component memory. The
 * co-design component embeds its *emulated* guest memory in the low
 * 4 GiB of the host address space instead (see host/address_map.hh).
 */

#ifndef DARCO_GUEST_MEMORY_HH
#define DARCO_GUEST_MEMORY_HH

#include <cstdint>

#include "common/paged_memory.hh"

namespace darco::guest {

using Memory = PagedMemory<uint32_t>;

/** Default guest virtual-memory layout (x86-flavoured). */
namespace layout {
constexpr uint32_t kCodeBase = 0x08048000;
constexpr uint32_t kDataBase = 0x10000000;
constexpr uint32_t kStackTop = 0xBFFF0000;
} // namespace layout

} // namespace darco::guest

#endif // DARCO_GUEST_MEMORY_HH
