/**
 * @file
 * The authoritative functional emulator — DARCO's "x86 component".
 *
 * Executes a guest program directly against its own guest memory
 * space, keeping the authoritative architectural state that the
 * co-simulation state checker compares the co-design component
 * against (Figure 2 of the paper).
 */

#ifndef DARCO_GUEST_EMULATOR_HH
#define DARCO_GUEST_EMULATOR_HH

#include <cstdint>
#include <unordered_map>

#include "guest/assembler.hh"
#include "guest/encoding.hh"
#include "guest/exec.hh"
#include "guest/memory.hh"

namespace darco::guest {

/** Dynamic-execution counters kept by the emulator. */
struct EmulatorStats
{
    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t condBranches = 0;
    uint64_t indirectBranches = 0;   ///< JMPI + CALLI + RET
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t memReads = 0;           ///< instructions with a load
    uint64_t memWrites = 0;          ///< instructions with a store
    uint64_t fpOps = 0;
};

/**
 * Observer of executed guest control transfers. The emulator is the
 * authoritative oracle of the whole simulator (co-simulation replays
 * every retired instruction through it), so an observer attached here
 * sees the exact dynamic branch stream of the run — the
 * characterization layer's guest-level branch profile
 * (profile/guest_branch.hh) and the static-CFG cross-checks
 * (src/analysis/cfg.hh) are built on it.
 */
class BranchObserver
{
  public:
    virtual ~BranchObserver() = default;

    /**
     * One executed control-transfer instruction.
     * @param pc    EIP of the branch
     * @param next  EIP execution actually landed on
     * @param taken direction (false only for a not-taken JCC)
     * @param info  static properties of the opcode
     */
    virtual void onBranch(uint32_t pc, uint32_t next, bool taken,
                          const OpInfo &info) = 0;
};

class Emulator
{
  public:
    explicit Emulator(Memory &memory) : mem(memory) {}

    /** Load a program and reset architectural state to its entry. */
    void
    reset(const Program &program)
    {
        program.loadInto(mem);
        archState = program.initialState();
        halted = false;
        stats = EmulatorStats();
        decodeCache.clear();
    }

    /** Reset to an explicit state (program already loaded). */
    void
    resetState(const State &state)
    {
        archState = state;
        halted = false;
    }

    /**
     * Execute one instruction.
     * @return false once HALT has been reached.
     */
    bool step();

    /**
     * Run up to @p max_insts instructions.
     * @return instructions actually executed.
     */
    uint64_t run(uint64_t max_insts);

    bool isHalted() const { return halted; }
    const State &state() const { return archState; }
    State &state() { return archState; }
    const EmulatorStats &emuStats() const { return stats; }
    Memory &memory() { return mem; }

    /** Decode (with caching) the instruction at @p addr. */
    const Inst &decodeAt(uint32_t addr);

    /** Attach (or clear, with nullptr) the branch observer. Off the
     *  default path: no observer means no extra work per step. */
    void setBranchObserver(BranchObserver *obs) { branchObs = obs; }

  private:
    Memory &mem;
    State archState;
    bool halted = false;
    EmulatorStats stats;
    BranchObserver *branchObs = nullptr;
    std::unordered_map<uint32_t, Inst> decodeCache;
};

} // namespace darco::guest

#endif // DARCO_GUEST_EMULATOR_HH
