/**
 * @file
 * The authoritative functional emulator — DARCO's "x86 component".
 *
 * Executes a guest program directly against its own guest memory
 * space, keeping the authoritative architectural state that the
 * co-simulation state checker compares the co-design component
 * against (Figure 2 of the paper).
 */

#ifndef DARCO_GUEST_EMULATOR_HH
#define DARCO_GUEST_EMULATOR_HH

#include <cstdint>
#include <unordered_map>

#include "guest/assembler.hh"
#include "guest/encoding.hh"
#include "guest/exec.hh"
#include "guest/memory.hh"

namespace darco::guest {

/** Dynamic-execution counters kept by the emulator. */
struct EmulatorStats
{
    uint64_t instructions = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t condBranches = 0;
    uint64_t indirectBranches = 0;   ///< JMPI + CALLI + RET
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t memReads = 0;           ///< instructions with a load
    uint64_t memWrites = 0;          ///< instructions with a store
    uint64_t fpOps = 0;
};

class Emulator
{
  public:
    explicit Emulator(Memory &memory) : mem(memory) {}

    /** Load a program and reset architectural state to its entry. */
    void
    reset(const Program &program)
    {
        program.loadInto(mem);
        archState = program.initialState();
        halted = false;
        stats = EmulatorStats();
        decodeCache.clear();
    }

    /** Reset to an explicit state (program already loaded). */
    void
    resetState(const State &state)
    {
        archState = state;
        halted = false;
    }

    /**
     * Execute one instruction.
     * @return false once HALT has been reached.
     */
    bool step();

    /**
     * Run up to @p max_insts instructions.
     * @return instructions actually executed.
     */
    uint64_t run(uint64_t max_insts);

    bool isHalted() const { return halted; }
    const State &state() const { return archState; }
    State &state() { return archState; }
    const EmulatorStats &emuStats() const { return stats; }
    Memory &memory() { return mem; }

    /** Decode (with caching) the instruction at @p addr. */
    const Inst &decodeAt(uint32_t addr);

  private:
    Memory &mem;
    State archState;
    bool halted = false;
    EmulatorStats stats;
    std::unordered_map<uint32_t, Inst> decodeCache;
};

} // namespace darco::guest

#endif // DARCO_GUEST_EMULATOR_HH
