#include "guest/isa.hh"

#include <cmath>

#include "common/logging.hh"

namespace darco::guest {

bool
evalCond(Cond cond, uint32_t eflags)
{
    const bool zf = eflags & flag::ZF;
    const bool sf = eflags & flag::SF;
    const bool of = eflags & flag::OF;
    const bool cf = eflags & flag::CF;
    switch (cond) {
      case Cond::E:  return zf;
      case Cond::NE: return !zf;
      case Cond::L:  return sf != of;
      case Cond::GE: return sf == of;
      case Cond::LE: return zf || (sf != of);
      case Cond::G:  return !zf && (sf == of);
      case Cond::B:  return cf;
      case Cond::AE: return !cf;
      case Cond::S:  return sf;
      case Cond::NS: return !sf;
      default: panic("bad condition code %d", static_cast<int>(cond));
    }
}

uint32_t
condFlagsRead(Cond cond)
{
    switch (cond) {
      case Cond::E:
      case Cond::NE: return flag::ZF;
      case Cond::L:
      case Cond::GE: return flag::SF | flag::OF;
      case Cond::LE:
      case Cond::G:  return flag::ZF | flag::SF | flag::OF;
      case Cond::B:
      case Cond::AE: return flag::CF;
      case Cond::S:
      case Cond::NS: return flag::SF;
      default: panic("bad condition code %d", static_cast<int>(cond));
    }
}

const char *
condName(Cond cond)
{
    static const char *names[] = {
        "e", "ne", "l", "ge", "le", "g", "b", "ae", "s", "ns",
    };
    return names[static_cast<int>(cond)];
}

namespace detail {

constexpr uint32_t kSzpOc = flag::SF | flag::ZF | flag::PF | flag::OF |
                            flag::CF;
constexpr uint32_t kSzp = flag::SF | flag::ZF | flag::PF;
constexpr uint32_t kSzpO = flag::SF | flag::ZF | flag::PF | flag::OF;
constexpr uint32_t kSzpC = flag::SF | flag::ZF | flag::PF | flag::CF;

// Table indexed by Op. Fields:
// name, flagsWritten, keepsCf, isFp, isBranch, isCondBranch,
// isIndirect, isCall, isRet, memSize, complexAlu
const OpInfo kOpTable[] = {
    {"mov",   0,       false, false, false, false, false, false, false, 4, false},
    {"movb",  0,       false, false, false, false, false, false, false, 1, false},
    {"lea",   0,       false, false, false, false, false, false, false, 4, false},
    {"add",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"sub",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"and",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"or",    kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"xor",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"cmp",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"test",  kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"shl",   kSzpC,   false, false, false, false, false, false, false, 4, false},
    {"shr",   kSzpC,   false, false, false, false, false, false, false, 4, false},
    {"sar",   kSzpC,   false, false, false, false, false, false, false, 4, false},
    {"imul",  kSzpOc,  false, false, false, false, false, false, false, 4, true},
    {"idiv",  0,       false, false, false, false, false, false, false, 4, true},
    {"inc",   kSzpO,   true,  false, false, false, false, false, false, 4, false},
    {"dec",   kSzpO,   true,  false, false, false, false, false, false, 4, false},
    {"neg",   kSzpOc,  false, false, false, false, false, false, false, 4, false},
    {"not",   0,       false, false, false, false, false, false, false, 4, false},
    {"push",  0,       false, false, false, false, false, false, false, 4, false},
    {"pop",   0,       false, false, false, false, false, false, false, 4, false},
    {"jmp",   0,       false, false, true,  false, false, false, false, 4, false},
    {"jmpi",  0,       false, false, true,  false, true,  false, false, 4, false},
    {"jcc",   0,       false, false, true,  true,  false, false, false, 4, false},
    {"call",  0,       false, false, true,  false, false, true,  false, 4, false},
    {"calli", 0,       false, false, true,  false, true,  true,  false, 4, false},
    {"ret",   0,       false, false, true,  false, true,  false, true,  4, false},
    {"fmov",  0,       false, true,  false, false, false, false, false, 8, false},
    {"fld",   0,       false, true,  false, false, false, false, false, 8, false},
    {"fst",   0,       false, true,  false, false, false, false, false, 8, false},
    {"fadd",  0,       false, true,  false, false, false, false, false, 8, false},
    {"fsub",  0,       false, true,  false, false, false, false, false, 8, false},
    {"fmul",  0,       false, true,  false, false, false, false, false, 8, true},
    {"fdiv",  0,       false, true,  false, false, false, false, false, 8, true},
    {"fcmp",  kSzpOc,  false, true,  false, false, false, false, false, 8, false},
    {"fsqrt", 0,       false, true,  false, false, false, false, false, 8, true},
    {"fabs",  0,       false, true,  false, false, false, false, false, 8, false},
    {"fneg",  0,       false, true,  false, false, false, false, false, 8, false},
    {"cvtif", 0,       false, true,  false, false, false, false, false, 4, false},
    {"cvtfi", 0,       false, true,  false, false, false, false, false, 4, false},
    {"nop",   0,       false, false, false, false, false, false, false, 4, false},
    {"halt",  0,       false, false, false, false, false, false, false, 4, false},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
              static_cast<size_t>(Op::NumOps),
              "kOpTable must cover every Op");

} // namespace detail

bool
formValid(Op op, Form form)
{
    switch (op) {
      case Op::MOV:
        return form == Form::RR || form == Form::RI || form == Form::RM ||
               form == Form::MR;
      case Op::MOVB:
        return form == Form::RM || form == Form::MR;
      case Op::LEA:
        return form == Form::RM;
      case Op::ADD: case Op::SUB: case Op::AND: case Op::OR:
      case Op::XOR: case Op::CMP: case Op::TEST: case Op::IMUL:
        return form == Form::RR || form == Form::RI || form == Form::RM;
      case Op::SHL: case Op::SHR: case Op::SAR:
        return form == Form::RR || form == Form::RI;
      case Op::IDIV:
        return form == Form::R || form == Form::M;
      case Op::INC: case Op::DEC: case Op::NEG: case Op::NOT:
        return form == Form::R;
      case Op::PUSH:
        return form == Form::R || form == Form::I || form == Form::M;
      case Op::POP:
        return form == Form::R;
      case Op::JMP: case Op::CALL:
        return form == Form::I;
      case Op::JCC:
        return form == Form::I;
      case Op::JMPI: case Op::CALLI:
        return form == Form::R || form == Form::M;
      case Op::RET: case Op::NOP: case Op::HALT:
        return form == Form::NONE;
      case Op::FMOV: case Op::FADD: case Op::FSUB: case Op::FMUL:
      case Op::FDIV: case Op::FCMP:
        return form == Form::RR || form == Form::RM;
      case Op::FSQRT: case Op::FABS: case Op::FNEG:
        return form == Form::RR;
      case Op::FLD:
        return form == Form::RM;
      case Op::FST:
        return form == Form::MR;
      case Op::CVTIF: case Op::CVTFI:
        return form == Form::RR;
      default:
        return false;
    }
}

namespace flags {

uint32_t
parity(uint32_t result)
{
    uint32_t b = result & 0xFF;
    b ^= b >> 4;
    b ^= b >> 2;
    b ^= b >> 1;
    return (b & 1) ? 0 : flag::PF;
}

uint32_t
szp(uint32_t result)
{
    uint32_t f = parity(result);
    if (result == 0)
        f |= flag::ZF;
    if (result & 0x80000000u)
        f |= flag::SF;
    return f;
}

uint32_t
afterAdd(uint32_t a, uint32_t b, uint32_t result)
{
    uint32_t f = szp(result);
    if (result < a)
        f |= flag::CF;
    if ((~(a ^ b) & (a ^ result)) & 0x80000000u)
        f |= flag::OF;
    return f;
}

uint32_t
afterSub(uint32_t a, uint32_t b, uint32_t result)
{
    uint32_t f = szp(result);
    if (a < b)
        f |= flag::CF;
    if (((a ^ b) & (a ^ result)) & 0x80000000u)
        f |= flag::OF;
    return f;
}

uint32_t
afterLogic(uint32_t result)
{
    return szp(result);
}

uint32_t
afterShl(uint32_t a, uint32_t count, uint32_t result)
{
    uint32_t f = szp(result);
    if ((a >> (32 - count)) & 1)
        f |= flag::CF;
    return f;
}

uint32_t
afterShr(uint32_t a, uint32_t count, uint32_t result)
{
    uint32_t f = szp(result);
    if ((a >> (count - 1)) & 1)
        f |= flag::CF;
    return f;
}

uint32_t
afterSar(uint32_t a, uint32_t count, uint32_t result)
{
    uint32_t f = szp(result);
    if ((static_cast<int32_t>(a) >> (count - 1)) & 1)
        f |= flag::CF;
    return f;
}

uint32_t
afterImul(int64_t full, uint32_t result)
{
    uint32_t f = szp(result);
    if (full != static_cast<int64_t>(static_cast<int32_t>(result)))
        f |= flag::CF | flag::OF;
    return f;
}

uint32_t
afterFcmp(double a, double b)
{
    if (std::isnan(a) || std::isnan(b))
        return flag::ZF | flag::CF | flag::PF;
    uint32_t f = 0;
    if (a == b)
        f |= flag::ZF;
    if (a < b)
        f |= flag::CF;
    return f;
}

} // namespace flags

} // namespace darco::guest
