/**
 * @file
 * Programmatic GX86 assembler.
 *
 * Workload generators and tests build guest programs through this
 * class: emitters append encoded instructions to a code buffer;
 * labels with forward references are fixed up at finalize() time.
 * Forward-referenced branches always reserve a 4-byte displacement;
 * bound (backward) branches use the short 1-byte form when it fits,
 * which keeps the instruction-length distribution realistic.
 */

#ifndef DARCO_GUEST_ASSEMBLER_HH
#define DARCO_GUEST_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "guest/encoding.hh"
#include "guest/isa.hh"

namespace darco::guest {

/** Build a [base + index*scale + disp] memory operand. */
inline MemOperand
mem(Reg base, int32_t disp = 0)
{
    MemOperand m;
    m.base = base;
    m.disp = disp;
    return m;
}

inline MemOperand
mem(Reg base, Reg index, uint8_t scale_log2, int32_t disp = 0)
{
    MemOperand m;
    m.base = base;
    m.index = index;
    m.scaleLog2 = scale_log2;
    m.hasIndex = true;
    m.disp = disp;
    return m;
}

class Assembler
{
  public:
    /** Opaque label handle. */
    struct Label { int id = -1; };

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current code offset. */
    void bind(Label label);

    /** True once bind() was called for @p label. */
    bool isBound(Label label) const;

    // ----- data movement ---------------------------------------------
    void mov(Reg dst, Reg src)        { emitRR(Op::MOV, dst, src); }
    void mov(Reg dst, int32_t imm)    { emitRI(Op::MOV, dst, imm); }
    void mov(Reg dst, MemOperand m)   { emitRM(Op::MOV, dst, m); }
    void mov(MemOperand m, Reg src)   { emitMR(Op::MOV, src, m); }
    void movb(Reg dst, MemOperand m)  { emitRM(Op::MOVB, dst, m); }
    void movb(MemOperand m, Reg src)  { emitMR(Op::MOVB, src, m); }
    void lea(Reg dst, MemOperand m)   { emitRM(Op::LEA, dst, m); }

    /** MOV reg, <address of label>; resolved at finalize(). */
    void movLabel(Reg dst, Label label);

    // ----- integer ALU ------------------------------------------------
    void add(Reg d, Reg s)        { emitRR(Op::ADD, d, s); }
    void add(Reg d, int32_t imm)  { emitRI(Op::ADD, d, imm); }
    void add(Reg d, MemOperand m) { emitRM(Op::ADD, d, m); }
    void sub(Reg d, Reg s)        { emitRR(Op::SUB, d, s); }
    void sub(Reg d, int32_t imm)  { emitRI(Op::SUB, d, imm); }
    void sub(Reg d, MemOperand m) { emitRM(Op::SUB, d, m); }
    void and_(Reg d, Reg s)       { emitRR(Op::AND, d, s); }
    void and_(Reg d, int32_t imm) { emitRI(Op::AND, d, imm); }
    void and_(Reg d, MemOperand m){ emitRM(Op::AND, d, m); }
    void or_(Reg d, Reg s)        { emitRR(Op::OR, d, s); }
    void or_(Reg d, int32_t imm)  { emitRI(Op::OR, d, imm); }
    void or_(Reg d, MemOperand m) { emitRM(Op::OR, d, m); }
    void xor_(Reg d, Reg s)       { emitRR(Op::XOR, d, s); }
    void xor_(Reg d, int32_t imm) { emitRI(Op::XOR, d, imm); }
    void xor_(Reg d, MemOperand m){ emitRM(Op::XOR, d, m); }
    void cmp(Reg d, Reg s)        { emitRR(Op::CMP, d, s); }
    void cmp(Reg d, int32_t imm)  { emitRI(Op::CMP, d, imm); }
    void cmp(Reg d, MemOperand m) { emitRM(Op::CMP, d, m); }
    void test(Reg d, Reg s)       { emitRR(Op::TEST, d, s); }
    void test(Reg d, int32_t imm) { emitRI(Op::TEST, d, imm); }
    void imul(Reg d, Reg s)       { emitRR(Op::IMUL, d, s); }
    void imul(Reg d, int32_t imm) { emitRI(Op::IMUL, d, imm); }
    void imul(Reg d, MemOperand m){ emitRM(Op::IMUL, d, m); }
    void shl(Reg d, Reg s)        { emitRR(Op::SHL, d, s); }
    void shl(Reg d, int32_t imm)  { emitRI(Op::SHL, d, imm); }
    void shr(Reg d, Reg s)        { emitRR(Op::SHR, d, s); }
    void shr(Reg d, int32_t imm)  { emitRI(Op::SHR, d, imm); }
    void sar(Reg d, Reg s)        { emitRR(Op::SAR, d, s); }
    void sar(Reg d, int32_t imm)  { emitRI(Op::SAR, d, imm); }
    void idiv(Reg src)            { emitR(Op::IDIV, src); }
    void idiv(MemOperand m)       { emitM(Op::IDIV, m); }
    void inc(Reg r)               { emitR(Op::INC, r); }
    void dec(Reg r)               { emitR(Op::DEC, r); }
    void neg(Reg r)               { emitR(Op::NEG, r); }
    void not_(Reg r)              { emitR(Op::NOT, r); }

    // ----- stack --------------------------------------------------------
    void push(Reg r)              { emitR(Op::PUSH, r); }
    void push(int32_t imm)        { emitI(Op::PUSH, imm); }
    void push(MemOperand m)       { emitM(Op::PUSH, m); }
    void pop(Reg r)               { emitR(Op::POP, r); }

    // ----- control flow -------------------------------------------------
    void jmp(Label target)             { emitBranch(Op::JMP, Cond::E, target); }
    void jcc(Cond cond, Label target)  { emitBranch(Op::JCC, cond, target); }
    void call(Label target)            { emitBranch(Op::CALL, Cond::E, target); }
    void jmpi(Reg r)                   { emitR(Op::JMPI, r); }
    void jmpi(MemOperand m)            { emitM(Op::JMPI, m); }
    void calli(Reg r)                  { emitR(Op::CALLI, r); }
    void calli(MemOperand m)           { emitM(Op::CALLI, m); }
    void ret()                         { emitNone(Op::RET); }

    // ----- floating point -------------------------------------------------
    void fmov(FReg d, FReg s)       { emitFRR(Op::FMOV, d, s); }
    void fld(FReg d, MemOperand m)  { emitFRM(Op::FLD, d, m); }
    void fst(MemOperand m, FReg s)  { emitFMR(Op::FST, s, m); }
    void fadd(FReg d, FReg s)       { emitFRR(Op::FADD, d, s); }
    void fadd(FReg d, MemOperand m) { emitFRM(Op::FADD, d, m); }
    void fsub(FReg d, FReg s)       { emitFRR(Op::FSUB, d, s); }
    void fsub(FReg d, MemOperand m) { emitFRM(Op::FSUB, d, m); }
    void fmul(FReg d, FReg s)       { emitFRR(Op::FMUL, d, s); }
    void fmul(FReg d, MemOperand m) { emitFRM(Op::FMUL, d, m); }
    void fdiv(FReg d, FReg s)       { emitFRR(Op::FDIV, d, s); }
    void fdiv(FReg d, MemOperand m) { emitFRM(Op::FDIV, d, m); }
    void fcmp(FReg a, FReg b)       { emitFRR(Op::FCMP, a, b); }
    void fcmp(FReg a, MemOperand m) { emitFRM(Op::FCMP, a, m); }
    void fsqrt(FReg d, FReg s)      { emitFRR(Op::FSQRT, d, s); }
    void fabs_(FReg d, FReg s)      { emitFRR(Op::FABS, d, s); }
    void fneg(FReg d, FReg s)       { emitFRR(Op::FNEG, d, s); }
    void cvtif(FReg d, Reg s);
    void cvtfi(Reg d, FReg s);

    // ----- misc ---------------------------------------------------------
    void nop()  { emitNone(Op::NOP); }
    void halt() { emitNone(Op::HALT); }

    /** Append a pre-built instruction. */
    void emit(Inst inst);

    /** Current code offset (bytes emitted so far). */
    uint32_t offset() const { return static_cast<uint32_t>(code.size()); }

    /** Number of instructions emitted. */
    uint32_t numInsts() const { return instCount; }

    /**
     * Resolve all fixups against @p base_addr and return the code.
     * After finalize(), labelAddr() maps labels to absolute guest
     * addresses (for building jump tables in data segments).
     */
    std::vector<uint8_t> finalize(uint32_t base_addr);

    /** Absolute address of a bound label; valid after finalize(). */
    uint32_t labelAddr(Label label) const;

  private:
    void emitRR(Op op, uint8_t r1, uint8_t r2);
    void emitRI(Op op, uint8_t r1, int32_t imm);
    void emitRM(Op op, uint8_t r1, const MemOperand &m);
    void emitMR(Op op, uint8_t r1, const MemOperand &m);
    void emitR(Op op, uint8_t r1);
    void emitM(Op op, const MemOperand &m);
    void emitI(Op op, int32_t imm);
    void emitNone(Op op);
    void emitFRR(Op op, uint8_t r1, uint8_t r2) { emitRR(op, r1, r2); }
    void emitFRM(Op op, uint8_t r1, const MemOperand &m) { emitRM(op, r1, m); }
    void emitFMR(Op op, uint8_t r1, const MemOperand &m) { emitMR(op, r1, m); }
    void emitBranch(Op op, Cond cond, Label target);

    struct Fixup
    {
        size_t immOffset;    ///< byte offset of the 4-byte field
        size_t instEnd;      ///< offset just past the instruction
        int labelId;
        bool absolute;       ///< movLabel: absolute addr, not relative
    };

    std::vector<uint8_t> code;
    std::vector<Fixup> fixups;
    std::vector<int64_t> labelOffsets;  ///< -1 while unbound
    uint32_t instCount = 0;
    uint32_t finalBase = 0;
    bool finalized = false;
};

/**
 * A complete guest program: code image, entry point, initialized data
 * segments, and the initial stack pointer.
 */
struct Program
{
    uint32_t codeBase = layoutCodeBase();
    std::vector<uint8_t> code;
    uint32_t entry = 0;
    uint32_t stackTop = layoutStackTop();

    struct DataSegment
    {
        uint32_t addr;
        std::vector<uint8_t> bytes;
    };
    std::vector<DataSegment> data;

    static uint32_t layoutCodeBase();
    static uint32_t layoutStackTop();

    /** Initial architectural state (EIP at entry, ESP at stackTop). */
    State initialState() const;

    /** Copy code and data into any paged memory (32- or 64-bit). */
    template <typename Mem>
    void
    loadInto(Mem &memory) const
    {
        memory.writeBytes(typename Mem::Addr(codeBase), code.data(),
                          code.size());
        for (const auto &seg : data) {
            memory.writeBytes(typename Mem::Addr(seg.addr),
                              seg.bytes.data(), seg.bytes.size());
        }
    }

    /** Static instruction count (decodes the whole image). */
    uint32_t countStaticInsts() const;
};

} // namespace darco::guest

#endif // DARCO_GUEST_ASSEMBLER_HH
