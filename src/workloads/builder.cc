/**
 * @file
 * Synthetic-benchmark generator: lowers BenchParams into a GX86
 * program from kernel archetypes (cold blobs, warm loops, hot
 * kernels, indirect dispatch, call trees, streams, pointer chases).
 */

#include "workloads/params.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/prng.hh"
#include "guest/memory.hh"

namespace darco::workloads {

namespace g = darco::guest;
using g::Assembler;
using g::mem;
using darco::Prng;

namespace {

/**
 * Register conventions inside generated code:
 *   EBP  outer phase-cycle counter
 *   ESI  primary data pointer       EDI  secondary data pointer
 *   EAX, EBX, ECX, EDX  kernel scratch (ECX = loop counters)
 */
class Builder
{
  public:
    explicit Builder(const BenchParams &params)
        : p(params), rng(params.seed)
    {}

    g::Program build();

  private:
    void emitAluOp(g::Reg dst, g::Reg src);
    void emitColdBlob(uint32_t insts);
    void emitWarmLoop(uint32_t iters, uint32_t body, bool fp,
                      uint32_t array_addr, uint32_t array_bytes);
    void emitHotKernel(uint32_t iters, uint32_t body, bool fp,
                       uint32_t array_addr, uint32_t array_bytes);
    void emitDispatch(uint32_t iters, uint32_t targets,
                      uint32_t table_addr);
    void emitCallPairs(uint32_t pairs);
    void emitChase(uint32_t iters, uint32_t list_addr, uint32_t nodes);

    const BenchParams &p;
    Prng rng;
    Assembler as;
    std::vector<Assembler::Label> callees;
    std::vector<Assembler::Label> dispatchCases;
};

void
Builder::emitAluOp(g::Reg dst, g::Reg src)
{
    switch (rng.below(8)) {
      case 0: as.add(dst, src); break;
      case 1: as.sub(dst, src); break;
      case 2: as.xor_(dst, src); break;
      case 3: as.or_(dst, src); break;
      case 4: as.and_(dst, static_cast<int32_t>(rng.below(0xFFFF)) | 1);
              break;
      case 5: as.add(dst, static_cast<int32_t>(rng.below(4096)));
              break;
      case 6: as.shl(dst, static_cast<int32_t>(1 + rng.below(4)));
              break;
      default: as.imul(dst, static_cast<int32_t>(3 + rng.below(13)));
               break;
    }
}

void
Builder::emitColdBlob(uint32_t insts)
{
    // Straight-line code broken into ~8-instruction basic blocks by
    // never-taken forward branches (so the static BB population is
    // realistic). Executed once per phase cycle.
    uint32_t emitted = 0;
    as.mov(g::EAX, static_cast<int32_t>(rng.below(1u << 20)));
    as.mov(g::EBX, static_cast<int32_t>(rng.below(1u << 20)) | 1);
    emitted += 2;
    while (emitted < insts) {
        const uint32_t chunk =
            static_cast<uint32_t>(6 + rng.below(5));
        for (uint32_t i = 0; i < chunk && emitted < insts; ++i) {
            emitAluOp(rng.chance(0.5) ? g::EAX : g::EDX,
                      rng.chance(0.5) ? g::EBX : g::EAX);
            ++emitted;
        }
        if (emitted + 2 < insts) {
            // test eax,eax is never zero-and-taken-path here: compare
            // against an impossible constant instead.
            auto skip = as.newLabel();
            as.cmp(g::EBX, 0);         // EBX kept odd and non-zero
            as.jcc(g::Cond::E, skip);
            as.bind(skip);
            emitted += 2;
        }
    }
}

void
Builder::emitWarmLoop(uint32_t iters, uint32_t body, bool fp,
                      uint32_t array_addr, uint32_t array_bytes)
{
    as.mov(g::ECX, static_cast<int32_t>(iters));
    as.mov(g::ESI, static_cast<int32_t>(array_addr));
    auto loop = as.newLabel();
    as.bind(loop);

    const uint32_t mask = array_bytes ? (array_bytes - 1) & ~7u : 0;
    if (fp) {
        if (p.warmMem && array_bytes) {
            as.mov(g::EDX, g::ECX);
            as.imul(g::EDX, static_cast<int32_t>(p.strideBytes * 8));
            as.and_(g::EDX, static_cast<int32_t>(mask));
            as.fld(g::F0, mem(g::ESI, g::EDX, 0));
        } else {
            as.cvtif(g::F0, g::ECX);
        }
        // Rotate over four accumulators: realistic FP ILP (not one
        // serial dependence chain).
        static const g::FReg accs[4] = {g::F1, g::F2, g::F3, g::F4};
        for (uint32_t i = 0; i < body; ++i) {
            const g::FReg acc = accs[i % 4];
            switch (rng.below(4)) {
              case 0: as.fadd(acc, g::F0); break;
              case 1: as.fmul(acc, g::F0); break;
              case 2: as.fsub(acc, g::F0); break;
              default: as.fadd(acc, g::F0); break;
            }
        }
        if (p.warmMem && array_bytes)
            as.fst(mem(g::ESI, g::EDX, 0), g::F1);
        as.fadd(g::F1, g::F2);
    } else {
        if (p.warmMem && array_bytes) {
            as.mov(g::EDX, g::ECX);
            as.imul(g::EDX, static_cast<int32_t>(p.strideBytes));
            as.and_(g::EDX, static_cast<int32_t>(mask));
            as.mov(g::EAX, mem(g::ESI, g::EDX, 0));
        }
        for (uint32_t i = 0; i < body; ++i)
            emitAluOp(rng.chance(0.6) ? g::EAX : g::EBX, g::EAX);
        if (p.warmMem && array_bytes)
            as.mov(mem(g::ESI, g::EDX, 0), g::EAX);
    }

    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
}

void
Builder::emitHotKernel(uint32_t iters, uint32_t body, bool fp,
                       uint32_t array_addr, uint32_t array_bytes)
{
    if (p.hotIlp && !fp) {
        // High-ILP variant: immediate-form ops (no source register)
        // with the destination rotating over four registers, so any
        // value is re-read at the earliest four instructions after it
        // was written — far enough for every integer latency at every
        // supported width. The body issues at full machine width,
        // which is the burst dispatcher's steady-state regime.
        static const g::Reg dsts[4] = {g::EAX, g::EBX, g::EDX,
                                       g::EDI};
        as.mov(g::ECX, static_cast<int32_t>(iters));
        auto loop = as.newLabel();
        as.bind(loop);
        // Immediates stay inside the translator's I12 single-record
        // lowerings (tol/emitter.cc lowerAluImm): a wider constant
        // materializes into a serial two-record pair, which halves
        // the stream's issue width and defeats the point of this
        // kernel.
        for (uint32_t i = 0; i < body; ++i) {
            const g::Reg dst = dsts[i % 4];
            switch (rng.below(4)) {
              case 0:
                as.and_(dst,
                        static_cast<int32_t>(rng.below(2047)) | 1);
                break;
              case 1:
                as.add(dst, static_cast<int32_t>(rng.below(2048)));
                break;
              case 2:
                as.shl(dst, static_cast<int32_t>(1 + rng.below(4)));
                break;
              default:
                as.xor_(dst,
                        static_cast<int32_t>(rng.below(2048)));
                break;
            }
        }
        as.dec(g::ECX);
        as.jcc(g::Cond::NE, loop);
        return;
    }
    emitWarmLoop(iters, body, fp, array_addr, array_bytes);
}

void
Builder::emitDispatch(uint32_t iters, uint32_t targets,
                      uint32_t table_addr)
{
    // Indirect-jump dispatch with an LCG-driven selector: the target
    // varies per iteration, stressing the IBTC and host BTB exactly
    // like interpreter-style guest code does.
    as.mov(g::ECX, static_cast<int32_t>(iters));
    as.mov(g::EDX, static_cast<int32_t>(rng.below(1u << 30)) | 1);
    as.mov(g::EDI, static_cast<int32_t>(table_addr));
    auto loop = as.newLabel();
    auto join = as.newLabel();
    as.bind(loop);
    // selector = (lcg >> 8) & (targets-1)
    as.imul(g::EDX, 1103515245);
    as.add(g::EDX, 12345);
    as.mov(g::EAX, g::EDX);
    as.shr(g::EAX, 8);
    as.and_(g::EAX, static_cast<int32_t>(targets - 1));
    as.jmpi(mem(g::EDI, g::EAX, 2));

    for (uint32_t t = 0; t < targets; ++t) {
        auto c = as.newLabel();
        as.bind(c);
        dispatchCases.push_back(c);
        as.add(g::EBX, static_cast<int32_t>(t + 1));
        as.xor_(g::EBX, static_cast<int32_t>(rng.below(0xFFFF)));
        if (t + 1 != targets)
            as.jmp(join);
    }
    as.bind(join);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
}

void
Builder::emitCallPairs(uint32_t pairs)
{
    // Round-robin calls over the callee set: the returns alternate
    // return sites, defeating last-target prediction like real
    // call-heavy code does.
    const uint32_t per_callee =
        std::max<uint32_t>(1, pairs / static_cast<uint32_t>(
                                  callees.size()));
    for (const auto &callee : callees) {
        as.mov(g::ECX, static_cast<int32_t>(per_callee));
        auto loop = as.newLabel();
        as.bind(loop);
        as.call(callee);
        as.dec(g::ECX);
        as.jcc(g::Cond::NE, loop);
    }
}

void
Builder::emitChase(uint32_t iters, uint32_t list_addr, uint32_t nodes)
{
    // p = head; repeat { p = *p; } — irregular loads the stride
    // prefetcher cannot cover.
    (void)nodes;
    as.mov(g::ESI, static_cast<int32_t>(list_addr));
    as.mov(g::ECX, static_cast<int32_t>(iters));
    auto loop = as.newLabel();
    as.bind(loop);
    as.mov(g::ESI, mem(g::ESI));
    as.add(g::EAX, g::ESI);
    as.dec(g::ECX);
    as.jcc(g::Cond::NE, loop);
}

g::Program
Builder::build()
{
    g::Program prog;
    const uint32_t data_base = g::layout::kDataBase;
    const uint32_t array_bytes =
        std::max<uint32_t>(4096, p.dataKb * 1024);
    const uint32_t array_addr = data_base;
    const uint32_t table_addr = data_base + array_bytes;
    const uint32_t list_addr = table_addr + 4096;

    // --- callees (functions used by call-pair kernels) ----------------
    auto entry = as.newLabel();
    as.jmp(entry);

    const uint32_t num_callees = p.callPairs ? 4 : 0;
    for (uint32_t c = 0; c < num_callees; ++c) {
        auto fn = as.newLabel();
        as.bind(fn);
        callees.push_back(fn);
        const uint32_t body = static_cast<uint32_t>(2 + rng.below(4));
        for (uint32_t i = 0; i < body; ++i)
            emitAluOp(g::EAX, g::EBX);
        as.ret();
    }

    // --- one-shot initialization code (stays in IM) -----------------
    as.bind(entry);
    if (p.initBlobInsts)
        emitColdBlob(p.initBlobInsts);

    // --- main phase cycle ------------------------------------------------
    as.mov(g::EBP, static_cast<int32_t>(
        std::min<uint64_t>(p.outerRepeats, 0x7FFFFFFFull)));
    auto outer = as.newLabel();
    as.bind(outer);

    if (p.coldBlobInsts)
        emitColdBlob(p.coldBlobInsts);

    uint32_t fp_budget = static_cast<uint32_t>(
        p.fpShare * static_cast<double>(p.warmLoops + p.hotLoops) + 0.5);

    for (uint32_t w = 0; w < p.warmLoops; ++w) {
        const bool fp = fp_budget > 0 && (w % 2 == 0 || p.fpShare > 0.6);
        if (fp)
            --fp_budget;
        emitWarmLoop(p.warmIters, p.warmBody, fp, array_addr,
                     array_bytes);
    }

    for (uint32_t h = 0; h < p.hotLoops; ++h) {
        const bool fp = fp_budget > 0;
        if (fp)
            --fp_budget;
        emitHotKernel(p.hotIters, p.hotBody, fp, array_addr,
                      array_bytes);
    }

    if (p.dispatchIters)
        emitDispatch(p.dispatchIters, p.dispatchTargets, table_addr);
    if (p.callPairs)
        emitCallPairs(p.callPairs);
    if (p.chaseIters)
        emitChase(p.chaseIters, list_addr, p.chaseNodes);

    as.dec(g::EBP);
    auto to_outer = as.newLabel();
    auto done = as.newLabel();
    as.jcc(g::Cond::E, done);
    as.bind(to_outer);
    as.jmp(outer);
    as.bind(done);
    as.halt();

    prog.code = as.finalize(prog.codeBase);
    prog.entry = prog.codeBase;

    // --- data segments --------------------------------------------------
    Prng drng(p.seed ^ 0xDA7A);
    std::vector<uint8_t> array(array_bytes);
    for (auto &b : array)
        b = static_cast<uint8_t>(drng.next());
    prog.data.push_back({array_addr, std::move(array)});

    if (p.dispatchIters) {
        std::vector<uint8_t> table(p.dispatchTargets * 4);
        for (uint32_t t = 0; t < p.dispatchTargets; ++t) {
            const uint32_t target = as.labelAddr(dispatchCases[t]);
            std::memcpy(table.data() + 4 * t, &target, 4);
        }
        prog.data.push_back({table_addr, std::move(table)});
    }

    if (p.chaseIters) {
        // A shuffled singly-linked ring of `chaseNodes` pointers, each
        // node one word, spread over chaseNodes*16 bytes.
        const uint32_t nodes = std::max<uint32_t>(16, p.chaseNodes);
        std::vector<uint32_t> order(nodes);
        for (uint32_t i = 0; i < nodes; ++i)
            order[i] = i;
        for (uint32_t i = nodes - 1; i > 0; --i) {
            const uint32_t j =
                static_cast<uint32_t>(drng.below(i + 1));
            std::swap(order[i], order[j]);
        }
        std::vector<uint8_t> list(nodes * 16, 0);
        for (uint32_t i = 0; i < nodes; ++i) {
            const uint32_t from = order[i];
            const uint32_t to = order[(i + 1) % nodes];
            const uint32_t ptr = list_addr + to * 16;
            std::memcpy(list.data() + from * 16, &ptr, 4);
        }
        prog.data.push_back({list_addr, std::move(list)});
    }

    return prog;
}

} // namespace

g::Program
buildBenchmark(const BenchParams &params)
{
    Builder builder(params);
    return builder.build();
}

} // namespace darco::workloads
