/**
 * @file
 * Workload sourcing: where guest programs come from.
 *
 * Historically the synthetic `BenchParams` builder was the only way
 * to obtain a workload, and every consumer was welded to it. This
 * header cuts that seam: a `Workload` is a resolved, ready-to-load
 * guest program plus its identity (name, suite, seed) and — when it
 * came from a trace — the capture-time run recipe and determinism
 * pins. `WorkloadSource` implementations resolve workloads from a
 * scheme-addressed URI space:
 *
 *   source://synthetic/<benchmark>   the 48 paper benchmarks
 *   source://trace/<path>            a captured binary trace
 *
 * Bare names (no "source://") resolve through the synthetic scheme,
 * so existing `--benchmark=429.mcf` style arguments keep working.
 * New scenario classes (recorded regressions, reduced repro cases,
 * externally authored guests) plug in via registerSource() without
 * touching the engine or the harnesses.
 */

#ifndef DARCO_WORKLOADS_SOURCE_HH
#define DARCO_WORKLOADS_SOURCE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "workloads/params.hh"

namespace darco::workloads {

/** A resolved workload: program image + identity + trace context. */
struct Workload
{
    std::string uri;     ///< canonical source URI this resolved from
    std::string name;    ///< display name (benchmark or trace name)
    std::string suite;   ///< suite tag; "" when not suite-affiliated
    uint64_t seed = 0;   ///< generator seed (provenance)
    guest::Program program;

    /**
     * Capture-time run recipe, present when sourced from a trace.
     * Harnesses that want bit-identical replay apply it (budget +
     * promotion thresholds); see bench_util.hh applyCaptureRecipe().
     */
    std::optional<trace::TraceMeta> capturedMeta;
    /** Capture run's determinism pins, when the trace carried them. */
    std::optional<trace::TracePins> capturedPins;
};

/** One scheme of the workload URI space. */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** URI scheme this source serves (e.g. "synthetic", "trace"). */
    virtual std::string scheme() const = 0;

    /** Resolve the part after "source://<scheme>/". fatal() on a
     *  spec this source cannot serve. */
    virtual Workload resolve(const std::string &spec) const = 0;

    /** Enumerable specs, for listings ({} when not enumerable). */
    virtual std::vector<std::string> list() const { return {}; }
};

/** True if @p text is a "source://..." workload URI. */
bool isSourceUri(const std::string &text);

/** Canonical URI for a synthetic paper benchmark. */
std::string syntheticUri(const std::string &benchmark);

/** Canonical URI for a captured trace file. */
std::string traceUri(const std::string &path);

/**
 * Register an additional source. fatal() if the scheme is already
 * taken (the builtin "synthetic" and "trace" schemes are reserved).
 * Thread-safe: registration and lookup serialize on the registry
 * mutex, so concurrent registrations of distinct schemes both land
 * and concurrent claims of one scheme have exactly one winner.
 */
void registerSource(std::unique_ptr<WorkloadSource> source);

/**
 * Resolve a workload from a "source://<scheme>/<spec>" URI or, for
 * compatibility, a bare synthetic benchmark name. fatal() on an
 * unknown scheme, unknown benchmark, or unreadable trace.
 * Thread-safe: safe to call from batch workers concurrently with
 * other resolutions and with registerSource().
 */
Workload resolveWorkload(const std::string &uri_or_name);

/** Every enumerable workload URI across the registered sources. */
std::vector<std::string> listWorkloadUris();

/** Build a Workload directly from synthetic parameters. */
Workload syntheticWorkload(const BenchParams &params);

} // namespace darco::workloads

#endif // DARCO_WORKLOADS_SOURCE_HH
