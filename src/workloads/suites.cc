/**
 * @file
 * The 48 paper benchmarks (SPEC CPU2006 INT and FP, Physicsbench,
 * MediaBench) as synthetic-workload parameterizations.
 *
 * Parameters target the per-benchmark characteristics the paper
 * reports or implies (§III-B):
 *  - 462.libquantum: tiny hot loop with enormous repetition (the
 *    paper: 385K repetitions/instruction) and negligible indirects;
 *  - 400.perlbench: many indirect branches (22.7M per 4B) and large
 *    static code -> code$-lookup dominated TOL time;
 *  - 401.bzip2: small static code, high repetition, almost no
 *    indirect branches (1933 per 4B);
 *  - 000.cjpeg/001.djpeg/433.milc: similar ~15K-instruction static
 *    footprint, but milc executes vastly more dynamic instructions;
 *  - 006.jpg2000dec: execution concentrated in few hot blocks (the
 *    paper: 96 superblocks) vs 007.jpg2000enc: spread over many
 *    near-threshold blocks (450 superblocks);
 *  - 470.lbm: extreme dynamic/static ratio, minimal TOL visibility;
 *  - 107.novis_ragdoll: big per-phase code with low repetition ->
 *    high interpreter/BBM share.
 */

#include "workloads/params.hh"

#include <algorithm>

#include "common/logging.hh"

namespace darco::workloads {

namespace {

std::vector<BenchParams>
makeTable()
{
    std::vector<BenchParams> t;
    auto add = [&t](BenchParams p) { t.push_back(std::move(p)); };

    // ================= SPEC CPU2006 INT =================
    {
        BenchParams p;
        p.name = "400.perlbench";
        p.suite = "SPEC INT";
        p.seed = 4001;
        p.coldBlobInsts = 2500;
        p.warmLoops = 18;
        p.warmIters = 60;
        p.warmBody = 7;
        p.hotLoops = 3;
        p.hotIters = 2500;
        p.hotBody = 6;
        p.dispatchIters = 14000;
        p.dispatchTargets = 768;
        p.callPairs = 2400;
        p.dataKb = 512;
        p.strideBytes = 32;
        p.chaseIters = 12000;
        p.chaseNodes = 16384;
        add(p);
    }
    {
        BenchParams p;
        p.name = "401.bzip2";
        p.suite = "SPEC INT";
        p.seed = 4010;
        p.coldBlobInsts = 300;
        p.warmLoops = 4;
        p.warmIters = 200;
        p.hotLoops = 3;
        p.hotIters = 30000;
        p.hotBody = 8;
        p.dataKb = 512;
        p.strideBytes = 4;
        add(p);
    }
    {
        BenchParams p;
        p.name = "403.gcc";
        p.suite = "SPEC INT";
        p.seed = 4030;
        p.coldBlobInsts = 6000;
        p.warmLoops = 30;
        p.warmIters = 45;
        p.warmBody = 6;
        p.hotLoops = 2;
        p.hotIters = 2000;
        p.dispatchIters = 5000;
        p.dispatchTargets = 384;
        p.callPairs = 1200;
        p.dataKb = 512;
        p.strideBytes = 32;
        p.chaseIters = 5000;
        p.chaseNodes = 16384;
        add(p);
    }
    {
        BenchParams p;
        p.name = "429.mcf";
        p.suite = "SPEC INT";
        p.seed = 4290;
        p.coldBlobInsts = 400;
        p.warmLoops = 3;
        p.warmIters = 150;
        p.hotLoops = 2;
        p.hotIters = 25000;
        p.hotBody = 4;
        p.chaseIters = 30000;
        p.chaseNodes = 32768;
        p.dataKb = 2048;
        add(p);
    }
    {
        BenchParams p;
        p.name = "445.gobmk";
        p.suite = "SPEC INT";
        p.seed = 4450;
        p.coldBlobInsts = 4000;
        p.warmLoops = 35;
        p.warmIters = 80;
        p.warmBody = 5;
        p.hotLoops = 2;
        p.hotIters = 4000;
        p.callPairs = 1500;
        p.dataKb = 128;
        p.strideBytes = 16;
        add(p);
    }
    {
        BenchParams p;
        p.name = "458.sjeng";
        p.suite = "SPEC INT";
        p.seed = 4580;
        p.coldBlobInsts = 2000;
        p.warmLoops = 20;
        p.warmIters = 120;
        p.warmBody = 6;
        p.hotLoops = 2;
        p.hotIters = 8000;
        p.callPairs = 1000;
        p.dispatchIters = 1200;
        p.dispatchTargets = 64;
        p.dataKb = 256;
        p.strideBytes = 16;
        add(p);
    }
    {
        BenchParams p;
        p.name = "462.libquantum";
        p.suite = "SPEC INT";
        p.seed = 4620;
        p.coldBlobInsts = 100;
        p.warmLoops = 1;
        p.warmIters = 50;
        p.hotLoops = 1;
        p.hotIters = 220000;
        p.hotBody = 6;
        p.dataKb = 1024;
        p.strideBytes = 8;
        add(p);
    }
    {
        BenchParams p;
        p.name = "464.h264ref";
        p.suite = "SPEC INT";
        p.seed = 4640;
        p.coldBlobInsts = 1500;
        p.warmLoops = 12;
        p.warmIters = 300;
        p.warmBody = 8;
        p.hotLoops = 4;
        p.hotIters = 10000;
        p.hotBody = 10;
        p.dataKb = 512;
        p.strideBytes = 16;
        add(p);
    }
    {
        BenchParams p;
        p.name = "471.omnetpp";
        p.suite = "SPEC INT";
        p.seed = 4710;
        p.coldBlobInsts = 2500;
        p.warmLoops = 15;
        p.warmIters = 100;
        p.hotLoops = 2;
        p.hotIters = 6000;
        p.callPairs = 1800;
        p.dispatchIters = 2500;
        p.dispatchTargets = 160;
        p.chaseIters = 8000;
        p.chaseNodes = 16384;
        p.dataKb = 512;
        add(p);
    }
    {
        BenchParams p;
        p.name = "473.astar";
        p.suite = "SPEC INT";
        p.seed = 4730;
        p.coldBlobInsts = 800;
        p.warmLoops = 8;
        p.warmIters = 250;
        p.warmBody = 5;
        p.hotLoops = 2;
        p.hotIters = 15000;
        p.chaseIters = 15000;
        p.chaseNodes = 8192;
        p.dataKb = 1024;
        add(p);
    }
    {
        BenchParams p;
        p.name = "483.xalancbmk";
        p.suite = "SPEC INT";
        p.seed = 4830;
        p.coldBlobInsts = 3500;
        p.warmLoops = 22;
        p.warmIters = 70;
        p.hotLoops = 2;
        p.hotIters = 3000;
        p.callPairs = 2500;
        p.dispatchIters = 3500;
        p.dispatchTargets = 320;
        p.dataKb = 256;
        p.strideBytes = 32;
        p.chaseIters = 3000;
        p.chaseNodes = 8192;
        add(p);
    }
    {
        BenchParams p;
        p.name = "998.specrand";
        p.suite = "SPEC INT";
        p.seed = 9980;
        p.outerRepeats = 40;
        p.coldBlobInsts = 120;
        p.warmLoops = 1;
        p.warmIters = 30;
        p.hotLoops = 1;
        p.hotIters = 300;
        p.hotBody = 5;
        p.dataKb = 16;
        add(p);
    }

    // ================= SPEC CPU2006 FP =================
    auto fp_base = [](const char *name, uint64_t seed) {
        BenchParams p;
        p.name = name;
        p.suite = "SPEC FP";
        p.seed = seed;
        p.fpShare = 0.9;
        p.coldBlobInsts = 800;
        p.warmLoops = 4;
        p.warmIters = 150;
        p.warmBody = 8;
        p.hotLoops = 3;
        p.hotIters = 10000;
        p.hotBody = 10;
        p.dataKb = 1024;
        p.strideBytes = 8;
        return p;
    };
    {
        BenchParams p = fp_base("410.bwaves", 4100);
        p.hotIters = 16000;
        p.dataKb = 4096;
        add(p);
    }
    {
        BenchParams p = fp_base("433.milc", 4330);
        p.coldBlobInsts = 11000;   // ~15K static like cjpeg/djpeg
        p.warmLoops = 8;
        p.warmIters = 120;
        p.hotLoops = 3;
        p.hotIters = 12000;        // but far more dynamic work
        p.dataKb = 2048;
        add(p);
    }
    {
        BenchParams p = fp_base("434.zeusmp", 4340);
        p.hotLoops = 4;
        p.hotIters = 8000;
        add(p);
    }
    {
        BenchParams p = fp_base("435.gromacs", 4350);
        p.warmLoops = 8;
        p.warmIters = 200;
        p.hotIters = 6000;
        add(p);
    }
    {
        BenchParams p = fp_base("436.cactusADM", 4360);
        p.hotLoops = 2;
        p.hotIters = 25000;
        p.hotBody = 14;
        p.dataKb = 2048;
        add(p);
    }
    {
        BenchParams p = fp_base("437.leslie3d", 4370);
        p.hotIters = 12000;
        p.dataKb = 2048;
        add(p);
    }
    {
        BenchParams p = fp_base("444.namd", 4440);
        p.hotLoops = 4;
        p.hotIters = 9000;
        p.hotBody = 12;
        add(p);
    }
    {
        BenchParams p = fp_base("447.dealII", 4470);
        p.coldBlobInsts = 3000;
        p.warmLoops = 12;
        p.warmIters = 100;
        p.callPairs = 600;
        p.hotIters = 5000;
        add(p);
    }
    {
        BenchParams p = fp_base("450.soplex", 4500);
        p.warmLoops = 10;
        p.warmIters = 150;
        p.hotIters = 6000;
        p.chaseIters = 4000;
        add(p);
    }
    {
        BenchParams p = fp_base("459.GemsFDTD", 4590);
        p.coldBlobInsts = 2500;
        p.callPairs = 1500;       // paper: indirect/return heavy
        p.dispatchIters = 2000;
        p.dispatchTargets = 192;
        p.hotIters = 6000;
        add(p);
    }
    {
        BenchParams p = fp_base("453.povray", 4530);
        p.coldBlobInsts = 2500;
        p.warmLoops = 14;
        p.warmIters = 120;
        p.callPairs = 1200;
        p.hotIters = 3500;
        p.fpShare = 0.7;
        add(p);
    }
    {
        BenchParams p = fp_base("454.calculix", 4540);
        p.warmLoops = 8;
        p.hotIters = 7000;
        add(p);
    }
    {
        BenchParams p = fp_base("470.lbm", 4700);
        p.coldBlobInsts = 200;    // tiny static, enormous repetition
        p.warmLoops = 1;
        p.warmIters = 60;
        p.hotLoops = 1;
        p.hotIters = 150000;
        p.hotBody = 14;
        p.dataKb = 4096;
        add(p);
    }
    {
        BenchParams p = fp_base("481.wrf", 4810);
        p.coldBlobInsts = 3500;
        p.warmLoops = 10;
        p.hotIters = 6000;
        add(p);
    }
    {
        BenchParams p = fp_base("482.sphinx3", 4820);
        p.warmLoops = 10;
        p.warmIters = 200;
        p.hotIters = 8000;
        p.fpShare = 0.6;
        add(p);
    }
    {
        BenchParams p = fp_base("999.specrand", 9990);
        p.outerRepeats = 40;
        p.coldBlobInsts = 120;
        p.warmLoops = 1;
        p.warmIters = 30;
        p.hotLoops = 1;
        p.hotIters = 300;
        p.dataKb = 16;
        add(p);
    }

    // ================= Physicsbench =================
    auto phys_base = [](const char *name, uint64_t seed) {
        BenchParams p;
        p.name = name;
        p.suite = "Physics";
        p.seed = seed;
        p.fpShare = 0.65;
        p.coldBlobInsts = 2000;
        p.warmLoops = 16;
        p.warmIters = 150;
        p.warmBody = 7;
        p.hotLoops = 2;
        p.hotIters = 8000;
        p.hotBody = 9;
        p.callPairs = 600;
        p.dataKb = 256;
        p.strideBytes = 16;
        return p;
    };
    add(phys_base("100.novis_breakable", 1000));
    {
        BenchParams p = phys_base("101.novis_continuous", 1010);
        p.hotIters = 12000;
        p.warmLoops = 12;
        add(p);
    }
    {
        BenchParams p = phys_base("102.novis_deformable", 1020);
        p.hotLoops = 3;
        p.hotIters = 10000;
        p.dataKb = 512;
        add(p);
    }
    {
        BenchParams p = phys_base("103.novis_everything", 1030);
        p.coldBlobInsts = 4500;
        p.warmLoops = 24;
        p.warmIters = 100;
        add(p);
    }
    {
        BenchParams p = phys_base("104.novis_explosions", 1040);
        p.hotIters = 15000;
        p.chaseIters = 3000;
        add(p);
    }
    {
        BenchParams p = phys_base("105.novis_highspeed", 1050);
        p.hotIters = 18000;
        p.warmLoops = 10;
        add(p);
    }
    add(phys_base("106.novis_periodic", 1060));
    {
        BenchParams p = phys_base("107.novis_ragdoll", 1070);
        // Low dynamic/static ratio, high interpreter activity: lots
        // of per-phase code, little repetition.
        p.coldBlobInsts = 9000;
        p.warmLoops = 40;
        p.warmIters = 12;
        p.warmBody = 6;
        p.hotLoops = 1;
        p.hotIters = 1500;
        p.callPairs = 300;
        add(p);
    }

    // ================= MediaBench =================
    auto media_base = [](const char *name, uint64_t seed) {
        BenchParams p;
        p.name = name;
        p.suite = "Media";
        p.seed = seed;
        p.coldBlobInsts = 3000;
        p.warmLoops = 18;
        p.warmIters = 80;
        p.warmBody = 8;
        p.hotLoops = 2;
        p.hotIters = 5000;
        p.hotBody = 8;
        p.dataKb = 512;
        p.strideBytes = 16;
        return p;
    };
    {
        BenchParams p = media_base("000.cjpeg", 1);
        // ~15K static footprint, low repetition (paper §III-B).
        p.coldBlobInsts = 10000;
        p.warmLoops = 30;
        p.warmIters = 25;
        p.hotLoops = 1;
        p.hotIters = 3000;
        add(p);
    }
    {
        BenchParams p = media_base("001.djpeg", 2);
        p.coldBlobInsts = 9500;
        p.warmLoops = 28;
        p.warmIters = 30;
        p.hotLoops = 1;
        p.hotIters = 4000;
        add(p);
    }
    {
        BenchParams p = media_base("002.h263dec", 3);
        // Many superblocks whose repetition sits near the threshold.
        p.warmLoops = 30;
        p.warmIters = 350;
        p.hotLoops = 1;
        p.hotIters = 4000;
        add(p);
    }
    {
        BenchParams p = media_base("003.h263enc", 4);
        p.warmLoops = 20;
        p.warmIters = 250;
        p.hotLoops = 2;
        p.hotIters = 8000;
        add(p);
    }
    {
        BenchParams p = media_base("004.h264dec", 5);
        p.warmLoops = 24;
        p.warmIters = 150;
        p.hotLoops = 2;
        p.hotIters = 7000;
        p.dispatchIters = 600;
        p.dispatchTargets = 16;
        add(p);
    }
    {
        BenchParams p = media_base("005.h264enc", 6);
        p.warmLoops = 26;
        p.warmIters = 180;
        p.hotLoops = 3;
        p.hotIters = 6000;
        add(p);
    }
    {
        BenchParams p = media_base("006.jpg2000dec", 7);
        // Concentrated execution: few hot blocks (paper: 96 SBs).
        p.coldBlobInsts = 2000;
        p.warmLoops = 4;
        p.warmIters = 500;
        p.hotLoops = 2;
        p.hotIters = 40000;
        p.hotBody = 10;
        add(p);
    }
    {
        BenchParams p = media_base("007.jpg2000enc", 8);
        // Spread execution: many near-threshold blocks (paper: 450
        // SBs, repetition close to BB/SBth).
        p.coldBlobInsts = 2000;
        p.warmLoops = 46;
        p.warmIters = 420;
        p.warmBody = 7;
        p.hotLoops = 1;
        p.hotIters = 2500;
        add(p);
    }
    {
        BenchParams p = media_base("008.mpeg2dec", 9);
        p.warmLoops = 16;
        p.warmIters = 200;
        p.hotLoops = 2;
        p.hotIters = 9000;
        add(p);
    }
    {
        BenchParams p = media_base("009.mpeg2enc", 10);
        p.warmLoops = 20;
        p.warmIters = 220;
        p.hotLoops = 2;
        p.hotIters = 7000;
        p.fpShare = 0.2;
        add(p);
    }
    {
        BenchParams p = media_base("010.mpeg4dec", 11);
        p.warmLoops = 22;
        p.warmIters = 160;
        p.hotLoops = 2;
        p.hotIters = 8000;
        p.dispatchIters = 400;
        p.dispatchTargets = 8;
        add(p);
    }
    {
        BenchParams p = media_base("011.mpeg4enc", 12);
        p.warmLoops = 24;
        p.warmIters = 200;
        p.hotLoops = 3;
        p.hotIters = 6000;
        p.fpShare = 0.2;
        add(p);
    }

    // Default one-shot init footprint: sized so that, across the
    // suites, roughly a third of the static code executes <= IM/BBth
    // times and stays interpreter-resident (paper Fig 5a).
    for (BenchParams &p : t) {
        if (p.initBlobInsts == 0)
            p.initBlobInsts = p.coldBlobInsts * 3 / 5 + 500;
        if (p.outerRepeats <= 64)
            p.initBlobInsts = std::min(p.initBlobInsts, 200u);
    }

    return t;
}

} // namespace

const std::vector<BenchParams> &
allBenchmarks()
{
    static const std::vector<BenchParams> table = makeTable();
    return table;
}

std::vector<const BenchParams *>
suiteBenchmarks(const std::string &suite)
{
    std::vector<const BenchParams *> result;
    for (const BenchParams &p : allBenchmarks()) {
        if (p.suite == suite)
            result.push_back(&p);
    }
    return result;
}

const BenchParams *
findBenchmark(const std::string &name)
{
    for (const BenchParams &p : allBenchmarks()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

std::vector<const BenchParams *>
outlierBenchmarks()
{
    std::vector<const BenchParams *> result;
    for (const char *name : {"470.lbm", "007.jpg2000enc",
                             "107.novis_ragdoll", "400.perlbench"}) {
        const BenchParams *p = findBenchmark(name);
        panic_if(!p, "missing outlier benchmark %s", name);
        result.push_back(p);
    }
    return result;
}

} // namespace darco::workloads
