/**
 * @file
 * Workload-source registry and the two builtin sources: the
 * synthetic paper-benchmark builder and the binary-trace replayer.
 *
 * The registry is deliberately explicit (builtin sources are
 * constructed on first use, not via static self-registration): the
 * simulator links as a static library, and a linker is free to drop
 * a translation unit whose only purpose is a self-registering static
 * initializer.
 *
 * The registry is thread-safe: builtin construction is guarded by
 * std::call_once, and registration/lookup serialize on a mutex, so
 * batch workers may resolve (and even register) sources concurrently
 * (docs/concurrency.md).
 */

#include "workloads/source.hh"

#include <mutex>

#include "common/logging.hh"

namespace darco::workloads {

namespace {

constexpr const char *kPrefix = "source://";
constexpr size_t kPrefixLen = 9;

class SyntheticSource : public WorkloadSource
{
  public:
    std::string scheme() const override { return "synthetic"; }

    Workload
    resolve(const std::string &spec) const override
    {
        const BenchParams *params = findBenchmark(spec);
        if (!params) {
            fatal_kind(ErrKind::BadWorkload,
                       "workload source: unknown synthetic benchmark "
                       "'%s' (see --list or "
                       "workloads::allBenchmarks())",
                       spec.c_str());
        }
        return syntheticWorkload(*params);
    }

    std::vector<std::string>
    list() const override
    {
        std::vector<std::string> specs;
        for (const BenchParams &p : allBenchmarks())
            specs.push_back(p.name);
        return specs;
    }
};

class TraceSource : public WorkloadSource
{
  public:
    std::string scheme() const override { return "trace"; }

    Workload
    resolve(const std::string &spec) const override
    {
        trace::ReadResult read = trace::readTrace(spec);
        if (!read.ok()) {
            // Io vs Corrupt drives the runner's retry policy: a
            // flaky filesystem deserves another attempt, a failed
            // checksum never does (sim/run_error.hh).
            fatal_kind(read.failKind == trace::ReadFail::Io
                           ? ErrKind::Io : ErrKind::Corrupt,
                       "workload source: %s", read.error.c_str());
        }
        Workload w;
        w.uri = traceUri(spec);
        w.name = read.file.meta.name;
        w.suite = read.file.meta.suite;
        w.seed = read.file.meta.seed;
        w.program = std::move(read.file.program);
        w.capturedMeta = std::move(read.file.meta);
        if (read.file.hasPins)
            w.capturedPins = std::move(read.file.pins);
        return w;
    }
};

// The registry is process-global mutable state shared across worker
// threads (docs/concurrency.md): construction is std::call_once'd and
// every access to the source vector holds registryMutex. Sources are
// never removed, so a `const WorkloadSource *` obtained under the
// lock stays valid after release — resolve() itself runs unlocked
// (trace resolution does file I/O; serializing it would make the
// registry a batch-wide bottleneck), which is safe because sources
// are immutable once registered (WorkloadSource::resolve is const
// and the builtins are stateless).
std::vector<std::unique_ptr<WorkloadSource>> registrySources;
std::once_flag registryOnce;
std::mutex registryMutex;

void
initBuiltinSources()
{
    std::call_once(registryOnce, [] {
        registrySources.push_back(std::make_unique<SyntheticSource>());
        registrySources.push_back(std::make_unique<TraceSource>());
    });
}

const WorkloadSource *
findSource(const std::string &scheme)
{
    initBuiltinSources();
    std::lock_guard<std::mutex> lock(registryMutex);
    for (const auto &source : registrySources) {
        if (source->scheme() == scheme)
            return source.get();
    }
    return nullptr;
}

} // namespace

bool
isSourceUri(const std::string &text)
{
    return text.rfind(kPrefix, 0) == 0;
}

std::string
syntheticUri(const std::string &benchmark)
{
    return std::string(kPrefix) + "synthetic/" + benchmark;
}

std::string
traceUri(const std::string &path)
{
    return std::string(kPrefix) + "trace/" + path;
}

void
registerSource(std::unique_ptr<WorkloadSource> source)
{
    panic_if(!source, "registerSource(nullptr)");
    initBuiltinSources();
    // Check and insert under one lock: two threads racing to claim
    // the same scheme must serialize, with exactly one winner.
    std::lock_guard<std::mutex> lock(registryMutex);
    for (const auto &existing : registrySources) {
        fatal_if(existing->scheme() == source->scheme(),
                 "workload source: scheme '%s' already registered",
                 source->scheme().c_str());
    }
    registrySources.push_back(std::move(source));
}

Workload
resolveWorkload(const std::string &uri_or_name)
{
    if (!isSourceUri(uri_or_name)) {
        // Compatibility: bare names are synthetic benchmarks.
        return findSource("synthetic")->resolve(uri_or_name);
    }
    const std::string rest = uri_or_name.substr(kPrefixLen);
    const size_t slash = rest.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= rest.size()) {
        fatal_kind(ErrKind::BadWorkload,
                   "workload source: malformed URI '%s' (expected "
                   "source://<scheme>/<spec>)",
                   uri_or_name.c_str());
    }
    const std::string scheme = rest.substr(0, slash);
    const std::string spec = rest.substr(slash + 1);
    const WorkloadSource *source = findSource(scheme);
    if (!source) {
        fatal_kind(ErrKind::BadWorkload,
                   "workload source: unknown scheme '%s' in '%s'",
                   scheme.c_str(), uri_or_name.c_str());
    }
    return source->resolve(spec);
}

std::vector<std::string>
listWorkloadUris()
{
    initBuiltinSources();
    // Snapshot the source pointers under the lock, then enumerate
    // unlocked (list() may be arbitrarily expensive for a future
    // scheme, and sources are immutable once registered).
    std::vector<const WorkloadSource *> snapshot;
    {
        std::lock_guard<std::mutex> lock(registryMutex);
        for (const auto &source : registrySources)
            snapshot.push_back(source.get());
    }
    std::vector<std::string> uris;
    for (const WorkloadSource *source : snapshot) {
        for (const std::string &spec : source->list()) {
            uris.push_back(std::string(kPrefix) + source->scheme() +
                           "/" + spec);
        }
    }
    return uris;
}

Workload
syntheticWorkload(const BenchParams &params)
{
    Workload w;
    w.uri = syntheticUri(params.name);
    w.name = params.name;
    w.suite = params.suite;
    w.seed = params.seed;
    w.program = buildBenchmark(params);
    return w;
}

} // namespace darco::workloads
