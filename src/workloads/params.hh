/**
 * @file
 * Benchmark parameterization.
 *
 * Each paper benchmark (SPEC CPU2006 INT/FP, Physicsbench,
 * MediaBench) is reproduced as a synthetic guest program generated
 * from a common set of kernel archetypes. The parameters control
 * exactly the application characteristics the paper's analysis
 * attributes the observed behaviour to (§III-B, §III-E):
 *
 *  - static code footprint (cold blobs + number of distinct loops),
 *  - dynamic/static instruction ratio and its closeness to the
 *    BB->SB promotion threshold (loop iteration counts),
 *  - indirect-branch density (dispatch tables, call/return pairs),
 *  - FP share and memory behaviour (streams, strides, pointer
 *    chases, footprints).
 *
 * The dynamic/static ratio emerges naturally: the outer phase loop
 * re-executes the whole phase cycle until the simulation budget is
 * reached (benchmarks with small outerRepeats halt early — the
 * paper's "some benchmarks run to completion").
 */

#ifndef DARCO_WORKLOADS_PARAMS_HH
#define DARCO_WORKLOADS_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "guest/assembler.hh"

namespace darco::workloads {

struct BenchParams
{
    std::string name;
    std::string suite;           ///< "SPEC INT"/"SPEC FP"/"Physics"/"Media"
    uint64_t seed = 1;

    /** Outer phase-cycle repetitions (large = budget-bound). */
    uint64_t outerRepeats = 1u << 30;

    /**
     * One-shot initialization code (executed exactly once): the
     * static population that never leaves IM (paper Fig 5a: ~36% of
     * static code is not promoted because it runs <= IM/BBth times).
     * 0 means "derive a default from the cold-blob size".
     */
    uint32_t initBlobInsts = 0;

    /** Straight-line cold code executed once per phase cycle. */
    uint32_t coldBlobInsts = 0;

    /** Medium loops: the BBM-resident / near-threshold population. */
    uint32_t warmLoops = 0;
    uint32_t warmIters = 0;      ///< per phase cycle, per loop
    uint32_t warmBody = 8;       ///< ALU ops per iteration body
    bool warmMem = true;         ///< bodies include array traffic

    /** Hot kernels: the SBM-resident population. */
    uint32_t hotLoops = 1;
    uint32_t hotIters = 100000;  ///< per phase cycle, per kernel
    uint32_t hotBody = 6;

    /**
     * Emit integer hot-kernel bodies as independent immediate-form
     * ALU ops rotating the destination over four registers instead
     * of the default near-serial chain through EAX. The resulting
     * stream sustains full-width issue, which is exactly the regime
     * the event core's burst dispatcher accelerates — used by the
     * engine_speed `dense_loop` scenario. Off for all 48 paper
     * benchmarks (their ILP comes from the paper's kernel shapes).
     */
    bool hotIlp = false;

    /** Fraction of warm+hot loops using FP arithmetic. */
    double fpShare = 0.0;

    /** Indirect-dispatch kernel (jump table, varying selector). */
    uint32_t dispatchIters = 0;  ///< per phase cycle
    uint32_t dispatchTargets = 8;

    /** Call/return pairs per phase cycle (returns are indirect). */
    uint32_t callPairs = 0;

    /** Data footprint and access pattern. */
    uint32_t dataKb = 64;
    uint32_t strideBytes = 4;
    uint32_t chaseIters = 0;     ///< pointer-chase loads per cycle
    uint32_t chaseNodes = 4096;
};

/** Build the synthetic guest program for @p params. */
guest::Program buildBenchmark(const BenchParams &params);

/** All 48 paper benchmarks in figure order. */
const std::vector<BenchParams> &allBenchmarks();

/** Subset by suite name ("SPEC INT", "SPEC FP", "Physics", "Media"). */
std::vector<const BenchParams *> suiteBenchmarks(const std::string &suite);

/** Find one benchmark by name (nullptr if absent). */
const BenchParams *findBenchmark(const std::string &name);

/** The four paper outliers of §III-D. */
std::vector<const BenchParams *> outlierBenchmarks();

} // namespace darco::workloads

#endif // DARCO_WORKLOADS_PARAMS_HH
