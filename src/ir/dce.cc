#include "ir/passes.hh"

#include <vector>

namespace darco::ir {

void
deadCodeElimination(Trace &trace, PassStats *stats)
{
    PassStats local;
    const size_t n = trace.insts.size();
    std::vector<bool> live(trace.numVregs(), false);
    std::vector<bool> keep(n, false);

    auto mark_exit_liveout = [&](uint16_t exit_id) {
        // Guest GPRs and FP registers are architecturally live at
        // every exit; flags per the exit's liveness mask.
        for (unsigned r = 0; r < 8; ++r)
            live[vGpr(r)] = true;
        for (unsigned r = 0; r < 8; ++r)
            live[vFpr(r)] = true;
        const uint8_t mask = trace.exits[exit_id].flagMask;
        for (unsigned bit = 0; bit < 4; ++bit) {
            if (mask & (1u << bit))
                live[flagVreg(bit)] = true;
        }
    };

    for (size_t i = n; i-- > 0;) {
        const IrInst &inst = trace.insts[i];
        const IrOpInfo &info = irOpInfo(inst.op);
        ++local.instsVisited;

        bool needed = false;
        if (info.isExit) {
            mark_exit_liveout(inst.exitId);
            needed = true;
        } else if (info.sideEffect) {
            needed = true;
        } else if (info.hasDst && inst.dst != kNoVreg && live[inst.dst]) {
            needed = true;
        }

        if (!needed)
            continue;

        keep[i] = true;
        if (info.hasDst && inst.dst != kNoVreg)
            live[inst.dst] = false;
        if (inst.src1 != kNoVreg)
            live[inst.src1] = true;
        if (!inst.useImm && inst.src2 != kNoVreg)
            live[inst.src2] = true;
    }

    std::vector<IrInst> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (keep[i])
            out.push_back(trace.insts[i]);
    }
    local.instsRemoved = static_cast<uint32_t>(n - out.size());
    trace.insts = std::move(out);

    if (stats)
        *stats += local;
}

} // namespace darco::ir
