/**
 * @file
 * List scheduler for IR traces, targeting the 2-issue in-order host.
 *
 * Reorders instructions inside segments delimited by control
 * instructions (BR / JEXIT / JINDIRECT) so that dependent pairs are
 * separated and long-latency results (loads, FP, MUL) are started
 * early. Instructions never cross segment boundaries: side exits
 * require bound-vreg values to be architecturally correct at the
 * exit, and the conservative memory model never reorders memory
 * operations across stores.
 */

#ifndef DARCO_IR_SCHEDULER_HH
#define DARCO_IR_SCHEDULER_HH

#include <cstdint>

#include "ir/ir.hh"

namespace darco::ir {

/** Scheduling statistics. */
struct ScheduleStats
{
    uint32_t segments = 0;
    uint32_t instsMoved = 0;   ///< insts whose position changed
    uint32_t edgesBuilt = 0;   ///< dependence edges considered
};

/** Assumed result latency (cycles) of an IR op for scheduling. */
unsigned scheduleLatency(IrOp op);

/** Reorder @p trace in place. */
void scheduleTrace(Trace &trace, ScheduleStats *stats = nullptr);

} // namespace darco::ir

#endif // DARCO_IR_SCHEDULER_HH
