#include "ir/passes.hh"

#include <unordered_map>

namespace darco::ir {

namespace {

/** Expression key for value numbering. */
struct ExprKey
{
    IrOp op;
    BrCc cc;
    uint32_t vn1;
    uint32_t vn2;
    int64_t imm;
    bool useImm;
    uint8_t size;
    uint64_t memGen;   ///< only for loads

    bool operator==(const ExprKey &) const = default;
};

struct ExprKeyHash
{
    size_t
    operator()(const ExprKey &k) const
    {
        uint64_t h = static_cast<uint64_t>(k.op) * 0x9E3779B97F4A7C15ull;
        h ^= (static_cast<uint64_t>(k.vn1) << 1) ^
             (static_cast<uint64_t>(k.vn2) << 17);
        h ^= static_cast<uint64_t>(k.imm) * 0xBF58476D1CE4E5B9ull;
        h ^= k.useImm ? 0x5555 : 0;
        h ^= static_cast<uint64_t>(k.size) << 40;
        h ^= k.memGen * 0x94D049BB133111EBull;
        h ^= static_cast<uint64_t>(k.cc) << 50;
        return static_cast<size_t>(h ^ (h >> 29));
    }
};

struct Provider
{
    Vreg vreg;
    uint32_t resultVn;
    uint32_t vregVnAtDef;  ///< vn the provider vreg had when recorded
};

bool
isCommutative(IrOp op)
{
    switch (op) {
      case IrOp::ADD: case IrOp::AND: case IrOp::OR: case IrOp::XOR:
      case IrOp::MUL: case IrOp::MULH:
        return true;
      default:
        return false;
    }
}

/** Pure ops eligible for expression CSE (loads handled separately). */
bool
isPureValueOp(IrOp op)
{
    switch (op) {
      case IrOp::LDI: case IrOp::ADD: case IrOp::SUB: case IrOp::AND:
      case IrOp::OR: case IrOp::XOR: case IrOp::SLL: case IrOp::SRL:
      case IrOp::SRA: case IrOp::SLT: case IrOp::SLTU: case IrOp::MUL:
      case IrOp::MULH: case IrOp::DIV: case IrOp::REM:
      case IrOp::FADD: case IrOp::FSUB: case IrOp::FMUL: case IrOp::FDIV:
      case IrOp::FSQRT: case IrOp::FABS: case IrOp::FNEG:
      case IrOp::FCVT_IF: case IrOp::FCVT_FI:
      case IrOp::FLT: case IrOp::FLE: case IrOp::FEQ: case IrOp::FUNORD:
        return true;
      default:
        return false;
    }
}

} // namespace

void
commonSubexpressionElimination(Trace &trace, PassStats *stats)
{
    PassStats local;

    // Value numbers per vreg. Bound vregs start with distinct numbers
    // (their live-in values); temporaries get numbers at definition.
    std::vector<uint32_t> vn(trace.numVregs(), 0);
    uint32_t next_vn = 1;
    for (unsigned i = 0; i < kNumBoundVregs; ++i)
        vn[i] = next_vn++;

    auto vn_of = [&](Vreg v) -> uint32_t {
        if (v == kNoVreg)
            return 0;
        if (vn[v] == 0)
            vn[v] = next_vn++;
        return vn[v];
    };

    std::unordered_map<ExprKey, Provider, ExprKeyHash> table;

    // Store-to-load forwarding state.
    struct StoreInfo
    {
        Vreg data;
        uint32_t dataVn;
        uint64_t gen;
        bool fp;
    };
    struct AddrKey
    {
        uint32_t baseVn;
        int64_t imm;
        uint8_t size;
        bool operator==(const AddrKey &) const = default;
    };
    struct AddrKeyHash
    {
        size_t
        operator()(const AddrKey &k) const
        {
            return static_cast<size_t>(
                k.baseVn * 0x9E3779B97F4A7C15ull ^
                static_cast<uint64_t>(k.imm) * 31 ^ k.size);
        }
    };
    std::unordered_map<AddrKey, StoreInfo, AddrKeyHash> last_store;
    uint64_t mem_gen = 0;

    for (IrInst &inst : trace.insts) {
        ++local.instsVisited;
        const IrOpInfo &info = irOpInfo(inst.op);

        if (inst.op == IrOp::MOV || inst.op == IrOp::FMOV) {
            // Copies share the source's value number.
            vn[inst.dst] = vn_of(inst.src1);
            continue;
        }

        if (inst.op == IrOp::ST || inst.op == IrOp::FST) {
            ++mem_gen;
            const AddrKey akey{vn_of(inst.src1), inst.imm, inst.size};
            last_store[akey] = StoreInfo{inst.src2, vn_of(inst.src2),
                                         mem_gen, inst.op == IrOp::FST};
            continue;
        }

        if (inst.op == IrOp::LD || inst.op == IrOp::FLD) {
            const bool is_fp = inst.op == IrOp::FLD;
            const AddrKey akey{vn_of(inst.src1), inst.imm, inst.size};
            auto sit = last_store.find(akey);
            if (sit != last_store.end() && sit->second.gen == mem_gen &&
                sit->second.fp == is_fp &&
                vn_of(sit->second.data) == sit->second.dataVn) {
                // The stored value is still in a register: forward it.
                inst.op = is_fp ? IrOp::FMOV : IrOp::MOV;
                inst.src1 = sit->second.data;
                inst.src2 = kNoVreg;
                inst.imm = 0;
                vn[inst.dst] = sit->second.dataVn;
                ++local.loadsForwarded;
                continue;
            }
            // Redundant-load elimination via the expression table with
            // the current memory generation in the key.
            ExprKey key{inst.op, BrCc::EQ, vn_of(inst.src1), 0, inst.imm,
                        false, inst.size, mem_gen};
            auto it = table.find(key);
            if (it != table.end() &&
                vn_of(it->second.vreg) == it->second.vregVnAtDef) {
                inst.op = is_fp ? IrOp::FMOV : IrOp::MOV;
                inst.src1 = it->second.vreg;
                inst.src2 = kNoVreg;
                inst.imm = 0;
                vn[inst.dst] = it->second.resultVn;
                ++local.cseHits;
                continue;
            }
            const uint32_t rvn = next_vn++;
            vn[inst.dst] = rvn;
            table[key] = Provider{inst.dst, rvn, rvn};
            continue;
        }

        if (info.hasDst && isPureValueOp(inst.op)) {
            uint32_t v1 = vn_of(inst.src1);
            uint32_t v2 = inst.useImm ? 0 : vn_of(inst.src2);
            // Canonicalize commutative integer expressions (skip FP:
            // NaN payload propagation is order-sensitive).
            if (!inst.useImm && isCommutative(inst.op) && v2 < v1) {
                std::swap(inst.src1, inst.src2);
                std::swap(v1, v2);
            }
            ExprKey key{inst.op, BrCc::EQ, v1, v2, inst.imm, inst.useImm,
                        inst.size, 0};
            auto it = table.find(key);
            if (it != table.end() &&
                vn_of(it->second.vreg) == it->second.vregVnAtDef) {
                const bool fp = info.fpDst;
                inst.op = fp ? IrOp::FMOV : IrOp::MOV;
                inst.src1 = it->second.vreg;
                inst.src2 = kNoVreg;
                inst.useImm = false;
                inst.imm = 0;
                vn[inst.dst] = it->second.resultVn;
                ++local.cseHits;
                continue;
            }
            const uint32_t rvn = next_vn++;
            vn[inst.dst] = rvn;
            table[key] = Provider{inst.dst, rvn, rvn};
            continue;
        }

        // Exits and anything else: refresh dst with an opaque number.
        if (info.hasDst)
            vn[inst.dst] = next_vn++;
    }

    if (stats)
        *stats += local;
}

} // namespace darco::ir
