/**
 * @file
 * Linear-scan register allocation for IR traces.
 *
 * Bound virtual registers are pre-colored (guest GPRs -> x32..x39,
 * flags -> x40..x43, guest FP -> f16..f23). Temporaries are allocated
 * from the application-partition temporary pools; when pressure
 * exceeds the pools, the interval with the furthest end is spilled to
 * TOL work memory (slots addressed off a constant base, physical, so
 * spill traffic does not touch the data TLB).
 */

#ifndef DARCO_IR_REGALLOC_HH
#define DARCO_IR_REGALLOC_HH

#include <cstdint>
#include <vector>

#include "ir/ir.hh"

namespace darco::ir {

/** Where a vreg lives after allocation. */
struct VregLoc
{
    bool spilled = false;
    uint8_t reg = 0;      ///< host register number (int x, or f index)
    uint16_t slot = 0;    ///< spill slot index (8 bytes each)
    bool used = false;    ///< vreg appears in the trace
};

/** Allocation result. */
struct Allocation
{
    std::vector<VregLoc> locs;   ///< indexed by vreg
    uint16_t numSpillSlots = 0;
    uint32_t spilledVregs = 0;

    const VregLoc &of(Vreg v) const { return locs[v]; }
};

/** Register pools available to the allocator. */
struct AllocPools
{
    uint8_t intPoolFirst;   ///< first allocatable int register
    uint8_t intPoolCount;
    uint8_t fpPoolFirst;    ///< first allocatable fp register
    uint8_t fpPoolCount;
};

/** Default pools per the address-map conventions (x45..x52, f24..f29;
 *  x53/x54 and f30/f31 stay reserved as spill/lowering scratch). */
AllocPools defaultPools();

/**
 * Allocate registers for all vregs in @p trace.
 * The trace must be in its final instruction order (run the scheduler
 * first): linear-scan intervals are positional.
 */
Allocation allocateRegisters(const Trace &trace,
                             const AllocPools &pools = defaultPools());

} // namespace darco::ir

#endif // DARCO_IR_REGALLOC_HH
