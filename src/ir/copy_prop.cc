#include "ir/passes.hh"

#include <unordered_map>

namespace darco::ir {

namespace {

/** Resolve @p v through the copy map (chains already collapsed). */
ir::Vreg
resolve(const std::unordered_map<Vreg, Vreg> &copies, Vreg v)
{
    auto it = copies.find(v);
    return it == copies.end() ? v : it->second;
}

/** Forget every mapping that reads or writes @p v. */
void
invalidate(std::unordered_map<Vreg, Vreg> &copies, Vreg v)
{
    copies.erase(v);
    for (auto it = copies.begin(); it != copies.end();) {
        if (it->second == v)
            it = copies.erase(it);
        else
            ++it;
    }
}

} // namespace

void
copyPropagation(Trace &trace, PassStats *stats)
{
    PassStats local;
    std::unordered_map<Vreg, Vreg> copies;

    for (IrInst &inst : trace.insts) {
        ++local.instsVisited;

        auto rewrite = [&](Vreg &src) {
            if (src == kNoVreg)
                return;
            const Vreg to = resolve(copies, src);
            if (to != src) {
                src = to;
                ++local.copiesPropagated;
            }
        };
        rewrite(inst.src1);
        if (!inst.useImm)
            rewrite(inst.src2);

        const IrOpInfo &info = irOpInfo(inst.op);
        if (!info.hasDst)
            continue;

        if (inst.op == IrOp::MOV || inst.op == IrOp::FMOV) {
            // dst now copies (resolved) src1. Redefinition of dst
            // invalidates anything built on the old dst first.
            const Vreg source = inst.src1;
            invalidate(copies, inst.dst);
            if (source != inst.dst)
                copies[inst.dst] = source;
        } else {
            invalidate(copies, inst.dst);
        }
    }

    if (stats)
        *stats += local;
}

} // namespace darco::ir
