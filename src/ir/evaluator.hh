/**
 * @file
 * Reference evaluator for IR traces.
 *
 * Executes a trace directly over virtual registers and a paged
 * memory. Used by the test suite to check that every optimizer pass
 * preserves semantics (differential testing against random traces and
 * against the guest emulator), and by the constant-folding pass as
 * the single definition of IR ALU semantics.
 */

#ifndef DARCO_IR_EVALUATOR_HH
#define DARCO_IR_EVALUATOR_HH

#include <cstdint>
#include <vector>

#include "common/paged_memory.hh"
#include "ir/ir.hh"

namespace darco::ir {

/** ALU semantics shared by the evaluator and constant folding. */
uint32_t evalIntOp(IrOp op, uint32_t a, uint32_t b);

/** Evaluate a BR condition. */
bool evalBrCc(BrCc cc, uint32_t a, uint32_t b);

/** Outcome of evaluating a trace. */
struct EvalResult
{
    uint16_t exitId = 0;
    uint32_t indirectTarget = 0;  ///< valid if the exit is indirect
    uint64_t instsExecuted = 0;
};

/**
 * Architectural input/output of a trace evaluation: values of the
 * bound virtual registers.
 */
struct EvalState
{
    std::vector<uint32_t> ints;  ///< indexed by vreg (int class)
    std::vector<double> fps;     ///< indexed by vreg (fp class)
};

/**
 * Run @p trace to an exit.
 *
 * @param state  bound-vreg inputs; on return holds all final values
 *               (including temporaries, for debugging).
 * @param memory memory the trace's loads/stores operate on.
 */
EvalResult evaluate(const Trace &trace, EvalState &state,
                    PagedMemory<uint32_t> &memory);

/** Initialize an EvalState sized for @p trace with zeroes. */
EvalState makeEvalState(const Trace &trace);

} // namespace darco::ir

#endif // DARCO_IR_EVALUATOR_HH
