#include "ir/evaluator.hh"

#include <cmath>
#include <cstring>

#include "common/fpu.hh"
#include "common/logging.hh"

namespace darco::ir {

uint32_t
evalIntOp(IrOp op, uint32_t a, uint32_t b)
{
    switch (op) {
      case IrOp::ADD:  return a + b;
      case IrOp::SUB:  return a - b;
      case IrOp::AND:  return a & b;
      case IrOp::OR:   return a | b;
      case IrOp::XOR:  return a ^ b;
      case IrOp::SLL:  return a << (b & 31);
      case IrOp::SRL:  return a >> (b & 31);
      case IrOp::SRA:
        return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
      case IrOp::SLT:
        return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      case IrOp::SLTU: return a < b;
      case IrOp::MUL:
        return static_cast<uint32_t>(
            static_cast<int64_t>(static_cast<int32_t>(a)) *
            static_cast<int64_t>(static_cast<int32_t>(b)));
      case IrOp::MULH:
        return static_cast<uint32_t>(
            (static_cast<int64_t>(static_cast<int32_t>(a)) *
             static_cast<int64_t>(static_cast<int32_t>(b))) >> 32);
      case IrOp::DIV: {
        const int32_t sa = static_cast<int32_t>(a);
        const int32_t sb = static_cast<int32_t>(b);
        if (sb == 0 || (sa == INT32_MIN && sb == -1))
            return 0;
        return static_cast<uint32_t>(sa / sb);
      }
      case IrOp::REM: {
        const int32_t sa = static_cast<int32_t>(a);
        const int32_t sb = static_cast<int32_t>(b);
        if (sb == 0 || (sa == INT32_MIN && sb == -1))
            return a;
        return static_cast<uint32_t>(sa % sb);
      }
      default:
        panic("evalIntOp: %s is not an integer ALU op", irOpName(op));
    }
}

bool
evalBrCc(BrCc cc, uint32_t a, uint32_t b)
{
    switch (cc) {
      case BrCc::EQ:  return a == b;
      case BrCc::NE:  return a != b;
      case BrCc::LT:  return static_cast<int32_t>(a) <
                             static_cast<int32_t>(b);
      case BrCc::GE:  return static_cast<int32_t>(a) >=
                             static_cast<int32_t>(b);
      case BrCc::LTU: return a < b;
      case BrCc::GEU: return a >= b;
      default: panic("bad BrCc");
    }
}

EvalState
makeEvalState(const Trace &trace)
{
    EvalState state;
    state.ints.assign(trace.numVregs(), 0);
    state.fps.assign(trace.numVregs(), 0.0);
    return state;
}

namespace {

uint32_t
truncToInt32(double d)
{
    if (std::isnan(d) || d >= 2147483648.0 || d < -2147483648.0)
        return 0x80000000u;
    return static_cast<uint32_t>(static_cast<int32_t>(d));
}

} // namespace

EvalResult
evaluate(const Trace &trace, EvalState &state,
         PagedMemory<uint32_t> &memory)
{
    if (state.ints.size() < trace.numVregs())
        state.ints.resize(trace.numVregs(), 0);
    if (state.fps.size() < trace.numVregs())
        state.fps.resize(trace.numVregs(), 0.0);

    EvalResult result;
    auto &iv = state.ints;
    auto &fv = state.fps;

    for (const IrInst &inst : trace.insts) {
        ++result.instsExecuted;
        const uint32_t a = inst.src1 == kNoVreg ? 0 : iv[inst.src1];
        const uint32_t b = inst.useImm
            ? static_cast<uint32_t>(static_cast<int32_t>(inst.imm))
            : (inst.src2 == kNoVreg ? 0 : iv[inst.src2]);

        switch (inst.op) {
          case IrOp::LDI:
            iv[inst.dst] = static_cast<uint32_t>(
                static_cast<int32_t>(inst.imm));
            break;
          case IrOp::MOV:
            iv[inst.dst] = a;
            break;
          case IrOp::ADD: case IrOp::SUB: case IrOp::AND: case IrOp::OR:
          case IrOp::XOR: case IrOp::SLL: case IrOp::SRL: case IrOp::SRA:
          case IrOp::SLT: case IrOp::SLTU: case IrOp::MUL:
          case IrOp::MULH: case IrOp::DIV: case IrOp::REM:
            iv[inst.dst] = evalIntOp(inst.op, a, b);
            break;
          case IrOp::LD:
            iv[inst.dst] = static_cast<uint32_t>(memory.load(
                a + static_cast<uint32_t>(inst.imm), inst.size));
            break;
          case IrOp::ST:
            memory.store(a + static_cast<uint32_t>(inst.imm),
                         inst.useImm ? 0 : iv[inst.src2], inst.size);
            break;
          case IrOp::FLD:
            fv[inst.dst] = memory.loadDouble(
                a + static_cast<uint32_t>(inst.imm));
            break;
          case IrOp::FST:
            memory.storeDouble(a + static_cast<uint32_t>(inst.imm),
                               fv[inst.src2]);
            break;
          case IrOp::FMOV:  fv[inst.dst] = fv[inst.src1]; break;
          case IrOp::FADD:
            fv[inst.dst] = canonFp(fv[inst.src1] + fv[inst.src2]);
            break;
          case IrOp::FSUB:
            fv[inst.dst] = canonFp(fv[inst.src1] - fv[inst.src2]);
            break;
          case IrOp::FMUL:
            fv[inst.dst] = canonFp(fv[inst.src1] * fv[inst.src2]);
            break;
          case IrOp::FDIV:
            fv[inst.dst] = canonFp(fv[inst.src1] / fv[inst.src2]);
            break;
          case IrOp::FSQRT:
            fv[inst.dst] = canonFp(std::sqrt(fv[inst.src1]));
            break;
          case IrOp::FABS:  fv[inst.dst] = std::fabs(fv[inst.src1]); break;
          case IrOp::FNEG:  fv[inst.dst] = -fv[inst.src1]; break;
          case IrOp::FCVT_IF:
            fv[inst.dst] = static_cast<double>(static_cast<int32_t>(a));
            break;
          case IrOp::FCVT_FI:
            iv[inst.dst] = truncToInt32(fv[inst.src1]);
            break;
          case IrOp::FLT:
            iv[inst.dst] = fv[inst.src1] < fv[inst.src2];
            break;
          case IrOp::FLE:
            iv[inst.dst] = fv[inst.src1] <= fv[inst.src2];
            break;
          case IrOp::FEQ:
            iv[inst.dst] = fv[inst.src1] == fv[inst.src2];
            break;
          case IrOp::FUNORD:
            iv[inst.dst] = std::isnan(fv[inst.src1]) ||
                           std::isnan(fv[inst.src2]);
            break;
          case IrOp::BR:
            if (evalBrCc(inst.cc, a, b)) {
                result.exitId = inst.exitId;
                return result;
            }
            break;
          case IrOp::JEXIT:
            result.exitId = inst.exitId;
            return result;
          case IrOp::JINDIRECT:
            result.exitId = inst.exitId;
            result.indirectTarget = a;
            return result;
          default:
            panic("evaluate: unhandled IR op %s", irOpName(inst.op));
        }
    }
    panic("trace fell off the end without an exit");
}

} // namespace darco::ir
