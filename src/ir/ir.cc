#include "ir/ir.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace darco::ir {

namespace {

// name, hasDst, fpDst, fpSrc1, fpSrc2, isLoad, isStore, isExit, sideEffect
const IrOpInfo irOpTable[] = {
    {"ldi",      true,  false, false, false, false, false, false, false},
    {"mov",      true,  false, false, false, false, false, false, false},
    {"add",      true,  false, false, false, false, false, false, false},
    {"sub",      true,  false, false, false, false, false, false, false},
    {"and",      true,  false, false, false, false, false, false, false},
    {"or",       true,  false, false, false, false, false, false, false},
    {"xor",      true,  false, false, false, false, false, false, false},
    {"sll",      true,  false, false, false, false, false, false, false},
    {"srl",      true,  false, false, false, false, false, false, false},
    {"sra",      true,  false, false, false, false, false, false, false},
    {"slt",      true,  false, false, false, false, false, false, false},
    {"sltu",     true,  false, false, false, false, false, false, false},
    {"mul",      true,  false, false, false, false, false, false, false},
    {"mulh",     true,  false, false, false, false, false, false, false},
    {"div",      true,  false, false, false, false, false, false, false},
    {"rem",      true,  false, false, false, false, false, false, false},
    {"ld",       true,  false, false, false, true,  false, false, false},
    {"st",       false, false, false, false, false, true,  false, true},
    {"fld",      true,  true,  false, false, true,  false, false, false},
    {"fst",      false, false, false, true,  false, true,  false, true},
    {"fmov",     true,  true,  true,  false, false, false, false, false},
    {"fadd",     true,  true,  true,  true,  false, false, false, false},
    {"fsub",     true,  true,  true,  true,  false, false, false, false},
    {"fmul",     true,  true,  true,  true,  false, false, false, false},
    {"fdiv",     true,  true,  true,  true,  false, false, false, false},
    {"fsqrt",    true,  true,  true,  false, false, false, false, false},
    {"fabs",     true,  true,  true,  false, false, false, false, false},
    {"fneg",     true,  true,  true,  false, false, false, false, false},
    {"fcvt.if",  true,  true,  false, false, false, false, false, false},
    {"fcvt.fi",  true,  false, true,  false, false, false, false, false},
    {"flt",      true,  false, true,  true,  false, false, false, false},
    {"fle",      true,  false, true,  true,  false, false, false, false},
    {"feq",      true,  false, true,  true,  false, false, false, false},
    {"funord",   true,  false, true,  true,  false, false, false, false},
    {"br",       false, false, false, false, false, false, true,  true},
    {"jexit",    false, false, false, false, false, false, true,  true},
    {"jindirect", false, false, false, false, false, false, true,  true},
};

static_assert(sizeof(irOpTable) / sizeof(irOpTable[0]) ==
              static_cast<size_t>(IrOp::NumOps),
              "irOpTable must cover every IrOp");

const char *ccNames[] = {"eq", "ne", "lt", "ge", "ltu", "geu"};

} // namespace

const IrOpInfo &
irOpInfo(IrOp op)
{
    panic_if(op >= IrOp::NumOps, "bad IR op %d", static_cast<int>(op));
    return irOpTable[static_cast<int>(op)];
}

Trace::Trace()
{
    vregClass.resize(kNumBoundVregs);
    for (unsigned i = 0; i < 12; ++i)
        vregClass[i] = RegClass::Int;     // GPRs + flags
    for (unsigned i = 12; i < kNumBoundVregs; ++i)
        vregClass[i] = RegClass::Fp;      // guest FP regs
}

Vreg
Trace::newTemp(RegClass cls)
{
    vregClass.push_back(cls);
    return static_cast<Vreg>(vregClass.size() - 1);
}

std::string
validate(const Trace &trace)
{
    if (trace.insts.empty())
        return "empty trace";
    if (trace.exits.empty())
        return "trace has no exits";

    const IrInst &last = trace.insts.back();
    if (last.op != IrOp::JEXIT && last.op != IrOp::JINDIRECT)
        return "trace does not end with an unconditional exit";

    std::unordered_set<Vreg> defined;
    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        const IrOpInfo &info = irOpInfo(inst.op);

        auto check_src = [&](Vreg v, bool fp, const char *what)
            -> std::string {
            if (v == kNoVreg)
                return strprintf("inst %zu (%s): missing %s", i,
                                 irOpName(inst.op), what);
            if (v >= trace.numVregs())
                return strprintf("inst %zu: %s vreg v%u out of range", i,
                                 what, v);
            const RegClass want = fp ? RegClass::Fp : RegClass::Int;
            if (trace.vregClass[v] != want)
                return strprintf("inst %zu: %s vreg v%u wrong class", i,
                                 what, v);
            if (!isBoundVreg(v) && !defined.count(v))
                return strprintf("inst %zu: temp v%u used before def", i,
                                 v);
            return "";
        };

        // Sources.
        const bool has_src1 =
            inst.op != IrOp::LDI && inst.op != IrOp::JEXIT;
        if (has_src1) {
            std::string err = check_src(inst.src1, info.fpSrc1, "src1");
            if (!err.empty())
                return err;
        }
        const bool has_src2 =
            !inst.useImm && inst.src2 != kNoVreg;
        if (has_src2) {
            std::string err = check_src(inst.src2, info.fpSrc2, "src2");
            if (!err.empty())
                return err;
        }

        // Destination.
        if (info.hasDst) {
            if (inst.dst == kNoVreg)
                return strprintf("inst %zu (%s): missing dst", i,
                                 irOpName(inst.op));
            if (inst.dst >= trace.numVregs())
                return strprintf("inst %zu: dst v%u out of range", i,
                                 inst.dst);
            const RegClass want = info.fpDst ? RegClass::Fp
                                             : RegClass::Int;
            if (trace.vregClass[inst.dst] != want)
                return strprintf("inst %zu: dst v%u wrong class", i,
                                 inst.dst);
            if (!isBoundVreg(inst.dst)) {
                if (defined.count(inst.dst))
                    return strprintf("inst %zu: temp v%u assigned twice",
                                     i, inst.dst);
                defined.insert(inst.dst);
            }
        }

        // Exits.
        if (info.isExit) {
            if (inst.exitId >= trace.exits.size())
                return strprintf("inst %zu: exit id %u out of range", i,
                                 inst.exitId);
            if (inst.op != IrOp::BR && i + 1 != trace.insts.size())
                return strprintf("inst %zu: unconditional exit mid-trace",
                                 i);
        }
    }
    return "";
}

std::string
toString(const IrInst &inst)
{
    const IrOpInfo &info = irOpInfo(inst.op);
    std::string s = irOpName(inst.op);
    if (inst.op == IrOp::BR)
        s += strprintf(".%s", ccNames[static_cast<int>(inst.cc)]);
    if (info.hasDst)
        s += strprintf(" v%u,", inst.dst);
    switch (inst.op) {
      case IrOp::LDI:
        s += strprintf(" %lld", static_cast<long long>(inst.imm));
        break;
      case IrOp::LD:
      case IrOp::FLD:
        s += strprintf(" [v%u%+lld]:%u", inst.src1,
                       static_cast<long long>(inst.imm), inst.size);
        break;
      case IrOp::ST:
      case IrOp::FST:
        s += strprintf(" [v%u%+lld]:%u, v%u", inst.src1,
                       static_cast<long long>(inst.imm), inst.size,
                       inst.src2);
        break;
      case IrOp::JEXIT:
        s += strprintf(" ->exit%u", inst.exitId);
        break;
      case IrOp::JINDIRECT:
        s += strprintf(" v%u ->exit%u", inst.src1, inst.exitId);
        break;
      case IrOp::BR:
        if (inst.useImm) {
            s += strprintf(" v%u, %lld ->exit%u", inst.src1,
                           static_cast<long long>(inst.imm), inst.exitId);
        } else {
            s += strprintf(" v%u, v%u ->exit%u", inst.src1, inst.src2,
                           inst.exitId);
        }
        break;
      default:
        if (inst.src1 != kNoVreg)
            s += strprintf(" v%u", inst.src1);
        if (inst.useImm)
            s += strprintf(", %lld", static_cast<long long>(inst.imm));
        else if (inst.src2 != kNoVreg)
            s += strprintf(", v%u", inst.src2);
        break;
    }
    return s;
}

std::string
toString(const Trace &trace)
{
    std::string s = strprintf("trace @0x%08x (%zu insts, %zu exits)\n",
                              trace.guestEntry, trace.insts.size(),
                              trace.exits.size());
    for (size_t i = 0; i < trace.insts.size(); ++i)
        s += strprintf("  %3zu: %s\n", i, toString(trace.insts[i]).c_str());
    for (size_t e = 0; e < trace.exits.size(); ++e) {
        const IrExit &exit = trace.exits[e];
        s += strprintf("  exit%zu: %s0x%08x retired=%u flags=%x\n", e,
                       exit.indirect ? "indirect " : "",
                       exit.guestTarget, exit.guestInstsRetired,
                       exit.flagMask);
    }
    return s;
}

} // namespace darco::ir
