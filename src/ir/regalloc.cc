#include "ir/regalloc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::ir {

AllocPools
defaultPools()
{
    AllocPools pools;
    pools.intPoolFirst = host::hreg::TempBase;       // x45
    pools.intPoolCount = 8;                          // x45..x52
    pools.fpPoolFirst = host::hreg::FpTempBase;      // f24
    pools.fpPoolCount = 6;                           // f24..f29
    return pools;
}

namespace {

struct Interval
{
    Vreg vreg;
    uint32_t start;
    uint32_t end;
    RegClass cls;
};

} // namespace

Allocation
allocateRegisters(const Trace &trace, const AllocPools &pools)
{
    Allocation alloc;
    alloc.locs.resize(trace.numVregs());

    // Pre-color bound vregs.
    for (unsigned r = 0; r < 8; ++r) {
        alloc.locs[vGpr(r)].reg = host::hreg::guestGpr(r);
        alloc.locs[vGpr(r)].used = true;
    }
    alloc.locs[vFlagZ].reg = host::hreg::FlagZ;
    alloc.locs[vFlagS].reg = host::hreg::FlagS;
    alloc.locs[vFlagC].reg = host::hreg::FlagC;
    alloc.locs[vFlagO].reg = host::hreg::FlagO;
    for (unsigned i = vFlagZ; i <= vFlagO; ++i)
        alloc.locs[i].used = true;
    for (unsigned r = 0; r < 8; ++r) {
        alloc.locs[vFpr(r)].reg = host::hreg::guestFpr(r);
        alloc.locs[vFpr(r)].used = true;
    }

    // Live intervals for temporaries (single-assignment, so the
    // interval is [def .. last use]).
    std::vector<Interval> intervals;
    std::vector<int64_t> def_pos(trace.numVregs(), -1);
    std::vector<int64_t> last_use(trace.numVregs(), -1);

    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        const IrOpInfo &info = irOpInfo(inst.op);
        auto use = [&](Vreg v) {
            if (v != kNoVreg && !isBoundVreg(v))
                last_use[v] = static_cast<int64_t>(i);
        };
        use(inst.src1);
        if (!inst.useImm)
            use(inst.src2);
        if (info.hasDst && !isBoundVreg(inst.dst) &&
            def_pos[inst.dst] < 0) {
            def_pos[inst.dst] = static_cast<int64_t>(i);
        }
    }

    for (Vreg v = kFirstTemp; v < trace.numVregs(); ++v) {
        if (def_pos[v] < 0)
            continue;  // dead temp (DCE'd)
        alloc.locs[v].used = true;
        const int64_t end = std::max(last_use[v], def_pos[v]);
        intervals.push_back(Interval{v,
                                     static_cast<uint32_t>(def_pos[v]),
                                     static_cast<uint32_t>(end),
                                     trace.vregClass[v]});
    }

    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start ||
                         (a.start == b.start && a.vreg < b.vreg);
              });

    // Independent linear scans per register class.
    for (const RegClass cls : {RegClass::Int, RegClass::Fp}) {
        const uint8_t pool_first = cls == RegClass::Int
            ? pools.intPoolFirst : pools.fpPoolFirst;
        const uint8_t pool_count = cls == RegClass::Int
            ? pools.intPoolCount : pools.fpPoolCount;

        std::vector<bool> reg_free(pool_count, true);
        // Active intervals sorted by end (small sizes: linear ops).
        std::vector<Interval> active;

        for (const Interval &cur : intervals) {
            if (cur.cls != cls)
                continue;

            // Expire finished intervals.
            for (auto it = active.begin(); it != active.end();) {
                if (it->end < cur.start) {
                    reg_free[alloc.locs[it->vreg].reg - pool_first] =
                        true;
                    it = active.erase(it);
                } else {
                    ++it;
                }
            }

            int free_reg = -1;
            for (unsigned r = 0; r < pool_count; ++r) {
                if (reg_free[r]) {
                    free_reg = static_cast<int>(r);
                    break;
                }
            }

            if (free_reg >= 0) {
                alloc.locs[cur.vreg].reg =
                    static_cast<uint8_t>(pool_first + free_reg);
                reg_free[free_reg] = false;
                active.push_back(cur);
                continue;
            }

            // Spill: evict whichever of {cur, active...} ends last.
            auto victim = active.end();
            uint32_t furthest = cur.end;
            for (auto it = active.begin(); it != active.end(); ++it) {
                if (it->end > furthest) {
                    furthest = it->end;
                    victim = it;
                }
            }
            if (victim == active.end()) {
                // Current interval ends last: spill it.
                alloc.locs[cur.vreg].spilled = true;
                alloc.locs[cur.vreg].slot = alloc.numSpillSlots++;
                ++alloc.spilledVregs;
            } else {
                const uint8_t reg = alloc.locs[victim->vreg].reg;
                alloc.locs[victim->vreg].spilled = true;
                alloc.locs[victim->vreg].reg = 0;
                alloc.locs[victim->vreg].slot = alloc.numSpillSlots++;
                ++alloc.spilledVregs;
                alloc.locs[cur.vreg].reg = reg;
                Interval replacement = cur;
                active.erase(victim);
                active.push_back(replacement);
            }
        }
    }

    return alloc;
}

} // namespace darco::ir
