/**
 * @file
 * Translation IR.
 *
 * The translator lowers a guest basic block or superblock into a
 * *linear trace* of IR instructions over virtual registers: a single
 * entry, straight-line code, and side exits (conditional branches
 * that leave the trace). Straight-line traces make every dataflow
 * pass a simple forward/backward scan — exactly why superblock-based
 * dynamic optimizers use them.
 *
 * Virtual register space:
 *   v0..v7    bound to guest GPRs EAX..EDI    (live at every exit)
 *   v8..v11   bound to guest flags Z,S,C,O    (live per exit flagMask)
 *   v12..v19  bound to guest FP regs F0..F7   (live at every exit)
 *   v20..     temporaries, single-assignment (SSA discipline enforced
 *             by validate())
 *
 * Guest flags are emitted *eagerly* as explicit flag-vreg definitions
 * after every flag-writing guest instruction; dead flag computations
 * are removed by DCE using the per-exit flag liveness masks computed
 * from the successor guest code. PF is never materialized (no GX86
 * condition consumes it; see DESIGN.md).
 */

#ifndef DARCO_IR_IR_HH
#define DARCO_IR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace darco::ir {

using Vreg = uint16_t;

constexpr Vreg kNoVreg = 0xFFFF;

/** Bound virtual registers. */
constexpr Vreg vGpr(unsigned r) { return static_cast<Vreg>(r); }
constexpr Vreg vFlagZ = 8;
constexpr Vreg vFlagS = 9;
constexpr Vreg vFlagC = 10;
constexpr Vreg vFlagO = 11;
constexpr Vreg vFpr(unsigned r) { return static_cast<Vreg>(12 + r); }
constexpr Vreg kFirstTemp = 20;
constexpr unsigned kNumBoundVregs = 20;

/** Flag-mask bits (order matches vFlagZ..vFlagO). */
namespace fmask {
constexpr uint8_t Z = 1 << 0;
constexpr uint8_t S = 1 << 1;
constexpr uint8_t C = 1 << 2;
constexpr uint8_t O = 1 << 3;
constexpr uint8_t All = Z | S | C | O;
} // namespace fmask

/** Flag vreg for a fmask bit index (0..3). */
constexpr Vreg
flagVreg(unsigned bit)
{
    return static_cast<Vreg>(vFlagZ + bit);
}

/** Register class of a virtual register. */
enum class RegClass : uint8_t { Int = 0, Fp };

/** IR opcodes. ALU ops take src2 or imm (useImm). */
enum class IrOp : uint8_t {
    LDI = 0,   ///< dst = imm
    MOV,       ///< dst = src1 (int copy)
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, REM,
    LD,        ///< dst = mem[src1 + imm]  (size 1 or 4, zero-extend)
    ST,        ///< mem[src1 + imm] = src2
    FLD,       ///< fdst = mem[src1 + imm] (8 bytes)
    FST,       ///< mem[src1 + imm] = fsrc2
    FMOV, FADD, FSUB, FMUL, FDIV, FSQRT, FABS, FNEG,
    FCVT_IF,   ///< fdst = (double)(int32)src1
    FCVT_FI,   ///< dst = trunc(fsrc1)
    FLT, FLE, FEQ, FUNORD,  ///< int dst = fp compare
    BR,        ///< if cc(src1, src2/imm) leave trace via exits[exitId]
    JEXIT,     ///< unconditionally leave via exits[exitId]
    JINDIRECT, ///< leave via exits[exitId]; guest target value = src1
    NumOps,
};

/** Branch condition for BR. */
enum class BrCc : uint8_t { EQ = 0, NE, LT, GE, LTU, GEU };

/** Static properties of an IR op. */
struct IrOpInfo
{
    const char *name;
    bool hasDst;
    bool fpDst;
    bool fpSrc1;
    bool fpSrc2;
    bool isLoad;
    bool isStore;
    bool isExit;      ///< BR / JEXIT / JINDIRECT
    bool sideEffect;  ///< must not be removed by DCE
};

const IrOpInfo &irOpInfo(IrOp op);

inline const char *irOpName(IrOp op) { return irOpInfo(op).name; }

/** One IR instruction. */
struct IrInst
{
    IrOp op = IrOp::LDI;
    BrCc cc = BrCc::EQ;
    Vreg dst = kNoVreg;
    Vreg src1 = kNoVreg;
    Vreg src2 = kNoVreg;
    bool useImm = false;   ///< ALU src2 is imm; BR compares src1 vs imm
    uint8_t size = 4;      ///< memory access size
    uint16_t exitId = 0;   ///< for exit ops
    uint16_t guestIndex = 0; ///< originating guest instruction
    int64_t imm = 0;

    bool isExit() const { return irOpInfo(op).isExit; }
};

/** One way out of the trace. */
struct IrExit
{
    uint32_t guestTarget = 0;      ///< 0 for indirect exits
    uint32_t guestInstsRetired = 0;
    bool indirect = false;
    bool halt = false;             ///< guest HALT exit
    /** Flags (fmask bits) live-out at this exit; DCE roots. */
    uint8_t flagMask = fmask::All;
};

/** A linear trace: the unit of translation and optimization. */
struct Trace
{
    uint32_t guestEntry = 0;
    std::vector<IrInst> insts;
    std::vector<IrExit> exits;
    /** Guest EIP per guest-instruction index. */
    std::vector<uint32_t> guestEips;
    /** Class of each vreg (bound vregs pre-populated). */
    std::vector<RegClass> vregClass;

    Trace();

    /** Allocate a fresh temporary of class @p cls. */
    Vreg newTemp(RegClass cls);

    /** Append an instruction; returns its index. */
    size_t
    append(const IrInst &inst)
    {
        insts.push_back(inst);
        return insts.size() - 1;
    }

    uint16_t numVregs() const
    {
        return static_cast<uint16_t>(vregClass.size());
    }

    /** Total guest instructions the full trace covers. */
    uint32_t numGuestInsts() const
    {
        return static_cast<uint32_t>(guestEips.size());
    }
};

/** True if @p v is bound to guest architectural state. */
constexpr bool
isBoundVreg(Vreg v)
{
    return v < kNumBoundVregs;
}

/** True if @p v is one of the flag vregs. */
constexpr bool
isFlagVreg(Vreg v)
{
    return v >= vFlagZ && v <= vFlagO;
}

/**
 * Structural validation (used by tests and after every pass):
 *  - temporaries are single-assignment and defined before use,
 *  - vreg ids are in range and classes consistent with ops,
 *  - exit ids valid, trace ends with an unconditional exit,
 *  - no unconditional exit in the middle followed by dead code.
 * Returns an empty string when valid, else a diagnostic.
 */
std::string validate(const Trace &trace);

/** Pretty-print one instruction (for tests/debugging). */
std::string toString(const IrInst &inst);

/** Pretty-print the whole trace. */
std::string toString(const Trace &trace);

} // namespace darco::ir

#endif // DARCO_IR_IR_HH
