#include "ir/scheduler.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace darco::ir {

unsigned
scheduleLatency(IrOp op)
{
    switch (op) {
      case IrOp::LD:
      case IrOp::FLD:
        return 3;  // L1 hit plus load-to-use distance
      case IrOp::MUL: case IrOp::MULH: case IrOp::DIV: case IrOp::REM:
        return 2;
      case IrOp::FADD: case IrOp::FSUB: case IrOp::FMOV:
      case IrOp::FABS: case IrOp::FNEG: case IrOp::FCVT_IF:
      case IrOp::FCVT_FI: case IrOp::FLT: case IrOp::FLE:
      case IrOp::FEQ: case IrOp::FUNORD:
        return 2;
      case IrOp::FMUL: case IrOp::FDIV: case IrOp::FSQRT:
        return 5;
      default:
        return 1;
    }
}

namespace {

/** Schedule one segment [first, last) of the trace in place. */
void
scheduleSegment(std::vector<IrInst> &insts, size_t first, size_t last,
                uint16_t num_vregs, ScheduleStats &stats)
{
    const size_t n = last - first;
    if (n < 2)
        return;

    // Dependence DAG. succs/preds by local index.
    std::vector<std::vector<uint32_t>> succs(n);
    std::vector<uint32_t> pred_count(n, 0);

    auto add_edge = [&](size_t from, size_t to) {
        succs[from].push_back(static_cast<uint32_t>(to));
        ++pred_count[to];
        ++stats.edgesBuilt;
    };

    // Last def and uses-since-def per vreg (local indices, -1 none).
    std::vector<int64_t> last_def(num_vregs, -1);
    std::vector<std::vector<uint32_t>> uses_since(num_vregs);
    int64_t last_store = -1;
    std::vector<uint32_t> loads_since_store;

    for (size_t li = 0; li < n; ++li) {
        const IrInst &inst = insts[first + li];
        const IrOpInfo &info = irOpInfo(inst.op);

        auto use = [&](Vreg v) {
            if (v == kNoVreg)
                return;
            if (last_def[v] >= 0)
                add_edge(static_cast<size_t>(last_def[v]), li);  // RAW
            uses_since[v].push_back(static_cast<uint32_t>(li));
        };
        use(inst.src1);
        if (!inst.useImm)
            use(inst.src2);

        if (info.hasDst && inst.dst != kNoVreg) {
            // WAR on earlier uses, WAW on earlier def.
            for (uint32_t u : uses_since[inst.dst]) {
                if (u != li)
                    add_edge(u, li);
            }
            if (last_def[inst.dst] >= 0)
                add_edge(static_cast<size_t>(last_def[inst.dst]), li);
            uses_since[inst.dst].clear();
            last_def[inst.dst] = static_cast<int64_t>(li);
        }

        // Conservative memory ordering.
        if (info.isLoad) {
            if (last_store >= 0)
                add_edge(static_cast<size_t>(last_store), li);
            loads_since_store.push_back(static_cast<uint32_t>(li));
        } else if (info.isStore) {
            if (last_store >= 0)
                add_edge(static_cast<size_t>(last_store), li);
            for (uint32_t l : loads_since_store)
                add_edge(l, li);
            loads_since_store.clear();
            last_store = static_cast<int64_t>(li);
        }
    }

    // Critical-path priority: longest latency path to segment end.
    std::vector<uint32_t> priority(n, 0);
    for (size_t li = n; li-- > 0;) {
        uint32_t best = 0;
        for (uint32_t s : succs[li])
            best = std::max(best, priority[s]);
        priority[li] = best + scheduleLatency(insts[first + li].op);
    }

    // List scheduling with a 2-wide issue model.
    std::vector<uint32_t> ready_time(n, 0);
    std::vector<bool> scheduled(n, false);
    std::vector<uint32_t> order;
    order.reserve(n);

    std::vector<uint32_t> ready;
    for (size_t li = 0; li < n; ++li) {
        if (pred_count[li] == 0)
            ready.push_back(static_cast<uint32_t>(li));
    }

    uint32_t cycle = 0;
    unsigned issued_this_cycle = 0;
    while (order.size() < n) {
        // Pick the highest-priority ready instruction whose operands
        // are available at the current cycle; prefer original order
        // on ties (stability).
        int best = -1;
        for (size_t k = 0; k < ready.size(); ++k) {
            const uint32_t cand = ready[k];
            if (ready_time[cand] > cycle)
                continue;
            if (best < 0 ||
                priority[cand] > priority[ready[best]] ||
                (priority[cand] == priority[ready[best]] &&
                 cand < ready[best])) {
                best = static_cast<int>(k);
            }
        }

        if (best < 0 || issued_this_cycle == 2) {
            ++cycle;
            issued_this_cycle = 0;
            continue;
        }

        const uint32_t li = ready[best];
        ready.erase(ready.begin() + best);
        scheduled[li] = true;
        order.push_back(li);
        ++issued_this_cycle;

        const uint32_t done = cycle + scheduleLatency(insts[first + li].op);
        for (uint32_t s : succs[li]) {
            ready_time[s] = std::max(ready_time[s], done);
            if (--pred_count[s] == 0)
                ready.push_back(s);
        }
    }

    // Apply the permutation.
    std::vector<IrInst> tmp;
    tmp.reserve(n);
    for (size_t li = 0; li < n; ++li) {
        if (order[li] != li)
            ++stats.instsMoved;
        tmp.push_back(insts[first + order[li]]);
    }
    for (size_t li = 0; li < n; ++li)
        insts[first + li] = tmp[li];
}

} // namespace

void
scheduleTrace(Trace &trace, ScheduleStats *stats)
{
    ScheduleStats local;
    size_t seg_start = 0;
    for (size_t i = 0; i < trace.insts.size(); ++i) {
        if (trace.insts[i].isExit()) {
            // Schedule [seg_start, i): the control inst stays put.
            ++local.segments;
            scheduleSegment(trace.insts, seg_start, i,
                            trace.numVregs(), local);
            seg_start = i + 1;
        }
    }
    if (stats)
        *stats = local;
}

} // namespace darco::ir
