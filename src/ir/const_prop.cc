#include "ir/passes.hh"

#include <unordered_map>

#include "ir/evaluator.hh"

namespace darco::ir {

namespace {

bool
isIntAlu(IrOp op)
{
    switch (op) {
      case IrOp::ADD: case IrOp::SUB: case IrOp::AND: case IrOp::OR:
      case IrOp::XOR: case IrOp::SLL: case IrOp::SRL: case IrOp::SRA:
      case IrOp::SLT: case IrOp::SLTU: case IrOp::MUL: case IrOp::MULH:
      case IrOp::DIV: case IrOp::REM:
        return true;
      default:
        return false;
    }
}

bool
isCommutative(IrOp op)
{
    switch (op) {
      case IrOp::ADD: case IrOp::AND: case IrOp::OR: case IrOp::XOR:
      case IrOp::MUL: case IrOp::MULH:
        return true;
      default:
        return false;
    }
}

/** Ops whose src2 the host can take as an immediate after lowering. */
bool
hasImmForm(IrOp op)
{
    switch (op) {
      case IrOp::ADD: case IrOp::SUB: case IrOp::AND: case IrOp::OR:
      case IrOp::XOR: case IrOp::SLL: case IrOp::SRL: case IrOp::SRA:
      case IrOp::SLT: case IrOp::SLTU:
        return true;
      default:
        return false;
    }
}

} // namespace

void
constantPropagation(Trace &trace, PassStats *stats)
{
    PassStats local;
    std::unordered_map<Vreg, uint32_t> consts;

    auto const_of = [&](Vreg v, uint32_t &out) {
        if (v == kNoVreg)
            return false;
        auto it = consts.find(v);
        if (it == consts.end())
            return false;
        out = it->second;
        return true;
    };

    std::vector<IrInst> out;
    out.reserve(trace.insts.size());
    bool truncated = false;

    for (IrInst inst : trace.insts) {
        if (truncated)
            break;
        ++local.instsVisited;

        uint32_t c1 = 0;
        uint32_t c2 = 0;
        const bool k1 = const_of(inst.src1, c1);
        bool k2 = false;
        if (inst.useImm) {
            c2 = static_cast<uint32_t>(static_cast<int32_t>(inst.imm));
            k2 = true;
        } else {
            k2 = const_of(inst.src2, c2);
        }

        switch (inst.op) {
          case IrOp::LDI:
            consts[inst.dst] = static_cast<uint32_t>(
                static_cast<int32_t>(inst.imm));
            out.push_back(inst);
            continue;

          case IrOp::MOV:
            if (k1) {
                inst.op = IrOp::LDI;
                inst.imm = static_cast<int32_t>(c1);
                inst.src1 = kNoVreg;
                consts[inst.dst] = c1;
                ++local.constsPropagated;
            } else {
                consts.erase(inst.dst);
            }
            out.push_back(inst);
            continue;

          case IrOp::BR:
            if (k1 && k2) {
                ++local.branchesResolved;
                if (evalBrCc(inst.cc, c1, c2)) {
                    // Always taken: trace ends here.
                    inst.op = IrOp::JEXIT;
                    inst.src1 = kNoVreg;
                    inst.src2 = kNoVreg;
                    inst.useImm = false;
                    out.push_back(inst);
                    truncated = true;
                } else {
                    // Never taken: drop the branch entirely.
                    ++local.instsRemoved;
                }
                continue;
            }
            out.push_back(inst);
            continue;

          default:
            break;
        }

        if (isIntAlu(inst.op)) {
            if (k1 && k2) {
                const uint32_t value = evalIntOp(inst.op, c1, c2);
                inst.op = IrOp::LDI;
                inst.imm = static_cast<int32_t>(value);
                inst.src1 = kNoVreg;
                inst.src2 = kNoVreg;
                inst.useImm = false;
                consts[inst.dst] = value;
                ++local.constsFolded;
                out.push_back(inst);
                continue;
            }
            // Swap a constant first operand into the immediate slot
            // for commutative ops.
            if (k1 && !k2 && isCommutative(inst.op)) {
                std::swap(inst.src1, inst.src2);
                c2 = c1;
                k2 = true;
            }
            if (k2 && !inst.useImm && hasImmForm(inst.op)) {
                inst.useImm = true;
                inst.imm = static_cast<int32_t>(c2);
                inst.src2 = kNoVreg;
                ++local.constsPropagated;
            }
            consts.erase(inst.dst);
            out.push_back(inst);
            continue;
        }

        // Everything else: conservatively kill dst constness.
        const IrOpInfo &info = irOpInfo(inst.op);
        if (info.hasDst)
            consts.erase(inst.dst);
        out.push_back(inst);
    }

    local.instsRemoved =
        static_cast<uint32_t>(trace.insts.size() - out.size());
    trace.insts = std::move(out);

    if (stats)
        *stats += local;
}

} // namespace darco::ir
