/**
 * @file
 * Optimizer passes over IR traces — the SBM optimization pipeline of
 * the paper (§II-A.1): copy propagation, constant propagation,
 * constant folding, common subexpression elimination, dead code
 * elimination. Register allocation and instruction scheduling live in
 * regalloc.hh / scheduler.hh.
 *
 * Every pass preserves trace semantics (differentially tested against
 * the evaluator) and leaves the trace structurally valid
 * (ir::validate()).
 */

#ifndef DARCO_IR_PASSES_HH
#define DARCO_IR_PASSES_HH

#include <cstdint>

#include "ir/ir.hh"

namespace darco::ir {

/** Work/result statistics for one pass application. */
struct PassStats
{
    uint32_t instsVisited = 0;
    uint32_t copiesPropagated = 0;
    uint32_t constsPropagated = 0;
    uint32_t constsFolded = 0;
    uint32_t branchesResolved = 0;  ///< statically decided BRs
    uint32_t cseHits = 0;
    uint32_t loadsForwarded = 0;
    uint32_t instsRemoved = 0;

    PassStats &
    operator+=(const PassStats &o)
    {
        instsVisited += o.instsVisited;
        copiesPropagated += o.copiesPropagated;
        constsPropagated += o.constsPropagated;
        constsFolded += o.constsFolded;
        branchesResolved += o.branchesResolved;
        cseHits += o.cseHits;
        loadsForwarded += o.loadsForwarded;
        instsRemoved += o.instsRemoved;
        return *this;
    }
};

/**
 * Copy propagation: forward MOV/FMOV chains into uses. Does not
 * remove the copies themselves (DCE does).
 */
void copyPropagation(Trace &trace, PassStats *stats = nullptr);

/**
 * Constant propagation + constant folding: LDI values flow into
 * immediate operands; fully-constant ALU ops become LDIs; statically
 * decided branches are removed (never taken) or convert the trace
 * tail into an unconditional exit (always taken).
 */
void constantPropagation(Trace &trace, PassStats *stats = nullptr);

/**
 * Common subexpression elimination by value numbering, including
 * redundant-load elimination and store-to-load forwarding with
 * conservative memory generations (any store invalidates).
 */
void commonSubexpressionElimination(Trace &trace,
                                    PassStats *stats = nullptr);

/**
 * Dead code elimination: removes instructions whose results cannot
 * reach any exit. Exit liveness: all guest GPR/FP vregs are live at
 * every exit; flag vregs are live per the exit's flagMask.
 */
void deadCodeElimination(Trace &trace, PassStats *stats = nullptr);

} // namespace darco::ir

#endif // DARCO_IR_PASSES_HH
