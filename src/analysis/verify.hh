/**
 * @file
 * Static IR/translation verifier (docs/analysis.md).
 *
 * Independent re-derivation of the invariants every TOL pass must
 * preserve, checked between passes when TolConfig::verifyIr is on:
 *
 *  - verifyTrace():      structural operand/width checks, reaching-
 *                        definitions def-before-use + SSA discipline
 *                        for temporaries, exit-table consistency, and
 *                        memory/branch side-effect ordering.
 *  - verifySchedule():   the scheduler's output is a segment-local
 *                        permutation of its input that respects every
 *                        dependence edge (RAW/WAR/WAW per vreg plus
 *                        the conservative memory model), with the
 *                        edges recomputed here from the pre-schedule
 *                        trace — not taken from the scheduler.
 *  - verifyAllocation(): post-regalloc proof that no two overlapping
 *                        live ranges share a host register or spill
 *                        slot, that bound vregs kept their pre-colored
 *                        registers, and that every live temporary has
 *                        a location.
 *
 * All three are pure observers: they never mutate the trace, charge
 * no cost-model work, and emit no records, so enabling verification
 * cannot change any determinism field (bench/check_perf.py relies on
 * this). The check*() wrappers raise the findings as a classified
 * fatal_kind(ErrKind::Internal) through the error taxonomy
 * (sim/run_error.hh), so a batch campaign reports a miscompile as a
 * permanent, never-retried Internal failure.
 */

#ifndef DARCO_ANALYSIS_VERIFY_HH
#define DARCO_ANALYSIS_VERIFY_HH

#include <string>
#include <vector>

#include "ir/ir.hh"
#include "ir/regalloc.hh"

namespace darco::analysis {

/** Verifier findings: one human-readable diagnostic per violation.
 *  Empty means the property holds. */
using Findings = std::vector<std::string>;

/** Join findings into one newline-separated diagnostic string. */
inline std::string
joinFindings(const Findings &findings)
{
    std::string out;
    for (const std::string &f : findings) {
        if (!out.empty())
            out += "\n  ";
        out += f;
    }
    return out;
}

/**
 * Structural + dataflow verification of @p trace.
 *
 * @param scheduled the trace has been through the instruction
 *        scheduler: side-effect guest-order monotonicity is skipped
 *        (reordering within a segment legitimately breaks it;
 *        verifySchedule() proves the reorder safe instead).
 */
Findings verifyTrace(const ir::Trace &trace, bool scheduled = false);

/**
 * Verify that @p after is a legal schedule of @p before: identical
 * exits/EIP tables, exit instructions pinned in place, each segment a
 * permutation of the original, and every dependence edge of the
 * original order preserved.
 */
Findings verifySchedule(const ir::Trace &before, const ir::Trace &after);

/**
 * Verify @p alloc against @p trace: recomputes every temporary's live
 * interval and proves register/spill-slot assignments conflict-free.
 */
Findings verifyAllocation(const ir::Trace &trace,
                          const ir::Allocation &alloc,
                          const ir::AllocPools &pools = ir::defaultPools());

/**
 * fatal_kind(ErrKind::Internal) with the findings when non-empty.
 * @p stage names the pass just executed ("sbm/cse", "bbm/regalloc",
 * ...) for the diagnostic.
 */
void checkTrace(const ir::Trace &trace, const char *stage,
                bool scheduled = false);
void checkSchedule(const ir::Trace &before, const ir::Trace &after,
                   const char *stage);
void checkAllocation(const ir::Trace &trace, const ir::Allocation &alloc,
                     const char *stage);

} // namespace darco::analysis

#endif // DARCO_ANALYSIS_VERIFY_HH
