/**
 * @file
 * Static guest-program CFG analyzer.
 *
 * Builds, from the program bytes alone (no execution), the classical
 * static view of a GX86 workload:
 *
 *  - the decoded instruction stream (linear sweep — generated
 *    workloads are fully decodable, Program::countStaticInsts already
 *    relies on this),
 *  - basic blocks (leaders: entry, direct branch targets, and every
 *    instruction following a control transfer),
 *  - the static instruction mix,
 *  - immediate dominators (iterative Cooper–Harvey–Kennedy over the
 *    statically known edges; indirect branches contribute no edges,
 *    call fallthrough counts as an edge — i.e. calls are assumed to
 *    return),
 *  - natural loops (back edges whose head dominates their tail, plus
 *    the reverse-reachable body).
 *
 * Two exact cross-checks tie this static view to a run's dynamics
 * (profile/guest_branch.hh, collected from the authoritative
 * emulator):
 *
 *  1. crossCheckBranchSites — every dynamically observed branch PC
 *     must decode, at exactly that address, to a branch instruction
 *     of the same kind, and direct branches must only ever have been
 *     observed landing on their static target.
 *
 *  2. crossCheckFlowConservation — per-block Kirchhoff's law: for
 *     every basic block, dynamic entries must equal dynamic exits,
 *     except for exactly one extra entry into the block containing
 *     the final EIP (where execution stopped). Entries are summed
 *     from the measured branch edges (taken counts per landing
 *     target, not-taken counts to the fallthrough) plus the
 *     fallthrough chain; exits of a branch-terminated block are the
 *     site's execution count. The check is exact — any divergence
 *     between the static CFG and the measured counts is a finding.
 *
 * Like the IR verifier (verify.hh), all entry points are pure
 * observers returning Findings; nothing here mutates the program or
 * charges the cost model.
 */

#ifndef DARCO_ANALYSIS_CFG_HH
#define DARCO_ANALYSIS_CFG_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/verify.hh"
#include "guest/assembler.hh"
#include "profile/guest_branch.hh"

namespace darco::analysis {

/** Static instruction mix. Categories overlap (a PUSH is both a
 *  store and a stack op); `total` counts each instruction once. */
struct InstMix
{
    uint32_t total = 0;
    uint32_t codeBytes = 0;
    uint32_t moves = 0;           ///< MOV / MOVB / LEA
    uint32_t alu = 0;             ///< integer ALU (incl. shifts, mul/div)
    uint32_t loads = 0;           ///< instructions that read memory
    uint32_t stores = 0;          ///< instructions that write memory
    uint32_t stack = 0;           ///< PUSH / POP / CALL* / RET
    uint32_t branches = 0;        ///< any control transfer
    uint32_t condBranches = 0;
    uint32_t indirectBranches = 0;
    uint32_t calls = 0;
    uint32_t returns = 0;
    uint32_t fpOps = 0;
    uint32_t nops = 0;
};

/** One basic block of the static CFG. */
struct BasicBlock
{
    uint32_t start = 0;          ///< leader address
    uint32_t end = 0;            ///< first address past the block
    uint32_t numInsts = 0;

    // ----- terminator ---------------------------------------------------
    bool endsInBranch = false;   ///< last instruction is a control transfer
    uint32_t branchPc = 0;       ///< its address (valid iff endsInBranch)
    bool isCond = false;
    bool isIndirect = false;     ///< JMPI / CALLI / RET terminator
    bool isCall = false;
    bool isRet = false;
    bool isHalt = false;         ///< last instruction is HALT

    // ----- statically known successor edges -----------------------------
    bool hasTarget = false;      ///< direct branch target known
    uint32_t target = 0;
    /** Control can continue at `end`: plain leader split, not-taken
     *  conditional, or call return site (the latter is a dominator
     *  edge only — dynamically, return-site flow arrives via the
     *  measured RET edges). */
    bool hasFallthrough = false;
};

/** A natural loop: back edge(s) into `header`, body by block index. */
struct NaturalLoop
{
    size_t header = 0;             ///< block index of the loop header
    std::vector<size_t> body;      ///< ascending block indices, incl. header
    std::vector<size_t> latches;   ///< blocks with a back edge to header
};

/** Index meaning "no immediate dominator known" (entry / unreachable). */
constexpr size_t kNoIdom = static_cast<size_t>(-1);

/** The static CFG of one guest program. */
struct Cfg
{
    uint32_t entry = 0;            ///< program entry EIP
    uint32_t codeBase = 0;
    uint32_t codeEnd = 0;          ///< first address past the image

    /** Linear-sweep decode: every instruction, keyed by address. */
    std::map<uint32_t, guest::Inst> insts;

    /** Blocks in ascending address order (they tile [codeBase,codeEnd)). */
    std::vector<BasicBlock> blocks;

    /** Leader address -> index into blocks. */
    std::map<uint32_t, size_t> blockAt;

    /** Per-block immediate dominator (block index); kNoIdom for the
     *  entry block and for blocks unreachable over static edges.
     *  idom[entryIndex] == entryIndex by convention. */
    std::vector<size_t> idom;

    std::vector<NaturalLoop> loops;

    InstMix mix;

    /** Index of the block whose leader is `entry`. */
    size_t entryIndex = 0;

    /** Index of the block containing @p addr; fatal if out of range. */
    size_t blockIndexOf(uint32_t addr) const;

    /** True iff @p a dominates @p b over the static edges (both must
     *  be reachable; a block dominates itself). */
    bool dominates(size_t a, size_t b) const;
};

/**
 * Decode @p program and build its CFG, dominator tree, and loops.
 * Classified fatal (BadWorkload) on an undecodable image.
 */
Cfg buildCfg(const guest::Program &program);

/**
 * Structural self-check of a built (possibly tampered) CFG: blocks
 * tile the image on instruction boundaries, every static direct
 * branch target is a block leader ("orphaned branch target"
 * otherwise), successor flags agree with the terminator instruction,
 * and the dominator tree satisfies the defining edge property (for
 * every reachable edge u->v, idom(v) dominates u). Used by the
 * mutation tests; returns findings instead of throwing.
 */
Findings verifyCfg(const Cfg &cfg);

/**
 * Cross-check 1: every dynamically observed branch site against the
 * static CFG (see file header). Exact — returns a finding per
 * divergent site.
 */
Findings crossCheckBranchSites(const Cfg &cfg,
                               const profile::GuestBranchProfile &prof);

/**
 * Cross-check 2: per-block flow conservation (Kirchhoff) of the
 * measured branch counts over the static CFG. @p finalEip is the
 * guest EIP where the run stopped (System::guestState().eip): the
 * block containing it is allowed exactly one unmatched entry.
 */
Findings crossCheckFlowConservation(const Cfg &cfg,
                                    const profile::GuestBranchProfile &prof,
                                    uint32_t finalEip);

} // namespace darco::analysis

#endif // DARCO_ANALYSIS_CFG_HH
