#include "analysis/cfg.hh"

#include <algorithm>

#include "common/logging.hh"

namespace darco::analysis {

namespace {

using guest::Form;
using guest::Inst;
using guest::Op;
using guest::OpInfo;
using guest::opInfo;

/** Memory-traffic classification, mirroring the emulator's
 *  (guest/emulator.cc) so static and dynamic mixes are comparable. */
bool
readsMem(const Inst &inst)
{
    if (inst.form == Form::RM && inst.op != Op::LEA)
        return true;
    if (inst.form == Form::M)
        return true;
    return inst.op == Op::POP || inst.op == Op::RET;
}

bool
writesMem(const Inst &inst)
{
    if (inst.form == Form::MR)
        return true;
    return inst.op == Op::PUSH || inst.op == Op::CALL ||
           inst.op == Op::CALLI;
}

bool
isIntAlu(Op op)
{
    return op >= Op::ADD && op <= Op::NOT;
}

bool
isStackOp(Op op)
{
    return op == Op::PUSH || op == Op::POP || op == Op::CALL ||
           op == Op::CALLI || op == Op::RET;
}

void
accumulateMix(InstMix &mix, const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    ++mix.total;
    mix.codeBytes += inst.length;
    if (inst.op == Op::MOV || inst.op == Op::MOVB || inst.op == Op::LEA)
        ++mix.moves;
    if (isIntAlu(inst.op))
        ++mix.alu;
    if (readsMem(inst))
        ++mix.loads;
    if (writesMem(inst))
        ++mix.stores;
    if (isStackOp(inst.op))
        ++mix.stack;
    if (info.isBranch) {
        ++mix.branches;
        if (info.isCondBranch)
            ++mix.condBranches;
        if (info.isIndirect)
            ++mix.indirectBranches;
        if (info.isCall)
            ++mix.calls;
        if (info.isRet)
            ++mix.returns;
    }
    if (info.isFp)
        ++mix.fpOps;
    if (inst.op == Op::NOP)
        ++mix.nops;
}

/** Static target of a direct branch (JMP/JCC/CALL: next EIP + imm). */
uint32_t
directTarget(uint32_t pc, const Inst &inst)
{
    return pc + inst.length + static_cast<uint32_t>(inst.imm);
}

/** Statically known successor block indices of block @p i. */
void
staticSuccessors(const Cfg &cfg, size_t i, std::vector<size_t> &out)
{
    out.clear();
    const BasicBlock &b = cfg.blocks[i];
    if (b.hasTarget) {
        auto it = cfg.blockAt.find(b.target);
        if (it != cfg.blockAt.end())
            out.push_back(it->second);
    }
    if (b.hasFallthrough) {
        auto it = cfg.blockAt.find(b.end);
        if (it != cfg.blockAt.end())
            out.push_back(it->second);
    }
}

/** Bounded dominance query usable on a *tampered* tree: walks the
 *  idom chain at most |blocks| steps, so a cycle introduced by a
 *  mutation terminates as "does not dominate". */
bool
boundedDominates(const Cfg &cfg, size_t a, size_t b)
{
    for (size_t steps = 0; steps <= cfg.blocks.size(); ++steps) {
        if (b == a)
            return true;
        if (b == cfg.entryIndex || b >= cfg.idom.size() ||
            cfg.idom[b] == kNoIdom)
            return false;
        b = cfg.idom[b];
    }
    return false;
}

} // namespace

size_t
Cfg::blockIndexOf(uint32_t addr) const
{
    auto it = blockAt.upper_bound(addr);
    if (it == blockAt.begin())
        fatal_kind(ErrKind::Internal,
                   "cfg: address 0x%08x below the code image", addr);
    --it;
    const size_t idx = it->second;
    if (addr >= blocks[idx].end)
        fatal_kind(ErrKind::Internal,
                   "cfg: address 0x%08x outside the code image", addr);
    return idx;
}

bool
Cfg::dominates(size_t a, size_t b) const
{
    return boundedDominates(*this, a, b);
}

Cfg
buildCfg(const guest::Program &program)
{
    Cfg cfg;
    cfg.entry = program.entry;
    cfg.codeBase = program.codeBase;
    cfg.codeEnd = program.codeBase +
                  static_cast<uint32_t>(program.code.size());

    // ----- linear-sweep decode ---------------------------------------
    size_t off = 0;
    uint32_t addr = cfg.codeBase;
    while (off < program.code.size()) {
        Inst inst;
        const guest::DecodeStatus st =
            guest::decode(program.code.data() + off,
                          program.code.size() - off, inst);
        if (st != guest::DecodeStatus::Ok)
            fatal_kind(ErrKind::BadWorkload,
                       "cfg: undecodable guest instruction at 0x%08x "
                       "(status %d)", addr, static_cast<int>(st));
        cfg.insts.emplace(addr, inst);
        accumulateMix(cfg.mix, inst);
        off += inst.length;
        addr += inst.length;
    }
    if (!cfg.insts.count(cfg.entry))
        fatal_kind(ErrKind::BadWorkload,
                   "cfg: program entry 0x%08x is not an instruction "
                   "boundary", cfg.entry);

    // ----- leaders ----------------------------------------------------
    // Entry, every direct branch target that lands on an instruction
    // boundary, and every instruction following a control transfer
    // (fallthroughs, call return sites, and the code after an
    // unconditional transfer or HALT — reachable or not, it must not
    // be glued onto a terminated block).
    std::vector<uint32_t> leaders;
    leaders.push_back(cfg.entry);
    for (const auto &[pc, inst] : cfg.insts) {
        const OpInfo &info = opInfo(inst.op);
        if (!info.isBranch && inst.op != Op::HALT)
            continue;
        const uint32_t next = pc + inst.length;
        if (next < cfg.codeEnd)
            leaders.push_back(next);
        if (info.isBranch && !info.isIndirect) {
            const uint32_t target = directTarget(pc, inst);
            if (cfg.insts.count(target))
                leaders.push_back(target);
        }
    }
    std::sort(leaders.begin(), leaders.end());
    leaders.erase(std::unique(leaders.begin(), leaders.end()),
                  leaders.end());

    // ----- blocks -----------------------------------------------------
    auto leaderIt = leaders.begin();
    for (auto it = cfg.insts.begin(); it != cfg.insts.end();) {
        const uint32_t start = it->first;
        while (leaderIt != leaders.end() && *leaderIt <= start)
            ++leaderIt;
        const uint32_t limit =
            leaderIt != leaders.end() ? *leaderIt : cfg.codeEnd;

        BasicBlock b;
        b.start = start;
        const Inst *last = nullptr;
        uint32_t lastPc = start;
        while (it != cfg.insts.end() && it->first < limit) {
            lastPc = it->first;
            last = &it->second;
            ++b.numInsts;
            ++it;
        }
        b.end = lastPc + last->length;

        const OpInfo &info = opInfo(last->op);
        if (info.isBranch) {
            b.endsInBranch = true;
            b.branchPc = lastPc;
            b.isCond = info.isCondBranch;
            b.isIndirect = info.isIndirect;
            b.isCall = info.isCall;
            b.isRet = info.isRet;
            if (!info.isIndirect) {
                b.hasTarget = true;
                b.target = directTarget(lastPc, *last);
            }
            // JCC not-taken, and the call return sites (static edge
            // for the dominator computation; dynamic return flow is
            // measured at the RET sites instead).
            b.hasFallthrough = (info.isCondBranch || info.isCall) &&
                               b.end < cfg.codeEnd;
        } else if (last->op == Op::HALT) {
            b.isHalt = true;
        } else {
            b.hasFallthrough = b.end < cfg.codeEnd;
        }

        cfg.blockAt.emplace(b.start, cfg.blocks.size());
        cfg.blocks.push_back(b);
    }
    cfg.entryIndex = cfg.blockAt.at(cfg.entry);

    // ----- successor / predecessor lists ------------------------------
    const size_t n = cfg.blocks.size();
    std::vector<std::vector<size_t>> succ(n), pred(n);
    {
        std::vector<size_t> tmp;
        for (size_t i = 0; i < n; ++i) {
            staticSuccessors(cfg, i, tmp);
            for (size_t s : tmp) {
                succ[i].push_back(s);
                pred[s].push_back(i);
            }
        }
    }

    // ----- reverse postorder from the entry ---------------------------
    std::vector<size_t> rpoNum(n, kNoIdom);
    std::vector<size_t> rpo;
    {
        std::vector<uint8_t> seen(n, 0);
        std::vector<size_t> post;
        // Iterative DFS: (node, next successor index to visit).
        std::vector<std::pair<size_t, size_t>> stack;
        seen[cfg.entryIndex] = 1;
        stack.emplace_back(cfg.entryIndex, 0);
        while (!stack.empty()) {
            const size_t u = stack.back().first;
            const size_t i = stack.back().second;
            if (i < succ[u].size()) {
                ++stack.back().second;
                const size_t v = succ[u][i];
                if (!seen[v]) {
                    seen[v] = 1;
                    stack.emplace_back(v, 0);
                }
            } else {
                post.push_back(u);
                stack.pop_back();
            }
        }
        rpo.assign(post.rbegin(), post.rend());
        for (size_t i = 0; i < rpo.size(); ++i)
            rpoNum[rpo[i]] = i;
    }

    // ----- immediate dominators (Cooper–Harvey–Kennedy) ---------------
    cfg.idom.assign(n, kNoIdom);
    cfg.idom[cfg.entryIndex] = cfg.entryIndex;
    auto intersect = [&](size_t a, size_t b) {
        while (a != b) {
            while (rpoNum[a] > rpoNum[b])
                a = cfg.idom[a];
            while (rpoNum[b] > rpoNum[a])
                b = cfg.idom[b];
        }
        return a;
    };
    for (bool changed = true; changed;) {
        changed = false;
        for (size_t u : rpo) {
            if (u == cfg.entryIndex)
                continue;
            size_t nid = kNoIdom;
            for (size_t p : pred[u]) {
                if (cfg.idom[p] == kNoIdom)
                    continue; // unreachable or not yet processed
                nid = nid == kNoIdom ? p : intersect(p, nid);
            }
            if (nid != kNoIdom && nid != cfg.idom[u]) {
                cfg.idom[u] = nid;
                changed = true;
            }
        }
    }

    // ----- natural loops ----------------------------------------------
    // Back edge: u -> v with v dominating u. Body: v plus everything
    // that reaches a latch backwards without passing through v.
    std::map<size_t, std::vector<size_t>> latchesOf;
    for (size_t u : rpo)
        for (size_t v : succ[u])
            if (cfg.dominates(v, u))
                latchesOf[v].push_back(u);
    for (auto &[header, latches] : latchesOf) {
        std::sort(latches.begin(), latches.end());
        latches.erase(std::unique(latches.begin(), latches.end()),
                      latches.end());
        std::vector<uint8_t> inBody(n, 0);
        inBody[header] = 1;
        std::vector<size_t> work;
        for (size_t l : latches) {
            if (!inBody[l]) {
                inBody[l] = 1;
                work.push_back(l);
            }
        }
        while (!work.empty()) {
            const size_t w = work.back();
            work.pop_back();
            for (size_t p : pred[w]) {
                if (!inBody[p]) {
                    inBody[p] = 1;
                    work.push_back(p);
                }
            }
        }
        NaturalLoop loop;
        loop.header = header;
        loop.latches = latches;
        for (size_t i = 0; i < n; ++i)
            if (inBody[i])
                loop.body.push_back(i);
        cfg.loops.push_back(std::move(loop));
    }

    return cfg;
}

Findings
verifyCfg(const Cfg &cfg)
{
    Findings out;
    const size_t n = cfg.blocks.size();
    if (n == 0) {
        out.push_back("cfg has no blocks");
        return out;
    }

    // ----- blocks tile the image on instruction boundaries ------------
    uint32_t expect = cfg.insts.empty() ? cfg.codeEnd
                                        : cfg.insts.begin()->first;
    for (size_t i = 0; i < n; ++i) {
        const BasicBlock &b = cfg.blocks[i];
        if (b.start != expect)
            out.push_back(strprintf("block %zu starts at 0x%08x, "
                                    "expected 0x%08x (blocks do not "
                                    "tile the image)", i, b.start,
                                    expect));
        auto at = cfg.blockAt.find(b.start);
        if (at == cfg.blockAt.end() || at->second != i)
            out.push_back(strprintf("block %zu (0x%08x) missing from "
                                    "the leader index", i, b.start));
        expect = b.end;
    }
    if (expect != cfg.codeEnd)
        out.push_back(strprintf("blocks end at 0x%08x, code image ends "
                                "at 0x%08x", expect, cfg.codeEnd));

    // ----- per-block structure ----------------------------------------
    for (size_t i = 0; i < n; ++i) {
        const BasicBlock &b = cfg.blocks[i];
        uint32_t pc = b.start;
        const Inst *last = nullptr;
        uint32_t lastPc = b.start;
        uint32_t count = 0;
        while (pc < b.end) {
            auto it = cfg.insts.find(pc);
            if (it == cfg.insts.end()) {
                out.push_back(strprintf("block 0x%08x: no instruction "
                                        "decodes at 0x%08x", b.start,
                                        pc));
                break;
            }
            if (pc != b.start && cfg.blockAt.count(pc))
                out.push_back(strprintf("leader 0x%08x is buried "
                                        "inside block 0x%08x", pc,
                                        b.start));
            lastPc = pc;
            last = &it->second;
            pc += it->second.length;
            ++count;
        }
        if (!last)
            continue;
        if (count != b.numInsts)
            out.push_back(strprintf("block 0x%08x: numInsts %u, "
                                    "decoded %u", b.start, b.numInsts,
                                    count));

        const OpInfo &info = opInfo(last->op);
        if (b.endsInBranch != info.isBranch ||
            (b.endsInBranch && b.branchPc != lastPc)) {
            out.push_back(strprintf("block 0x%08x: terminator flags "
                                    "disagree with last instruction "
                                    "%s at 0x%08x", b.start,
                                    guest::opName(last->op), lastPc));
            continue;
        }
        if (b.isHalt != (last->op == Op::HALT))
            out.push_back(strprintf("block 0x%08x: HALT flag disagrees "
                                    "with terminator", b.start));
        if (info.isBranch) {
            if (b.isCond != info.isCondBranch ||
                b.isIndirect != info.isIndirect ||
                b.isCall != info.isCall || b.isRet != info.isRet)
                out.push_back(strprintf("block 0x%08x: branch kind "
                                        "flags disagree with %s",
                                        b.start,
                                        guest::opName(last->op)));
            if (b.hasTarget != !info.isIndirect)
                out.push_back(strprintf("block 0x%08x: direct branch "
                                        "target presence disagrees "
                                        "with %s", b.start,
                                        guest::opName(last->op)));
            else if (b.hasTarget &&
                     b.target != directTarget(lastPc, *last))
                out.push_back(strprintf("block 0x%08x: recorded target "
                                        "0x%08x, encoded target 0x%08x",
                                        b.start, b.target,
                                        directTarget(lastPc, *last)));
            const bool wantFall = (info.isCondBranch || info.isCall) &&
                                  b.end < cfg.codeEnd;
            if (b.hasFallthrough != wantFall)
                out.push_back(strprintf("block 0x%08x: fallthrough "
                                        "flag disagrees with %s",
                                        b.start,
                                        guest::opName(last->op)));
        }

        // Orphaned branch target: a direct branch must land on a
        // block leader (anything else points outside the image, into
        // the middle of an instruction, or into the middle of a
        // block).
        if (b.hasTarget && !cfg.blockAt.count(b.target))
            out.push_back(strprintf("orphaned branch target: block "
                                    "0x%08x branches to 0x%08x, which "
                                    "is not a block leader", b.start,
                                    b.target));
    }

    // ----- dominator tree ---------------------------------------------
    if (cfg.idom.size() != n) {
        out.push_back(strprintf("idom table has %zu entries for %zu "
                                "blocks", cfg.idom.size(), n));
        return out;
    }
    if (cfg.idom[cfg.entryIndex] != cfg.entryIndex)
        out.push_back("entry block's idom is not itself");
    std::vector<size_t> succs;
    for (size_t u = 0; u < n; ++u) {
        if (cfg.idom[u] == kNoIdom)
            continue; // unreachable over static edges
        if (u != cfg.entryIndex && cfg.idom[u] == u)
            out.push_back(strprintf("block 0x%08x is its own idom",
                                    cfg.blocks[u].start));
        staticSuccessors(cfg, u, succs);
        for (size_t v : succs) {
            if (v == cfg.entryIndex)
                continue;
            if (cfg.idom[v] == kNoIdom) {
                out.push_back(strprintf("broken dominator edge: "
                                        "0x%08x -> 0x%08x but the "
                                        "successor has no idom",
                                        cfg.blocks[u].start,
                                        cfg.blocks[v].start));
                continue;
            }
            // Every dominator of v other than v itself dominates
            // every predecessor of v; in particular idom(v) must.
            if (!boundedDominates(cfg, cfg.idom[v], u))
                out.push_back(strprintf("broken dominator edge: "
                                        "0x%08x -> 0x%08x but "
                                        "idom(0x%08x) = 0x%08x does "
                                        "not dominate the predecessor",
                                        cfg.blocks[u].start,
                                        cfg.blocks[v].start,
                                        cfg.blocks[v].start,
                                        cfg.blocks[cfg.idom[v]].start));
        }
    }

    // ----- loops -------------------------------------------------------
    for (const NaturalLoop &loop : cfg.loops) {
        if (loop.header >= n) {
            out.push_back("loop header out of range");
            continue;
        }
        if (std::find(loop.body.begin(), loop.body.end(), loop.header)
                == loop.body.end())
            out.push_back(strprintf("loop header 0x%08x not in its own "
                                    "body",
                                    cfg.blocks[loop.header].start));
        for (size_t l : loop.latches) {
            if (l >= n || !boundedDominates(cfg, loop.header, l))
                out.push_back(strprintf("loop latch does not form a "
                                        "back edge to header 0x%08x",
                                        cfg.blocks[loop.header].start));
        }
    }
    return out;
}

Findings
crossCheckBranchSites(const Cfg &cfg,
                      const profile::GuestBranchProfile &prof)
{
    Findings out;
    uint64_t totalExecs = 0;
    uint64_t totalCondExecs = 0;
    for (const auto &[pc, site] : prof.sites) {
        totalExecs += site.execs();
        auto it = cfg.insts.find(pc);
        if (it == cfg.insts.end()) {
            out.push_back(strprintf("dynamic branch at 0x%08x does not "
                                    "decode at an instruction boundary "
                                    "of the static CFG", pc));
            continue;
        }
        const Inst &inst = it->second;
        const OpInfo &info = opInfo(inst.op);
        if (!info.isBranch) {
            out.push_back(strprintf("dynamic branch at 0x%08x is %s in "
                                    "the static CFG, not a branch", pc,
                                    guest::opName(inst.op)));
            continue;
        }
        if (info.isCondBranch)
            totalCondExecs += site.execs();
        if (site.isCond != info.isCondBranch ||
            site.isIndirect != info.isIndirect ||
            site.isCall != info.isCall || site.isRet != info.isRet) {
            out.push_back(strprintf("dynamic branch at 0x%08x: kind "
                                    "flags disagree with static %s",
                                    pc, guest::opName(inst.op)));
            continue;
        }
        if (!info.isCondBranch && site.notTaken != 0)
            out.push_back(strprintf("unconditional branch at 0x%08x "
                                    "observed not-taken %llu times", pc,
                                    static_cast<unsigned long long>(
                                        site.notTaken)));
        if (!info.isIndirect) {
            const uint32_t target = directTarget(pc, inst);
            for (const auto &[t, count] : site.targets) {
                if (t != target)
                    out.push_back(strprintf(
                        "direct branch at 0x%08x landed on 0x%08x "
                        "(%llu times); static target is 0x%08x", pc, t,
                        static_cast<unsigned long long>(count),
                        target));
            }
        }
        if (site.notTaken != 0 && pc + inst.length >= cfg.codeEnd)
            out.push_back(strprintf("branch at 0x%08x fell through "
                                    "past the end of the code image",
                                    pc));
    }
    if (totalExecs != prof.dynBranches)
        out.push_back(strprintf("profile self-check: per-site "
                                "executions sum to %llu but "
                                "dynBranches is %llu",
                                static_cast<unsigned long long>(
                                    totalExecs),
                                static_cast<unsigned long long>(
                                    prof.dynBranches)));
    if (totalCondExecs != prof.dynCondBranches)
        out.push_back(strprintf("profile self-check: conditional "
                                "executions sum to %llu but "
                                "dynCondBranches is %llu",
                                static_cast<unsigned long long>(
                                    totalCondExecs),
                                static_cast<unsigned long long>(
                                    prof.dynCondBranches)));
    return out;
}

Findings
crossCheckFlowConservation(const Cfg &cfg,
                           const profile::GuestBranchProfile &prof,
                           uint32_t finalEip)
{
    Findings out;
    const size_t n = cfg.blocks.size();

    // ----- measured in-edges ------------------------------------------
    // Taken executions land on their recorded targets; not-taken
    // conditionals land on the branch's fallthrough.
    std::vector<uint64_t> inflow(n, 0);
    for (const auto &[pc, site] : prof.sites) {
        for (const auto &[t, count] : site.targets) {
            auto bi = cfg.blockAt.find(t);
            if (bi == cfg.blockAt.end()) {
                out.push_back(strprintf("dynamic branch at 0x%08x "
                                        "landed %llu times on 0x%08x, "
                                        "which is not a block leader",
                                        pc,
                                        static_cast<unsigned long long>(
                                            count), t));
                continue;
            }
            inflow[bi->second] += count;
        }
        if (site.notTaken != 0) {
            auto ii = cfg.insts.find(pc);
            if (ii == cfg.insts.end())
                continue; // already reported by crossCheckBranchSites
            const uint32_t ft = pc + ii->second.length;
            auto bi = cfg.blockAt.find(ft);
            if (bi == cfg.blockAt.end()) {
                out.push_back(strprintf("fallthrough 0x%08x of branch "
                                        "0x%08x is not a block leader",
                                        ft, pc));
                continue;
            }
            inflow[bi->second] += site.notTaken;
        }
    }

    // ----- where did the run stop? ------------------------------------
    if (finalEip < cfg.codeBase || finalEip >= cfg.codeEnd) {
        out.push_back(strprintf("final EIP 0x%08x is outside the code "
                                "image", finalEip));
        return out;
    }
    auto stopIt = cfg.blockAt.upper_bound(finalEip);
    const size_t stopBlock = std::prev(stopIt)->second;

    // ----- Kirchhoff, one ascending pass ------------------------------
    // Fallthrough chains strictly increase in address, so the carry
    // from a non-branch block is available when its successor is
    // visited. Exactly one block — the one execution stopped in — is
    // allowed one entry with no matching exit.
    uint64_t fallIn = 0;
    for (size_t i = 0; i < n; ++i) {
        const BasicBlock &b = cfg.blocks[i];
        const uint64_t entries =
            (i == cfg.entryIndex ? 1 : 0) + inflow[i] + fallIn;
        const uint64_t stopHere = i == stopBlock ? 1 : 0;
        fallIn = 0;
        if (b.endsInBranch) {
            auto si = prof.sites.find(b.branchPc);
            const uint64_t execs =
                si != prof.sites.end() ? si->second.execs() : 0;
            if (entries != execs + stopHere)
                out.push_back(strprintf(
                    "flow conservation violated at block 0x%08x: %llu "
                    "entries vs %llu branch executions at 0x%08x "
                    "(+%llu final stop)", b.start,
                    static_cast<unsigned long long>(entries),
                    static_cast<unsigned long long>(execs), b.branchPc,
                    static_cast<unsigned long long>(stopHere)));
        } else if (b.isHalt) {
            if (entries != stopHere)
                out.push_back(strprintf(
                    "flow conservation violated at HALT block 0x%08x: "
                    "%llu entries (+%llu final stop, HALT never flows "
                    "out)", b.start,
                    static_cast<unsigned long long>(entries),
                    static_cast<unsigned long long>(stopHere)));
        } else if (!b.hasFallthrough) {
            if (entries != stopHere)
                out.push_back(strprintf(
                    "control fell off the code image at 0x%08x %llu "
                    "times", b.end,
                    static_cast<unsigned long long>(entries)));
        } else {
            if (entries < stopHere) {
                out.push_back(strprintf(
                    "flow conservation violated at block 0x%08x: "
                    "stopped in a block that was never entered",
                    b.start));
            } else {
                fallIn = entries - stopHere;
            }
        }
    }
    return out;
}

} // namespace darco::analysis
