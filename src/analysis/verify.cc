#include "analysis/verify.hh"

#include <algorithm>
#include <cstdint>

#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::analysis {

namespace {

using ir::IrInst;
using ir::IrOp;
using ir::IrOpInfo;
using ir::RegClass;
using ir::Trace;
using ir::Vreg;

/** Field-wise instruction equality (IrInst has no operator==). */
bool
sameInst(const IrInst &a, const IrInst &b)
{
    return a.op == b.op && a.cc == b.cc && a.dst == b.dst &&
           a.src1 == b.src1 && a.src2 == b.src2 &&
           a.useImm == b.useImm && a.size == b.size &&
           a.exitId == b.exitId && a.guestIndex == b.guestIndex &&
           a.imm == b.imm;
}

/** Does @p inst read vreg operands at all (src1 rule from ir::validate:
 *  every op except LDI and JEXIT has a src1). */
bool
hasSrc1(const IrInst &inst)
{
    return inst.op != IrOp::LDI && inst.op != IrOp::JEXIT;
}

bool
hasSrc2(const IrInst &inst)
{
    return !inst.useImm && inst.src2 != ir::kNoVreg;
}

void
checkVregTable(const Trace &trace, Findings &out)
{
    if (trace.vregClass.size() < ir::kNumBoundVregs) {
        out.push_back(strprintf("vreg class table has %zu entries, "
                                "fewer than the %u bound vregs",
                                trace.vregClass.size(),
                                ir::kNumBoundVregs));
        return;
    }
    for (unsigned v = 0; v < 12; ++v) {
        if (trace.vregClass[v] != RegClass::Int)
            out.push_back(strprintf("bound vreg v%u (GPR/flag) has "
                                    "non-int class", v));
    }
    for (unsigned v = 12; v < ir::kNumBoundVregs; ++v) {
        if (trace.vregClass[v] != RegClass::Fp)
            out.push_back(strprintf("bound vreg v%u (guest FP) has "
                                    "non-fp class", v));
    }
}

/** Operand-kind + width checks for one instruction. */
void
checkOperands(const Trace &trace, size_t i, Findings &out)
{
    const IrInst &inst = trace.insts[i];
    if (inst.op >= IrOp::NumOps) {
        out.push_back(strprintf("inst %zu: invalid opcode %d", i,
                                static_cast<int>(inst.op)));
        return;
    }
    const IrOpInfo &info = ir::irOpInfo(inst.op);

    auto check_reg = [&](Vreg v, bool fp, const char *what) {
        if (v == ir::kNoVreg) {
            out.push_back(strprintf("inst %zu (%s): missing %s", i,
                                    ir::irOpName(inst.op), what));
            return;
        }
        if (v >= trace.numVregs()) {
            out.push_back(strprintf("inst %zu (%s): %s vreg v%u out of "
                                    "range (%u vregs)", i,
                                    ir::irOpName(inst.op), what, v,
                                    trace.numVregs()));
            return;
        }
        const RegClass want = fp ? RegClass::Fp : RegClass::Int;
        if (trace.vregClass[v] != want) {
            out.push_back(strprintf("inst %zu (%s): %s vreg v%u has the "
                                    "wrong register class (operand kind "
                                    "mismatch)", i, ir::irOpName(inst.op),
                                    what, v));
        }
    };

    if (hasSrc1(inst))
        check_reg(inst.src1, info.fpSrc1, "src1");
    if (hasSrc2(inst))
        check_reg(inst.src2, info.fpSrc2, "src2");

    if (info.hasDst) {
        check_reg(inst.dst, info.fpDst, "dst");
    } else if (inst.dst != ir::kNoVreg) {
        out.push_back(strprintf("inst %zu (%s): op has no destination "
                                "but dst v%u is set", i,
                                ir::irOpName(inst.op), inst.dst));
    }

    // Width consistency: the translator only ever emits 1- or 4-byte
    // integer accesses (MOVB vs everything else) and 8-byte FP
    // accesses; no pass may change an access width.
    if (inst.op == IrOp::LD || inst.op == IrOp::ST) {
        if (inst.size != 1 && inst.size != 4) {
            out.push_back(strprintf("inst %zu (%s): width mismatch — "
                                    "integer memory access of %u bytes "
                                    "(must be 1 or 4)", i,
                                    ir::irOpName(inst.op), inst.size));
        }
    } else if (inst.op == IrOp::FLD || inst.op == IrOp::FST) {
        if (inst.size != 8) {
            out.push_back(strprintf("inst %zu (%s): width mismatch — FP "
                                    "memory access of %u bytes (must "
                                    "be 8)", i, ir::irOpName(inst.op),
                                    inst.size));
        }
    }

    // Memory ops need a store value: ST reads src2, FST reads src2.
    if ((inst.op == IrOp::ST || inst.op == IrOp::FST) &&
        inst.src2 == ir::kNoVreg) {
        out.push_back(strprintf("inst %zu (%s): store without a value "
                                "operand", i, ir::irOpName(inst.op)));
    }

    if (inst.op == IrOp::BR &&
        static_cast<uint8_t>(inst.cc) >
            static_cast<uint8_t>(ir::BrCc::GEU)) {
        out.push_back(strprintf("inst %zu: BR with invalid condition %d",
                                i, static_cast<int>(inst.cc)));
    }

    // Guest-index provenance: every instruction must map into the
    // trace's guest EIP table.
    if (inst.guestIndex >= trace.numGuestInsts()) {
        out.push_back(strprintf("inst %zu (%s): guest index %u outside "
                                "the trace's %u guest instructions", i,
                                ir::irOpName(inst.op), inst.guestIndex,
                                trace.numGuestInsts()));
    }
}

/** Exit-table and exit-instruction consistency. */
void
checkExits(const Trace &trace, Findings &out)
{
    for (size_t e = 0; e < trace.exits.size(); ++e) {
        const ir::IrExit &exit = trace.exits[e];
        if (exit.guestInstsRetired > trace.numGuestInsts()) {
            out.push_back(strprintf("exit %zu: retires %u guest insts "
                                    "but the trace only covers %u", e,
                                    exit.guestInstsRetired,
                                    trace.numGuestInsts()));
        }
        if (exit.indirect && exit.guestTarget != 0) {
            out.push_back(strprintf("exit %zu: indirect exit with a "
                                    "static guest target 0x%08x", e,
                                    exit.guestTarget));
        }
    }

    bool terminated = false;
    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        if (terminated) {
            out.push_back(strprintf("inst %zu (%s): code after the "
                                    "terminal exit (resurrected dead "
                                    "code)", i, ir::irOpName(inst.op)));
            continue;
        }
        if (!inst.isExit())
            continue;
        if (inst.exitId >= trace.exits.size()) {
            out.push_back(strprintf("inst %zu: exit id %u out of range "
                                    "(%zu exits)", i, inst.exitId,
                                    trace.exits.size()));
            continue;
        }
        const ir::IrExit &exit = trace.exits[inst.exitId];
        if ((inst.op == IrOp::JINDIRECT) != exit.indirect) {
            out.push_back(strprintf("inst %zu: %s targets exit %u whose "
                                    "indirect flag is %d", i,
                                    ir::irOpName(inst.op), inst.exitId,
                                    exit.indirect));
        }
        if (inst.op != IrOp::BR)
            terminated = true;
    }
    if (trace.insts.empty()) {
        out.push_back("empty trace");
    } else if (!terminated) {
        out.push_back("trace does not end with an unconditional exit");
    }
}

/**
 * Reaching-definitions dataflow over the linear trace: for each
 * temporary, the position of its (unique) definition. A use whose
 * position precedes (or equals) the definition is use-before-def; a
 * second definition breaks the SSA discipline. Bound vregs are
 * live-in and multiply-assigned by design, so only temporaries are
 * checked.
 */
void
checkReachingDefs(const Trace &trace, Findings &out)
{
    constexpr int64_t kUndefined = -1;
    std::vector<int64_t> def_pos(trace.numVregs(), kUndefined);

    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        if (inst.op >= IrOp::NumOps)
            continue;  // reported by checkOperands
        const IrOpInfo &info = ir::irOpInfo(inst.op);

        auto use = [&](Vreg v, const char *what) {
            if (v == ir::kNoVreg || v >= trace.numVregs() ||
                ir::isBoundVreg(v)) {
                return;
            }
            if (def_pos[v] == kUndefined ||
                def_pos[v] >= static_cast<int64_t>(i)) {
                out.push_back(strprintf("inst %zu (%s): %s temp v%u "
                                        "used before def (no reaching "
                                        "definition)", i,
                                        ir::irOpName(inst.op), what, v));
            }
        };
        if (hasSrc1(inst))
            use(inst.src1, "src1");
        if (hasSrc2(inst))
            use(inst.src2, "src2");

        if (info.hasDst && inst.dst != ir::kNoVreg &&
            inst.dst < trace.numVregs() && !ir::isBoundVreg(inst.dst)) {
            if (def_pos[inst.dst] != kUndefined) {
                out.push_back(strprintf("inst %zu: temp v%u assigned "
                                        "twice (SSA violation)", i,
                                        inst.dst));
            }
            def_pos[inst.dst] = static_cast<int64_t>(i);
        }
    }
}

/**
 * Side-effect ordering: in an unscheduled trace the translator emits
 * guest instructions in path order, and no pass reorders — so the
 * guest indices of memory operations and exits must be non-decreasing,
 * and successive exit instructions must retire non-decreasing guest
 * counts. (After scheduling this is legitimately violated inside
 * segments; verifySchedule() proves those reorders dependence-safe.)
 */
void
checkSideEffectOrder(const Trace &trace, Findings &out)
{
    int64_t last_effect_gi = -1;
    int64_t last_retired = -1;
    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        if (inst.op >= IrOp::NumOps)
            continue;
        const IrOpInfo &info = ir::irOpInfo(inst.op);
        if (info.isLoad || info.isStore || info.isExit) {
            if (static_cast<int64_t>(inst.guestIndex) < last_effect_gi) {
                out.push_back(strprintf(
                    "inst %zu (%s): memory/branch side effect for guest "
                    "inst %u ordered after one for guest inst %lld "
                    "(reordered dependent memory operations)", i,
                    ir::irOpName(inst.op), inst.guestIndex,
                    static_cast<long long>(last_effect_gi)));
            }
            last_effect_gi = std::max(
                last_effect_gi, static_cast<int64_t>(inst.guestIndex));
        }
        if (info.isExit && inst.exitId < trace.exits.size()) {
            const int64_t retired = static_cast<int64_t>(
                trace.exits[inst.exitId].guestInstsRetired);
            if (retired < last_retired) {
                out.push_back(strprintf(
                    "inst %zu: exit retires %lld guest insts after an "
                    "earlier exit already retired %lld", i,
                    static_cast<long long>(retired),
                    static_cast<long long>(last_retired)));
            }
            last_retired = std::max(last_retired, retired);
        }
    }
}

/** Dependence edges of one segment, in original order: every (from,
 *  to) pair with from < to that no legal schedule may invert.
 *  Mirrors the rules the scheduler builds its DAG from — recomputed
 *  here so the check is independent of the scheduler's own code. */
std::vector<std::pair<uint32_t, uint32_t>>
dependenceEdges(const std::vector<IrInst> &insts, size_t first,
                size_t last, uint16_t num_vregs)
{
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    const size_t n = last - first;

    std::vector<int64_t> last_def(num_vregs, -1);
    std::vector<std::vector<uint32_t>> uses_since(num_vregs);
    int64_t last_store = -1;
    std::vector<uint32_t> loads_since_store;

    auto add_edge = [&](int64_t from, size_t to) {
        edges.emplace_back(static_cast<uint32_t>(from),
                           static_cast<uint32_t>(to));
    };

    for (size_t li = 0; li < n; ++li) {
        const IrInst &inst = insts[first + li];
        if (inst.op >= IrOp::NumOps)
            continue;
        const IrOpInfo &info = ir::irOpInfo(inst.op);

        auto use = [&](Vreg v) {
            if (v == ir::kNoVreg || v >= num_vregs)
                return;
            if (last_def[v] >= 0)
                add_edge(last_def[v], li);                      // RAW
            uses_since[v].push_back(static_cast<uint32_t>(li));
        };
        use(inst.src1);
        if (!inst.useImm)
            use(inst.src2);

        if (info.hasDst && inst.dst != ir::kNoVreg &&
            inst.dst < num_vregs) {
            for (uint32_t u : uses_since[inst.dst]) {
                if (u != li)
                    add_edge(u, li);                            // WAR
            }
            if (last_def[inst.dst] >= 0)
                add_edge(last_def[inst.dst], li);               // WAW
            uses_since[inst.dst].clear();
            last_def[inst.dst] = static_cast<int64_t>(li);
        }

        if (info.isLoad) {
            if (last_store >= 0)
                add_edge(last_store, li);        // load after store
            loads_since_store.push_back(static_cast<uint32_t>(li));
        } else if (info.isStore) {
            if (last_store >= 0)
                add_edge(last_store, li);        // store after store
            for (uint32_t l : loads_since_store)
                add_edge(l, li);                 // store after loads
            loads_since_store.clear();
            last_store = static_cast<int64_t>(li);
        }
    }
    return edges;
}

} // namespace

Findings
verifyTrace(const Trace &trace, bool scheduled)
{
    Findings out;
    checkVregTable(trace, out);
    for (size_t i = 0; i < trace.insts.size(); ++i)
        checkOperands(trace, i, out);
    checkExits(trace, out);
    checkReachingDefs(trace, out);
    if (!scheduled)
        checkSideEffectOrder(trace, out);
    return out;
}

Findings
verifySchedule(const Trace &before, const Trace &after)
{
    Findings out;

    if (before.insts.size() != after.insts.size()) {
        out.push_back(strprintf("schedule changed instruction count "
                                "(%zu -> %zu)", before.insts.size(),
                                after.insts.size()));
        return out;
    }
    if (before.exits.size() != after.exits.size() ||
        before.guestEips != after.guestEips ||
        before.guestEntry != after.guestEntry) {
        out.push_back("schedule changed the trace's exits or guest "
                      "EIP table");
        return out;
    }

    // Walk segment by segment; exit instructions delimit segments and
    // must be byte-identical in place.
    size_t seg_start = 0;
    for (size_t i = 0; i <= before.insts.size(); ++i) {
        const bool at_end = i == before.insts.size();
        if (!at_end && !before.insts[i].isExit()) {
            if (after.insts[i].isExit()) {
                out.push_back(strprintf("inst %zu: schedule moved an "
                                        "exit across a segment "
                                        "boundary", i));
                return out;
            }
            continue;
        }
        if (!at_end && !sameInst(before.insts[i], after.insts[i])) {
            out.push_back(strprintf("inst %zu: control instruction "
                                    "changed by the scheduler", i));
            return out;
        }

        // Match each scheduled instruction in [seg_start, i) back to
        // an original position (first unmatched identical inst:
        // order-preserving among equal instructions, so the edge
        // check below is exact).
        const size_t n = i - seg_start;
        std::vector<int64_t> pos_after(n, -1);   // orig local -> new local
        std::vector<bool> used(n, false);
        bool matched = true;
        for (size_t aj = 0; aj < n && matched; ++aj) {
            const IrInst &ai = after.insts[seg_start + aj];
            matched = false;
            for (size_t bj = 0; bj < n; ++bj) {
                if (used[bj])
                    continue;
                if (sameInst(before.insts[seg_start + bj], ai)) {
                    used[bj] = true;
                    pos_after[bj] = static_cast<int64_t>(aj);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                out.push_back(strprintf(
                    "inst %zu: scheduled segment is not a permutation "
                    "of the original (unmatched %s)", seg_start + aj,
                    ir::irOpName(ai.op)));
            }
        }
        if (!matched)
            return out;

        for (const auto &[from, to] :
             dependenceEdges(before.insts, seg_start, i,
                             before.numVregs())) {
            if (pos_after[from] > pos_after[to]) {
                out.push_back(strprintf(
                    "segment at inst %zu: dependence edge violated — "
                    "%s (orig pos %u) must precede %s (orig pos %u) "
                    "but the schedule swapped them (reordered "
                    "dependent operations)", seg_start,
                    ir::irOpName(before.insts[seg_start + from].op),
                    from,
                    ir::irOpName(before.insts[seg_start + to].op), to));
            }
        }
        seg_start = i + 1;
    }
    return out;
}

Findings
verifyAllocation(const Trace &trace, const ir::Allocation &alloc,
                 const ir::AllocPools &pools)
{
    Findings out;

    if (alloc.locs.size() != trace.numVregs()) {
        out.push_back(strprintf("allocation covers %zu vregs, trace "
                                "has %u", alloc.locs.size(),
                                trace.numVregs()));
        return out;
    }

    // Bound vregs must keep their architectural pre-coloring.
    for (unsigned r = 0; r < 8; ++r) {
        const ir::VregLoc &loc = alloc.of(ir::vGpr(r));
        if (loc.spilled || loc.reg != host::hreg::guestGpr(r)) {
            out.push_back(strprintf("bound vreg v%u lost its pre-"
                                    "colored guest GPR register", r));
        }
    }
    for (unsigned b = 0; b < 4; ++b) {
        const ir::VregLoc &loc = alloc.of(ir::flagVreg(b));
        if (loc.spilled || loc.reg != host::hreg::FlagZ + b) {
            out.push_back(strprintf("bound flag vreg v%u lost its pre-"
                                    "colored register", ir::vFlagZ + b));
        }
    }
    for (unsigned r = 0; r < 8; ++r) {
        const ir::VregLoc &loc = alloc.of(ir::vFpr(r));
        if (loc.spilled || loc.reg != host::hreg::guestFpr(r)) {
            out.push_back(strprintf("bound vreg v%u lost its pre-"
                                    "colored guest FP register",
                                    ir::vFpr(r)));
        }
    }

    // Recompute every temporary's live interval, exactly as the
    // allocator defines them: [first def .. last use].
    struct Live
    {
        Vreg vreg;
        uint32_t start;
        uint32_t end;
        RegClass cls;
    };
    std::vector<int64_t> def_pos(trace.numVregs(), -1);
    std::vector<int64_t> last_use(trace.numVregs(), -1);
    for (size_t i = 0; i < trace.insts.size(); ++i) {
        const IrInst &inst = trace.insts[i];
        if (inst.op >= IrOp::NumOps)
            continue;
        const IrOpInfo &info = ir::irOpInfo(inst.op);
        auto use = [&](Vreg v) {
            if (v != ir::kNoVreg && v < trace.numVregs() &&
                !ir::isBoundVreg(v)) {
                last_use[v] = static_cast<int64_t>(i);
            }
        };
        use(inst.src1);
        if (!inst.useImm)
            use(inst.src2);
        if (info.hasDst && inst.dst != ir::kNoVreg &&
            inst.dst < trace.numVregs() && !ir::isBoundVreg(inst.dst) &&
            def_pos[inst.dst] < 0) {
            def_pos[inst.dst] = static_cast<int64_t>(i);
        }
    }

    std::vector<Live> live;
    for (Vreg v = ir::kFirstTemp; v < trace.numVregs(); ++v) {
        if (def_pos[v] < 0)
            continue;  // dead temp: no location required
        const ir::VregLoc &loc = alloc.of(v);
        if (!loc.used) {
            out.push_back(strprintf("temp v%u is live in the trace but "
                                    "the allocation marks it unused "
                                    "(no location)", v));
            continue;
        }
        const RegClass cls = trace.vregClass[v];
        if (loc.spilled) {
            if (loc.slot >= alloc.numSpillSlots) {
                out.push_back(strprintf("temp v%u spilled to slot %u "
                                        "beyond the %u allocated slots "
                                        "(dropped spill)", v, loc.slot,
                                        alloc.numSpillSlots));
            }
        } else {
            const uint8_t pool_first = cls == RegClass::Int
                ? pools.intPoolFirst : pools.fpPoolFirst;
            const uint8_t pool_count = cls == RegClass::Int
                ? pools.intPoolCount : pools.fpPoolCount;
            if (loc.reg < pool_first ||
                loc.reg >= pool_first + pool_count) {
                out.push_back(strprintf("temp v%u assigned register %u "
                                        "outside its class pool "
                                        "[%u, %u)", v, loc.reg,
                                        pool_first,
                                        pool_first + pool_count));
            }
        }
        live.push_back(Live{v, static_cast<uint32_t>(def_pos[v]),
                            static_cast<uint32_t>(
                                std::max(def_pos[v], last_use[v])),
                            cls});
    }

    // Pairwise conflict check. Two intervals conflict when they
    // overlap in more than a single boundary position (a def reading
    // the dying value at the same instruction is write-after-read
    // safe). Quadratic in live temps — traces are small, and this
    // runs only under verifyIr.
    for (size_t a = 0; a < live.size(); ++a) {
        for (size_t b = a + 1; b < live.size(); ++b) {
            const Live &x = live[a];
            const Live &y = live[b];
            if (std::max(x.start, y.start) >= std::min(x.end, y.end))
                continue;  // disjoint or boundary-only
            const ir::VregLoc &lx = alloc.of(x.vreg);
            const ir::VregLoc &ly = alloc.of(y.vreg);
            if (!lx.spilled && !ly.spilled && x.cls == y.cls &&
                lx.reg == ly.reg) {
                out.push_back(strprintf(
                    "host register %u double-assigned: temps v%u "
                    "[%u,%u] and v%u [%u,%u] overlap", lx.reg, x.vreg,
                    x.start, x.end, y.vreg, y.start, y.end));
            }
            if (lx.spilled && ly.spilled && lx.slot == ly.slot) {
                out.push_back(strprintf(
                    "spill slot %u double-assigned: temps v%u [%u,%u] "
                    "and v%u [%u,%u] overlap (dropped spill)", lx.slot,
                    x.vreg, x.start, x.end, y.vreg, y.start, y.end));
            }
        }
    }
    return out;
}

namespace {

[[noreturn]] void
raiseFindings(const char *what, const char *stage, const Findings &fs)
{
    std::string msg = strprintf("%s found %zu violation(s) after %s:",
                                what, fs.size(), stage);
    const size_t shown = std::min<size_t>(fs.size(), 8);
    for (size_t i = 0; i < shown; ++i)
        msg += "\n  " + fs[i];
    if (shown < fs.size())
        msg += strprintf("\n  ... and %zu more", fs.size() - shown);
    fatal_kind(ErrKind::Internal, "%s", msg.c_str());
}

} // namespace

void
checkTrace(const Trace &trace, const char *stage, bool scheduled)
{
    const Findings fs = verifyTrace(trace, scheduled);
    if (!fs.empty())
        raiseFindings("IR verifier", stage, fs);
}

void
checkSchedule(const Trace &before, const Trace &after, const char *stage)
{
    const Findings fs = verifySchedule(before, after);
    if (!fs.empty())
        raiseFindings("schedule verifier", stage, fs);
}

void
checkAllocation(const Trace &trace, const ir::Allocation &alloc,
                const char *stage)
{
    const Findings fs = verifyAllocation(trace, alloc);
    if (!fs.empty())
        raiseFindings("register-allocation verifier", stage, fs);
}

} // namespace darco::analysis
