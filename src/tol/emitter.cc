#include "tol/emitter.hh"

#include "common/logging.hh"
#include "host/address_map.hh"
#include "timing/record.hh"
#include "tol/profile.hh"

namespace darco::tol {

using host::HOp;
using host::HostInst;
using host::kNoReg;
using timing::Module;
namespace amap = host::amap;
namespace hreg = host::hreg;

namespace {

/** Spill slot area (TOL work memory; physical, no TLB). */
constexpr uint32_t kSpillBase = amap::kWorkBase + 0x200000;

constexpr bool
fitsI12(int64_t value)
{
    return value >= -2048 && value <= 2047;
}

class RegionBuilder
{
  public:
    RegionBuilder(const ir::Trace &ir_trace, const ir::Allocation &ra,
                  const EmitOptions &options, EmitStats &es)
        : trace(ir_trace), alloc(ra), opt(options), stats(es)
    {
        region = std::make_unique<host::CodeRegion>();
        region->kind = opt.kind;
        region->guestEntry = trace.guestEntry;
        region->guestEips = trace.guestEips;
    }

    std::unique_ptr<host::CodeRegion> build();

  private:
    std::vector<HostInst> &code() { return region->insts; }

    uint32_t
    put(HostInst inst, Module attr)
    {
        inst.attr = static_cast<uint8_t>(attr);
        region->insts.push_back(inst);
        ++stats.hostInsts;
        return static_cast<uint32_t>(region->insts.size() - 1);
    }

    HostInst
    make(HOp op, uint8_t rd, uint8_t rs1, uint8_t rs2, int64_t imm = 0)
    {
        HostInst inst;
        inst.op = op;
        inst.rd = rd;
        inst.rs1 = rs1;
        inst.rs2 = rs2;
        inst.imm = imm;
        return inst;
    }

    /** Materialize a 32-bit constant into @p rd (1-2 instructions). */
    void
    emitLi(uint8_t rd, uint32_t value, Module attr)
    {
        if (fitsI12(static_cast<int32_t>(value))) {
            put(make(HOp::ADDI, rd, hreg::Zero, kNoReg,
                     static_cast<int32_t>(value)), attr);
            return;
        }
        put(make(HOp::LUI, rd, kNoReg, kNoReg,
                 static_cast<int32_t>(value & 0xFFFFF000u)), attr);
        if (value & 0xFFF) {
            put(make(HOp::ORI, rd, rd, kNoReg,
                     static_cast<int64_t>(value & 0xFFF)), attr);
        }
    }

    /** Memory instruction with arbitrary displacement off @p base. */
    void
    emitMem(HOp op, uint8_t data_reg, uint8_t base, int64_t disp,
            uint8_t size, Module attr)
    {
        uint8_t b = base;
        int64_t d = disp;
        if (!fitsI12(disp)) {
            emitLi(hreg::StubScratch2, static_cast<uint32_t>(disp),
                   attr);
            put(make(HOp::ADD, hreg::StubScratch2, hreg::StubScratch2,
                     base), attr);
            b = hreg::StubScratch2;
            d = 0;
        }
        HostInst inst = (op == HOp::ST || op == HOp::FST)
            ? make(op, kNoReg, b, data_reg, d)
            : make(op, data_reg, b, kNoReg, d);
        inst.size = size;
        put(inst, attr);
    }

    uint32_t
    spillAddr(uint16_t slot) const
    {
        return kSpillBase + slot * 8u;
    }

    /** Host register holding vreg @p v, reloading spills. */
    uint8_t
    srcReg(ir::Vreg v, unsigned which, Module attr)
    {
        const ir::VregLoc &loc = alloc.of(v);
        if (!loc.spilled)
            return loc.reg;
        const bool fp = trace.vregClass[v] == ir::RegClass::Fp;
        const uint8_t scratch = fp
            ? static_cast<uint8_t>(30 + which)            // f30/f31
            : static_cast<uint8_t>(53 + which);           // x53/x54
        emitLi(hreg::StubScratch2, spillAddr(loc.slot), attr);
        emitMem(fp ? HOp::FLD : HOp::LD, scratch, hreg::StubScratch2,
                0, fp ? 8 : 4, attr);
        ++stats.spillLoads;
        return scratch;
    }

    /** Destination register for vreg @p v (flushed by finishDst). */
    uint8_t
    dstReg(ir::Vreg v)
    {
        const ir::VregLoc &loc = alloc.of(v);
        if (!loc.spilled)
            return loc.reg;
        return trace.vregClass[v] == ir::RegClass::Fp ? 30 : 53;
    }

    /** Store a spilled destination back to its slot. */
    void
    finishDst(ir::Vreg v, Module attr)
    {
        const ir::VregLoc &loc = alloc.of(v);
        if (!loc.spilled)
            return;
        const bool fp = trace.vregClass[v] == ir::RegClass::Fp;
        emitLi(hreg::StubScratch2, spillAddr(loc.slot), attr);
        emitMem(fp ? HOp::FST : HOp::ST, fp ? 30 : 53,
                hreg::StubScratch2, 0, fp ? 8 : 4, attr);
        ++stats.spillStores;
    }

    void emitPrologue();
    void lowerInst(const ir::IrInst &inst);
    void lowerAluImm(const ir::IrInst &inst);
    void emitStubs();

    const ir::Trace &trace;
    const ir::Allocation &alloc;
    const EmitOptions &opt;
    EmitStats &stats;
    std::unique_ptr<host::CodeRegion> region;

    struct PendingBranch
    {
        uint32_t instIndex;
        uint16_t exitId;
    };
    std::vector<PendingBranch> pending;
    /** Register carrying the computed target of an indirect exit. */
    std::vector<uint8_t> indirectTargetReg;
};

void
RegionBuilder::emitPrologue()
{
    if (!opt.bbEntryProfiling)
        return;
    // Execution counter bump + BB->SB promotion check (§II-A.1).
    emitLi(hreg::StubScratch0, opt.profBlockAddr, Module::BBM);
    HostInst ld = make(HOp::LD, hreg::StubScratch1, hreg::StubScratch0,
                       kNoReg, 0);
    ld.size = 4;
    put(ld, Module::BBM);
    put(make(HOp::ADDI, hreg::StubScratch1, hreg::StubScratch1, kNoReg,
             1), Module::BBM);
    HostInst st = make(HOp::ST, kNoReg, hreg::StubScratch0,
                       hreg::StubScratch1, 0);
    st.size = 4;
    put(st, Module::BBM);
    // if (count < threshold) skip the promote jump
    HostInst blt = make(HOp::BLT, kNoReg, hreg::StubScratch1,
                        hreg::SbThreshold, 0);
    blt.targetIsIndex = true;
    const uint32_t blt_idx = put(blt, Module::BBM);
    region->insts[blt_idx].imm = blt_idx + 2;
    put(make(HOp::JAL, hreg::Zero, kNoReg, kNoReg,
             static_cast<int64_t>(amap::kSvcPromote)), Module::BBM);
}

void
RegionBuilder::lowerAluImm(const ir::IrInst &inst)
{
    const Module attr = Module::App;
    const uint8_t s1 = srcReg(inst.src1, 0, attr);
    const uint8_t rd = dstReg(inst.dst);
    const int64_t imm = inst.imm;

    auto reg_fallback = [&](HOp op) {
        emitLi(hreg::StubScratch0,
               static_cast<uint32_t>(static_cast<int32_t>(imm)), attr);
        put(make(op, rd, s1, hreg::StubScratch0), attr);
    };

    switch (inst.op) {
      case ir::IrOp::ADD:
        if (fitsI12(imm))
            put(make(HOp::ADDI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::ADD);
        break;
      case ir::IrOp::SUB:
        if (fitsI12(-imm))
            put(make(HOp::ADDI, rd, s1, kNoReg, -imm), attr);
        else
            reg_fallback(HOp::SUB);
        break;
      case ir::IrOp::AND:
        if (imm >= 0 && imm <= 2047)
            put(make(HOp::ANDI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::AND);
        break;
      case ir::IrOp::OR:
        if (imm >= 0 && imm <= 2047)
            put(make(HOp::ORI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::OR);
        break;
      case ir::IrOp::XOR:
        if (imm >= 0 && imm <= 2047)
            put(make(HOp::XORI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::XOR);
        break;
      case ir::IrOp::SLL:
        put(make(HOp::SLLI, rd, s1, kNoReg, imm & 31), attr);
        break;
      case ir::IrOp::SRL:
        put(make(HOp::SRLI, rd, s1, kNoReg, imm & 31), attr);
        break;
      case ir::IrOp::SRA:
        put(make(HOp::SRAI, rd, s1, kNoReg, imm & 31), attr);
        break;
      case ir::IrOp::SLT:
        if (fitsI12(imm))
            put(make(HOp::SLTI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::SLT);
        break;
      case ir::IrOp::SLTU:
        if (imm >= 0 && imm <= 2047)
            put(make(HOp::SLTUI, rd, s1, kNoReg, imm), attr);
        else
            reg_fallback(HOp::SLTU);
        break;
      case ir::IrOp::MUL: reg_fallback(HOp::MUL); break;
      case ir::IrOp::MULH: reg_fallback(HOp::MULH); break;
      case ir::IrOp::DIV: reg_fallback(HOp::DIV); break;
      case ir::IrOp::REM: reg_fallback(HOp::REM); break;
      default:
        panic("lowerAluImm: unexpected op %s", ir::irOpName(inst.op));
    }
    finishDst(inst.dst, attr);
}

void
RegionBuilder::lowerInst(const ir::IrInst &inst)
{
    const Module attr = Module::App;

    switch (inst.op) {
      case ir::IrOp::LDI: {
        emitLi(dstReg(inst.dst),
               static_cast<uint32_t>(static_cast<int32_t>(inst.imm)),
               attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::MOV: {
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        put(make(HOp::ADD, dstReg(inst.dst), s1, hreg::Zero), attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FMOV: {
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        put(make(HOp::FMOV, dstReg(inst.dst), s1, kNoReg), attr);
        finishDst(inst.dst, attr);
        return;
      }

      case ir::IrOp::ADD: case ir::IrOp::SUB: case ir::IrOp::AND:
      case ir::IrOp::OR: case ir::IrOp::XOR: case ir::IrOp::SLL:
      case ir::IrOp::SRL: case ir::IrOp::SRA: case ir::IrOp::SLT:
      case ir::IrOp::SLTU: case ir::IrOp::MUL: case ir::IrOp::MULH:
      case ir::IrOp::DIV: case ir::IrOp::REM: {
        if (inst.useImm) {
            lowerAluImm(inst);
            return;
        }
        static const HOp map[] = {
            HOp::ADD, HOp::SUB, HOp::AND, HOp::OR, HOp::XOR, HOp::SLL,
            HOp::SRL, HOp::SRA, HOp::SLT, HOp::SLTU, HOp::MUL,
            HOp::MULH, HOp::DIV, HOp::REM,
        };
        const unsigned idx = static_cast<unsigned>(inst.op) -
                             static_cast<unsigned>(ir::IrOp::ADD);
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        const uint8_t s2 = srcReg(inst.src2, 1, attr);
        put(make(map[idx], dstReg(inst.dst), s1, s2), attr);
        finishDst(inst.dst, attr);
        return;
      }

      case ir::IrOp::LD: {
        const uint8_t base = srcReg(inst.src1, 0, attr);
        emitMem(HOp::LD, dstReg(inst.dst), base, inst.imm, inst.size,
                attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::ST: {
        const uint8_t base = srcReg(inst.src1, 0, attr);
        const uint8_t data = srcReg(inst.src2, 1, attr);
        emitMem(HOp::ST, data, base, inst.imm, inst.size, attr);
        return;
      }
      case ir::IrOp::FLD: {
        const uint8_t base = srcReg(inst.src1, 0, attr);
        emitMem(HOp::FLD, dstReg(inst.dst), base, inst.imm, 8, attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FST: {
        const uint8_t base = srcReg(inst.src1, 0, attr);
        const uint8_t data = srcReg(inst.src2, 1, attr);
        emitMem(HOp::FST, data, base, inst.imm, 8, attr);
        return;
      }

      case ir::IrOp::FADD: case ir::IrOp::FSUB: case ir::IrOp::FMUL:
      case ir::IrOp::FDIV: {
        static const HOp map[] = {HOp::FADD, HOp::FSUB, HOp::FMUL,
                                  HOp::FDIV};
        const unsigned idx = static_cast<unsigned>(inst.op) -
                             static_cast<unsigned>(ir::IrOp::FADD);
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        const uint8_t s2 = srcReg(inst.src2, 1, attr);
        put(make(map[idx], dstReg(inst.dst), s1, s2), attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FSQRT: case ir::IrOp::FABS: case ir::IrOp::FNEG: {
        static const HOp map[] = {HOp::FSQRT, HOp::FABS, HOp::FNEG};
        const unsigned idx = static_cast<unsigned>(inst.op) -
                             static_cast<unsigned>(ir::IrOp::FSQRT);
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        put(make(map[idx], dstReg(inst.dst), s1, kNoReg), attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FCVT_IF: {
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        put(make(HOp::FCVT_IF, dstReg(inst.dst), s1, kNoReg), attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FCVT_FI: {
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        put(make(HOp::FCVT_FI, dstReg(inst.dst), s1, kNoReg), attr);
        finishDst(inst.dst, attr);
        return;
      }
      case ir::IrOp::FLT: case ir::IrOp::FLE: case ir::IrOp::FEQ:
      case ir::IrOp::FUNORD: {
        static const HOp map[] = {HOp::FLT, HOp::FLE, HOp::FEQ,
                                  HOp::FUNORD};
        const unsigned idx = static_cast<unsigned>(inst.op) -
                             static_cast<unsigned>(ir::IrOp::FLT);
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        const uint8_t s2 = srcReg(inst.src2, 1, attr);
        put(make(map[idx], dstReg(inst.dst), s1, s2), attr);
        finishDst(inst.dst, attr);
        return;
      }

      case ir::IrOp::BR: {
        static const HOp map[] = {HOp::BEQ, HOp::BNE, HOp::BLT,
                                  HOp::BGE, HOp::BLTU, HOp::BGEU};
        const uint8_t s1 = srcReg(inst.src1, 0, attr);
        uint8_t s2;
        if (inst.useImm) {
            if (inst.imm == 0) {
                s2 = hreg::Zero;
            } else {
                emitLi(hreg::StubScratch0,
                       static_cast<uint32_t>(
                           static_cast<int32_t>(inst.imm)), attr);
                s2 = hreg::StubScratch0;
            }
        } else {
            s2 = srcReg(inst.src2, 1, attr);
        }
        HostInst br = make(map[static_cast<unsigned>(inst.cc)], kNoReg,
                           s1, s2);
        const uint32_t idx = put(br, attr);
        pending.push_back(PendingBranch{idx, inst.exitId});
        return;
      }

      case ir::IrOp::JEXIT: {
        HostInst jal = make(HOp::JAL, hreg::Zero, kNoReg, kNoReg);
        const uint32_t idx = put(jal, attr);
        pending.push_back(PendingBranch{idx, inst.exitId});
        return;
      }

      case ir::IrOp::JINDIRECT: {
        const uint8_t rt = srcReg(inst.src1, 0, attr);
        indirectTargetReg[inst.exitId] = rt;
        if (!opt.enableIbtc) {
            HostInst jal = make(HOp::JAL, hreg::Zero, kNoReg, kNoReg);
            const uint32_t idx = put(jal, attr);
            pending.push_back(PendingBranch{idx, inst.exitId});
            return;
        }
        // Inline IBTC probe (hit: JALR straight to the target region).
        put(make(HOp::SRLI, hreg::StubScratch0, rt, kNoReg, 2), attr);
        if (opt.ibtcMask <= 2047) {
            put(make(HOp::ANDI, hreg::StubScratch0, hreg::StubScratch0,
                     kNoReg, opt.ibtcMask), attr);
        } else {
            emitLi(hreg::StubScratch1, opt.ibtcMask, attr);
            put(make(HOp::AND, hreg::StubScratch0, hreg::StubScratch0,
                     hreg::StubScratch1), attr);
        }
        put(make(HOp::SLLI, hreg::StubScratch0, hreg::StubScratch0,
                 kNoReg, opt.ibtcWays == 2 ? 4 : 3), attr);
        put(make(HOp::ADD, hreg::StubScratch0, hreg::StubScratch0,
                 hreg::IbtcBase), attr);

        auto emit_way = [&](int64_t tag_off, bool last_way) {
            HostInst tag_ld = make(HOp::LD, hreg::StubScratch1,
                                   hreg::StubScratch0, kNoReg, tag_off);
            tag_ld.size = 4;
            put(tag_ld, attr);
            HostInst miss = make(HOp::BNE, kNoReg, hreg::StubScratch1,
                                 rt);
            const uint32_t miss_idx = put(miss, attr);
            if (last_way) {
                pending.push_back(
                    PendingBranch{miss_idx, inst.exitId});
            } else {
                // Fall through to the next way's check (2 insts away).
                region->insts[miss_idx].imm = miss_idx + 3;
                region->insts[miss_idx].targetIsIndex = true;
            }
            HostInst tgt_ld = make(HOp::LD, hreg::StubScratch1,
                                   hreg::StubScratch0, kNoReg,
                                   tag_off + 4);
            tgt_ld.size = 4;
            put(tgt_ld, attr);
            HostInst jalr = make(HOp::JALR, hreg::Zero,
                                 hreg::StubScratch1, kNoReg, 0);
            jalr.guestBoundary = true;
            jalr.guestIndex = static_cast<uint16_t>(
                trace.exits[inst.exitId].guestInstsRetired);
            put(jalr, attr);
        };

        emit_way(0, opt.ibtcWays == 1);
        if (opt.ibtcWays == 2)
            emit_way(8, true);
        return;
      }

      default:
        panic("lowerInst: unhandled IR op %s", ir::irOpName(inst.op));
    }
}

void
RegionBuilder::emitStubs()
{
    std::vector<uint32_t> stub_start(trace.exits.size(), 0);

    for (size_t e = 0; e < trace.exits.size(); ++e) {
        const ir::IrExit &exit = trace.exits[e];
        stub_start[e] = static_cast<uint32_t>(code().size());

        host::ExitInfo info;
        info.guestTarget = exit.guestTarget;
        info.guestInstsRetired = exit.guestInstsRetired;
        info.indirect = exit.indirect;
        info.halt = exit.halt;
        info.flagMask = exit.flagMask;

        if (exit.halt) {
            // Pass the HALT EIP so the runtime can leave the guest
            // state architecturally precise.
            emitLi(hreg::ExitTarget, exit.guestTarget, Module::TolOther);
            put(make(HOp::ADDI, hreg::ExitId, hreg::Zero, kNoReg,
                     static_cast<int64_t>(e)), Module::TolOther);
            HostInst jal = make(HOp::JAL, hreg::Zero, kNoReg, kNoReg,
                                static_cast<int64_t>(amap::kSvcHalt));
            jal.guestBoundary = true;
            jal.guestIndex =
                static_cast<uint16_t>(exit.guestInstsRetired);
            info.branchIndex = put(jal, Module::TolOther);
        } else if (exit.indirect) {
            // IBTC probe miss: hand the computed target to the runtime.
            const uint8_t rt = indirectTargetReg[e];
            panic_if(rt == kNoReg, "indirect exit without a target reg");
            put(make(HOp::ADD, hreg::ExitTarget, rt, hreg::Zero),
                Module::TolOther);
            put(make(HOp::ADDI, hreg::ExitId, hreg::Zero, kNoReg,
                     static_cast<int64_t>(e)), Module::TolOther);
            HostInst jal = make(HOp::JAL, hreg::Zero, kNoReg, kNoReg,
                                static_cast<int64_t>(amap::kSvcIbtcMiss));
            jal.guestBoundary = true;
            jal.guestIndex =
                static_cast<uint16_t>(exit.guestInstsRetired);
            info.branchIndex = put(jal, Module::TolOther);
        } else {
            if (opt.edgeProfiling && e <= 1) {
                // taken counter for exit 0, fallthrough for exit 1.
                const uint32_t cnt_addr = opt.profBlockAddr +
                    (e == 0 ? BbProfileBlock::kTakenOffset
                            : BbProfileBlock::kFallthroughOffset);
                emitLi(hreg::StubScratch0, cnt_addr, Module::BBM);
                HostInst ld = make(HOp::LD, hreg::StubScratch1,
                                   hreg::StubScratch0, kNoReg, 0);
                ld.size = 4;
                put(ld, Module::BBM);
                put(make(HOp::ADDI, hreg::StubScratch1,
                         hreg::StubScratch1, kNoReg, 1), Module::BBM);
                HostInst st = make(HOp::ST, kNoReg, hreg::StubScratch0,
                                   hreg::StubScratch1, 0);
                st.size = 4;
                put(st, Module::BBM);
            }
            emitLi(hreg::ExitTarget, exit.guestTarget, Module::TolOther);
            put(make(HOp::ADDI, hreg::ExitId, hreg::Zero, kNoReg,
                     static_cast<int64_t>(e)), Module::TolOther);
            HostInst jal = make(HOp::JAL, hreg::Zero, kNoReg, kNoReg,
                                static_cast<int64_t>(amap::kSvcDispatch));
            jal.guestBoundary = true;
            jal.guestIndex =
                static_cast<uint16_t>(exit.guestInstsRetired);
            info.branchIndex = put(jal, Module::TolOther);
        }

        region->exits.push_back(info);
    }

    // Point body branches at their stubs.
    for (const PendingBranch &pb : pending) {
        HostInst &inst = region->insts[pb.instIndex];
        inst.imm = stub_start[pb.exitId];
        inst.targetIsIndex = true;
    }
}

std::unique_ptr<host::CodeRegion>
RegionBuilder::build()
{
    indirectTargetReg.assign(trace.exits.size(), kNoReg);
    emitPrologue();
    for (const ir::IrInst &inst : trace.insts)
        lowerInst(inst);
    emitStubs();
    return std::move(region);
}

} // namespace

std::unique_ptr<host::CodeRegion>
emitRegion(const ir::Trace &trace, const ir::Allocation &alloc,
           const EmitOptions &options, EmitStats *stats)
{
    EmitStats local;
    RegionBuilder builder(trace, alloc, options, local);
    auto region = builder.build();
    if (stats)
        *stats = local;
    return region;
}

} // namespace darco::tol
