#include "tol/flag_scan.hh"

namespace darco::tol {

namespace {

/** Map guest EFLAGS bits to the IR fmask (PF intentionally dropped). */
uint8_t
toFmask(uint32_t eflags_mask)
{
    uint8_t m = 0;
    if (eflags_mask & guest::flag::ZF)
        m |= ir::fmask::Z;
    if (eflags_mask & guest::flag::SF)
        m |= ir::fmask::S;
    if (eflags_mask & guest::flag::CF)
        m |= ir::fmask::C;
    if (eflags_mask & guest::flag::OF)
        m |= ir::fmask::O;
    return m;
}

} // namespace

uint8_t
FlagScanner::liveFlagsAt(uint32_t eip)
{
    auto it = memo.find(eip);
    if (it != memo.end())
        return it->second;
    unsigned budget = 48;
    const uint8_t result =
        scan(eip, ir::fmask::All, budget, 0) & ir::fmask::All;
    memo.emplace(eip, result);
    return result;
}

uint8_t
FlagScanner::scan(uint32_t eip, uint8_t remaining, unsigned &budget,
                  unsigned depth)
{
    uint8_t live = 0;
    while (remaining) {
        if (budget == 0 || depth > 4)
            return live | remaining;  // ran out: conservative
        --budget;

        const guest::Inst &inst = reader.at(eip);
        const guest::OpInfo &info = guest::opInfo(inst.op);
        const uint32_t next = eip + inst.length;

        if (inst.op == guest::Op::JCC) {
            const uint8_t consumed =
                toFmask(guest::condFlagsRead(inst.cond)) & remaining;
            live |= consumed;
            const uint32_t taken = next + static_cast<uint32_t>(inst.imm);
            live |= scan(taken, remaining, budget, depth + 1);
            live |= scan(next, remaining, budget, depth + 1);
            return live;
        }

        uint8_t written = toFmask(info.flagsWritten);
        if (info.keepsCf)
            written &= static_cast<uint8_t>(~ir::fmask::C);
        remaining &= static_cast<uint8_t>(~written);
        if (!remaining)
            return live;

        switch (inst.op) {
          case guest::Op::JMP:
            eip = next + static_cast<uint32_t>(inst.imm);
            break;
          case guest::Op::CALL:
            eip = next + static_cast<uint32_t>(inst.imm);
            break;
          case guest::Op::JMPI:
          case guest::Op::CALLI:
          case guest::Op::RET:
          case guest::Op::HALT:
            return live | remaining;  // unknown continuation
          default:
            eip = next;
            break;
        }
    }
    return live;
}

} // namespace darco::tol
