/**
 * @file
 * TOL self-execution cost model.
 *
 * In DARCO the TOL is real host software whose instruction stream the
 * timing simulator sees interleaved with the translated application.
 * Here TOL's algorithms are C++; this class emits the corresponding
 * host-instruction stream into the timing simulator, parameterized by
 * the *actual* work performed and touching the *actual* simulated
 * addresses of TOL's data structures (translation-map buckets probed,
 * profile counters bumped, IBTC entries filled, IR buffers scanned,
 * guest context slots, and guest code bytes fetched as data). That
 * keeps TOL IPC, its D$/I$ behaviour, and TOL<->application cache
 * interference emergent rather than assumed.
 *
 * Synthetic PCs: each TOL module owns a PC window inside the TOL code
 * region; emission walks the window sequentially (wrapping), so the
 * timing model's L1-I sees a small, hot TOL code footprint — matching
 * the paper's observation that TOL I$ impact is negligible.
 */

#ifndef DARCO_TOL_COST_MODEL_HH
#define DARCO_TOL_COST_MODEL_HH

#include <cstdint>

#include "host/address_map.hh"
#include "host/isa.hh"
#include "timing/record.hh"

namespace darco::tol {

/** One synthetic TOL instruction stream writer. */
class CostStream
{
  public:
    CostStream(timing::RecordSink &record_sink, timing::Module module,
               uint32_t pc_window_base, uint32_t pc_window_bytes)
        : sink(record_sink), mod(module), pcBase(pc_window_base),
          pcBytes(pc_window_bytes)
    {
        buildTemplates();
    }

    /**
     * Batcher-backed stream: records are built directly in the
     * batcher's buffer, skipping the per-record virtual consume()
     * and the extra copy — the hot configuration (the TOL runtime
     * emits tens of millions of these).
     */
    CostStream(timing::RecordBatcher &record_batcher,
               timing::Module module, uint32_t pc_window_base,
               uint32_t pc_window_bytes)
        : sink(record_batcher), batcher(&record_batcher), mod(module),
          pcBase(pc_window_base), pcBytes(pc_window_bytes)
    {
        buildTemplates();
    }

    /** Emit @p count simple ALU instructions. */
    void alu(unsigned count);

    /** Emit one load from @p addr (drives the D$/TLB like real code). */
    void load(uint32_t addr, uint8_t size = 4);

    /** Emit one store to @p addr. */
    void store(uint32_t addr, uint8_t size = 4);

    /**
     * Emit a conditional branch. @p taken drives the branch
     * predictor; the target stays inside the module's PC window so
     * the BTB behaves like a small runtime loop.
     */
    void branch(bool taken);

    /**
     * Emit an indirect jump to a synthetic handler address (e.g. the
     * interpreter's opcode dispatch). Distinct @p selector values map
     * to distinct targets, so target-varying dispatch mispredicts in
     * the BTB exactly like a real threaded interpreter.
     */
    void dispatch(uint32_t selector);

    /** Emit a (well-predicted) loop-back jump to the window start. */
    void loopBack();

    /**
     * Restart emission at a fixed routine entry inside the window.
     * Called at the start of each TOL activity so repeated activities
     * re-execute the same PCs — the loop-like behaviour of real TOL
     * routines that keeps them branch-predictable and L1-I resident.
     */
    void
    routine(uint32_t entry_offset)
    {
        pcOffset = entry_offset % pcBytes;
    }

    uint64_t instsEmitted() const { return emitted; }

  private:
    /**
     * Start a record from @p tmpl (a per-kind template holding every
     * static field): a batcher slot, or the local scratch.
     */
    timing::Record &
    begin(const timing::Record &tmpl)
    {
        if (batcher) {
            timing::Record &rec = batcher->alloc();
            rec = tmpl;
            return rec;
        }
        scratch = tmpl;
        return scratch;
    }

    /** Finish the record begun by begin(). */
    void
    end()
    {
        if (!batcher)
            sink.consume(scratch);
        ++emitted;
    }

    uint32_t nextPc();
    uint8_t nextDst();
    void buildTemplates();

    timing::RecordSink &sink;
    timing::RecordBatcher *batcher = nullptr;
    timing::Record scratch;
    /** Per-kind templates with all static fields prefilled. */
    timing::Record aluTmpl, loadTmpl, storeTmpl, branchTmpl,
        dispatchTmpl, loopTmpl;
    timing::Module mod;
    uint32_t pcBase;
    uint32_t pcBytes;
    uint32_t pcOffset = 0;
    uint32_t lastSelector = 0;
    uint8_t rotor = 0;
    uint8_t lastDst = host::hreg::TolScratch0;
    uint64_t emitted = 0;
};

/**
 * The per-module cost streams TOL uses. PC windows are sized so the
 * whole TOL code footprint is a few tens of KBs (paper: TOL's static
 * code largely fits in L1-I).
 */
class CostModel
{
  public:
    explicit CostModel(timing::RecordSink &sink);
    /** Batcher-backed (zero-copy emission); see CostStream. */
    explicit CostModel(timing::RecordBatcher &batcher);

    CostStream im;        ///< interpreter loop + handlers
    CostStream bbm;       ///< BB translation
    CostStream sbm;       ///< superblock formation + optimization
    CostStream chain;     ///< chaining / patching
    CostStream lookup;    ///< translation-map lookups, IBTC fills
    CostStream other;     ///< dispatch loop, transitions, init

    /** Total TOL host instructions emitted. */
    uint64_t totalEmitted() const;
};

} // namespace darco::tol

#endif // DARCO_TOL_COST_MODEL_HH
