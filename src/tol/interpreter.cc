#include "tol/interpreter.hh"

namespace darco::tol {

namespace g = darco::guest;
namespace ctx = darco::host::ctx;
namespace amap = darco::host::amap;

guest::ExecResult
Interpreter::step(guest::State &state)
{
    const uint32_t eip = state.eip;
    const DecodedInst &dec = reader.decoded(eip);
    const g::Inst &inst = dec.inst;
    const g::OpInfo &info = *dec.info;

    // --- fetch: instruction bytes read through the data path -------
    im.load(eip, 4);
    if (inst.length > 4)
        im.load(eip + 4, 4);

    // --- decode + dispatch -------------------------------------------
    im.alu(cfg.imDecodeAlus);
    im.load(amap::kWorkBase + static_cast<uint32_t>(inst.op) * 16);
    im.dispatch(static_cast<uint32_t>(inst.op));
    im.alu(cfg.imDispatchOverheadAlus);

    // --- handler: guest-context traffic ---------------------------------
    const uint32_t cbase = amap::kContextBase;
    auto ctx_read_gpr = [&](unsigned r) {
        im.load(cbase + ctx::gprAddr(r));
    };
    auto ctx_write_gpr = [&](unsigned r) {
        im.store(cbase + ctx::gprAddr(r));
    };

    switch (inst.form) {
      case g::Form::RR:
        ctx_read_gpr(inst.reg1);
        ctx_read_gpr(inst.reg2);
        break;
      case g::Form::RI:
        ctx_read_gpr(inst.reg1);
        break;
      case g::Form::RM:
      case g::Form::MR:
      case g::Form::M:
        ctx_read_gpr(inst.mem.base);
        if (inst.mem.hasIndex)
            ctx_read_gpr(inst.mem.index);
        im.alu(2);  // effective-address computation
        if (inst.form != g::Form::M)
            ctx_read_gpr(inst.reg1);
        break;
      case g::Form::R:
        ctx_read_gpr(inst.reg1);
        break;
      default:
        break;
    }

    if (info.isBranch) {
        if (inst.op == g::Op::JCC)
            im.load(cbase + ctx::flagAddr(0));  // condition evaluation
        im.alu(2);
    }

    // --- execute (functionally; guest memory accesses recorded) ------
    RecordingMem rmem{mem, im};
    const g::ExecResult result = g::execInst(state, rmem, inst);

    // --- writeback -------------------------------------------------------
    im.alu(info.complexAlu ? 4 : 2);
    switch (inst.op) {
      case g::Op::IDIV:
        ctx_write_gpr(g::EAX);
        ctx_write_gpr(g::EDX);
        break;
      case g::Op::PUSH:
      case g::Op::POP:
        ctx_write_gpr(g::ESP);
        if (inst.op == g::Op::POP)
            ctx_write_gpr(inst.reg1);
        break;
      default:
        if (inst.form == g::Form::RR || inst.form == g::Form::RI ||
            inst.form == g::Form::RM || inst.form == g::Form::R) {
            if (!info.isBranch && inst.op != g::Op::CMP &&
                inst.op != g::Op::TEST && inst.op != g::Op::HALT) {
                ctx_write_gpr(inst.reg1);
            }
        }
        break;
    }
    if (info.flagsWritten)
        im.store(cbase + ctx::flagAddr(0));
    if (info.isCall || info.isRet)
        ctx_write_gpr(g::ESP);

    // EIP update + interpreter loop-back.
    im.alu(1);
    im.loopBack();

    return result;
}

} // namespace darco::tol
