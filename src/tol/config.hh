/**
 * @file
 * TOL configuration: promotion thresholds, structure sizes, feature
 * toggles, and the cost model's per-activity host-instruction
 * parameters. Defaults follow the paper (§III-A): IM/BBth = 5,
 * BB/SBth = 10000. Cost parameters are exposed so the ablation
 * benches can study their effect.
 */

#ifndef DARCO_TOL_CONFIG_HH
#define DARCO_TOL_CONFIG_HH

#include <cstdint>

namespace darco::tol {

struct TolConfig
{
    // ----- promotion thresholds (paper §III-A) ------------------------
    /** Interpreter executions of a branch target before BB translation. */
    uint32_t imToBbThreshold = 5;
    /** BB executions before superblock formation + optimization. */
    uint32_t bbToSbThreshold = 10000;

    // ----- region formation ----------------------------------------------
    uint32_t maxBbGuestInsts = 32;
    uint32_t maxSbGuestInsts = 64;
    /** Minimum branch bias to extend a superblock across a branch. */
    double sbBranchBias = 0.6;
    /** Minimum profile samples before trusting a branch bias. */
    uint32_t sbMinEdgeSamples = 16;
    /** Follow direct calls during trace formation. */
    bool sbFollowCalls = true;

    // ----- features -----------------------------------------------------
    bool enableChaining = true;
    bool enableIbtc = true;
    /** Run the BBM "simple optimizations" (constprop + DCE, §III-A). */
    bool enableBbmOpts = true;
    /** Run the full SBM pass pipeline. */
    bool enableSbmOpts = true;
    /** Run the instruction scheduler in SBM. */
    bool enableScheduling = true;
    /**
     * Run the static IR/regalloc verifier (src/analysis/verify.hh)
     * after every translation pass. Pure observation: no cost-model
     * charge, no records, so determinism fields are unaffected — only
     * host wall-clock. Default-on so every ctest run verifies every
     * translation; perf harnesses turn it off for timed scenarios
     * (bench/check_perf.py requires verification off on committed
     * baselines).
     */
    bool verifyIr = true;

    // ----- structure sizes ------------------------------------------------
    /** IBTC entries (power of two, 8 bytes each). */
    uint32_t ibtcEntries = 512;
    /**
     * IBTC associativity: 1 (direct-mapped, the baseline literature
     * design) or 2 (set-associative with MRU insertion — the §III-E
     * "software enhancement of indirect branches" extension; costs
     * two extra probe instructions on the way-1 path).
     */
    uint32_t ibtcWays = 1;
    /** Translation-map buckets (power of two, 8 bytes each). */
    uint32_t transMapBuckets = 1u << 16;
    /** Code cache capacity in bytes (full flush when exceeded). */
    uint32_t codeCacheBytes = 8u << 20;
    /**
     * Hot/cold code placement (§III-E "code placement in the code
     * cache"): allocate superblocks from a dedicated partition
     * (given as a percentage of the cache) so steady-state hot code
     * is densely packed. 0 disables partitioning.
     */
    uint32_t sbPartitionPercent = 0;

    // ----- cost model (host instructions per unit of real work) --------
    // Interpreter, per guest instruction (plus per-operand context
    // traffic and the real guest-memory access, emitted separately).
    uint32_t imDecodeAlus = 5;
    uint32_t imDispatchOverheadAlus = 2;
    // Translator (BBM), per guest instruction processed.
    uint32_t bbmDecodeAlus = 6;
    uint32_t bbmIrGenAlusPerInst = 4;
    // Optimizer (SBM) per-pass per-IR-inst visit costs.
    uint32_t passVisitAlus = 3;
    uint32_t cseHashAlus = 3;
    uint32_t regallocAlusPerInterval = 6;
    uint32_t schedAlusPerEdge = 2;
    // Code emission per host instruction produced.
    uint32_t emitAlusPerInst = 2;
    // Runtime services.
    uint32_t lookupHashAlus = 3;
    uint32_t chainPatchAlus = 4;
    uint32_t ibtcFillAlus = 3;
};

} // namespace darco::tol

#endif // DARCO_TOL_CONFIG_HH
