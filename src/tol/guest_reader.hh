/**
 * @file
 * Decode-cached reader of guest code out of the co-design component's
 * host memory (where the emulated guest image lives in the low 3 GiB).
 * Shared by the interpreter, the translator's path builders and the
 * flag-liveness scanner. Guest code is immutable (GX86 has no
 * self-modifying-code support; documented in DESIGN.md), so backing
 * entries never invalidate.
 *
 * Layout: decoded instructions live in a hash map whose entries are
 * address-stable, paired with their static OpInfo so hot consumers
 * (the interpreter loop) pay neither a re-decode nor an opcode-table
 * call. A direct-mapped eip-indexed cache sits in front of the hash
 * map and turns the repeated lookups of hot loops into one array
 * probe; it is invalidated on code-cache flushes (a conservative hook:
 * decoded guest code would have to be dropped alongside translations
 * if self-modifying code were ever supported).
 */

#ifndef DARCO_TOL_GUEST_READER_HH
#define DARCO_TOL_GUEST_READER_HH

#include <array>
#include <unordered_map>

#include "common/logging.hh"
#include "guest/encoding.hh"
#include "guest/isa.hh"
#include "host/executor.hh"

namespace darco::tol {

/** A decoded guest instruction plus its static opcode properties. */
struct DecodedInst
{
    guest::Inst inst;
    const guest::OpInfo *info = nullptr;
};

class GuestCodeReader
{
  public:
    explicit GuestCodeReader(host::Memory &memory) : mem(memory) {}

    /** Decoded instruction at @p eip (fatal on undecodable bytes). */
    const guest::Inst &
    at(uint32_t eip)
    {
        return decoded(eip).inst;
    }

    /**
     * Decoded instruction + OpInfo at @p eip. The returned reference
     * is stable for the lifetime of the reader.
     */
    const DecodedInst &
    decoded(uint32_t eip)
    {
        FastSlot &slot = fast[fastIndex(eip)];
        if (slot.entry && slot.eip == eip)
            return *slot.entry;
        const DecodedInst &entry = decodeSlow(eip);
        slot.eip = eip;
        slot.entry = &entry;
        return entry;
    }

    /**
     * Drop the direct-mapped front cache (the stable backing store
     * stays). Wired to TOL code-cache flushes.
     */
    void
    invalidateCache()
    {
        fast.fill(FastSlot{});
    }

  private:
    static constexpr unsigned kFastBits = 12;

    static size_t
    fastIndex(uint32_t eip)
    {
        // Guest instructions are variable-length with no alignment;
        // use the low bits directly.
        return eip & ((size_t(1) << kFastBits) - 1);
    }

    const DecodedInst &
    decodeSlow(uint32_t eip)
    {
        auto it = cache.find(eip);
        if (it != cache.end())
            return it->second;
        uint8_t buf[guest::kMaxInstLength];
        mem.readBytes(eip, buf, sizeof(buf));
        DecodedInst entry;
        const guest::DecodeStatus status =
            guest::decode(buf, sizeof(buf), entry.inst);
        if (status != guest::DecodeStatus::Ok) {
            // A guest error, not a simulator bug: a trace file can
            // carry an arbitrary program image (the CSUM section
            // authenticates the bytes as written, not as sane), so
            // undecodable code must fail the run, not the process.
            fatal_kind(ErrKind::Guest,
                       "TOL: undecodable guest instruction at 0x%08x "
                       "(%d)", eip, static_cast<int>(status));
        }
        entry.info = &guest::opInfo(entry.inst.op);
        return cache.emplace(eip, entry).first->second;
    }

    struct FastSlot
    {
        uint32_t eip = 0;
        const DecodedInst *entry = nullptr;
    };

    host::Memory &mem;
    std::unordered_map<uint32_t, DecodedInst> cache;
    std::array<FastSlot, size_t(1) << kFastBits> fast{};
};

} // namespace darco::tol

#endif // DARCO_TOL_GUEST_READER_HH
