/**
 * @file
 * Decode-cached reader of guest code out of the co-design component's
 * host memory (where the emulated guest image lives in the low 3 GiB).
 * Shared by the interpreter, the translator's path builders and the
 * flag-liveness scanner. Guest code is immutable (GX86 has no
 * self-modifying-code support; documented in DESIGN.md), so entries
 * never invalidate.
 */

#ifndef DARCO_TOL_GUEST_READER_HH
#define DARCO_TOL_GUEST_READER_HH

#include <unordered_map>

#include "common/logging.hh"
#include "guest/encoding.hh"
#include "host/executor.hh"

namespace darco::tol {

class GuestCodeReader
{
  public:
    explicit GuestCodeReader(host::Memory &memory) : mem(memory) {}

    /** Decoded instruction at @p eip (panics on undecodable bytes). */
    const guest::Inst &
    at(uint32_t eip)
    {
        auto it = cache.find(eip);
        if (it != cache.end())
            return it->second;
        uint8_t buf[guest::kMaxInstLength];
        mem.readBytes(eip, buf, sizeof(buf));
        guest::Inst inst;
        const guest::DecodeStatus status =
            guest::decode(buf, sizeof(buf), inst);
        panic_if(status != guest::DecodeStatus::Ok,
                 "TOL: undecodable guest instruction at 0x%08x (%d)",
                 eip, static_cast<int>(status));
        return cache.emplace(eip, inst).first->second;
    }

  private:
    host::Memory &mem;
    std::unordered_map<uint32_t, guest::Inst> cache;
};

} // namespace darco::tol

#endif // DARCO_TOL_GUEST_READER_HH
