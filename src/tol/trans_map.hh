/**
 * @file
 * Translation map: guest EIP -> host code-cache entry address.
 *
 * Fully resident in simulated memory as an open-addressing hash table
 * (8-byte buckets: {guest tag, host entry}); every probe the C++ code
 * performs is also emitted as a timed load at the bucket's simulated
 * address. The paper identifies exactly this structure's traffic as
 * the "code cache lookup" data-intensive work that pollutes the data
 * cache for indirect-branch-heavy applications (§III-B, §III-D).
 */

#ifndef DARCO_TOL_TRANS_MAP_HH
#define DARCO_TOL_TRANS_MAP_HH

#include <cstdint>

#include "host/address_map.hh"
#include "host/executor.hh"
#include "tol/config.hh"
#include "tol/cost_model.hh"

namespace darco::tol {

class TransMap
{
  public:
    TransMap(const TolConfig &config, host::Memory &memory)
        : cfg(config), mem(memory)
    {}

    /**
     * Look up @p eip. Returns the host entry address or 0.
     * Probe loads (and hashing ALUs) are emitted to @p stream.
     */
    uint32_t lookup(uint32_t eip, CostStream &stream);

    /** Insert or replace a mapping; emits probe+store traffic. */
    void insert(uint32_t eip, uint32_t host_entry, CostStream &stream);

    /** Drop all mappings (code-cache flush). */
    void clear(CostStream &stream);

    uint32_t numEntries() const { return liveEntries; }

  private:
    uint32_t bucketAddr(uint32_t index) const
    {
        return host::amap::kTransMapBase + index * 8;
    }

    uint32_t hashEip(uint32_t eip) const
    {
        return (eip * 2654435761u) >> 8 & (cfg.transMapBuckets - 1);
    }

    const TolConfig &cfg;
    host::Memory &mem;
    uint32_t liveEntries = 0;
};

} // namespace darco::tol

#endif // DARCO_TOL_TRANS_MAP_HH
