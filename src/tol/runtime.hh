/**
 * @file
 * The TOL runtime: the execution-flow state machine of Figure 3.
 *
 * Owns every co-design-component piece — code store + functional
 * executor, translation map, profiler, IBTC, translator, optimizer
 * pipeline, emitter, interpreter, and the cost model — and drives:
 *
 *   lookup -> execute from code cache
 *          -> (miss) counter > IM/BBth ? translate BB : interpret
 *   BB execution counter > BB/SBth -> form + optimize superblock
 *   region exits -> chaining; indirect misses -> lookup + IBTC fill
 *
 * Also tracks guest state location (application register partition
 * vs. the in-memory context block) and emits the fill/spill
 * transition traffic at IM boundaries — the cost the split register
 * file of the paper's host exists to minimize.
 */

#ifndef DARCO_TOL_RUNTIME_HH
#define DARCO_TOL_RUNTIME_HH

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.hh"
#include "guest/assembler.hh"
#include "guest/emulator.hh"
#include "host/code_store.hh"
#include "host/executor.hh"
#include "ir/passes.hh"
#include "ir/regalloc.hh"
#include "tol/config.hh"
#include "tol/cost_model.hh"
#include "tol/flag_scan.hh"
#include "tol/ibtc.hh"
#include "tol/interpreter.hh"
#include "tol/profile.hh"
#include "tol/stats.hh"
#include "tol/trans_map.hh"
#include "tol/translator.hh"

namespace darco::tol {

/**
 * Observer of architectural commit points, used by the co-simulation
 * state checker: called after every interpreter step and after every
 * translated-execution burst with the number of guest instructions
 * retired since the previous call.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;
    /**
     * @param retired     guest instructions retired in this commit
     * @param state       the co-design component's architectural view
     * @param known_flags fmask bits of EFLAGS that are architecturally
     *                    valid in @p state (lazy flags: the rest are
     *                    provably dead)
     */
    virtual void onCommit(uint64_t retired, const guest::State &state,
                          uint8_t known_flags) = 0;
};

class Runtime
{
  public:
    Runtime(const TolConfig &config, host::Memory &memory,
            timing::RecordSink &sink);

    /** Load a guest program image and reset TOL state. */
    void load(const guest::Program &program);

    struct RunResult
    {
        uint64_t guestRetired = 0;
        bool halted = false;
        /** Stopped by @p cancel before HALT/budget: guestRetired and
         *  every stat reflect exactly the work that completed. */
        bool cancelled = false;
    };

    /**
     * Run until HALT or (at least) @p guest_budget instructions.
     * When @p cancel is non-null it is polled at batch boundaries
     * (the dispatch loop and the executor's record-batch flush); a
     * request stops the run at the next clean architectural point
     * and reports partial results (docs/robustness.md).
     */
    RunResult run(uint64_t guest_budget,
                  const common::CancelToken *cancel = nullptr);

    void setObserver(CommitObserver *obs) { observer = obs; }

    const TolStats &stats() const { return tolStats; }
    /** The effective config this runtime was built with, so
     *  harnesses can record what actually ran (e.g. whether the IR
     *  verifier was live) rather than what was requested. */
    const TolConfig &config() const { return cfg; }
    const guest::State &guestState() const { return gstate; }
    uint8_t knownFlags() const { return knownFlagsMask; }
    bool halted() const { return guestHalted; }
    const host::Executor &executor() const { return exec; }
    const CostModel &costModel() const { return cost; }
    /** Translated-region store (for region-dump tooling). */
    host::CodeStore &codeStore() { return store; }

  private:
    // ----- dispatch-loop pieces ---------------------------------------
    uint32_t translateBb(uint32_t eip);
    uint32_t promoteToSuperblock(uint32_t bb_eip);
    void interpretBurst(uint64_t &remaining);
    void flushCodeCache();

    std::vector<PathInst> buildBbPath(uint32_t eip);
    std::vector<PathInst> buildSbPath(uint32_t start_eip);

    void applyFlagMasks(ir::Trace &trace);
    void chargeTranslationWork(CostStream &stream, uint32_t guest_insts,
                               uint32_t first_eip);
    void chargePassWork(CostStream &stream, const ir::PassStats &ps,
                        bool hashed);
    void chargeEmitWork(CostStream &stream, const host::CodeRegion &rgn);

    // ----- state-location management -----------------------------------
    void ensureInRegs();
    void ensureInCtx();
    void syncRegsToState(uint8_t flag_mask);
    void writeContextBlock();

    void commit(uint64_t retired);

    // ----- members -----------------------------------------------------
    const TolConfig &cfg;
    host::Memory &mem;
    timing::RecordSink &sink;

    /**
     * Order-preserving batcher between every TOL record producer
     * (cost streams and the executor) and the timing pipelines;
     * flushed before run() returns so callers observe a fully drained
     * stream.
     */
    timing::RecordBatcher batcher;

    CostModel cost;
    host::CodeStore store;
    host::Executor exec;
    TransMap transMap;
    Profiler profiler;
    Ibtc ibtc;
    GuestCodeReader reader;
    FlagScanner flagScanner;
    Translator translator;
    Interpreter interp;

    guest::State gstate;
    bool guestHalted = false;
    bool stateInRegs = false;
    uint8_t knownFlagsMask = 0;

    struct BbMeta
    {
        uint32_t profBlockAddr = 0;
        host::CodeRegion *region = nullptr;
    };
    std::unordered_map<uint32_t, BbMeta> bbMeta;

    TolStats tolStats;
    CommitObserver *observer = nullptr;

    // Executor counter snapshots for per-mode dynamic accounting.
    uint64_t lastBbRetired = 0;
    uint64_t lastSbRetired = 0;
    uint64_t lastIndirect = 0;

    uint32_t irBufCursor = 0;
};

} // namespace darco::tol

#endif // DARCO_TOL_RUNTIME_HH
