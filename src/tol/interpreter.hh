/**
 * @file
 * The interpreter (IM, §II-A.1).
 *
 * Functionally executes one guest instruction at a time against the
 * guest state and the emulated guest memory embedded in host memory,
 * while emitting the host-instruction stream a real threaded
 * interpreter would execute: instruction-byte fetches (guest code
 * read through the *data* path — a defining property of DBT
 * interpreters), decode-table loads, an indirect handler dispatch
 * (exercising the BTB like a real interpreter loop), guest-context
 * traffic, the actual guest memory accesses, and the loop-back jump.
 */

#ifndef DARCO_TOL_INTERPRETER_HH
#define DARCO_TOL_INTERPRETER_HH

#include "guest/exec.hh"
#include "host/address_map.hh"
#include "host/executor.hh"
#include "tol/config.hh"
#include "tol/cost_model.hh"
#include "tol/guest_reader.hh"

namespace darco::tol {

class Interpreter
{
  public:
    Interpreter(const TolConfig &config, host::Memory &memory,
                GuestCodeReader &code_reader, CostStream &im_stream)
        : cfg(config), mem(memory), reader(code_reader), im(im_stream)
    {}

    /**
     * Interpret exactly one guest instruction.
     * @return the control-flow outcome (taken / halted).
     */
    guest::ExecResult step(guest::State &state);

  private:
    /** Adapter: guest-space accesses against host memory, recorded. */
    struct RecordingMem
    {
        host::Memory &mem;
        CostStream &im;

        uint64_t
        load(uint32_t addr, unsigned size)
        {
            im.load(addr, static_cast<uint8_t>(size));
            return mem.load(addr, size);
        }

        void
        store(uint32_t addr, uint64_t value, unsigned size)
        {
            im.store(addr, static_cast<uint8_t>(size));
            mem.store(addr, value, size);
        }
    };

    const TolConfig &cfg;
    host::Memory &mem;
    GuestCodeReader &reader;
    CostStream &im;
};

} // namespace darco::tol

#endif // DARCO_TOL_INTERPRETER_HH
