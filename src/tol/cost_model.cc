#include "tol/cost_model.hh"

namespace darco::tol {

using host::HOp;
using host::hreg::TolScratch0;
using timing::Record;

uint32_t
CostStream::nextPc()
{
    const uint32_t pc = pcBase + pcOffset;
    pcOffset += host::kHostInstBytes;
    if (pcOffset >= pcBytes)
        pcOffset = 0;
    return pc;
}

uint8_t
CostStream::nextDst()
{
    // Rotate over six TOL scratch registers: adjacent emitted
    // instructions are partly dependent (rs1 = previous dst), partly
    // independent, giving realistic (not perfectly parallel, not
    // fully serial) TOL ILP.
    rotor = static_cast<uint8_t>((rotor + 1) % 6);
    return static_cast<uint8_t>(TolScratch0 + rotor);
}

void
CostStream::emit(Record &rec)
{
    rec.module = mod;
    sink.consume(rec);
    ++emitted;
}

void
CostStream::alu(unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        Record rec;
        rec.pc = nextPc();
        rec.op = HOp::ADD;
        rec.rs1 = lastDst;
        rec.rs2 = static_cast<uint8_t>(TolScratch0 + rotor);
        rec.rd = nextDst();
        lastDst = rec.rd;
        emit(rec);
    }
}

void
CostStream::load(uint32_t addr, uint8_t size)
{
    Record rec;
    rec.pc = nextPc();
    rec.op = HOp::LD;
    rec.isLoad = true;
    rec.memAddr = addr;
    rec.size = size;
    rec.rs1 = lastDst;
    rec.rd = nextDst();
    lastDst = rec.rd;
    emit(rec);
}

void
CostStream::store(uint32_t addr, uint8_t size)
{
    Record rec;
    rec.pc = nextPc();
    rec.op = HOp::ST;
    rec.isStore = true;
    rec.memAddr = addr;
    rec.size = size;
    rec.rs1 = static_cast<uint8_t>(TolScratch0 + rotor);
    rec.rs2 = lastDst;
    emit(rec);
}

void
CostStream::branch(bool taken)
{
    Record rec;
    rec.pc = nextPc();
    rec.op = HOp::BNE;
    rec.isBranch = true;
    rec.isCondBranch = true;
    rec.taken = taken;
    rec.rs1 = lastDst;
    rec.rs2 = host::hreg::Zero;
    if (taken) {
        // Short forward skip inside the window.
        rec.branchTarget = pcBase + ((pcOffset + 16) % pcBytes);
        pcOffset = (pcOffset + 16) % pcBytes;
    }
    emit(rec);
}

void
CostStream::dispatch(uint32_t selector)
{
    Record rec;
    // Direct-threaded dispatch: each handler ends in its own indirect
    // jump, so the BTB learns per-predecessor targets — the standard
    // technique production interpreters use to stay predictable.
    rec.pc = pcBase + 64 + (lastSelector % 64) * 256 + 252;
    rec.op = HOp::JALR;
    rec.isBranch = true;
    rec.isIndirect = true;
    rec.taken = true;
    rec.rs1 = lastDst;
    // Each selector gets its own handler block inside the window.
    rec.branchTarget = pcBase + 64 + (selector % 64) * 256;
    lastSelector = selector;
    pcOffset = (rec.branchTarget - pcBase) % pcBytes;
    emit(rec);
}

void
CostStream::loopBack()
{
    Record rec;
    rec.pc = nextPc();
    rec.op = HOp::JAL;
    rec.isBranch = true;
    rec.taken = true;
    rec.branchTarget = pcBase;
    pcOffset = 0;
    emit(rec);
}

namespace {

using host::amap::kTolCodeBase;

// PC window layout inside the TOL code region. Total TOL code
// footprint ~28 KiB: mostly L1-I resident, as the paper observes.
constexpr uint32_t kImBase = kTolCodeBase + 0x01000;
constexpr uint32_t kImBytes = 0x4800;      // 18 KiB: hub + handlers
constexpr uint32_t kBbmBase = kTolCodeBase + 0x08000;
constexpr uint32_t kBbmBytes = 0x1000;     // 4 KiB translator loop
constexpr uint32_t kSbmBase = kTolCodeBase + 0x0A000;
constexpr uint32_t kSbmBytes = 0x1800;     // 6 KiB optimizer loops
constexpr uint32_t kChainBase = kTolCodeBase + 0x0C000;
constexpr uint32_t kChainBytes = 0x200;
constexpr uint32_t kLookupBase = kTolCodeBase + 0x0D000;
constexpr uint32_t kLookupBytes = 0x200;
constexpr uint32_t kOtherBase = kTolCodeBase + 0x0E000;
constexpr uint32_t kOtherBytes = 0x400;

} // namespace

CostModel::CostModel(timing::RecordSink &sink)
    : im(sink, timing::Module::IM, kImBase, kImBytes),
      bbm(sink, timing::Module::BBM, kBbmBase, kBbmBytes),
      sbm(sink, timing::Module::SBM, kSbmBase, kSbmBytes),
      chain(sink, timing::Module::Chaining, kChainBase, kChainBytes),
      lookup(sink, timing::Module::Lookup, kLookupBase, kLookupBytes),
      other(sink, timing::Module::TolOther, kOtherBase, kOtherBytes)
{}

uint64_t
CostModel::totalEmitted() const
{
    return im.instsEmitted() + bbm.instsEmitted() + sbm.instsEmitted() +
           chain.instsEmitted() + lookup.instsEmitted() +
           other.instsEmitted();
}

} // namespace darco::tol
