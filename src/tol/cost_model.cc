#include "tol/cost_model.hh"

namespace darco::tol {

using host::HOp;
using host::hreg::TolScratch0;
using timing::Record;

uint32_t
CostStream::nextPc()
{
    const uint32_t pc = pcBase + pcOffset;
    pcOffset += host::kHostInstBytes;
    if (pcOffset >= pcBytes)
        pcOffset = 0;
    return pc;
}

uint8_t
CostStream::nextDst()
{
    // Rotate over six TOL scratch registers: adjacent emitted
    // instructions are partly dependent (rs1 = previous dst), partly
    // independent, giving realistic (not perfectly parallel, not
    // fully serial) TOL ILP.
    rotor = static_cast<uint8_t>((rotor + 1) % 6);
    return static_cast<uint8_t>(TolScratch0 + rotor);
}

void
CostStream::buildTemplates()
{
    aluTmpl.op = HOp::ADD;
    aluTmpl.module = mod;

    loadTmpl.op = HOp::LD;
    loadTmpl.isLoad = true;
    loadTmpl.module = mod;

    storeTmpl.op = HOp::ST;
    storeTmpl.isStore = true;
    storeTmpl.module = mod;

    branchTmpl.op = HOp::BNE;
    branchTmpl.isBranch = true;
    branchTmpl.isCondBranch = true;
    branchTmpl.rs2 = host::hreg::Zero;
    branchTmpl.module = mod;

    dispatchTmpl.op = HOp::JALR;
    dispatchTmpl.isBranch = true;
    dispatchTmpl.isIndirect = true;
    dispatchTmpl.taken = true;
    dispatchTmpl.module = mod;

    loopTmpl.op = HOp::JAL;
    loopTmpl.isBranch = true;
    loopTmpl.taken = true;
    loopTmpl.branchTarget = pcBase;
    loopTmpl.module = mod;
}

void
CostStream::alu(unsigned count)
{
    for (unsigned i = 0; i < count; ++i) {
        Record &rec = begin(aluTmpl);
        rec.pc = nextPc();
        rec.rs1 = lastDst;
        rec.rs2 = static_cast<uint8_t>(TolScratch0 + rotor);
        rec.rd = nextDst();
        lastDst = rec.rd;
        end();
    }
}

void
CostStream::load(uint32_t addr, uint8_t size)
{
    Record &rec = begin(loadTmpl);
    rec.pc = nextPc();
    rec.memAddr = addr;
    rec.size = size;
    rec.rs1 = lastDst;
    rec.rd = nextDst();
    lastDst = rec.rd;
    end();
}

void
CostStream::store(uint32_t addr, uint8_t size)
{
    Record &rec = begin(storeTmpl);
    rec.pc = nextPc();
    rec.memAddr = addr;
    rec.size = size;
    rec.rs1 = static_cast<uint8_t>(TolScratch0 + rotor);
    rec.rs2 = lastDst;
    end();
}

void
CostStream::branch(bool taken)
{
    Record &rec = begin(branchTmpl);
    rec.pc = nextPc();
    rec.taken = taken;
    rec.rs1 = lastDst;
    if (taken) {
        // Short forward skip inside the window.
        rec.branchTarget = pcBase + ((pcOffset + 16) % pcBytes);
        pcOffset = (pcOffset + 16) % pcBytes;
    }
    end();
}

void
CostStream::dispatch(uint32_t selector)
{
    Record &rec = begin(dispatchTmpl);
    // Direct-threaded dispatch: each handler ends in its own indirect
    // jump, so the BTB learns per-predecessor targets — the standard
    // technique production interpreters use to stay predictable.
    rec.pc = pcBase + 64 + (lastSelector % 64) * 256 + 252;
    rec.rs1 = lastDst;
    // Each selector gets its own handler block inside the window.
    rec.branchTarget = pcBase + 64 + (selector % 64) * 256;
    lastSelector = selector;
    pcOffset = (rec.branchTarget - pcBase) % pcBytes;
    end();
}

void
CostStream::loopBack()
{
    Record &rec = begin(loopTmpl);
    rec.pc = nextPc();
    pcOffset = 0;
    end();
}

namespace {

using host::amap::kTolCodeBase;

// PC window layout inside the TOL code region. Total TOL code
// footprint ~28 KiB: mostly L1-I resident, as the paper observes.
constexpr uint32_t kImBase = kTolCodeBase + 0x01000;
constexpr uint32_t kImBytes = 0x4800;      // 18 KiB: hub + handlers
constexpr uint32_t kBbmBase = kTolCodeBase + 0x08000;
constexpr uint32_t kBbmBytes = 0x1000;     // 4 KiB translator loop
constexpr uint32_t kSbmBase = kTolCodeBase + 0x0A000;
constexpr uint32_t kSbmBytes = 0x1800;     // 6 KiB optimizer loops
constexpr uint32_t kChainBase = kTolCodeBase + 0x0C000;
constexpr uint32_t kChainBytes = 0x200;
constexpr uint32_t kLookupBase = kTolCodeBase + 0x0D000;
constexpr uint32_t kLookupBytes = 0x200;
constexpr uint32_t kOtherBase = kTolCodeBase + 0x0E000;
constexpr uint32_t kOtherBytes = 0x400;

} // namespace

CostModel::CostModel(timing::RecordSink &sink)
    : im(sink, timing::Module::IM, kImBase, kImBytes),
      bbm(sink, timing::Module::BBM, kBbmBase, kBbmBytes),
      sbm(sink, timing::Module::SBM, kSbmBase, kSbmBytes),
      chain(sink, timing::Module::Chaining, kChainBase, kChainBytes),
      lookup(sink, timing::Module::Lookup, kLookupBase, kLookupBytes),
      other(sink, timing::Module::TolOther, kOtherBase, kOtherBytes)
{}

CostModel::CostModel(timing::RecordBatcher &batcher)
    : im(batcher, timing::Module::IM, kImBase, kImBytes),
      bbm(batcher, timing::Module::BBM, kBbmBase, kBbmBytes),
      sbm(batcher, timing::Module::SBM, kSbmBase, kSbmBytes),
      chain(batcher, timing::Module::Chaining, kChainBase, kChainBytes),
      lookup(batcher, timing::Module::Lookup, kLookupBase,
             kLookupBytes),
      other(batcher, timing::Module::TolOther, kOtherBase, kOtherBytes)
{}

uint64_t
CostModel::totalEmitted() const
{
    return im.instsEmitted() + bbm.instsEmitted() + sbm.instsEmitted() +
           chain.instsEmitted() + lookup.instsEmitted() +
           other.instsEmitted();
}

} // namespace darco::tol
