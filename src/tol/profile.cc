#include "tol/profile.hh"

namespace darco::tol {

uint32_t
Profiler::bumpImTarget(uint32_t eip, CostStream &stream)
{
    CountSlot &cached = countCache[eip & (countCache.size() - 1)];
    if (!cached.count || cached.eip != eip) {
        cached.eip = eip;
        cached.count = &imCounts[eip];
    }
    const uint32_t count = ++*cached.count;
    const uint32_t addr = imCounterAddr(eip);
    stream.routine(0x200);
    // load-increment-store + threshold compare, like real counters.
    stream.load(addr);
    stream.alu(2);
    mem.store32(addr, count);
    stream.store(addr);
    stream.branch(false);
    return count;
}

uint32_t
Profiler::imCount(uint32_t eip) const
{
    auto it = imCounts.find(eip);
    return it == imCounts.end() ? 0 : it->second;
}

uint32_t
Profiler::allocBbBlock()
{
    const uint32_t addr = nextBbBlock;
    nextBbBlock += BbProfileBlock::kSize;
    mem.store32(addr + BbProfileBlock::kExecOffset, 0);
    mem.store32(addr + BbProfileBlock::kTakenOffset, 0);
    mem.store32(addr + BbProfileBlock::kFallthroughOffset, 0);
    return addr;
}

uint32_t
Profiler::readWord(uint32_t addr, CostStream &stream)
{
    stream.load(addr);
    return mem.load32(addr);
}

void
Profiler::clearImCounters()
{
    imCounts.clear();
    countCache.fill(CountSlot{});
}

} // namespace darco::tol
