#include "tol/trans_map.hh"

#include "common/logging.hh"

namespace darco::tol {

uint32_t
TransMap::lookup(uint32_t eip, CostStream &stream)
{
    stream.routine(0);
    stream.alu(cfg.lookupHashAlus);
    uint32_t index = hashEip(eip);
    for (uint32_t probes = 0; probes < cfg.transMapBuckets; ++probes) {
        const uint32_t addr = bucketAddr(index);
        const uint32_t tag = mem.load32(addr);
        stream.load(addr);
        if (tag == eip) {
            const uint32_t entry = mem.load32(addr + 4);
            stream.load(addr + 4);
            stream.branch(false);  // found: loop not re-taken
            return entry;
        }
        if (tag == 0) {
            stream.branch(false);
            return 0;
        }
        stream.branch(true);       // collision: probe again
        index = (index + 1) & (cfg.transMapBuckets - 1);
    }
    panic("translation map full during lookup");
}

void
TransMap::insert(uint32_t eip, uint32_t host_entry, CostStream &stream)
{
    panic_if(eip == 0, "cannot map guest EIP 0");
    stream.routine(0x80);
    stream.alu(cfg.lookupHashAlus);
    uint32_t index = hashEip(eip);
    for (uint32_t probes = 0; probes < cfg.transMapBuckets; ++probes) {
        const uint32_t addr = bucketAddr(index);
        const uint32_t tag = mem.load32(addr);
        stream.load(addr);
        if (tag == 0 || tag == eip) {
            if (tag == 0)
                ++liveEntries;
            mem.store32(addr, eip);
            mem.store32(addr + 4, host_entry);
            stream.store(addr);
            stream.store(addr + 4);
            return;
        }
        stream.branch(true);
        index = (index + 1) & (cfg.transMapBuckets - 1);
    }
    panic("translation map full during insert");
}

void
TransMap::clear(CostStream &stream)
{
    // Full flush: zero every bucket tag. Charge a store per 8 buckets
    // (real implementations memset whole cache lines).
    for (uint32_t i = 0; i < cfg.transMapBuckets; ++i) {
        mem.store32(bucketAddr(i), 0);
        mem.store32(bucketAddr(i) + 4, 0);
        if ((i & 7) == 0)
            stream.store(bucketAddr(i));
    }
    liveEntries = 0;
}

} // namespace darco::tol
