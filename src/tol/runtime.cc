#include "tol/runtime.hh"

#include <algorithm>

#include "analysis/verify.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "ir/passes.hh"
#include "ir/scheduler.hh"
#include "tol/emitter.hh"

namespace darco::tol {

namespace g = darco::guest;
namespace amap = darco::host::amap;
namespace hreg = darco::host::hreg;
namespace hctx = darco::host::ctx;

Runtime::Runtime(const TolConfig &config, host::Memory &memory,
                 timing::RecordSink &record_sink)
    : cfg(config), mem(memory), sink(record_sink),
      batcher(record_sink), cost(batcher),
      store(amap::kCodeCacheBase,
            amap::kCodeCacheBase + config.codeCacheBytes),
      exec(store, memory, batcher),
      transMap(config, memory),
      profiler(config, memory),
      ibtc(config, memory),
      reader(memory),
      flagScanner(reader),
      translator(config),
      interp(config, memory, reader, cost.im)
{
    panic_if(config.codeCacheBytes >
             amap::kCodeCacheLimit - amap::kCodeCacheBase,
             "code cache larger than its address window");
    if (config.sbPartitionPercent)
        store.partitionForSuperblocks(config.sbPartitionPercent);
}

void
Runtime::load(const guest::Program &program)
{
    program.loadInto(mem);
    gstate = program.initialState();
    guestHalted = false;
    stateInRegs = false;
    knownFlagsMask = 0;

    // Reserved application-partition registers (set once at start).
    exec.x[hreg::SbThreshold] = cfg.bbToSbThreshold;
    exec.x[hreg::IbtcBase] = amap::kIbtcBase;
    exec.x[hreg::CtxBase] = amap::kContextBase;
    writeContextBlock();

    // TOL initialization work (one-off).
    cost.other.alu(64);
    batcher.flush();
}

// ---------------------------------------------------------------------
// State-location management
// ---------------------------------------------------------------------

void
Runtime::writeContextBlock()
{
    const uint32_t base = amap::kContextBase;
    for (unsigned r = 0; r < g::NumGprs; ++r)
        mem.store32(base + hctx::gprAddr(r), gstate.gpr[r]);
    mem.store32(base + hctx::flagAddr(0), gstate.eflags);
    mem.store32(base + hctx::kEipOffset, gstate.eip);
    for (unsigned r = 0; r < g::NumFprs; ++r)
        mem.storeDouble(base + hctx::fprAddr(r), gstate.fpr[r]);
}

void
Runtime::ensureInRegs()
{
    // Functional copy is unconditional (registers are authoritative
    // while translated code runs); the *transition traffic* is only
    // charged when the state actually crosses from the context block.
    for (unsigned r = 0; r < g::NumGprs; ++r)
        exec.x[hreg::guestGpr(r)] = gstate.gpr[r];
    exec.x[hreg::FlagZ] = (gstate.eflags & g::flag::ZF) ? 1 : 0;
    exec.x[hreg::FlagS] = (gstate.eflags & g::flag::SF) ? 1 : 0;
    exec.x[hreg::FlagC] = (gstate.eflags & g::flag::CF) ? 1 : 0;
    exec.x[hreg::FlagO] = (gstate.eflags & g::flag::OF) ? 1 : 0;
    for (unsigned r = 0; r < g::NumFprs; ++r)
        exec.f[hreg::guestFpr(r)] = gstate.fpr[r];

    if (!stateInRegs) {
        ++tolStats.contextFills;
        const uint32_t base = amap::kContextBase;
        for (unsigned r = 0; r < g::NumGprs; ++r)
            cost.other.load(base + hctx::gprAddr(r));
        cost.other.load(base + hctx::flagAddr(0));
        cost.other.alu(4);  // unpack flag bits
        for (unsigned r = 0; r < g::NumFprs; ++r)
            cost.other.load(base + hctx::fprAddr(r), 8);
        stateInRegs = true;
    }
}

void
Runtime::ensureInCtx()
{
    if (stateInRegs) {
        ++tolStats.contextSpills;
        const uint32_t base = amap::kContextBase;
        for (unsigned r = 0; r < g::NumGprs; ++r)
            cost.other.store(base + hctx::gprAddr(r));
        cost.other.alu(4);  // pack flag bits
        cost.other.store(base + hctx::flagAddr(0));
        for (unsigned r = 0; r < g::NumFprs; ++r)
            cost.other.store(base + hctx::fprAddr(r), 8);
        stateInRegs = false;
    }
    writeContextBlock();
}

void
Runtime::syncRegsToState(uint8_t flag_mask)
{
    for (unsigned r = 0; r < g::NumGprs; ++r)
        gstate.gpr[r] = exec.x[hreg::guestGpr(r)];
    for (unsigned r = 0; r < g::NumFprs; ++r)
        gstate.fpr[r] = exec.f[hreg::guestFpr(r)];

    auto apply = [&](uint8_t bit, uint8_t host_reg, uint32_t eflag) {
        if (!(flag_mask & bit))
            return;
        if (exec.x[host_reg])
            gstate.eflags |= eflag;
        else
            gstate.eflags &= ~eflag;
    };
    apply(ir::fmask::Z, hreg::FlagZ, g::flag::ZF);
    apply(ir::fmask::S, hreg::FlagS, g::flag::SF);
    apply(ir::fmask::C, hreg::FlagC, g::flag::CF);
    apply(ir::fmask::O, hreg::FlagO, g::flag::OF);
    knownFlagsMask = flag_mask;
}

void
Runtime::commit(uint64_t retired)
{
    if (observer && retired)
        observer->onCommit(retired, gstate, knownFlagsMask);
}

// ---------------------------------------------------------------------
// Cost charging helpers
// ---------------------------------------------------------------------

void
Runtime::chargeTranslationWork(CostStream &stream, uint32_t guest_insts,
                               uint32_t first_eip)
{
    // Fetch guest bytes (as data), decode, generate IR.
    uint32_t eip = first_eip;
    for (uint32_t i = 0; i < guest_insts; ++i) {
        stream.routine(0);
        stream.load(eip + 8 * (i % 4));  // approximate fetch locality
        stream.alu(cfg.bbmDecodeAlus);
        const uint32_t ir_addr =
            amap::kWorkBase + 0x10000 + (irBufCursor++ % 4096) * 16;
        stream.alu(cfg.bbmIrGenAlusPerInst);
        stream.store(ir_addr, 8);
    }
}

void
Runtime::chargePassWork(CostStream &stream, const ir::PassStats &ps,
                        bool hashed)
{
    for (uint32_t i = 0; i < ps.instsVisited; ++i) {
        stream.routine(0x400);
        const uint32_t ir_addr =
            amap::kWorkBase + 0x10000 + (i % 4096) * 16;
        stream.load(ir_addr, 8);
        stream.alu(cfg.passVisitAlus);
        if (hashed && (i & 1)) {
            const uint32_t hash_addr =
                amap::kWorkBase + 0x40000 + ((i * 2654435761u) & 0x3FFF);
            stream.load(hash_addr);
            stream.alu(cfg.cseHashAlus);
        }
    }
}

void
Runtime::chargeEmitWork(CostStream &stream, const host::CodeRegion &rgn)
{
    for (size_t i = 0; i < rgn.insts.size(); ++i) {
        stream.routine(0x800);
        stream.alu(cfg.emitAlusPerInst);
        stream.store(rgn.hostBase +
                     static_cast<uint32_t>(i) * host::kHostInstBytes);
    }
}

// ---------------------------------------------------------------------
// Path building
// ---------------------------------------------------------------------

std::vector<PathInst>
Runtime::buildBbPath(uint32_t eip)
{
    std::vector<PathInst> path;
    uint32_t cur = eip;
    for (uint32_t n = 0; n < cfg.maxBbGuestInsts; ++n) {
        const g::Inst &inst = reader.at(cur);
        path.push_back(PathInst{inst, cur, false});
        if (g::opInfo(inst.op).isBranch || inst.op == g::Op::HALT)
            break;
        cur += inst.length;
    }
    return path;
}

std::vector<PathInst>
Runtime::buildSbPath(uint32_t start_eip)
{
    std::vector<PathInst> path;
    std::unordered_set<uint32_t> visited;
    uint32_t cur = start_eip;

    while (path.size() < cfg.maxSbGuestInsts) {
        std::vector<PathInst> bb = buildBbPath(cur);
        if (path.size() + bb.size() > cfg.maxSbGuestInsts && !path.empty())
            break;
        bool overlap = false;
        for (const PathInst &pi : bb) {
            if (visited.count(pi.eip)) {
                overlap = true;
                break;
            }
        }
        if (overlap)
            break;
        for (const PathInst &pi : bb)
            visited.insert(pi.eip);
        const size_t bb_first = path.size();
        path.insert(path.end(), bb.begin(), bb.end());

        PathInst &term = path.back();
        const g::Inst &ti = term.inst;
        const uint32_t next = term.eip + ti.length;
        uint32_t follow = 0;

        switch (ti.op) {
          case g::Op::JMP:
            follow = next + static_cast<uint32_t>(ti.imm);
            break;
          case g::Op::CALL:
            if (!cfg.sbFollowCalls)
                return path;
            follow = next + static_cast<uint32_t>(ti.imm);
            break;
          case g::Op::JCC: {
            // Consult the BB's edge profile for the bias.
            auto it = bbMeta.find(cur);
            if (it == bbMeta.end())
                return path;
            const uint32_t pb = it->second.profBlockAddr;
            const uint32_t taken = profiler.readWord(
                pb + BbProfileBlock::kTakenOffset, cost.sbm);
            const uint32_t fall = profiler.readWord(
                pb + BbProfileBlock::kFallthroughOffset, cost.sbm);
            const uint32_t total = taken + fall;
            if (total < cfg.sbMinEdgeSamples)
                return path;
            const double bias =
                static_cast<double>(taken) / static_cast<double>(total);
            if (bias >= cfg.sbBranchBias) {
                term.followTaken = true;
                follow = next + static_cast<uint32_t>(ti.imm);
            } else if (1.0 - bias >= cfg.sbBranchBias) {
                term.followTaken = false;
                follow = next;
            } else {
                return path;
            }
            break;
          }
          case g::Op::JMPI:
          case g::Op::CALLI:
          case g::Op::RET:
          case g::Op::HALT:
            return path;
          default:
            // BB cut by the length cap: continue at the next address.
            follow = next;
            break;
        }

        (void)bb_first;
        if (visited.count(follow))
            break;
        cur = follow;
    }
    return path;
}

// ---------------------------------------------------------------------
// Translation / optimization
// ---------------------------------------------------------------------

void
Runtime::applyFlagMasks(ir::Trace &trace)
{
    for (ir::IrExit &exit : trace.exits) {
        if (exit.halt) {
            exit.flagMask = 0;
        } else if (exit.indirect) {
            exit.flagMask = ir::fmask::All;
        } else {
            exit.flagMask = flagScanner.liveFlagsAt(exit.guestTarget);
        }
    }
}

void
Runtime::flushCodeCache()
{
    ++tolStats.codeCacheFlushes;
    store.flush();
    transMap.clear(cost.other);
    ibtc.clear(cost.other);
    bbMeta.clear();
    profiler.clearImCounters();
    reader.invalidateCache();
    cost.other.alu(256);  // flush bookkeeping
}

uint32_t
Runtime::translateBb(uint32_t eip)
{
    std::vector<PathInst> path = buildBbPath(eip);
    chargeTranslationWork(cost.bbm, static_cast<uint32_t>(path.size()),
                          eip);

    ir::Trace trace = translator.translate(path);
    applyFlagMasks(trace);
    if (cfg.verifyIr)
        analysis::checkTrace(trace, "bbm/translate");

    ir::PassStats ps;
    if (cfg.enableBbmOpts) {
        // The paper's BBM "simple optimizations": constant propagation
        // and dead code elimination (§III-A).
        ir::constantPropagation(trace, &ps);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "bbm/const_prop");
        ir::deadCodeElimination(trace, &ps);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "bbm/dce");
        chargePassWork(cost.bbm, ps, false);
    }

    const ir::Allocation alloc = ir::allocateRegisters(trace);
    cost.bbm.alu(cfg.regallocAlusPerInterval *
                 static_cast<uint32_t>(trace.numVregs()));
    if (cfg.verifyIr)
        analysis::checkAllocation(trace, alloc, "bbm/regalloc");

    const bool cond_term = path.back().inst.op == g::Op::JCC;
    EmitOptions opts;
    opts.kind = host::RegionKind::BasicBlock;
    opts.bbEntryProfiling = true;
    opts.profBlockAddr = profiler.allocBbBlock();
    opts.edgeProfiling = cond_term;
    opts.enableIbtc = cfg.enableIbtc;
    opts.ibtcMask = cfg.ibtcEntries / cfg.ibtcWays - 1;
    opts.ibtcWays = cfg.ibtcWays;

    EmitStats es;
    auto region = emitRegion(trace, alloc, opts, &es);
    host::CodeRegion *installed = store.install(std::move(region));
    if (!installed) {
        flushCodeCache();
        auto retry = emitRegion(trace, alloc, opts, &es);
        installed = store.install(std::move(retry));
        panic_if(!installed, "code cache too small for one region");
    }
    chargeEmitWork(cost.bbm, *installed);

    transMap.insert(eip, installed->hostBase, cost.bbm);
    bbMeta[eip] = BbMeta{opts.profBlockAddr, installed};

    ++tolStats.bbsTranslated;
    tolStats.guestInstsTranslatedBb += path.size();
    tolStats.hostInstsEmittedBb += es.hostInsts;
    for (const PathInst &pi : path)
        tolStats.noteStatic(pi.eip, Mode::BBM);

    return installed->hostBase;
}

uint32_t
Runtime::promoteToSuperblock(uint32_t bb_eip)
{
    ++tolStats.promotions;

    auto meta_it = bbMeta.find(bb_eip);
    if (meta_it != bbMeta.end() && meta_it->second.region &&
        meta_it->second.region->superseded) {
        // Stale promotion through an old chain; the SB already exists.
        const uint32_t entry = transMap.lookup(bb_eip, cost.lookup);
        return entry;
    }

    std::vector<PathInst> path = buildSbPath(bb_eip);
    chargeTranslationWork(cost.sbm, static_cast<uint32_t>(path.size()),
                          bb_eip);

    ir::Trace trace = translator.translate(path);
    applyFlagMasks(trace);
    if (cfg.verifyIr)
        analysis::checkTrace(trace, "sbm/translate");

    if (cfg.enableSbmOpts) {
        ir::PassStats ps;
        ir::copyPropagation(trace, &ps);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "sbm/copy_prop");
        ir::constantPropagation(trace, &ps);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "sbm/const_prop");
        chargePassWork(cost.sbm, ps, false);
        ir::PassStats cse;
        ir::commonSubexpressionElimination(trace, &cse);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "sbm/cse");
        chargePassWork(cost.sbm, cse, true);
        ir::PassStats post;
        ir::copyPropagation(trace, &post);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "sbm/copy_prop2");
        ir::deadCodeElimination(trace, &post);
        if (cfg.verifyIr)
            analysis::checkTrace(trace, "sbm/dce");
        chargePassWork(cost.sbm, post, false);
    }
    if (cfg.enableScheduling) {
        // The verifier needs the pre-schedule order to re-derive the
        // dependence edges the schedule must respect; the copy exists
        // only under verifyIr (translation is off the hot path, but
        // perf baselines still run with verification off).
        ir::Trace preSchedule;
        if (cfg.verifyIr)
            preSchedule = trace;
        ir::ScheduleStats ss;
        ir::scheduleTrace(trace, &ss);
        cost.sbm.alu(cfg.schedAlusPerEdge * ss.edgesBuilt);
        if (cfg.verifyIr) {
            analysis::checkSchedule(preSchedule, trace, "sbm/scheduler");
            analysis::checkTrace(trace, "sbm/scheduler",
                                 /*scheduled=*/true);
        }
    }

    const ir::Allocation alloc = ir::allocateRegisters(trace);
    cost.sbm.alu(cfg.regallocAlusPerInterval *
                 static_cast<uint32_t>(trace.numVregs()));
    if (cfg.verifyIr)
        analysis::checkAllocation(trace, alloc, "sbm/regalloc");

    EmitOptions opts;
    opts.kind = host::RegionKind::Superblock;
    opts.enableIbtc = cfg.enableIbtc;
    opts.ibtcMask = cfg.ibtcEntries / cfg.ibtcWays - 1;
    opts.ibtcWays = cfg.ibtcWays;

    EmitStats es;
    auto region = emitRegion(trace, alloc, opts, &es);
    host::CodeRegion *installed = store.install(std::move(region));
    if (!installed) {
        flushCodeCache();
        // The flush dropped the triggering BB as well; retranslate the
        // superblock from scratch into the empty cache.
        auto retry = emitRegion(trace, alloc, opts, &es);
        installed = store.install(std::move(retry));
        panic_if(!installed, "code cache too small for one superblock");
    }
    chargeEmitWork(cost.sbm, *installed);

    transMap.insert(bb_eip, installed->hostBase, cost.sbm);

    // Forward the old BB's entry to the superblock so stale chains
    // into the BB reach the optimized code (one extra jump).
    meta_it = bbMeta.find(bb_eip);
    if (meta_it != bbMeta.end() && meta_it->second.region &&
        !meta_it->second.region->superseded) {
        host::CodeRegion *old_bb = meta_it->second.region;
        host::HostInst fwd;
        fwd.op = host::HOp::JAL;
        fwd.rd = hreg::Zero;
        fwd.imm = static_cast<int64_t>(installed->hostBase);
        fwd.attr = static_cast<uint8_t>(timing::Module::Chaining);
        old_bb->insts[0] = fwd;
        old_bb->rebuildTemplate(0);
        old_bb->superseded = true;
        ++tolStats.entryForwards;
        cost.chain.alu(cfg.chainPatchAlus);
        cost.chain.store(old_bb->hostBase);
    }

    ++tolStats.sbsCreated;
    tolStats.guestInstsTranslatedSb += path.size();
    tolStats.hostInstsEmittedSb += es.hostInsts;
    for (const PathInst &pi : path)
        tolStats.noteStatic(pi.eip, Mode::SBM);

    return installed->hostBase;
}

// ---------------------------------------------------------------------
// Interpretation
// ---------------------------------------------------------------------

void
Runtime::interpretBurst(uint64_t &remaining)
{
    ensureInCtx();
    while (remaining > 0) {
        const uint32_t eip = gstate.eip;
        const DecodedInst &dec = reader.decoded(eip);
        const g::Inst &inst = dec.inst;
        const g::OpInfo &info = *dec.info;

        if (inst.op == g::Op::HALT) {
            guestHalted = true;
            return;
        }

        const g::ExecResult result = interp.step(gstate);
        ++tolStats.dynIm;
        tolStats.noteStatic(eip, Mode::IM);
        if (info.isIndirect)
            ++tolStats.guestIndirectBranches;
        --remaining;

        // EFLAGS maintained precisely while interpreting.
        uint8_t written = 0;
        if (info.flagsWritten & g::flag::ZF)
            written |= ir::fmask::Z;
        if (info.flagsWritten & g::flag::SF)
            written |= ir::fmask::S;
        if ((info.flagsWritten & g::flag::CF) && !info.keepsCf)
            written |= ir::fmask::C;
        if (info.flagsWritten & g::flag::OF)
            written |= ir::fmask::O;
        knownFlagsMask |= written;

        commit(1);

        if (result.halted) {
            guestHalted = true;
            return;
        }
        if (info.isBranch)
            return;  // BB boundary: back to the dispatch loop
    }
}

// ---------------------------------------------------------------------
// Main dispatch loop (Figure 3)
// ---------------------------------------------------------------------

Runtime::RunResult
Runtime::run(uint64_t guest_budget, const common::CancelToken *cancel)
{
    RunResult result;
    uint64_t remaining = guest_budget;
    uint32_t resume_entry = 0;

    // Cancellation reaches translated code through the executor's
    // record-batch flush; the dispatch loop itself is the batch
    // boundary for interpreted execution and runtime services.
    exec.setCancelToken(cancel);

    // Fault injection: a stalled run re-earns its budget forever, so
    // only the watchdog's cancellation can end it (livelock model).
    // Honored only for cancellable runs — an unwatched stall would
    // hang the process rather than test anything.
    const bool stall_injected =
        cancel && faultinject::fire(faultinject::Point::GuestStall);

    // A stalled run stays in the loop even when an executor Budget
    // stop zeroed `remaining` — the refill below re-arms it, so only
    // cancellation (or HALT) can end the run.
    while ((remaining > 0 || stall_injected) && !guestHalted) {
        if (cancel) {
            if (cancel->requested()) {
                result.cancelled = true;
                break;
            }
            if (stall_injected)
                remaining = guest_budget;
        }
        if (faultinject::fire(faultinject::Point::MidRunThrow)) {
            // det-lint: allow(models an unclassified engine fatal —
            // the taxonomy must map it to Internal/never-retried)
            fatal("fault injection: mid-run failure in the dispatch "
                  "loop");
        }
        ++tolStats.dispatchLoops;
        cost.other.alu(2);  // dispatch-loop control flow

        uint32_t entry = resume_entry;
        resume_entry = 0;
        if (!entry) {
            ++tolStats.mapLookups;
            entry = transMap.lookup(gstate.eip, cost.lookup);
            if (entry)
                ++tolStats.mapHits;
        }

        if (!entry) {
            const uint32_t cnt =
                profiler.bumpImTarget(gstate.eip, cost.im);
            if (cnt > cfg.imToBbThreshold) {
                resume_entry = translateBb(gstate.eip);
            } else {
                const uint64_t before = remaining;
                interpretBurst(remaining);
                result.guestRetired += before - remaining;
            }
            continue;
        }

        ensureInRegs();
        const host::Executor::Stop stop = exec.run(entry, remaining);
        const uint64_t retired = exec.lastGuestRetired();
        result.guestRetired += retired;
        remaining -= std::min<uint64_t>(retired, remaining);

        // Per-mode dynamic accounting from executor deltas.
        tolStats.dynBbm += exec.bbGuestRetired() - lastBbRetired;
        tolStats.dynSbm += exec.sbGuestRetired() - lastSbRetired;
        lastBbRetired = exec.bbGuestRetired();
        lastSbRetired = exec.sbGuestRetired();
        tolStats.guestIndirectBranches +=
            exec.indirectRetired() - lastIndirect;
        lastIndirect = exec.indirectRetired();

        switch (stop.reason) {
          case host::Executor::StopReason::Dispatch: {
            host::ExitInfo &exit = stop.region->exits[stop.exitId];
            const uint32_t target = exec.x[hreg::ExitTarget];
            syncRegsToState(exit.flagMask);
            gstate.eip = target;
            commit(retired);
            cost.other.alu(3);  // service entry / exit
            if (cfg.enableChaining && !exit.chained && !exit.indirect) {
                ++tolStats.mapLookups;
                const uint32_t succ =
                    transMap.lookup(target, cost.lookup);
                if (succ) {
                    ++tolStats.mapHits;
                    stop.region->insts[exit.branchIndex].imm =
                        static_cast<int64_t>(succ);
                    exit.chained = true;
                    ++tolStats.chainsPatched;
                    cost.chain.alu(cfg.chainPatchAlus);
                    cost.chain.store(
                        stop.region->hostBase +
                        exit.branchIndex * host::kHostInstBytes);
                    resume_entry = succ;
                }
            }
            break;
          }

          case host::Executor::StopReason::IbtcMiss: {
            host::ExitInfo &exit = stop.region->exits[stop.exitId];
            const uint32_t target = exec.x[hreg::ExitTarget];
            syncRegsToState(exit.flagMask);
            gstate.eip = target;
            commit(retired);
            ++tolStats.ibtcMisses;
            ++tolStats.guestIndirectBranches;
            ++tolStats.mapLookups;
            const uint32_t succ = transMap.lookup(target, cost.lookup);
            if (succ) {
                ++tolStats.mapHits;
                if (cfg.enableIbtc) {
                    ibtc.fill(target, succ, cost.lookup);
                    ++tolStats.ibtcFills;
                }
                resume_entry = succ;
            }
            cost.other.alu(4);  // transition overhead
            break;
          }

          case host::Executor::StopReason::Promote: {
            // The prologue fires before any body instruction, so the
            // architectural state equals the region-entry state.
            syncRegsToState(0);
            gstate.eip = stop.region->guestEntry;
            commit(retired);
            resume_entry = promoteToSuperblock(stop.region->guestEntry);
            break;
          }

          case host::Executor::StopReason::Halt: {
            syncRegsToState(0);
            gstate.eip = exec.x[hreg::ExitTarget];
            commit(retired);
            guestHalted = true;
            break;
          }

          case host::Executor::StopReason::Budget: {
            syncRegsToState(0);
            gstate.eip = stop.guestEip;
            commit(retired);
            remaining = 0;
            break;
          }
        }
    }

    // A cancellation honored inside the executor exits the loop
    // through the ordinary Budget stop; detect it here so both stop
    // paths report the same way.
    if (cancel && cancel->requested() && !guestHalted)
        result.cancelled = true;

    // Indirect-branch retirements taken through translated code (IBTC
    // hits exit via JALR and never reach the runtime).
    batcher.flush();
    result.halted = guestHalted;
    return result;
}

} // namespace darco::tol
