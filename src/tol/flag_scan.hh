/**
 * @file
 * Flag-liveness oracle: bounded forward scan of guest code.
 *
 * liveFlagsAt(eip) returns the set of guest flags (Z,S,C,O as fmask
 * bits) that may be consumed before being redefined on some path
 * starting at eip. The translator uses it to decide which flag-vreg
 * definitions must survive DCE at each region exit; anything it
 * cannot prove dead within the scan budget is conservatively live.
 */

#ifndef DARCO_TOL_FLAG_SCAN_HH
#define DARCO_TOL_FLAG_SCAN_HH

#include <cstdint>
#include <unordered_map>

#include "ir/ir.hh"
#include "tol/guest_reader.hh"

namespace darco::tol {

class FlagScanner
{
  public:
    explicit FlagScanner(GuestCodeReader &code_reader)
        : reader(code_reader)
    {}

    /** fmask bits possibly live at @p eip. */
    uint8_t liveFlagsAt(uint32_t eip);

  private:
    uint8_t scan(uint32_t eip, uint8_t remaining, unsigned &budget,
                 unsigned depth);

    GuestCodeReader &reader;
    std::unordered_map<uint32_t, uint8_t> memo;
};

} // namespace darco::tol

#endif // DARCO_TOL_FLAG_SCAN_HH
