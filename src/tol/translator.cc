#include "tol/translator.hh"

#include "common/logging.hh"

namespace darco::tol {

using namespace ir;
namespace g = darco::guest;

namespace {

/** How the most recent in-trace flag producer can fuse with JCC. */
enum class FlagKind : uint8_t {
    None = 0,
    SubLike,     ///< CMP/SUB: full condition set from (a, b, r)
    AddLike,     ///< ADD: E/NE/S/NS from r; B/AE via (r <u a)
    ResultOnly,  ///< logic/shift/imul/inc/dec/neg: E/NE/S/NS from r
};

/** Trace under construction. */
struct Build
{
    explicit Build(const TolConfig &config) : cfg(config) {}

    const TolConfig &cfg;
    Trace trace;
    uint16_t guestIndex = 0;

    // Flag-producer tracking for fusion (temps are SSA-stable).
    FlagKind fkind = FlagKind::None;
    Vreg fa = kNoVreg;   ///< first operand snapshot
    Vreg fb = kNoVreg;   ///< second operand snapshot
    Vreg fr = kNoVreg;   ///< result

    Vreg
    temp()
    {
        return trace.newTemp(RegClass::Int);
    }

    Vreg
    ftemp()
    {
        return trace.newTemp(RegClass::Fp);
    }

    IrInst &
    put(IrOp op)
    {
        IrInst inst;
        inst.op = op;
        inst.guestIndex = guestIndex;
        trace.insts.push_back(inst);
        return trace.insts.back();
    }

    Vreg
    ldi(int64_t value)
    {
        const Vreg t = temp();
        IrInst &inst = put(IrOp::LDI);
        inst.dst = t;
        inst.imm = value;
        return t;
    }

    Vreg
    alu(IrOp op, Vreg s1, Vreg s2)
    {
        const Vreg t = temp();
        IrInst &inst = put(op);
        inst.dst = t;
        inst.src1 = s1;
        inst.src2 = s2;
        return t;
    }

    Vreg
    aluImm(IrOp op, Vreg s1, int64_t imm)
    {
        const Vreg t = temp();
        IrInst &inst = put(op);
        inst.dst = t;
        inst.src1 = s1;
        inst.useImm = true;
        inst.imm = imm;
        return t;
    }

    void
    movTo(Vreg dst, Vreg src)
    {
        IrInst &inst = put(IrOp::MOV);
        inst.dst = dst;
        inst.src1 = src;
    }

    void
    fmovTo(Vreg dst, Vreg src)
    {
        IrInst &inst = put(IrOp::FMOV);
        inst.dst = dst;
        inst.src1 = src;
    }

    Vreg
    snapshotGpr(unsigned reg)
    {
        const Vreg t = temp();
        movTo(t, vGpr(reg));
        return t;
    }

    Vreg
    snapshotFpr(unsigned reg)
    {
        const Vreg t = ftemp();
        fmovTo(t, vFpr(reg));
        return t;
    }

    /** Effective address of a memory operand, as a (vreg, disp) pair. */
    struct Addr
    {
        Vreg base;
        int32_t disp;
    };

    Addr
    memAddr(const g::MemOperand &mem)
    {
        if (!mem.hasIndex)
            return Addr{vGpr(mem.base), mem.disp};
        Vreg scaled = vGpr(mem.index);
        if (mem.scaleLog2)
            scaled = aluImm(IrOp::SLL, vGpr(mem.index), mem.scaleLog2);
        const Vreg sum = alu(IrOp::ADD, vGpr(mem.base), scaled);
        return Addr{sum, mem.disp};
    }

    Vreg
    load(const Addr &addr, uint8_t size)
    {
        const Vreg t = temp();
        IrInst &inst = put(IrOp::LD);
        inst.dst = t;
        inst.src1 = addr.base;
        inst.imm = addr.disp;
        inst.size = size;
        return t;
    }

    void
    store(const Addr &addr, Vreg data, uint8_t size)
    {
        IrInst &inst = put(IrOp::ST);
        inst.src1 = addr.base;
        inst.src2 = data;
        inst.imm = addr.disp;
        inst.size = size;
    }

    Vreg
    fload(const Addr &addr)
    {
        const Vreg t = ftemp();
        IrInst &inst = put(IrOp::FLD);
        inst.dst = t;
        inst.src1 = addr.base;
        inst.imm = addr.disp;
        inst.size = 8;
        return t;
    }

    void
    fstore(const Addr &addr, Vreg data)
    {
        IrInst &inst = put(IrOp::FST);
        inst.src1 = addr.base;
        inst.src2 = data;
        inst.imm = addr.disp;
        inst.size = 8;
    }

    /** Integer source of an RR/RI/RM instruction, snapshotted. */
    Vreg
    intSrc(const g::Inst &gi)
    {
        switch (gi.form) {
          case g::Form::RR: return snapshotGpr(gi.reg2);
          case g::Form::RI: return ldi(gi.imm);
          case g::Form::RM: return load(memAddr(gi.mem), 4);
          default: panic("intSrc: bad form for %s", g::opName(gi.op));
        }
    }

    /** FP source of an RR/RM instruction. */
    Vreg
    fpSrc(const g::Inst &gi)
    {
        if (gi.form == g::Form::RR)
            return snapshotFpr(gi.reg2);
        return fload(memAddr(gi.mem));
    }

    /** Value of an R/M single operand. */
    Vreg
    rmValue(const g::Inst &gi)
    {
        if (gi.form == g::Form::R)
            return snapshotGpr(gi.reg1);
        return load(memAddr(gi.mem), 4);
    }

    // ----- flag materialization ------------------------------------------

    void
    setZS(Vreg result)
    {
        IrInst &z = put(IrOp::SLTU);
        z.dst = vFlagZ;
        z.src1 = result;
        z.useImm = true;
        z.imm = 1;
        IrInst &s = put(IrOp::SRL);
        s.dst = vFlagS;
        s.src1 = result;
        s.useImm = true;
        s.imm = 31;
    }

    void
    clearCO()
    {
        IrInst &c = put(IrOp::LDI);
        c.dst = vFlagC;
        c.imm = 0;
        IrInst &o = put(IrOp::LDI);
        o.dst = vFlagO;
        o.imm = 0;
    }

    void
    flagsAdd(Vreg a, Vreg b, Vreg r)
    {
        setZS(r);
        IrInst &c = put(IrOp::SLTU);   // CF = r <u a
        c.dst = vFlagC;
        c.src1 = r;
        c.src2 = a;
        // OF = ((a^r) & ~(a^b)) >> 31
        const Vreg x1 = alu(IrOp::XOR, a, r);
        const Vreg x2 = alu(IrOp::XOR, a, b);
        const Vreg x3 = aluImm(IrOp::XOR, x2, -1);
        const Vreg x4 = alu(IrOp::AND, x1, x3);
        IrInst &o = put(IrOp::SRL);
        o.dst = vFlagO;
        o.src1 = x4;
        o.useImm = true;
        o.imm = 31;
    }

    void
    flagsSub(Vreg a, Vreg b, Vreg r)
    {
        setZS(r);
        IrInst &c = put(IrOp::SLTU);   // CF = a <u b
        c.dst = vFlagC;
        c.src1 = a;
        c.src2 = b;
        // OF = ((a^b) & (a^r)) >> 31
        const Vreg x1 = alu(IrOp::XOR, a, b);
        const Vreg x2 = alu(IrOp::XOR, a, r);
        const Vreg x3 = alu(IrOp::AND, x1, x2);
        IrInst &o = put(IrOp::SRL);
        o.dst = vFlagO;
        o.src1 = x3;
        o.useImm = true;
        o.imm = 31;
    }

    void
    flagsLogic(Vreg r)
    {
        setZS(r);
        clearCO();
    }

    void
    recordProducer(FlagKind kind, Vreg a, Vreg b, Vreg r)
    {
        fkind = kind;
        fa = a;
        fb = b;
        fr = r;
    }

    // ----- exits -------------------------------------------------------

    uint16_t
    addExit(uint32_t target, uint32_t retired, bool indirect,
            bool halt = false)
    {
        IrExit exit;
        exit.guestTarget = target;
        exit.guestInstsRetired = retired;
        exit.indirect = indirect;
        exit.halt = halt;
        exit.flagMask = halt ? 0 : fmask::All;
        trace.exits.push_back(exit);
        return static_cast<uint16_t>(trace.exits.size() - 1);
    }

    void
    jexit(uint16_t exit_id)
    {
        IrInst &inst = put(IrOp::JEXIT);
        inst.exitId = exit_id;
    }

    void
    jindirect(Vreg target, uint16_t exit_id)
    {
        IrInst &inst = put(IrOp::JINDIRECT);
        inst.src1 = target;
        inst.exitId = exit_id;
    }

    void
    br(BrCc cc, Vreg s1, Vreg s2, uint16_t exit_id)
    {
        IrInst &inst = put(IrOp::BR);
        inst.cc = cc;
        inst.src1 = s1;
        inst.src2 = s2;
        inst.exitId = exit_id;
    }

    void
    brImm(BrCc cc, Vreg s1, int64_t imm, uint16_t exit_id)
    {
        IrInst &inst = put(IrOp::BR);
        inst.cc = cc;
        inst.src1 = s1;
        inst.useImm = true;
        inst.imm = imm;
        inst.exitId = exit_id;
    }
};

BrCc
negateCc(BrCc cc)
{
    switch (cc) {
      case BrCc::EQ:  return BrCc::NE;
      case BrCc::NE:  return BrCc::EQ;
      case BrCc::LT:  return BrCc::GE;
      case BrCc::GE:  return BrCc::LT;
      case BrCc::LTU: return BrCc::GEU;
      case BrCc::GEU: return BrCc::LTU;
      default: panic("bad BrCc");
    }
}

/**
 * Emit "branch to exits[exit_id] iff guest condition cond holds"
 * (or its negation). Uses fusion with the recorded flag producer
 * where possible, else consumes the flag vregs.
 */
void
emitCondExit(Build &b, g::Cond cond, bool negate, uint16_t exit_id)
{
    using g::Cond;

    // Fused forms from a SUB/CMP producer.
    if (b.fkind == FlagKind::SubLike) {
        BrCc cc;
        Vreg s1 = b.fa;
        Vreg s2 = b.fb;
        bool from_result = false;
        switch (cond) {
          case Cond::E:  cc = BrCc::EQ; break;
          case Cond::NE: cc = BrCc::NE; break;
          case Cond::L:  cc = BrCc::LT; break;
          case Cond::GE: cc = BrCc::GE; break;
          case Cond::LE: cc = BrCc::GE; std::swap(s1, s2); break;
          case Cond::G:  cc = BrCc::LT; std::swap(s1, s2); break;
          case Cond::B:  cc = BrCc::LTU; break;
          case Cond::AE: cc = BrCc::GEU; break;
          case Cond::S:  cc = BrCc::LT; from_result = true; break;
          case Cond::NS: cc = BrCc::GE; from_result = true; break;
          default: panic("bad cond");
        }
        if (negate)
            cc = negateCc(cc);
        if (from_result)
            b.brImm(cc, b.fr, 0, exit_id);
        else
            b.br(cc, s1, s2, exit_id);
        return;
    }

    // ADD: zero/sign from the result, carry via r <u a.
    if (b.fkind == FlagKind::AddLike) {
        switch (cond) {
          case Cond::E:
            b.brImm(negate ? BrCc::NE : BrCc::EQ, b.fr, 0, exit_id);
            return;
          case Cond::NE:
            b.brImm(negate ? BrCc::EQ : BrCc::NE, b.fr, 0, exit_id);
            return;
          case Cond::S:
            b.brImm(negate ? BrCc::GE : BrCc::LT, b.fr, 0, exit_id);
            return;
          case Cond::NS:
            b.brImm(negate ? BrCc::LT : BrCc::GE, b.fr, 0, exit_id);
            return;
          case Cond::B:
            b.br(negate ? BrCc::GEU : BrCc::LTU, b.fr, b.fa, exit_id);
            return;
          case Cond::AE:
            b.br(negate ? BrCc::LTU : BrCc::GEU, b.fr, b.fa, exit_id);
            return;
          default:
            break;  // overflow-involving conditions: flag fallback
        }
    }

    if (b.fkind == FlagKind::ResultOnly) {
        switch (cond) {
          case Cond::E:
            b.brImm(negate ? BrCc::NE : BrCc::EQ, b.fr, 0, exit_id);
            return;
          case Cond::NE:
            b.brImm(negate ? BrCc::EQ : BrCc::NE, b.fr, 0, exit_id);
            return;
          case Cond::S:
            b.brImm(negate ? BrCc::GE : BrCc::LT, b.fr, 0, exit_id);
            return;
          case Cond::NS:
            b.brImm(negate ? BrCc::LT : BrCc::GE, b.fr, 0, exit_id);
            return;
          default:
            break;
        }
    }

    // Generic fallback: evaluate the condition from the flag vregs
    // (correct whether they were defined in-trace or are live-in).
    Vreg c;
    bool sense = true;  // branch when c != 0
    switch (cond) {
      case Cond::E:  c = vFlagZ; break;
      case Cond::NE: c = vFlagZ; sense = false; break;
      case Cond::S:  c = vFlagS; break;
      case Cond::NS: c = vFlagS; sense = false; break;
      case Cond::B:  c = vFlagC; break;
      case Cond::AE: c = vFlagC; sense = false; break;
      case Cond::L:
        c = b.alu(IrOp::XOR, vFlagS, vFlagO);
        break;
      case Cond::GE:
        c = b.alu(IrOp::XOR, vFlagS, vFlagO);
        sense = false;
        break;
      case Cond::LE: {
        const Vreg t = b.alu(IrOp::XOR, vFlagS, vFlagO);
        c = b.alu(IrOp::OR, t, vFlagZ);
        break;
      }
      case Cond::G: {
        const Vreg t = b.alu(IrOp::XOR, vFlagS, vFlagO);
        c = b.alu(IrOp::OR, t, vFlagZ);
        sense = false;
        break;
      }
      default: panic("bad cond");
    }
    if (negate)
        sense = !sense;
    b.brImm(sense ? BrCc::NE : BrCc::EQ, c, 0, exit_id);
}

/** Translate one guest instruction (excluding control flow). */
void
translateStraightLine(Build &b, const g::Inst &gi)
{
    using g::Form;
    using g::Op;

    switch (gi.op) {
      case Op::MOV:
        switch (gi.form) {
          case Form::RR: b.movTo(vGpr(gi.reg1), vGpr(gi.reg2)); break;
          case Form::RI: {
            const Vreg t = b.ldi(gi.imm);
            b.movTo(vGpr(gi.reg1), t);
            break;
          }
          case Form::RM: {
            const Vreg t = b.load(b.memAddr(gi.mem), 4);
            b.movTo(vGpr(gi.reg1), t);
            break;
          }
          case Form::MR:
            b.store(b.memAddr(gi.mem), vGpr(gi.reg1), 4);
            break;
          default: panic("mov: bad form");
        }
        break;

      case Op::MOVB:
        if (gi.form == Form::RM) {
            const Vreg t = b.load(b.memAddr(gi.mem), 1);
            b.movTo(vGpr(gi.reg1), t);
        } else {
            b.store(b.memAddr(gi.mem), vGpr(gi.reg1), 1);
        }
        break;

      case Op::LEA: {
        const Build::Addr addr = b.memAddr(gi.mem);
        const Vreg t = b.aluImm(IrOp::ADD, addr.base, addr.disp);
        b.movTo(vGpr(gi.reg1), t);
        break;
      }

      case Op::ADD: case Op::SUB: case Op::CMP: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg src = b.intSrc(gi);
        const IrOp op = gi.op == Op::ADD ? IrOp::ADD : IrOp::SUB;
        const Vreg r = b.alu(op, a, src);
        if (gi.op != Op::CMP)
            b.movTo(vGpr(gi.reg1), r);
        if (gi.op == Op::ADD) {
            b.flagsAdd(a, src, r);
            b.recordProducer(FlagKind::AddLike, a, src, r);
        } else {
            b.flagsSub(a, src, r);
            b.recordProducer(FlagKind::SubLike, a, src, r);
        }
        break;
      }

      case Op::AND: case Op::OR: case Op::XOR: case Op::TEST: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg src = b.intSrc(gi);
        IrOp op;
        switch (gi.op) {
          case Op::AND: case Op::TEST: op = IrOp::AND; break;
          case Op::OR: op = IrOp::OR; break;
          default: op = IrOp::XOR; break;
        }
        const Vreg r = b.alu(op, a, src);
        if (gi.op != Op::TEST)
            b.movTo(vGpr(gi.reg1), r);
        b.flagsLogic(r);
        b.recordProducer(FlagKind::ResultOnly, a, src, r);
        break;
      }

      case Op::SHL: case Op::SHR: case Op::SAR: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg rawcnt = gi.form == Form::RI
            ? b.ldi(gi.imm) : b.snapshotGpr(gi.reg2);
        const Vreg cnt = b.aluImm(IrOp::AND, rawcnt, 31);
        IrOp op;
        switch (gi.op) {
          case Op::SHL: op = IrOp::SLL; break;
          case Op::SHR: op = IrOp::SRL; break;
          default: op = IrOp::SRA; break;
        }
        const Vreg r = b.alu(op, a, cnt);
        b.movTo(vGpr(gi.reg1), r);
        b.setZS(r);
        // CF (branchless, matching the documented GX86 semantics):
        // bitpos = (-cnt) & 31; CF = ((a >>/<< path) & 1) & (cnt != 0)
        const Vreg zero = b.ldi(0);
        Vreg bitpos;
        if (gi.op == Op::SHL) {
            const Vreg neg = b.alu(IrOp::SUB, zero, cnt);
            bitpos = b.aluImm(IrOp::AND, neg, 31);
        } else {
            const Vreg cm1 = b.aluImm(IrOp::ADD, cnt, -1);
            bitpos = b.aluImm(IrOp::AND, cm1, 31);
        }
        const IrOp extract = gi.op == Op::SAR ? IrOp::SRA : IrOp::SRL;
        const Vreg shifted = b.alu(extract, a, bitpos);
        const Vreg bit = b.aluImm(IrOp::AND, shifted, 1);
        const Vreg nz = b.alu(IrOp::SLTU, zero, cnt);
        IrInst &c = b.put(IrOp::AND);
        c.dst = vFlagC;
        c.src1 = bit;
        c.src2 = nz;
        // GX86 shifts leave OF untouched (opInfo mask: S/Z/P/C only),
        // so vFlagO is deliberately not defined here.
        b.recordProducer(FlagKind::ResultOnly, a, cnt, r);
        break;
      }

      case Op::IMUL: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg src = b.intSrc(gi);
        const Vreg r = b.alu(IrOp::MUL, a, src);
        b.movTo(vGpr(gi.reg1), r);
        b.setZS(r);
        const Vreg hi = b.alu(IrOp::MULH, a, src);
        const Vreg sgn = b.aluImm(IrOp::SRA, r, 31);
        const Vreg dif = b.alu(IrOp::XOR, hi, sgn);
        const Vreg zero = b.ldi(0);
        IrInst &c = b.put(IrOp::SLTU);  // CF = (dif != 0)
        c.dst = vFlagC;
        c.src1 = zero;
        c.src2 = dif;
        IrInst &o = b.put(IrOp::MOV);
        o.dst = vFlagO;
        o.src1 = vFlagC;
        b.recordProducer(FlagKind::ResultOnly, a, src, r);
        break;
      }

      case Op::IDIV: {
        const Vreg divisor = b.rmValue(gi);
        const Vreg dividend = b.snapshotGpr(g::EAX);
        const Vreg q = b.alu(IrOp::DIV, dividend, divisor);
        const Vreg rem = b.alu(IrOp::REM, dividend, divisor);
        b.movTo(vGpr(g::EAX), q);
        b.movTo(vGpr(g::EDX), rem);
        break;
      }

      case Op::INC: case Op::DEC: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg r = b.aluImm(IrOp::ADD, a,
                                gi.op == Op::INC ? 1 : -1);
        b.movTo(vGpr(gi.reg1), r);
        b.setZS(r);
        const int64_t edge = gi.op == Op::INC
            ? 0x7FFFFFFFll : static_cast<int64_t>(
                  static_cast<int32_t>(0x80000000u));
        const Vreg t = b.aluImm(IrOp::XOR, a, edge);
        IrInst &o = b.put(IrOp::SLTU);  // OF = (a == edge)
        o.dst = vFlagO;
        o.src1 = t;
        o.useImm = true;
        o.imm = 1;
        b.recordProducer(FlagKind::ResultOnly, a, kNoVreg, r);
        break;
      }

      case Op::NEG: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg zero = b.ldi(0);
        const Vreg r = b.alu(IrOp::SUB, zero, a);
        b.movTo(vGpr(gi.reg1), r);
        b.setZS(r);
        IrInst &c = b.put(IrOp::SLTU);  // CF = (a != 0)
        c.dst = vFlagC;
        c.src1 = zero;
        c.src2 = a;
        const Vreg t = b.aluImm(IrOp::XOR, a,
            static_cast<int64_t>(static_cast<int32_t>(0x80000000u)));
        IrInst &o = b.put(IrOp::SLTU);  // OF = (a == INT_MIN)
        o.dst = vFlagO;
        o.src1 = t;
        o.useImm = true;
        o.imm = 1;
        b.recordProducer(FlagKind::ResultOnly, a, kNoVreg, r);
        break;
      }

      case Op::NOT: {
        const Vreg a = b.snapshotGpr(gi.reg1);
        const Vreg r = b.aluImm(IrOp::XOR, a, -1);
        b.movTo(vGpr(gi.reg1), r);
        break;
      }

      case Op::PUSH: {
        Vreg value;
        switch (gi.form) {
          case Form::R: value = b.snapshotGpr(gi.reg1); break;
          case Form::I: value = b.ldi(gi.imm); break;
          case Form::M: value = b.load(b.memAddr(gi.mem), 4); break;
          default: panic("push: bad form");
        }
        const Vreg sp = b.aluImm(IrOp::ADD, vGpr(g::ESP), -4);
        b.store(Build::Addr{sp, 0}, value, 4);
        b.movTo(vGpr(g::ESP), sp);
        break;
      }

      case Op::POP: {
        const Vreg t = b.load(Build::Addr{vGpr(g::ESP), 0}, 4);
        const Vreg sp = b.aluImm(IrOp::ADD, vGpr(g::ESP), 4);
        b.movTo(vGpr(g::ESP), sp);
        b.movTo(vGpr(gi.reg1), t);
        break;
      }

      case Op::FMOV:
        b.fmovTo(vFpr(gi.reg1), vFpr(gi.reg2));
        break;
      case Op::FLD: {
        const Vreg t = b.fload(b.memAddr(gi.mem));
        b.fmovTo(vFpr(gi.reg1), t);
        break;
      }
      case Op::FST:
        b.fstore(b.memAddr(gi.mem), vFpr(gi.reg1));
        break;

      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV: {
        const Vreg a = b.snapshotFpr(gi.reg1);
        const Vreg src = b.fpSrc(gi);
        IrOp op;
        switch (gi.op) {
          case Op::FADD: op = IrOp::FADD; break;
          case Op::FSUB: op = IrOp::FSUB; break;
          case Op::FMUL: op = IrOp::FMUL; break;
          default: op = IrOp::FDIV; break;
        }
        const Vreg r = b.ftemp();
        IrInst &inst = b.put(op);
        inst.dst = r;
        inst.src1 = a;
        inst.src2 = src;
        b.fmovTo(vFpr(gi.reg1), r);
        break;
      }

      case Op::FCMP: {
        const Vreg a = b.snapshotFpr(gi.reg1);
        const Vreg src = b.fpSrc(gi);
        const Vreg e = b.trace.newTemp(RegClass::Int);
        IrInst &ie = b.put(IrOp::FEQ);
        ie.dst = e;
        ie.src1 = a;
        ie.src2 = src;
        const Vreg l = b.trace.newTemp(RegClass::Int);
        IrInst &il = b.put(IrOp::FLT);
        il.dst = l;
        il.src1 = a;
        il.src2 = src;
        const Vreg u = b.trace.newTemp(RegClass::Int);
        IrInst &iu = b.put(IrOp::FUNORD);
        iu.dst = u;
        iu.src1 = a;
        iu.src2 = src;
        IrInst &z = b.put(IrOp::OR);
        z.dst = vFlagZ;
        z.src1 = e;
        z.src2 = u;
        IrInst &c = b.put(IrOp::OR);
        c.dst = vFlagC;
        c.src1 = l;
        c.src2 = u;
        IrInst &s = b.put(IrOp::LDI);
        s.dst = vFlagS;
        s.imm = 0;
        IrInst &o = b.put(IrOp::LDI);
        o.dst = vFlagO;
        o.imm = 0;
        b.recordProducer(FlagKind::None, kNoVreg, kNoVreg, kNoVreg);
        break;
      }

      case Op::FSQRT: case Op::FABS: case Op::FNEG: {
        const Vreg src = b.snapshotFpr(gi.reg2);
        IrOp op;
        switch (gi.op) {
          case Op::FSQRT: op = IrOp::FSQRT; break;
          case Op::FABS: op = IrOp::FABS; break;
          default: op = IrOp::FNEG; break;
        }
        const Vreg r = b.ftemp();
        IrInst &inst = b.put(op);
        inst.dst = r;
        inst.src1 = src;
        b.fmovTo(vFpr(gi.reg1), r);
        break;
      }

      case Op::CVTIF: {
        const Vreg r = b.ftemp();
        IrInst &inst = b.put(IrOp::FCVT_IF);
        inst.dst = r;
        inst.src1 = vGpr(gi.reg2);
        b.fmovTo(vFpr(gi.reg1), r);
        break;
      }
      case Op::CVTFI: {
        const Vreg r = b.temp();
        IrInst &inst = b.put(IrOp::FCVT_FI);
        inst.dst = r;
        inst.src1 = vFpr(gi.reg2);
        b.movTo(vGpr(gi.reg1), r);
        break;
      }

      case Op::NOP:
        break;

      default:
        panic("translateStraightLine: unexpected op %s",
              g::opName(gi.op));
    }
}

} // namespace

ir::Trace
Translator::translate(const std::vector<PathInst> &path) const
{
    panic_if(path.empty(), "translate: empty path");

    Build b(cfg);
    b.trace.guestEntry = path.front().eip;

    for (size_t i = 0; i < path.size(); ++i) {
        const PathInst &pi = path[i];
        const g::Inst &gi = pi.inst;
        const uint32_t next_eip = pi.eip + gi.length;
        const bool last = i + 1 == path.size();
        b.guestIndex = static_cast<uint16_t>(i);
        b.trace.guestEips.push_back(pi.eip);

        const g::OpInfo &info = g::opInfo(gi.op);
        if (!info.isBranch && gi.op != g::Op::HALT) {
            translateStraightLine(b, gi);
            if (last) {
                // Straight-line path end: exit to the next address.
                const uint16_t exit_id = b.addExit(
                    next_eip, static_cast<uint32_t>(i + 1), false);
                b.jexit(exit_id);
            }
            continue;
        }

        switch (gi.op) {
          case g::Op::HALT: {
            panic_if(!last, "HALT in the middle of a path");
            const uint16_t exit_id = b.addExit(
                pi.eip, static_cast<uint32_t>(i), false, true);
            b.jexit(exit_id);
            break;
          }

          case g::Op::JMP: {
            const uint32_t target = next_eip +
                static_cast<uint32_t>(gi.imm);
            if (last) {
                const uint16_t exit_id = b.addExit(
                    target, static_cast<uint32_t>(i + 1), false);
                b.jexit(exit_id);
            }
            // Mid-path: the superblock simply continues at the target.
            break;
          }

          case g::Op::JCC: {
            const uint32_t taken = next_eip +
                static_cast<uint32_t>(gi.imm);
            if (last) {
                const uint16_t taken_exit = b.addExit(
                    taken, static_cast<uint32_t>(i + 1), false);
                emitCondExit(b, gi.cond, false, taken_exit);
                const uint16_t ft_exit = b.addExit(
                    next_eip, static_cast<uint32_t>(i + 1), false);
                b.jexit(ft_exit);
            } else if (pi.followTaken) {
                // Side exit on the fallthrough direction.
                const uint16_t ft_exit = b.addExit(
                    next_eip, static_cast<uint32_t>(i + 1), false);
                emitCondExit(b, gi.cond, true, ft_exit);
            } else {
                const uint16_t taken_exit = b.addExit(
                    taken, static_cast<uint32_t>(i + 1), false);
                emitCondExit(b, gi.cond, false, taken_exit);
            }
            break;
          }

          case g::Op::CALL: {
            // Push the return address, then transfer.
            const Vreg ra = b.ldi(next_eip);
            const Vreg sp = b.aluImm(IrOp::ADD, vGpr(g::ESP), -4);
            b.store(Build::Addr{sp, 0}, ra, 4);
            b.movTo(vGpr(g::ESP), sp);
            const uint32_t target = next_eip +
                static_cast<uint32_t>(gi.imm);
            if (last) {
                const uint16_t exit_id = b.addExit(
                    target, static_cast<uint32_t>(i + 1), false);
                b.jexit(exit_id);
            }
            // Mid-path (sbFollowCalls): continue into the callee.
            break;
          }

          case g::Op::RET: {
            panic_if(!last, "indirect transfer mid-path");
            const Vreg t = b.load(Build::Addr{vGpr(g::ESP), 0}, 4);
            const Vreg sp = b.aluImm(IrOp::ADD, vGpr(g::ESP), 4);
            b.movTo(vGpr(g::ESP), sp);
            const uint16_t exit_id = b.addExit(
                0, static_cast<uint32_t>(i + 1), true);
            b.jindirect(t, exit_id);
            break;
          }

          case g::Op::JMPI: {
            panic_if(!last, "indirect transfer mid-path");
            const Vreg t = b.rmValue(gi);
            const uint16_t exit_id = b.addExit(
                0, static_cast<uint32_t>(i + 1), true);
            b.jindirect(t, exit_id);
            break;
          }

          case g::Op::CALLI: {
            panic_if(!last, "indirect transfer mid-path");
            const Vreg target = b.rmValue(gi);
            const Vreg ra = b.ldi(next_eip);
            const Vreg sp = b.aluImm(IrOp::ADD, vGpr(g::ESP), -4);
            b.store(Build::Addr{sp, 0}, ra, 4);
            b.movTo(vGpr(g::ESP), sp);
            const uint16_t exit_id = b.addExit(
                0, static_cast<uint32_t>(i + 1), true);
            b.jindirect(target, exit_id);
            break;
          }

          default:
            panic("translate: unexpected branch op %s", g::opName(gi.op));
        }
    }

    const std::string err = ir::validate(b.trace);
    panic_if(!err.empty(), "translator produced invalid trace: %s",
             err.c_str());
    return std::move(b.trace);
}

} // namespace darco::tol
