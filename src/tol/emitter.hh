/**
 * @file
 * IR -> host code emission.
 *
 * Lowers a register-allocated IR trace into a host CodeRegion:
 *
 *  - BBM regions get an entry profiling prologue (counter
 *    load/increment/store + SB-threshold check branching to the
 *    promote service) and inline edge-counter instrumentation ahead
 *    of the exit stubs of a conditional terminator — this is the
 *    "profiling through instrumentation" of §II-A.1, and its
 *    instructions are tagged as TOL/BBM time.
 *  - Every exit gets a stub: [edge profiling] + load of the guest
 *    target into x58 + exit id into x59 + a patchable JAL to the
 *    dispatch service. Chaining later rewrites that JAL's target to
 *    the successor region's entry.
 *  - Indirect exits (JINDIRECT) emit the inline IBTC probe; the probe
 *    hit ends in a JALR straight into the target region, the miss
 *    falls to a stub that exits to the IBTC-miss service.
 *  - Region-leaving transfers carry the exit's guest retirement count
 *    (executor accounting; see host/isa.hh).
 */

#ifndef DARCO_TOL_EMITTER_HH
#define DARCO_TOL_EMITTER_HH

#include <memory>

#include "host/code_store.hh"
#include "ir/ir.hh"
#include "ir/regalloc.hh"
#include "tol/config.hh"

namespace darco::tol {

struct EmitOptions
{
    host::RegionKind kind = host::RegionKind::BasicBlock;
    /** Emit the BB entry counter + promotion check. */
    bool bbEntryProfiling = false;
    /** Simulated address of the BB profile block (exec/taken/ft). */
    uint32_t profBlockAddr = 0;
    /** Instrument direct exits 0/1 with taken/fallthrough counters. */
    bool edgeProfiling = false;
    /** Emit inline IBTC probes for indirect exits. */
    bool enableIbtc = true;
    /** IBTC set-index mask (numSets - 1). */
    uint32_t ibtcMask = 511;
    /** IBTC associativity (1 or 2); see tol/ibtc.hh. */
    uint32_t ibtcWays = 1;
};

/** Emission statistics (feeds the SBM/BBM cost model). */
struct EmitStats
{
    uint32_t hostInsts = 0;
    uint32_t spillLoads = 0;
    uint32_t spillStores = 0;
};

/**
 * Emit @p trace into a new (not yet installed) code region. Branch
 * targets inside the region are instruction indices until
 * CodeStore::install() rebases them.
 */
std::unique_ptr<host::CodeRegion>
emitRegion(const ir::Trace &trace, const ir::Allocation &alloc,
           const EmitOptions &options, EmitStats *stats = nullptr);

} // namespace darco::tol

#endif // DARCO_TOL_EMITTER_HH
