/**
 * @file
 * TOL profiler.
 *
 * Two kinds of profile state (paper §II-A.1):
 *  - interpreter branch-target execution counters, consulted for the
 *    IM -> BBM promotion (threshold IM/BBth);
 *  - per-BB profile blocks {execution count, taken count,
 *    fallthrough count} updated by instrumentation *inside* the
 *    translated BB code (the executor really loads/increments/stores
 *    them in simulated memory), consulted for BBM -> SBM promotion
 *    and superblock trace selection.
 */

#ifndef DARCO_TOL_PROFILE_HH
#define DARCO_TOL_PROFILE_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "host/address_map.hh"
#include "host/executor.hh"
#include "tol/config.hh"
#include "tol/cost_model.hh"

namespace darco::tol {

/** Layout of a per-BB profile block in simulated memory. */
struct BbProfileBlock
{
    static constexpr uint32_t kExecOffset = 0;
    static constexpr uint32_t kTakenOffset = 4;
    static constexpr uint32_t kFallthroughOffset = 8;
    static constexpr uint32_t kSize = 16;
};

class Profiler
{
  public:
    Profiler(const TolConfig &config, host::Memory &memory)
        : cfg(config), mem(memory)
    {}

    /**
     * Bump the interpreter's execution counter for branch target
     * @p eip; returns the new count. The C++ map is the precise
     * functional store; the hashed counter slot in simulated memory
     * is written too so the traffic is real.
     */
    uint32_t bumpImTarget(uint32_t eip, CostStream &stream);

    /** Current IM counter for @p eip (no cost: debug/tests). */
    uint32_t imCount(uint32_t eip) const;

    /** Allocate a zeroed BB profile block; returns its sim address. */
    uint32_t allocBbBlock();

    /** Read a profile word with lookup cost charged to @p stream. */
    uint32_t readWord(uint32_t addr, CostStream &stream);

    /** Reset interpreter counters (used on code-cache flush). */
    void clearImCounters();

  private:
    static constexpr uint32_t kImCounterEntries = 1u << 16;
    static constexpr uint32_t kBbBlocksBase =
        host::amap::kProfileBase + kImCounterEntries * 4;

    uint32_t imCounterAddr(uint32_t eip) const
    {
        const uint32_t idx = (eip * 2654435761u) >> 10 &
                             (kImCounterEntries - 1);
        return host::amap::kProfileBase + idx * 4;
    }

    const TolConfig &cfg;
    host::Memory &mem;
    std::unordered_map<uint32_t, uint32_t> imCounts;

    /** bumpImTarget() fast path: direct-mapped eip -> counter-node
     *  pointers (nodes are stable; invalidated on clearImCounters). */
    struct CountSlot
    {
        uint32_t eip = 0;
        uint32_t *count = nullptr;
    };
    std::array<CountSlot, 1024> countCache{};

    uint32_t nextBbBlock = kBbBlocksBase;
};

} // namespace darco::tol

#endif // DARCO_TOL_PROFILE_HH
