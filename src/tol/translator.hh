/**
 * @file
 * Guest -> IR translator.
 *
 * Lowers a guest execution path (one basic block in BBM, a multi-
 * block superblock in SBM) into a linear IR trace:
 *
 *  - Guest GPR/FP registers map to bound vregs; every computation
 *    flows through fresh SSA temporaries, with operand snapshots so
 *    flag definitions and compare/branch fusion always reference
 *    stable values.
 *  - EFLAGS are materialized *eagerly* as explicit defs of the flag
 *    vregs (Z,S,C,O) after each flag-writing instruction; DCE removes
 *    the dead ones using per-exit flag liveness. PF is never
 *    materialized (no GX86 condition consumes it).
 *  - Conditional guest branches fuse with their in-trace flag
 *    producer into a single IR BR where a direct mapping exists
 *    (CMP/SUB full condition set; ADD carry/zero/sign; result-only
 *    ops zero/sign); otherwise the BR consumes the flag vregs.
 *  - Mid-path conditional branches become side exits in the
 *    not-followed direction; indirect transfers end the trace with
 *    JINDIRECT (lowered to an inline IBTC probe by the emitter).
 */

#ifndef DARCO_TOL_TRANSLATOR_HH
#define DARCO_TOL_TRANSLATOR_HH

#include <vector>

#include "guest/isa.hh"
#include "ir/ir.hh"
#include "tol/config.hh"

namespace darco::tol {

/** One guest instruction on a translation path. */
struct PathInst
{
    guest::Inst inst;
    uint32_t eip = 0;
    /**
     * For conditional branches that are *not* the last path element:
     * true if the path continues on the taken side (the fallthrough
     * becomes the side exit), false if it continues on fallthrough.
     */
    bool followTaken = false;
};

class Translator
{
  public:
    explicit Translator(const TolConfig &config) : cfg(config) {}

    /**
     * Translate @p path into an IR trace. The path must be non-empty;
     * every element except the last must either fall through (non-
     * branch), be a direct JMP/CALL (path continues at the target),
     * or be a conditional branch with followTaken set appropriately.
     */
    ir::Trace translate(const std::vector<PathInst> &path) const;

  private:
    const TolConfig &cfg;
};

} // namespace darco::tol

#endif // DARCO_TOL_TRANSLATOR_HH
