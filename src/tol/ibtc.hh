/**
 * @file
 * Indirect Branch Translation Cache (IBTC), per Hiser et al. [20] as
 * used by the paper's TOL (§III-B).
 *
 * A table in simulated memory with 8-byte entries {guest target tag,
 * host entry}. Translated indirect branches embed an inline probe
 * (emitted by the emitter); on a probe miss control exits to the
 * runtime, which performs a translation-map lookup and fills the
 * entry here. The inline probe reads the very words this class
 * writes — the executor executes the probe for real.
 *
 * Associativity (TolConfig::ibtcWays):
 *  - 1 way: the classic direct-mapped design;
 *  - 2 ways: the §III-E "software enhancement of indirect branches"
 *    extension — a set holds two {tag, host} pairs (16 bytes) with
 *    MRU-insertion replacement; the probe checks way 0 first and
 *    falls through to way 1 (two extra instructions on that path).
 */

#ifndef DARCO_TOL_IBTC_HH
#define DARCO_TOL_IBTC_HH

#include <cstdint>

#include "common/logging.hh"
#include "host/address_map.hh"
#include "host/executor.hh"
#include "tol/config.hh"
#include "tol/cost_model.hh"

namespace darco::tol {

class Ibtc
{
  public:
    Ibtc(const TolConfig &config, host::Memory &memory)
        : cfg(config), mem(memory)
    {
        panic_if(cfg.ibtcWays != 1 && cfg.ibtcWays != 2,
                 "IBTC associativity must be 1 or 2");
    }

    /** Number of sets (entries / ways). */
    uint32_t numSets() const { return cfg.ibtcEntries / cfg.ibtcWays; }

    /** Set index for a guest target (must match the inline probe). */
    uint32_t
    indexOf(uint32_t guest_target) const
    {
        return (guest_target >> 2) & (numSets() - 1);
    }

    /** Simulated address of the set for @p guest_target. */
    uint32_t
    setAddr(uint32_t guest_target) const
    {
        return host::amap::kIbtcBase + indexOf(guest_target) * setBytes();
    }

    /** Bytes per set (8 per way). */
    uint32_t setBytes() const { return 8 * cfg.ibtcWays; }

    /** Install a mapping (runtime miss path). */
    void
    fill(uint32_t guest_target, uint32_t host_entry, CostStream &stream)
    {
        const uint32_t set = setAddr(guest_target);
        stream.alu(cfg.ibtcFillAlus);
        if (cfg.ibtcWays == 2) {
            // MRU insertion: keep the previous way-0 entry in way 1
            // unless one of the ways already holds this tag.
            const uint32_t tag0 = mem.load32(set);
            const uint32_t tag1 = mem.load32(set + 8);
            stream.load(set);
            stream.load(set + 8);
            if (tag0 != guest_target && tag1 != guest_target &&
                tag0 != 0) {
                mem.store32(set + 8, tag0);
                mem.store32(set + 12, mem.load32(set + 4));
                stream.store(set + 8);
                stream.store(set + 12);
            } else if (tag1 == guest_target) {
                // Promote: the new fill goes to way 0; drop way 1's
                // stale copy to keep the set canonical.
                mem.store32(set + 8, 0);
                mem.store32(set + 12, 0);
                stream.store(set + 8);
            }
        }
        mem.store32(set, guest_target);
        mem.store32(set + 4, host_entry);
        stream.store(set);
        stream.store(set + 4);
        ++fills;
    }

    /** Invalidate everything (code-cache flush). */
    void
    clear(CostStream &stream)
    {
        for (uint32_t i = 0; i < cfg.ibtcEntries; ++i) {
            const uint32_t addr = host::amap::kIbtcBase + i * 8;
            mem.store32(addr, 0);
            mem.store32(addr + 4, 0);
            if ((i & 7) == 0)
                stream.store(addr);
        }
    }

    uint64_t numFills() const { return fills; }

  private:
    const TolConfig &cfg;
    host::Memory &mem;
    uint64_t fills = 0;
};

} // namespace darco::tol

#endif // DARCO_TOL_IBTC_HH
