/**
 * @file
 * TOL activity counters: mode distribution (static and dynamic),
 * region/translation counts, control-flow service counts. These feed
 * Figures 5, 6 and 7 directly.
 */

#ifndef DARCO_TOL_STATS_HH
#define DARCO_TOL_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

namespace darco::tol {

/** Execution mode of a guest instruction (paper Figure 3). */
enum class Mode : uint8_t { IM = 0, BBM = 1, SBM = 2 };

struct TolStats
{
    // Dynamic guest instructions executed per mode (Figure 5b).
    uint64_t dynIm = 0;
    uint64_t dynBbm = 0;
    uint64_t dynSbm = 0;

    // Static mode map: guest EIP -> highest mode reached (Figure 5a).
    std::unordered_map<uint32_t, uint8_t> staticMode;

    /** noteStatic() fast path (never needs invalidation in place: the
     *  map only grows and its nodes never move). */
    struct StaticSlot
    {
        uint32_t eip = 0;
        uint8_t *slot = nullptr;
    };

    /**
     * The cached pointers alias this object's own staticMode nodes,
     * so a copied TolStats must NOT inherit them: copies start with
     * an empty cache and rebuild against their own map.
     */
    struct StaticCache : std::array<StaticSlot, 2048>
    {
        StaticCache() : std::array<StaticSlot, 2048>{} {}
        StaticCache(const StaticCache &) : StaticCache() {}
        StaticCache &
        operator=(const StaticCache &)
        {
            fill(StaticSlot{});
            return *this;
        }
    };
    StaticCache staticCache;

    // Translation activity (Figure 6 secondary axis).
    uint64_t bbsTranslated = 0;
    uint64_t sbsCreated = 0;        ///< "SBM invocations"
    uint64_t guestInstsTranslatedBb = 0;
    uint64_t guestInstsTranslatedSb = 0;
    uint64_t hostInstsEmittedBb = 0;
    uint64_t hostInstsEmittedSb = 0;

    // Runtime services.
    uint64_t dispatchLoops = 0;
    uint64_t mapLookups = 0;
    uint64_t mapHits = 0;
    uint64_t chainsPatched = 0;
    uint64_t entryForwards = 0;     ///< BB entries redirected to SBs
    uint64_t ibtcMisses = 0;
    uint64_t ibtcFills = 0;
    uint64_t promotions = 0;
    uint64_t codeCacheFlushes = 0;
    uint64_t contextFills = 0;      ///< ctx -> register transitions
    uint64_t contextSpills = 0;     ///< register -> ctx transitions

    // Guest-level dynamic characteristics (Figure 7 secondary axis).
    uint64_t guestIndirectBranches = 0;

    void
    noteStatic(uint32_t eip, Mode mode)
    {
        // Direct-mapped pointer cache in front of the hash map: this
        // runs once per interpreted guest instruction, and hot loops
        // revisit the same few EIPs. unordered_map references are
        // node-stable, so cached pointers survive growth.
        const uint8_t m = static_cast<uint8_t>(mode);
        StaticSlot &cached = staticCache[eip & (staticCache.size() - 1)];
        if (cached.slot && cached.eip == eip) {
            if (*cached.slot < m)
                *cached.slot = m;
            return;
        }
        uint8_t &slot = staticMode[eip];
        slot = std::max(slot, m);
        cached.eip = eip;
        cached.slot = &slot;
    }

    uint64_t dynTotal() const { return dynIm + dynBbm + dynSbm; }

    /** Static instruction counts per terminal mode (Figure 5a). */
    void
    staticCounts(uint64_t &im, uint64_t &bbm, uint64_t &sbm) const
    {
        im = bbm = sbm = 0;
        for (const auto &[eip, mode] : staticMode) {
            switch (mode) {
              case 0: ++im; break;
              case 1: ++bbm; break;
              default: ++sbm; break;
            }
        }
    }
};

/**
 * Exact comparison of every TOL activity counter two runs produced
 * (including the per-mode static map), mirroring timing::diffStats:
 * returns a newline-separated description of each mismatching field,
 * empty when identical. The trace round-trip gates (tests, bench,
 * CI) use this to prove a replayed workload drove the TOL
 * bit-identically to the live run.
 */
inline std::string
diffTolStats(const TolStats &a, const TolStats &b)
{
    std::string diff;
    char line[128];
    auto mismatch = [&](const char *what, uint64_t va, uint64_t vb) {
        if (va != vb) {
            std::snprintf(line, sizeof(line),
                          "  %s: %llu != %llu\n", what,
                          static_cast<unsigned long long>(va),
                          static_cast<unsigned long long>(vb));
            diff += line;
        }
    };
    mismatch("dynIm", a.dynIm, b.dynIm);
    mismatch("dynBbm", a.dynBbm, b.dynBbm);
    mismatch("dynSbm", a.dynSbm, b.dynSbm);
    mismatch("bbsTranslated", a.bbsTranslated, b.bbsTranslated);
    mismatch("sbsCreated", a.sbsCreated, b.sbsCreated);
    mismatch("guestInstsTranslatedBb", a.guestInstsTranslatedBb,
             b.guestInstsTranslatedBb);
    mismatch("guestInstsTranslatedSb", a.guestInstsTranslatedSb,
             b.guestInstsTranslatedSb);
    mismatch("hostInstsEmittedBb", a.hostInstsEmittedBb,
             b.hostInstsEmittedBb);
    mismatch("hostInstsEmittedSb", a.hostInstsEmittedSb,
             b.hostInstsEmittedSb);
    mismatch("dispatchLoops", a.dispatchLoops, b.dispatchLoops);
    mismatch("mapLookups", a.mapLookups, b.mapLookups);
    mismatch("mapHits", a.mapHits, b.mapHits);
    mismatch("chainsPatched", a.chainsPatched, b.chainsPatched);
    mismatch("entryForwards", a.entryForwards, b.entryForwards);
    mismatch("ibtcMisses", a.ibtcMisses, b.ibtcMisses);
    mismatch("ibtcFills", a.ibtcFills, b.ibtcFills);
    mismatch("promotions", a.promotions, b.promotions);
    mismatch("codeCacheFlushes", a.codeCacheFlushes,
             b.codeCacheFlushes);
    mismatch("contextFills", a.contextFills, b.contextFills);
    mismatch("contextSpills", a.contextSpills, b.contextSpills);
    mismatch("guestIndirectBranches", a.guestIndirectBranches,
             b.guestIndirectBranches);
    uint64_t a_im, a_bbm, a_sbm, b_im, b_bbm, b_sbm;
    a.staticCounts(a_im, a_bbm, a_sbm);
    b.staticCounts(b_im, b_bbm, b_sbm);
    mismatch("staticIm", a_im, b_im);
    mismatch("staticBbm", a_bbm, b_bbm);
    mismatch("staticSbm", a_sbm, b_sbm);
    return diff;
}

} // namespace darco::tol

#endif // DARCO_TOL_STATS_HH
