/**
 * @file
 * TOL activity counters: mode distribution (static and dynamic),
 * region/translation counts, control-flow service counts. These feed
 * Figures 5, 6 and 7 directly.
 */

#ifndef DARCO_TOL_STATS_HH
#define DARCO_TOL_STATS_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace darco::tol {

/** Execution mode of a guest instruction (paper Figure 3). */
enum class Mode : uint8_t { IM = 0, BBM = 1, SBM = 2 };

struct TolStats
{
    // Dynamic guest instructions executed per mode (Figure 5b).
    uint64_t dynIm = 0;
    uint64_t dynBbm = 0;
    uint64_t dynSbm = 0;

    // Static mode map: guest EIP -> highest mode reached (Figure 5a).
    std::unordered_map<uint32_t, uint8_t> staticMode;

    // Translation activity (Figure 6 secondary axis).
    uint64_t bbsTranslated = 0;
    uint64_t sbsCreated = 0;        ///< "SBM invocations"
    uint64_t guestInstsTranslatedBb = 0;
    uint64_t guestInstsTranslatedSb = 0;
    uint64_t hostInstsEmittedBb = 0;
    uint64_t hostInstsEmittedSb = 0;

    // Runtime services.
    uint64_t dispatchLoops = 0;
    uint64_t mapLookups = 0;
    uint64_t mapHits = 0;
    uint64_t chainsPatched = 0;
    uint64_t entryForwards = 0;     ///< BB entries redirected to SBs
    uint64_t ibtcMisses = 0;
    uint64_t ibtcFills = 0;
    uint64_t promotions = 0;
    uint64_t codeCacheFlushes = 0;
    uint64_t contextFills = 0;      ///< ctx -> register transitions
    uint64_t contextSpills = 0;     ///< register -> ctx transitions

    // Guest-level dynamic characteristics (Figure 7 secondary axis).
    uint64_t guestIndirectBranches = 0;

    void
    noteStatic(uint32_t eip, Mode mode)
    {
        uint8_t &slot = staticMode[eip];
        slot = std::max(slot, static_cast<uint8_t>(mode));
    }

    uint64_t dynTotal() const { return dynIm + dynBbm + dynSbm; }

    /** Static instruction counts per terminal mode (Figure 5a). */
    void
    staticCounts(uint64_t &im, uint64_t &bbm, uint64_t &sbm) const
    {
        im = bbm = sbm = 0;
        for (const auto &[eip, mode] : staticMode) {
            switch (mode) {
              case 0: ++im; break;
              case 1: ++bbm; break;
              default: ++sbm; break;
            }
        }
    }
};

} // namespace darco::tol

#endif // DARCO_TOL_STATS_HH
