#include "common/faultinject.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace darco::faultinject {

namespace {

constexpr unsigned kNumPoints =
    static_cast<unsigned>(Point::NumPoints);

struct Slot
{
    std::atomic<uint64_t> remaining{0};
    std::atomic<uint64_t> value{0};
};

Slot slots[kNumPoints];

// Number of points with remaining > 0. The single load every
// disarmed fire() pays; maintained on the 0 <-> nonzero transitions
// of each slot.
std::atomic<unsigned> armedCount{0};

const char *const kNames[kNumPoints] = {
    "trace-io-fail",
    "trace-corrupt",
    "midrun-throw",
    "guest-stall",
    "journal-kill",
};

} // namespace

bool
anyArmed()
{
    return armedCount.load(std::memory_order_relaxed) != 0;
}

void
arm(Point point, uint64_t count, uint64_t param)
{
    Slot &s = slots[static_cast<unsigned>(point)];
    s.value.store(param, std::memory_order_relaxed);
    const uint64_t old =
        s.remaining.exchange(count, std::memory_order_relaxed);
    if (old == 0 && count > 0)
        armedCount.fetch_add(1, std::memory_order_relaxed);
    else if (old > 0 && count == 0)
        armedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
disarm(Point point)
{
    arm(point, 0, 0);
}

void
disarmAll()
{
    for (unsigned p = 0; p < kNumPoints; ++p)
        disarm(static_cast<Point>(p));
}

bool
fire(Point point)
{
    if (!anyArmed())
        return false;
    Slot &s = slots[static_cast<unsigned>(point)];
    uint64_t cur = s.remaining.load(std::memory_order_relaxed);
    while (cur > 0) {
        if (s.remaining.compare_exchange_weak(
                cur, cur - 1, std::memory_order_relaxed)) {
            if (cur == 1)
                armedCount.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

uint64_t
pending(Point point)
{
    return slots[static_cast<unsigned>(point)].remaining.load(
        std::memory_order_relaxed);
}

uint64_t
param(Point point)
{
    return slots[static_cast<unsigned>(point)].value.load(
        std::memory_order_relaxed);
}

const char *
pointName(Point point)
{
    return kNames[static_cast<unsigned>(point)];
}

void
armFromEnv()
{
    const char *env = std::getenv("DARCO_FAULTINJECT");
    if (!env || !*env)
        return;
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;

        const size_t c1 = item.find(':');
        const std::string name =
            c1 == std::string::npos ? item : item.substr(0, c1);
        uint64_t count = 1, value = 0;
        if (c1 != std::string::npos) {
            const size_t c2 = item.find(':', c1 + 1);
            count = std::strtoull(item.c_str() + c1 + 1, nullptr, 10);
            if (c2 != std::string::npos)
                value = std::strtoull(item.c_str() + c2 + 1,
                                      nullptr, 10);
        }

        bool matched = false;
        for (unsigned p = 0; p < kNumPoints; ++p) {
            if (name == kNames[p]) {
                arm(static_cast<Point>(p), count, value);
                matched = true;
                break;
            }
        }
        fatal_if(!matched,
                 "DARCO_FAULTINJECT: unknown injection point '%s'",
                 name.c_str());
    }
}

} // namespace darco::faultinject
