/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a one-way, relaxed-atomic flag shared between a
 * controller (typically the runner's watchdog thread) and the engine
 * executing a run. The engine polls it at *batch boundaries* — the
 * executor's record-batch flush (every 256 records) and the TOL
 * dispatch loop — never on the per-instruction hot path, so an
 * un-cancelled run pays nothing measurable (the engine_speed gate
 * enforces this; see docs/robustness.md).
 *
 * Cancellation is cooperative and lossy by design: the engine stops
 * at the next clean architectural point (a region-entry guest
 * boundary), finishes draining its timing pipelines, and reports the
 * partial run through the normal result path. Nothing is torn down
 * mid-instruction, so partial metrics are exact for the work that
 * did complete.
 */

#ifndef DARCO_COMMON_CANCEL_HH
#define DARCO_COMMON_CANCEL_HH

#include <atomic>

namespace darco::common {

class CancelToken
{
  public:
    /** Request cancellation (any thread; sticky until reset()). */
    void request() { flag.store(true, std::memory_order_relaxed); }

    /** Poll (engine side; relaxed — ordering carried by join/exit). */
    bool requested() const
    {
        return flag.load(std::memory_order_relaxed);
    }

    /** Re-arm for another run (single-owner, between runs only). */
    void reset() { flag.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> flag{false};
};

} // namespace darco::common

#endif // DARCO_COMMON_CANCEL_HH
