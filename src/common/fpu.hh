/**
 * @file
 * FP helpers shared by the guest emulator, the host executor and the
 * IR evaluator.
 *
 * GX86 and HRISC define FP arithmetic to produce the *canonical*
 * quiet NaN (0x7FF8000000000000) whenever the result is NaN, like
 * RISC-V. Rationale: C++ compiles `a * b` with either operand order,
 * and SSE NaN propagation returns the first operand's payload — so
 * NaN payloads would otherwise not be reproducible between the
 * independently-compiled authoritative and co-design execution paths,
 * breaking bit-exact co-simulation. Pure bit operations (moves,
 * loads/stores, FABS, FNEG) still preserve payloads.
 */

#ifndef DARCO_COMMON_FPU_HH
#define DARCO_COMMON_FPU_HH

#include <cmath>
#include <cstdint>
#include <cstring>

namespace darco {

/** The canonical quiet NaN all FP arithmetic results collapse to. */
inline double
canonicalNan()
{
    const uint64_t bits = 0x7FF8000000000000ull;
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

/** Canonicalize an FP arithmetic result. */
inline double
canonFp(double value)
{
    return std::isnan(value) ? canonicalNan() : value;
}

} // namespace darco

#endif // DARCO_COMMON_FPU_HH
