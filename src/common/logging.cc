#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace darco {

namespace {

// Atomic: the quiet switch is process-global and may be read from
// worker threads while the main thread flips it (docs/concurrency.md
// — the only intentionally shared mutable state in common/).
std::atomic<bool> quietFlag{false};

// Depth of live ScopedFatalThrow instances on this thread; >0 turns
// fatal() into a FatalError throw instead of a process exit.
thread_local unsigned fatalThrowDepth = 0;

} // namespace

void
setQuiet(bool q)
{
    quietFlag.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

ScopedFatalThrow::ScopedFatalThrow()
{
    ++fatalThrowDepth;
}

ScopedFatalThrow::~ScopedFatalThrow()
{
    --fatalThrowDepth;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0) {
        va_end(args);
        return std::string("<format error>");
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalKindImpl(ErrKind kind, const char *file, int line,
              const std::string &msg)
{
    if (fatalThrowDepth > 0) {
        throw FatalError(strprintf("%s @ %s:%d", msg.c_str(), file, line),
                         kind);
    }
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    fatalKindImpl(ErrKind::Unclassified, file, line, msg);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace darco
