/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#ifndef DARCO_COMMON_BITUTILS_HH
#define DARCO_COMMON_BITUTILS_HH

#include <cstdint>
#include <type_traits>

namespace darco {

/** Sign-extend the low @p bits bits of @p value to 64 bits. */
constexpr int64_t
sext(uint64_t value, unsigned bits)
{
    const unsigned shift = 64 - bits;
    return static_cast<int64_t>(value << shift) >> shift;
}

/** Sign-extend the low @p bits bits of @p value to 32 bits. */
constexpr int32_t
sext32(uint32_t value, unsigned bits)
{
    const unsigned shift = 32 - bits;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** Extract bits [hi:lo] (inclusive) of @p value. */
constexpr uint64_t
bits(uint64_t value, unsigned hi, unsigned lo)
{
    return (value >> lo) & ((uint64_t(1) << (hi - lo + 1)) - 1);
}

/** True iff @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be non-zero. */
constexpr unsigned
floorLog2(uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Round @p value up to the next multiple of @p align (power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of @p align (power of two). */
constexpr uint64_t
alignDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

/** Population count for flag masks. */
constexpr unsigned
popCount(uint64_t value)
{
    unsigned count = 0;
    while (value) {
        value &= value - 1;
        ++count;
    }
    return count;
}

} // namespace darco

#endif // DARCO_COMMON_BITUTILS_HH
