/**
 * @file
 * Column-aligned plain-text / CSV table writer used by the benchmark
 * harnesses to print paper-style result rows.
 */

#ifndef DARCO_COMMON_TABLE_HH
#define DARCO_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace darco {

/**
 * A simple results table. Columns are declared up front; rows are
 * appended as formatted strings. render() prints an aligned text
 * table, renderCsv() prints comma-separated values.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : columns(std::move(headers))
    {}

    /** Start a new row. */
    void
    beginRow()
    {
        rows.emplace_back();
        rows.back().reserve(columns.size());
    }

    /** Append a cell to the current row. */
    void add(std::string cell);

    /** Append a printf-formatted cell to the current row. */
    void addf(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    /** Number of data rows so far. */
    size_t numRows() const { return rows.size(); }

    /** Render as an aligned text table to @p out. */
    void render(std::FILE *out = stdout) const;

    /** Render as CSV to @p out. */
    void renderCsv(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
};

} // namespace darco

#endif // DARCO_COMMON_TABLE_HH
