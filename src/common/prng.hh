/**
 * @file
 * Deterministic pseudo-random number generator used by workload
 * generation and property tests.
 *
 * xorshift128+ keeps every experiment reproducible: all randomness in
 * the simulator flows through explicitly seeded Prng instances; there
 * is no dependence on wall-clock time or address-space layout.
 */

#ifndef DARCO_COMMON_PRNG_HH
#define DARCO_COMMON_PRNG_HH

#include <cstdint>

namespace darco {

/** Deterministic xorshift128+ generator. */
class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-seed via splitmix64 so that nearby seeds diverge. */
    void
    reseed(uint64_t seed)
    {
        auto splitmix = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0 = splitmix();
        s1 = splitmix();
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = s0;
        const uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t s0 = 1;
    uint64_t s1 = 2;
};

} // namespace darco

#endif // DARCO_COMMON_PRNG_HH
