/**
 * @file
 * Deterministic pseudo-random number generator used by workload
 * generation and property tests.
 *
 * xorshift128+ keeps every experiment reproducible: all randomness in
 * the simulator flows through explicitly seeded Prng instances; there
 * is no dependence on wall-clock time or address-space layout.
 */

#ifndef DARCO_COMMON_PRNG_HH
#define DARCO_COMMON_PRNG_HH

#include <cassert>
#include <cstdint>

namespace darco {

/** Deterministic xorshift128+ generator. */
class Prng
{
  public:
    explicit Prng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-seed via splitmix64 so that nearby seeds diverge. */
    void
    reseed(uint64_t seed)
    {
        auto splitmix = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0 = splitmix();
        s1 = splitmix();
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = s0;
        const uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /**
     * Uniform in [0, bound). @p bound must be non-zero.
     *
     * Lemire's multiply-shift bounded draw with rejection: exactly
     * uniform for every bound (a plain `next() % bound` over-weights
     * the low residues of non-power-of-two bounds by one part in
     * 2^64/bound). The rejection loop runs at most once in
     * expectation and almost never for small bounds.
     */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound != 0 && "Prng::below: bound must be non-zero");
        unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        uint64_t low = static_cast<uint64_t>(product);
        if (low < bound) {
            // 2^64 mod bound, computed without 128-bit division.
            const uint64_t threshold = (0 - bound) % bound;
            while (low < threshold) {
                product =
                    static_cast<unsigned __int128>(next()) * bound;
                low = static_cast<uint64_t>(product);
            }
        }
        return static_cast<uint64_t>(product >> 64);
    }

    /** Uniform in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        // Span in uint64_t: hi - lo + 1 in signed arithmetic
        // overflows (UB) for wide ranges. A span of 0 means the full
        // 64-bit range (e.g. range(INT64_MIN, INT64_MAX)), where any
        // draw is in range; the unsigned add wraps to the right
        // signed value.
        const uint64_t span = static_cast<uint64_t>(hi) -
                              static_cast<uint64_t>(lo) + 1;
        const uint64_t offset = span == 0 ? next() : below(span);
        return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                                    offset);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t s0 = 1;
    uint64_t s1 = 2;
};

} // namespace darco

#endif // DARCO_COMMON_PRNG_HH
