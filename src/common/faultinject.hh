/**
 * @file
 * Fault-injection hook points for the robustness test suite.
 *
 * A small set of named injection points is compiled into the engine
 * permanently; each is a single relaxed atomic load behind a global
 * armed-count fast gate, and every hook sits on a cold path (file
 * open, dispatch-loop service, journal append), so the disarmed cost
 * is effectively zero in release builds — verified by the
 * engine_speed perf gate rather than by compiling the hooks out,
 * which would leave the recovery paths untested in exactly the build
 * that ships.
 *
 * Arming is count-limited: arm(point, n) makes the next n fire()
 * calls at that point report true, then the point disarms itself.
 * That models both "fail once, then recover" (transient I/O) and
 * "trigger on the Nth event" (kill the process after N journal
 * appends — pending() distinguishes the final firing).
 *
 * Tests arm points in-process; child processes (the kill-and-resume
 * e2e) are armed through the DARCO_FAULTINJECT environment variable,
 * parsed by armFromEnv():  "point:count[:param][,point:count...]".
 */

#ifndef DARCO_COMMON_FAULTINJECT_HH
#define DARCO_COMMON_FAULTINJECT_HH

#include <cstdint>

namespace darco::faultinject {

enum class Point : uint8_t {
    TraceIoFail,    ///< trace read: fail the file I/O (transient)
    TraceCorrupt,   ///< trace read: flip byte `param` after the read
    MidRunThrow,    ///< TOL dispatch loop: fatal() mid-run
    GuestStall,     ///< Runtime::run: refill the budget (livelock)
    JournalKill,    ///< campaign journal: SIGKILL after Nth append
    NumPoints,
};

/** Fast gate: true iff any point is currently armed. */
bool anyArmed();

/** Arm @p point for the next @p count firings, with optional data. */
void arm(Point point, uint64_t count = 1, uint64_t param = 0);

void disarm(Point point);
void disarmAll();

/**
 * Consume one armed firing of @p point: true while the point is
 * armed (decrements its remaining count), false once exhausted or
 * never armed. The disarmed path is one relaxed atomic load.
 */
bool fire(Point point);

/** Remaining firings (0 = exhausted/never armed). */
uint64_t pending(Point point);

/** The `param` value the point was armed with. */
uint64_t param(Point point);

/** Parse DARCO_FAULTINJECT and arm the listed points (no-op when
 *  unset; unknown names fatal() — a typo must not silently pass). */
void armFromEnv();

/** Canonical name of @p point (the armFromEnv spelling). */
const char *pointName(Point point);

} // namespace darco::faultinject

#endif // DARCO_COMMON_FAULTINJECT_HH
