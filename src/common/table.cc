#include "common/table.hh"

#include <cstdarg>

#include "common/logging.hh"

namespace darco {

void
Table::add(std::string cell)
{
    panic_if(rows.empty(), "Table::add before beginRow");
    panic_if(rows.back().size() >= columns.size(),
             "Table row has more cells than columns (%zu)", columns.size());
    rows.back().push_back(std::move(cell));
}

void
Table::addf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[256];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    add(std::string(buf));
}

void
Table::render(std::FILE *out) const
{
    std::vector<size_t> widths(columns.size());
    for (size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();
        }
    }

    auto print_sep = [&]() {
        for (size_t c = 0; c < columns.size(); ++c) {
            std::fputc('+', out);
            for (size_t i = 0; i < widths[c] + 2; ++i)
                std::fputc('-', out);
        }
        std::fputs("+\n", out);
    };

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < columns.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c]
                                                       : std::string();
            std::fprintf(out, "| %-*s ", static_cast<int>(widths[c]),
                         cell.c_str());
        }
        std::fputs("|\n", out);
    };

    print_sep();
    print_row(columns);
    print_sep();
    for (const auto &row : rows)
        print_row(row);
    print_sep();
}

void
Table::renderCsv(std::FILE *out) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < columns.size(); ++c) {
            if (c)
                std::fputc(',', out);
            const std::string &cell = c < cells.size() ? cells[c]
                                                       : std::string();
            std::fputs(cell.c_str(), out);
        }
        std::fputc('\n', out);
    };
    print_row(columns);
    for (const auto &row : rows)
        print_row(row);
}

} // namespace darco
