/**
 * @file
 * Sparse paged memory used for both the authoritative guest space
 * (32-bit addresses) and the co-design component's host space (64-bit
 * addresses, which embeds the emulated guest memory in its low 4 GiB).
 *
 * Semantics:
 *  - loads from unmapped pages return zero and do not allocate,
 *  - stores allocate pages on demand and mark them dirty,
 *  - accesses may straddle page boundaries.
 *
 * Dirty-page tracking supports the co-simulation state checker, which
 * compares only pages either side has written.
 *
 * Layout: a two-level page directory (flat top-level array for
 * address spaces up to 32 bits, hashed top level beyond that) keeps
 * the load/store fast path free of hash lookups, and one-entry
 * last-page translation caches (separate for loads and stores) make
 * the common same-page access a couple of dependent loads. Pages are
 * individually heap-allocated, so pointers into them stay stable for
 * the lifetime of the memory.
 */

#ifndef DARCO_COMMON_PAGED_MEMORY_HH
#define DARCO_COMMON_PAGED_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace darco {

template <typename AddrT>
class PagedMemory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr AddrT kPageSize = AddrT(1) << kPageBits;
    static constexpr AddrT kOffsetMask = kPageSize - 1;

    using Addr = AddrT;
    using Page = std::array<uint8_t, kPageSize>;

    PagedMemory()
    {
        if constexpr (kFlatDirectory)
            dir.resize(kDirEntries);
    }

    /** Load @p size (1/2/4/8) bytes, little-endian, zero-extended. */
    uint64_t
    load(AddrT addr, unsigned size) const
    {
        if (inPage(addr, size)) {
            const Page *page = findPage(addr);
            if (!page)
                return 0;
            uint64_t value = 0;
            std::memcpy(&value, page->data() + offsetOf(addr), size);
            return value;
        }
        uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t(loadByte(addr + i)) << (8 * i);
        return value;
    }

    /** Store the low @p size bytes of @p value, little-endian. */
    void
    store(AddrT addr, uint64_t value, unsigned size)
    {
        if (inPage(addr, size)) {
            Page &page = getPage(addr);
            std::memcpy(page.data() + offsetOf(addr), &value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            storeByte(addr + i, uint8_t(value >> (8 * i)));
    }

    uint8_t load8(AddrT addr) const { return uint8_t(load(addr, 1)); }
    uint32_t load32(AddrT addr) const { return uint32_t(load(addr, 4)); }
    uint64_t load64(AddrT addr) const { return load(addr, 8); }

    void store8(AddrT addr, uint8_t v) { store(addr, v, 1); }
    void store32(AddrT addr, uint32_t v) { store(addr, v, 4); }
    void store64(AddrT addr, uint64_t v) { store(addr, v, 8); }

    double
    loadDouble(AddrT addr) const
    {
        const uint64_t bits = load64(addr);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void
    storeDouble(AddrT addr, double d)
    {
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        store64(addr, bits);
    }

    /** Bulk write (used by the loader). Page-chunked memcpy. */
    void
    writeBytes(AddrT addr, const uint8_t *data, size_t len)
    {
        while (len) {
            const size_t off = offsetOf(addr);
            const size_t chunk = std::min(len, size_t(kPageSize) - off);
            Page &page = getPage(addr);
            std::memcpy(page.data() + off, data, chunk);
            addr += AddrT(chunk);
            data += chunk;
            len -= chunk;
        }
    }

    /** Bulk read. Unmapped bytes read as zero. Page-chunked. */
    void
    readBytes(AddrT addr, uint8_t *data, size_t len) const
    {
        while (len) {
            const size_t off = offsetOf(addr);
            const size_t chunk = std::min(len, size_t(kPageSize) - off);
            if (const Page *page = findPage(addr))
                std::memcpy(data, page->data() + off, chunk);
            else
                std::memset(data, 0, chunk);
            addr += AddrT(chunk);
            data += chunk;
            len -= chunk;
        }
    }

    /** Pages written at least once (page base addresses). */
    const std::unordered_set<AddrT> &dirtyPages() const { return dirty; }

    /** Forget dirty-page info (not the data). */
    void
    clearDirty()
    {
        for (AddrT base : dirty) {
            if (Entry *entry = findEntry(base))
                entry->dirty = false;
        }
        dirty.clear();
    }

    /** Number of mapped pages. */
    size_t numPages() const { return pageCount; }

    /** Drop all contents. */
    void
    clear()
    {
        dir.clear();
        if constexpr (kFlatDirectory)
            dir.resize(kDirEntries);
        dirMap.clear();
        dirty.clear();
        pageCount = 0;
        lastLoadPage = nullptr;
        lastStoreEntry = nullptr;
    }

  private:
    /** One mapped page plus its dirty flag (set-membership cache). */
    struct Entry
    {
        Page data;
        bool dirty = false;
    };

    /** Pages per second-level table (covers 4 MiB per table). */
    static constexpr unsigned kTableBits = 10;
    static constexpr size_t kTableEntries = size_t(1) << kTableBits;
    /** Flat top level only for address spaces that keep it small. */
    static constexpr bool kFlatDirectory = sizeof(AddrT) <= 4;
    static constexpr size_t kDirEntries =
        kFlatDirectory
            ? (size_t(1) << (8 * sizeof(AddrT) - kPageBits - kTableBits))
            : 0;

    using Table = std::array<std::unique_ptr<Entry>, kTableEntries>;

    static AddrT pageBase(AddrT addr) { return addr & ~kOffsetMask; }
    static size_t offsetOf(AddrT addr) { return size_t(addr & kOffsetMask); }

    static size_t
    tableIndex(AddrT addr)
    {
        return size_t(addr >> kPageBits) & (kTableEntries - 1);
    }

    static bool
    inPage(AddrT addr, unsigned size)
    {
        return offsetOf(addr) + size <= kPageSize;
    }

    uint8_t
    loadByte(AddrT addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[offsetOf(addr)] : 0;
    }

    void
    storeByte(AddrT addr, uint8_t value)
    {
        getPage(addr)[offsetOf(addr)] = value;
    }

    const Table *
    findTable(AddrT addr) const
    {
        if constexpr (kFlatDirectory) {
            return dir[size_t(addr) >> (kPageBits + kTableBits)].get();
        } else {
            auto it = dirMap.find(addr >> (kPageBits + kTableBits));
            return it == dirMap.end() ? nullptr : it->second.get();
        }
    }

    Table &
    getTable(AddrT addr)
    {
        if constexpr (kFlatDirectory) {
            auto &slot = dir[size_t(addr) >> (kPageBits + kTableBits)];
            if (!slot)
                slot = std::make_unique<Table>();
            return *slot;
        } else {
            auto &slot = dirMap[addr >> (kPageBits + kTableBits)];
            if (!slot)
                slot = std::make_unique<Table>();
            return *slot;
        }
    }

    Entry *
    findEntry(AddrT addr) const
    {
        const Table *table = findTable(addr);
        return table ? (*table)[tableIndex(addr)].get() : nullptr;
    }

    const Page *
    findPage(AddrT addr) const
    {
        const AddrT base = pageBase(addr);
        if (lastLoadPage && base == lastLoadBase)
            return lastLoadPage;
        const Entry *entry = findEntry(addr);
        if (!entry)
            return nullptr;
        lastLoadBase = base;
        lastLoadPage = &entry->data;
        return lastLoadPage;
    }

    Page &
    getPage(AddrT addr)
    {
        const AddrT base = pageBase(addr);
        Entry *entry;
        if (lastStoreEntry && base == lastStoreBase) {
            entry = lastStoreEntry;
        } else {
            Table &table = getTable(addr);
            auto &slot = table[tableIndex(addr)];
            if (!slot) {
                slot = std::make_unique<Entry>();
                slot->data.fill(0);
                ++pageCount;
            }
            entry = slot.get();
            lastStoreBase = base;
            lastStoreEntry = entry;
        }
        if (!entry->dirty) {
            entry->dirty = true;
            dirty.insert(base);
        }
        return entry->data;
    }

    /** Flat top level (32-bit spaces); one slot per 4 MiB region. */
    std::vector<std::unique_ptr<Table>> dir;
    /** Hashed top level for wider address spaces. */
    std::unordered_map<AddrT, std::unique_ptr<Table>> dirMap;
    std::unordered_set<AddrT> dirty;
    size_t pageCount = 0;

    // One-entry translation caches (pages never move once mapped).
    mutable AddrT lastLoadBase = 0;
    mutable const Page *lastLoadPage = nullptr;
    AddrT lastStoreBase = 0;
    Entry *lastStoreEntry = nullptr;
};

} // namespace darco

#endif // DARCO_COMMON_PAGED_MEMORY_HH
