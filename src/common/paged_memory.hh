/**
 * @file
 * Sparse paged memory used for both the authoritative guest space
 * (32-bit addresses) and the co-design component's host space (64-bit
 * addresses, which embeds the emulated guest memory in its low 4 GiB).
 *
 * Semantics:
 *  - loads from unmapped pages return zero and do not allocate,
 *  - stores allocate pages on demand and mark them dirty,
 *  - accesses may straddle page boundaries.
 *
 * Dirty-page tracking supports the co-simulation state checker, which
 * compares only pages either side has written.
 */

#ifndef DARCO_COMMON_PAGED_MEMORY_HH
#define DARCO_COMMON_PAGED_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace darco {

template <typename AddrT>
class PagedMemory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr AddrT kPageSize = AddrT(1) << kPageBits;
    static constexpr AddrT kOffsetMask = kPageSize - 1;

    using Addr = AddrT;
    using Page = std::array<uint8_t, kPageSize>;

    /** Load @p size (1/2/4/8) bytes, little-endian, zero-extended. */
    uint64_t
    load(AddrT addr, unsigned size) const
    {
        if (inPage(addr, size)) {
            const Page *page = findPage(addr);
            if (!page)
                return 0;
            uint64_t value = 0;
            std::memcpy(&value, page->data() + offsetOf(addr), size);
            return value;
        }
        uint64_t value = 0;
        for (unsigned i = 0; i < size; ++i)
            value |= uint64_t(loadByte(addr + i)) << (8 * i);
        return value;
    }

    /** Store the low @p size bytes of @p value, little-endian. */
    void
    store(AddrT addr, uint64_t value, unsigned size)
    {
        if (inPage(addr, size)) {
            Page &page = getPage(addr);
            std::memcpy(page.data() + offsetOf(addr), &value, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            storeByte(addr + i, uint8_t(value >> (8 * i)));
    }

    uint8_t load8(AddrT addr) const { return uint8_t(load(addr, 1)); }
    uint32_t load32(AddrT addr) const { return uint32_t(load(addr, 4)); }
    uint64_t load64(AddrT addr) const { return load(addr, 8); }

    void store8(AddrT addr, uint8_t v) { store(addr, v, 1); }
    void store32(AddrT addr, uint32_t v) { store(addr, v, 4); }
    void store64(AddrT addr, uint64_t v) { store(addr, v, 8); }

    double
    loadDouble(AddrT addr) const
    {
        const uint64_t bits = load64(addr);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void
    storeDouble(AddrT addr, double d)
    {
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        store64(addr, bits);
    }

    /** Bulk write (used by the loader). */
    void
    writeBytes(AddrT addr, const uint8_t *data, size_t len)
    {
        for (size_t i = 0; i < len; ++i)
            storeByte(addr + AddrT(i), data[i]);
    }

    /** Bulk read. Unmapped bytes read as zero. */
    void
    readBytes(AddrT addr, uint8_t *data, size_t len) const
    {
        for (size_t i = 0; i < len; ++i)
            data[i] = loadByte(addr + AddrT(i));
    }

    /** Pages written at least once (page base addresses). */
    const std::unordered_set<AddrT> &dirtyPages() const { return dirty; }

    /** Forget dirty-page info (not the data). */
    void clearDirty() { dirty.clear(); }

    /** Number of mapped pages. */
    size_t numPages() const { return pages.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        dirty.clear();
    }

  private:
    static AddrT pageBase(AddrT addr) { return addr & ~kOffsetMask; }
    static size_t offsetOf(AddrT addr) { return size_t(addr & kOffsetMask); }

    static bool
    inPage(AddrT addr, unsigned size)
    {
        return offsetOf(addr) + size <= kPageSize;
    }

    uint8_t
    loadByte(AddrT addr) const
    {
        const Page *page = findPage(addr);
        return page ? (*page)[offsetOf(addr)] : 0;
    }

    void
    storeByte(AddrT addr, uint8_t value)
    {
        getPage(addr)[offsetOf(addr)] = value;
    }

    const Page *
    findPage(AddrT addr) const
    {
        auto it = pages.find(pageBase(addr));
        return it == pages.end() ? nullptr : it->second.get();
    }

    Page &
    getPage(AddrT addr)
    {
        const AddrT base = pageBase(addr);
        auto it = pages.find(base);
        if (it == pages.end()) {
            auto page = std::make_unique<Page>();
            page->fill(0);
            it = pages.emplace(base, std::move(page)).first;
        }
        dirty.insert(base);
        return *it->second;
    }

    std::unordered_map<AddrT, std::unique_ptr<Page>> pages;
    std::unordered_set<AddrT> dirty;
};

} // namespace darco

#endif // DARCO_COMMON_PAGED_MEMORY_HH
