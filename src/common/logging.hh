/**
 * @file
 * Status-message and error-exit helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * Conventions (matching gem5):
 *  - panic():  a simulator bug — something that should never happen
 *              regardless of user input. Calls std::abort().
 *  - fatal():  a user error (bad configuration, invalid workload) — the
 *              simulation cannot continue. Calls std::exit(1).
 *  - warn():   functionality may be imperfect but execution continues.
 *  - inform(): purely informational status output.
 */

#ifndef DARCO_COMMON_LOGGING_HH
#define DARCO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace darco {

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal: print a message with a severity prefix and location. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Global switch for warn()/inform() output (benches silence them). */
void setQuiet(bool quiet);
bool quiet();

} // namespace darco

#define panic(...) \
    ::darco::panicImpl(__FILE__, __LINE__, ::darco::strprintf(__VA_ARGS__))

#define fatal(...) \
    ::darco::fatalImpl(__FILE__, __LINE__, ::darco::strprintf(__VA_ARGS__))

#define warn(...) \
    ::darco::warnImpl(::darco::strprintf(__VA_ARGS__))

#define inform(...) \
    ::darco::informImpl(::darco::strprintf(__VA_ARGS__))

/**
 * panic_if: assert-like guard for conditions that indicate simulator
 * bugs. Always enabled (independent of NDEBUG) — the simulator relies
 * on these invariants for correctness of reported results.
 */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::darco::panicImpl(__FILE__, __LINE__,                     \
                               ::darco::strprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::darco::fatalImpl(__FILE__, __LINE__,                     \
                               ::darco::strprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#endif // DARCO_COMMON_LOGGING_HH
