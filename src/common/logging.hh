/**
 * @file
 * Status-message and error-exit helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * Conventions (matching gem5):
 *  - panic():  a simulator bug — something that should never happen
 *              regardless of user input. Calls std::abort().
 *  - fatal():  a user error (bad configuration, invalid workload) — the
 *              simulation cannot continue. Calls std::exit(1).
 *  - warn():   functionality may be imperfect but execution continues.
 *  - inform(): purely informational status output.
 */

#ifndef DARCO_COMMON_LOGGING_HH
#define DARCO_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace darco {

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

enum class ErrKind : uint8_t;

/** Internal: print a message with a severity prefix and location. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalKindImpl(ErrKind kind, const char *file, int line,
                                const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Global switch for warn()/inform() output (benches silence them). */
void setQuiet(bool quiet);
bool quiet();

/**
 * Coarse classification a fatal site can attach to its failure, so a
 * catcher (runner::BatchRunner via the ScopedFatalThrow seam) can map
 * it into the sim::RunError taxonomy without matching message text.
 * Plain fatal() raises Unclassified; only failure paths reachable
 * from a batch job need — or have — a sharper kind (fatal_kind).
 */
enum class ErrKind : uint8_t {
    Unclassified,   ///< any fatal() that never stated a kind
    BadWorkload,    ///< unresolvable workload URI / unknown benchmark
    Io,             ///< host I/O failure (possibly transient)
    Corrupt,        ///< input failed a structural/integrity check
    Guest,          ///< the guest program itself is invalid
    /** An engine invariant failed (e.g. the static IR verifier found a
     *  miscompile, src/analysis/). Permanent and never retried, like
     *  Unclassified, but deliberately classified: the site *knows* it
     *  is reporting a simulator bug, not an unknown failure. */
    Internal,
};

/**
 * What fatal() raises inside a ScopedFatalThrow region instead of
 * printing and exiting the process. what() carries the formatted
 * message plus the fatal site ("message @ file:line").
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what,
                        ErrKind err_kind = ErrKind::Unclassified)
        : std::runtime_error(what), errKind(err_kind)
    {}

    ErrKind kind() const { return errKind; }

  private:
    ErrKind errKind;
};

/**
 * While an instance is live on a thread, fatal()/fatal_if() on THAT
 * thread throw FatalError instead of exiting the process. This is
 * the batch-execution failure seam (runner::BatchRunner wraps each
 * job in one so a bad workload URI or unreadable trace fails the job,
 * not the whole sweep); docs/concurrency.md. The scope is
 * thread-local and nests. panic() is unaffected: a simulator bug
 * still aborts, because continuing other jobs after an invariant
 * violation would report numbers from a broken process.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow();
    ~ScopedFatalThrow();

    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;
};

} // namespace darco

#define panic(...) \
    ::darco::panicImpl(__FILE__, __LINE__, ::darco::strprintf(__VA_ARGS__))

#define fatal(...) \
    ::darco::fatalImpl(__FILE__, __LINE__, ::darco::strprintf(__VA_ARGS__))

/**
 * fatal() with an ErrKind attached, for failure paths a batch runner
 * can classify (see sim/run_error.hh). Outside a ScopedFatalThrow
 * region it behaves exactly like fatal().
 */
#define fatal_kind(kind, ...)                                          \
    ::darco::fatalKindImpl((kind), __FILE__, __LINE__,                 \
                           ::darco::strprintf(__VA_ARGS__))

#define warn(...) \
    ::darco::warnImpl(::darco::strprintf(__VA_ARGS__))

#define inform(...) \
    ::darco::informImpl(::darco::strprintf(__VA_ARGS__))

/**
 * panic_if: assert-like guard for conditions that indicate simulator
 * bugs. Always enabled (independent of NDEBUG) — the simulator relies
 * on these invariants for correctness of reported results.
 */
#define panic_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::darco::panicImpl(__FILE__, __LINE__,                     \
                               ::darco::strprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#define fatal_if(cond, ...)                                            \
    do {                                                               \
        if (cond) {                                                    \
            ::darco::fatalImpl(__FILE__, __LINE__,                     \
                               ::darco::strprintf(__VA_ARGS__));       \
        }                                                              \
    } while (0)

#endif // DARCO_COMMON_LOGGING_HH
