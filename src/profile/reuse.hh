/**
 * @file
 * Exact Mattson stack-distance engine for data-reuse-distance
 * profiles (the characterization layer's locality axis).
 *
 * The reuse (stack) distance of an access is the number of *distinct*
 * other lines touched since the previous access to the same line; a
 * first touch has infinite distance ("cold"). The histogram of these
 * distances is the canonical locality signature of a workload, and —
 * because an L-line fully-associative LRU cache hits exactly the
 * accesses with distance < L — it doubles as an analytic oracle for
 * the cache model (profile/analytic.hh, docs/metrics.md §6).
 *
 * Implementation: the classic hash-map + Fenwick-tree formulation of
 * Mattson's stack algorithm. Each line's most recent access time is
 * marked in a Fenwick (binary indexed) tree; the stack distance of a
 * re-access is the count of marked times newer than the line's own
 * mark — one prefix-sum difference, O(log N) per access instead of
 * the naive stack scan's O(N). Time slots are compacted in place
 * whenever the tree is mostly dead marks, so memory stays
 * O(distinct lines), not O(accesses).
 */

#ifndef DARCO_PROFILE_REUSE_HH
#define DARCO_PROFILE_REUSE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace darco::profile {

/**
 * Reuse-distance histogram at line granularity. Distances are exact
 * stack distances (0 = immediate re-reference to the same line);
 * cold first-touch accesses are counted separately, since their
 * distance is infinite. Sparse by construction: a real workload
 * touches few distinct distances relative to its access count.
 * Ordered map so iteration, serialization and equality are
 * deterministic.
 */
struct ReuseHistogram
{
    /** distance -> number of accesses at that distance. */
    std::map<uint64_t, uint64_t> counts;
    /** First-touch accesses (infinite distance) = distinct lines. */
    uint64_t coldAccesses = 0;

    /** Every profiled access (finite + cold). */
    uint64_t
    totalAccesses() const
    {
        uint64_t total = coldAccesses;
        for (const auto &[dist, n] : counts)
            total += n;
        return total;
    }

    /** Distinct lines ever touched (== cold accesses, by definition). */
    uint64_t distinctLines() const { return coldAccesses; }

    bool
    operator==(const ReuseHistogram &other) const
    {
        return coldAccesses == other.coldAccesses &&
               counts == other.counts;
    }
};

/**
 * The online engine: feed line identifiers in access order, read the
 * histogram at any point. Line identifiers are opaque 64-bit keys
 * (callers pass `addr >> lineShift`; the full 64-bit space is
 * supported so external traces with wide addresses profile exactly).
 */
class ReuseStack
{
  public:
    ReuseStack();

    /** Record one access to @p line, in stream order. */
    void access(uint64_t line);

    /** Histogram accumulated so far. */
    const ReuseHistogram &histogram() const { return hist; }

    /** Distinct lines currently tracked. */
    uint64_t distinctLines() const { return lastAccess.size(); }

  private:
    /** Sum of marks in [1, i]. */
    uint64_t prefix(uint64_t i) const;
    /** Add @p delta at time slot @p i (1-based, i <= capacity). */
    void update(uint64_t i, int64_t delta);
    /** Remap live time slots to 1..D and rebuild the tree. */
    void compact();

    ReuseHistogram hist;
    /** line -> its most recent (marked) access time, 1-based. */
    std::unordered_map<uint64_t, uint64_t> lastAccess;
    /** Fenwick tree over time slots; fenwick[0] unused. */
    std::vector<uint64_t> fenwick;
    uint64_t capacity;   ///< usable time slots (power of two)
    uint64_t clock = 0;  ///< last time slot handed out
};

} // namespace darco::profile

#endif // DARCO_PROFILE_REUSE_HH
