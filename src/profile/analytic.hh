/**
 * @file
 * Analytic LRU cache model derived from a reuse-distance histogram
 * (the characterization layer's cross-check axis).
 *
 * Mattson's inclusion property: a fully-associative LRU cache with L
 * lines hits exactly the accesses whose stack distance is < L, so the
 * histogram alone yields *exact* expected hit/miss counts for every
 * capacity at once — no simulation. The timing model's simulated
 * fully-associative LRU cache must reproduce these counts bit-exactly
 * on the same stream (enforced by tests/test_profile.cc), which makes
 * every profiled workload a self-validating characterization point.
 */

#ifndef DARCO_PROFILE_ANALYTIC_HH
#define DARCO_PROFILE_ANALYTIC_HH

#include <cstdint>
#include <vector>

#include "profile/reuse.hh"

namespace darco::profile::analytic {

/**
 * Exact expected miss count of a fully-associative LRU cache with
 * @p lines lines over the profiled stream: every cold access plus
 * every re-access whose stack distance is >= the capacity.
 */
inline uint64_t
expectedLruMisses(const ReuseHistogram &hist, uint64_t lines)
{
    uint64_t misses = hist.coldAccesses;
    for (auto it = hist.counts.lower_bound(lines);
         it != hist.counts.end(); ++it) {
        misses += it->second;
    }
    return misses;
}

/** Exact expected hit count (complement of expectedLruMisses). */
inline uint64_t
expectedLruHits(const ReuseHistogram &hist, uint64_t lines)
{
    return hist.totalAccesses() - expectedLruMisses(hist, lines);
}

/** One point of the analytic miss-ratio curve. */
struct MissCurvePoint
{
    uint64_t lines = 0;    ///< LRU capacity in cache lines
    uint64_t misses = 0;   ///< exact expected misses at that capacity
    double missRatio = 0;  ///< misses / total accesses
};

/**
 * Analytic LRU miss-ratio curve at power-of-two capacities from 1 up
 * to the first capacity that holds the whole footprint (where only
 * cold misses remain). This is fig_reuse's derived curve: the
 * characterization figure the simulated caches are validated against.
 */
inline std::vector<MissCurvePoint>
missRatioCurve(const ReuseHistogram &hist)
{
    std::vector<MissCurvePoint> curve;
    const uint64_t total = hist.totalAccesses();
    if (!total)
        return curve;
    for (uint64_t lines = 1;; lines *= 2) {
        MissCurvePoint pt;
        pt.lines = lines;
        pt.misses = expectedLruMisses(hist, lines);
        pt.missRatio = static_cast<double>(pt.misses) /
                       static_cast<double>(total);
        curve.push_back(pt);
        if (pt.misses == hist.coldAccesses)
            break;
    }
    return curve;
}

} // namespace darco::profile::analytic

#endif // DARCO_PROFILE_ANALYTIC_HH
