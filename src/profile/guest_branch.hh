/**
 * @file
 * Guest-level dynamic branch profile.
 *
 * The PR-7 characterization branch profile (profile/branch.hh) keys
 * by *host* PC — the right view for predictor studies, but useless
 * against a static guest CFG: translated code executes host branches
 * at host addresses. This profile instead hangs off the authoritative
 * emulator's BranchObserver hook (guest/emulator.hh). Under
 * co-simulation the state checker replays every retired guest
 * instruction through the emulator, so the observer sees the exact
 * dynamic guest branch stream regardless of which TOL mode (IM, BBM,
 * SBM) executed it — including chained superblock exits that never
 * touch a dispatch path.
 *
 * The static CFG analyzer (src/analysis/cfg.hh) cross-validates this
 * profile against the CFG it derives from the program bytes alone:
 * every observed site must be a static branch, and the per-site
 * taken/not-taken counts must satisfy flow conservation over the
 * basic-block graph.
 *
 * Deliberately NOT part of profile::RunProfile: it is derived from
 * the authoritative emulator, not from timing records, so it has no
 * place in the record journal or the trace format — replay parity is
 * untouched.
 */

#ifndef DARCO_PROFILE_GUEST_BRANCH_HH
#define DARCO_PROFILE_GUEST_BRANCH_HH

#include <cstdint>
#include <map>

#include "guest/emulator.hh"
#include "guest/isa.hh"

namespace darco::profile {

/** Dynamic observations of one static guest branch site. */
struct GuestBranchSite
{
    uint64_t taken = 0;      ///< executions that redirected control
    uint64_t notTaken = 0;   ///< not-taken JCC executions (fallthrough)
    bool isCond = false;
    bool isIndirect = false; ///< JMPI / CALLI / RET
    bool isCall = false;
    bool isRet = false;
    /**
     * Observed landing EIPs of taken executions, with counts. For a
     * direct branch this has a single entry; for an indirect branch
     * it is the dynamic target distribution. Not-taken executions are
     * not recorded here — the fallthrough address is static.
     */
    std::map<uint32_t, uint64_t> targets;

    uint64_t execs() const { return taken + notTaken; }
};

/**
 * Whole-run guest branch profile, keyed by branch EIP. std::map for
 * deterministic iteration (reports and cross-checks walk it).
 */
struct GuestBranchProfile
{
    std::map<uint32_t, GuestBranchSite> sites;
    uint64_t dynBranches = 0;
    uint64_t dynCondBranches = 0;
};

/** BranchObserver that accumulates a GuestBranchProfile. */
class GuestBranchCollector : public guest::BranchObserver
{
  public:
    void
    onBranch(uint32_t pc, uint32_t next, bool taken,
             const guest::OpInfo &info) override
    {
        GuestBranchSite &site = prof.sites[pc];
        site.isCond = info.isCondBranch;
        site.isIndirect = info.isIndirect;
        site.isCall = info.isCall;
        site.isRet = info.isRet;
        if (taken) {
            ++site.taken;
            ++site.targets[next];
        } else {
            ++site.notTaken;
        }
        ++prof.dynBranches;
        if (info.isCondBranch)
            ++prof.dynCondBranches;
    }

    const GuestBranchProfile &profile() const { return prof; }

  private:
    GuestBranchProfile prof;
};

} // namespace darco::profile

#endif // DARCO_PROFILE_GUEST_BRANCH_HH
