/**
 * @file
 * Branch-behavior profiles (the characterization layer's control-flow
 * axis): per-static-branch taken/not-taken counts, direction
 * transition rate, per-site and execution-weighted branch entropy,
 * and mispredict attribution.
 *
 * Mispredicts are attributed with a *replica* of the timing model's
 * own Gshare+BTB predictor (timing/branch_predictor.hh) fed the same
 * branch records in the same stream order the pipeline fetches them —
 * the engine is deterministic, so the replica's outcomes are
 * bit-identical to the combined pipeline's BpStats (asserted by
 * tests/test_profile.cc). This keeps the pipeline hot path untouched
 * when profiling is on, at the cost of one redundant predictor.
 */

#ifndef DARCO_PROFILE_BRANCH_HH
#define DARCO_PROFILE_BRANCH_HH

#include <cmath>
#include <cstdint>
#include <map>

#include "timing/branch_predictor.hh"
#include "timing/record.hh"

namespace darco::profile {

/** Dynamic behavior of one static branch site (host PC). */
struct BranchSite
{
    uint64_t taken = 0;
    uint64_t notTaken = 0;
    /** Direction changes between consecutive executions. */
    uint64_t transitions = 0;
    /** Wrong predictions attributed to this site (replica outcome). */
    uint64_t mispredicts = 0;
    bool isCond = false;
    bool isIndirect = false;

    uint64_t execs() const { return taken + notTaken; }

    /** Taken fraction (0 when never executed). */
    double
    takenRate() const
    {
        const uint64_t n = execs();
        return n ? static_cast<double>(taken) /
                   static_cast<double>(n)
                 : 0.0;
    }

    /**
     * Binary direction entropy in bits: 0 for a perfectly biased
     * site, 1 for an unbiased one. Exact at the extremes (p in
     * {0, 1/2, 1} hits 0.0 / 1.0 / 0.0 bit-for-bit), which the
     * closed-form tests assert.
     */
    double
    entropy() const
    {
        const double p = takenRate();
        if (p <= 0.0 || p >= 1.0)
            return 0.0;
        if (p == 0.5)
            return 1.0;
        return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
    }

    /** transitions / (execs - 1): 1.0 = perfectly alternating. */
    double
    transitionRate() const
    {
        const uint64_t n = execs();
        return n > 1 ? static_cast<double>(transitions) /
                       static_cast<double>(n - 1)
                     : 0.0;
    }

    bool
    operator==(const BranchSite &other) const
    {
        return taken == other.taken && notTaken == other.notTaken &&
               transitions == other.transitions &&
               mispredicts == other.mispredicts &&
               isCond == other.isCond &&
               isIndirect == other.isIndirect;
    }
};

/** The whole run's branch profile (docs/metrics.md §6). */
struct BranchProfile
{
    /** Static site map, keyed by host branch PC. Ordered so
     *  iteration, serialization and equality are deterministic. */
    std::map<uint32_t, BranchSite> sites;

    // Dynamic aggregates (redundant with the site map; kept so
    // consumers need no reduction pass).
    uint64_t dynBranches = 0;       ///< every control transfer
    uint64_t dynCondBranches = 0;   ///< conditional subset
    uint64_t mispredicts = 0;       ///< replica-predictor total

    /** Conditional static sites executed at least once. */
    uint64_t
    staticCondSites() const
    {
        uint64_t n = 0;
        for (const auto &[pc, site] : sites)
            n += site.isCond && site.execs() ? 1 : 0;
        return n;
    }

    /**
     * Execution-weighted mean direction entropy over conditional
     * branches, in bits: sum(execs * entropy) / sum(execs). The
     * paper-style "how predictable is this workload's control flow"
     * scalar.
     */
    double
    weightedEntropy() const
    {
        double weighted = 0;
        uint64_t total = 0;
        for (const auto &[pc, site] : sites) {
            if (!site.isCond || !site.execs())
                continue;
            weighted += static_cast<double>(site.execs()) *
                        site.entropy();
            total += site.execs();
        }
        return total ? weighted / static_cast<double>(total) : 0.0;
    }

    /**
     * Aggregate transition rate over conditional branches:
     * total transitions / total (execs - 1). Exactly 1.0 for a
     * perfectly alternating workload, 0.0 for a fully biased one.
     */
    double
    transitionRate() const
    {
        uint64_t transitions = 0;
        uint64_t denom = 0;
        for (const auto &[pc, site] : sites) {
            if (!site.isCond || site.execs() < 2)
                continue;
            transitions += site.transitions;
            denom += site.execs() - 1;
        }
        return denom ? static_cast<double>(transitions) /
                       static_cast<double>(denom)
                     : 0.0;
    }

    /** Replica-predictor mispredict fraction of all transfers. */
    double
    mispredictRate() const
    {
        return dynBranches ? static_cast<double>(mispredicts) /
                             static_cast<double>(dynBranches)
                           : 0.0;
    }

    bool
    operator==(const BranchProfile &other) const
    {
        return sites == other.sites &&
               dynBranches == other.dynBranches &&
               dynCondBranches == other.dynCondBranches &&
               mispredicts == other.mispredicts;
    }
};

/** Online collector: feed branch records in stream order. */
class BranchCollector
{
  public:
    explicit BranchCollector(const timing::TimingConfig &config)
        : cfg(config), predictor(cfg)
    {}

    /** Record one executed control transfer (rec.isBranch). */
    void
    branch(const timing::Record &rec)
    {
        BranchSite &site = prof.sites[rec.pc];
        site.isCond = rec.isCondBranch;
        site.isIndirect = rec.isIndirect;
        if (rec.isCondBranch && site.execs() &&
            lastTaken[rec.pc] != rec.taken) {
            ++site.transitions;
        }
        lastTaken[rec.pc] = rec.taken;
        if (rec.taken)
            ++site.taken;
        else
            ++site.notTaken;
        ++prof.dynBranches;
        prof.dynCondBranches += rec.isCondBranch ? 1 : 0;
        const bool right = predictor.predict(
            rec.pc, rec.taken, rec.branchTarget, rec.isCondBranch,
            rec.isIndirect);
        if (!right) {
            ++site.mispredicts;
            ++prof.mispredicts;
        }
    }

    const BranchProfile &profile() const { return prof; }

  private:
    /** Own the config: BranchPredictor keeps a reference to it. */
    timing::TimingConfig cfg;
    timing::BranchPredictor predictor;
    BranchProfile prof;
    /** Previous direction per site (collector state, not profile). */
    std::map<uint32_t, bool> lastTaken;
};

} // namespace darco::profile

#endif // DARCO_PROFILE_BRANCH_HH
