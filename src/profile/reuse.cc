#include "profile/reuse.hh"

#include <algorithm>

namespace darco::profile {

namespace {

/** Smallest tree worth allocating; grows by doubling. */
constexpr uint64_t kInitialCapacity = 1024;

} // namespace

ReuseStack::ReuseStack() : capacity(kInitialCapacity)
{
    fenwick.assign(capacity + 1, 0);
}

uint64_t
ReuseStack::prefix(uint64_t i) const
{
    uint64_t sum = 0;
    for (; i > 0; i -= i & (~i + 1))
        sum += fenwick[i];
    return sum;
}

void
ReuseStack::update(uint64_t i, int64_t delta)
{
    for (; i <= capacity; i += i & (~i + 1))
        fenwick[i] = static_cast<uint64_t>(
            static_cast<int64_t>(fenwick[i]) + delta);
}

void
ReuseStack::compact()
{
    // Collect the live (time, line) marks, oldest first, and hand
    // out fresh consecutive time slots in the same relative order —
    // relative recency is all the distance query ever reads, so the
    // histogram is unaffected (the brute-force A/B tests cross this
    // path deliberately).
    std::vector<std::pair<uint64_t, uint64_t>> live;
    live.reserve(lastAccess.size());
    for (const auto &[line, time] : lastAccess)
        live.emplace_back(time, line);
    std::sort(live.begin(), live.end());

    // Capacity never shrinks: every line ever touched keeps one live
    // mark, so live.size() is monotone and a capacity that doubled
    // (live > capacity/4 at the time) can never fall back below the
    // threshold that grew it.
    fenwick.assign(capacity + 1, 0);
    clock = 0;
    for (const auto &[time, line] : live) {
        lastAccess[line] = ++clock;
        update(clock, +1);
    }
}

void
ReuseStack::access(uint64_t line)
{
    const auto it = lastAccess.find(line);
    if (it != lastAccess.end()) {
        // Marked times newer than this line's own mark are exactly
        // the distinct lines touched since: each line holds one mark,
        // at its most recent access.
        const uint64_t distance = prefix(clock) - prefix(it->second);
        ++hist.counts[distance];
        update(it->second, -1);
        // Out of the map before a possible compact(): the line's old
        // mark is dead and must not be resurrected by the rebuild.
        lastAccess.erase(it);
    } else {
        ++hist.coldAccesses;
    }

    if (clock == capacity) {
        // Out of time slots. If most marks are dead (re-accessed
        // lines moved forward), renumber in place; otherwise the
        // live set genuinely needs more room.
        if (lastAccess.size() + 1 <= capacity / 2) {
            compact();
        } else {
            // Doubling a Fenwick tree in place: new index 2C is the
            // one new node whose range (0, 2C] covers existing data —
            // its value is the whole current sum; every other new
            // index covers a still-empty subrange of (C, 2C].
            const uint64_t total = prefix(capacity);
            capacity *= 2;
            fenwick.resize(capacity + 1, 0);
            fenwick[capacity] = total;
        }
    }
    lastAccess[line] = ++clock;
    update(clock, +1);
}

} // namespace darco::profile
