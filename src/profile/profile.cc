#include "profile/profile.hh"

#include <cinttypes>
#include <cstdio>

namespace darco::profile {

namespace {

/** log2 of a power-of-two line size (mirrors cache.cc's derivation). */
uint32_t
lineShiftOf(uint32_t line_bytes)
{
    uint32_t shift = 0;
    while ((1u << shift) < line_bytes)
        ++shift;
    return shift;
}

} // namespace

Collector::Collector(const timing::TimingConfig &config)
    : branchCollector(config),
      lineBytesUsed(config.l1d.lineBytes),
      lineShift(lineShiftOf(config.l1d.lineBytes))
{}

void
Collector::consume(const timing::Record &rec)
{
    if (rec.isLoad || rec.isStore)
        dataStack.access(rec.memAddr >> lineShift);
    if (rec.isBranch)
        branchCollector.branch(rec);
}

void
Collector::consumeBatch(const timing::Record *recs, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        consume(recs[i]);
}

RunProfile
Collector::profile() const
{
    RunProfile prof;
    prof.lineBytes = lineBytesUsed;
    prof.dataReuse = dataStack.histogram();
    prof.branches = branchCollector.profile();
    return prof;
}

std::string
diffProfiles(const RunProfile &a, const RunProfile &b)
{
    std::string diff;
    char line[192];
    auto mismatch = [&](const char *what, uint64_t va, uint64_t vb) {
        if (va != vb) {
            std::snprintf(line, sizeof(line),
                          "%s: %" PRIu64 " vs %" PRIu64 "\n", what,
                          va, vb);
            diff += line;
        }
    };

    mismatch("profile.lineBytes", a.lineBytes, b.lineBytes);
    mismatch("profile.dataReuse.coldAccesses",
             a.dataReuse.coldAccesses, b.dataReuse.coldAccesses);
    if (a.dataReuse.counts != b.dataReuse.counts) {
        // Name the first differing distance so the gate's failure
        // output localizes the divergence, not just detects it.
        auto ia = a.dataReuse.counts.begin();
        auto ib = b.dataReuse.counts.begin();
        while (ia != a.dataReuse.counts.end() &&
               ib != b.dataReuse.counts.end() && *ia == *ib) {
            ++ia;
            ++ib;
        }
        const uint64_t dist = ia != a.dataReuse.counts.end()
            ? ia->first
            : ib->first;
        std::snprintf(line, sizeof(line),
                      "profile.dataReuse.counts: first mismatch at "
                      "distance %" PRIu64 "\n", dist);
        diff += line;
    }

    mismatch("profile.branches.dynBranches", a.branches.dynBranches,
             b.branches.dynBranches);
    mismatch("profile.branches.dynCondBranches",
             a.branches.dynCondBranches, b.branches.dynCondBranches);
    mismatch("profile.branches.mispredicts", a.branches.mispredicts,
             b.branches.mispredicts);
    mismatch("profile.branches.sites", a.branches.sites.size(),
             b.branches.sites.size());
    if (a.branches.sites.size() == b.branches.sites.size() &&
        a.branches.sites != b.branches.sites) {
        auto ia = a.branches.sites.begin();
        auto ib = b.branches.sites.begin();
        while (ia != a.branches.sites.end() && *ia == *ib) {
            ++ia;
            ++ib;
        }
        std::snprintf(line, sizeof(line),
                      "profile.branches.sites: first mismatch at "
                      "pc 0x%" PRIx32 " vs 0x%" PRIx32 "\n",
                      ia->first, ib->first);
        diff += line;
    }
    return diff;
}

} // namespace darco::profile
