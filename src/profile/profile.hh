/**
 * @file
 * The characterization-profile collector: one RecordSink that turns
 * the already-batched record stream into a per-run RunProfile —
 * data-reuse-distance histogram (profile/reuse.hh) plus branch
 * profile (profile/branch.hh). Attached to the record fanout by
 * sim::System when SimConfig::profile is on; the hot path is
 * untouched when off (no sink registered, no per-record branch).
 *
 * Stream-order contract: the fanout delivers records in emission
 * order, which is the same program order the combined pipeline
 * accesses the L1-D and the branch predictor in (fetch/issue are
 * in-order). That order equivalence is what makes the collected
 * profiles directly comparable with the pipeline's own counters —
 * the analytic LRU cross-check (profile/analytic.hh) and mispredict
 * attribution both rely on it, and tests/test_profile.cc enforces it.
 */

#ifndef DARCO_PROFILE_PROFILE_HH
#define DARCO_PROFILE_PROFILE_HH

#include <string>

#include "profile/branch.hh"
#include "profile/reuse.hh"
#include "timing/record.hh"

namespace darco::profile {

/**
 * Everything the characterization layer measured in one run. Part of
 * sim::RunSnapshot when profiling is on, so BatchRunner results, the
 * campaign journal and trace replay all carry it; bit-identity across
 * replays/workers is enforced with diffProfiles below.
 */
struct RunProfile
{
    /** Line granularity the reuse histogram was collected at. */
    uint32_t lineBytes = 64;
    /** Data (LD/ST effective address) reuse-distance histogram. */
    ReuseHistogram dataReuse;
    /** Per-static-branch behavior + aggregates. */
    BranchProfile branches;

    bool
    operator==(const RunProfile &other) const
    {
        return lineBytes == other.lineBytes &&
               dataReuse == other.dataReuse &&
               branches == other.branches;
    }
};

/**
 * Exact comparison of two run profiles, mirroring timing::diffStats /
 * tol::diffTolStats: newline-separated description of each mismatch,
 * empty when bit-identical. Used by the replay/parallel parity gates.
 */
std::string diffProfiles(const RunProfile &a, const RunProfile &b);

/**
 * The online collector. Feed it the record stream (it is a regular
 * fanout sink); read the profile after the producer has flushed.
 */
class Collector : public timing::RecordSink
{
  public:
    /**
     * @param config host timing parameters: l1d.lineBytes sets the
     *        reuse granularity; the branch-predictor geometry
     *        parameterizes the mispredict-attribution replica.
     */
    explicit Collector(const timing::TimingConfig &config);

    void consume(const timing::Record &rec) override;
    void consumeBatch(const timing::Record *recs,
                      std::size_t count) override;

    /** Profile accumulated so far (copies the collector state). */
    RunProfile profile() const;

  private:
    ReuseStack dataStack;
    BranchCollector branchCollector;
    uint32_t lineBytesUsed;
    uint32_t lineShift;
};

} // namespace darco::profile

#endif // DARCO_PROFILE_PROFILE_HH
