#include "timing/pipeline.hh"

#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::timing {

const char *
bucketName(Bucket b)
{
    static const char *names[] = {
        "instructions", "dcache-bubble", "icache-bubble",
        "branch-bubble", "scheduling",
    };
    return names[static_cast<unsigned>(b)];
}

const char *
moduleName(Module m)
{
    static const char *names[] = {
        "app", "tol-other", "im", "bbm", "sbm", "chaining", "lookup",
    };
    return names[static_cast<unsigned>(m)];
}

double
PipeStats::bucketTotal(Bucket b) const
{
    double total = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        total += bucket[static_cast<unsigned>(b)][m];
    return total;
}

double
PipeStats::sourceCycles(bool region) const
{
    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += bucketSrc[b][region ? 1 : 0];
    return total;
}

double
PipeStats::moduleCycles(Module m) const
{
    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += bucket[b][static_cast<unsigned>(m)];
    return total;
}

double
PipeStats::tolCycles() const
{
    double total = 0;
    for (unsigned m = 1; m < kNumModules; ++m)
        total += moduleCycles(static_cast<Module>(m));
    return total;
}

double
PipeStats::appCycles() const
{
    return moduleCycles(Module::App);
}

uint64_t
PipeStats::tolInsts() const
{
    uint64_t total = 0;
    for (unsigned m = 1; m < kNumModules; ++m)
        total += insts[m];
    return total;
}

uint64_t
PipeStats::appInsts() const
{
    return insts[static_cast<unsigned>(Module::App)];
}

double
PipeStats::ipc() const
{
    uint64_t total = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        total += insts[m];
    return cycles ? static_cast<double>(total) /
                    static_cast<double>(cycles)
                  : 0.0;
}

Pipeline::Pipeline(const TimingConfig &config, Filter f)
    : cfg(config), filter(f),
      l2c(config.l2, nullptr, config.memLatency),
      l1ic(config.l1i, &l2c, config.memLatency),
      l1dc(config.l1d, &l2c, config.memLatency),
      dtlb(config),
      bp(config),
      pf(config.prefetcherEntries, l2c)
{}

void
Pipeline::consume(const Record &rec)
{
    panic_if(finished, "consume after finish");
    // Isolation instances split by stream source so the two sides
    // never share instruction-cache lines (see record.hh).
    if (filter == Filter::TolOnly && rec.fromRegion)
        return;
    if (filter == Filter::AppOnly && !rec.fromRegion)
        return;
    if (filter == Filter::TolModule && rec.module == Module::App)
        return;

    ++stat.records;
    pending.push_back(InFlight{rec, 0, false});

    // Keep the in-flight window bounded; advance the clock as needed.
    while (pending.size() > 64)
        step();
}

bool
Pipeline::workRemains() const
{
    return !pending.empty() || !frontend.empty() || !iq.empty();
}

void
Pipeline::finish()
{
    if (finished)
        return;
    while (workRemains())
        step();
    finished = true;
    stat.cycles = now;
    stat.l1i = l1ic.stats();
    stat.l1d = l1dc.stats();
    stat.l2 = l2c.stats();
    stat.tlb = dtlb.stats();
    stat.bp = bp.stats();
    stat.prefetch = pf.stats();
}

void
Pipeline::issueOne(InFlight &inflight)
{
    const Record &rec = inflight.rec;
    const host::HOpInfo &info = host::hopInfo(rec.op);
    const unsigned mod = static_cast<unsigned>(rec.module);

    uint32_t latency;
    switch (info.execClass) {
      case host::ExecClass::IntSimple:  latency = cfg.intSimpleLatency; break;
      case host::ExecClass::IntComplex: latency = cfg.intComplexLatency; break;
      case host::ExecClass::FpSimple:   latency = cfg.fpSimpleLatency; break;
      case host::ExecClass::FpComplex:  latency = cfg.fpComplexLatency; break;
      default:                          latency = 1; break;
    }

    bool load_missed = false;
    if (rec.isLoad) {
        uint32_t extra = 0;
        if (host::amap::isGuestAddr(rec.memAddr))
            extra = dtlb.access(rec.memAddr);
        bool miss = false;
        const uint32_t dlat = l1dc.access(rec.memAddr, false, miss);
        if (cfg.prefetcherEnabled)
            pf.train(rec.pc, rec.memAddr);
        latency = 1 + extra + dlat;
        load_missed = miss || extra > 0;
    } else if (rec.isStore) {
        // Stores retire through an ideal store buffer: they update the
        // hierarchy (and may evict) but never stall the pipe.
        if (host::amap::isGuestAddr(rec.memAddr))
            (void)dtlb.access(rec.memAddr);
        bool miss = false;
        (void)l1dc.access(rec.memAddr, true, miss);
        latency = 1;
    }

    if (rec.rd != host::kNoReg) {
        regReady[rec.rd] = now + 1 + (latency > 1 ? latency - 1 : 0);
        regProducer[rec.rd] = rec.module;
        regProducerSrc[rec.rd] = rec.fromRegion;
        regLoadMiss[rec.rd] = rec.isLoad && load_missed;
    }

    if (rec.isBranch && inflight.mispredicted) {
        // Resolved in EXE; the front-end refetches afterwards so the
        // end-to-end penalty equals cfg.mispredictPenalty.
        fetchBlockedUntil = now + cfg.mispredictPenalty - 3;
        fetchHaltedForBranch = false;
        starveBucket = Bucket::BranchBubble;
        starveModule = rec.module;
        starveSrcRegion = rec.fromRegion;
    }

    ++stat.insts[mod];
}

void
Pipeline::issuePhase(unsigned &issued_count)
{
    issued_count = 0;
    std::array<unsigned, 8> issued_modules{};
    std::array<bool, 8> issued_src{};
    unsigned issued_n = 0;

    while (issued_count < cfg.issueWidth && !iq.empty()) {
        InFlight &head = iq.front();
        if (head.arrival > now)
            break;

        // Scoreboard: both sources ready?
        uint8_t blocking = host::kNoReg;
        const uint8_t srcs[2] = {head.rec.rs1, head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regReady.size() &&
                regReady[src] > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg)
            break;

        issueOne(head);
        issued_modules[issued_n % issued_modules.size()] =
            static_cast<unsigned>(head.rec.module);
        issued_src[issued_n % issued_src.size()] = head.rec.fromRegion;
        ++issued_n;
        iq.pop_front();
        ++issued_count;
    }

    if (issued_count) {
        const double share = 1.0 / static_cast<double>(issued_count);
        for (unsigned i = 0; i < issued_count; ++i) {
            stat.bucket[static_cast<unsigned>(Bucket::Insts)]
                       [issued_modules[i]] += share;
            stat.bucketSrc[static_cast<unsigned>(Bucket::Insts)]
                          [issued_src[i] ? 1 : 0] += share;
        }
    }
}

void
Pipeline::accountCycle(unsigned issued_count)
{
    if (issued_count)
        return;  // credited in issuePhase

    if (!iq.empty() && iq.front().arrival <= now) {
        // Head present but not issuable: scoreboard stall.
        const InFlight &head = iq.front();
        uint8_t blocking = host::kNoReg;
        const uint8_t srcs[2] = {head.rec.rs1, head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regReady.size() &&
                regReady[src] > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg && regLoadMiss[blocking]) {
            stat.bucket[static_cast<unsigned>(Bucket::DcacheBubble)]
                       [static_cast<unsigned>(regProducer[blocking])] +=
                1.0;
            stat.bucketSrc[static_cast<unsigned>(Bucket::DcacheBubble)]
                          [regProducerSrc[blocking] ? 1 : 0] += 1.0;
        } else {
            stat.bucket[static_cast<unsigned>(Bucket::SchedBubble)]
                       [static_cast<unsigned>(head.rec.module)] += 1.0;
            stat.bucketSrc[static_cast<unsigned>(Bucket::SchedBubble)]
                          [head.rec.fromRegion ? 1 : 0] += 1.0;
        }
        return;
    }

    // IQ empty (or only future arrivals): front-end starvation.
    stat.bucket[static_cast<unsigned>(starveBucket)]
               [static_cast<unsigned>(starveModule)] += 1.0;
    stat.bucketSrc[static_cast<unsigned>(starveBucket)]
                  [starveSrcRegion ? 1 : 0] += 1.0;
}

void
Pipeline::fetchPhase()
{
    // Move front-end arrivals into the IQ.
    while (!frontend.empty() && frontend.front().arrival <= now + 1 &&
           iq.size() < cfg.iqSize) {
        iq.push_back(frontend.front());
        frontend.pop_front();
    }

    if (now < fetchBlockedUntil || fetchHaltedForBranch)
        return;

    unsigned fetched = 0;
    while (fetched < cfg.issueWidth && !pending.empty() &&
           frontend.size() < 8) {
        InFlight inflight = pending.front();
        const Record &rec = inflight.rec;

        const uint32_t line = rec.pc / cfg.l1i.lineBytes;
        if (line != lastFetchLine) {
            bool miss = false;
            const uint32_t lat = l1ic.access(rec.pc, false, miss);
            lastFetchLine = line;
            if (miss) {
                // Fetch resumes after the fill; this instruction
                // completes its front-end traversal afterwards.
                fetchBlockedUntil = now + lat;
                starveBucket = Bucket::IcacheBubble;
                starveModule = rec.module;
                starveSrcRegion = rec.fromRegion;
                inflight.arrival = now + lat + 3;
                if (rec.isBranch) {
                    inflight.mispredicted = !bp.predict(
                        rec.pc, rec.taken, rec.branchTarget,
                        rec.isCondBranch, rec.isIndirect);
                    if (inflight.mispredicted) {
                        fetchHaltedForBranch = true;
                        starveBucket = Bucket::BranchBubble;
                        starveModule = rec.module;
                        starveSrcRegion = rec.fromRegion;
                    }
                }
                frontend.push_back(inflight);
                pending.pop_front();
                return;
            }
        }

        inflight.arrival = now + 3;  // AC/IF/DEC traversal
        if (rec.isBranch) {
            inflight.mispredicted = !bp.predict(
                rec.pc, rec.taken, rec.branchTarget, rec.isCondBranch,
                rec.isIndirect);
        }
        frontend.push_back(inflight);
        pending.pop_front();
        ++fetched;

        if (rec.isBranch && inflight.mispredicted) {
            // Wrong-path fetch suppressed until the branch resolves.
            fetchHaltedForBranch = true;
            starveBucket = Bucket::BranchBubble;
            starveModule = rec.module;
            starveSrcRegion = rec.fromRegion;
            return;
        }
    }
}

void
Pipeline::step()
{
    unsigned issued = 0;
    issuePhase(issued);
    accountCycle(issued);
    fetchPhase();
    ++now;
}

} // namespace darco::timing
