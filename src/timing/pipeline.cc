#include "timing/pipeline.hh"

#include <algorithm>
#include <cstdio>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::timing {

const char *
bucketName(Bucket b)
{
    static const char *names[] = {
        "instructions", "dcache-bubble", "icache-bubble",
        "branch-bubble", "scheduling",
    };
    return names[static_cast<unsigned>(b)];
}

const char *
moduleName(Module m)
{
    static const char *names[] = {
        "app", "tol-other", "im", "bbm", "sbm", "chaining", "lookup",
    };
    return names[static_cast<unsigned>(m)];
}

std::string
diffStats(const PipeStats &a, const PipeStats &b)
{
    std::string diff;
    char line[160];
    auto mismatch_u64 = [&](const char *what, uint64_t va,
                            uint64_t vb) {
        if (va != vb) {
            std::snprintf(line, sizeof(line),
                          "%s: %llu != %llu\n", what,
                          static_cast<unsigned long long>(va),
                          static_cast<unsigned long long>(vb));
            diff += line;
        }
    };
    auto mismatch_f64 = [&](const char *what, unsigned i, unsigned j,
                            double va, double vb) {
        if (!(va == vb)) {
            std::snprintf(line, sizeof(line),
                          "%s[%u][%u]: %.17g != %.17g\n", what, i, j,
                          va, vb);
            diff += line;
        }
    };

    auto mismatch_u64_cell = [&](const char *what, unsigned i,
                                 unsigned j, uint64_t va, uint64_t vb) {
        if (va != vb) {
            std::snprintf(line, sizeof(line),
                          "%s[%u][%u]: %llu != %llu\n", what, i, j,
                          static_cast<unsigned long long>(va),
                          static_cast<unsigned long long>(vb));
            diff += line;
        }
    };

    mismatch_u64("cycles", a.cycles, b.cycles);
    mismatch_u64("records", a.records, b.records);
    mismatch_u64("unitDenom", a.unitDenom, b.unitDenom);
    for (unsigned m = 0; m < kNumModules; ++m)
        mismatch_u64(moduleName(static_cast<Module>(m)), a.insts[m],
                     b.insts[m]);
    for (unsigned bk = 0; bk < kNumBuckets; ++bk) {
        for (unsigned m = 0; m < kNumModules; ++m) {
            mismatch_u64_cell("bucketUnits", bk, m,
                              a.bucketUnits[bk][m],
                              b.bucketUnits[bk][m]);
            mismatch_f64("bucket", bk, m, a.bucket[bk][m],
                         b.bucket[bk][m]);
        }
        for (unsigned s = 0; s < 2; ++s) {
            mismatch_u64_cell("bucketSrcUnits", bk, s,
                              a.bucketSrcUnits[bk][s],
                              b.bucketSrcUnits[bk][s]);
            mismatch_f64("bucketSrc", bk, s, a.bucketSrc[bk][s],
                         b.bucketSrc[bk][s]);
        }
    }

    const CacheStats *cas[] = {&a.l1i, &a.l1d, &a.l2};
    const CacheStats *cbs[] = {&b.l1i, &b.l1d, &b.l2};
    const char *cnames[] = {"l1i", "l1d", "l2"};
    for (unsigned c = 0; c < 3; ++c) {
        std::string p = cnames[c];
        mismatch_u64((p + ".accesses").c_str(), cas[c]->accesses,
                     cbs[c]->accesses);
        mismatch_u64((p + ".misses").c_str(), cas[c]->misses,
                     cbs[c]->misses);
        mismatch_u64((p + ".writebacks").c_str(), cas[c]->writebacks,
                     cbs[c]->writebacks);
        mismatch_u64((p + ".prefetchFills").c_str(),
                     cas[c]->prefetchFills, cbs[c]->prefetchFills);
    }

    mismatch_u64("tlb.accesses", a.tlb.accesses, b.tlb.accesses);
    mismatch_u64("tlb.l1Misses", a.tlb.l1Misses, b.tlb.l1Misses);
    mismatch_u64("tlb.l2Misses", a.tlb.l2Misses, b.tlb.l2Misses);

    mismatch_u64("bp.branches", a.bp.branches, b.bp.branches);
    mismatch_u64("bp.condBranches", a.bp.condBranches,
                 b.bp.condBranches);
    mismatch_u64("bp.mispredicts", a.bp.mispredicts,
                 b.bp.mispredicts);
    mismatch_u64("bp.directionMispredicts", a.bp.directionMispredicts,
                 b.bp.directionMispredicts);
    mismatch_u64("bp.targetMispredicts", a.bp.targetMispredicts,
                 b.bp.targetMispredicts);
    mismatch_u64("bp.indirectMispredicts", a.bp.indirectMispredicts,
                 b.bp.indirectMispredicts);

    mismatch_u64("prefetch.trains", a.prefetch.trains,
                 b.prefetch.trains);
    mismatch_u64("prefetch.prefetches", a.prefetch.prefetches,
                 b.prefetch.prefetches);
    // burstCycles is deliberately absent: it records which host-side
    // dispatch path retired the cycles (like host seconds, a property
    // of the core, not of the modeled machine), so it legitimately
    // differs between the stepped, event and event+burst cores that
    // this function exists to prove identical.
    return diff;
}

// The derived cycle sums below are computed over the exact integer
// units and divided once, so they are independent of summation order
// and close exactly (summing the per-cell doubles first would round
// at every cell for denominators that are not powers of two).

double
PipeStats::bucketTotal(Bucket b) const
{
    uint64_t units = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        units += bucketUnits[static_cast<unsigned>(b)][m];
    return static_cast<double>(units) /
           static_cast<double>(unitDenom);
}

double
PipeStats::sourceCycles(bool region) const
{
    uint64_t units = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        units += bucketSrcUnits[b][region ? 1 : 0];
    return static_cast<double>(units) /
           static_cast<double>(unitDenom);
}

double
PipeStats::moduleCycles(Module m) const
{
    uint64_t units = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        units += bucketUnits[b][static_cast<unsigned>(m)];
    return static_cast<double>(units) /
           static_cast<double>(unitDenom);
}

double
PipeStats::tolCycles() const
{
    uint64_t units = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        for (unsigned m = 1; m < kNumModules; ++m)
            units += bucketUnits[b][m];
    return static_cast<double>(units) /
           static_cast<double>(unitDenom);
}

double
PipeStats::appCycles() const
{
    return moduleCycles(Module::App);
}

uint64_t
PipeStats::tolInsts() const
{
    uint64_t total = 0;
    for (unsigned m = 1; m < kNumModules; ++m)
        total += insts[m];
    return total;
}

uint64_t
PipeStats::appInsts() const
{
    return insts[static_cast<unsigned>(Module::App)];
}

double
PipeStats::ipc() const
{
    uint64_t total = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        total += insts[m];
    return cycles ? static_cast<double>(total) /
                    static_cast<double>(cycles)
                  : 0.0;
}

Pipeline::Pipeline(const TimingConfig &config, Filter f)
    : cfg(config), filter(f),
      eng(config.eventCore ? Engine::EventDriven
                           : Engine::CycleStepped),
      issueWidth(config.issueWidth), iqSize(config.iqSize),
      mispredictPenalty(config.mispredictPenalty),
      prefetcherEnabled(config.prefetcherEnabled),
      burstEnabled(config.burst),
      l2c(config.l2, nullptr, config.memLatency),
      l1ic(config.l1i, &l2c, config.memLatency),
      l1dc(config.l1d, &l2c, config.memLatency),
      dtlb(config),
      bp(config),
      pf(config.prefetcherEntries, l2c),
      l1iLineShift(floorLog2(config.l1i.lineBytes)),
      unitDenom(accountingDenom(config.issueWidth))
{
    panic_if(issueWidth == 0 || issueWidth > kMaxIssueWidth,
             "issueWidth %u out of range [1, %u]", issueWidth,
             kMaxIssueWidth);
    for (uint32_t k = 1; k <= issueWidth; ++k)
        unitsPerIssue[k] = unitDenom / k;
    // Power-of-two ring; grows on demand via pushPending. The event
    // core's borrowed-batch staging writes one slot past IQ + FE
    // without a grow check (it can only run when the ring pending
    // segment is empty), so the initial size must already cover
    // iqSize + front-end(8) + 1 even for oversized-IQ sweeps.
    size_t slots = 128;
    while (slots < static_cast<size_t>(iqSize) + 8 + 1)
        slots *= 2;
    window.resize(slots);
    winMask = window.size() - 1;
    for (size_t op = 0;
         op < static_cast<size_t>(host::HOp::NumOps); ++op) {
        switch (host::hopInfo(static_cast<host::HOp>(op)).execClass) {
          case host::ExecClass::IntSimple:
            opLatency[op] = cfg.intSimpleLatency;
            break;
          case host::ExecClass::IntComplex:
            opLatency[op] = cfg.intComplexLatency;
            break;
          case host::ExecClass::FpSimple:
            opLatency[op] = cfg.fpSimpleLatency;
            break;
          case host::ExecClass::FpComplex:
            opLatency[op] = cfg.fpComplexLatency;
            break;
          default:
            opLatency[op] = 1;
            break;
        }
    }
}

void
Pipeline::pushPending(const Record &rec)
{
    if (inFlight == window.size())
        growWindow();
    InFlight &slot = window[(head + inFlight) & winMask];
    slot.rec = rec;
    slot.arrival = 0;
    slot.mispredicted = false;
    ++inFlight;
}

void
Pipeline::growWindow()
{
    std::vector<InFlight> bigger(window.size() * 2);
    for (size_t i = 0; i < inFlight; ++i)
        bigger[i] = window[(head + i) & winMask];
    window.swap(bigger);
    winMask = window.size() - 1;
    head = 0;
}

void
Pipeline::accept(const Record &rec)
{
    if (!passesFilter(rec))
        return;

    ++stat.records;
    pushPending(rec);

    // Keep the in-flight window bounded; advance the clock as needed.
    drain(64, false);
}

void
Pipeline::drain(size_t pending_floor, bool to_empty)
{
    if (to_empty ? inFlight == 0 : pendingCount() <= pending_floor)
        return;
    if (eng == Engine::EventDriven) {
        (void)runEventCore(pending_floor, to_empty, nullptr, 0);
        return;
    }
    if (to_empty) {
        while (inFlight != 0)
            step();
    } else {
        while (pendingCount() > pending_floor)
            step();
    }
}

void
Pipeline::consume(const Record &rec)
{
    panic_if(finished, "consume after finish");
    accept(rec);
}

void
Pipeline::consumeBatch(const Record *recs, size_t count)
{
    panic_if(finished, "consume after finish");
    // Bulk-push then drain once. Equivalent to accept() per record:
    // stepped cycles only ever inspect the front of the pending
    // backlog (its depth matters solely as zero/non-zero, and it
    // stays non-zero throughout either drain schedule), so deferring
    // the drain to the end of the batch replays the exact same step
    // sequence with less loop overhead.
    if (eng == Engine::EventDriven && filter == Filter::All) {
        // Zero-copy backlog: the batch buffer itself serves as the
        // tail of the pending segment. Only what the drain leaves
        // unfetched is staged into the ring — the bytes the model
        // sees, and the order it sees them in, are unchanged.
        //
        // The drain runs deeper than the reference's floor of 64:
        // any floor >= issueWidth is equivalent, because a cycle's
        // behaviour depends on the backlog depth only through "at
        // least a full fetch group available", and with floor >=
        // issueWidth every executed cycle still sees more backlog
        // than one fetch can consume. A shallower floor would let a
        // cycle run with backlog < issueWidth and fetch a truncated
        // group the reference schedule never sees. Draining as close
        // to that bound as allowed minimizes what must be staged
        // into the ring when the borrowed buffer dies.
        stat.records += count;
        const size_t floor = issueWidth > 2 ? issueWidth : 2;
        const size_t used = runEventCore(floor, false, recs, count);
        const size_t left = count - used;
        while (window.size() < inFlight + left)
            growWindow();
        for (size_t i = used; i < count; ++i) {
            InFlight &slot = window[(head + inFlight) & winMask];
            slot.rec = recs[i];
            slot.arrival = 0;
            slot.mispredicted = false;
            ++inFlight;
        }
        return;
    }
    for (size_t i = 0; i < count; ++i) {
        if (!passesFilter(recs[i]))
            continue;
        ++stat.records;
        pushPending(recs[i]);
    }
    drain(64, false);
}

bool
Pipeline::workRemains() const
{
    return inFlight != 0;
}

void
Pipeline::finish()
{
    if (finished)
        return;
    drain(0, true);
    finished = true;
    // The one units -> doubles conversion: both cores accumulate the
    // identical integer units, so the derived doubles are identical
    // too (equal integers divide to equal doubles).
    stat.unitDenom = unitDenom;
    const double denom = static_cast<double>(unitDenom);
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        for (unsigned m = 0; m < kNumModules; ++m) {
            stat.bucketUnits[b][m] = bucketUnits[b][m];
            stat.bucket[b][m] =
                static_cast<double>(bucketUnits[b][m]) / denom;
        }
        for (unsigned si = 0; si < 2; ++si) {
            stat.bucketSrcUnits[b][si] = bucketSrcUnits[b][si];
            stat.bucketSrc[b][si] =
                static_cast<double>(bucketSrcUnits[b][si]) / denom;
        }
    }
    stat.cycles = now;
    stat.l1i = l1ic.stats();
    stat.l1d = l1dc.stats();
    stat.l2 = l2c.stats();
    stat.tlb = dtlb.stats();
    stat.bp = bp.stats();
    stat.prefetch = pf.stats();
}

void
Pipeline::issueOne(InFlight &inflight)
{
    const Record &rec = inflight.rec;
    const unsigned mod = static_cast<unsigned>(rec.module);

    uint32_t latency = opLatency[static_cast<size_t>(rec.op)];

    bool load_missed = false;
    if (rec.isLoad) {
        uint32_t extra = 0;
        if (host::amap::isGuestAddr(rec.memAddr))
            extra = dtlb.access(rec.memAddr);
        bool miss = false;
        const uint32_t dlat = l1dc.access(rec.memAddr, false, miss);
        if (prefetcherEnabled)
            pf.train(rec.pc, rec.memAddr);
        latency = 1 + extra + dlat;
        load_missed = miss || extra > 0;
    } else if (rec.isStore) {
        // Stores retire through an ideal store buffer: they update the
        // hierarchy (and may evict) but never stall the pipe.
        if (host::amap::isGuestAddr(rec.memAddr))
            (void)dtlb.access(rec.memAddr);
        bool miss = false;
        (void)l1dc.access(rec.memAddr, true, miss);
        latency = 1;
    }

    if (rec.rd != host::kNoReg) {
        RegState &rd = regs[rec.rd];
        rd.ready = now + 1 + (latency > 1 ? latency - 1 : 0);
        rd.producer = rec.module;
        rd.producerSrc = rec.fromRegion;
        rd.loadMiss = rec.isLoad && load_missed;
    }

    if (rec.isBranch && inflight.mispredicted) {
        // Resolved in EXE; the front-end refetches afterwards so the
        // end-to-end penalty equals mispredictPenalty.
        fetchBlockedUntil = now + mispredictPenalty - 3;
        fetchHaltedForBranch = false;
        starveBucket = Bucket::BranchBubble;
        starveModule = rec.module;
        starveSrcRegion = rec.fromRegion;
    }

    ++stat.insts[mod];
}

void
Pipeline::issuePhase(unsigned &issued_count)
{
    // Issue up to issueWidth instructions and account the cycle to
    // exactly one bucket. The stall cause captured when the issue
    // loop breaks doubles as the accounting classification, so the
    // IQ head and the scoreboard are scanned once per cycle, not
    // twice.
    issued_count = 0;
    std::array<uint8_t, kMaxIssueWidth> issued_modules{};
    std::array<uint8_t, kMaxIssueWidth> issued_src{};

    bool head_waiting = false;       ///< head present but blocked
    uint8_t blocking = host::kNoReg; ///< first not-ready source

    while (issued_count < issueWidth && iqCount != 0) {
        InFlight &iq_head = slotAt(0);
        if (iq_head.arrival > now)
            break;

        // Scoreboard: both sources ready?
        const uint8_t srcs[2] = {iq_head.rec.rs1, iq_head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regs.size() &&
                regs[src].ready > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg) {
            head_waiting = true;
            break;
        }

        issueOne(iq_head);
        issued_modules[issued_count] =
            static_cast<uint8_t>(iq_head.rec.module);
        issued_src[issued_count] = iq_head.rec.fromRegion ? 1 : 0;
        head = (head + 1) & winMask;
        --inFlight;
        --iqCount;
        ++issued_count;
    }

    if (issued_count) {
        // Each of the k issued instructions carries 1/k of the cycle:
        // unitDenom / k integer units, exact for every k <= width.
        const uint64_t per = unitsPerIssue[issued_count];
        for (unsigned i = 0; i < issued_count; ++i) {
            bucketUnits[static_cast<unsigned>(Bucket::Insts)]
                       [issued_modules[i]] += per;
            bucketSrcUnits[static_cast<unsigned>(Bucket::Insts)]
                          [issued_src[i]] += per;
        }
        return;
    }

    // Stalled cycle: classify and charge one full cycle.
    unsigned b_idx, m_idx, s_idx;
    if (head_waiting) {
        // Head present but not issuable: scoreboard stall.
        const InFlight &iq_head = slotAt(0);
        if (regs[blocking].loadMiss) {
            b_idx = static_cast<unsigned>(Bucket::DcacheBubble);
            m_idx = static_cast<unsigned>(regs[blocking].producer);
            s_idx = regs[blocking].producerSrc ? 1 : 0;
        } else {
            b_idx = static_cast<unsigned>(Bucket::SchedBubble);
            m_idx = static_cast<unsigned>(iq_head.rec.module);
            s_idx = iq_head.rec.fromRegion ? 1 : 0;
        }
    } else {
        // IQ empty (or only future arrivals): front-end starvation.
        b_idx = static_cast<unsigned>(starveBucket);
        m_idx = static_cast<unsigned>(starveModule);
        s_idx = starveSrcRegion ? 1 : 0;
    }
    bucketUnits[b_idx][m_idx] += unitDenom;
    bucketSrcUnits[b_idx][s_idx] += unitDenom;
}

void
Pipeline::fetchPhase()
{
    // Move front-end arrivals into the IQ (a counter move: the
    // element is already in place in the window).
    while (feCount != 0 && slotAt(iqCount).arrival <= now + 1 &&
           iqCount < iqSize) {
        ++iqCount;
        --feCount;
    }

    if (now < fetchBlockedUntil || fetchHaltedForBranch)
        return;

    unsigned fetched = 0;
    size_t fetch_pos = iqCount + feCount;  ///< next pending slot
    const size_t in_flight_total = inFlight;
    while (fetched < issueWidth && fetch_pos < in_flight_total &&
           feCount < 8) {
        InFlight &inflight = slotAt(fetch_pos);
        const Record &rec = inflight.rec;

        const uint32_t line = rec.pc >> l1iLineShift;
        if (line != lastFetchLine) {
            bool miss = false;
            const uint32_t lat = l1ic.access(rec.pc, false, miss);
            lastFetchLine = line;
            if (miss) {
                // Fetch resumes after the fill; this instruction
                // completes its front-end traversal afterwards.
                fetchBlockedUntil = now + lat;
                starveBucket = Bucket::IcacheBubble;
                starveModule = rec.module;
                starveSrcRegion = rec.fromRegion;
                inflight.arrival = now + lat + 3;
                if (rec.isBranch) {
                    inflight.mispredicted = !bp.predict(
                        rec.pc, rec.taken, rec.branchTarget,
                        rec.isCondBranch, rec.isIndirect);
                    if (inflight.mispredicted) {
                        fetchHaltedForBranch = true;
                        starveBucket = Bucket::BranchBubble;
                        starveModule = rec.module;
                        starveSrcRegion = rec.fromRegion;
                    }
                }
                ++feCount;
                return;
            }
        }

        inflight.arrival = now + 3;  // AC/IF/DEC traversal
        if (rec.isBranch) {
            inflight.mispredicted = !bp.predict(
                rec.pc, rec.taken, rec.branchTarget, rec.isCondBranch,
                rec.isIndirect);
        }
        ++feCount;
        ++fetch_pos;
        ++fetched;

        if (rec.isBranch && inflight.mispredicted) {
            // Wrong-path fetch suppressed until the branch resolves.
            fetchHaltedForBranch = true;
            starveBucket = Bucket::BranchBubble;
            starveModule = rec.module;
            starveSrcRegion = rec.fromRegion;
            return;
        }
    }
}

void
Pipeline::step()
{
    // Fast-forward runs of stall cycles whose outcome is fully
    // determined: either pure starvation (IQ empty or only future
    // arrivals) or the IQ head scoreboard-blocked on a known ready
    // time. Each such cycle only adds 1.0 to one sticky bucket cell
    // and advances the clock, so a run of them becomes a tight
    // accounting loop instead of full steps — valid only while the
    // front-end is provably inert for every skipped cycle. The adds
    // stay one-per-cycle to keep the floating-point bucket sums
    // bit-identical to the stepped execution.
    // Cheap gate first: on busy cycles (something fetchable or the
    // fetch unblocked) the fast-forward can never fire, so skip the
    // classification scan entirely.
    const bool mover_idle =
        feCount == 0 || iqCount >= iqSize ||
        slotAt(iqCount).arrival > now + 1;
    const bool fetch_idle =
        now < fetchBlockedUntil || fetchHaltedForBranch ||
        pendingCount() == 0 || feCount >= 8;
    if (!mover_idle || !fetch_idle) {
        unsigned issued_busy = 0;
        issuePhase(issued_busy);
        fetchPhase();
        ++now;
        return;
    }

    uint64_t stall_until = 0;        ///< first cycle to re-evaluate
    bool classified = false;
    unsigned b_idx = 0, m_idx = 0, s_idx = 0;

    if (iqCount == 0 || slotAt(0).arrival > now) {
        // Starvation: sticky cause, ends when the IQ head arrives.
        stall_until =
            iqCount != 0 ? slotAt(0).arrival : UINT64_MAX;
        classified = true;
        b_idx = static_cast<unsigned>(starveBucket);
        m_idx = static_cast<unsigned>(starveModule);
        s_idx = starveSrcRegion ? 1 : 0;
    } else {
        // Head present: scoreboard-blocked runs end when the first
        // blocking source becomes ready.
        const InFlight &iq_head = slotAt(0);
        uint8_t blocking = host::kNoReg;
        const uint8_t srcs[2] = {iq_head.rec.rs1, iq_head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regs.size() &&
                regs[src].ready > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg) {
            stall_until = regs[blocking].ready;
            classified = true;
            if (regs[blocking].loadMiss) {
                b_idx = static_cast<unsigned>(Bucket::DcacheBubble);
                m_idx = static_cast<unsigned>(regs[blocking].producer);
                s_idx = regs[blocking].producerSrc ? 1 : 0;
            } else {
                b_idx = static_cast<unsigned>(Bucket::SchedBubble);
                m_idx = static_cast<unsigned>(iq_head.rec.module);
                s_idx = iq_head.rec.fromRegion ? 1 : 0;
            }
        }
    }

    if (stall_until > now + 1 && classified) {
        uint64_t limit = stall_until;
        if (feCount != 0 && iqCount < iqSize)
            limit = std::min(limit, slotAt(iqCount).arrival - 1);
        if (!fetchHaltedForBranch && pendingCount() != 0 &&
            feCount < 8)
            limit = std::min(limit, fetchBlockedUntil);
        if (limit != UINT64_MAX && limit > now) {
            const uint64_t span = limit - now;
            // Integer adds are associative: the whole run in one
            // update, still bit-identical after conversion.
            bucketUnits[b_idx][m_idx] += unitDenom * span;
            bucketSrcUnits[b_idx][s_idx] += unitDenom * span;
            now = limit;
            return;
        }
    }

    unsigned issued = 0;
    issuePhase(issued);
    fetchPhase();
    ++now;
}

/*
 * Event-driven core.
 *
 * The reference semantics are: every cycle runs issuePhase(now), then
 * fetchPhase(now), then ++now. This core reproduces those semantics
 * exactly (same component accesses in the same order, same accounting
 * cells updated by the same amounts) while doing strictly less host
 * work, via two mechanisms — the full equivalence argument, event
 * type by event type, is in docs/timing-model.md:
 *
 * 1. Merged active-cycle body. One loop iteration is one active
 *    cycle: the issue phase, the FE->IQ mover, and the fetch phase
 *    are inlined into a single body operating on *local* copies of
 *    the hot pipeline state (clock, ring counters, fetch-block /
 *    branch-halt state, sticky starvation cause). Locals survive the
 *    component calls (cache/TLB/predictor accesses) in callee-saved
 *    registers, where the reference core must conservatively reload
 *    members after every such call; and no per-cycle gate or
 *    function-call boundary remains. The operations themselves — and
 *    therefore every counter and every PLRU/gshare/BTB state machine
 *    — are the reference ones, verbatim.
 *
 * 2. Event-horizon fast-forward. After a cycle in which nothing
 *    issued, nothing moved to the IQ, and nothing fetched, the
 *    pipeline state is provably constant until the earliest of the
 *    pending events:
 *      - issue-ready:      the IQ head's arrival cycle,
 *      - writeback:        the blocking register's scoreboard ready
 *                          time (load-miss completion included — the
 *                          miss latency was charged at issue, so the
 *                          completion time is fully determined),
 *      - fetch-ready:      the FE head's arrival - 1 (the mover
 *                          moves entries one cycle early),
 *      - I-miss completion: fetchBlockedUntil (set when the I-cache
 *                          miss was charged, so also determined),
 *      - branch-resolve:   subsumed by issue-ready — the halt ends
 *                          when the mispredicted branch issues.
 *    Every skipped cycle would have charged exactly one full cycle
 *    to the same (bucket, module, source) cell that the first stalled
 *    cycle was charged to, so the whole run is accounted in one
 *    integer add — associative, hence bit-identical after the single
 *    units -> double conversion in finish().
 *
 * 3. Burst dispatch (TimingConfig::burst) — the dual of the event
 *    horizon for *active* intervals. When the pipeline is in lockstep
 *    full-width flow (W issuable records in the IQ, the older front-
 *    end half movable this cycle, the newer half exactly one cycle
 *    behind, fetch unblocked), a pure per-cycle scan proves that the
 *    cycle issues the whole IQ group (no mispredicted branch, no
 *    intra-group RAW, every source ready, every memory access on a
 *    TLB/L1-D same-line fast path) and fetches a full non-branch
 *    group on I-cache fast paths. Fast-path hits change no
 *    replacement state, so the proof stays valid for the entire
 *    window, and the cycle's only effects are scoreboard writes,
 *    dirty bits, prefetcher training and integer counter adds — the
 *    first three applied in reference order, the counters deferred
 *    and flushed in one add per touched cell when the burst ends
 *    (associative, hence exact). A cycle whose scan fails is run by
 *    the general body below with nothing touched.
 *
 * All accounting is in exact integer units of 1/lcm(1..W) cycles
 * (accountingDenom), so the argument holds at every issue width —
 * a cycle issuing k instructions charges W!/k-style integer shares
 * that merge associatively, never rounded doubles.
 */
size_t
Pipeline::runEventCore(size_t pending_floor, bool to_empty,
                       const Record *ext, size_t ext_count)
{
    panic_if(to_empty && ext_count != 0,
             "event core: final drain with a borrowed batch");
    // Single-width instantiations for the common sweep points let
    // the compiler unroll the issue/fetch slot loops and fold the
    // per-issue unit shares to constants; other widths share the
    // generic (runtime-width) instantiation.
    switch (issueWidth) {
      case 1:
        return runEventCoreImpl<1>(pending_floor, to_empty, ext,
                                   ext_count);
      case 2:
        return runEventCoreImpl<2>(pending_floor, to_empty, ext,
                                   ext_count);
      case 4:
        return runEventCoreImpl<4>(pending_floor, to_empty, ext,
                                   ext_count);
      default:
        return runEventCoreImpl<0>(pending_floor, to_empty, ext,
                                   ext_count);
    }
}

template <unsigned W>
size_t
Pipeline::runEventCoreImpl(size_t pending_floor, bool to_empty,
                           const Record *ext, size_t ext_count)
{
    // Hoisted pipeline state; written back on exit.
    size_t ext_pos = 0;
    uint64_t t = now;
    size_t hd = head;
    size_t n_flight = inFlight;
    size_t iq_n = iqCount;
    size_t fe_n = feCount;
    uint64_t fetch_blocked = fetchBlockedUntil;
    bool fetch_halted = fetchHaltedForBranch;
    uint32_t last_line = lastFetchLine;
    Bucket starve_b = starveBucket;
    Module starve_m = starveModule;
    bool starve_src = starveSrcRegion;

    InFlight *const win = window.data();
    const size_t mask = winMask;
    const uint32_t width = W != 0 ? W : issueWidth;
    // Folds to a compile-time constant in the single-width
    // instantiations; one register in the generic one.
    const uint64_t unit_denom =
        W != 0 ? accountingDenom(W) : unitDenom;
    const uint32_t iq_cap = iqSize;
    const uint32_t line_shift = l1iLineShift;
    const bool burst_on = burstEnabled;
    const uint32_t l1d_hit_lat = cfg.l1d.hitLatency;
    constexpr unsigned insts_b = static_cast<unsigned>(Bucket::Insts);
    // Burst-attempt throttle: the dispatcher can only sustain cycles
    // that issue at full width, so a cycle that did not is proof the
    // very next one is not burstable either — don't pay the shape
    // gate and scan there. In low-ILP regimes (dependence chains,
    // stall-heavy runs) this keeps the predicate entirely off the
    // per-cycle path; in full-width flow one general cycle arms it.
    bool prev_full = false;

    while (to_empty
               ? n_flight != 0
               : n_flight - iq_n - fe_n + (ext_count - ext_pos) >
                     pending_floor) {
        // ---- burst dispatch (mechanism 3 above) ----
        // Lockstep-shape gate, cheapest tests first. The four arrival
        // endpoint checks use the window's arrival monotonicity
        // (fetch stamps are nondecreasing in program order): every IQ
        // record is issuable now, the older FE fetch-group is movable
        // this cycle, the newer one is not (so the mover moves
        // exactly W) but will be next cycle. The IQ occupancy is any
        // value >= W, not exactly W: an I-miss or redirect that once
        // fetched a partial group phase-shifts issue groups against
        // fetch groups permanently, leaving W + o records resident at
        // every cycle top. Once entered, each applied cycle
        // re-establishes the shape by construction — the group
        // fetched at t carries arrival t+3, which at t+1 is exactly
        // "newer FE group, one cycle behind".
        if (burst_on && prev_full && iq_n >= width && fe_n == 2 * width &&
            t >= fetch_blocked && !fetch_halted &&
            win[(hd + iq_n - 1) & mask].arrival <= t &&
            win[(hd + iq_n + width - 1) & mask].arrival <= t + 1 &&
            win[(hd + iq_n + width) & mask].arrival > t + 1 &&
            win[(hd + iq_n + 2 * width - 1) & mask].arrival <= t + 2) {
            uint64_t burst_len = 0;
            std::array<uint64_t, kNumModules> burst_mod{};
            uint64_t burst_src0 = 0, burst_src1 = 0;
            uint64_t l1i_hits = 0, l1d_hits = 0, tlb_hits = 0;
            bool out_of_work = false;
            for (;;) {
                if (!(to_empty
                          ? n_flight != 0
                          : n_flight - iq_n - fe_n +
                                    (ext_count - ext_pos) >
                                pending_floor)) {
                    out_of_work = true;
                    break;
                }
                // -- scan (pure observer): prove cycle t issues the
                // whole IQ group and fetches a full group with every
                // component outcome predetermined. Fast-path probes
                // stay valid across the whole group because fast-path
                // hits never update lastInSet/lastVpn.
                bool ok = true;
                uint64_t wr_lo = 0, wr_hi = 0;  ///< rds written @ t
                uint64_t l1d_cyc = 0, tlb_cyc = 0, l1i_cyc = 0;
                for (uint32_t i = 0; ok && i < width; ++i) {
                    const InFlight &sl = win[(hd + i) & mask];
                    const Record &rec = sl.rec;
                    if (sl.arrival > t ||
                        (rec.isBranch && sl.mispredicted)) {
                        ok = false;
                        break;
                    }
                    const uint8_t srcs[2] = {rec.rs1, rec.rs2};
                    for (uint8_t src : srcs) {
                        if (src == host::kNoReg ||
                            src >= regs.size())
                            continue;
                        // A same-cycle RAW always stalls (a producer
                        // at t is ready at t+1 at the earliest), so
                        // a source written by an earlier slot of this
                        // very group breaks the full-width proof.
                        const bool raw =
                            src < 64 ? (wr_lo >> src) & 1
                                     : (wr_hi >> (src - 64)) & 1;
                        if (raw || regs[src].ready > t) {
                            ok = false;
                            break;
                        }
                    }
                    if (!ok)
                        break;
                    if (rec.isLoad || rec.isStore) {
                        if (host::amap::isGuestAddr(rec.memAddr)) {
                            if (!dtlb.fastPathHit(rec.memAddr)) {
                                ok = false;
                                break;
                            }
                            ++tlb_cyc;
                        }
                        if (!l1dc.fastPathHit(rec.memAddr)) {
                            ok = false;
                            break;
                        }
                        ++l1d_cyc;
                    }
                    if (rec.rd != host::kNoReg) {
                        if (rec.rd < 64)
                            wr_lo |= 1ull << rec.rd;
                        else
                            wr_hi |= 1ull << (rec.rd - 64);
                    }
                }
                uint32_t scan_line = last_line;
                if (ok) {
                    // Fetch group: the next W backlog records (ring
                    // pending first, then the borrowed batch), all
                    // non-branch (the predictor is stateful on every
                    // branch) with every new line a fast-path hit.
                    const size_t pend_at = iq_n + fe_n;
                    const size_t ring_pend = n_flight - pend_at;
                    if (ring_pend + (ext_count - ext_pos) < width)
                        ok = false;
                    for (uint32_t j = 0; ok && j < width; ++j) {
                        const Record &rec =
                            j < ring_pend
                                ? win[(hd + pend_at + j) & mask].rec
                                : ext[ext_pos + (j - ring_pend)];
                        if (rec.isBranch) {
                            ok = false;
                            break;
                        }
                        const uint32_t fl = rec.pc >> line_shift;
                        if (fl != scan_line) {
                            if (!l1ic.fastPathHit(rec.pc)) {
                                ok = false;
                                break;
                            }
                            ++l1i_cyc;
                            scan_line = fl;
                        }
                    }
                }
                if (!ok)
                    break;
                // -- apply: the proven cycle's only state changes, in
                // reference order. Counter adds are deferred to the
                // burst-exit flush (integer, hence exact).
                for (uint32_t i = 0; i < width; ++i) {
                    const InFlight &sl = win[(hd + i) & mask];
                    const Record &rec = sl.rec;
                    uint32_t latency =
                        opLatency[static_cast<size_t>(rec.op)];
                    if (rec.isLoad) {
                        if (prefetcherEnabled)
                            pf.train(rec.pc, rec.memAddr);
                        latency = 1 + l1d_hit_lat;
                    } else if (rec.isStore) {
                        l1dc.markFastPathDirty(rec.memAddr);
                        latency = 1;
                    }
                    if (rec.rd != host::kNoReg) {
                        RegState &rd = regs[rec.rd];
                        rd.ready =
                            t + 1 + (latency > 1 ? latency - 1 : 0);
                        rd.producer = rec.module;
                        rd.producerSrc = rec.fromRegion;
                        rd.loadMiss = false;
                    }
                    ++burst_mod[static_cast<unsigned>(rec.module)];
                    if (rec.fromRegion)
                        ++burst_src1;
                    else
                        ++burst_src0;
                }
                hd = (hd + width) & mask;
                n_flight -= width;
                // Mover is a pure counter move (iq_n and fe_n are
                // back to their entry values after the fetch below);
                // stamp/stage the fetched group.
                for (uint32_t j = 0; j < width; ++j) {
                    InFlight *slot;
                    const size_t pos = iq_n + fe_n - width + j;
                    if (pos < n_flight) {
                        slot = &win[(hd + pos) & mask];
                    } else {
                        slot = &win[(hd + n_flight) & mask];
                        slot->rec = ext[ext_pos];
                        ++ext_pos;
                        ++n_flight;
                    }
                    slot->arrival = t + 3;
                }
                last_line = scan_line;
                l1d_hits += l1d_cyc;
                tlb_hits += tlb_cyc;
                l1i_hits += l1i_cyc;
                ++t;
                ++burst_len;
            }
            if (burst_len != 0) {
                // One add per touched (bucket, module/source) cell
                // and per component counter for the whole burst.
                const uint64_t per = unitsPerIssue[width];
                for (unsigned m = 0; m < kNumModules; ++m) {
                    if (burst_mod[m] != 0) {
                        bucketUnits[insts_b][m] += burst_mod[m] * per;
                        stat.insts[m] += burst_mod[m];
                    }
                }
                if (burst_src0 != 0)
                    bucketSrcUnits[insts_b][0] += burst_src0 * per;
                if (burst_src1 != 0)
                    bucketSrcUnits[insts_b][1] += burst_src1 * per;
                l1dc.chargeFastPathHits(l1d_hits);
                dtlb.chargeFastPathHits(tlb_hits);
                l1ic.chargeFastPathHits(l1i_hits);
                stat.burstCycles += burst_len;
            }
            if (out_of_work)
                break;
            // Scan failed at cycle t with nothing touched: run it in
            // the general body below.
        }

        // ---- issue phase (reference issuePhase, integer units) ----
        unsigned issued = 0;
        std::array<uint8_t, kMaxIssueWidth> issue_m;
        std::array<uint8_t, kMaxIssueWidth> issue_s;
        uint8_t blocking = host::kNoReg;

        // Side effects run here in reference order; the accounting
        // adds are deferred past the slot attempts because the 1/k
        // per-slot share is only known once the cycle's issue count
        // k is — integer unit cells, so the deferral is exact.
        auto try_issue = [&]() {
            if (iq_n == 0)
                return false;
            InFlight &iq_head = win[hd];
            if (iq_head.arrival > t)
                return false;
            const Record &rec = iq_head.rec;
            const uint8_t sr1 = rec.rs1;
            const uint8_t sr2 = rec.rs2;
            if (sr1 != host::kNoReg && sr1 < regs.size() &&
                regs[sr1].ready > t) {
                blocking = sr1;
                return false;
            }
            if (sr2 != host::kNoReg && sr2 < regs.size() &&
                regs[sr2].ready > t) {
                blocking = sr2;
                return false;
            }

            // Reference issueOne against the hoisted clock.
            uint32_t latency = opLatency[static_cast<size_t>(rec.op)];
            bool load_missed = false;
            if (rec.isLoad) {
                uint32_t extra = 0;
                if (host::amap::isGuestAddr(rec.memAddr))
                    extra = dtlb.access(rec.memAddr);
                bool miss = false;
                const uint32_t dlat =
                    l1dc.access(rec.memAddr, false, miss);
                if (prefetcherEnabled)
                    pf.train(rec.pc, rec.memAddr);
                latency = 1 + extra + dlat;
                load_missed = miss || extra > 0;
            } else if (rec.isStore) {
                if (host::amap::isGuestAddr(rec.memAddr))
                    (void)dtlb.access(rec.memAddr);
                bool miss = false;
                (void)l1dc.access(rec.memAddr, true, miss);
                latency = 1;
            }
            if (rec.rd != host::kNoReg) {
                RegState &rd = regs[rec.rd];
                rd.ready = t + 1 + (latency > 1 ? latency - 1 : 0);
                rd.producer = rec.module;
                rd.producerSrc = rec.fromRegion;
                rd.loadMiss = rec.isLoad && load_missed;
            }
            if (rec.isBranch && iq_head.mispredicted) {
                // Branch-resolve event: EXE redirect; refetch after
                // the remaining penalty (reference issueOne).
                fetch_blocked = t + mispredictPenalty - 3;
                fetch_halted = false;
                starve_b = Bucket::BranchBubble;
                starve_m = rec.module;
                starve_src = rec.fromRegion;
            }
            issue_m[issued] = static_cast<uint8_t>(rec.module);
            issue_s[issued] = rec.fromRegion ? 1 : 0;

            hd = (hd + 1) & mask;
            --n_flight;
            --iq_n;
            return true;
        };

        while (issued < width && try_issue())
            ++issued;

        unsigned b_idx = 0, m_idx = 0, s_idx = 0;
        uint64_t stall_until = 0;
        if (issued != 0) {
            // 1/k of the cycle per issued instruction — unitDenom/k
            // integer units, exact for every k <= width. Integer
            // adds merge associatively, so the per-slot order (and
            // any coalescing below) cannot change the converted
            // totals.
            if constexpr (W == 2) {
                // Dual-issue fast path: charges with matching
                // attribution (the common case) land as one add per
                // cell.
                const unsigned m0 = issue_m[0], s0 = issue_s[0];
                if (issued == 2) {
                    const unsigned m1 = issue_m[1], s1 = issue_s[1];
                    if (m0 == m1) {
                        bucketUnits[insts_b][m0] += 2;
                        stat.insts[m0] += 2;
                    } else {
                        bucketUnits[insts_b][m0] += 1;
                        bucketUnits[insts_b][m1] += 1;
                        ++stat.insts[m0];
                        ++stat.insts[m1];
                    }
                    if (s0 == s1) {
                        bucketSrcUnits[insts_b][s0] += 2;
                    } else {
                        bucketSrcUnits[insts_b][s0] += 1;
                        bucketSrcUnits[insts_b][s1] += 1;
                    }
                } else {
                    // Solo issue carries the whole cycle.
                    bucketUnits[insts_b][m0] += 2;
                    bucketSrcUnits[insts_b][s0] += 2;
                    ++stat.insts[m0];
                }
            } else {
                const uint64_t per = unitsPerIssue[issued];
                for (unsigned i = 0; i < issued; ++i) {
                    bucketUnits[insts_b][issue_m[i]] += per;
                    bucketSrcUnits[insts_b][issue_s[i]] += per;
                    ++stat.insts[issue_m[i]];
                }
            }
        } else {
            // Stalled cycle: classify once; the classification both
            // charges this cycle and names the event that ends the
            // stall (used by the fast-forward below).
            if (blocking != host::kNoReg) {
                const RegState &src = regs[blocking];
                if (src.loadMiss) {
                    b_idx = static_cast<unsigned>(Bucket::DcacheBubble);
                    m_idx = static_cast<unsigned>(src.producer);
                    s_idx = src.producerSrc ? 1 : 0;
                } else {
                    const InFlight &iq_head = win[hd];
                    b_idx = static_cast<unsigned>(Bucket::SchedBubble);
                    m_idx = static_cast<unsigned>(iq_head.rec.module);
                    s_idx = iq_head.rec.fromRegion ? 1 : 0;
                }
                stall_until = src.ready;       // writeback event
            } else {
                b_idx = static_cast<unsigned>(starve_b);
                m_idx = static_cast<unsigned>(starve_m);
                s_idx = starve_src ? 1 : 0;
                // Issue-ready event (IQ head arrival), or unbounded
                // until a fetch-side event below.
                stall_until =
                    iq_n != 0 ? win[hd].arrival : UINT64_MAX;
            }
            bucketUnits[b_idx][m_idx] += unit_denom;
            bucketSrcUnits[b_idx][s_idx] += unit_denom;
        }

        // ---- fetch phase (reference fetchPhase) ----
        bool moved = false;
        while (fe_n != 0 && win[(hd + iq_n) & mask].arrival <= t + 1 &&
               iq_n < iq_cap) {
            ++iq_n;
            --fe_n;
            moved = true;
        }
        bool did_fetch = false;
        if (t >= fetch_blocked && !fetch_halted) {
            unsigned fetched = 0;
            size_t fetch_pos = iq_n + fe_n;
            while (fetched < width && fe_n < 8) {
                InFlight *inflight_p;
                if (fetch_pos < n_flight) {
                    inflight_p = &win[(hd + fetch_pos) & mask];
                } else if (ext_pos < ext_count) {
                    // Stage the next borrowed backlog record into
                    // the ring as it enters the front-end. The ring
                    // pending segment is empty here (fetch consumed
                    // it first), so the next free slot is exactly
                    // the front-end tail.
                    inflight_p = &win[(hd + n_flight) & mask];
                    inflight_p->rec = ext[ext_pos];
                    ++ext_pos;
                    ++n_flight;
                } else {
                    break;
                }
                InFlight &inflight = *inflight_p;
                const Record &rec = inflight.rec;
                const uint32_t line = rec.pc >> line_shift;
                if (line != last_line) {
                    bool miss = false;
                    const uint32_t lat =
                        l1ic.access(rec.pc, false, miss);
                    last_line = line;
                    if (miss) {
                        // I-miss completion event: the fill latency
                        // is known now, so the unblock cycle is too.
                        fetch_blocked = t + lat;
                        starve_b = Bucket::IcacheBubble;
                        starve_m = rec.module;
                        starve_src = rec.fromRegion;
                        inflight.arrival = t + lat + 3;
                        if (rec.isBranch) {
                            inflight.mispredicted = !bp.predict(
                                rec.pc, rec.taken, rec.branchTarget,
                                rec.isCondBranch, rec.isIndirect);
                            if (inflight.mispredicted) {
                                fetch_halted = true;
                                starve_b = Bucket::BranchBubble;
                                starve_m = rec.module;
                                starve_src = rec.fromRegion;
                            }
                        }
                        ++fe_n;
                        did_fetch = true;
                        break;
                    }
                }
                inflight.arrival = t + 3;  // AC/IF/DEC traversal
                if (rec.isBranch) {
                    inflight.mispredicted = !bp.predict(
                        rec.pc, rec.taken, rec.branchTarget,
                        rec.isCondBranch, rec.isIndirect);
                }
                ++fe_n;
                ++fetch_pos;
                ++fetched;
                did_fetch = true;
                if (rec.isBranch && inflight.mispredicted) {
                    // Wrong-path fetch suppressed until resolve.
                    fetch_halted = true;
                    starve_b = Bucket::BranchBubble;
                    starve_m = rec.module;
                    starve_src = rec.fromRegion;
                    break;
                }
            }
        }

        prev_full = issued == width;
        ++t;
        if (issued != 0 || moved || did_fetch)
            continue;

        // ---- event horizon: nothing happened this cycle, so the
        // state is frozen until the earliest pending event. Cycle
        // t-1 was already charged above; [t, limit) is charged in
        // one associative integer add. ----
        uint64_t limit = stall_until;
        if (fe_n != 0 && iq_n < iq_cap) {
            // Fetch-ready event: the mover acts one cycle before the
            // FE head's arrival (arrival <= cycle+1).
            limit = std::min(limit,
                             win[(hd + iq_n) & mask].arrival - 1);
        }
        if (!fetch_halted && fe_n < 8 &&
            n_flight - iq_n - fe_n + (ext_count - ext_pos) != 0) {
            // I-miss completion unblocks fetch. On an inert cycle
            // with records pending and FE space, fetch can only have
            // been blocked, so fetch_blocked > t-1 here.
            limit = std::min(limit, fetch_blocked);
        }
        // Unbounded only if the IQ, FE and pending backlog are all
        // empty (nothing in flight), which the loop condition
        // excludes; a halt with empty IQ+FE is impossible because
        // the halting branch stays in flight until it issues.
        panic_if(limit == UINT64_MAX,
                 "event core: inert cycle with no pending event");
        if (limit > t) {
            const uint64_t span = limit - t;
            bucketUnits[b_idx][m_idx] += unit_denom * span;
            bucketSrcUnits[b_idx][s_idx] += unit_denom * span;
            t = limit;
        }
    }

    now = t;
    head = hd;
    inFlight = n_flight;
    iqCount = iq_n;
    feCount = fe_n;
    fetchBlockedUntil = fetch_blocked;
    fetchHaltedForBranch = fetch_halted;
    lastFetchLine = last_line;
    starveBucket = starve_b;
    starveModule = starve_m;
    starveSrcRegion = starve_src;
    return ext_pos;
}

} // namespace darco::timing
