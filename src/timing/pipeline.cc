#include "timing/pipeline.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "host/address_map.hh"

namespace darco::timing {

const char *
bucketName(Bucket b)
{
    static const char *names[] = {
        "instructions", "dcache-bubble", "icache-bubble",
        "branch-bubble", "scheduling",
    };
    return names[static_cast<unsigned>(b)];
}

const char *
moduleName(Module m)
{
    static const char *names[] = {
        "app", "tol-other", "im", "bbm", "sbm", "chaining", "lookup",
    };
    return names[static_cast<unsigned>(m)];
}

double
PipeStats::bucketTotal(Bucket b) const
{
    double total = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        total += bucket[static_cast<unsigned>(b)][m];
    return total;
}

double
PipeStats::sourceCycles(bool region) const
{
    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += bucketSrc[b][region ? 1 : 0];
    return total;
}

double
PipeStats::moduleCycles(Module m) const
{
    double total = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b)
        total += bucket[b][static_cast<unsigned>(m)];
    return total;
}

double
PipeStats::tolCycles() const
{
    double total = 0;
    for (unsigned m = 1; m < kNumModules; ++m)
        total += moduleCycles(static_cast<Module>(m));
    return total;
}

double
PipeStats::appCycles() const
{
    return moduleCycles(Module::App);
}

uint64_t
PipeStats::tolInsts() const
{
    uint64_t total = 0;
    for (unsigned m = 1; m < kNumModules; ++m)
        total += insts[m];
    return total;
}

uint64_t
PipeStats::appInsts() const
{
    return insts[static_cast<unsigned>(Module::App)];
}

double
PipeStats::ipc() const
{
    uint64_t total = 0;
    for (unsigned m = 0; m < kNumModules; ++m)
        total += insts[m];
    return cycles ? static_cast<double>(total) /
                    static_cast<double>(cycles)
                  : 0.0;
}

Pipeline::Pipeline(const TimingConfig &config, Filter f)
    : cfg(config), filter(f),
      issueWidth(config.issueWidth), iqSize(config.iqSize),
      mispredictPenalty(config.mispredictPenalty),
      prefetcherEnabled(config.prefetcherEnabled),
      l2c(config.l2, nullptr, config.memLatency),
      l1ic(config.l1i, &l2c, config.memLatency),
      l1dc(config.l1d, &l2c, config.memLatency),
      dtlb(config),
      bp(config),
      pf(config.prefetcherEntries, l2c),
      l1iLineShift(floorLog2(config.l1i.lineBytes)),
      intAccounting(config.issueWidth <= 2)
{
    window.resize(128);  // grows on demand; power-of-two ring
    winMask = window.size() - 1;
    for (size_t op = 0;
         op < static_cast<size_t>(host::HOp::NumOps); ++op) {
        switch (host::hopInfo(static_cast<host::HOp>(op)).execClass) {
          case host::ExecClass::IntSimple:
            opLatency[op] = cfg.intSimpleLatency;
            break;
          case host::ExecClass::IntComplex:
            opLatency[op] = cfg.intComplexLatency;
            break;
          case host::ExecClass::FpSimple:
            opLatency[op] = cfg.fpSimpleLatency;
            break;
          case host::ExecClass::FpComplex:
            opLatency[op] = cfg.fpComplexLatency;
            break;
          default:
            opLatency[op] = 1;
            break;
        }
    }
}

void
Pipeline::pushPending(const Record &rec)
{
    if (inFlight == window.size())
        growWindow();
    InFlight &slot = window[(head + inFlight) & winMask];
    slot.rec = rec;
    slot.arrival = 0;
    slot.mispredicted = false;
    ++inFlight;
}

void
Pipeline::growWindow()
{
    std::vector<InFlight> bigger(window.size() * 2);
    for (size_t i = 0; i < inFlight; ++i)
        bigger[i] = window[(head + i) & winMask];
    window.swap(bigger);
    winMask = window.size() - 1;
    head = 0;
}

void
Pipeline::accept(const Record &rec)
{
    if (!passesFilter(rec))
        return;

    ++stat.records;
    pushPending(rec);

    // Keep the in-flight window bounded; advance the clock as needed.
    while (pendingCount() > 64)
        step();
}

void
Pipeline::consume(const Record &rec)
{
    panic_if(finished, "consume after finish");
    accept(rec);
}

void
Pipeline::consumeBatch(const Record *recs, size_t count)
{
    panic_if(finished, "consume after finish");
    // Bulk-push then drain once. Equivalent to accept() per record:
    // stepped cycles only ever inspect the front of the pending
    // backlog (its depth matters solely as zero/non-zero, and it
    // stays non-zero throughout either drain schedule), so deferring
    // the drain to the end of the batch replays the exact same step
    // sequence with less loop overhead.
    for (size_t i = 0; i < count; ++i) {
        if (!passesFilter(recs[i]))
            continue;
        ++stat.records;
        pushPending(recs[i]);
    }
    while (pendingCount() > 64)
        step();
}

bool
Pipeline::workRemains() const
{
    return inFlight != 0;
}

void
Pipeline::finish()
{
    if (finished)
        return;
    while (workRemains())
        step();
    finished = true;
    if (intAccounting) {
        for (unsigned b = 0; b < kNumBuckets; ++b) {
            for (unsigned m = 0; m < kNumModules; ++m)
                stat.bucket[b][m] =
                    static_cast<double>(bucketHalf[b][m]) * 0.5;
            for (unsigned si = 0; si < 2; ++si)
                stat.bucketSrc[b][si] =
                    static_cast<double>(bucketSrcHalf[b][si]) * 0.5;
        }
    }
    stat.cycles = now;
    stat.l1i = l1ic.stats();
    stat.l1d = l1dc.stats();
    stat.l2 = l2c.stats();
    stat.tlb = dtlb.stats();
    stat.bp = bp.stats();
    stat.prefetch = pf.stats();
}

void
Pipeline::issueOne(InFlight &inflight)
{
    const Record &rec = inflight.rec;
    const unsigned mod = static_cast<unsigned>(rec.module);

    uint32_t latency = opLatency[static_cast<size_t>(rec.op)];

    bool load_missed = false;
    if (rec.isLoad) {
        uint32_t extra = 0;
        if (host::amap::isGuestAddr(rec.memAddr))
            extra = dtlb.access(rec.memAddr);
        bool miss = false;
        const uint32_t dlat = l1dc.access(rec.memAddr, false, miss);
        if (prefetcherEnabled)
            pf.train(rec.pc, rec.memAddr);
        latency = 1 + extra + dlat;
        load_missed = miss || extra > 0;
    } else if (rec.isStore) {
        // Stores retire through an ideal store buffer: they update the
        // hierarchy (and may evict) but never stall the pipe.
        if (host::amap::isGuestAddr(rec.memAddr))
            (void)dtlb.access(rec.memAddr);
        bool miss = false;
        (void)l1dc.access(rec.memAddr, true, miss);
        latency = 1;
    }

    if (rec.rd != host::kNoReg) {
        RegState &rd = regs[rec.rd];
        rd.ready = now + 1 + (latency > 1 ? latency - 1 : 0);
        rd.producer = rec.module;
        rd.producerSrc = rec.fromRegion;
        rd.loadMiss = rec.isLoad && load_missed;
    }

    if (rec.isBranch && inflight.mispredicted) {
        // Resolved in EXE; the front-end refetches afterwards so the
        // end-to-end penalty equals mispredictPenalty.
        fetchBlockedUntil = now + mispredictPenalty - 3;
        fetchHaltedForBranch = false;
        starveBucket = Bucket::BranchBubble;
        starveModule = rec.module;
        starveSrcRegion = rec.fromRegion;
    }

    ++stat.insts[mod];
}

void
Pipeline::issuePhase(unsigned &issued_count)
{
    // Issue up to issueWidth instructions and account the cycle to
    // exactly one bucket. The stall cause captured when the issue
    // loop breaks doubles as the accounting classification, so the
    // IQ head and the scoreboard are scanned once per cycle, not
    // twice.
    issued_count = 0;
    std::array<unsigned, 8> issued_modules{};
    std::array<bool, 8> issued_src{};
    unsigned issued_n = 0;

    bool head_waiting = false;       ///< head present but blocked
    uint8_t blocking = host::kNoReg; ///< first not-ready source

    // In integer mode each issued instruction is credited 1 half-unit
    // inside the loop; a solo issue gets its second half afterwards.
    unsigned last_m = 0, last_s = 0;

    while (issued_count < issueWidth && iqCount != 0) {
        InFlight &iq_head = slotAt(0);
        if (iq_head.arrival > now)
            break;

        // Scoreboard: both sources ready?
        const uint8_t srcs[2] = {iq_head.rec.rs1, iq_head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regs.size() &&
                regs[src].ready > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg) {
            head_waiting = true;
            break;
        }

        issueOne(iq_head);
        if (intAccounting) {
            last_m = static_cast<unsigned>(iq_head.rec.module);
            last_s = iq_head.rec.fromRegion ? 1 : 0;
            bucketHalf[static_cast<unsigned>(Bucket::Insts)]
                      [last_m] += 1;
            bucketSrcHalf[static_cast<unsigned>(Bucket::Insts)]
                         [last_s] += 1;
        } else {
            issued_modules[issued_n % issued_modules.size()] =
                static_cast<unsigned>(iq_head.rec.module);
            issued_src[issued_n % issued_src.size()] =
                iq_head.rec.fromRegion;
            ++issued_n;
        }
        head = (head + 1) & winMask;
        --inFlight;
        --iqCount;
        ++issued_count;
    }

    if (issued_count) {
        if (intAccounting) {
            if (issued_count == 1) {
                bucketHalf[static_cast<unsigned>(Bucket::Insts)]
                          [last_m] += 1;
                bucketSrcHalf[static_cast<unsigned>(Bucket::Insts)]
                             [last_s] += 1;
            }
        } else {
            const double share =
                1.0 / static_cast<double>(issued_count);
            for (unsigned i = 0; i < issued_count; ++i) {
                stat.bucket[static_cast<unsigned>(Bucket::Insts)]
                           [issued_modules[i]] += share;
                stat.bucketSrc[static_cast<unsigned>(Bucket::Insts)]
                              [issued_src[i] ? 1 : 0] += share;
            }
        }
        return;
    }

    // Stalled cycle: classify and charge one full cycle.
    unsigned b_idx, m_idx, s_idx;
    if (head_waiting) {
        // Head present but not issuable: scoreboard stall.
        const InFlight &iq_head = slotAt(0);
        if (regs[blocking].loadMiss) {
            b_idx = static_cast<unsigned>(Bucket::DcacheBubble);
            m_idx = static_cast<unsigned>(regs[blocking].producer);
            s_idx = regs[blocking].producerSrc ? 1 : 0;
        } else {
            b_idx = static_cast<unsigned>(Bucket::SchedBubble);
            m_idx = static_cast<unsigned>(iq_head.rec.module);
            s_idx = iq_head.rec.fromRegion ? 1 : 0;
        }
    } else {
        // IQ empty (or only future arrivals): front-end starvation.
        b_idx = static_cast<unsigned>(starveBucket);
        m_idx = static_cast<unsigned>(starveModule);
        s_idx = starveSrcRegion ? 1 : 0;
    }
    if (intAccounting) {
        bucketHalf[b_idx][m_idx] += 2;
        bucketSrcHalf[b_idx][s_idx] += 2;
    } else {
        stat.bucket[b_idx][m_idx] += 1.0;
        stat.bucketSrc[b_idx][s_idx] += 1.0;
    }
}

void
Pipeline::fetchPhase()
{
    // Move front-end arrivals into the IQ (a counter move: the
    // element is already in place in the window).
    while (feCount != 0 && slotAt(iqCount).arrival <= now + 1 &&
           iqCount < iqSize) {
        ++iqCount;
        --feCount;
    }

    if (now < fetchBlockedUntil || fetchHaltedForBranch)
        return;

    unsigned fetched = 0;
    size_t fetch_pos = iqCount + feCount;  ///< next pending slot
    const size_t in_flight_total = inFlight;
    while (fetched < issueWidth && fetch_pos < in_flight_total &&
           feCount < 8) {
        InFlight &inflight = slotAt(fetch_pos);
        const Record &rec = inflight.rec;

        const uint32_t line = rec.pc >> l1iLineShift;
        if (line != lastFetchLine) {
            bool miss = false;
            const uint32_t lat = l1ic.access(rec.pc, false, miss);
            lastFetchLine = line;
            if (miss) {
                // Fetch resumes after the fill; this instruction
                // completes its front-end traversal afterwards.
                fetchBlockedUntil = now + lat;
                starveBucket = Bucket::IcacheBubble;
                starveModule = rec.module;
                starveSrcRegion = rec.fromRegion;
                inflight.arrival = now + lat + 3;
                if (rec.isBranch) {
                    inflight.mispredicted = !bp.predict(
                        rec.pc, rec.taken, rec.branchTarget,
                        rec.isCondBranch, rec.isIndirect);
                    if (inflight.mispredicted) {
                        fetchHaltedForBranch = true;
                        starveBucket = Bucket::BranchBubble;
                        starveModule = rec.module;
                        starveSrcRegion = rec.fromRegion;
                    }
                }
                ++feCount;
                return;
            }
        }

        inflight.arrival = now + 3;  // AC/IF/DEC traversal
        if (rec.isBranch) {
            inflight.mispredicted = !bp.predict(
                rec.pc, rec.taken, rec.branchTarget, rec.isCondBranch,
                rec.isIndirect);
        }
        ++feCount;
        ++fetch_pos;
        ++fetched;

        if (rec.isBranch && inflight.mispredicted) {
            // Wrong-path fetch suppressed until the branch resolves.
            fetchHaltedForBranch = true;
            starveBucket = Bucket::BranchBubble;
            starveModule = rec.module;
            starveSrcRegion = rec.fromRegion;
            return;
        }
    }
}

void
Pipeline::step()
{
    // Fast-forward runs of stall cycles whose outcome is fully
    // determined: either pure starvation (IQ empty or only future
    // arrivals) or the IQ head scoreboard-blocked on a known ready
    // time. Each such cycle only adds 1.0 to one sticky bucket cell
    // and advances the clock, so a run of them becomes a tight
    // accounting loop instead of full steps — valid only while the
    // front-end is provably inert for every skipped cycle. The adds
    // stay one-per-cycle to keep the floating-point bucket sums
    // bit-identical to the stepped execution.
    // Cheap gate first: on busy cycles (something fetchable or the
    // fetch unblocked) the fast-forward can never fire, so skip the
    // classification scan entirely.
    const bool mover_idle =
        feCount == 0 || iqCount >= iqSize ||
        slotAt(iqCount).arrival > now + 1;
    const bool fetch_idle =
        now < fetchBlockedUntil || fetchHaltedForBranch ||
        pendingCount() == 0 || feCount >= 8;
    if (!mover_idle || !fetch_idle) {
        unsigned issued_busy = 0;
        issuePhase(issued_busy);
        fetchPhase();
        ++now;
        return;
    }

    uint64_t stall_until = 0;        ///< first cycle to re-evaluate
    bool classified = false;
    unsigned b_idx = 0, m_idx = 0, s_idx = 0;

    if (iqCount == 0 || slotAt(0).arrival > now) {
        // Starvation: sticky cause, ends when the IQ head arrives.
        stall_until =
            iqCount != 0 ? slotAt(0).arrival : UINT64_MAX;
        classified = true;
        b_idx = static_cast<unsigned>(starveBucket);
        m_idx = static_cast<unsigned>(starveModule);
        s_idx = starveSrcRegion ? 1 : 0;
    } else {
        // Head present: scoreboard-blocked runs end when the first
        // blocking source becomes ready.
        const InFlight &iq_head = slotAt(0);
        uint8_t blocking = host::kNoReg;
        const uint8_t srcs[2] = {iq_head.rec.rs1, iq_head.rec.rs2};
        for (uint8_t src : srcs) {
            if (src != host::kNoReg && src < regs.size() &&
                regs[src].ready > now) {
                blocking = src;
                break;
            }
        }
        if (blocking != host::kNoReg) {
            stall_until = regs[blocking].ready;
            classified = true;
            if (regs[blocking].loadMiss) {
                b_idx = static_cast<unsigned>(Bucket::DcacheBubble);
                m_idx = static_cast<unsigned>(regs[blocking].producer);
                s_idx = regs[blocking].producerSrc ? 1 : 0;
            } else {
                b_idx = static_cast<unsigned>(Bucket::SchedBubble);
                m_idx = static_cast<unsigned>(iq_head.rec.module);
                s_idx = iq_head.rec.fromRegion ? 1 : 0;
            }
        }
    }

    if (stall_until > now + 1 && classified) {
        uint64_t limit = stall_until;
        if (feCount != 0 && iqCount < iqSize)
            limit = std::min(limit, slotAt(iqCount).arrival - 1);
        if (!fetchHaltedForBranch && pendingCount() != 0 &&
            feCount < 8)
            limit = std::min(limit, fetchBlockedUntil);
        if (limit != UINT64_MAX && limit > now) {
            const uint64_t span = limit - now;
            if (intAccounting) {
                // Integer adds are associative: the whole run in one
                // update, still bit-identical after conversion.
                bucketHalf[b_idx][m_idx] += 2 * span;
                bucketSrcHalf[b_idx][s_idx] += 2 * span;
            } else {
                for (uint64_t c = 0; c < span; ++c) {
                    stat.bucket[b_idx][m_idx] += 1.0;
                    stat.bucketSrc[b_idx][s_idx] += 1.0;
                }
            }
            now = limit;
            return;
        }
    }

    unsigned issued = 0;
    issuePhase(issued);
    fetchPhase();
    ++now;
}

} // namespace darco::timing
