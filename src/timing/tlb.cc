#include "timing/tlb.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::timing {

void
Tlb::Level::init(uint32_t entries, uint32_t num_ways)
{
    ways = num_ways;
    sets = entries / num_ways;
    panic_if(!isPowerOf2(sets), "TLB sets must be a power of two");
    setShift = floorLog2(sets);
    tags.assign(static_cast<size_t>(sets) * ways, 0);
    valid.assign(static_cast<size_t>(sets) * ways, false);
    plru.assign(static_cast<size_t>(sets) * (ways - 1), 0);
}

uint32_t
Tlb::Level::victim(uint32_t set) const
{
    const size_t base = static_cast<size_t>(set) * (ways - 1);
    uint32_t node = 0;
    const uint32_t levels = floorLog2(ways);
    for (uint32_t l = 0; l < levels; ++l)
        node = 2 * node + 1 + plru[base + node];
    return node - (ways - 1);
}

void
Tlb::Level::touch(uint32_t set, uint32_t way)
{
    const size_t base = static_cast<size_t>(set) * (ways - 1);
    uint32_t node = way + (ways - 1);
    while (node != 0) {
        const uint32_t parent = (node - 1) / 2;
        const bool is_right = (node == 2 * parent + 2);
        plru[base + parent] = is_right ? 0 : 1;
        node = parent;
    }
}

bool
Tlb::Level::lookup(uint32_t vpn)
{
    const uint32_t set = vpn & (sets - 1);
    const uint32_t tag = vpn >> setShift;
    const size_t base = static_cast<size_t>(set) * ways;
    for (uint32_t w = 0; w < ways; ++w) {
        if (valid[base + w] && tags[base + w] == tag) {
            touch(set, w);
            return true;
        }
    }
    return false;
}

void
Tlb::Level::insert(uint32_t vpn)
{
    const uint32_t set = vpn & (sets - 1);
    const uint32_t tag = vpn >> setShift;
    const size_t base = static_cast<size_t>(set) * ways;
    for (uint32_t w = 0; w < ways; ++w) {
        if (!valid[base + w]) {
            valid[base + w] = true;
            tags[base + w] = tag;
            touch(set, w);
            return;
        }
    }
    const uint32_t w = victim(set);
    tags[base + w] = tag;
    valid[base + w] = true;
    touch(set, w);
}

Tlb::Tlb(const TimingConfig &config) : cfg(config)
{
    l1.init(cfg.tlbL1Entries, cfg.tlbL1Ways);
    l2.init(cfg.tlbL2Entries, cfg.tlbL2Ways);
}

void
Tlb::reset()
{
    l1.init(cfg.tlbL1Entries, cfg.tlbL1Ways);
    l2.init(cfg.tlbL2Entries, cfg.tlbL2Ways);
    lastVpn = 0xFFFFFFFFu;
    stat = TlbStats();
}

uint32_t
Tlb::access(uint32_t addr)
{
    ++stat.accesses;
    const uint32_t vpn = addr >> cfg.pageBits;
    // Same-page fast path: the previous access left this VPN in L1
    // as the most recently touched way of its set.
    if (vpn == lastVpn)
        return 0;
    lastVpn = vpn;
    if (l1.lookup(vpn))
        return 0;
    ++stat.l1Misses;
    if (l2.lookup(vpn)) {
        l1.insert(vpn);
        return cfg.tlbL2Latency;
    }
    ++stat.l2Misses;
    l2.insert(vpn);
    l1.insert(vpn);
    return cfg.tlbL2Latency + cfg.tlbWalkLatency;
}

} // namespace darco::timing
