/**
 * @file
 * PC-indexed stride prefetcher (Table I: 256 entries). Trains on load
 * addresses per load PC; after two consecutive confirmations of the
 * same stride it prefetches the next line into the L2 (bringing data
 * near, but leaving the L1-D fill to demand misses — a conservative
 * timeliness model; see DESIGN.md).
 */

#ifndef DARCO_TIMING_PREFETCHER_HH
#define DARCO_TIMING_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "timing/cache.hh"

namespace darco::timing {

/** Stride-prefetcher counters (docs/metrics.md §3). */
struct PrefetcherStats
{
    uint64_t trains = 0;     ///< loads observed
    uint64_t prefetches = 0; ///< L2 fills launched
};

class StridePrefetcher
{
  public:
    StridePrefetcher(uint32_t num_entries, Cache &fill_target)
        : entries(num_entries), dcache(fill_target),
          entriesMask(isPowerOf2(num_entries) ? num_entries - 1 : 0),
          lineShift(floorLog2(fill_target.lineBytes())),
          tableStore(num_entries, Entry())
    {}

    /** Observe a load and possibly prefetch. */
    void
    train(uint32_t pc, uint32_t addr)
    {
        ++stat.trains;
        Entry &e = tableStore[index(pc)];
        if (e.tag == pc) {
            const int32_t stride =
                static_cast<int32_t>(addr - e.lastAddr);
            if (stride != 0 && stride == e.stride) {
                if (e.confidence < 3)
                    ++e.confidence;
            } else {
                e.stride = stride;
                e.confidence = stride != 0 ? 1 : 0;
            }
            e.lastAddr = addr;
            if (e.confidence >= 2 && e.stride != 0) {
                // Distance-4 lookahead so the prefetch stays ahead of
                // the stream and crosses lines even for small strides.
                const uint32_t next =
                    addr + 4 * static_cast<uint32_t>(e.stride);
                if ((next >> lineShift) != (addr >> lineShift)) {
                    dcache.prefetch(next);
                    ++stat.prefetches;
                }
            }
        } else {
            e.tag = pc;
            e.lastAddr = addr;
            e.stride = 0;
            e.confidence = 0;
        }
    }

    /** Counters accumulated so far. */
    const PrefetcherStats &stats() const { return stat; }

    /** Clear the training table (used between experiments). */
    void
    reset()
    {
        tableStore.assign(entries, Entry());
        stat = PrefetcherStats();
    }

  private:
    struct Entry
    {
        uint32_t tag = 0;
        uint32_t lastAddr = 0;
        int32_t stride = 0;
        uint8_t confidence = 0;
    };

    uint32_t
    index(uint32_t pc) const
    {
        // Mask when the table is a power of two (the common config).
        return entriesMask ? (pc >> 2) & entriesMask
                           : (pc >> 2) % entries;
    }

    uint32_t entries;
    Cache &dcache;
    uint32_t entriesMask;
    uint32_t lineShift;
    std::vector<Entry> tableStore;
    PrefetcherStats stat;
};

} // namespace darco::timing

#endif // DARCO_TIMING_PREFETCHER_HH
