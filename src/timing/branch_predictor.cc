#include "timing/branch_predictor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::timing {

BranchPredictor::BranchPredictor(const TimingConfig &config)
    : cfg(config)
{
    historyMask = (1u << cfg.bpHistoryBits) - 1;
    pht.assign(1u << cfg.bpHistoryBits, 1);  // weakly not-taken
    btbSets = cfg.btbEntries / cfg.btbWays;
    panic_if(!isPowerOf2(btbSets), "BTB sets must be a power of two");
    btbSetShift = floorLog2(btbSets);
    btb.assign(cfg.btbEntries, BtbEntry());
}

void
BranchPredictor::reset()
{
    pht.assign(pht.size(), 1);
    history = 0;
    btb.assign(btb.size(), BtbEntry());
    stat = BpStats();
}

bool
BranchPredictor::btbLookup(uint32_t pc, uint32_t &target_out,
                           uint32_t &way_out)
{
    const uint32_t set = (pc >> 2) & (btbSets - 1);
    const uint32_t tag = (pc >> 2) >> btbSetShift;
    const size_t base = static_cast<size_t>(set) * cfg.btbWays;
    for (uint32_t w = 0; w < cfg.btbWays; ++w) {
        BtbEntry &e = btb[base + w];
        if (e.valid && e.tag == tag) {
            target_out = e.target;
            way_out = w;
            e.lru = 0;
            for (uint32_t o = 0; o < cfg.btbWays; ++o) {
                if (o != w && btb[base + o].lru < 255)
                    ++btb[base + o].lru;
            }
            return true;
        }
    }
    return false;
}

void
BranchPredictor::btbUpdate(uint32_t pc, uint32_t target, bool hit,
                           uint32_t hit_way)
{
    const uint32_t set = (pc >> 2) & (btbSets - 1);
    const uint32_t tag = (pc >> 2) >> btbSetShift;
    const size_t base = static_cast<size_t>(set) * cfg.btbWays;

    if (hit) {
        // The preceding lookup found the entry; refresh it in place
        // instead of re-searching the set.
        BtbEntry &e = btb[base + hit_way];
        e.target = target;
        e.lru = 0;
        return;
    }

    // Miss: the tag is absent, so victim selection alone decides.
    uint32_t victim = 0;
    uint8_t oldest = 0;
    for (uint32_t w = 0; w < cfg.btbWays; ++w) {
        BtbEntry &e = btb[base + w];
        if (!e.valid) {
            victim = w;
            oldest = 255;
        } else if (e.lru >= oldest) {
            victim = w;
            oldest = e.lru;
        }
    }
    BtbEntry &e = btb[base + victim];
    e.valid = true;
    e.tag = tag;
    e.target = target;
    e.lru = 0;
}

bool
BranchPredictor::predict(uint32_t pc, bool taken, uint32_t target,
                         bool is_cond, bool is_indirect)
{
    ++stat.branches;

    bool predicted_taken = true;
    if (is_cond) {
        ++stat.condBranches;
        const uint32_t index = ((pc >> 2) ^ history) & historyMask;
        predicted_taken = pht[index] >= 2;
        // Update the 2-bit counter and global history.
        uint8_t &counter = pht[index];
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
        history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
    }

    bool correct;
    if (is_cond && !taken) {
        // Not-taken path: correct iff direction was predicted
        // not-taken (target irrelevant).
        correct = !predicted_taken;
        if (!correct)
            ++stat.directionMispredicts;
    } else {
        // Taken (or unconditional/indirect): need direction and target.
        uint32_t btb_target = 0;
        uint32_t btb_way = 0;
        const bool btb_hit = btbLookup(pc, btb_target, btb_way);
        const bool dir_ok = !is_cond || predicted_taken;
        const bool tgt_ok = btb_hit && btb_target == target;
        correct = dir_ok && tgt_ok;
        if (!dir_ok)
            ++stat.directionMispredicts;
        else if (!tgt_ok)
            ++stat.targetMispredicts;
        if (!correct && is_indirect)
            ++stat.indirectMispredicts;
        btbUpdate(pc, target, btb_hit, btb_way);
    }

    if (!correct)
        ++stat.mispredicts;
    return correct;
}

} // namespace darco::timing
