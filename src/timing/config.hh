/**
 * @file
 * Host microarchitecture configuration — Table I of the paper.
 *
 * Parameters the paper does not specify (BTB geometry, TLB walk
 * penalty, redirect depth) are exposed here with defaults documented
 * in DESIGN.md §4.5.
 */

#ifndef DARCO_TIMING_CONFIG_HH
#define DARCO_TIMING_CONFIG_HH

#include <cstdint>
#include <numeric>

namespace darco::timing {

/**
 * Widest supported issue width. The bound exists only so the exact
 * fixed-point cycle accounting stays overflow-safe: accountingDenom()
 * grows super-exponentially with the width (lcm(1..16) = 720720), and
 * per-run unit totals must fit in 64 bits.
 */
constexpr uint32_t kMaxIssueWidth = 16;

/**
 * Denominator of the exact fixed-point cycle accounting for a given
 * issue width: lcm(1..width). A cycle that issues k instructions
 * charges each one 1/k of the cycle; representing charges in integer
 * units of 1/lcm(1..W) makes every per-slot share (W/k units for
 * k <= W) an exact integer, so merging and reordering charges is
 * associative and the one conversion to doubles at finish() is
 * bit-identical regardless of accumulation order
 * (docs/timing-model.md §4).
 */
constexpr uint64_t
accountingDenom(uint32_t width)
{
    uint64_t denom = 1;
    for (uint64_t k = 2; k <= width; ++k)
        denom = std::lcm(denom, k);
    return denom;
}

struct CacheGeometry
{
    uint32_t sizeBytes;
    uint32_t lineBytes;
    uint32_t ways;
    uint32_t hitLatency;
    /**
     * Replace with exact (stamp-based) LRU instead of tree-PLRU.
     * Off for every Table I cache; the profile layer's analytic
     * cross-check (profile/analytic.hh) turns it on for a
     * fully-associative instance, because Mattson's stack model is
     * exact only for true LRU.
     */
    bool trueLru = false;
};

/** Host microarchitecture parameters (Table I + DESIGN.md §4.5). */
struct TimingConfig
{
    // General (Table I).
    /** In-order issue slots per cycle (1..kMaxIssueWidth). */
    uint32_t issueWidth = 2;
    uint32_t iqSize = 16;       ///< instruction-queue entries

    /**
     * Drive the pipeline with the event-driven core: advance the
     * clock directly to the next event (issue-ready, fetch-ready,
     * writeback, miss completion, branch resolve) instead of ticking
     * every cycle. Bit-identical to the cycle-stepped reference core
     * by construction at every issue width (see docs/timing-model.md;
     * enforced by the A/B determinism tests and their width sweep).
     */
    bool eventCore = true;

    /**
     * Event-core burst dispatcher: when the front-end backlog,
     * scoreboard and component state prove that the next cycles will
     * all issue at full width with same-line I-cache/D-cache/TLB
     * fast-path outcomes, retire whole groups with one bulk advance
     * and deferred integer-unit accounting instead of one merged
     * cycle body per cycle. The burst predicate is a pure observer;
     * every accepted cycle is bit-identical to the cycle-stepped
     * reference (docs/timing-model.md §"Burst dispatch"; enforced by
     * the three-way A/B tests). No effect when eventCore is off.
     */
    bool burst = true;

    // Branch prediction: Gshare with a 12-bit history register.
    uint32_t bpHistoryBits = 12;
    uint32_t btbEntries = 1024;     ///< not in Table I (DESIGN.md)
    uint32_t btbWays = 4;
    uint32_t mispredictPenalty = 6;

    // L1 caches: 32KB, 64B lines, 4-way, PLRU, 1-cycle hit.
    CacheGeometry l1i{32 * 1024, 64, 4, 1};
    CacheGeometry l1d{32 * 1024, 64, 4, 1};
    // L2 unified: 512KB, 128B lines, 8-way, PLRU, 16-cycle hit.
    CacheGeometry l2{512 * 1024, 128, 8, 16};
    uint32_t memLatency = 128;

    // Stride prefetcher: 256 entries.
    uint32_t prefetcherEntries = 256;
    bool prefetcherEnabled = true;

    // Data TLBs: L1 64-entry/8-way, L2 256-entry/8-way, PLRU.
    uint32_t tlbL1Entries = 64;
    uint32_t tlbL1Ways = 8;
    uint32_t tlbL1Latency = 1;
    uint32_t tlbL2Entries = 256;
    uint32_t tlbL2Ways = 8;
    uint32_t tlbL2Latency = 16;
    uint32_t tlbWalkLatency = 128;  ///< not in Table I (DESIGN.md)
    uint32_t pageBits = 12;

    // Execution latencies (Table I narrative).
    uint32_t intSimpleLatency = 1;
    uint32_t intComplexLatency = 2;
    uint32_t fpSimpleLatency = 2;
    uint32_t fpComplexLatency = 5;
};

} // namespace darco::timing

#endif // DARCO_TIMING_CONFIG_HH
