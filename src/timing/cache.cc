#include "timing/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::timing {

Cache::Cache(const CacheGeometry &geometry, Cache *next,
             uint32_t mem_latency)
    : geom(geometry), nextLevel(next), memLatency(mem_latency)
{
    panic_if(!isPowerOf2(geom.lineBytes), "line size must be 2^n");
    panic_if(geom.sizeBytes % (geom.lineBytes * geom.ways) != 0,
             "cache size not divisible by way size");
    numSets = geom.sizeBytes / (geom.lineBytes * geom.ways);
    panic_if(!isPowerOf2(numSets), "number of sets must be 2^n");
    panic_if(!isPowerOf2(geom.ways), "associativity must be 2^n");
    lineShift = floorLog2(geom.lineBytes);
    setShift = floorLog2(numSets);
    ways.assign(static_cast<size_t>(numSets) * geom.ways, Way());
    plruBits.assign(static_cast<size_t>(numSets) * (geom.ways - 1), 0);
    if (geom.trueLru)
        lruStamp.assign(static_cast<size_t>(numSets) * geom.ways, 0);
    lastInSet.assign(numSets, LastAccess());
}

void
Cache::reset()
{
    for (Way &w : ways)
        w = Way();
    for (uint8_t &b : plruBits)
        b = 0;
    for (uint64_t &s : lruStamp)
        s = 0;
    lruClock = 0;
    lastInSet.assign(numSets, LastAccess());
    stat = CacheStats();
}

int
Cache::findWay(uint32_t set, uint32_t tag) const
{
    const size_t base = static_cast<size_t>(set) * geom.ways;
    for (uint32_t w = 0; w < geom.ways; ++w) {
        if (ways[base + w].valid && ways[base + w].tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

uint32_t
Cache::plruVictim(uint32_t set) const
{
    // Tree-PLRU: bit value 0 means "left side is LRU-er". Walk toward
    // the least recently used leaf.
    const size_t base = static_cast<size_t>(set) * (geom.ways - 1);
    uint32_t node = 0;
    uint32_t levels = floorLog2(geom.ways);
    for (uint32_t l = 0; l < levels; ++l) {
        const uint8_t bit = plruBits[base + node];
        node = 2 * node + 1 + bit;
    }
    return node - (geom.ways - 1);
}

void
Cache::plruTouch(uint32_t set, uint32_t way)
{
    // Flip bits along the path so they point away from `way`.
    const size_t base = static_cast<size_t>(set) * (geom.ways - 1);
    uint32_t node = way + (geom.ways - 1);
    while (node != 0) {
        const uint32_t parent = (node - 1) / 2;
        const bool is_right = (node == 2 * parent + 2);
        plruBits[base + parent] = is_right ? 0 : 1;
        node = parent;
    }
}

uint32_t
Cache::victimWay(uint32_t set) const
{
    if (!geom.trueLru)
        return plruVictim(set);
    const size_t base = static_cast<size_t>(set) * geom.ways;
    uint32_t victim = 0;
    for (uint32_t w = 1; w < geom.ways; ++w) {
        if (lruStamp[base + w] < lruStamp[base + victim])
            victim = w;
    }
    return victim;
}

void
Cache::touchWay(uint32_t set, uint32_t way)
{
    if (!geom.trueLru) {
        plruTouch(set, way);
        return;
    }
    lruStamp[static_cast<size_t>(set) * geom.ways + way] = ++lruClock;
}

uint32_t
Cache::fillLine(uint32_t addr, bool dirty, bool charge_fill)
{
    const uint32_t set = setIndex(addr);
    const uint32_t tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * geom.ways;

    int way = findWay(set, tag);
    if (way < 0) {
        // Prefer an invalid way.
        for (uint32_t w = 0; w < geom.ways; ++w) {
            if (!ways[base + w].valid) {
                way = static_cast<int>(w);
                break;
            }
        }
        if (way < 0) {
            way = static_cast<int>(victimWay(set));
            Way &victim = ways[base + way];
            if (victim.valid && victim.dirty) {
                ++stat.writebacks;
                if (nextLevel) {
                    // Write back into the next level (no stall: the
                    // write buffer hides it; see DESIGN.md).
                    bool dummy = false;
                    const uint32_t victim_addr =
                        (victim.tag * numSets + set) * geom.lineBytes;
                    (void)nextLevel->access(victim_addr, true, dummy);
                }
            }
        }
        ways[base + way].tag = tag;
        ways[base + way].valid = true;
        ways[base + way].dirty = false;
        if (charge_fill)
            ++stat.prefetchFills;
    }
    if (dirty)
        ways[base + way].dirty = true;
    touchWay(set, static_cast<uint32_t>(way));
    return static_cast<uint32_t>(way);
}

uint32_t
Cache::access(uint32_t addr, bool write, bool &miss_out)
{
    ++stat.accesses;
    const uint32_t line = addr >> lineShift;
    const uint32_t set = line & (numSets - 1);
    const uint32_t tag = line >> setShift;

    // Same-line fast path (see lastInSet): every access and fill in
    // this set updates the entry, so a match means the most recent
    // touch of the set was this very way — the skipped re-touch is
    // idempotent and the way cannot have been evicted since.
    LastAccess &last = lastInSet[set];
    if (line == last.line) {
        Way &w = ways[static_cast<size_t>(set) * geom.ways + last.way];
        if (w.valid && w.tag == tag) {
            miss_out = false;
            w.dirty |= write;
            return geom.hitLatency;
        }
    }

    const int way = findWay(set, tag);
    if (way >= 0) {
        miss_out = false;
        touchWay(set, static_cast<uint32_t>(way));
        if (write)
            ways[static_cast<size_t>(set) * geom.ways + way].dirty = true;
        last.line = line;
        last.way = static_cast<uint32_t>(way);
        return geom.hitLatency;
    }

    ++stat.misses;
    miss_out = true;
    uint32_t below;
    if (nextLevel) {
        bool next_miss = false;
        below = nextLevel->access(addr, false, next_miss);
    } else {
        below = memLatency;
    }
    // fillLine may evict another line; record the new occupant so the
    // fast path stays coherent for this set.
    lastInSet[set].line = line;
    lastInSet[set].way = fillLine(addr, write, false);
    return geom.hitLatency + below;
}

bool
Cache::probe(uint32_t addr) const
{
    return findWay(setIndex(addr), tagOf(addr)) >= 0;
}

void
Cache::prefetch(uint32_t addr)
{
    const uint32_t set = setIndex(addr);
    const uint32_t tag = tagOf(addr);
    if (findWay(set, tag) >= 0)
        return;
    if (nextLevel)
        nextLevel->prefetch(addr);
    // The prefetch fill touches (and may evict within) this set;
    // point the fast path at the prefetched line.
    lastInSet[set].line = addr >> lineShift;
    lastInSet[set].way = fillLine(addr, false, true);
}

} // namespace darco::timing
