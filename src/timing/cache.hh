/**
 * @file
 * Set-associative cache with tree-PLRU replacement, write-back /
 * write-allocate, used for L1-I, L1-D and the unified L2 (Table I).
 */

#ifndef DARCO_TIMING_CACHE_HH
#define DARCO_TIMING_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "timing/config.hh"

namespace darco::timing {

/** Per-cache counters (docs/metrics.md §3). */
struct CacheStats
{
    uint64_t accesses = 0;      ///< demand accesses (not probes)
    uint64_t misses = 0;        ///< demand misses
    uint64_t writebacks = 0;    ///< dirty lines evicted downward
    uint64_t prefetchFills = 0; ///< lines installed by prefetches

    /** Demand miss ratio (0 when never accessed). */
    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                        : 0.0;
    }
};

class Cache
{
  public:
    /**
     * @param geometry size/line/ways/latency
     * @param next     next level (nullptr = main memory)
     * @param mem_latency latency charged when next == nullptr
     */
    Cache(const CacheGeometry &geometry, Cache *next,
          uint32_t mem_latency);

    /**
     * Access @p addr. Returns the total latency in cycles including
     * lower levels on a miss; fills the line and handles dirty
     * writebacks.
     */
    uint32_t access(uint32_t addr, bool write, bool &miss_out);

    /** Hit check without any state change (for tests). */
    bool probe(uint32_t addr) const;

    /**
     * Would access(@p addr, ...) take the same-line fast path? True
     * exactly when the line matches the set's most recent access and
     * that way is still valid with the same tag — in which case the
     * access would return hitLatency and change no replacement state
     * (only the dirty bit, for writes). A pure observer: the burst
     * dispatcher uses it to prove a window of accesses is
     * state-idempotent before retiring the window in bulk.
     */
    bool
    fastPathHit(uint32_t addr) const
    {
        const uint32_t line = addr >> lineShift;
        const uint32_t set = line & (numSets - 1);
        const LastAccess &last = lastInSet[set];
        if (line != last.line)
            return false;
        const Way &w =
            ways[static_cast<size_t>(set) * geom.ways + last.way];
        return w.valid && w.tag == (line >> setShift);
    }

    /**
     * Apply the one state change a fast-path *write* hit performs:
     * set the line's dirty bit. Caller must have established
     * fastPathHit(@p addr); pair with chargeFastPathHits for the
     * access count.
     */
    void
    markFastPathDirty(uint32_t addr)
    {
        const uint32_t set = (addr >> lineShift) & (numSets - 1);
        ways[static_cast<size_t>(set) * geom.ways +
             lastInSet[set].way].dirty = true;
    }

    /**
     * Account @p n demand accesses that were proven (and applied) as
     * fast-path hits without calling access() — the deferred bulk
     * counter update of a retired burst window. Integer add, so
     * deferral and coalescing are exact.
     */
    void chargeFastPathHits(uint64_t n) { stat.accesses += n; }

    /**
     * Prefetch @p addr into this cache (and lower levels), without a
     * latency charge. Counts as a prefetch fill, not an access.
     */
    void prefetch(uint32_t addr);

    /** Counters accumulated so far. */
    const CacheStats &stats() const { return stat; }

    /** Drop all contents (used between experiments). */
    void reset();

    /** Configured line size in bytes. */
    uint32_t lineBytes() const { return geom.lineBytes; }

  private:
    struct Way
    {
        uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    // Geometry is asserted power-of-two in the constructor, so the
    // per-access set/tag split is two shifts, not two divisions.
    uint32_t setIndex(uint32_t addr) const
    {
        return (addr >> lineShift) & (numSets - 1);
    }

    uint32_t tagOf(uint32_t addr) const
    {
        return addr >> (lineShift + setShift);
    }

    int findWay(uint32_t set, uint32_t tag) const;
    uint32_t plruVictim(uint32_t set) const;
    void plruTouch(uint32_t set, uint32_t way);
    /** Replacement dispatch: tree-PLRU or exact LRU (geom.trueLru). */
    uint32_t victimWay(uint32_t set) const;
    void touchWay(uint32_t set, uint32_t way);
    /** Insert a line, handling victim writeback. Returns way used. */
    uint32_t fillLine(uint32_t addr, bool dirty, bool charge_fill);

    CacheGeometry geom;
    Cache *nextLevel;
    uint32_t memLatency;
    uint32_t numSets;
    uint32_t lineShift = 0;        ///< log2(lineBytes)
    uint32_t setShift = 0;         ///< log2(numSets)
    std::vector<Way> ways;         ///< numSets * geom.ways
    std::vector<uint8_t> plruBits; ///< numSets * (ways - 1) tree bits

    /**
     * Exact-LRU state (geom.trueLru only): per-way recency stamps
     * from a monotone counter; the victim is the valid way with the
     * smallest stamp. The same-line fast path's skipped re-touch
     * stays correct — a fast-path hit means the most recent touch of
     * the set was this very way, so it already holds the set's
     * largest stamp.
     */
    std::vector<uint64_t> lruStamp; ///< numSets * geom.ways
    uint64_t lruClock = 0;

    /**
     * Per-set same-line fast path: the line and way of the most
     * recent access (or fill) in each set. A repeated access to that
     * line skips the set scan, and the PLRU re-touch it skips is a
     * no-op because the most recent touch of the set already points
     * the tree bits away from that way. Indexed by set so
     * alternating lines in different sets all stay on the fast path.
     */
    struct LastAccess
    {
        uint32_t line = 0xFFFFFFFFu;
        uint32_t way = 0;
    };
    std::vector<LastAccess> lastInSet;   ///< one entry per set

    CacheStats stat;
};

} // namespace darco::timing

#endif // DARCO_TIMING_CACHE_HH
