/**
 * @file
 * Cycle-level model of the host processor (Figure 4): a 2-issue
 * in-order pipeline with an AC/IF/DEC front-end, a 16-entry
 * instruction queue, scoreboarded issue, and EXE-resolved branches
 * with a 6-cycle misprediction penalty; backed by the Table I memory
 * hierarchy (split L1, unified L2, data TLB, stride prefetcher) and a
 * Gshare+BTB predictor.
 *
 * Every cycle is attributed to exactly one accounting bucket
 * {instructions, D$-miss bubble, I$-miss bubble, branch bubble,
 * instruction scheduling} and, within the bucket, to the module
 * (application or one of the TOL components) responsible — the
 * Figure 7 / Figure 9 decomposition. Bucket totals sum exactly to
 * total cycles (asserted by tests).
 *
 * Three instances are fed from one functional pass (combined,
 * TOL-only, APP-only) to reproduce the paper's isolation methodology
 * (§III-C, §III-D): a filter drops records of the other side before
 * they touch this instance's pipeline or hierarchy.
 *
 * Two interchangeable cores drive the model (docs/timing-model.md):
 * the cycle-stepped reference core ticks every cycle, and the
 * event-driven core advances the clock directly to the next event
 * (issue-ready, fetch-ready, writeback, miss completion, branch
 * resolve). They are bit-identical in every metric — enforced by the
 * A/B determinism tests — and selected by TimingConfig::eventCore.
 */

#ifndef DARCO_TIMING_PIPELINE_HH
#define DARCO_TIMING_PIPELINE_HH

#include <array>
#include <string>
#include <vector>

#include "timing/branch_predictor.hh"
#include "timing/cache.hh"
#include "timing/config.hh"
#include "timing/prefetcher.hh"
#include "timing/record.hh"
#include "timing/tlb.hh"

namespace darco::timing {

/** Cycle accounting buckets (Figure 9 categories). */
enum class Bucket : uint8_t {
    Insts = 0,       ///< at least one instruction issued
    DcacheBubble,    ///< waiting on a load (or DTLB) miss
    IcacheBubble,    ///< front-end starved by an instruction miss
    BranchBubble,    ///< front-end starved by a misprediction redirect
    SchedBubble,     ///< IQ head not issuable: dependencies/latency
    NumBuckets,
};

/** Human-readable bucket label (stable, used in tables). */
const char *bucketName(Bucket b);

struct PipeStats;

/**
 * Exact comparison of everything two pipeline instances measured:
 * integers compared as integers, doubles with == (the bit-identical
 * contract, not closeness). Returns a newline-separated description
 * of every mismatching field — empty means identical. The single
 * source of truth for the A/B determinism gates (the engine_speed
 * harness and tests/test_timing_ab.cc both use it, so the covered
 * field set cannot drift between them).
 */
std::string diffStats(const PipeStats &a, const PipeStats &b);

/** Number of attribution modules (array extents). */
constexpr unsigned kNumModules =
    static_cast<unsigned>(Module::NumModules);
/** Number of accounting buckets (array extents). */
constexpr unsigned kNumBuckets =
    static_cast<unsigned>(Bucket::NumBuckets);

/** Everything one pipeline instance measures (docs/metrics.md). */
struct PipeStats
{
    uint64_t cycles = 0;    ///< total simulated cycles
    uint64_t records = 0;   ///< records accepted past the filter
    /**
     * Cycles retired by the event core's burst dispatcher (0 for the
     * cycle-stepped core and with TimingConfig::burst off). A
     * diagnostic of which host-side path retired the cycles — like
     * host seconds, it is core-dependent by construction and
     * therefore deliberately NOT part of diffStats' bit-identity
     * contract.
     */
    uint64_t burstCycles = 0;
    /** Instructions issued, by attributed module. */
    std::array<uint64_t, kNumModules> insts{};
    /**
     * Fixed-point denominator of the exact integer accounting:
     * lcm(1..issueWidth) (timing::accountingDenom). bucketUnits /
     * bucketSrcUnits hold integer multiples of 1/unitDenom cycles;
     * the double views below are derived from them once at finish().
     */
    uint64_t unitDenom = 1;
    /** Exact cycle units (1/unitDenom cycles): [bucket][module]. */
    std::array<std::array<uint64_t, kNumModules>, kNumBuckets>
        bucketUnits{};
    /** Exact cycle units by stream source: [bucket][0=TOL,1=region]. */
    std::array<std::array<uint64_t, 2>, kNumBuckets> bucketSrcUnits{};
    /** Fractional cycles: [bucket][module] (bucketUnits/unitDenom). */
    std::array<std::array<double, kNumModules>, kNumBuckets> bucket{};
    /**
     * Secondary accounting by stream source for the isolation study
     * (Figures 10/11): [bucket][0 = TOL software, 1 = region code].
     */
    std::array<std::array<double, 2>, kNumBuckets> bucketSrc{};

    CacheStats l1i, l1d, l2;    ///< memory-hierarchy counters
    TlbStats tlb;               ///< data-TLB counters
    BpStats bp;                 ///< branch-predictor counters
    PrefetcherStats prefetch;   ///< stride-prefetcher counters

    /** Cycles charged to @p b, summed over all modules. */
    double bucketTotal(Bucket b) const;
    /** Cycles attributed to module @p m, summed over all buckets. */
    double moduleCycles(Module m) const;
    /** Cycles by stream source (0 = TOL software, 1 = region code). */
    double sourceCycles(bool region) const;
    /** Cycles attributed (by module) to any TOL component. */
    double tolCycles() const;
    /** Cycles attributed (by module) to the application. */
    double appCycles() const;
    /** Instructions attributed to any TOL component. */
    uint64_t tolInsts() const;
    /** Instructions attributed to the application. */
    uint64_t appInsts() const;
    /** Issued instructions per cycle over the whole run. */
    double ipc() const;
    /** Share of all cycles retired by the burst dispatcher. */
    double
    burstFraction() const
    {
        return cycles ? static_cast<double>(burstCycles) /
                        static_cast<double>(cycles)
                      : 0.0;
    }
};

class Pipeline : public RecordSink
{
  public:
    /**
     * All: every record. TolOnly/AppOnly: split by stream *source*
     * (TOL software vs translated-region code; Figures 10/11).
     * TolModule: everything attributed to TOL by *module* including
     * the profiling instrumentation embedded in regions — the
     * population Figure 8 characterizes.
     */
    enum class Filter : uint8_t { All, TolOnly, AppOnly, TolModule };

    /**
     * Which core advances the clock. CycleStepped is the reference
     * implementation (one step() per cycle); EventDriven advances
     * straight to the next event and is bit-identical to it
     * (docs/timing-model.md).
     */
    enum class Engine : uint8_t { CycleStepped, EventDriven };

    Pipeline(const TimingConfig &config, Filter filter);

    void consume(const Record &rec) override;
    void consumeBatch(const Record *recs, size_t count) override;

    /** Drain everything in flight and snapshot component stats. */
    void finish();

    /** Measured quantities so far (complete only after finish()). */
    const PipeStats &stats() const { return stat; }

    /** Current simulated cycle. */
    uint64_t cyclesNow() const { return now; }

    /** The core driving this instance (TimingConfig::eventCore). */
    Engine engine() const { return eng; }

    /**
     * Whether the event core's burst dispatcher is armed on this
     * instance (TimingConfig::burst; meaningless on the reference
     * core). Read back by harnesses so the committed perf trajectory
     * records the dispatch engine actually used, not the one
     * requested (same discipline as engine()).
     */
    bool burstDispatchEnabled() const { return burstEnabled; }

  private:
    /**
     * Cache-line aligned so a window slot never straddles two lines;
     * the per-cycle loops touch several slots each.
     */
    struct alignas(64) InFlight
    {
        Record rec;
        uint64_t arrival = 0;     ///< first issueable cycle
        bool mispredicted = false;
    };

    /** Reference core: simulate exactly one cycle. */
    void step();
    /** True while any instruction is still in flight. */
    bool workRemains() const;
    /** Issue up to issueWidth and account the cycle's bucket. */
    void issuePhase(unsigned &issued_count);
    /** Move front-end arrivals into the IQ, then fetch new records. */
    void fetchPhase();
    /** Execute one issued instruction's side effects. */
    void issueOne(InFlight &inst);

    /**
     * Advance until the pending backlog is at most @p pending_floor
     * (or, with @p to_empty, until nothing is in flight), using the
     * selected core. The single clock-advancing entry point: both
     * consume paths and finish() go through here.
     */
    void drain(size_t pending_floor, bool to_empty);

    /**
     * Event-driven core (docs/timing-model.md): one merged
     * issue/fetch cycle body over register-resident pipeline state,
     * and an event-horizon fast-forward that advances the clock in
     * one jump across any interval in which every phase is provably
     * inert. Exact at every issue width via the 1/unitDenom
     * fixed-point accounting.
     *
     * @param ext optional borrowed tail of the pending backlog (a
     *     producer batch, in emission order after the ring's own
     *     pending segment): fetch reads records from it in place and
     *     copies each into the ring only when it enters the
     *     front-end, so backlog records are staged exactly once.
     * @return how many @p ext records were consumed; the caller owns
     *     staging the remainder before the buffer dies.
     */
    size_t runEventCore(size_t pending_floor, bool to_empty,
                        const Record *ext, size_t ext_count);

    /**
     * The core's loop body, specialized on the issue width (W = 0
     * keeps it a runtime value): the single-width instantiation lets
     * the compiler unroll the issue and fetch slot loops.
     */
    template <unsigned W>
    size_t runEventCoreImpl(size_t pending_floor, bool to_empty,
                            const Record *ext, size_t ext_count);

    /** Does @p rec belong to this instance's filtered stream? */
    bool
    passesFilter(const Record &rec) const
    {
        // Isolation instances split by stream source so the two
        // sides never share instruction-cache lines (see record.hh).
        if (filter == Filter::TolOnly && rec.fromRegion)
            return false;
        if (filter == Filter::AppOnly && !rec.fromRegion)
            return false;
        if (filter == Filter::TolModule && rec.module == Module::App)
            return false;
        return true;
    }

    /** Filter check + enqueue for one record (shared consume body). */
    void accept(const Record &rec);

    const TimingConfig &cfg;
    Filter filter;
    Engine eng;

    // Hot config scalars copied at construction: the compiler cannot
    // prove the external config unaliased by window stores, so going
    // through `cfg` would reload them on every per-cycle check.
    uint32_t issueWidth;
    uint32_t iqSize;
    uint32_t mispredictPenalty;
    bool prefetcherEnabled;
    /** TimingConfig::burst (burst dispatch, event core only). */
    bool burstEnabled;

    Cache l2c;
    Cache l1ic;
    Cache l1dc;
    Tlb dtlb;
    BranchPredictor bp;
    StridePrefetcher pf;

    /**
     * All in-flight instructions in one ring window, in program
     * order, segmented into three FIFO stages by counters alone:
     * [0, iqCount) is the instruction queue, [iqCount, iqCount +
     * feCount) the AC/IF/DEC front-end, and the rest the accepted
     * -but-unfetched backlog. Stage transitions move a counter and
     * patch the element in place — no copying between stage queues on
     * the per-cycle path.
     */
    std::vector<InFlight> window;
    size_t winMask = 0;     ///< window.size() - 1 (power of two)
    size_t head = 0;        ///< ring index of the IQ head
    size_t inFlight = 0;    ///< total elements in the window
    size_t iqCount = 0;
    size_t feCount = 0;

    size_t pendingCount() const { return inFlight - iqCount - feCount; }

    /** Element @p logical positions past the IQ head. */
    InFlight &
    slotAt(size_t logical)
    {
        return window[(head + logical) & winMask];
    }

    void pushPending(const Record &rec);
    void growWindow();

    uint64_t now = 0;
    uint64_t fetchBlockedUntil = 0;
    bool fetchHaltedForBranch = false;
    uint32_t lastFetchLine = 0xFFFFFFFFu;
    /** log2(L1-I line bytes), hoisted off the per-record fetch path. */
    uint32_t l1iLineShift = 0;
    /** Execution latency by host opcode (hoists issueOne's switch). */
    std::array<uint32_t, static_cast<size_t>(host::HOp::NumOps)>
        opLatency{};

    /**
     * Exact integer cycle accounting in units of 1/unitDenom cycles,
     * unitDenom = lcm(1..issueWidth): a cycle issuing k instructions
     * charges each one unitDenom/k units (an exact integer for every
     * k <= issueWidth), a stalled cycle charges unitDenom units to
     * one cell. Integer addition is associative, so bulk-charging a
     * stall run or reordering per-slot charges is bit-identical to
     * the reference per-cycle additions after the single conversion
     * to doubles at finish() — while breaking the FP-add latency
     * chain on the per-cycle path and letting stall runs account in
     * O(1). Both cores accumulate these same units at every width.
     */
    uint64_t unitDenom;
    /** unitDenom / k for k issued instructions (no hot-path divide). */
    std::array<uint64_t, kMaxIssueWidth + 1> unitsPerIssue{};
    std::array<std::array<uint64_t, kNumModules>, kNumBuckets>
        bucketUnits{};
    std::array<std::array<uint64_t, 2>, kNumBuckets> bucketSrcUnits{};

    /** Sticky cause of front-end starvation for empty-IQ accounting. */
    Bucket starveBucket = Bucket::IcacheBubble;
    Module starveModule = Module::App;
    bool starveSrcRegion = true;

    // Scoreboard over 96 register ids (64 int + 32 fp). One struct
    // per register so an issue/stall touches one cache line, not
    // four.
    struct RegState
    {
        uint64_t ready = 0;       ///< first cycle the value is ready
        Module producer = Module::App;
        bool producerSrc = false;
        bool loadMiss = false;
    };
    std::array<RegState, 96> regs{};

    PipeStats stat;
    bool finished = false;
};

/** Fan-out sink: forwards each record to several pipelines. */
class RecordFanout : public RecordSink
{
  public:
    /** Register a downstream sink (not owned). */
    void add(RecordSink *sink) { sinks.push_back(sink); }

    /** Forward one record to every registered sink. */
    void
    consume(const Record &rec) override
    {
        for (RecordSink *s : sinks)
            s->consume(rec);
    }

    /** Forward a batch to every registered sink. */
    void
    consumeBatch(const Record *recs, size_t count) override
    {
        for (RecordSink *s : sinks)
            s->consumeBatch(recs, count);
    }

  private:
    std::vector<RecordSink *> sinks;
};

} // namespace darco::timing

#endif // DARCO_TIMING_PIPELINE_HH
