/**
 * @file
 * Cycle-level model of the host processor (Figure 4): a 2-issue
 * in-order pipeline with an AC/IF/DEC front-end, a 16-entry
 * instruction queue, scoreboarded issue, and EXE-resolved branches
 * with a 6-cycle misprediction penalty; backed by the Table I memory
 * hierarchy (split L1, unified L2, data TLB, stride prefetcher) and a
 * Gshare+BTB predictor.
 *
 * Every cycle is attributed to exactly one accounting bucket
 * {instructions, D$-miss bubble, I$-miss bubble, branch bubble,
 * instruction scheduling} and, within the bucket, to the module
 * (application or one of the TOL components) responsible — the
 * Figure 7 / Figure 9 decomposition. Bucket totals sum exactly to
 * total cycles (asserted by tests).
 *
 * Three instances are fed from one functional pass (combined,
 * TOL-only, APP-only) to reproduce the paper's isolation methodology
 * (§III-C, §III-D): a filter drops records of the other side before
 * they touch this instance's pipeline or hierarchy.
 */

#ifndef DARCO_TIMING_PIPELINE_HH
#define DARCO_TIMING_PIPELINE_HH

#include <array>
#include <deque>

#include "timing/branch_predictor.hh"
#include "timing/cache.hh"
#include "timing/config.hh"
#include "timing/prefetcher.hh"
#include "timing/record.hh"
#include "timing/tlb.hh"

namespace darco::timing {

/** Cycle accounting buckets (Figure 9 categories). */
enum class Bucket : uint8_t {
    Insts = 0,       ///< at least one instruction issued
    DcacheBubble,    ///< waiting on a load (or DTLB) miss
    IcacheBubble,    ///< front-end starved by an instruction miss
    BranchBubble,    ///< front-end starved by a misprediction redirect
    SchedBubble,     ///< IQ head not issuable: dependencies/latency
    NumBuckets,
};

const char *bucketName(Bucket b);

constexpr unsigned kNumModules =
    static_cast<unsigned>(Module::NumModules);
constexpr unsigned kNumBuckets =
    static_cast<unsigned>(Bucket::NumBuckets);

struct PipeStats
{
    uint64_t cycles = 0;
    uint64_t records = 0;
    std::array<uint64_t, kNumModules> insts{};
    /** Fractional cycles: [bucket][module]. */
    std::array<std::array<double, kNumModules>, kNumBuckets> bucket{};
    /**
     * Secondary accounting by stream source for the isolation study
     * (Figures 10/11): [bucket][0 = TOL software, 1 = region code].
     */
    std::array<std::array<double, 2>, kNumBuckets> bucketSrc{};

    CacheStats l1i, l1d, l2;
    TlbStats tlb;
    BpStats bp;
    PrefetcherStats prefetch;

    double bucketTotal(Bucket b) const;
    double moduleCycles(Module m) const;
    /** Cycles by stream source (0 = TOL software, 1 = region code). */
    double sourceCycles(bool region) const;
    double tolCycles() const;
    double appCycles() const;
    uint64_t tolInsts() const;
    uint64_t appInsts() const;
    double ipc() const;
};

class Pipeline : public RecordSink
{
  public:
    /**
     * All: every record. TolOnly/AppOnly: split by stream *source*
     * (TOL software vs translated-region code; Figures 10/11).
     * TolModule: everything attributed to TOL by *module* including
     * the profiling instrumentation embedded in regions — the
     * population Figure 8 characterizes.
     */
    enum class Filter : uint8_t { All, TolOnly, AppOnly, TolModule };

    Pipeline(const TimingConfig &config, Filter filter);

    void consume(const Record &rec) override;

    /** Drain everything in flight and snapshot component stats. */
    void finish();

    const PipeStats &stats() const { return stat; }

    uint64_t cyclesNow() const { return now; }

  private:
    struct InFlight
    {
        Record rec;
        uint64_t arrival = 0;     ///< first issueable cycle
        bool mispredicted = false;
    };

    void step();
    bool workRemains() const;
    void issuePhase(unsigned &issued_count);
    void accountCycle(unsigned issued_count);
    void fetchPhase();
    void issueOne(InFlight &inst);

    const TimingConfig &cfg;
    Filter filter;

    Cache l2c;
    Cache l1ic;
    Cache l1dc;
    Tlb dtlb;
    BranchPredictor bp;
    StridePrefetcher pf;

    std::deque<InFlight> pending;     ///< accepted, not yet fetched
    std::deque<InFlight> frontend;    ///< fetched, in AC/IF/DEC
    std::deque<InFlight> iq;

    uint64_t now = 0;
    uint64_t fetchBlockedUntil = 0;
    bool fetchHaltedForBranch = false;
    uint32_t lastFetchLine = 0xFFFFFFFFu;

    /** Sticky cause of front-end starvation for empty-IQ accounting. */
    Bucket starveBucket = Bucket::IcacheBubble;
    Module starveModule = Module::App;
    bool starveSrcRegion = true;

    // Scoreboard over 96 register ids (64 int + 32 fp).
    std::array<uint64_t, 96> regReady{};
    std::array<Module, 96> regProducer{};
    std::array<bool, 96> regProducerSrc{};
    std::array<bool, 96> regLoadMiss{};

    PipeStats stat;
    bool finished = false;
};

/** Fan-out sink: forwards each record to several pipelines. */
class RecordFanout : public RecordSink
{
  public:
    void add(RecordSink *sink) { sinks.push_back(sink); }

    void
    consume(const Record &rec) override
    {
        for (RecordSink *s : sinks)
            s->consume(rec);
    }

  private:
    std::vector<RecordSink *> sinks;
};

} // namespace darco::timing

#endif // DARCO_TIMING_PIPELINE_HH
