/**
 * @file
 * Cycle-level model of the host processor (Figure 4): a 2-issue
 * in-order pipeline with an AC/IF/DEC front-end, a 16-entry
 * instruction queue, scoreboarded issue, and EXE-resolved branches
 * with a 6-cycle misprediction penalty; backed by the Table I memory
 * hierarchy (split L1, unified L2, data TLB, stride prefetcher) and a
 * Gshare+BTB predictor.
 *
 * Every cycle is attributed to exactly one accounting bucket
 * {instructions, D$-miss bubble, I$-miss bubble, branch bubble,
 * instruction scheduling} and, within the bucket, to the module
 * (application or one of the TOL components) responsible — the
 * Figure 7 / Figure 9 decomposition. Bucket totals sum exactly to
 * total cycles (asserted by tests).
 *
 * Three instances are fed from one functional pass (combined,
 * TOL-only, APP-only) to reproduce the paper's isolation methodology
 * (§III-C, §III-D): a filter drops records of the other side before
 * they touch this instance's pipeline or hierarchy.
 */

#ifndef DARCO_TIMING_PIPELINE_HH
#define DARCO_TIMING_PIPELINE_HH

#include <array>
#include <vector>

#include "timing/branch_predictor.hh"
#include "timing/cache.hh"
#include "timing/config.hh"
#include "timing/prefetcher.hh"
#include "timing/record.hh"
#include "timing/tlb.hh"

namespace darco::timing {

/** Cycle accounting buckets (Figure 9 categories). */
enum class Bucket : uint8_t {
    Insts = 0,       ///< at least one instruction issued
    DcacheBubble,    ///< waiting on a load (or DTLB) miss
    IcacheBubble,    ///< front-end starved by an instruction miss
    BranchBubble,    ///< front-end starved by a misprediction redirect
    SchedBubble,     ///< IQ head not issuable: dependencies/latency
    NumBuckets,
};

const char *bucketName(Bucket b);

constexpr unsigned kNumModules =
    static_cast<unsigned>(Module::NumModules);
constexpr unsigned kNumBuckets =
    static_cast<unsigned>(Bucket::NumBuckets);

struct PipeStats
{
    uint64_t cycles = 0;
    uint64_t records = 0;
    std::array<uint64_t, kNumModules> insts{};
    /** Fractional cycles: [bucket][module]. */
    std::array<std::array<double, kNumModules>, kNumBuckets> bucket{};
    /**
     * Secondary accounting by stream source for the isolation study
     * (Figures 10/11): [bucket][0 = TOL software, 1 = region code].
     */
    std::array<std::array<double, 2>, kNumBuckets> bucketSrc{};

    CacheStats l1i, l1d, l2;
    TlbStats tlb;
    BpStats bp;
    PrefetcherStats prefetch;

    double bucketTotal(Bucket b) const;
    double moduleCycles(Module m) const;
    /** Cycles by stream source (0 = TOL software, 1 = region code). */
    double sourceCycles(bool region) const;
    double tolCycles() const;
    double appCycles() const;
    uint64_t tolInsts() const;
    uint64_t appInsts() const;
    double ipc() const;
};

class Pipeline : public RecordSink
{
  public:
    /**
     * All: every record. TolOnly/AppOnly: split by stream *source*
     * (TOL software vs translated-region code; Figures 10/11).
     * TolModule: everything attributed to TOL by *module* including
     * the profiling instrumentation embedded in regions — the
     * population Figure 8 characterizes.
     */
    enum class Filter : uint8_t { All, TolOnly, AppOnly, TolModule };

    Pipeline(const TimingConfig &config, Filter filter);

    void consume(const Record &rec) override;
    void consumeBatch(const Record *recs, size_t count) override;

    /** Drain everything in flight and snapshot component stats. */
    void finish();

    const PipeStats &stats() const { return stat; }

    uint64_t cyclesNow() const { return now; }

  private:
    /**
     * Cache-line aligned so a window slot never straddles two lines;
     * the per-cycle loops touch several slots each.
     */
    struct alignas(64) InFlight
    {
        Record rec;
        uint64_t arrival = 0;     ///< first issueable cycle
        bool mispredicted = false;
    };

    void step();
    bool workRemains() const;
    /** Issue up to issueWidth and account the cycle's bucket. */
    void issuePhase(unsigned &issued_count);
    void fetchPhase();
    void issueOne(InFlight &inst);

    /** Does @p rec belong to this instance's filtered stream? */
    bool
    passesFilter(const Record &rec) const
    {
        // Isolation instances split by stream source so the two
        // sides never share instruction-cache lines (see record.hh).
        if (filter == Filter::TolOnly && rec.fromRegion)
            return false;
        if (filter == Filter::AppOnly && !rec.fromRegion)
            return false;
        if (filter == Filter::TolModule && rec.module == Module::App)
            return false;
        return true;
    }

    /** Filter check + enqueue for one record (shared consume body). */
    void accept(const Record &rec);

    const TimingConfig &cfg;
    Filter filter;

    // Hot config scalars copied at construction: the compiler cannot
    // prove the external config unaliased by window stores, so going
    // through `cfg` would reload them on every per-cycle check.
    uint32_t issueWidth;
    uint32_t iqSize;
    uint32_t mispredictPenalty;
    bool prefetcherEnabled;

    Cache l2c;
    Cache l1ic;
    Cache l1dc;
    Tlb dtlb;
    BranchPredictor bp;
    StridePrefetcher pf;

    /**
     * All in-flight instructions in one ring window, in program
     * order, segmented into three FIFO stages by counters alone:
     * [0, iqCount) is the instruction queue, [iqCount, iqCount +
     * feCount) the AC/IF/DEC front-end, and the rest the accepted
     * -but-unfetched backlog. Stage transitions move a counter and
     * patch the element in place — no copying between stage queues on
     * the per-cycle path.
     */
    std::vector<InFlight> window;
    size_t winMask = 0;     ///< window.size() - 1 (power of two)
    size_t head = 0;        ///< ring index of the IQ head
    size_t inFlight = 0;    ///< total elements in the window
    size_t iqCount = 0;
    size_t feCount = 0;

    size_t pendingCount() const { return inFlight - iqCount - feCount; }

    /** Element @p logical positions past the IQ head. */
    InFlight &
    slotAt(size_t logical)
    {
        return window[(head + logical) & winMask];
    }

    void pushPending(const Record &rec);
    void growWindow();

    uint64_t now = 0;
    uint64_t fetchBlockedUntil = 0;
    bool fetchHaltedForBranch = false;
    uint32_t lastFetchLine = 0xFFFFFFFFu;
    /** log2(L1-I line bytes), hoisted off the per-record fetch path. */
    uint32_t l1iLineShift = 0;
    /** Execution latency by host opcode (hoists issueOne's switch). */
    std::array<uint32_t, static_cast<size_t>(host::HOp::NumOps)>
        opLatency{};

    /**
     * Integer cycle accounting, usable when issueWidth <= 2: every
     * per-cycle bucket contribution is then a multiple of 0.5, which
     * is exact in binary floating point, so accumulating half-units
     * in integers and converting once at finish() is bit-identical
     * to the sequential double additions — while breaking the
     * FP-add latency chain on the per-cycle path and letting stall
     * runs account in O(1). Wider configs fall back to doubles.
     */
    bool intAccounting;
    std::array<std::array<uint64_t, kNumModules>, kNumBuckets>
        bucketHalf{};
    std::array<std::array<uint64_t, 2>, kNumBuckets> bucketSrcHalf{};

    /** Sticky cause of front-end starvation for empty-IQ accounting. */
    Bucket starveBucket = Bucket::IcacheBubble;
    Module starveModule = Module::App;
    bool starveSrcRegion = true;

    // Scoreboard over 96 register ids (64 int + 32 fp). One struct
    // per register so an issue/stall touches one cache line, not
    // four.
    struct RegState
    {
        uint64_t ready = 0;       ///< first cycle the value is ready
        Module producer = Module::App;
        bool producerSrc = false;
        bool loadMiss = false;
    };
    std::array<RegState, 96> regs{};

    PipeStats stat;
    bool finished = false;
};

/** Fan-out sink: forwards each record to several pipelines. */
class RecordFanout : public RecordSink
{
  public:
    void add(RecordSink *sink) { sinks.push_back(sink); }

    void
    consume(const Record &rec) override
    {
        for (RecordSink *s : sinks)
            s->consume(rec);
    }

    void
    consumeBatch(const Record *recs, size_t count) override
    {
        for (RecordSink *s : sinks)
            s->consumeBatch(recs, count);
    }

  private:
    std::vector<RecordSink *> sinks;
};

} // namespace darco::timing

#endif // DARCO_TIMING_PIPELINE_HH
