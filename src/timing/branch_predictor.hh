/**
 * @file
 * Gshare branch predictor (12-bit global history, Table I) plus a
 * set-associative Branch Target Buffer. Conditional direction comes
 * from the gshare PHT; targets of taken/indirect transfers come from
 * the BTB's last-seen target (no return-address stack: the paper
 * never mentions one, and its absence is consistent with the paper's
 * emphasis on indirect-branch cost).
 */

#ifndef DARCO_TIMING_BRANCH_PREDICTOR_HH
#define DARCO_TIMING_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "timing/config.hh"

namespace darco::timing {

/** Branch-predictor counters (docs/metrics.md §3). */
struct BpStats
{
    uint64_t branches = 0;             ///< transfers predicted
    uint64_t condBranches = 0;         ///< conditional subset
    uint64_t mispredicts = 0;          ///< any wrong prediction
    uint64_t directionMispredicts = 0; ///< gshare direction wrong
    uint64_t targetMispredicts = 0;    ///< BTB target wrong/absent
    uint64_t indirectMispredicts = 0;  ///< JALR-class subset

    /** Fraction of predicted transfers that were wrong. */
    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                          static_cast<double>(branches)
                        : 0.0;
    }
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const TimingConfig &config);

    /**
     * Predict-and-update for one executed branch.
     *
     * @param pc        branch host PC
     * @param taken     actual direction
     * @param target    actual target (valid when taken)
     * @param is_cond   conditional branch
     * @param is_indirect JALR-class transfer
     * @return true if both direction and target were predicted right.
     */
    bool predict(uint32_t pc, bool taken, uint32_t target, bool is_cond,
                 bool is_indirect);

    /** Counters accumulated so far. */
    const BpStats &stats() const { return stat; }

    /** Clear PHT, history and BTB (used between experiments). */
    void reset();

  private:
    const TimingConfig &cfg;
    std::vector<uint8_t> pht;   ///< 2-bit counters
    uint32_t history = 0;
    uint32_t historyMask;

    struct BtbEntry
    {
        uint32_t tag = 0;
        uint32_t target = 0;
        bool valid = false;
        uint8_t lru = 0;
    };
    std::vector<BtbEntry> btb;
    uint32_t btbSets;
    uint32_t btbSetShift = 0;   ///< log2(btbSets): tag = pc>>2 >> shift

    BpStats stat;

    bool btbLookup(uint32_t pc, uint32_t &target_out,
                   uint32_t &way_out);
    void btbUpdate(uint32_t pc, uint32_t target, bool hit,
                   uint32_t hit_way);
};

} // namespace darco::timing

#endif // DARCO_TIMING_BRANCH_PREDICTOR_HH
