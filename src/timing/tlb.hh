/**
 * @file
 * Two-level data TLB (Table I: L1 64-entry 8-way, L2 256-entry 8-way,
 * PLRU). Exists only for data; TOL-space accesses bypass it because
 * TOL works with physical addresses (§II-A.2).
 */

#ifndef DARCO_TIMING_TLB_HH
#define DARCO_TIMING_TLB_HH

#include <cstdint>
#include <vector>

#include "timing/config.hh"

namespace darco::timing {

/** Data-TLB counters (docs/metrics.md §3). */
struct TlbStats
{
    uint64_t accesses = 0;   ///< translations requested
    uint64_t l1Misses = 0;   ///< first-level misses
    uint64_t l2Misses = 0;   ///< page walks
};

class Tlb
{
  public:
    explicit Tlb(const TimingConfig &config);

    /**
     * Translate the page of @p addr; returns the *additional* latency
     * beyond a first-level hit (0 on L1 hit; L2 latency on L1 miss;
     * plus the walk penalty on L2 miss).
     */
    uint32_t access(uint32_t addr);

    /**
     * Would access(@p addr) take the same-page fast path? True when
     * the page matches the previous translation, in which case the
     * access would return 0 and change no TLB state at all. Pure
     * observer for the burst dispatcher's window proof.
     */
    bool
    fastPathHit(uint32_t addr) const
    {
        return (addr >> cfg.pageBits) == lastVpn;
    }

    /**
     * Account @p n translations proven (and applied) as fast-path
     * hits without calling access() — the deferred bulk counter
     * update of a retired burst window.
     */
    void chargeFastPathHits(uint64_t n) { stat.accesses += n; }

    /** Counters accumulated so far. */
    const TlbStats &stats() const { return stat; }

    /** Invalidate both levels (used between experiments). */
    void reset();

  private:
    struct Level
    {
        uint32_t sets = 0;
        uint32_t ways = 0;
        uint32_t setShift = 0;   ///< log2(sets): tag = vpn >> setShift
        std::vector<uint32_t> tags;
        std::vector<bool> valid;
        std::vector<uint8_t> plru;

        void init(uint32_t entries, uint32_t num_ways);
        bool lookup(uint32_t vpn);
        void insert(uint32_t vpn);

      private:
        uint32_t victim(uint32_t set) const;
        void touch(uint32_t set, uint32_t way);
    };

    const TimingConfig &cfg;
    Level l1;
    Level l2;

    /**
     * Same-page fast path: the VPN of the previous access, which by
     * construction ended resident in L1. A repeated access returns
     * the L1-hit latency without the set scan; the skipped PLRU
     * re-touch is idempotent.
     */
    uint32_t lastVpn = 0xFFFFFFFFu;

    TlbStats stat;
};

} // namespace darco::timing

#endif // DARCO_TIMING_TLB_HH
