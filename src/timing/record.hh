/**
 * @file
 * The dynamic host-instruction record stream.
 *
 * The co-design component (functional side) produces one TimingRecord
 * per executed host instruction — both for translated application
 * code and for TOL's own activity — exactly like DARCO's timing
 * simulator "receives the dynamic instruction stream from the
 * co-design component" and "is able to distinguish the instructions
 * corresponding to the emulation of the x86 application from those
 * corresponding to TOL" (§II-A).
 */

#ifndef DARCO_TIMING_RECORD_HH
#define DARCO_TIMING_RECORD_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "host/isa.hh"

namespace darco::timing {

/**
 * Attribution of a host instruction. Module::App marks translated
 * application code (forward progress); all other values are TOL
 * activity, matching the Figure 7 breakdown categories.
 */
enum class Module : uint8_t {
    App = 0,       ///< translated guest code (application time)
    TolOther,      ///< dispatch loop, transitions, stubs, init
    IM,            ///< interpreter
    BBM,           ///< BB translation + profiling instrumentation
    SBM,           ///< superblock formation + optimization
    Chaining,      ///< linking translated regions, patching
    Lookup,        ///< code cache (translation map) lookups + IBTC fill
    NumModules,
};

/** True if the module counts as TOL overhead (everything but App). */
constexpr bool
isTol(Module m)
{
    return m != Module::App;
}

const char *moduleName(Module m);

/** One dynamically executed host instruction, ready for timing. */
struct Record
{
    uint32_t pc = 0;           ///< host PC (4-byte granules)
    uint32_t memAddr = 0;      ///< effective address for LD/ST
    uint32_t branchTarget = 0; ///< actual next PC for taken transfers
    host::HOp op = host::HOp::NOP; ///< host opcode (execution class)
    uint8_t rd = host::kNoReg;  ///< int regs 0..63, FP regs 64..95
    uint8_t rs1 = host::kNoReg; ///< first source register
    uint8_t rs2 = host::kNoReg; ///< second source register
    uint8_t size = 0;          ///< memory access bytes
    Module module = Module::App; ///< attribution (Figure 7)
    /**
     * True when the instruction belongs to translated-region code
     * (the executor's stream, including embedded instrumentation and
     * exit stubs); false for TOL software streams (interpreter,
     * translator, runtime services). The isolation pipelines split by
     * this bit so the two instances never share instruction lines;
     * module tags stay for the Figure 6/7/9 attribution.
     */
    bool fromRegion = false;
    bool isLoad = false;        ///< reads memory at memAddr
    bool isStore = false;       ///< writes memory at memAddr
    bool isBranch = false;      ///< any control transfer
    bool isCondBranch = false;  ///< conditional subset
    bool isIndirect = false;    ///< JALR-class transfer
    bool taken = false;         ///< actual direction
    bool guestBoundary = false; ///< begins a new guest instruction
};

/** Register-identifier helpers (FP registers offset by 64). */
constexpr uint8_t kFpRegBase = 64;

constexpr uint8_t
intRegId(uint8_t r)
{
    return r;
}

constexpr uint8_t
fpRegId(uint8_t f)
{
    return static_cast<uint8_t>(kFpRegBase + f);
}

/**
 * Consumer interface for the record stream. The system fans records
 * out to up to three timing-pipeline instances (combined, TOL-only,
 * APP-only) plus any tracing observers.
 */
class RecordSink
{
  public:
    virtual ~RecordSink() = default;

    /** Accept one record, in stream order. */
    virtual void consume(const Record &rec) = 0;

    /**
     * Consume @p count records in order. Semantically identical to
     * calling consume() once per record; producers with a hot loop
     * (the functional executor) batch so the per-instruction virtual
     * dispatch is amortized, and sinks may override with a tighter
     * inner loop.
     */
    virtual void
    consumeBatch(const Record *recs, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            consume(recs[i]);
    }
};

/**
 * Order-preserving record batcher: buffers records from any number of
 * producers sharing it (the cost streams and the functional executor
 * both write the TOL's interleaved instruction stream) and forwards
 * them downstream in batches. A batch arriving via consumeBatch()
 * first drains the buffer, so global record order is exactly the
 * emission order. The owner must flush() before anyone reads the
 * downstream sink's state.
 */
class RecordBatcher : public RecordSink
{
  public:
    explicit RecordBatcher(RecordSink &downstream) : down(downstream) {}

    /** Buffer one record (forwarding a full buffer downstream). */
    void
    consume(const Record &rec) override
    {
        if (count == buf.size())
            flush();
        buf[count++] = rec;
    }

    /** Pass a pre-built batch through, after draining the buffer. */
    void
    consumeBatch(const Record *recs, std::size_t n) override
    {
        flush();
        down.consumeBatch(recs, n);
    }

    /** Forward everything buffered downstream, preserving order. */
    void
    flush()
    {
        if (count) {
            down.consumeBatch(buf.data(), count);
            count = 0;
        }
    }

    /**
     * Hand out the next buffer slot directly (zero-copy emission for
     * producers that build records field by field). The caller must
     * fully populate the slot before the next batcher call.
     */
    Record &
    alloc()
    {
        if (count == buf.size())
            flush();
        return buf[count++];
    }

  private:
    RecordSink &down;
    std::array<Record, 256> buf;
    std::size_t count = 0;
};

} // namespace darco::timing

#endif // DARCO_TIMING_RECORD_HH
