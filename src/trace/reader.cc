/**
 * @file
 * Trace parser. Defensive by design: traces cross machine and PR
 * boundaries, so every structural assumption is checked and reported
 * through ReadResult::error instead of panicking. Compat rules
 * (docs/traces.md): same major version required; unknown sections
 * are skipped; known sections may carry trailing bytes a newer minor
 * version appended, which are ignored.
 */

#include "trace/trace.hh"

#include <cstdio>
#include <cstring>

#include "common/faultinject.hh"
#include "common/logging.hh"

namespace darco::trace {

namespace {

/** Bounds-checked little-endian cursor over the file image. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t len)
        : base(data), size(len)
    {}

    bool failed() const { return truncated; }
    size_t pos() const { return cursor; }
    size_t remaining() const { return size - cursor; }

    uint16_t
    u16()
    {
        uint16_t v = 0;
        raw(&v, 2);
        return v;
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        raw(&v, 4);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        raw(&v, 8);
        return v;
    }

    std::string
    str()
    {
        const uint32_t len = u32();
        if (!take(len))
            return {};
        std::string s(reinterpret_cast<const char *>(base + cursor - len),
                      len);
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        const uint64_t len = u64();
        if (!take(len))
            return {};
        return std::vector<uint8_t>(base + cursor - len, base + cursor);
    }

    /** Advance past @p len bytes (skipping unknown content). */
    bool
    take(uint64_t len)
    {
        if (truncated || len > remaining()) {
            truncated = true;
            return false;
        }
        cursor += static_cast<size_t>(len);
        return true;
    }

  private:
    void
    raw(void *out, size_t len)
    {
        if (!take(len))
            return;
        std::memcpy(out, base + cursor - len, len);
    }

    const uint8_t *base;
    size_t size;
    size_t cursor = 0;
    bool truncated = false;
};

void
parseMeta(ByteReader &r, TraceMeta &meta)
{
    meta.name = r.str();
    meta.suite = r.str();
    meta.seed = r.u64();
    meta.guestBudget = r.u64();
    meta.imToBbThreshold = r.u32();
    meta.bbToSbThreshold = r.u32();
    const uint32_t num_tags = r.u32();
    for (uint32_t i = 0; i < num_tags && !r.failed(); ++i)
        meta.tags.push_back(r.str());
}

void
parseProgram(ByteReader &r, guest::Program &prog)
{
    prog.codeBase = r.u32();
    prog.entry = r.u32();
    prog.stackTop = r.u32();
    prog.code = r.blob();
    const uint32_t num_segments = r.u32();
    for (uint32_t i = 0; i < num_segments && !r.failed(); ++i) {
        guest::Program::DataSegment seg;
        seg.addr = r.u32();
        seg.bytes = r.blob();
        prog.data.push_back(std::move(seg));
    }
}

void
parsePins(ByteReader &r, TracePins &pins)
{
    pins.guestRetired = r.u64();
    pins.simCycles = r.u64();
    pins.hostRecords = r.u64();
    pins.timingCore = r.str();
    pins.dynIm = r.u64();
    pins.dynBbm = r.u64();
    pins.dynSbm = r.u64();
    pins.bbsTranslated = r.u64();
    pins.sbsCreated = r.u64();
    pins.guestIndirectBranches = r.u64();
}

std::vector<uint8_t>
slurp(const std::string &path, std::string &error)
{
    if (faultinject::fire(faultinject::Point::TraceIoFail)) {
        error = strprintf("trace %s: injected transient I/O failure",
                          path.c_str());
        return {};
    }
    FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        error = strprintf("trace %s: cannot open for reading",
                          path.c_str());
        return {};
    }
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    const bool read_error = std::ferror(fp) != 0;
    std::fclose(fp);
    if (read_error) {
        error = strprintf("trace %s: read error", path.c_str());
        return {};
    }
    return bytes;
}

} // namespace

ReadResult
readTrace(const std::string &path)
{
    ReadResult result;
    // Everything below the successful slurp is a structural failure:
    // the bytes were read, they just do not form a valid trace.
    auto fail = [&](std::string msg) {
        result.error = std::move(msg);
        result.failKind = ReadFail::Corrupt;
        return result;
    };

    std::vector<uint8_t> bytes = slurp(path, result.error);
    if (!result.error.empty()) {
        result.failKind = ReadFail::Io;
        return result;
    }
    // Post-read corruption injection: a single byte flip anywhere in
    // the image must be caught by the structural checks or the CSUM
    // section (tests/test_trace_roundtrip.cc proves the same for
    // every byte offset).
    if (!bytes.empty() &&
        faultinject::fire(faultinject::Point::TraceCorrupt)) {
        bytes[faultinject::param(faultinject::Point::TraceCorrupt) %
              bytes.size()] ^= 0xff;
    }

    ByteReader r(bytes.data(), bytes.size());
    const uint32_t magic = r.u32();
    const uint16_t major = r.u16();
    const uint16_t minor = r.u16();
    r.u32();  // header flags, reserved
    if (r.failed() || magic != kMagic) {
        return fail(strprintf("trace %s: bad magic (not a DTRC trace)",
                              path.c_str()));
    }
    if (major != kVersionMajor) {
        return fail(strprintf(
            "trace %s: format major version %u unsupported (this "
            "reader speaks %u.%u; major bumps are layout breaks)",
            path.c_str(), major, kVersionMajor, kVersionMinor));
    }
    (void)minor;  // any minor of the same major is readable

    bool have_meta = false, have_program = false;
    bool have_checksum = false;
    while (r.remaining() > 0) {
        const uint32_t tag = r.u32();
        const uint64_t size = r.u64();
        if (r.failed() || size > r.remaining()) {
            return fail(strprintf("trace %s: truncated section header "
                                  "or payload at offset %zu",
                                  path.c_str(), r.pos()));
        }
        // Verify the checksum against exactly the bytes preceding
        // the CSUM section header (12 bytes: tag + size).
        if (tag == kSectionChecksum) {
            const size_t covered = r.pos() - 12;
            ByteReader payload(bytes.data() + r.pos(),
                               static_cast<size_t>(size));
            const uint64_t recorded = payload.u64();
            const uint64_t computed = fnv1a64(bytes.data(), covered);
            if (payload.failed() || recorded != computed) {
                return fail(strprintf(
                    "trace %s: checksum mismatch (file corrupt?)",
                    path.c_str()));
            }
            have_checksum = true;
            r.take(size);
            // The checksum only covers what precedes it, so it must
            // be the final section — anything after it would be
            // accepted unverified (e.g. a concatenated fragment
            // overwriting PROG).
            if (r.remaining() > 0) {
                return fail(strprintf(
                    "trace %s: %zu trailing bytes after the CSUM "
                    "section (corrupt or concatenated file)",
                    path.c_str(), r.remaining()));
            }
            continue;
        }
        ByteReader payload(bytes.data() + r.pos(),
                           static_cast<size_t>(size));
        r.take(size);
        switch (tag) {
          case kSectionMeta:
            parseMeta(payload, result.file.meta);
            have_meta = true;
            break;
          case kSectionProgram:
            result.file.program.data.clear();
            parseProgram(payload, result.file.program);
            have_program = true;
            break;
          case kSectionPins:
            parsePins(payload, result.file.pins);
            result.file.hasPins = true;
            break;
          default:
            break;  // unknown section: forward-compat skip
        }
        if (payload.failed()) {
            return fail(strprintf("trace %s: section 0x%08X payload "
                                  "shorter than its declared fields",
                                  path.c_str(), tag));
        }
    }

    if (!have_meta || !have_program) {
        return fail(strprintf("trace %s: missing mandatory %s section",
                              path.c_str(),
                              have_meta ? "PROG" : "META"));
    }
    // Writers always append a checksum; a trace without a *verified*
    // CSUM section is rejected, otherwise corruption that removes or
    // retags the trailing section (the likeliest damage: a truncated
    // copy) would bypass the integrity check entirely.
    if (!have_checksum) {
        return fail(strprintf("trace %s: missing CSUM section "
                              "(truncated or corrupt file)",
                              path.c_str()));
    }
    return result;
}

} // namespace darco::trace
