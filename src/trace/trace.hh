/**
 * @file
 * Binary workload traces: the portable workload currency.
 *
 * A trace serializes a complete guest::Program image plus the run
 * recipe that produced it (seed, guest budget, promotion thresholds,
 * suite tags) and, optionally, the capture run's determinism pins
 * (guest_retired, sim_cycles, host_records, TOL mode counters).
 * Capture once — from a synthetic builder, a recorded regression, a
 * reduced repro case, an externally authored guest — and replay
 * deterministically: the engine is deterministic, so a replayed
 * trace drives the functional/timing pipeline bit-identically to the
 * original run under the same configuration.
 *
 * Format (full specification and compat rules in docs/traces.md):
 * a 12-byte header (magic "DTRC", version major.minor) followed by
 * tagged, length-prefixed sections (META, PROG, PINS, CSUM). Readers
 * skip unknown sections and ignore trailing bytes inside known ones,
 * so minor-version additions stay readable; a major bump is a layout
 * break and is rejected.
 */

#ifndef DARCO_TRACE_TRACE_HH
#define DARCO_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "guest/assembler.hh"

namespace darco::trace {

/** Build a section tag from its four ASCII bytes (little-endian). */
constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return uint32_t(uint8_t(a)) | uint32_t(uint8_t(b)) << 8 |
           uint32_t(uint8_t(c)) << 16 | uint32_t(uint8_t(d)) << 24;
}

constexpr uint32_t kMagic = fourcc('D', 'T', 'R', 'C');
constexpr uint16_t kVersionMajor = 1;
constexpr uint16_t kVersionMinor = 0;

constexpr uint32_t kSectionMeta = fourcc('M', 'E', 'T', 'A');
constexpr uint32_t kSectionProgram = fourcc('P', 'R', 'O', 'G');
constexpr uint32_t kSectionPins = fourcc('P', 'I', 'N', 'S');
constexpr uint32_t kSectionChecksum = fourcc('C', 'S', 'U', 'M');

/** FNV-1a 64-bit (the CSUM section's hash; exposed for tests). */
uint64_t fnv1a64(const uint8_t *data, size_t len);

/**
 * Capture-time run recipe: what must be re-applied for a replay to
 * be bit-identical. Only the TOL-visible configuration is pinned —
 * the budget and promotion thresholds determine the functional
 * execution (and hence the record stream); the host
 * microarchitecture is deliberately NOT part of a trace, because the
 * whole point of the format is comparing one captured workload
 * across timing configurations (docs/traces.md §4).
 */
struct TraceMeta
{
    std::string name;                ///< workload display name
    std::string suite;               ///< suite tag ("SPEC INT", ...)
    uint64_t seed = 0;               ///< generator seed (provenance)
    uint64_t guestBudget = 0;        ///< capture run's guest budget
    uint32_t imToBbThreshold = 0;    ///< capture TolConfig value
    uint32_t bbToSbThreshold = 0;    ///< capture TolConfig value
    std::vector<std::string> tags;   ///< free-form provenance tags
};

/**
 * Determinism fingerprint of the capture run. guestRetired,
 * hostRecords and the TOL mode counters depend only on the workload
 * and the TraceMeta recipe (functional pins: machine- and
 * microarchitecture-independent); simCycles and timingCore
 * additionally depend on the capture run's TimingConfig (timing
 * pins: comparable only under the same host model).
 */
struct TracePins
{
    uint64_t guestRetired = 0;
    uint64_t simCycles = 0;
    uint64_t hostRecords = 0;
    std::string timingCore;          ///< "event" / "reference"
    // TOL activity counters (tol::TolStats).
    uint64_t dynIm = 0;
    uint64_t dynBbm = 0;
    uint64_t dynSbm = 0;
    uint64_t bbsTranslated = 0;
    uint64_t sbsCreated = 0;
    uint64_t guestIndirectBranches = 0;
};

/** A parsed trace: program image + recipe + optional pins. */
struct TraceFile
{
    TraceMeta meta;
    guest::Program program;
    bool hasPins = false;
    TracePins pins;
};

/**
 * Serialize @p file to @p path (always includes a CSUM section).
 * fatal() on I/O failure — a capture path the harness cannot write
 * is a user error, not a recoverable condition.
 */
void writeTrace(const std::string &path, const TraceFile &file);

/**
 * How a trace read failed, for callers that need to decide between
 * retrying and rejecting (runner retry policy, sim/run_error.hh):
 * Io failures (file unreadable) can be transient on a loaded or
 * networked filesystem; Corrupt means the bytes were read fine but
 * failed a structural or checksum test — re-reading cannot help.
 */
enum class ReadFail : uint8_t { None, Io, Corrupt };

/** readTrace outcome: `error` empty means success. */
struct ReadResult
{
    TraceFile file;
    std::string error;
    ReadFail failKind = ReadFail::None;

    bool ok() const { return error.empty(); }
};

/**
 * Parse the trace at @p path. Never panics on malformed input: any
 * structural problem (bad magic, unsupported major version, short
 * section, checksum mismatch, missing META/PROG/CSUM) is reported
 * in ReadResult::error so callers can decide between fatal() and a
 * graceful skip. A trace is only accepted once its CSUM section has
 * verified, so corruption anywhere in the file — including damage
 * to the checksum section itself — is detected.
 */
ReadResult readTrace(const std::string &path);

} // namespace darco::trace

#endif // DARCO_TRACE_TRACE_HH
