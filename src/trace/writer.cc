/**
 * @file
 * Trace serializer: builds the whole image in memory (traces are
 * megabytes at most — a program image plus metadata), appends the
 * FNV-1a checksum section over everything written so far, and lands
 * on disk with one fwrite.
 */

#include "trace/trace.hh"

#include <cstdio>

#include "common/logging.hh"

namespace darco::trace {

uint64_t
fnv1a64(const uint8_t *data, size_t len)
{
    uint64_t hash = 0xCBF29CE484222325ull;
    for (size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 0x100000001B3ull;
    }
    return hash;
}

namespace {

/** Little-endian byte-vector builder. */
class ByteWriter
{
  public:
    void
    u16(uint16_t value)
    {
        raw(&value, 2);
    }

    void
    u32(uint32_t value)
    {
        raw(&value, 4);
    }

    void
    u64(uint64_t value)
    {
        raw(&value, 8);
    }

    void
    str(const std::string &value)
    {
        u32(static_cast<uint32_t>(value.size()));
        bytes.insert(bytes.end(), value.begin(), value.end());
    }

    void
    blob(const uint8_t *data, size_t len)
    {
        u64(len);
        bytes.insert(bytes.end(), data, data + len);
    }

    /**
     * Append a section: tag, 64-bit payload size, payload. The
     * payload is built by @p fill into a scratch writer so the size
     * prefix is exact.
     */
    template <typename Fill>
    void
    section(uint32_t tag, Fill fill)
    {
        ByteWriter payload;
        fill(payload);
        u32(tag);
        u64(payload.bytes.size());
        bytes.insert(bytes.end(), payload.bytes.begin(),
                     payload.bytes.end());
    }

    std::vector<uint8_t> bytes;

  private:
    void
    raw(const void *data, size_t len)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        // The simulator only targets little-endian hosts (the guest
        // ISA emulation already assumes it); the format is defined
        // little-endian regardless.
        bytes.insert(bytes.end(), p, p + len);
    }
};

} // namespace

void
writeTrace(const std::string &path, const TraceFile &file)
{
    ByteWriter out;
    out.u32(kMagic);
    out.u16(kVersionMajor);
    out.u16(kVersionMinor);
    out.u32(0);  // header flags, reserved

    out.section(kSectionMeta, [&](ByteWriter &w) {
        w.str(file.meta.name);
        w.str(file.meta.suite);
        w.u64(file.meta.seed);
        w.u64(file.meta.guestBudget);
        w.u32(file.meta.imToBbThreshold);
        w.u32(file.meta.bbToSbThreshold);
        w.u32(static_cast<uint32_t>(file.meta.tags.size()));
        for (const std::string &tag : file.meta.tags)
            w.str(tag);
    });

    out.section(kSectionProgram, [&](ByteWriter &w) {
        const guest::Program &prog = file.program;
        w.u32(prog.codeBase);
        w.u32(prog.entry);
        w.u32(prog.stackTop);
        w.blob(prog.code.data(), prog.code.size());
        w.u32(static_cast<uint32_t>(prog.data.size()));
        for (const guest::Program::DataSegment &seg : prog.data) {
            w.u32(seg.addr);
            w.blob(seg.bytes.data(), seg.bytes.size());
        }
    });

    if (file.hasPins) {
        out.section(kSectionPins, [&](ByteWriter &w) {
            const TracePins &pins = file.pins;
            w.u64(pins.guestRetired);
            w.u64(pins.simCycles);
            w.u64(pins.hostRecords);
            w.str(pins.timingCore);
            w.u64(pins.dynIm);
            w.u64(pins.dynBbm);
            w.u64(pins.dynSbm);
            w.u64(pins.bbsTranslated);
            w.u64(pins.sbsCreated);
            w.u64(pins.guestIndirectBranches);
        });
    }

    // The checksum covers every byte that precedes the CSUM section
    // header, so a writer appends it last and a reader verifies it
    // against exactly the bytes it already consumed.
    const uint64_t sum = fnv1a64(out.bytes.data(), out.bytes.size());
    out.section(kSectionChecksum,
                [&](ByteWriter &w) { w.u64(sum); });

    FILE *fp = std::fopen(path.c_str(), "wb");
    fatal_if(!fp, "trace: cannot open %s for writing", path.c_str());
    const size_t written =
        std::fwrite(out.bytes.data(), 1, out.bytes.size(), fp);
    const bool closed = std::fclose(fp) == 0;
    fatal_if(written != out.bytes.size() || !closed,
             "trace: short write to %s", path.c_str());
}

} // namespace darco::trace
