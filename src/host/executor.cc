#include "host/executor.hh"

#include <cmath>
#include <cstring>

#include "common/fpu.hh"
#include "common/logging.hh"

namespace darco::host {

namespace {

/** x86-style truncation with clamp-to-indefinite (matches guest). */
uint32_t
truncToInt32(double d)
{
    if (std::isnan(d) || d >= 2147483648.0 || d < -2147483648.0)
        return 0x80000000u;
    return static_cast<uint32_t>(static_cast<int32_t>(d));
}

Executor::StopReason
reasonFor(uint32_t svc_addr)
{
    switch (svc_addr) {
      case amap::kSvcDispatch: return Executor::StopReason::Dispatch;
      case amap::kSvcIbtcMiss: return Executor::StopReason::IbtcMiss;
      case amap::kSvcPromote:  return Executor::StopReason::Promote;
      case amap::kSvcHalt:     return Executor::StopReason::Halt;
      default:
        panic("jump to unknown service address 0x%08x", svc_addr);
    }
}

} // namespace

Executor::Stop
Executor::run(uint32_t pc, uint64_t guest_budget)
{
    lastRetired = 0;
    // flushRecords() zeroes the cap when cancellation is requested;
    // the boundary check below reads the cap, not the parameter.
    budgetCap = guest_budget;

    CodeRegion *region = store.find(pc);
    panic_if(!region, "executor entry at 0x%08x is not translated code", pc);
    region->execCount++;
    if (region->kind == RegionKind::Superblock)
        ++sbEntries;
    else
        ++bbEntries;

    // Guard against translations that loop without retiring guest
    // instructions (a translator bug, not a workload property).
    uint64_t since_boundary = 0;
    constexpr uint64_t kBoundaryGuard = 1u << 20;

    while (true) {
        const uint32_t idx = (pc - region->hostBase) / kHostInstBytes;
        panic_if(idx >= region->insts.size(),
                 "executor ran off region at 0x%08x", pc);
        const HostInst &inst = region->insts[idx];

        if (++since_boundary > kBoundaryGuard) {
            panic("translated code at 0x%08x loops without guest progress",
                  pc);
        }

        ++hostCount;

        // All static Record fields come from the region's install-time
        // template; only memAddr / taken / branchTarget are dynamic.
        timing::Record &rec = nextRecord();
        rec = region->recTemplates[idx];

        uint32_t next_pc = pc + kHostInstBytes;
        const uint32_t a = inst.rs1 == kNoReg ? 0 : readReg(inst.rs1);
        const uint32_t b = inst.rs2 == kNoReg ? 0 : readReg(inst.rs2);
        const int32_t imm32 = static_cast<int32_t>(inst.imm);

        switch (inst.op) {
          case HOp::ADD:  writeReg(inst.rd, a + b); break;
          case HOp::SUB:  writeReg(inst.rd, a - b); break;
          case HOp::AND:  writeReg(inst.rd, a & b); break;
          case HOp::OR:   writeReg(inst.rd, a | b); break;
          case HOp::XOR:  writeReg(inst.rd, a ^ b); break;
          case HOp::SLL:  writeReg(inst.rd, a << (b & 31)); break;
          case HOp::SRL:  writeReg(inst.rd, a >> (b & 31)); break;
          case HOp::SRA:
            writeReg(inst.rd, static_cast<uint32_t>(
                static_cast<int32_t>(a) >> (b & 31)));
            break;
          case HOp::SLT:
            writeReg(inst.rd, static_cast<int32_t>(a) <
                              static_cast<int32_t>(b));
            break;
          case HOp::SLTU: writeReg(inst.rd, a < b); break;
          case HOp::MUL:
            writeReg(inst.rd, static_cast<uint32_t>(
                static_cast<int64_t>(static_cast<int32_t>(a)) *
                static_cast<int64_t>(static_cast<int32_t>(b))));
            break;
          case HOp::MULH:
            writeReg(inst.rd, static_cast<uint32_t>(
                (static_cast<int64_t>(static_cast<int32_t>(a)) *
                 static_cast<int64_t>(static_cast<int32_t>(b))) >> 32));
            break;
          case HOp::DIV: {
            // Guest-support semantics: total function (see DESIGN.md).
            const int32_t sa = static_cast<int32_t>(a);
            const int32_t sb = static_cast<int32_t>(b);
            if (sb == 0 || (sa == INT32_MIN && sb == -1))
                writeReg(inst.rd, 0);
            else
                writeReg(inst.rd, static_cast<uint32_t>(sa / sb));
            break;
          }
          case HOp::REM: {
            const int32_t sa = static_cast<int32_t>(a);
            const int32_t sb = static_cast<int32_t>(b);
            if (sb == 0 || (sa == INT32_MIN && sb == -1))
                writeReg(inst.rd, a);
            else
                writeReg(inst.rd, static_cast<uint32_t>(sa % sb));
            break;
          }
          case HOp::ADDI:  writeReg(inst.rd, a + static_cast<uint32_t>(imm32)); break;
          case HOp::ANDI:  writeReg(inst.rd, a & static_cast<uint32_t>(imm32)); break;
          case HOp::ORI:   writeReg(inst.rd, a | static_cast<uint32_t>(imm32)); break;
          case HOp::XORI:  writeReg(inst.rd, a ^ static_cast<uint32_t>(imm32)); break;
          case HOp::SLLI:  writeReg(inst.rd, a << (imm32 & 31)); break;
          case HOp::SRLI:  writeReg(inst.rd, a >> (imm32 & 31)); break;
          case HOp::SRAI:
            writeReg(inst.rd, static_cast<uint32_t>(
                static_cast<int32_t>(a) >> (imm32 & 31)));
            break;
          case HOp::SLTI:
            writeReg(inst.rd, static_cast<int32_t>(a) < imm32);
            break;
          case HOp::SLTUI:
            writeReg(inst.rd, a < static_cast<uint32_t>(imm32));
            break;
          case HOp::LUI:   writeReg(inst.rd, static_cast<uint32_t>(imm32)); break;

          case HOp::LD: {
            const uint32_t addr = a + static_cast<uint32_t>(imm32);
            rec.memAddr = addr;
            writeReg(inst.rd, static_cast<uint32_t>(
                mem.load(addr, inst.size)));
            break;
          }
          case HOp::ST: {
            const uint32_t addr = a + static_cast<uint32_t>(imm32);
            rec.memAddr = addr;
            mem.store(addr, b, inst.size);
            break;
          }
          case HOp::FLD: {
            const uint32_t addr = a + static_cast<uint32_t>(imm32);
            rec.memAddr = addr;
            f[inst.rd] = mem.loadDouble(addr);
            break;
          }
          case HOp::FST: {
            const uint32_t addr = a + static_cast<uint32_t>(imm32);
            rec.memAddr = addr;
            mem.storeDouble(addr, f[inst.rs2]);
            break;
          }

          case HOp::BEQ:
            if (a == b) { next_pc = static_cast<uint32_t>(inst.imm); rec.taken = true; }
            break;
          case HOp::BNE:
            if (a != b) { next_pc = static_cast<uint32_t>(inst.imm); rec.taken = true; }
            break;
          case HOp::BLT:
            if (static_cast<int32_t>(a) < static_cast<int32_t>(b)) {
                next_pc = static_cast<uint32_t>(inst.imm);
                rec.taken = true;
            }
            break;
          case HOp::BGE:
            if (static_cast<int32_t>(a) >= static_cast<int32_t>(b)) {
                next_pc = static_cast<uint32_t>(inst.imm);
                rec.taken = true;
            }
            break;
          case HOp::BLTU:
            if (a < b) { next_pc = static_cast<uint32_t>(inst.imm); rec.taken = true; }
            break;
          case HOp::BGEU:
            if (a >= b) { next_pc = static_cast<uint32_t>(inst.imm); rec.taken = true; }
            break;
          case HOp::JAL:
            writeReg(inst.rd, next_pc);
            next_pc = static_cast<uint32_t>(inst.imm);
            rec.taken = true;
            break;
          case HOp::JALR: {
            const uint32_t target = a + static_cast<uint32_t>(imm32);
            writeReg(inst.rd, next_pc);
            next_pc = target;
            rec.taken = true;
            break;
          }

          case HOp::FADD:
            f[inst.rd] = canonFp(f[inst.rs1] + f[inst.rs2]);
            break;
          case HOp::FSUB:
            f[inst.rd] = canonFp(f[inst.rs1] - f[inst.rs2]);
            break;
          case HOp::FMUL:
            f[inst.rd] = canonFp(f[inst.rs1] * f[inst.rs2]);
            break;
          case HOp::FDIV:
            f[inst.rd] = canonFp(f[inst.rs1] / f[inst.rs2]);
            break;
          case HOp::FSQRT:
            f[inst.rd] = canonFp(std::sqrt(f[inst.rs1]));
            break;
          case HOp::FABS: f[inst.rd] = std::fabs(f[inst.rs1]); break;
          case HOp::FNEG: f[inst.rd] = -f[inst.rs1]; break;
          case HOp::FMOV: f[inst.rd] = f[inst.rs1]; break;
          case HOp::FCVT_IF:
            f[inst.rd] = static_cast<double>(static_cast<int32_t>(a));
            break;
          case HOp::FCVT_FI:
            writeReg(inst.rd, truncToInt32(f[inst.rs1]));
            break;
          case HOp::FLT:
            writeReg(inst.rd, f[inst.rs1] < f[inst.rs2]);
            break;
          case HOp::FLE:
            writeReg(inst.rd, f[inst.rs1] <= f[inst.rs2]);
            break;
          case HOp::FEQ:
            writeReg(inst.rd, f[inst.rs1] == f[inst.rs2]);
            break;
          case HOp::FUNORD:
            writeReg(inst.rd, std::isnan(f[inst.rs1]) ||
                              std::isnan(f[inst.rs2]));
            break;

          case HOp::NOP: break;

          default:
            panic("executor: unhandled host op %d",
                  static_cast<int>(inst.op));
        }

        rec.branchTarget = rec.taken ? next_pc : 0;

        // Region-leaving transfers carry the guest retirement count
        // for the path just completed (see host/isa.hh).
        if (inst.guestBoundary) {
            lastRetired += inst.guestIndex;
            since_boundary = 0;
            if (region->kind == RegionKind::Superblock)
                sbRetired += inst.guestIndex;
            else
                bbRetired += inst.guestIndex;
            // Inline-IBTC hits retire the guest indirect branch here.
            if (inst.op == HOp::JALR)
                ++indirectCount;
        }

        if (next_pc == pc + kHostInstBytes && !rec.taken) {
            pc = next_pc;
            continue;
        }

        // Control transfer: service, same region, or another region.
        if (amap::isServiceAddr(next_pc)) {
            flushRecords();
            return Stop{reasonFor(next_pc), region, x[hreg::ExitId], 0};
        }
        pc = next_pc;
        if (pc < region->hostBase || pc >= region->hostLimit()) {
            region = store.find(pc);
            panic_if(!region,
                     "translated code jumped to unmapped host pc 0x%08x",
                     pc);
            region->execCount++;
            if (region->kind == RegionKind::Superblock)
                ++sbEntries;
            else
                ++bbEntries;
        }
        // Retiring transfers always land on a region entry, so this
        // is a clean architectural point to stop at (covers regions
        // chained to themselves as well).
        if (inst.guestBoundary && lastRetired >= budgetCap) {
            flushRecords();
            return Stop{StopReason::Budget, region, 0,
                        region->guestEntry};
        }
    }
}

} // namespace darco::host
