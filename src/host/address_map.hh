/**
 * @file
 * Simulated host virtual-address map and register-usage conventions.
 *
 * The host is a 32-bit RISC; the co-design component owns a single
 * 32-bit host address space. The emulated guest application memory
 * occupies the low 3 GiB (guest addresses are used directly, which
 * lets guest 32-bit arithmetic map 1:1 onto host registers); TOL's
 * own code and data structures live in the top 1 GiB. Data accesses
 * below the TOL boundary go through the data TLB; TOL-space accesses
 * are physical (the paper: the TLB "exists only for data, since TOL
 * works with physical addresses").
 */

#ifndef DARCO_HOST_ADDRESS_MAP_HH
#define DARCO_HOST_ADDRESS_MAP_HH

#include <cstdint>

namespace darco::host {

namespace amap {

/** Guest (emulated application) space: [0, 3 GiB). */
constexpr uint32_t kGuestBase = 0x0000'0000u;
constexpr uint32_t kGuestLimit = 0xC000'0000u;

/** TOL static code (interpreter, translator, runtime routines). */
constexpr uint32_t kTolCodeBase = 0xC000'0000u;
constexpr uint32_t kTolCodeLimit = 0xC100'0000u;

/** Code cache: translated host code (instruction fetch from here). */
constexpr uint32_t kCodeCacheBase = 0xC800'0000u;
constexpr uint32_t kCodeCacheLimit = 0xD000'0000u;

/** Translation map (guest EIP -> host entry), open addressing. */
constexpr uint32_t kTransMapBase = 0xD000'0000u;

/** Profile counter tables (IM target counters, BB/edge counters). */
constexpr uint32_t kProfileBase = 0xD400'0000u;

/** Indirect Branch Translation Cache. */
constexpr uint32_t kIbtcBase = 0xD800'0000u;

/** Guest context block (spilled guest state while in IM). */
constexpr uint32_t kContextBase = 0xDC00'0000u;

/** TOL working memory: IR buffers, trace buffers, scratch. */
constexpr uint32_t kWorkBase = 0xE000'0000u;

/** TOL runtime stack (grows down). */
constexpr uint32_t kTolStackTop = 0xFF00'0000u;

/** True if an address belongs to the emulated guest space. */
constexpr bool
isGuestAddr(uint32_t addr)
{
    return addr < kGuestLimit;
}

/**
 * Runtime service entry points. Translated code transfers control to
 * these host addresses; the functional executor stops and hands
 * control to the TOL runtime when the next PC lands in
 * [kSvcBase, kSvcLimit).
 */
constexpr uint32_t kSvcBase = kTolCodeBase;
constexpr uint32_t kSvcDispatch = kSvcBase + 0x00;  ///< region exit
constexpr uint32_t kSvcIbtcMiss = kSvcBase + 0x40;  ///< inline probe missed
constexpr uint32_t kSvcPromote = kSvcBase + 0x80;   ///< BB hit SB threshold
constexpr uint32_t kSvcHalt = kSvcBase + 0xC0;      ///< guest executed HALT
constexpr uint32_t kSvcLimit = kSvcBase + 0x100;

constexpr bool
isServiceAddr(uint32_t addr)
{
    return addr >= kSvcBase && addr < kSvcLimit;
}

} // namespace amap

/**
 * Integer register conventions.
 *
 * x0        hardwired zero
 * x1..x31   TOL partition (interpreter/translator/runtime routines)
 * x32..x63  application partition:
 *   x32..x39  guest GPRs EAX..EDI
 *   x40..x44  materialized guest flags ZF, SF, CF, OF, PF (0/1 values)
 *   x45..x54  allocatable translation temporaries
 *   x55       BB->SB promotion threshold (loaded at start)
 *   x56       IBTC base address
 *   x57       guest context block base address
 *   x58       exit payload: guest target EIP
 *   x59       exit payload: region exit id
 *   x60..x63  stub scratch
 *
 * f0..f15   TOL partition
 * f16..f23  guest FP registers F0..F7
 * f24..f31  translation temporaries
 */
namespace hreg {

constexpr uint8_t Zero = 0;

// TOL-partition conventions used by emitted TOL service streams.
constexpr uint8_t TolScratch0 = 1;
constexpr uint8_t TolScratch1 = 2;
constexpr uint8_t TolScratch2 = 3;
constexpr uint8_t TolScratch3 = 4;
constexpr uint8_t TolScratch4 = 5;
constexpr uint8_t TolScratch5 = 6;
constexpr uint8_t TolDispatchEip = 29;  ///< guest EIP being dispatched
constexpr uint8_t TolStackPtr = 30;

constexpr uint8_t AppBase = 32;
constexpr uint8_t GuestGpr0 = 32;       ///< x32 + guest reg number
constexpr uint8_t FlagZ = 40;
constexpr uint8_t FlagS = 41;
constexpr uint8_t FlagC = 42;
constexpr uint8_t FlagO = 43;
constexpr uint8_t FlagP = 44;
constexpr uint8_t TempBase = 45;
constexpr unsigned NumTemps = 10;       ///< x45..x54
constexpr uint8_t SbThreshold = 55;
constexpr uint8_t IbtcBase = 56;
constexpr uint8_t CtxBase = 57;
constexpr uint8_t ExitTarget = 58;
constexpr uint8_t ExitId = 59;
constexpr uint8_t StubScratch0 = 60;
constexpr uint8_t StubScratch1 = 61;
constexpr uint8_t StubScratch2 = 62;
constexpr uint8_t StubScratch3 = 63;

/** FP register conventions. */
constexpr uint8_t GuestFpr0 = 16;       ///< f16 + guest F number
constexpr uint8_t FpTempBase = 24;
constexpr unsigned NumFpTemps = 8;

constexpr uint8_t
guestGpr(unsigned guest_reg)
{
    return static_cast<uint8_t>(GuestGpr0 + guest_reg);
}

constexpr uint8_t
guestFpr(unsigned guest_freg)
{
    return static_cast<uint8_t>(GuestFpr0 + guest_freg);
}

} // namespace hreg

/**
 * Guest context block layout (offsets from amap::kContextBase).
 * The interpreter operates on this block; fill/spill code moves it
 * to/from the application register partition at mode transitions.
 */
namespace ctx {

constexpr uint32_t kGprOffset = 0;        ///< 8 x 4 bytes
constexpr uint32_t kFlagsOffset = 32;     ///< 5 x 4 bytes (Z,S,C,O,P)
constexpr uint32_t kEipOffset = 52;       ///< 4 bytes
constexpr uint32_t kFprOffset = 64;       ///< 8 x 8 bytes
constexpr uint32_t kSize = 128;

constexpr uint32_t gprAddr(unsigned r) { return kGprOffset + 4 * r; }
constexpr uint32_t flagAddr(unsigned f) { return kFlagsOffset + 4 * f; }
constexpr uint32_t fprAddr(unsigned r) { return kFprOffset + 8 * r; }

} // namespace ctx

} // namespace darco::host

#endif // DARCO_HOST_ADDRESS_MAP_HH
