/**
 * @file
 * Storage for translated host code regions and the host-PC -> region
 * mapping used by the functional executor.
 *
 * Regions live at simulated code-cache addresses (so the timing
 * model's L1-I sees real code-cache locality); instructions are held
 * as HostInst structs, 4 simulated bytes each. Patching (chaining,
 * entry forwarding) rewrites instructions in place.
 */

#ifndef DARCO_HOST_CODE_STORE_HH
#define DARCO_HOST_CODE_STORE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "host/isa.hh"
#include "timing/record.hh"

namespace darco::host {

/** Kind of a translated region. */
enum class RegionKind : uint8_t { BasicBlock, Superblock };

/** Static description of one region exit. */
struct ExitInfo
{
    /** Index of the patchable transfer instruction for this exit. */
    uint32_t branchIndex = 0;
    /** Guest EIP this exit statically targets (0 for indirect). */
    uint32_t guestTarget = 0;
    /** Guest instructions retired when leaving through this exit. */
    uint32_t guestInstsRetired = 0;
    /** The exit target is computed at run time (IBTC path). */
    bool indirect = false;
    /** Guest HALT exit. */
    bool halt = false;
    /** Flag registers x40..x43 valid here (fmask bits Z,S,C,O). */
    uint8_t flagMask = 0;
    /** Already chained to a successor region. */
    bool chained = false;
};

/** One translated code region (basic block or superblock). */
struct CodeRegion
{
    RegionKind kind = RegionKind::BasicBlock;
    uint32_t guestEntry = 0;          ///< guest EIP this region starts at
    uint32_t hostBase = 0;            ///< simulated code-cache address
    std::vector<HostInst> insts;
    /**
     * Per-instruction timing-record template: every Record field that
     * is static for the instruction (pc, opcode properties, register
     * ids with FP mapping applied, attribution) precomputed at
     * install time, so the executor's per-instruction work is one
     * struct copy plus the dynamic fields (memAddr, taken, target).
     * Rebuilt for an instruction whenever it is patched in place.
     */
    std::vector<timing::Record> recTemplates;
    std::vector<ExitInfo> exits;
    /** Guest EIP per guest-instruction index (for mid-region stops). */
    std::vector<uint32_t> guestEips;
    /** Dynamic execution count (bookkeeping; profiling is in-memory). */
    uint32_t execCount = 0;
    /** Region was replaced by a superblock (entry forwards). */
    bool superseded = false;

    uint32_t hostLimit() const { return hostBase + insts.size() * 4; }
    uint32_t numGuestInsts() const
    {
        return static_cast<uint32_t>(guestEips.size());
    }

    /** Recompute the record template for instruction @p index. */
    void rebuildTemplate(size_t index);
};

/**
 * Region allocator + PC lookup. Owns all regions. Allocation is a
 * bump pointer over the code-cache range; flush() drops everything
 * (the classic full-flush policy the TOL code cache uses when full).
 *
 * Optional hot/cold partitioning (the paper's §III-E "code placement
 * in the code cache" suggestion): superblocks allocate from a
 * dedicated upper partition so the steady-state hot code is densely
 * packed and stops sharing instruction-cache sets with cold BB
 * translations.
 */
class CodeStore
{
  public:
    CodeStore(uint32_t base, uint32_t limit)
        : cacheBase(base), cacheLimit(limit), nextAddr(base),
          hotBase(limit), hotNext(limit)
    {}

    /**
     * Enable hot/cold partitioning: superblocks allocate from the
     * upper @p hot_fraction_percent of the cache. Call before any
     * install.
     */
    void partitionForSuperblocks(unsigned hot_fraction_percent);

    /**
     * Install a region: assigns its hostBase, stores it, returns a
     * stable pointer. Returns nullptr if the cache is full (caller
     * must flush and retranslate).
     */
    CodeRegion *install(std::unique_ptr<CodeRegion> region);

    /**
     * Region containing host address @p pc, or nullptr. A
     * direct-mapped PC lookup cache sits in front of the ordered-map
     * search; flush() invalidates it wholesale.
     */
    CodeRegion *
    find(uint32_t pc)
    {
        const LookupEntry &cached = lookupCache[lookupSlot(pc)];
        if (cached.region && cached.pc == pc)
            return cached.region;
        return findSlow(pc);
    }

    /** Drop all regions (code-cache flush). */
    void flush();

    /** Bytes currently allocated (both partitions). */
    uint32_t
    bytesUsed() const
    {
        return (nextAddr - cacheBase) + (hotNext - hotBase);
    }

    /** Total capacity in bytes. */
    uint32_t capacity() const { return cacheLimit - cacheBase; }

    /** Number of live regions. */
    size_t numRegions() const { return regions.size(); }

    /** Generation counter (bumped on every flush). */
    uint32_t generation() const { return gen; }

  private:
    /** Direct-mapped PC -> region cache entry (exact-PC match). */
    struct LookupEntry
    {
        uint32_t pc = 0;
        CodeRegion *region = nullptr;
    };

    static constexpr unsigned kLookupCacheBits = 12;

    static size_t
    lookupSlot(uint32_t pc)
    {
        return (pc >> 2) & ((size_t(1) << kLookupCacheBits) - 1);
    }

    /** Ordered-map search behind the lookup cache (fills it). */
    CodeRegion *findSlow(uint32_t pc);

    uint32_t cacheBase;
    uint32_t cacheLimit;
    uint32_t nextAddr;
    /** Superblock partition ([hotBase, cacheLimit); == limit when off). */
    uint32_t hotBase;
    uint32_t hotNext;
    uint32_t gen = 0;
    /** base address -> region, ordered for upper_bound lookup. */
    std::map<uint32_t, std::unique_ptr<CodeRegion>> regions;
    CodeRegion *lastHit = nullptr;
    std::array<LookupEntry, size_t(1) << kLookupCacheBits> lookupCache{};
};

} // namespace darco::host

#endif // DARCO_HOST_CODE_STORE_HH
