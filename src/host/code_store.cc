#include "host/code_store.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::host {

void
CodeStore::partitionForSuperblocks(unsigned hot_fraction_percent)
{
    panic_if(!regions.empty(), "partitioning after regions installed");
    panic_if(hot_fraction_percent == 0 || hot_fraction_percent >= 100,
             "hot fraction must be in (0, 100)");
    const uint32_t span = cacheLimit - cacheBase;
    hotBase = cacheLimit -
              static_cast<uint32_t>(
                  static_cast<uint64_t>(span) * hot_fraction_percent /
                  100);
    hotBase = static_cast<uint32_t>(alignUp(hotBase, 16));
    hotNext = hotBase;
}

CodeRegion *
CodeStore::install(std::unique_ptr<CodeRegion> region)
{
    const uint32_t bytes = region->insts.size() * kHostInstBytes;
    // Keep regions cache-line disjoint at the front to mimic real
    // emitters aligning entry points. Superblocks go to the hot
    // partition when one is configured.
    const bool hot = hotBase != cacheLimit &&
                     region->kind == RegionKind::Superblock;
    uint32_t &bump = hot ? hotNext : nextAddr;
    const uint32_t partition_limit = hot ? cacheLimit : hotBase;
    const uint32_t base = alignUp(bump, 16);
    if (base + bytes > partition_limit)
        return nullptr;

    region->hostBase = base;
    bump = base + bytes;

    // Convert intra-region index targets to absolute host addresses.
    for (HostInst &inst : region->insts) {
        if (inst.targetIsIndex) {
            inst.imm = static_cast<int64_t>(
                base + static_cast<uint32_t>(inst.imm) * kHostInstBytes);
            inst.targetIsIndex = false;
        }
    }

    CodeRegion *ptr = region.get();
    regions.emplace(base, std::move(region));
    lastHit = ptr;
    return ptr;
}

CodeRegion *
CodeStore::find(uint32_t pc)
{
    if (lastHit && pc >= lastHit->hostBase && pc < lastHit->hostLimit())
        return lastHit;
    if (regions.empty())
        return nullptr;
    auto it = regions.upper_bound(pc);
    if (it == regions.begin())
        return nullptr;
    --it;
    CodeRegion *region = it->second.get();
    if (pc >= region->hostBase && pc < region->hostLimit()) {
        lastHit = region;
        return region;
    }
    return nullptr;
}

void
CodeStore::flush()
{
    regions.clear();
    lastHit = nullptr;
    nextAddr = cacheBase;
    hotNext = hotBase;
    ++gen;
}

} // namespace darco::host
