#include "host/code_store.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace darco::host {

void
CodeRegion::rebuildTemplate(size_t index)
{
    const HostInst &inst = insts[index];
    const HOpInfo &info = hopInfo(inst.op);
    timing::Record rec;
    rec.pc = hostBase + static_cast<uint32_t>(index) * kHostInstBytes;
    rec.op = inst.op;
    rec.size = inst.size;
    rec.module = static_cast<timing::Module>(inst.attr);
    rec.fromRegion = true;
    rec.guestBoundary = inst.guestBoundary;
    rec.rd = inst.rd == kNoReg ? kNoReg
             : info.fpDst ? timing::fpRegId(inst.rd)
             : inst.rd == 0 ? kNoReg : inst.rd;
    rec.rs1 = inst.rs1 == kNoReg ? kNoReg
              : info.fpSrc1 ? timing::fpRegId(inst.rs1) : inst.rs1;
    rec.rs2 = inst.rs2 == kNoReg ? kNoReg
              : info.fpSrc2 ? timing::fpRegId(inst.rs2) : inst.rs2;
    rec.isLoad = info.isLoad;
    rec.isStore = info.isStore;
    rec.isBranch = info.isBranch;
    rec.isCondBranch = info.isCondBranch;
    rec.isIndirect = info.isIndirect;
    recTemplates[index] = rec;
}

void
CodeStore::partitionForSuperblocks(unsigned hot_fraction_percent)
{
    panic_if(!regions.empty(), "partitioning after regions installed");
    panic_if(hot_fraction_percent == 0 || hot_fraction_percent >= 100,
             "hot fraction must be in (0, 100)");
    const uint32_t span = cacheLimit - cacheBase;
    hotBase = cacheLimit -
              static_cast<uint32_t>(
                  static_cast<uint64_t>(span) * hot_fraction_percent /
                  100);
    hotBase = static_cast<uint32_t>(alignUp(hotBase, 16));
    hotNext = hotBase;
}

CodeRegion *
CodeStore::install(std::unique_ptr<CodeRegion> region)
{
    const uint32_t bytes = region->insts.size() * kHostInstBytes;
    // Keep regions cache-line disjoint at the front to mimic real
    // emitters aligning entry points. Superblocks go to the hot
    // partition when one is configured.
    const bool hot = hotBase != cacheLimit &&
                     region->kind == RegionKind::Superblock;
    uint32_t &bump = hot ? hotNext : nextAddr;
    const uint32_t partition_limit = hot ? cacheLimit : hotBase;
    const uint32_t base = alignUp(bump, 16);
    if (base + bytes > partition_limit)
        return nullptr;

    region->hostBase = base;
    bump = base + bytes;

    // Convert intra-region index targets to absolute host addresses.
    for (HostInst &inst : region->insts) {
        if (inst.targetIsIndex) {
            inst.imm = static_cast<int64_t>(
                base + static_cast<uint32_t>(inst.imm) * kHostInstBytes);
            inst.targetIsIndex = false;
        }
    }

    region->recTemplates.resize(region->insts.size());
    for (size_t i = 0; i < region->insts.size(); ++i)
        region->rebuildTemplate(i);

    CodeRegion *ptr = region.get();
    regions.emplace(base, std::move(region));
    lastHit = ptr;
    return ptr;
}

CodeRegion *
CodeStore::findSlow(uint32_t pc)
{
    CodeRegion *region = nullptr;
    if (lastHit && pc >= lastHit->hostBase &&
        pc < lastHit->hostLimit()) {
        region = lastHit;
    } else if (!regions.empty()) {
        auto it = regions.upper_bound(pc);
        if (it != regions.begin()) {
            --it;
            CodeRegion *candidate = it->second.get();
            if (pc >= candidate->hostBase &&
                pc < candidate->hostLimit()) {
                lastHit = candidate;
                region = candidate;
            }
        }
    }
    if (region)
        lookupCache[lookupSlot(pc)] = LookupEntry{pc, region};
    return region;
}

void
CodeStore::flush()
{
    regions.clear();
    lastHit = nullptr;
    nextAddr = cacheBase;
    hotNext = hotBase;
    lookupCache.fill(LookupEntry{});
    ++gen;
}

} // namespace darco::host
